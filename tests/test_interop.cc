/**
 * @file
 * QP <-> socket interoperation (paper section 3): "communication can
 * occur between QPIP applications or QPIP and traditional (socket)
 * systems" because QPIP adds no protocol formats. These tests build a
 * mixed fabric — one QPIP host, one conventional sockets host — and
 * exercise both directions over both transports:
 *
 *  - UDP: datagrams between a UD queue pair and a kernel UDP socket;
 *  - TCP: a reliable QP connected to a plain listening socket (and
 *    vice versa). The QP side sends message-framed segments that the
 *    socket reads as a byte stream; the socket side sends MSS-sized
 *    segments that arrive at the QP one completion per segment — the
 *    paper's "the application may have to reassemble incoming data
 *    into a complete unit".
 */

#include <gtest/gtest.h>

#include "apps/verbs_util.hh"
#include "sim/simulation.hh"
#include "host/host.hh"
#include "net/topology.hh"
#include "nic/eth_nic.hh"
#include "nic/qpip_nic.hh"
#include "qpip/qpip.hh"

using namespace qpip;

namespace {

/** One QPIP host + one sockets host on a shared Myrinet star. */
struct MixedBed
{
    MixedBed()
        : sm(3), fabric(sm, "fabric", net::myrinetLink(9000)),
          l0(fabric.addNode(0)), l1(fabric.addNode(1)),
          qpipAddr(*inet::InetAddr::parse("fd00::1")),
          sockAddr(*inet::InetAddr::parse("fd00::2")),
          qhost(sm, "qpip_host"),
          qnic(sm, "qpip_host.nic", l0, 0, {}),
          shost(sm, "sock_host"),
          snic(sm, "sock_host.nic", shost.stack(), l1, 1,
               nic::gmIpParams()),
          prov(qhost, qnic)
    {
        qnic.setAddress(qpipAddr);
        qnic.routes().add(sockAddr, 1);
        shost.stack().addAddress(sockAddr);
        shost.stack().routes().add(qpipAddr, 0);
    }

    ~MixedBed() { sm.eventQueue().clear(); }

    qpip::sim::Simulation sm;
    net::StarFabric fabric;
    net::Link &l0, &l1;
    inet::InetAddr qpipAddr, sockAddr;
    host::Host qhost;
    nic::QpipNic qnic;
    host::Host shost;
    nic::EthNic snic;
    verbs::Provider prov;
};

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 9)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 3);
    return v;
}

} // namespace

TEST(Interop, UdpQpToKernelSocketAndBack)
{
    MixedBed bed;
    auto usock = bed.shost.stack().udpBind(
        inet::SockAddr{bed.sockAddr, 9999});
    std::vector<std::uint8_t> seen;
    usock->recvFrom([&](host::UdpSocket::Datagram d) {
        seen = d.data;
        usock->sendTo(std::move(d.data), d.from, nullptr);
    });

    auto cq = bed.prov.createCq();
    std::vector<std::uint8_t> buf(4096);
    auto mr = bed.prov.registerMemory(buf);
    auto qp = bed.prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    qp->bind(6000);
    auto msg = pattern(700);
    std::copy(msg.begin(), msg.end(), buf.begin() + 2048);
    qp->postRecv(1, *mr, 0, 2048);
    qp->postSend(2, *mr, 2048, msg.size(),
                 inet::SockAddr{bed.sockAddr, 9999});

    bool echoed = false;
    apps::waitLoop(*cq, [&](verbs::Completion c) {
        if (!c.isSend) {
            EXPECT_EQ(c.byteLen, msg.size());
            EXPECT_EQ(c.from,
                      (inet::SockAddr{bed.sockAddr, 9999}));
            echoed = std::equal(msg.begin(), msg.end(), buf.begin());
        }
    });
    bed.sm.runUntilCondition([&] { return echoed; },
                              10 * sim::oneSec);
    EXPECT_TRUE(echoed);
    EXPECT_EQ(seen, msg);
}

TEST(Interop, QpConnectsToListeningSocket)
{
    MixedBed bed;
    // Conventional server: plain TCP listener that echoes bytes.
    auto cfg = bed.shost.stack().defaultTcpConfig();
    cfg.noDelay = true;
    std::vector<std::uint8_t> server_got;
    std::shared_ptr<host::TcpSocket> ssock;
    bed.shost.stack().tcpListen(
        80, cfg, [&](std::shared_ptr<host::TcpSocket> s) {
            ssock = s;
            s->recvExact(5000, [&, s](std::vector<std::uint8_t> d) {
                server_got = d;
                s->sendAll(std::move(d), [] {});
            });
        });

    // QPIP client: reliable QP straight at the socket's port.
    auto cq = bed.prov.createCq();
    std::vector<std::uint8_t> buf(1 << 18);
    auto mr = bed.prov.registerMemory(buf);
    auto qp = bed.prov.createQp(nic::QpType::ReliableTcp, cq, cq);
    bool connected = false;
    qp->connect(inet::SockAddr{bed.sockAddr, 80},
                [&](bool ok) { connected = ok; });
    ASSERT_TRUE(bed.sm.runUntilCondition([&] { return connected; },
                                          10 * sim::oneSec));

    // Send one 5000-byte message; the socket reads it as a stream.
    auto msg = pattern(5000);
    std::copy(msg.begin(), msg.end(), buf.begin());
    // Post receives for the echo: it may come back as several
    // MSS-framed segments, each one QP completion (the reassembly
    // burden the paper assigns to the application).
    // Each WR must hold a full MSS-sized segment from the peer.
    const std::size_t slot = 16384;
    const std::size_t rx_off = 65536;
    for (std::uint64_t i = 0; i < 8; ++i)
        qp->postRecv(10 + i, *mr, rx_off + i * slot, slot);
    qp->postSend(1, *mr, 0, msg.size());

    std::vector<std::uint8_t> echoed;
    apps::waitLoop(*cq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ASSERT_EQ(c.status, verbs::WcStatus::Success);
        echoed.insert(echoed.end(),
                      buf.begin() + static_cast<std::ptrdiff_t>(
                                        rx_off + (c.wrId - 10) * slot),
                      buf.begin() + static_cast<std::ptrdiff_t>(
                                        rx_off + (c.wrId - 10) * slot +
                                        c.byteLen));
    });
    bed.sm.runUntilCondition(
        [&] { return echoed.size() >= msg.size(); },
        30 * sim::oneSec);
    ASSERT_EQ(server_got, msg);
    ASSERT_EQ(echoed.size(), msg.size());
    EXPECT_EQ(echoed, msg); // stream re-assembled from per-segment WRs
}

TEST(Interop, SocketConnectsToAcceptingQp)
{
    MixedBed bed;
    // QPIP server: idle QP parked on port 7. Each posted buffer must
    // hold a full MSS-sized segment from the sockets peer.
    constexpr std::size_t slot = 16384;
    auto cq = bed.prov.createCq();
    std::vector<std::uint8_t> buf(8 * slot);
    auto mr = bed.prov.registerMemory(buf);
    verbs::Acceptor acc(bed.prov, 7, cq, cq);
    std::shared_ptr<verbs::QueuePair> sqp;
    acc.acceptOne([&](std::shared_ptr<verbs::QueuePair> q) {
        sqp = q;
        for (std::uint64_t i = 0; i < 8; ++i)
            q->postRecv(i, *mr, i * slot, slot);
    });

    // Sockets client connects and writes a stream.
    auto cfg = bed.shost.stack().defaultTcpConfig();
    cfg.noDelay = true;
    auto csock = bed.shost.stack().tcpConnect(
        inet::SockAddr{bed.sockAddr, 30000},
        inet::SockAddr{bed.qpipAddr, 7}, cfg, nullptr);
    ASSERT_TRUE(bed.sm.runUntilCondition(
        [&] { return csock->connected() && sqp != nullptr; },
        10 * sim::oneSec));

    auto data = pattern(20000, 5);
    csock->sendAll(data, [] {});

    // Collect per-segment messages on the QP until the stream is in.
    std::vector<std::uint8_t> got;
    apps::waitLoop(*cq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ASSERT_EQ(c.status, verbs::WcStatus::Success);
        got.insert(got.end(),
                   buf.begin() +
                       static_cast<std::ptrdiff_t>(c.wrId * slot),
                   buf.begin() + static_cast<std::ptrdiff_t>(
                                     c.wrId * slot + c.byteLen));
        sqp->postRecv(c.wrId, *mr, c.wrId * slot, slot);
    });
    bed.sm.runUntilCondition([&] { return got.size() >= data.size(); },
                              30 * sim::oneSec);
    ASSERT_EQ(got.size(), data.size());
    EXPECT_EQ(got, data);
    // The byte stream arrived as multiple segment-sized messages.
    EXPECT_GT(csock->connection().stats().segsOut.value(), 2u);
}
