/**
 * @file
 * QP <-> socket interoperation (paper section 3): "communication can
 * occur between QPIP applications or QPIP and traditional (socket)
 * systems" because QPIP adds no protocol formats. These tests build a
 * mixed fabric — one QPIP host, one conventional sockets host — and
 * exercise both directions over both transports:
 *
 *  - UDP: datagrams between a UD queue pair and a kernel UDP socket;
 *  - TCP: a reliable QP connected to a plain listening socket (and
 *    vice versa). The QP side sends message-framed segments that the
 *    socket reads as a byte stream; the socket side sends MSS-sized
 *    segments that arrive at the QP one completion per segment — the
 *    paper's "the application may have to reassemble incoming data
 *    into a complete unit".
 */

#include <gtest/gtest.h>

#include "apps/testbed.hh"
#include "apps/ttcp.hh"
#include "apps/verbs_util.hh"
#include "sim/simulation.hh"
#include "host/host.hh"
#include "inet/ipv4.hh"
#include "net/pcap.hh"
#include "net/topology.hh"
#include "nic/eth_nic.hh"
#include "nic/qpip_nic.hh"
#include "qpip/qpip.hh"

using namespace qpip;

namespace {

/** One QPIP host + one sockets host on a shared Myrinet star. */
struct MixedBed
{
    MixedBed()
        : sm(3), fabric(sm, "fabric", net::myrinetLink(9000)),
          l0(fabric.addNode(0)), l1(fabric.addNode(1)),
          qpipAddr(*inet::InetAddr::parse("fd00::1")),
          sockAddr(*inet::InetAddr::parse("fd00::2")),
          qhost(sm, "qpip_host"),
          qnic(sm, "qpip_host.nic", l0, 0, {}),
          shost(sm, "sock_host"),
          snic(sm, "sock_host.nic", shost.stack(), l1, 1,
               nic::gmIpParams()),
          prov(qhost, qnic)
    {
        qnic.setAddress(qpipAddr);
        qnic.routes().add(sockAddr, 1);
        shost.stack().addAddress(sockAddr);
        shost.stack().routes().add(qpipAddr, 0);
    }

    ~MixedBed() { sm.eventQueue().clear(); }

    qpip::sim::Simulation sm;
    net::StarFabric fabric;
    net::Link &l0, &l1;
    inet::InetAddr qpipAddr, sockAddr;
    host::Host qhost;
    nic::QpipNic qnic;
    host::Host shost;
    nic::EthNic snic;
    verbs::Provider prov;
};

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 9)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 3);
    return v;
}

/** Split a pcap file image into its raw captured frames. */
std::vector<std::vector<std::uint8_t>>
pcapFrames(const std::vector<std::uint8_t> &buf)
{
    auto u32le = [&buf](std::size_t p) {
        return static_cast<std::uint32_t>(buf[p]) |
               (static_cast<std::uint32_t>(buf[p + 1]) << 8) |
               (static_cast<std::uint32_t>(buf[p + 2]) << 16) |
               (static_cast<std::uint32_t>(buf[p + 3]) << 24);
    };
    std::vector<std::vector<std::uint8_t>> out;
    std::size_t off = net::pcapFileHeaderBytes;
    while (off + net::pcapRecordHeaderBytes <= buf.size()) {
        const std::size_t incl = u32le(off + 8);
        off += net::pcapRecordHeaderBytes;
        if (off + incl > buf.size())
            break;
        out.emplace_back(buf.begin() + static_cast<std::ptrdiff_t>(off),
                         buf.begin() +
                             static_cast<std::ptrdiff_t>(off + incl));
        off += incl;
    }
    return out;
}

} // namespace

TEST(Interop, UdpQpToKernelSocketAndBack)
{
    MixedBed bed;
    auto usock = bed.shost.stack().udpBind(
        inet::SockAddr{bed.sockAddr, 9999});
    std::vector<std::uint8_t> seen;
    usock->recvFrom([&](host::UdpSocket::Datagram d) {
        seen = d.data;
        usock->sendTo(std::move(d.data), d.from, nullptr);
    });

    auto cq = bed.prov.createCq();
    std::vector<std::uint8_t> buf(4096);
    auto mr = bed.prov.registerMemory(buf);
    auto qp = bed.prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    qp->bind(6000);
    auto msg = pattern(700);
    std::copy(msg.begin(), msg.end(), buf.begin() + 2048);
    qp->postRecv(1, *mr, 0, 2048);
    qp->postSend(2, *mr, 2048, msg.size(),
                 inet::SockAddr{bed.sockAddr, 9999});

    bool echoed = false;
    apps::waitLoop(*cq, [&](verbs::Completion c) {
        if (!c.isSend) {
            EXPECT_EQ(c.byteLen, msg.size());
            EXPECT_EQ(c.from,
                      (inet::SockAddr{bed.sockAddr, 9999}));
            echoed = std::equal(msg.begin(), msg.end(), buf.begin());
        }
    });
    bed.sm.runUntilCondition([&] { return echoed; },
                              10 * sim::oneSec);
    EXPECT_TRUE(echoed);
    EXPECT_EQ(seen, msg);
}

TEST(Interop, QpConnectsToListeningSocket)
{
    MixedBed bed;
    // Conventional server: plain TCP listener that echoes bytes.
    auto cfg = bed.shost.stack().defaultTcpConfig();
    cfg.noDelay = true;
    std::vector<std::uint8_t> server_got;
    std::shared_ptr<host::TcpSocket> ssock;
    bed.shost.stack().tcpListen(
        80, cfg, [&](std::shared_ptr<host::TcpSocket> s) {
            ssock = s;
            s->recvExact(5000, [&, s](std::vector<std::uint8_t> d) {
                server_got = d;
                s->sendAll(std::move(d), [] {});
            });
        });

    // QPIP client: reliable QP straight at the socket's port.
    auto cq = bed.prov.createCq();
    std::vector<std::uint8_t> buf(1 << 18);
    auto mr = bed.prov.registerMemory(buf);
    auto qp = bed.prov.createQp(nic::QpType::ReliableTcp, cq, cq);
    bool connected = false;
    qp->connect(inet::SockAddr{bed.sockAddr, 80},
                [&](bool ok) { connected = ok; });
    ASSERT_TRUE(bed.sm.runUntilCondition([&] { return connected; },
                                          10 * sim::oneSec));

    // Send one 5000-byte message; the socket reads it as a stream.
    auto msg = pattern(5000);
    std::copy(msg.begin(), msg.end(), buf.begin());
    // Post receives for the echo: it may come back as several
    // MSS-framed segments, each one QP completion (the reassembly
    // burden the paper assigns to the application).
    // Each WR must hold a full MSS-sized segment from the peer.
    const std::size_t slot = 16384;
    const std::size_t rx_off = 65536;
    for (std::uint64_t i = 0; i < 8; ++i)
        qp->postRecv(10 + i, *mr, rx_off + i * slot, slot);
    qp->postSend(1, *mr, 0, msg.size());

    std::vector<std::uint8_t> echoed;
    apps::waitLoop(*cq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ASSERT_EQ(c.status, verbs::WcStatus::Success);
        echoed.insert(echoed.end(),
                      buf.begin() + static_cast<std::ptrdiff_t>(
                                        rx_off + (c.wrId - 10) * slot),
                      buf.begin() + static_cast<std::ptrdiff_t>(
                                        rx_off + (c.wrId - 10) * slot +
                                        c.byteLen));
    });
    bed.sm.runUntilCondition(
        [&] { return echoed.size() >= msg.size(); },
        30 * sim::oneSec);
    ASSERT_EQ(server_got, msg);
    ASSERT_EQ(echoed.size(), msg.size());
    EXPECT_EQ(echoed, msg); // stream re-assembled from per-segment WRs
}

TEST(Interop, SocketConnectsToAcceptingQp)
{
    MixedBed bed;
    // QPIP server: idle QP parked on port 7. Each posted buffer must
    // hold a full MSS-sized segment from the sockets peer.
    constexpr std::size_t slot = 16384;
    auto cq = bed.prov.createCq();
    std::vector<std::uint8_t> buf(8 * slot);
    auto mr = bed.prov.registerMemory(buf);
    verbs::Acceptor acc(bed.prov, 7, cq, cq);
    std::shared_ptr<verbs::QueuePair> sqp;
    acc.acceptOne([&](std::shared_ptr<verbs::QueuePair> q) {
        sqp = q;
        for (std::uint64_t i = 0; i < 8; ++i)
            q->postRecv(i, *mr, i * slot, slot);
    });

    // Sockets client connects and writes a stream.
    auto cfg = bed.shost.stack().defaultTcpConfig();
    cfg.noDelay = true;
    auto csock = bed.shost.stack().tcpConnect(
        inet::SockAddr{bed.sockAddr, 30000},
        inet::SockAddr{bed.qpipAddr, 7}, cfg, nullptr);
    ASSERT_TRUE(bed.sm.runUntilCondition(
        [&] { return csock->connected() && sqp != nullptr; },
        10 * sim::oneSec));

    auto data = pattern(20000, 5);
    csock->sendAll(data, [] {});

    // Collect per-segment messages on the QP until the stream is in.
    std::vector<std::uint8_t> got;
    apps::waitLoop(*cq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ASSERT_EQ(c.status, verbs::WcStatus::Success);
        got.insert(got.end(),
                   buf.begin() +
                       static_cast<std::ptrdiff_t>(c.wrId * slot),
                   buf.begin() + static_cast<std::ptrdiff_t>(
                                     c.wrId * slot + c.byteLen));
        sqp->postRecv(c.wrId, *mr, c.wrId * slot, slot);
    });
    bed.sm.runUntilCondition([&] { return got.size() >= data.size(); },
                              30 * sim::oneSec);
    ASSERT_EQ(got.size(), data.size());
    EXPECT_EQ(got, data);
    // The byte stream arrived as multiple segment-sized messages.
    EXPECT_GT(csock->connection().stats().segsOut.value(), 2u);
}

TEST(Interop, UdpOverIpv4FragmentsAndReassembles)
{
    // A 4000-byte datagram over a 1500-byte MTU: the kernel stack must
    // fragment on output (RFC 791) and reassemble on input; the wire
    // capture shows genuine v4 fragment headers.
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet);
    net::PcapWriter pcap;
    net::tapLink(bed.fabric().linkFor(0), pcap);

    auto server = bed.host(1).stack().udpBind(bed.addr(1, 9000));
    server->recvFrom([&](host::UdpSocket::Datagram d) {
        server->sendTo(std::move(d.data), d.from);
    });

    auto client = bed.host(0).stack().udpBind(bed.addr(0, 9001));
    const auto msg = pattern(4000, 17);
    client->sendTo(msg, bed.addr(1, 9000));
    std::vector<std::uint8_t> echoed;
    client->recvFrom([&](host::UdpSocket::Datagram d) {
        echoed = std::move(d.data);
    });
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return !echoed.empty(); }, 10 * sim::oneSec));
    EXPECT_EQ(echoed, msg);

    // Host 0's spoke saw the outbound fragments and the echo's.
    const auto frames = pcapFrames(pcap.bytes());
    ASSERT_GE(frames.size(), 6u); // 3 fragments each way
    std::size_t fragments = 0;
    bool saw_first = false, saw_last = false;
    for (const auto &f : frames) {
        ASSERT_FALSE(f.empty());
        ASSERT_EQ(f[0] >> 4, 4); // v4 fabric end to end
        inet::IpFrame frame;
        ASSERT_TRUE(inet::parseIpv4(f, frame));
        EXPECT_EQ(frame.hopLimit, inet::defaultHopLimit);
        if (!frame.frag)
            continue;
        ++fragments;
        EXPECT_EQ(frame.frag->offsetBytes % 8, 0u);
        if (frame.frag->offsetBytes == 0) {
            EXPECT_TRUE(frame.frag->moreFragments);
            saw_first = true;
        }
        if (!frame.frag->moreFragments) {
            EXPECT_GT(frame.frag->offsetBytes, 0u);
            saw_last = true;
        }
    }
    EXPECT_GE(fragments, 6u);
    EXPECT_TRUE(saw_first);
    EXPECT_TRUE(saw_last);
    // Both ends reassembled without loss or expiry.
    const auto &reass = bed.host(0).stack().inet().reassembler();
    EXPECT_GT(reass.reassembled.value(), 0u);
    EXPECT_EQ(reass.expired.value(), 0u);
}

TEST(Interop, UdpSendToReportsMsgSize)
{
    // sendto() with a payload no IP datagram can carry: the error
    // surfaces through the completion callback (EMSGSIZE), not as a
    // silent drop.
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet);
    auto sock = bed.host(0).stack().udpBind(bed.addr(0, 7000));
    std::optional<inet::IpSendResult> result;
    sock->sendTo(std::vector<std::uint8_t>(70000), bed.addr(1, 7001),
                 [&](inet::IpSendResult r) { result = r; });
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return result.has_value(); }, sim::oneSec));
    EXPECT_EQ(*result, inet::IpSendResult::MsgSize);
    EXPECT_EQ(bed.host(0).stack().inet().msgSizeDrops.value(), 1u);

    // A datagram that fits reports Ok through the same path.
    result.reset();
    sock->sendTo(pattern(100), bed.addr(1, 7001),
                 [&](inet::IpSendResult r) { result = r; });
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return result.has_value(); }, sim::oneSec));
    EXPECT_EQ(*result, inet::IpSendResult::Ok);
}

TEST(Interop, QpipOverIpv4TtcpSmoke)
{
    // The shared engine makes the address family a configuration
    // knob: the same QPIP firmware datapath runs over IPv4.
    apps::QpipTestbed bed(2, apps::qpipNativeMtu, 1,
                          nic::QpipNicParams{}, {},
                          apps::IpFamily::V4);
    net::PcapWriter pcap;
    net::tapLink(bed.fabric().linkFor(0), pcap);

    auto res = apps::runQpipTtcp(bed, 2 * 1024 * 1024);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.mbPerSec, 0.0);

    // Everything on the wire was genuine IPv4.
    const auto frames = pcapFrames(pcap.bytes());
    ASSERT_GT(frames.size(), 0u);
    for (const auto &f : frames) {
        ASSERT_FALSE(f.empty());
        EXPECT_EQ(f[0] >> 4, 4);
    }
}
