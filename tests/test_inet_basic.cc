/**
 * @file
 * Unit tests for the inet building blocks: Internet checksum,
 * addresses, IPv4/IPv6 headers, IPv6 fragmentation/reassembly, UDP
 * and TCP header serialization, RTT estimation and the reassembly
 * queue.
 */

#include <gtest/gtest.h>

#include "inet/checksum.hh"
#include "inet/inet_addr.hh"
#include "inet/ip_frag.hh"
#include "inet/ipv4.hh"
#include "inet/ipv6.hh"
#include "inet/rtt_estimator.hh"
#include "inet/tcp_header.hh"
#include "inet/tcp_reass.hh"
#include "inet/udp.hh"

using namespace qpip;
using namespace qpip::inet;

// ---------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------

TEST(Checksum, Rfc1071ReferenceVector)
{
    // Example from RFC 1071 section 3.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internetChecksum(data), 0xffff - 0xddf2);
}

TEST(Checksum, OddLengthAndVerify)
{
    const std::uint8_t data[] = {0x01, 0x02, 0x03};
    auto c = internetChecksum(data);
    // Appending the checksum makes the whole thing verify.
    std::vector<std::uint8_t> with(data, data + 3);
    with.push_back(0); // pad to align the checksum on a word
    with.push_back(static_cast<std::uint8_t>(c >> 8));
    with.push_back(static_cast<std::uint8_t>(c));
    // Folded sum of data+checksum is 0xffff only when aligned; here
    // just check determinism and non-zero.
    EXPECT_NE(c, 0);
    EXPECT_EQ(c, internetChecksum(data));
}

TEST(Checksum, AccumulatorMatchesOneShot)
{
    std::vector<std::uint8_t> data(257);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    ChecksumAccumulator acc;
    acc.add(std::span(data).subspan(0, 100));
    acc.add(std::span(data).subspan(100, 57));
    acc.add(std::span(data).subspan(157));
    EXPECT_EQ(acc.finish(), internetChecksum(data));
}

// ---------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------

TEST(InetAddr, ParsesAndFormatsV4)
{
    auto a = Ipv4Addr::parse("10.0.0.1");
    ASSERT_TRUE(a);
    EXPECT_EQ(a->value, 0x0a000001u);
    EXPECT_EQ(a->toString(), "10.0.0.1");
    EXPECT_FALSE(Ipv4Addr::parse("10.0.0"));
    EXPECT_FALSE(Ipv4Addr::parse("10.0.0.256"));
    EXPECT_FALSE(Ipv4Addr::parse("ten.0.0.1"));
}

TEST(InetAddr, ParsesAndFormatsV6)
{
    auto a = Ipv6Addr::parse("fd00::2");
    ASSERT_TRUE(a);
    EXPECT_EQ(a->bytes[0], 0xfd);
    EXPECT_EQ(a->bytes[15], 0x02);
    EXPECT_EQ(a->toString(), "fd00::2");

    auto b = Ipv6Addr::parse("2001:db8:0:0:1:0:0:1");
    ASSERT_TRUE(b);
    EXPECT_EQ(b->toString(), "2001:db8::1:0:0:1");

    auto all_zero = Ipv6Addr::parse("::");
    ASSERT_TRUE(all_zero);
    EXPECT_EQ(all_zero->toString(), "::");

    EXPECT_FALSE(Ipv6Addr::parse("1::2::3"));
    EXPECT_FALSE(Ipv6Addr::parse("12345::1"));
}

TEST(InetAddr, FamilyAgnosticWrapper)
{
    auto v4 = InetAddr::parse("192.168.1.5");
    auto v6 = InetAddr::parse("fd00::1");
    ASSERT_TRUE(v4 && v6);
    EXPECT_FALSE(v4->isV6());
    EXPECT_TRUE(v6->isV6());
    EXPECT_NE(*v4, *v6);
    SockAddr sa{*v6, 7};
    EXPECT_EQ(sa.toString(), "[fd00::1]:7");
}

// ---------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------

namespace {

IpDatagram
v4Datagram(std::size_t payload_len)
{
    IpDatagram d;
    d.src = *InetAddr::parse("10.0.0.1");
    d.dst = *InetAddr::parse("10.0.0.2");
    d.proto = IpProto::Tcp;
    d.payload.assign(payload_len, 0x42);
    return d;
}

IpDatagram
v6Datagram(std::size_t payload_len)
{
    IpDatagram d;
    d.src = *InetAddr::parse("fd00::1");
    d.dst = *InetAddr::parse("fd00::2");
    d.proto = IpProto::Tcp;
    d.payload.resize(payload_len);
    for (std::size_t i = 0; i < payload_len; ++i)
        d.payload[i] = static_cast<std::uint8_t>(i);
    return d;
}

} // namespace

TEST(Ipv4, RoundTrip)
{
    auto d = v4Datagram(100);
    auto wire = serializeIpv4(d, 77);
    EXPECT_EQ(wire.size(), ipv4HeaderBytes + 100);

    IpDatagram out;
    ASSERT_TRUE(parseIpv4(wire, out));
    EXPECT_EQ(out.src, d.src);
    EXPECT_EQ(out.dst, d.dst);
    EXPECT_EQ(out.proto, IpProto::Tcp);
    EXPECT_EQ(out.payload, d.payload);
}

TEST(Ipv4, RejectsCorruptHeader)
{
    auto wire = serializeIpv4(v4Datagram(50), 1);
    wire[12] ^= 0xff; // flip a source-address byte
    IpDatagram out;
    EXPECT_FALSE(parseIpv4(wire, out));
}

TEST(Ipv4, RejectsTruncated)
{
    auto wire = serializeIpv4(v4Datagram(50), 1);
    wire.resize(10);
    IpDatagram out;
    EXPECT_FALSE(parseIpv4(wire, out));
}

// ---------------------------------------------------------------------
// IPv6 + fragmentation
// ---------------------------------------------------------------------

TEST(Ipv6, RoundTripAtomic)
{
    auto d = v6Datagram(200);
    auto wire = serializeIpv6(d);
    EXPECT_EQ(wire.size(), ipv6HeaderBytes + 200);
    Ipv6Packet out;
    ASSERT_TRUE(parseIpv6(wire, out));
    EXPECT_FALSE(out.frag.has_value());
    EXPECT_EQ(out.src, d.src);
    EXPECT_EQ(out.dst, d.dst);
    EXPECT_EQ(out.payload, d.payload);
}

TEST(Ipv6, FragmentsToMtuAndReassembles)
{
    auto d = v6Datagram(16384);
    auto frames = fragmentIpv6(d, 1500, 42);
    EXPECT_GT(frames.size(), 10u);
    for (const auto &f : frames)
        EXPECT_LE(f.size(), 1500u);

    Ipv6Reassembler reass;
    std::optional<IpDatagram> got;
    for (const auto &f : frames) {
        Ipv6Packet pkt;
        ASSERT_TRUE(parseIpv6(f, pkt));
        ASSERT_TRUE(pkt.frag.has_value());
        EXPECT_EQ(pkt.frag->ident, 42u);
        auto r = reass.offer(pkt, 0);
        if (r)
            got = std::move(r);
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, d.payload);
    EXPECT_EQ(got->proto, IpProto::Tcp);
    EXPECT_EQ(reass.pending(), 0u);
}

TEST(Ipv6, ReassemblesOutOfOrderFragments)
{
    auto d = v6Datagram(5000);
    auto frames = fragmentIpv6(d, 1500, 7);
    std::reverse(frames.begin(), frames.end());
    Ipv6Reassembler reass;
    std::optional<IpDatagram> got;
    for (const auto &f : frames) {
        Ipv6Packet pkt;
        ASSERT_TRUE(parseIpv6(f, pkt));
        auto r = reass.offer(pkt, 0);
        if (r)
            got = std::move(r);
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, d.payload);
}

TEST(Ipv6, DuplicateFragmentsAreHarmless)
{
    auto d = v6Datagram(4000);
    auto frames = fragmentIpv6(d, 1500, 9);
    Ipv6Reassembler reass;
    std::optional<IpDatagram> got;
    for (int round = 0; round < 2 && !got; ++round) {
        for (const auto &f : frames) {
            Ipv6Packet pkt;
            ASSERT_TRUE(parseIpv6(f, pkt));
            auto r = reass.offer(pkt, 0);
            if (r) {
                got = std::move(r);
                break;
            }
        }
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload, d.payload);
}

TEST(Ipv6, PartialDatagramExpires)
{
    auto d = v6Datagram(4000);
    auto frames = fragmentIpv6(d, 1500, 11);
    Ipv6Reassembler reass(100); // 100-tick timeout
    Ipv6Packet pkt;
    ASSERT_TRUE(parseIpv6(frames[0], pkt));
    EXPECT_FALSE(reass.offer(pkt, 0).has_value());
    EXPECT_EQ(reass.pending(), 1u);
    reass.expire(1000);
    EXPECT_EQ(reass.pending(), 0u);
    EXPECT_EQ(reass.expired.value(), 1u);
}

TEST(Ipv6, NoFragmentationWhenItFits)
{
    auto d = v6Datagram(1000);
    auto frames = fragmentIpv6(d, 1500, 1);
    EXPECT_EQ(frames.size(), 1u);
    Ipv6Packet pkt;
    ASSERT_TRUE(parseIpv6(frames[0], pkt));
    EXPECT_FALSE(pkt.frag.has_value());
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

TEST(Udp, RoundTripWithChecksum)
{
    auto src = *InetAddr::parse("fd00::1");
    auto dst = *InetAddr::parse("fd00::2");
    std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
    auto wire = serializeUdp(src, dst, 1000, 2000, payload);
    EXPECT_EQ(wire.size(), udpHeaderBytes + payload.size());

    UdpHeader hdr;
    std::span<const std::uint8_t> out;
    ASSERT_TRUE(parseUdp(src, dst, wire, hdr, out));
    EXPECT_EQ(hdr.srcPort, 1000);
    EXPECT_EQ(hdr.dstPort, 2000);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), payload.begin()));
}

TEST(Udp, DetectsCorruption)
{
    auto src = *InetAddr::parse("10.0.0.1");
    auto dst = *InetAddr::parse("10.0.0.2");
    std::vector<std::uint8_t> payload(64, 0x77);
    auto wire = serializeUdp(src, dst, 5, 6, payload);
    wire[12] ^= 0x01;
    UdpHeader hdr;
    std::span<const std::uint8_t> out;
    EXPECT_FALSE(parseUdp(src, dst, wire, hdr, out));
}

TEST(Udp, DetectsWrongPseudoHeader)
{
    auto src = *InetAddr::parse("10.0.0.1");
    auto dst = *InetAddr::parse("10.0.0.2");
    auto other = *InetAddr::parse("10.0.0.9");
    auto wire = serializeUdp(src, dst, 5, 6, std::vector<std::uint8_t>{1});
    UdpHeader hdr;
    std::span<const std::uint8_t> out;
    EXPECT_FALSE(parseUdp(src, other, wire, hdr, out));
}

// ---------------------------------------------------------------------
// TCP header
// ---------------------------------------------------------------------

TEST(TcpHeader, RoundTripWithOptions)
{
    auto src = *InetAddr::parse("fd00::1");
    auto dst = *InetAddr::parse("fd00::2");
    TcpHeader hdr;
    hdr.srcPort = 4000;
    hdr.dstPort = 80;
    hdr.seq = 0xdeadbeef;
    hdr.ack = 0x01020304;
    hdr.flags = tcpflags::syn | tcpflags::ack;
    hdr.wnd = 8192;
    hdr.mss = 16384;
    hdr.wscale = 8;
    hdr.timestamps = TcpTimestamps{123456, 654321};

    std::vector<std::uint8_t> payload{9, 8, 7};
    auto wire = serializeTcp(src, dst, hdr, payload);

    TcpHeader out;
    std::span<const std::uint8_t> out_payload;
    ASSERT_TRUE(parseTcp(src, dst, wire, out, out_payload));
    EXPECT_EQ(out.srcPort, 4000);
    EXPECT_EQ(out.dstPort, 80);
    EXPECT_EQ(out.seq, 0xdeadbeefu);
    EXPECT_EQ(out.ack, 0x01020304u);
    EXPECT_TRUE(out.has(tcpflags::syn));
    EXPECT_TRUE(out.has(tcpflags::ack));
    ASSERT_TRUE(out.mss);
    EXPECT_EQ(*out.mss, 16384);
    ASSERT_TRUE(out.wscale);
    EXPECT_EQ(*out.wscale, 8);
    ASSERT_TRUE(out.timestamps);
    EXPECT_EQ(out.timestamps->value, 123456u);
    EXPECT_EQ(out.timestamps->echo, 654321u);
    EXPECT_EQ(out_payload.size(), 3u);
}

TEST(TcpHeader, NoOptionsIsTwentyBytes)
{
    TcpHeader hdr;
    EXPECT_EQ(hdr.headerBytes(), tcpMinHeaderBytes);
    auto src = *InetAddr::parse("10.0.0.1");
    auto dst = *InetAddr::parse("10.0.0.2");
    auto wire = serializeTcp(src, dst, hdr, {});
    EXPECT_EQ(wire.size(), tcpMinHeaderBytes);
}

TEST(TcpHeader, ChecksumCatchesPayloadCorruption)
{
    auto src = *InetAddr::parse("10.0.0.1");
    auto dst = *InetAddr::parse("10.0.0.2");
    TcpHeader hdr;
    std::vector<std::uint8_t> payload(100, 0x11);
    auto wire = serializeTcp(src, dst, hdr, payload);
    wire[wire.size() - 1] ^= 0x80;
    TcpHeader out;
    std::span<const std::uint8_t> p;
    EXPECT_FALSE(parseTcp(src, dst, wire, out, p));
}

TEST(TcpHeader, SequenceArithmeticWraps)
{
    EXPECT_TRUE(seqLt(0xfffffff0u, 0x10u));
    EXPECT_TRUE(seqGt(0x10u, 0xfffffff0u));
    EXPECT_TRUE(seqLe(5u, 5u));
    EXPECT_TRUE(seqGe(5u, 5u));
    EXPECT_FALSE(seqLt(5u, 5u));
}

// ---------------------------------------------------------------------
// RTT estimator
// ---------------------------------------------------------------------

TEST(RttEstimator, FirstSampleInitializes)
{
    RttEstimator rtt(sim::oneMs, 60 * sim::oneSec);
    EXPECT_FALSE(rtt.hasSample());
    EXPECT_EQ(rtt.rto(), sim::oneSec); // RFC 6298 initial
    rtt.sample(100 * sim::oneUs);
    EXPECT_TRUE(rtt.hasSample());
    EXPECT_EQ(rtt.srtt(), 100 * sim::oneUs);
    EXPECT_EQ(rtt.rttvar(), 50 * sim::oneUs);
}

TEST(RttEstimator, ConvergesToStableRtt)
{
    RttEstimator rtt(sim::oneMs, 60 * sim::oneSec);
    for (int i = 0; i < 100; ++i)
        rtt.sample(200 * sim::oneUs);
    EXPECT_NEAR(static_cast<double>(rtt.srtt()),
                static_cast<double>(200 * sim::oneUs),
                static_cast<double>(sim::oneUs));
    // Variance decays toward zero; RTO approaches srtt plus the
    // RFC 6298 minimum variance term (1 ms).
    EXPECT_LE(rtt.rto(), sim::oneMs + 210 * sim::oneUs);
    EXPECT_GE(rtt.rto(), sim::oneMs);
}

TEST(RttEstimator, BackoffDoublesAndResets)
{
    RttEstimator rtt(100 * sim::oneMs, 60 * sim::oneSec);
    rtt.sample(10 * sim::oneMs);
    const auto base = rtt.rto();
    rtt.backoff();
    EXPECT_EQ(rtt.rto(), 2 * base);
    rtt.backoff();
    EXPECT_EQ(rtt.rto(), 4 * base);
    rtt.resetBackoff();
    EXPECT_EQ(rtt.rto(), base);
}

TEST(RttEstimator, RtoSaturatesAtMax)
{
    RttEstimator rtt(100 * sim::oneMs, sim::oneSec);
    rtt.sample(500 * sim::oneMs);
    for (int i = 0; i < 20; ++i)
        rtt.backoff();
    EXPECT_EQ(rtt.rto(), sim::oneSec);
}

// ---------------------------------------------------------------------
// TCP reassembly queue
// ---------------------------------------------------------------------

namespace {

std::vector<std::uint8_t>
bytesOf(std::initializer_list<int> vals)
{
    std::vector<std::uint8_t> v;
    for (int x : vals)
        v.push_back(static_cast<std::uint8_t>(x));
    return v;
}

} // namespace

TEST(TcpReassembly, HoldsGapThenDrains)
{
    TcpReassembly q;
    std::vector<std::uint8_t> out;
    q.insert(10, bytesOf({10, 11, 12}), 0);
    EXPECT_EQ(q.extract(0, out), 0u);
    q.insert(0, bytesOf({0, 1, 2, 3, 4}), 0);
    EXPECT_EQ(q.extract(0, out), 5u);
    // Still a gap 5..10.
    q.insert(5, bytesOf({5, 6, 7, 8, 9}), 5);
    EXPECT_EQ(q.extract(5, out), 8u);
    EXPECT_EQ(out.size(), 13u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i);
    EXPECT_TRUE(q.empty());
}

TEST(TcpReassembly, OverlapKeepsFirstCopy)
{
    TcpReassembly q;
    q.insert(4, bytesOf({104, 105, 106}), 0);
    q.insert(2, bytesOf({2, 3, 4, 5, 6, 7}), 0);
    q.insert(0, bytesOf({0, 1}), 0);
    std::vector<std::uint8_t> out;
    EXPECT_EQ(q.extract(0, out), 8u);
    EXPECT_EQ(out, bytesOf({0, 1, 2, 3, 104, 105, 106, 7}));
}

TEST(TcpReassembly, TrimsAlreadyDelivered)
{
    TcpReassembly q;
    q.insert(0, bytesOf({90, 91, 5, 6}), 2); // first 2 stale
    std::vector<std::uint8_t> out;
    EXPECT_EQ(q.extract(2, out), 2u);
    EXPECT_EQ(out, bytesOf({5, 6}));
}
