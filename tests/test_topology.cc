/**
 * @file
 * Multi-switch fabric tests: dual-star and 2-level fat-tree shapes,
 * all-pairs ttcp traffic across them (serial), and parallel-engine
 * smoke runs over a partitioned testbed.
 */

#include <gtest/gtest.h>

#include "apps/testbed.hh"
#include "apps/ttcp.hh"
#include "net/topology.hh"
#include "sim/parallel_engine.hh"
#include "sim/simulation.hh"

using namespace qpip;
using apps::FabricTopology;
using apps::SocketsFabric;

namespace {

/** Forwarded-packet count of switch @p name, 0 if unregistered. */
std::uint64_t
forwardedOf(sim::Simulation &sim, const std::string &name)
{
    const auto *c = sim.stats().counter(name + ".forwarded");
    return c != nullptr ? c->value() : 0;
}

} // namespace

TEST(Topology, DualStarShape)
{
    sim::Simulation simu(1);
    net::DualStarFabric fab(simu, "ds", net::gigabitEthernetLink(), 4);
    for (net::NodeId n = 0; n < 4; ++n)
        fab.addNode(n);
    EXPECT_EQ(fab.numSwitches(), 2u);
    // 4 spokes + 1 trunk.
    EXPECT_EQ(fab.edges().size(), 5u);
    EXPECT_EQ(fab.minPropDelay(),
              net::gigabitEthernetLink().propDelay);
    // Every host has a spoke.
    for (net::NodeId n = 0; n < 4; ++n)
        EXPECT_NO_THROW(fab.linkFor(n));
    simu.eventQueue().clear();
}

TEST(Topology, FatTreeShape)
{
    sim::Simulation simu(1);
    net::FatTreeFabric fab(simu, "ft", net::gigabitEthernetLink(), 8,
                           2, 2);
    for (net::NodeId n = 0; n < 8; ++n)
        fab.addNode(n);
    EXPECT_EQ(fab.numEdgeSwitches(), 4u);
    EXPECT_EQ(fab.numSpineSwitches(), 2u);
    EXPECT_EQ(fab.numSwitches(), 6u);
    // 8 spokes + 4 edges x 2 spines uplinks.
    EXPECT_EQ(fab.edges().size(), 16u);
    simu.eventQueue().clear();
}

TEST(Topology, DualStarAllPairsTtcp)
{
    apps::SocketsTestbed bed(4, SocketsFabric::GigabitEthernet, 1,
                             host::HostCostModel{},
                             FabricTopology::DualStar);
    const auto pairs = apps::allPairs(4);
    ASSERT_EQ(pairs.size(), 12u);
    const auto r = apps::runSocketsTtcpPairs(bed, pairs, 32 * 1024);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.pairsCompleted, 12u);
    EXPECT_GT(r.aggMbPerSec, 0.0);
    // Cross-star pairs exist, so both switches and the trunk carry
    // traffic.
    EXPECT_GT(forwardedOf(bed.sim(), "fabric.switch0"), 0u);
    EXPECT_GT(forwardedOf(bed.sim(), "fabric.switch1"), 0u);
}

TEST(Topology, FatTreeAllPairsTtcp)
{
    apps::SocketsTestbed bed(8, SocketsFabric::GigabitEthernet, 1,
                             host::HostCostModel{},
                             FabricTopology::FatTree);
    const auto pairs = apps::allPairs(8);
    ASSERT_EQ(pairs.size(), 56u);
    const auto r = apps::runSocketsTtcpPairs(bed, pairs, 16 * 1024);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.pairsCompleted, 56u);
    // Every edge and spine switch forwards something under all-pairs.
    for (const auto name :
         {"fabric.edge0", "fabric.edge1", "fabric.edge2",
          "fabric.edge3", "fabric.spine0", "fabric.spine1"}) {
        EXPECT_GT(forwardedOf(bed.sim(), name), 0u) << name;
    }
}

TEST(Topology, DualStarParallelSocketsSmoke)
{
    apps::SocketsTestbed bed(8, SocketsFabric::GigabitEthernet, 1,
                             host::HostCostModel{},
                             FabricTopology::DualStar);
    bed.enableParallel(2);
    ASSERT_NE(bed.engine(), nullptr);
    // 8 host partitions + 2 switch partitions.
    EXPECT_EQ(bed.engine()->numPartitions(), 10u);
    EXPECT_EQ(bed.engine()->lookahead(), bed.fabric().minPropDelay());

    // Ring traffic: every host sends to its clockwise neighbour.
    std::vector<apps::TtcpPair> pairs;
    for (std::size_t i = 0; i < 8; ++i)
        pairs.push_back(apps::TtcpPair{i, (i + 1) % 8});
    const auto r = apps::runSocketsTtcpPairs(bed, pairs, 32 * 1024);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.pairsCompleted, 8u);
    EXPECT_GT(bed.engine()->epochs(), 0u);
    EXPECT_GT(bed.engine()->executed(), 0u);
}

TEST(Topology, DualStarParallelQpipSmoke)
{
    apps::QpipTestbed bed(2, apps::qpipNativeMtu, 1,
                          nic::QpipNicParams{}, host::HostCostModel{},
                          apps::IpFamily::V6,
                          FabricTopology::DualStar);
    bed.enableParallel(2);
    ASSERT_NE(bed.engine(), nullptr);
    // Hosts 0 and 1 sit on different stars: the transfer crosses the
    // trunk and two partition boundaries each way.
    const auto r = apps::runQpipTtcp(bed, 64 * 1024);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.mbPerSec, 0.0);
    EXPECT_GT(bed.engine()->epochs(), 0u);
}
