// qpip-lint fixture: H1 — a header still using an #ifndef guard
// instead of '#pragma once'.
#ifndef QPIP_TESTS_LINT_FIXTURES_H1_GUARD_HH
#define QPIP_TESTS_LINT_FIXTURES_H1_GUARD_HH

inline int
fixtureGuarded()
{
    return 1;
}

#endif // QPIP_TESTS_LINT_FIXTURES_H1_GUARD_HH
