// qpip-lint fixture: L1 layering violation — an inet-layer file
// reaching up the DAG into host. Never compiled, only linted.
// qpip-lint-layer: inet
#include "host/host.hh"
