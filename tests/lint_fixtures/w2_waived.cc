// qpip-lint-wire-file
// W2 fixture: the diverging reader is waived at its definition.

std::vector<std::uint8_t>
serializeBar(const Bar &m)
{
    ByteWriter w;
    w.u8(m.kind);
    w.u16(m.len);
    return w.take();
}

Bar
parseBar(std::span<const std::uint8_t> in) // qpip-lint: wire-pair-ok(fixture: divergence is the point)
{
    ByteReader r(in);
    Bar m;
    m.kind = r.u8();
    m.len = r.u32();
    return m;
}
