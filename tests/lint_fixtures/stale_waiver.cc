// A1 fixture: waivers whose rules no longer fire are themselves
// findings (and --fix strips them).

int
answer()
{
    // qpip-lint: stat-path-ok(stale: the lookup below was deleted)
    int x = 40;
    // qpip-lint: ref-capture-ok(stale: the callback moved elsewhere)
    return x + 2;
}
