// qpip-lint-layer: nic
// T2 fixture: mutable statics and foreign-queue scheduling fire;
// constants and casts do not.

static int callCount = 0;
static constexpr int kMaxRetries = 4;

void
touch(Mailbox &mb, EventFn fn)
{
    static bool warned = false;
    callCount += warned ? 1 : static_cast<int>(kMaxRetries);
    mb.peer().eventQueue().schedule(10, fn);
    eqRemote->scheduleIn(20, fn);
}
