// qpip-lint-layer: nic
// E1 fixture: by-reference captures in deferred callbacks fire;
// value captures and subscripts do not.

void
arm(Timer &t, Conn &conn, int seq)
{
    t.schedule(10, [&] { conn.touch(seq); });
    t.scheduleIn(20, [&conn, seq] { conn.touch(seq); });
    t.exec([seq] { trace(seq); });
    t.scheduleTimer(30, [seq](int slot) { table[slot] = seq; });
}
