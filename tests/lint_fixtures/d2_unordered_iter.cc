// qpip-lint fixture: D2 iteration over an unordered container. One
// violation, on a known line, asserted by tests/test_lint.cc.
// qpip-lint-layer: inet
#include <unordered_map>

int
fixtureSum()
{
    std::unordered_map<int, int> table;
    int sum = 0;
    for (auto &[k, v] : table)
        sum += k + v;
    return sum;
}
