// S1 fixture: registration-literal grammar, per-scope uniqueness,
// and lookup resolution against the declared set.

struct StatGroup;
struct StatRegistry;

void
registerStats(StatGroup &g)
{
    g.add("pkts.in", nullptr);
    g.add("pkts.drop rate", nullptr);
    g.add("pkts.in", nullptr);
    g.add("pkts.*", nullptr);
}

unsigned long
readStats(StatRegistry &reg)
{
    return reg.counterValue("pkts.in") +
           reg.counterValue("pkts.absent");
}
