// qpip-lint fixture: L1 private-include violation — an apps-layer
// file reaching into the NIC's private transport engines. The plain
// DAG check is silent here (nic sits below apps); the private-header
// edge must fire anyway. Never compiled, only linted.
// qpip-lint-layer: apps
#include "nic/transport/rud_engine.hh"

// A deliberate, documented exception stays silent:
// qpip-lint: layer-ok(fixture: white-box engine probe)
#include "nic/transport/rc_engine.hh"
