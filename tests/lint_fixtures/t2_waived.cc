// qpip-lint-layer: nic
// T2 fixture: the same shapes, each carrying its waiver.

// qpip-lint: partition-ok(fixture: cold counter, written only before the partitions start)
static int bootCount = 0;

void
touch(Mailbox &mb, EventFn fn)
{
    // qpip-lint: partition-ok(fixture: the link-side handoff is under test)
    mb.peer().eventQueue().schedule(10, fn);
}
