// qpip-lint-wire-file
// W2 fixture: a diverging pair plus both orphan directions.

std::vector<std::uint8_t>
serializeFoo(const Foo &m)
{
    ByteWriter w;
    w.u8(m.kind);
    w.u16(m.len);
    w.bytes(m.payload);
    return w.take();
}

Foo
parseFoo(std::span<const std::uint8_t> in)
{
    ByteReader r(in);
    Foo m;
    m.kind = r.u8();
    m.len = r.u32();
    m.payload = r.rest();
    return m;
}

std::vector<std::uint8_t>
serializeOrphanPing(const Ping &p)
{
    ByteWriter w;
    w.u32(p.seq);
    return w.take();
}

Pong
parseOrphanPong(std::span<const std::uint8_t> in)
{
    ByteReader r(in);
    Pong p;
    p.seq = r.u32();
    return p;
}
