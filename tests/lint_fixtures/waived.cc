// qpip-lint fixture: a correctly waived D2 violation must not fire.
// The waiver comment names the rule token and carries a reason.
// qpip-lint-layer: inet
#include <unordered_map>

int
fixtureWaived()
{
    std::unordered_map<int, int> table;
    int sum = 0;
    // qpip-lint: unordered-iter-ok(fixture: order-insensitive sum)
    for (auto &[k, v] : table)
        sum += k + v;
    return sum;
}
