// S1 fixture: an unresolvable lookup is silenced by its waiver, and
// the waiver counts as used (so the A1 audit stays quiet too).

struct StatRegistry;

unsigned long
readStats(StatRegistry &reg)
{
    // qpip-lint: stat-path-ok(fixture: the waiver machinery itself is under test)
    return reg.counterValue("absent.path");
}
