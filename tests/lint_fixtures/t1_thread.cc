// qpip-lint fixture: T1 threading primitives outside src/sim.
// Violations on known lines, asserted by tests/test_lint.cc.
// qpip-lint-layer: net
#include <mutex>

std::mutex gFixtureMutex;

thread_local int gFixtureTls = 0;

// qpip-lint: thread-ok(fixture: waived atomic stays silent)
std::atomic<int> gFixtureWaived{0};

int
fixtureLocked()
{
    std::lock_guard<std::mutex> lock(gFixtureMutex);
    return gFixtureTls;
}
