// qpip-lint-layer: nic
// E1 fixture: the same capture, waived with its lifetime story.

void
arm(Timer &t, Conn &conn, int seq)
{
    // qpip-lint: ref-capture-ok(fixture: conn is owned by the caller and outlives the timer)
    t.schedule(10, [&conn, seq] { conn.touch(seq); });
}
