// qpip-lint fixture: W1 wire-format hygiene — struct-memcpy and
// reinterpret_cast onto a packet byte buffer. Two violations on
// known lines, asserted by tests/test_lint.cc.
// qpip-lint-layer: inet
#include <cstdint>
#include <cstring>

std::uint32_t
fixtureParse(const std::uint8_t *wire)
{
    std::uint32_t v = 0;
    std::memcpy(&v, wire, sizeof(v));
    return v + *reinterpret_cast<const std::uint32_t *>(wire + 4);
}
