// qpip-lint fixture: D1 nondeterminism sources. One violation, on a
// known line, asserted by tests/test_lint.cc.
// qpip-lint-layer: sim
#include <cstdlib>

int
fixtureSeed()
{
    return std::rand();
}
