// A1 fixture: a token that names no rule is flagged wherever it
// appears.

int
zero()
{
    return 0; // qpip-lint: made-up-ok(no rule spells this token)
}
