/**
 * @file
 * A self-contained harness for TcpConnection protocol tests: two
 * endpoints joined by a fixed-delay pipe. Every segment really is
 * serialized to wire bytes and re-parsed (checksum verified) on
 * delivery, and a per-node txFilter lets tests drop, delay or corrupt
 * specific segments deterministically.
 */

#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "inet/tcp_conn.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace qpip::test {

/**
 * One endpoint: environment + observer + recording.
 */
class TcpTestNode : public inet::TcpEnv, public inet::TcpObserver
{
  public:
    TcpTestNode(sim::Simulation &sim, inet::SockAddr addr,
                inet::TcpConfig cfg)
        : sim_(sim), addr_(addr), cfg_(cfg)
    {}

    /** Join two nodes (must be called once, symmetric). */
    static void
    join(TcpTestNode &a, TcpTestNode &b)
    {
        a.peer_ = &b;
        b.peer_ = &a;
    }

    /** Create this node's connection object. */
    inet::TcpConnection &
    makeConnection()
    {
        conn_ = std::make_unique<inet::TcpConnection>(*this, *this,
                                                      cfg_);
        return *conn_;
    }

    /** Active open toward the peer. */
    void
    connect()
    {
        makeConnection();
        conn_->openActive(addr_, peer_->addr_);
    }

    /** Accept the next SYN automatically (passive open). */
    void listen() { listening_ = true; }

    inet::TcpConnection &conn() { return *conn_; }
    bool hasConn() const { return conn_ != nullptr; }
    const inet::SockAddr &addr() const { return addr_; }

    // --- knobs ---------------------------------------------------------
    /** One-way pipe delay toward the peer. */
    sim::Tick oneWayDelay = 50 * sim::oneUs;

    /**
     * Outbound filter: return false to drop the segment. Called with
     * the parsed header for convenience.
     */
    std::function<bool(const inet::TcpHeader &,
                       std::span<const std::uint8_t> payload,
                       const inet::TcpSegMeta &)>
        txFilter;

    /** Receive window to advertise (buffer space). */
    std::uint32_t window = 1 << 20;

    /**
     * When true, the node behaves like an application that never
     * reads: the advertised window is `window` minus everything
     * delivered so far (a sockbuf filling up).
     */
    bool windowTracksBuffer = false;

    /** Message mode: whether a receive buffer is posted. */
    bool acceptMessages = true;

    // --- recorded state -------------------------------------------------
    std::vector<std::uint8_t> received;       ///< stream bytes
    std::vector<std::vector<std::uint8_t>> messages;
    std::vector<std::uint64_t> ackedTags;
    bool connected = false;
    bool peerClosed = false;
    bool closed = false;
    bool reset = false;
    int sendSpaceEvents = 0;
    int segmentsDelivered = 0;

    // --- TcpEnv ----------------------------------------------------------
    sim::Tick now() override { return sim_.now(); }

    sim::EventHandle
    scheduleTimer(sim::Tick delay, std::function<void()> fn) override
    {
        return sim_.eventQueue().scheduleIn(delay, std::move(fn));
    }

    void
    tcpOutput(inet::IpDatagram &&dgram,
              const inet::TcpSegMeta &meta) override
    {
        // Parse back what the connection serialized (verifies the
        // checksum path end to end).
        inet::TcpHeader hdr;
        std::span<const std::uint8_t> payload;
        ASSERT_OK(parseTcp(dgram.src, dgram.dst, dgram.payload, hdr,
                           payload));
        if (txFilter && !txFilter(hdr, payload, meta))
            return; // dropped by the test script
        TcpTestNode *peer = peer_;
        sim_.eventQueue().scheduleIn(
            oneWayDelay, [peer, d = std::move(dgram)] {
                peer->deliver(d);
            });
    }

    std::uint32_t
    randomIss() override
    {
        return issOverride;
    }

    void connectionClosed(inet::TcpConnection &) override {}

    /** ISS used for the next open (tests can exercise wraparound). */
    std::uint32_t issOverride = 1000;

    // --- TcpObserver -----------------------------------------------------
    void onConnected(inet::TcpConnection &) override { connected = true; }

    void
    onDataDelivered(inet::TcpConnection &,
                    std::span<const std::uint8_t> data) override
    {
        received.insert(received.end(), data.begin(), data.end());
    }

    bool
    canAcceptMessage(inet::TcpConnection &,
                     std::span<const std::uint8_t>) override
    {
        return acceptMessages;
    }

    void
    onMessage(inet::TcpConnection &,
              std::vector<std::uint8_t> &&msg) override
    {
        messages.push_back(std::move(msg));
    }

    void
    onMessageAcked(inet::TcpConnection &, std::uint64_t tag) override
    {
        ackedTags.push_back(tag);
    }

    void onSendSpace(inet::TcpConnection &) override
    {
        ++sendSpaceEvents;
    }

    void onPeerClosed(inet::TcpConnection &) override
    {
        peerClosed = true;
    }

    void onClosed(inet::TcpConnection &) override { closed = true; }
    void onReset(inet::TcpConnection &) override { reset = true; }

    std::uint32_t receiveWindow(inet::TcpConnection &) override
    {
        if (!windowTracksBuffer)
            return window;
        const auto used = static_cast<std::uint32_t>(
            std::min<std::size_t>(received.size(), window));
        return window - used;
    }

  private:
    static void
    ASSERT_OK(bool ok)
    {
        if (!ok)
            sim::panic("tcp harness: segment failed to parse");
    }

    void
    deliver(const inet::IpDatagram &dgram)
    {
        inet::TcpHeader hdr;
        std::span<const std::uint8_t> payload;
        ASSERT_OK(parseTcp(dgram.src, dgram.dst, dgram.payload, hdr,
                           payload));
        ++segmentsDelivered;
        if (!conn_ && listening_ && hdr.has(inet::tcpflags::syn) &&
            !hdr.has(inet::tcpflags::ack)) {
            makeConnection();
            conn_->openPassive(addr_, peer_->addr_, hdr);
            return;
        }
        if (conn_)
            conn_->segmentArrived(hdr, payload);
    }

    sim::Simulation &sim_;
    inet::SockAddr addr_;
    inet::TcpConfig cfg_;
    TcpTestNode *peer_ = nullptr;
    std::unique_ptr<inet::TcpConnection> conn_;
    bool listening_ = false;
};

/**
 * A ready-made pair of joined nodes.
 */
struct TcpPair
{
    TcpPair(inet::TcpConfig client_cfg, inet::TcpConfig server_cfg,
            std::uint64_t seed = 1)
        : sim(seed),
          client(sim, clientAddr(), client_cfg),
          server(sim, serverAddr(), server_cfg)
    {
        TcpTestNode::join(client, server);
        server.listen();
    }

    explicit TcpPair(inet::TcpConfig cfg) : TcpPair(cfg, cfg) {}

    static inet::SockAddr
    clientAddr()
    {
        return {*inet::InetAddr::parse("fd00::1"), 40000};
    }

    static inet::SockAddr
    serverAddr()
    {
        return {*inet::InetAddr::parse("fd00::2"), 80};
    }

    /** Connect and run until established both sides. */
    bool
    establish(sim::Tick deadline = 10 * sim::oneSec)
    {
        client.connect();
        return sim.runUntilCondition(
            [&] { return client.connected && server.connected; },
            sim.now() + deadline);
    }

    sim::Simulation sim;
    TcpTestNode client;
    TcpTestNode server;
};

/** Stream-mode config with SAN-ish timers for fast tests. */
inline inet::TcpConfig
streamConfig()
{
    inet::TcpConfig cfg;
    cfg.mss = 1460;
    cfg.minRto = 20 * sim::oneMs;
    cfg.delAckTimeout = 2 * sim::oneMs;
    cfg.msl = 20 * sim::oneMs;
    return cfg;
}

/** Message-mode (QPIP firmware) config. */
inline inet::TcpConfig
messageConfig()
{
    inet::TcpConfig cfg;
    cfg.messageMode = true;
    cfg.reassembly = false;
    cfg.delayedAck = false;
    cfg.noDelay = true;
    cfg.mss = 16384;
    cfg.windowScale = 8;
    cfg.tsGranularity = sim::oneUs;
    cfg.minRto = 10 * sim::oneMs;
    cfg.msl = 20 * sim::oneMs;
    return cfg;
}

} // namespace qpip::test
