/**
 * @file
 * Unit tests for the simulation kernel: event ordering and
 * cancellation, clock-domain conversion, statistics, RNG determinism.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

using namespace qpip::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TieBreaksByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); }, 5);
    eq.schedule(10, [&] { order.push_back(2); }, -1);
    eq.schedule(10, [&] { order.push_back(3); }, 5);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto h = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsBeforeBoundary)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.runUntil(20); // events at exactly 20 do not run
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, NextEventTickSkipsCancelled)
{
    EventQueue eq;
    auto h = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    h.cancel();
    EXPECT_EQ(eq.nextEventTick(), 20u);
}

TEST(Clock, ConvertsCyclesToTicks)
{
    ClockDomain host(550'000'000);
    // One cycle at 550 MHz is ~1818.18 ps.
    EXPECT_EQ(host.cyclesToTicks(1), 1818u);
    EXPECT_EQ(host.cyclesToTicks(550'000'000), oneSec);

    ClockDomain lanai(133'000'000);
    EXPECT_NEAR(static_cast<double>(lanai.cyclesToTicks(133)),
                static_cast<double>(oneUs), 5.0);
}

TEST(Clock, UsToCyclesRoundTrips)
{
    ClockDomain lanai(133'000'000);
    EXPECT_EQ(lanai.usToCycles(1.0), 133u);
    EXPECT_EQ(lanai.usToCycles(5.5), 732u);
}

TEST(Stats, SampleStatMoments)
{
    SampleStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Stats, HistogramBucketsAndQuantiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_EQ(h.count(), 100u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(h.bucket(i), 10u);
    EXPECT_NEAR(h.quantile(0.5), 55.0, 10.0);
    h.sample(-1);
    h.sample(1000);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Random, DeterministicAcrossInstances)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, UniformIntStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Random, BernoulliRespectsProbability)
{
    Random r(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Random, ExponentialHasRequestedMean)
{
    Random r(13);
    double sum = 0;
    for (int i = 0; i < 100000; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / 100000.0, 5.0, 0.2);
}

TEST(Simulation, RunUntilConditionStopsEarly)
{
    Simulation sim;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        sim.eventQueue().schedule(i * 10, [&] { ++count; });
    const bool met =
        sim.runUntilCondition([&] { return count == 3; });
    EXPECT_TRUE(met);
    EXPECT_EQ(count, 3);
    sim.run();
    EXPECT_EQ(count, 10);
}

TEST(Simulation, RunForAdvancesTime)
{
    Simulation sim;
    sim.runFor(5 * oneUs);
    EXPECT_EQ(sim.now(), 5 * oneUs);
}

// ---------------------------------------------------------------------
// Pooled event records: handle generations, when(), slab reuse
// ---------------------------------------------------------------------

TEST(EventQueue, WhenReportsMaxTickOnceRunOrCancelled)
{
    EventQueue eq;
    EventHandle inert;
    EXPECT_EQ(inert.when(), maxTick);

    auto h = eq.schedule(10, [] {});
    EXPECT_EQ(h.when(), 10u);
    h.cancel();
    EXPECT_EQ(h.when(), maxTick);

    auto h2 = eq.schedule(20, [] {});
    EXPECT_EQ(h2.when(), 20u);
    eq.run();
    // Regression: a handle whose event already fired must not report
    // its old expiry tick.
    EXPECT_EQ(h2.when(), maxTick);
    EXPECT_FALSE(h2.pending());
}

TEST(EventQueue, StaleHandleOnRecycledSlotIsInert)
{
    EventQueue eq;
    bool second = false;
    auto h1 = eq.schedule(10, [] {});
    eq.run();
    // The slot is free now; the next schedule reuses it (LIFO).
    auto h2 = eq.schedule(20, [&] { second = true; });
    EXPECT_FALSE(h1.pending());
    EXPECT_EQ(h1.when(), maxTick);
    h1.cancel(); // must NOT cancel the new occupant of the slot
    EXPECT_TRUE(h2.pending());
    eq.run();
    EXPECT_TRUE(second);
}

TEST(EventQueue, SteadyStateSchedulingDoesNotGrowSlab)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 1000)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 1000);
    // One self-rescheduling event occupies one slot, recycled on
    // every fire; a couple of records cover the whole run.
    EXPECT_LE(eq.slabSize(), 2u);
    EXPECT_EQ(eq.freeSlots(), eq.slabSize());
}

TEST(EventQueue, CancelledSlotIsNotReusedUntilHeapPopsIt)
{
    EventQueue eq;
    std::vector<int> order;
    auto h = eq.schedule(10, [&] { order.push_back(1); });
    h.cancel();
    // The cancelled record's heap entry is still queued; scheduling
    // more events must not corrupt it.
    for (int i = 0; i < 8; ++i)
        eq.schedule(20 + i, [&, i] { order.push_back(10 + i); });
    eq.run();
    EXPECT_EQ(order.size(), 8u);
    EXPECT_EQ(order.front(), 10);
    EXPECT_EQ(eq.freeSlots(), eq.slabSize());
}

TEST(EventQueue, ClearDropsEventsAndRecyclesSlots)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&] { ran = true; });
    eq.schedule(20, [&] { ran = true; });
    eq.clear();
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.freeSlots(), eq.slabSize());
}

TEST(EventQueue, LargeClosuresFallBackToHeapCorrectly)
{
    EventQueue eq;
    // Capture well past EventFn::inlineBytes to force the heap path.
    std::array<std::uint64_t, 64> big{};
    big[0] = 7;
    big[63] = 9;
    std::uint64_t seen = 0;
    eq.schedule(10, [big, &seen] { seen = big[0] + big[63]; });
    eq.run();
    EXPECT_EQ(seen, 16u);
}
