/**
 * @file
 * Parallel-engine unit tests at the sim layer: partition execution,
 * deterministic mailbox merge order, conservative epoch windows,
 * thread-count invariance of the schedule, execution-context binding
 * and Simulation delegation. These run threads>1 paths and are part
 * of the ThreadSanitizer CI job.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/parallel_engine.hh"
#include "sim/partition.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

using namespace qpip;
using sim::Tick;

TEST(Partition, OwnsPrivateQueueAndRng)
{
    sim::Simulation simu(9);
    sim::ParallelEngine eng(simu, 1);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    EXPECT_NE(&a.eventQueue(), &b.eventQueue());
    EXPECT_NE(&a.rng(), &b.rng());
    EXPECT_NE(&a.eventQueue(), &simu.eventQueue());
    // Distinct deterministic streams.
    EXPECT_NE(a.rng().next(), b.rng().next());
    EXPECT_EQ(a.eventQueue().label(), "a");
    EXPECT_EQ(eng.findPartition("b"), &b);
    EXPECT_EQ(eng.findPartition("zzz"), nullptr);
}

TEST(ParallelEngine, RunsPartitionEventsToCompletion)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    int ran_a = 0;
    int ran_b = 0;
    a.eventQueue().schedule(10, [&] { ++ran_a; });
    a.eventQueue().schedule(20, [&] { ++ran_a; });
    b.eventQueue().schedule(15, [&] { ++ran_b; });
    const auto n = eng.run();
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(ran_a, 2);
    EXPECT_EQ(ran_b, 1);
    EXPECT_EQ(eng.executed(), 3u);
}

TEST(ParallelEngine, RunUntilStopsAndAlignsClocks)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    eng.setLookahead(10);
    int ran = 0;
    a.eventQueue().schedule(5, [&] { ++ran; });
    a.eventQueue().schedule(100, [&] { ++ran; });
    eng.runUntil(50);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eng.now(), 50u);
    // Idle partitions advance to the stop tick too.
    EXPECT_EQ(a.eventQueue().now(), 50u);
    EXPECT_EQ(b.eventQueue().now(), 50u);
    eng.run();
    EXPECT_EQ(ran, 2);
}

TEST(ParallelEngine, MailboxMergeOrderIsDeterministic)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    auto &c = eng.addPartition("c");
    auto &ac = eng.mailbox(a, c);
    auto &bc = eng.mailbox(b, c);
    eng.setLookahead(50);

    // Only partition c's events touch `order`.
    std::vector<std::string> order;
    a.eventQueue().schedule(0, [&] {
        ac.post(100, 1, [&order] { order.push_back("a.p1"); });
        ac.post(100, 0, [&order] { order.push_back("a.p0"); });
        ac.post(60, 0, [&order] { order.push_back("a.early"); });
    });
    b.eventQueue().schedule(0, [&] {
        bc.post(100, 1, [&order] { order.push_back("b.p1"); });
        bc.post(60, 0, [&order] { order.push_back("b.early"); });
    });
    eng.run();

    // (tick, priority, seq, srcId): ties on tick+priority fall back
    // to the per-source post sequence, then the source partition id.
    // At tick 60, a.early is a's third post (seq 2) while b.early is
    // b's second (seq 1), so b goes first; a.p1 and b.p1 are both
    // seq 0 in their streams, so partition a (id 0) breaks that tie.
    const std::vector<std::string> expect = {
        "b.early", "a.early", "a.p0", "a.p1", "b.p1"};
    EXPECT_EQ(order, expect);
}

namespace {

/** Artifacts of one bounce run; must not depend on thread count. */
struct BounceDigest
{
    std::vector<std::pair<std::uint32_t, Tick>> hits;
    std::vector<std::uint64_t> draws;
    std::uint64_t executed = 0;
    std::uint64_t epochs = 0;
    Tick end = 0;

    bool
    operator==(const BounceDigest &o) const
    {
        return hits == o.hits && draws == o.draws &&
               executed == o.executed && epochs == o.epochs &&
               end == o.end;
    }
};

/**
 * Two partitions bounce a token through mailboxes for a fixed number
 * of hops, each hop recording (partition, tick) and one RNG draw.
 */
BounceDigest
runBounce(int threads)
{
    sim::Simulation simu(42);
    sim::ParallelEngine eng(simu, threads);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    auto &ab = eng.mailbox(a, b);
    auto &ba = eng.mailbox(b, a);
    eng.setLookahead(100);

    BounceDigest d;
    // Written only by the partition executing the hop; hops strictly
    // alternate, ordered by the mailbox barrier handoffs.
    int remaining = 16;
    std::function<void(sim::Partition *, sim::Mailbox *,
                       sim::Partition *, sim::Mailbox *)>
        hop = [&](sim::Partition *self, sim::Mailbox *out,
                  sim::Partition *peer, sim::Mailbox *back) {
            const Tick now = self->eventQueue().now();
            d.hits.emplace_back(self->id(), now);
            d.draws.push_back(self->rng().next());
            if (--remaining > 0) {
                out->post(now + 100, 0, [&hop, peer, back, self, out] {
                    hop(peer, back, self, out);
                });
            }
        };
    a.eventQueue().schedule(0, [&] { hop(&a, &ab, &b, &ba); });
    eng.run();
    d.executed = eng.executed();
    d.epochs = eng.epochs();
    d.end = eng.now();
    return d;
}

} // namespace

TEST(ParallelEngine, ScheduleIsThreadCountInvariant)
{
    const auto serial = runBounce(1);
    const auto four = runBounce(4);
    EXPECT_EQ(serial.hits.size(), 16u);
    EXPECT_TRUE(serial == four);
    // And replays bit-identically at the same thread count.
    EXPECT_TRUE(four == runBounce(4));
}

TEST(ParallelEngine, RunUntilConditionChecksAtBarriers)
{
    sim::Simulation simu(3);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    // Mutual edges bound a's horizon: under per-edge horizons a
    // partition with no incoming edges runs clean to the deadline in
    // one epoch. L=5 both ways makes H_a = next_a + 10, so with events
    // spaced 10 apart each epoch executes exactly one.
    eng.mailbox(a, b);
    eng.mailbox(b, a);
    eng.setLookahead(5);
    int count = 0;
    for (Tick t = 0; t < 100; t += 10)
        a.eventQueue().schedule(t, [&] { ++count; });
    // Delegation: Simulation::runUntilCondition routes to the engine.
    ASSERT_NE(simu.parallelEngine(), nullptr);
    const bool ok =
        simu.runUntilCondition([&] { return count >= 3; }, 1000);
    EXPECT_TRUE(ok);
    // The predicate fires at the barrier after the third event.
    EXPECT_EQ(count, 3);
    EXPECT_EQ(simu.now(), eng.now());
}

TEST(ParallelEngine, PerEdgeHorizonsDecoupleSlowEdges)
{
    sim::Simulation simu(7);
    sim::ParallelEngine eng(simu, 2);
    auto &fa = eng.addPartition("fa");
    auto &fb = eng.addPartition("fb");
    auto &sa = eng.addPartition("sa");
    auto &sb = eng.addPartition("sb");
    // Two disjoint pairs: the fast pair's edges declare a wide
    // lookahead, the slow pair's a narrow one.
    eng.mailbox(fa, fb).setLookahead(1000);
    eng.mailbox(fb, fa).setLookahead(1000);
    eng.mailbox(sa, sb).setLookahead(10);
    eng.mailbox(sb, sa).setLookahead(10);
    int fast = 0;
    int slow = 0;
    for (Tick t = 0; t < 100; t += 10) {
        fa.eventQueue().schedule(t, [&] { ++fast; });
        sa.eventQueue().schedule(t, [&] { ++slow; });
    }
    eng.run();
    EXPECT_EQ(fast, 10);
    EXPECT_EQ(slow, 10);
    // The slow pair paces the epoch count at H_sa = next_sa + 20
    // (two events per epoch), but the fast pair drains entirely in
    // the first epoch instead of being throttled to the global
    // minimum lookahead: 5 epochs total, not 10.
    EXPECT_EQ(eng.epochs(), 5u);
}

TEST(ParallelEngine, HorizonFloorsPropagateThroughStalledChains)
{
    sim::Simulation simu(11);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    auto &c = eng.addPartition("c");
    // Per-edge lookaheads only — no engine-global fallback needed.
    auto &ab = eng.mailbox(a, b);
    auto &bc = eng.mailbox(b, c);
    ab.setLookahead(10);
    bc.setLookahead(10);

    // b starts empty and wakes only when a's post arrives, then
    // forwards into c below c's far-future local event. c's horizon
    // must be bounded by b's *floor* (B_a + 10), not b's next-event
    // tick (infinity): otherwise c runs its tick-1000 event in the
    // first epoch and the tick-20 delivery violates its horizon.
    std::vector<Tick> cOrder; // written only by partition c
    a.eventQueue().schedule(0, [&] {
        ab.post(10, 0, [&] {
            bc.post(20, 0,
                    [&] { cOrder.push_back(c.eventQueue().now()); });
        });
    });
    c.eventQueue().schedule(1000,
                            [&] { cOrder.push_back(c.eventQueue().now()); });
    eng.run();
    const std::vector<Tick> expect = {20, 1000};
    EXPECT_EQ(cOrder, expect);
    EXPECT_EQ(eng.executed(), 4u);
}

TEST(ParallelEngine, TightestIncomingEdgeBoundsHorizon)
{
    sim::Simulation simu(13);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    auto &c = eng.addPartition("c");
    // c has two incoming edges: a wide one from a and a tight one
    // from b (whose own floor tracks c through the return edge). The
    // tight edge must win: H_c = next_c + 4.
    eng.mailbox(a, c).setLookahead(1000);
    eng.mailbox(b, c).setLookahead(2);
    eng.mailbox(c, b).setLookahead(2);
    int count = 0;
    a.eventQueue().schedule(0, [] {});
    for (Tick t = 0; t < 100; t += 10)
        c.eventQueue().schedule(t, [&] { ++count; });
    eng.run();
    EXPECT_EQ(count, 10);
    // One event per epoch; had the wide edge bounded the horizon, all
    // ten would have drained in the first.
    EXPECT_EQ(eng.epochs(), 10u);
}

TEST(ParallelEngine, RegistersParallelStats)
{
    sim::Simulation simu(1);
    {
        sim::ParallelEngine eng(simu, 2);
        auto &a = eng.addPartition("a");
        auto &b = eng.addPartition("b");
        auto &ab = eng.mailbox(a, b);
        eng.setLookahead(10);
        for (const char *leaf :
             {"parallel.epochs", "parallel.mailboxPosts",
              "parallel.batchedPosts", "parallel.horizonStalls",
              "parallel.epochEventsMax", "parallel.epochEventsMin"})
            EXPECT_TRUE(simu.stats().contains(leaf)) << leaf;
        int got = 0;
        a.eventQueue().schedule(0, [&] {
            ab.post(10, 0, [&] { ++got; });
            ab.post(11, 0, [&] { ++got; });
        });
        eng.run();
        EXPECT_EQ(got, 2);
        EXPECT_EQ(simu.stats().counterValue("parallel.epochs"),
                  eng.epochs());
        EXPECT_EQ(simu.stats().counterValue("parallel.mailboxPosts"),
                  2u);
        // Both posts travelled in one batch.
        EXPECT_EQ(simu.stats().counterValue("parallel.batchedPosts"),
                  2u);
    }
    // The stat group unregisters with the engine.
    EXPECT_FALSE(simu.stats().contains("parallel.epochs"));
}

TEST(ParallelEngine, SimulationDelegatesRunCalls)
{
    sim::Simulation simu(5);
    {
        sim::ParallelEngine eng(simu, 2);
        auto &a = eng.addPartition("a");
        int ran = 0;
        a.eventQueue().schedule(7, [&] { ++ran; });
        EXPECT_EQ(simu.run(), 1u);
        EXPECT_EQ(ran, 1);
    }
    // Engine uninstalls on destruction: serial path again.
    EXPECT_EQ(simu.parallelEngine(), nullptr);
    int ran2 = 0;
    simu.eventQueue().schedule(simu.eventQueue().now() + 1,
                               [&] { ++ran2; });
    EXPECT_EQ(simu.run(), 1u);
    EXPECT_EQ(ran2, 1);
}

TEST(ParallelEngine, ExecContextBindsNewSimObjects)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 1);
    auto &a = eng.addPartition("a");
    {
        sim::ExecContextScope scope(&a.execContext());
        sim::SimObject obj(simu, "inCtx");
        EXPECT_EQ(&obj.eventQueue(), &a.eventQueue());
        EXPECT_EQ(&obj.rng(), &a.rng());
    }
    sim::SimObject out(simu, "outCtx");
    EXPECT_EQ(&out.eventQueue(), &simu.eventQueue());
    EXPECT_EQ(&out.rng(), &simu.rng());
}

TEST(ParallelEngine, AssignByPrefixRebindsMatchingObjects)
{
    sim::Simulation simu(1);
    sim::SimObject host(simu, "host0");
    sim::SimObject nic(simu, "host0.nic");
    sim::SimObject other(simu, "host01"); // prefix but no dot: no match
    sim::ParallelEngine eng(simu, 1);
    auto &p = eng.addPartition("host0");
    eng.assignByPrefix("host0", p);
    EXPECT_EQ(&host.eventQueue(), &p.eventQueue());
    EXPECT_EQ(&nic.eventQueue(), &p.eventQueue());
    EXPECT_EQ(&other.eventQueue(), &simu.eventQueue());
}

TEST(ParallelEngine, ClearAllDropsPendingWork)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    int ran = 0;
    a.eventQueue().schedule(10, [&] { ++ran; });
    eng.clearAll();
    EXPECT_EQ(eng.run(), 0u);
    EXPECT_EQ(ran, 0);
}
