/**
 * @file
 * Parallel-engine unit tests at the sim layer: partition execution,
 * deterministic mailbox merge order, conservative epoch windows,
 * thread-count invariance of the schedule, execution-context binding
 * and Simulation delegation. These run threads>1 paths and are part
 * of the ThreadSanitizer CI job.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/parallel_engine.hh"
#include "sim/partition.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

using namespace qpip;
using sim::Tick;

TEST(Partition, OwnsPrivateQueueAndRng)
{
    sim::Simulation simu(9);
    sim::ParallelEngine eng(simu, 1);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    EXPECT_NE(&a.eventQueue(), &b.eventQueue());
    EXPECT_NE(&a.rng(), &b.rng());
    EXPECT_NE(&a.eventQueue(), &simu.eventQueue());
    // Distinct deterministic streams.
    EXPECT_NE(a.rng().next(), b.rng().next());
    EXPECT_EQ(a.eventQueue().label(), "a");
    EXPECT_EQ(eng.findPartition("b"), &b);
    EXPECT_EQ(eng.findPartition("zzz"), nullptr);
}

TEST(ParallelEngine, RunsPartitionEventsToCompletion)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    int ran_a = 0;
    int ran_b = 0;
    a.eventQueue().schedule(10, [&] { ++ran_a; });
    a.eventQueue().schedule(20, [&] { ++ran_a; });
    b.eventQueue().schedule(15, [&] { ++ran_b; });
    const auto n = eng.run();
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(ran_a, 2);
    EXPECT_EQ(ran_b, 1);
    EXPECT_EQ(eng.executed(), 3u);
}

TEST(ParallelEngine, RunUntilStopsAndAlignsClocks)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    eng.setLookahead(10);
    int ran = 0;
    a.eventQueue().schedule(5, [&] { ++ran; });
    a.eventQueue().schedule(100, [&] { ++ran; });
    eng.runUntil(50);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eng.now(), 50u);
    // Idle partitions advance to the stop tick too.
    EXPECT_EQ(a.eventQueue().now(), 50u);
    EXPECT_EQ(b.eventQueue().now(), 50u);
    eng.run();
    EXPECT_EQ(ran, 2);
}

TEST(ParallelEngine, MailboxMergeOrderIsDeterministic)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    auto &c = eng.addPartition("c");
    auto &ac = eng.mailbox(a, c);
    auto &bc = eng.mailbox(b, c);
    eng.setLookahead(50);

    // Only partition c's events touch `order`.
    std::vector<std::string> order;
    a.eventQueue().schedule(0, [&] {
        ac.post(100, 1, [&order] { order.push_back("a.p1"); });
        ac.post(100, 0, [&order] { order.push_back("a.p0"); });
        ac.post(60, 0, [&order] { order.push_back("a.early"); });
    });
    b.eventQueue().schedule(0, [&] {
        bc.post(100, 1, [&order] { order.push_back("b.p1"); });
        bc.post(60, 0, [&order] { order.push_back("b.early"); });
    });
    eng.run();

    // (tick, priority, seq, srcId): ties on tick+priority fall back
    // to the per-source post sequence, then the source partition id.
    // At tick 60, a.early is a's third post (seq 2) while b.early is
    // b's second (seq 1), so b goes first; a.p1 and b.p1 are both
    // seq 0 in their streams, so partition a (id 0) breaks that tie.
    const std::vector<std::string> expect = {
        "b.early", "a.early", "a.p0", "a.p1", "b.p1"};
    EXPECT_EQ(order, expect);
}

namespace {

/** Artifacts of one bounce run; must not depend on thread count. */
struct BounceDigest
{
    std::vector<std::pair<std::uint32_t, Tick>> hits;
    std::vector<std::uint64_t> draws;
    std::uint64_t executed = 0;
    std::uint64_t epochs = 0;
    Tick end = 0;

    bool
    operator==(const BounceDigest &o) const
    {
        return hits == o.hits && draws == o.draws &&
               executed == o.executed && epochs == o.epochs &&
               end == o.end;
    }
};

/**
 * Two partitions bounce a token through mailboxes for a fixed number
 * of hops, each hop recording (partition, tick) and one RNG draw.
 */
BounceDigest
runBounce(int threads)
{
    sim::Simulation simu(42);
    sim::ParallelEngine eng(simu, threads);
    auto &a = eng.addPartition("a");
    auto &b = eng.addPartition("b");
    auto &ab = eng.mailbox(a, b);
    auto &ba = eng.mailbox(b, a);
    eng.setLookahead(100);

    BounceDigest d;
    // Written only by the partition executing the hop; hops strictly
    // alternate, ordered by the mailbox barrier handoffs.
    int remaining = 16;
    std::function<void(sim::Partition *, sim::Mailbox *,
                       sim::Partition *, sim::Mailbox *)>
        hop = [&](sim::Partition *self, sim::Mailbox *out,
                  sim::Partition *peer, sim::Mailbox *back) {
            const Tick now = self->eventQueue().now();
            d.hits.emplace_back(self->id(), now);
            d.draws.push_back(self->rng().next());
            if (--remaining > 0) {
                out->post(now + 100, 0, [&hop, peer, back, self, out] {
                    hop(peer, back, self, out);
                });
            }
        };
    a.eventQueue().schedule(0, [&] { hop(&a, &ab, &b, &ba); });
    eng.run();
    d.executed = eng.executed();
    d.epochs = eng.epochs();
    d.end = eng.now();
    return d;
}

} // namespace

TEST(ParallelEngine, ScheduleIsThreadCountInvariant)
{
    const auto serial = runBounce(1);
    const auto four = runBounce(4);
    EXPECT_EQ(serial.hits.size(), 16u);
    EXPECT_TRUE(serial == four);
    // And replays bit-identically at the same thread count.
    EXPECT_TRUE(four == runBounce(4));
}

TEST(ParallelEngine, RunUntilConditionChecksAtBarriers)
{
    sim::Simulation simu(3);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    eng.addPartition("b");
    eng.setLookahead(10);
    int count = 0;
    for (Tick t = 0; t < 100; t += 10)
        a.eventQueue().schedule(t, [&] { ++count; });
    // Delegation: Simulation::runUntilCondition routes to the engine.
    ASSERT_NE(simu.parallelEngine(), nullptr);
    const bool ok =
        simu.runUntilCondition([&] { return count >= 3; }, 1000);
    EXPECT_TRUE(ok);
    // Conservative window: exactly one event per epoch here, and the
    // predicate fires at the barrier after the third.
    EXPECT_EQ(count, 3);
    EXPECT_EQ(simu.now(), eng.now());
}

TEST(ParallelEngine, SimulationDelegatesRunCalls)
{
    sim::Simulation simu(5);
    {
        sim::ParallelEngine eng(simu, 2);
        auto &a = eng.addPartition("a");
        int ran = 0;
        a.eventQueue().schedule(7, [&] { ++ran; });
        EXPECT_EQ(simu.run(), 1u);
        EXPECT_EQ(ran, 1);
    }
    // Engine uninstalls on destruction: serial path again.
    EXPECT_EQ(simu.parallelEngine(), nullptr);
    int ran2 = 0;
    simu.eventQueue().schedule(simu.eventQueue().now() + 1,
                               [&] { ++ran2; });
    EXPECT_EQ(simu.run(), 1u);
    EXPECT_EQ(ran2, 1);
}

TEST(ParallelEngine, ExecContextBindsNewSimObjects)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 1);
    auto &a = eng.addPartition("a");
    {
        sim::ExecContextScope scope(&a.execContext());
        sim::SimObject obj(simu, "inCtx");
        EXPECT_EQ(&obj.eventQueue(), &a.eventQueue());
        EXPECT_EQ(&obj.rng(), &a.rng());
    }
    sim::SimObject out(simu, "outCtx");
    EXPECT_EQ(&out.eventQueue(), &simu.eventQueue());
    EXPECT_EQ(&out.rng(), &simu.rng());
}

TEST(ParallelEngine, AssignByPrefixRebindsMatchingObjects)
{
    sim::Simulation simu(1);
    sim::SimObject host(simu, "host0");
    sim::SimObject nic(simu, "host0.nic");
    sim::SimObject other(simu, "host01"); // prefix but no dot: no match
    sim::ParallelEngine eng(simu, 1);
    auto &p = eng.addPartition("host0");
    eng.assignByPrefix("host0", p);
    EXPECT_EQ(&host.eventQueue(), &p.eventQueue());
    EXPECT_EQ(&nic.eventQueue(), &p.eventQueue());
    EXPECT_EQ(&other.eventQueue(), &simu.eventQueue());
}

TEST(ParallelEngine, ClearAllDropsPendingWork)
{
    sim::Simulation simu(1);
    sim::ParallelEngine eng(simu, 2);
    auto &a = eng.addPartition("a");
    int ran = 0;
    a.eventQueue().schedule(10, [&] { ++ran; });
    eng.clearAll();
    EXPECT_EQ(eng.run(), 0u);
    EXPECT_EQ(ran, 0);
}
