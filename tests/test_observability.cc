/**
 * @file
 * The observability layer, verified end to end: stat-registry
 * registration/lookup/pattern-matching and JSON round-trip, automatic
 * unregistration when SimObjects die, Chrome-trace JSON
 * well-formedness with monotonic timestamps, and pcap captures whose
 * every frame re-parses with verified checksums — for both the QPIP
 * (IPv6, incl. fragments) and sockets (IPv4) fabrics.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/pingpong.hh"
#include "apps/testbed.hh"
#include "apps/ttcp.hh"
#include "inet/ip_frag.hh"
#include "inet/ipv4.hh"
#include "inet/ipv6.hh"
#include "inet/tcp_header.hh"
#include "inet/udp.hh"
#include "net/link.hh"
#include "net/pcap.hh"
#include "sim/simulation.hh"
#include "sim/stat_registry.hh"
#include "sim/trace.hh"

using namespace qpip;

// ---------------------------------------------------------------------
// Minimal JSON parser: enough to validate and inspect the registry
// dump and the Chrome trace (objects, arrays, strings, numbers,
// bools, null; \uXXXX escapes consumed, not decoded).
// ---------------------------------------------------------------------

namespace {

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    const JsonValue *
    field(const std::string &key) const
    {
        auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    std::optional<JsonValue>
    parse()
    {
        auto v = parseValue();
        skipWs();
        if (!v || pos_ != text_.size())
            return std::nullopt;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return std::nullopt;
                char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return std::nullopt;
                    for (int i = 0; i < 4; ++i) {
                        if (!std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return std::nullopt;
                    }
                    pos_ += 4;
                    out += '?';
                    break;
                  }
                  default: return std::nullopt;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return std::nullopt; // raw control char: invalid
            } else {
                out += c;
            }
        }
        return std::nullopt;
    }

    std::optional<JsonValue>
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size())
            return std::nullopt;
        JsonValue v;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            v.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return v;
            while (true) {
                auto key = parseString();
                if (!key || !consume(':'))
                    return std::nullopt;
                auto val = parseValue();
                if (!val)
                    return std::nullopt;
                v.obj.emplace(std::move(*key), std::move(*val));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return v;
            while (true) {
                auto val = parseValue();
                if (!val)
                    return std::nullopt;
                v.arr.push_back(std::move(*val));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            v.kind = JsonValue::Kind::String;
            v.str = std::move(*s);
            return v;
        }
        if (literal("true")) {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (literal("false")) {
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        if (literal("null"))
            return v;
        // Number.
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        v.number = std::strtod(start, &end);
        if (end == start)
            return std::nullopt;
        pos_ += static_cast<std::size_t>(end - start);
        v.kind = JsonValue::Kind::Number;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::optional<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

// ---------------------------------------------------------------------
// Minimal pcap reader for verifying PcapWriter output.
// ---------------------------------------------------------------------

struct PcapFrame
{
    std::uint32_t tsSec = 0;
    std::uint32_t tsUsec = 0;
    std::uint32_t origLen = 0;
    std::vector<std::uint8_t> data;
};

struct PcapFile
{
    std::uint32_t magic = 0;
    std::uint16_t major = 0, minor = 0;
    std::uint32_t snaplen = 0;
    std::uint32_t linktype = 0;
    std::vector<PcapFrame> frames;
};

std::uint32_t
le32(const std::vector<std::uint8_t> &b, std::size_t at)
{
    return static_cast<std::uint32_t>(b[at]) |
           (static_cast<std::uint32_t>(b[at + 1]) << 8) |
           (static_cast<std::uint32_t>(b[at + 2]) << 16) |
           (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

std::uint16_t
le16(const std::vector<std::uint8_t> &b, std::size_t at)
{
    return static_cast<std::uint16_t>(
        b[at] | (static_cast<std::uint16_t>(b[at + 1]) << 8));
}

std::optional<PcapFile>
parsePcap(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < net::pcapFileHeaderBytes)
        return std::nullopt;
    PcapFile f;
    f.magic = le32(bytes, 0);
    f.major = le16(bytes, 4);
    f.minor = le16(bytes, 6);
    f.snaplen = le32(bytes, 16);
    f.linktype = le32(bytes, 20);
    std::size_t at = net::pcapFileHeaderBytes;
    while (at < bytes.size()) {
        if (at + net::pcapRecordHeaderBytes > bytes.size())
            return std::nullopt; // truncated record header
        PcapFrame fr;
        fr.tsSec = le32(bytes, at);
        fr.tsUsec = le32(bytes, at + 4);
        const std::uint32_t incl = le32(bytes, at + 8);
        fr.origLen = le32(bytes, at + 12);
        at += net::pcapRecordHeaderBytes;
        if (at + incl > bytes.size())
            return std::nullopt; // truncated frame
        fr.data.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                       bytes.begin() +
                           static_cast<std::ptrdiff_t>(at + incl));
        at += incl;
        f.frames.push_back(std::move(fr));
    }
    return f;
}

/**
 * Re-parse every captured frame: IP header (checksum-verified for
 * v4), v6 fragments through a reassembler, and the TCP/UDP checksum
 * of every complete datagram. @return number of verified transport
 * segments, or -1 on any parse/checksum failure.
 */
int
verifyCapturedFrames(const PcapFile &pcap)
{
    inet::Ipv6Reassembler reass;
    int verified = 0;
    sim::Tick fakeNow = 0;
    for (const auto &frame : pcap.frames) {
        if (frame.data.empty())
            return -1;
        const int version = frame.data[0] >> 4;
        std::optional<inet::IpDatagram> dgram;
        if (version == 4) {
            inet::IpDatagram d;
            if (!inet::parseIpv4(frame.data, d))
                return -1;
            dgram = std::move(d);
        } else if (version == 6) {
            inet::Ipv6Packet v6;
            if (!inet::parseIpv6(frame.data, v6))
                return -1;
            dgram = reass.offer(v6, fakeNow++);
            if (!dgram)
                continue; // partial fragment; completes later
        } else {
            return -1;
        }
        inet::TcpHeader tcp;
        inet::UdpHeader udp;
        std::span<const std::uint8_t> payload;
        if (dgram->proto == inet::IpProto::Tcp) {
            if (!inet::parseTcp(dgram->src, dgram->dst, dgram->payload,
                                tcp, payload))
                return -1;
        } else if (dgram->proto == inet::IpProto::Udp) {
            if (!inet::parseUdp(dgram->src, dgram->dst, dgram->payload,
                                udp, payload))
                return -1;
        } else {
            return -1;
        }
        ++verified;
    }
    return verified;
}

} // namespace

// ---------------------------------------------------------------------
// Stat registry
// ---------------------------------------------------------------------

TEST(StatRegistry, RegisterLookupRemove)
{
    sim::StatRegistry reg;
    sim::Counter c;
    sim::SampleStat s;
    sim::Histogram h(0.0, 10.0, 5);
    c.inc(42);
    s.sample(1.5);
    s.sample(2.5);
    h.sample(3.0);

    reg.add("node0.nic.pkts", c);
    reg.add("node0.nic.lat", s);
    reg.add("node0.nic.sizes", h);
    EXPECT_EQ(reg.size(), 3u);

    ASSERT_NE(reg.counter("node0.nic.pkts"), nullptr);
    EXPECT_EQ(reg.counter("node0.nic.pkts")->value(), 42u);
    EXPECT_EQ(reg.counterValue("node0.nic.pkts"), 42u);
    // qpip-lint: stat-path-ok(deliberately unregistered: the test asserts the 0 fallback for absent paths)
    EXPECT_EQ(reg.counterValue("absent.path"), 0u);

    ASSERT_NE(reg.sample("node0.nic.lat"), nullptr);
    EXPECT_DOUBLE_EQ(reg.sample("node0.nic.lat")->mean(), 2.0);
    ASSERT_NE(reg.histogram("node0.nic.sizes"), nullptr);

    // Kind-checked lookups reject the wrong kind.
    EXPECT_EQ(reg.counter("node0.nic.lat"), nullptr);
    EXPECT_EQ(reg.sample("node0.nic.pkts"), nullptr);
    EXPECT_EQ(reg.histogram("node0.nic.pkts"), nullptr);

    reg.remove("node0.nic.lat");
    EXPECT_FALSE(reg.contains("node0.nic.lat"));
    EXPECT_EQ(reg.size(), 2u);
}

TEST(StatRegistry, PatternMatching)
{
    using sim::statPatternMatch;
    EXPECT_TRUE(statPatternMatch("*", "a.b.c"));
    EXPECT_TRUE(statPatternMatch("a.*.c", "a.b.c"));
    EXPECT_TRUE(statPatternMatch("a.*", "a.b.c"));
    EXPECT_TRUE(statPatternMatch("*.c", "a.b.c"));
    EXPECT_TRUE(statPatternMatch("a.?.c", "a.b.c"));
    EXPECT_FALSE(statPatternMatch("a.?.c", "a.bb.c"));
    EXPECT_FALSE(statPatternMatch("a.b", "a.b.c"));
    EXPECT_TRUE(statPatternMatch("*Drops*", "host0.nic.queueDrops"));
    EXPECT_FALSE(statPatternMatch("*Drops", "host0.nic.dropsTotal"));
    // '*' can match across multiple segments and backtrack.
    EXPECT_TRUE(statPatternMatch("a*b*c", "axxbyybzzc"));
    EXPECT_FALSE(statPatternMatch("a*b*c", "axxbyyb"));

    sim::Counter c1, c2, c3;
    sim::StatRegistry reg;
    reg.add("host0.nic.tx", c1);
    reg.add("host0.nic.rx", c2);
    reg.add("host1.nic.tx", c3);
    EXPECT_EQ(reg.match("*.tx").size(), 2u);
    EXPECT_EQ(reg.match("host0.*").size(), 2u);
    EXPECT_EQ(reg.match("*").size(), 3u);
    EXPECT_TRUE(reg.match("none.*").empty());
}

TEST(StatRegistry, JsonDumpRoundTrips)
{
    sim::StatRegistry reg;
    sim::Counter c;
    sim::SampleStat s;
    c.inc(7);
    s.sample(0.5);
    s.sample(1.5);
    s.sample(4.0);
    reg.add("x.count", c);
    reg.add("x.lat", s);

    auto parsed = parseJson(reg.jsonDump());
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->kind, JsonValue::Kind::Object);
    ASSERT_EQ(parsed->obj.size(), 2u);

    const JsonValue *count = parsed->field("x.count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->field("kind")->str, "counter");
    EXPECT_DOUBLE_EQ(count->field("value")->number, 7.0);

    const JsonValue *lat = parsed->field("x.lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->field("kind")->str, "sample");
    EXPECT_DOUBLE_EQ(lat->field("count")->number, 3.0);
    EXPECT_DOUBLE_EQ(lat->field("mean")->number, 2.0);
    EXPECT_DOUBLE_EQ(lat->field("min")->number, 0.5);
    EXPECT_DOUBLE_EQ(lat->field("max")->number, 4.0);

    // Pattern-restricted dump only includes matching paths.
    auto partial = parseJson(reg.jsonDump("*.count"));
    ASSERT_TRUE(partial.has_value());
    EXPECT_EQ(partial->obj.size(), 1u);
}

TEST(StatRegistry, SimObjectsAutoRegisterAndUnregister)
{
    sim::Simulation sim;
    EXPECT_EQ(sim.stats().size(), 0u);
    {
        net::Link link(sim, "lnk", net::gigabitEthernetLink());
        EXPECT_TRUE(sim.stats().contains("lnk.packetsSent"));
        EXPECT_TRUE(sim.stats().contains("lnk.faults.drops"));
        const std::size_t with_link = sim.stats().size();
        EXPECT_GE(with_link, 8u);
    }
    // Destruction unregisters every path the link owned.
    EXPECT_EQ(sim.stats().size(), 0u);
    EXPECT_FALSE(sim.stats().contains("lnk.packetsSent"));
}

TEST(StatRegistry, FullTestbedPublishesHierarchy)
{
    apps::QpipTestbed bed(2);
    auto &stats = bed.sim().stats();
    // Firmware stages, doorbells, links and switch all registered.
    EXPECT_TRUE(stats.contains("host0.qnic.fw.stage.getWr"));
    EXPECT_TRUE(stats.contains("host0.qnic.fw.busyTicks"));
    EXPECT_TRUE(stats.contains("host0.qnic.doorbells.rings"));
    EXPECT_TRUE(stats.contains("host1.qnic.reass.fragmentsIn"));
    EXPECT_TRUE(stats.contains("fabric.link0.packetsSent"));
    EXPECT_TRUE(stats.contains("fabric.switch.forwarded"));
    // Every firmware stage path is enumerable by pattern.
    EXPECT_EQ(stats.match("host0.qnic.fw.stage.*").size(),
              nic::numFwStages);

    // The whole dump parses as JSON.
    auto parsed = parseJson(stats.jsonDump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->obj.size(), stats.size());
}

TEST(StatRegistry, PerConnectionTcpStatsAppearOnConnect)
{
    apps::QpipTestbed bed(2);
    auto res = apps::runQpipTcpPingPong(bed, 4);
    ASSERT_TRUE(res.completed);
    auto &stats = bed.sim().stats();
    // Client QP 1 on host 0, accepted QP on host 1.
    auto client = stats.match("host0.qnic.qp*.tcp.segsOut");
    auto server = stats.match("host1.qnic.qp*.tcp.segsOut");
    ASSERT_EQ(client.size(), 1u);
    ASSERT_EQ(server.size(), 1u);
    EXPECT_GT(stats.counterValue(client[0]), 0u);
    EXPECT_GT(stats.counterValue(server[0]), 0u);
}

// ---------------------------------------------------------------------
// Event tracing
// ---------------------------------------------------------------------

TEST(Trace, JsonWellFormedWithMonotonicTimestamps)
{
    apps::QpipTestbed bed(2);
    bed.sim().tracer().enable();
    auto res = apps::runQpipTcpPingPong(bed, 8);
    ASSERT_TRUE(res.completed);
    ASSERT_GT(bed.sim().tracer().numEvents(), 0u);

    auto parsed = parseJson(bed.sim().tracer().json());
    ASSERT_TRUE(parsed.has_value());
    const JsonValue *events = parsed->field("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    double last_ts = -1.0;
    std::size_t spans = 0, instants = 0, meta = 0;
    for (const auto &e : events->arr) {
        ASSERT_EQ(e.kind, JsonValue::Kind::Object);
        const JsonValue *ph = e.field("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "M") {
            ++meta;
            continue;
        }
        const JsonValue *ts = e.field("ts");
        ASSERT_NE(ts, nullptr);
        EXPECT_GE(ts->number, last_ts);
        last_ts = ts->number;
        if (ph->str == "X") {
            ++spans;
            ASSERT_NE(e.field("dur"), nullptr);
        } else if (ph->str == "i") {
            ++instants;
        } else {
            FAIL() << "unexpected event phase " << ph->str;
        }
        ASSERT_NE(e.field("name"), nullptr);
    }
    // Firmware + link spans, TCP transition instants, track names.
    EXPECT_GT(spans, 0u);
    EXPECT_GT(instants, 0u);
    EXPECT_GT(meta, 0u);
    EXPECT_EQ(spans + instants, bed.sim().tracer().numEvents());
}

TEST(Trace, TcpTransitionsFollowHandshakeOrder)
{
    apps::QpipTestbed bed(2);
    bed.sim().tracer().enable();
    auto res = apps::runQpipTcpPingPong(bed, 2);
    ASSERT_TRUE(res.completed);

    const std::string json = bed.sim().tracer().json();
    // Active open, passive open, and both Established transitions.
    const auto syn_sent = json.find("Closed->SynSent");
    const auto syn_rcvd = json.find("Closed->SynRcvd");
    const auto est_active = json.find("SynSent->Established");
    const auto est_passive = json.find("SynRcvd->Established");
    EXPECT_NE(syn_sent, std::string::npos);
    EXPECT_NE(syn_rcvd, std::string::npos);
    EXPECT_NE(est_active, std::string::npos);
    EXPECT_NE(est_passive, std::string::npos);
    // Output is time-sorted: opens precede their Established events.
    EXPECT_LT(syn_sent, est_active);
    EXPECT_LT(syn_rcvd, est_passive);
}

TEST(Trace, DisabledTracerRecordsNothing)
{
    apps::QpipTestbed bed(2);
    ASSERT_FALSE(bed.sim().tracer().enabled());
    auto res = apps::runQpipTcpPingPong(bed, 2);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(bed.sim().tracer().numEvents(), 0u);
}

// ---------------------------------------------------------------------
// Pcap capture
// ---------------------------------------------------------------------

TEST(Pcap, QpipCaptureReparsesWithValidChecksums)
{
    apps::QpipTestbed bed(2);
    net::PcapWriter pcap;
    net::tapLink(bed.fabric().linkFor(0), pcap);
    net::tapLink(bed.fabric().linkFor(1), pcap);

    auto res = apps::runQpipTcpPingPong(bed, 8);
    ASSERT_TRUE(res.completed);
    ASSERT_GT(pcap.frames(), 0u);

    auto parsed = parsePcap(pcap.bytes());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->magic, 0xa1b2c3d4u);
    EXPECT_EQ(parsed->major, 2u);
    EXPECT_EQ(parsed->minor, 4u);
    EXPECT_EQ(parsed->linktype, net::pcapLinktypeRaw);
    EXPECT_EQ(parsed->frames.size(), pcap.frames());

    // Every frame is genuine IPv6+TCP wire bytes with good checksums.
    const int verified = verifyCapturedFrames(*parsed);
    ASSERT_GT(verified, 0);
    // Both taps saw the whole exchange: at least one segment per
    // ping-pong hop.
    EXPECT_GE(static_cast<std::size_t>(verified), 16u);

    // Timestamps never run backwards.
    std::uint64_t last = 0;
    for (const auto &f : parsed->frames) {
        const std::uint64_t us =
            static_cast<std::uint64_t>(f.tsSec) * 1000000u + f.tsUsec;
        EXPECT_GE(us, last);
        last = us;
        EXPECT_EQ(f.data.size(), f.origLen);
    }
}

TEST(Pcap, QpipFragmentedFramesReassembleFromCapture)
{
    // MTU far below the 16 KB message segment: every data segment
    // crosses the wire as IPv6 fragments, which the in-test
    // reassembler must stitch back together from capture bytes alone.
    apps::QpipTestbed bed(2, 1500);
    net::PcapWriter pcap;
    net::tapLink(bed.fabric().linkFor(0), pcap);
    net::tapLink(bed.fabric().linkFor(1), pcap);

    auto res = apps::runQpipTcpPingPong(bed, 4, 4096);
    ASSERT_TRUE(res.completed);

    auto parsed = parsePcap(pcap.bytes());
    ASSERT_TRUE(parsed.has_value());
    bool saw_fragment = false;
    for (const auto &f : parsed->frames) {
        inet::Ipv6Packet v6;
        ASSERT_TRUE(inet::parseIpv6(f.data, v6));
        saw_fragment = saw_fragment || v6.frag.has_value();
    }
    ASSERT_TRUE(saw_fragment);
    EXPECT_GT(verifyCapturedFrames(*parsed), 0);
}

TEST(Pcap, SocketsIpv4CaptureReparsesWithValidChecksums)
{
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet);
    net::PcapWriter pcap;
    net::tapLink(bed.fabric().linkFor(0), pcap);
    net::tapLink(bed.fabric().linkFor(1), pcap);

    auto res = apps::runSocketsTtcp(bed, 64 * 1024);
    ASSERT_TRUE(res.completed);
    ASSERT_GT(pcap.frames(), 0u);

    auto parsed = parsePcap(pcap.bytes());
    ASSERT_TRUE(parsed.has_value());
    // All frames are IPv4 on this fabric.
    for (const auto &f : parsed->frames) {
        ASSERT_FALSE(f.data.empty());
        EXPECT_EQ(f.data[0] >> 4, 4);
    }
    EXPECT_GT(verifyCapturedFrames(*parsed), 0);
}

TEST(Pcap, CaptureIncludesFramesTheFaultInjectorDrops)
{
    // The tap sits after fault injection but before the drop branch:
    // a capture of a lossy wire shows every frame that occupied it.
    sim::Simulation sim;
    net::Link link(sim, "lossy", net::gigabitEthernetLink());
    struct NullSink : net::NetReceiver
    {
        void onPacket(net::PacketPtr) override {}
    } sink;
    link.attach(1, sink);
    link.faults().config.dropProb = 1.0;

    net::PcapWriter pcap;
    net::tapLink(link, pcap);
    auto pkt = net::makePacket();
    inet::IpDatagram d;
    d.src = *inet::InetAddr::parse("10.0.0.1");
    d.dst = *inet::InetAddr::parse("10.0.0.2");
    d.proto = inet::IpProto::Udp;
    d.payload = {1, 2, 3, 4, 5, 6, 7, 8};
    pkt->proto = net::NetProto::Ipv4;
    pkt->data = inet::serializeIpv4(d, 1);
    link.send(0, pkt);
    sim.run();

    EXPECT_EQ(link.faults().drops.value(), 1u);
    EXPECT_EQ(pcap.frames(), 1u);
}
