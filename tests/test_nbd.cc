/**
 * @file
 * NBD application tests: wire format, disk/store models, end-to-end
 * data integrity over both transports (read-back verification against
 * a real in-memory device), and the flush/sync contract.
 */

#include <gtest/gtest.h>

#include "apps/nbd.hh"

using namespace qpip;
using namespace qpip::apps;

TEST(NbdWire, RequestRoundTrip)
{
    NbdRequest req;
    req.type = NbdOp::Write;
    req.handle = 0x1122334455667788ULL;
    req.offset = 0xdeadbeef00ULL;
    req.length = 65536;
    std::vector<std::uint8_t> payload{1, 2, 3};
    auto wire = serializeNbdRequest(req, payload);
    EXPECT_EQ(wire.size(), nbdRequestHeaderBytes + 3);

    NbdRequest out;
    ASSERT_TRUE(parseNbdRequest(wire, out));
    EXPECT_EQ(out.type, NbdOp::Write);
    EXPECT_EQ(out.handle, req.handle);
    EXPECT_EQ(out.offset, req.offset);
    EXPECT_EQ(out.length, req.length);
}

TEST(NbdWire, RejectsBadMagic)
{
    auto wire = serializeNbdRequest(NbdRequest{});
    wire[0] ^= 0xff;
    NbdRequest out;
    EXPECT_FALSE(parseNbdRequest(wire, out));

    auto rep = serializeNbdReply(1, 0);
    rep[0] ^= 0xff;
    std::uint64_t h;
    std::uint32_t e;
    EXPECT_FALSE(parseNbdReply(rep, h, e));
}

TEST(NbdWire, ReplyRoundTrip)
{
    auto wire = serializeNbdReply(42, 5);
    std::uint64_t handle = 0;
    std::uint32_t error = 0;
    ASSERT_TRUE(parseNbdReply(wire, handle, error));
    EXPECT_EQ(handle, 42u);
    EXPECT_EQ(error, 5u);
}

TEST(DiskModel, SequentialSkipsSeek)
{
    sim::Simulation sim;
    DiskParams p;
    p.bytesPerSec = 1e8; // 10 ns/byte
    p.seekTime = sim::oneMs;
    p.rotationalDelay = 0;
    DiskModel disk(sim, "disk", p);

    int done = 0;
    disk.access(0, 100000, [&] { ++done; });
    disk.access(100000, 100000, [&] { ++done; }); // sequential
    disk.access(500000, 100000, [&] { ++done; }); // seek
    sim.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(disk.seeks.value(), 2u); // first access + the jump
    // 3 transfers of 1 ms each + 2 positioning delays of 1 ms.
    EXPECT_EQ(sim.now(), 5 * sim::oneMs);
}

TEST(ServerStore, CacheHitsAfterWrite)
{
    sim::Simulation sim;
    ServerStore store(sim, "store", 1 << 20);
    bool w = false, r = false;
    store.write(0, 4096, [&] { w = true; });
    sim.run();
    ASSERT_TRUE(w);
    store.read(0, 4096, [&] { r = true; });
    sim.run();
    EXPECT_TRUE(r);
    EXPECT_EQ(store.cacheHits.value(), 1u);
    EXPECT_EQ(store.cacheMisses.value(), 0u);
}

TEST(ServerStore, PreloadMakesReadsHit)
{
    sim::Simulation sim;
    ServerStore store(sim, "store", 1 << 20);
    store.preloadCache();
    bool r = false;
    store.read(12345, 4096, [&] { r = true; });
    sim.run();
    EXPECT_TRUE(r);
    EXPECT_EQ(store.cacheHits.value(), 1u);
}

TEST(ServerStore, WriteBackThrottlesWhenDirtyFull)
{
    sim::Simulation sim;
    DiskParams slow;
    slow.bytesPerSec = 1e6; // very slow disk
    slow.seekTime = 0;
    slow.rotationalDelay = 0;
    ServerStore store(sim, "store", 1 << 24, slow,
                      /*dirty_cap=*/8192);
    int accepted = 0;
    for (int i = 0; i < 4; ++i)
        store.write(i * 8192, 8192, [&] { ++accepted; });
    // With 32 kB offered against an 8 kB dirty cap, later writes must
    // wait for the slow disk.
    sim.runFor(sim::oneMs);
    EXPECT_LT(accepted, 4);
    sim.run();
    EXPECT_EQ(accepted, 4);
}

TEST(ServerStore, FlushWaitsForDrain)
{
    sim::Simulation sim;
    DiskParams slow;
    slow.bytesPerSec = 1e6;
    slow.seekTime = 0;
    slow.rotationalDelay = 0;
    ServerStore store(sim, "store", 1 << 24, slow);
    bool flushed = false;
    store.write(0, 10000, [] {});
    store.flush([&] { flushed = true; });
    sim.runFor(sim::oneMs);
    EXPECT_FALSE(flushed); // 10 kB at 1 MB/s = 10 ms
    sim.run();
    EXPECT_TRUE(flushed);
}

namespace {

/** End-to-end integrity run against a real in-memory device. */
void
integritySockets(SocketsFabric fabric)
{
    const std::uint64_t bytes = 4 << 20;
    SocketsTestbed bed(2, fabric);
    ServerStore store(bed.sim(), "store", bytes);
    std::vector<std::uint8_t> device(bytes, 0);
    NbdServerConfig scfg;
    scfg.content = &device;
    NbdSocketServer server(bed.host(1).stack(), store, scfg);

    NbdClientParams params;
    params.verifyContent = true;
    auto w = runNbdSocketsSequential(bed, 0, 1, true, bytes, params);
    ASSERT_TRUE(w.completed);
    // The device now holds the written pattern everywhere.
    bool any_zero_page = false;
    for (std::uint64_t off = 0; off < bytes; off += 4096)
        any_zero_page |= device[off] == 0 && device[off + 1] == 0 &&
                         device[off + 2] == 0;
    EXPECT_FALSE(any_zero_page);

    auto r = runNbdSocketsSequential(bed, 0, 1, false, bytes, params);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.dataOk); // read-back matches the written pattern
    EXPECT_GT(r.mbPerSec, 1.0);
}

} // namespace

TEST(NbdIntegration, SocketsWriteReadIntegrityGigE)
{
    integritySockets(SocketsFabric::GigabitEthernet);
}

TEST(NbdIntegration, SocketsWriteReadIntegrityMyrinet)
{
    integritySockets(SocketsFabric::MyrinetIp);
}

TEST(NbdIntegration, QpipWriteReadIntegrity)
{
    const std::uint64_t bytes = 4 << 20;
    QpipTestbed bed(2, 9000);
    ServerStore store(bed.sim(), "store", bytes);
    std::vector<std::uint8_t> device(bytes, 0);
    NbdServerConfig scfg;
    scfg.content = &device;
    NbdQpipServer server(bed.provider(1), store, scfg);

    NbdClientParams params;
    params.verifyContent = true;
    auto w = runNbdQpipSequential(bed, 0, 1, true, bytes, params);
    ASSERT_TRUE(w.completed);
    auto r = runNbdQpipSequential(bed, 0, 1, false, bytes, params);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.dataOk);
    EXPECT_GT(r.mbPerSec, 1.0);
    // The lightweight interface shows: far better CPU effectiveness.
    EXPECT_GT(r.mbPerCpuSec, w.clientCpuUtil); // sanity: non-zero
    EXPECT_LT(r.clientCpuUtil, 0.7);
}

TEST(NbdIntegration, QpipFasterAndCheaperThanSockets)
{
    const std::uint64_t bytes = 8 << 20;
    NbdRunResult gige, qpip;
    {
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        ServerStore store(bed.sim(), "store", bytes);
        NbdSocketServer server(bed.host(1).stack(), store, {});
        runNbdSocketsSequential(bed, 0, 1, true, bytes);
        gige = runNbdSocketsSequential(bed, 0, 1, false, bytes);
    }
    {
        QpipTestbed bed(2, 9000);
        ServerStore store(bed.sim(), "store", bytes);
        NbdQpipServer server(bed.provider(1), store, {});
        runNbdQpipSequential(bed, 0, 1, true, bytes);
        qpip = runNbdQpipSequential(bed, 0, 1, false, bytes);
    }
    ASSERT_TRUE(gige.completed);
    ASSERT_TRUE(qpip.completed);
    // The paper's Figure 7 claims: 40-137% higher throughput at up to
    // 133% better CPU effectiveness. Require the direction and a
    // conservative margin.
    EXPECT_GT(qpip.mbPerSec, gige.mbPerSec * 1.3);
    EXPECT_GT(qpip.mbPerCpuSec, gige.mbPerCpuSec * 2.0);
}
