/**
 * @file
 * End-to-end smoke tests: one ping-pong and one small transfer on
 * each of the three systems. If these pass, the full stack — event
 * kernel, fabric, protocols, host model, NIC models, verbs — hangs
 * together.
 */

#include <gtest/gtest.h>

#include "apps/pingpong.hh"
#include "apps/ttcp.hh"

using namespace qpip;
using namespace qpip::apps;

TEST(Smoke, SocketTcpPingPongGigE)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto r = runSocketTcpPingPong(bed, 32);
    ASSERT_TRUE(r.completed);
    // SAN-scale RTT: tens to low hundreds of microseconds.
    EXPECT_GT(r.rttUs, 20.0);
    EXPECT_LT(r.rttUs, 400.0);
}

TEST(Smoke, SocketUdpPingPongGigE)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto r = runSocketUdpPingPong(bed, 32);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.rttUs, 10.0);
    EXPECT_LT(r.rttUs, 400.0);
}

TEST(Smoke, QpipTcpPingPong)
{
    QpipTestbed bed(2);
    auto r = runQpipTcpPingPong(bed, 32);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.rttUs, 10.0);
    EXPECT_LT(r.rttUs, 300.0);
}

TEST(Smoke, QpipUdpPingPong)
{
    QpipTestbed bed(2);
    auto r = runQpipUdpPingPong(bed, 32);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.rttUs, 10.0);
    EXPECT_LT(r.rttUs, 300.0);
}

TEST(Smoke, SocketsTtcpSmall)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto r = runSocketsTtcp(bed, 1 << 20);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.mbPerSec, 5.0);
}

TEST(Smoke, QpipTtcpSmall)
{
    QpipTestbed bed(2);
    auto r = runQpipTtcp(bed, 1 << 20);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.mbPerSec, 5.0);
}
