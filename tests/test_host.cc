/**
 * @file
 * Host-model tests: CPU accounting, the sockets API over a real
 * testbed (connect/accept, stream integrity, EOF, UDP), the loopback
 * path, and connection refusal.
 */

#include <gtest/gtest.h>

#include "apps/testbed.hh"

using namespace qpip;
using namespace qpip::apps;
using host::TcpSocket;
using host::UdpSocket;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 1)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed * 7 + i);
    return v;
}

} // namespace

TEST(CpuModel, SerializesAndAccounts)
{
    sim::Simulation sim;
    host::CpuModel cpu(sim, "cpu", 1'000'000'000); // 1 GHz: 1 cyc = 1 ns
    std::vector<int> order;
    cpu.run(1000, [&] { order.push_back(1); });
    cpu.run(2000, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    // 3000 cycles at 1 GHz = 3 us busy.
    EXPECT_EQ(cpu.busyTotal(), 3 * sim::oneUs);
    EXPECT_EQ(sim.now(), 3 * sim::oneUs);
}

TEST(CpuModel, UtilizationMath)
{
    EXPECT_DOUBLE_EQ(host::CpuModel::utilization(50, 100), 0.5);
    EXPECT_DOUBLE_EQ(host::CpuModel::utilization(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(host::CpuModel::utilization(10, 0), 0.0);
}

TEST(HostSockets, ConnectAcceptTransfer)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto cfg = bed.tcpConfig();
    auto data = pattern(50000);

    std::vector<std::uint8_t> got;
    std::shared_ptr<TcpSocket> server_sock;
    bed.host(1).stack().tcpListen(
        9000, cfg, [&](std::shared_ptr<TcpSocket> s) {
            server_sock = s;
            s->recvExact(data.size(),
                         [&](std::vector<std::uint8_t> d) {
                             got = std::move(d);
                         });
        });

    auto cli = bed.host(0).stack().tcpConnect(
        bed.addr(0, 31000), bed.addr(1, 9000), cfg, nullptr);
    bed.sim().runUntilCondition([&] { return cli->connected(); },
                                5 * sim::oneSec);
    ASSERT_TRUE(cli->connected());

    bool sent = false;
    cli->sendAll(data, [&] { sent = true; });
    bed.sim().runUntilCondition(
        [&] { return sent && got.size() == data.size(); },
        bed.sim().now() + 30 * sim::oneSec);
    EXPECT_EQ(got, data);
}

TEST(HostSockets, EofAfterClose)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto cfg = bed.tcpConfig();
    std::shared_ptr<TcpSocket> server_sock;
    std::vector<std::uint8_t> got;
    bool eof_seen = false;
    bed.host(1).stack().tcpListen(
        9000, cfg, [&](std::shared_ptr<TcpSocket> s) {
            server_sock = s;
            s->recv(1 << 16, [&, s](std::vector<std::uint8_t> d) {
                got = std::move(d);
                s->recv(1 << 16, [&](std::vector<std::uint8_t> d2) {
                    eof_seen = d2.empty();
                });
            });
        });
    auto cli = bed.host(0).stack().tcpConnect(
        bed.addr(0, 31001), bed.addr(1, 9000), cfg, nullptr);
    bed.sim().runUntilCondition([&] { return cli->connected(); },
                                5 * sim::oneSec);
    cli->sendAll(pattern(100), [&] { cli->close(); });
    bed.sim().runUntilCondition([&] { return eof_seen; },
                                bed.sim().now() + 30 * sim::oneSec);
    EXPECT_EQ(got.size(), 100u);
    EXPECT_TRUE(eof_seen);
    EXPECT_TRUE(server_sock->eof());
}

TEST(HostSockets, ConnectionRefusedGetsRst)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto cfg = bed.tcpConfig();
    bool cb_ok = true;
    auto cli = bed.host(0).stack().tcpConnect(
        bed.addr(0, 31002), bed.addr(1, 9999), cfg,
        [&](bool ok) { cb_ok = ok; });
    bed.sim().runUntilCondition([&] { return cli->error(); },
                                10 * sim::oneSec);
    EXPECT_TRUE(cli->error());
    EXPECT_FALSE(cli->connected());
    EXPECT_FALSE(cb_ok);
}

TEST(HostSockets, UdpRoundTripWithPayload)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto srv = bed.host(1).stack().udpBind(bed.addr(1, 5353));
    auto cli = bed.host(0).stack().udpBind(bed.addr(0, 5454));

    auto payload = pattern(1200);
    std::vector<std::uint8_t> got;
    inet::SockAddr from;
    srv->recvFrom([&](UdpSocket::Datagram d) {
        got = std::move(d.data);
        from = d.from;
        srv->sendTo(got, d.from, nullptr);
    });
    std::vector<std::uint8_t> echoed;
    cli->recvFrom([&](UdpSocket::Datagram d) {
        echoed = std::move(d.data);
    });
    cli->sendTo(payload, bed.addr(1, 5353), nullptr);

    bed.sim().runUntilCondition([&] { return !echoed.empty(); },
                                5 * sim::oneSec);
    EXPECT_EQ(got, payload);
    EXPECT_EQ(echoed, payload);
    EXPECT_EQ(from, bed.addr(0, 5454));
}

TEST(HostSockets, MultiNicPerRouteEgressAndMtu)
{
    // A dual-homed host: nicA (node 0, 1500 B MTU) is the primary,
    // nicB (node 2, 576 B MTU) a second spoke into the same fabric.
    // Egress — and with it the interface MTU the IP layer fragments
    // against — follows the per-route pin, not the primary.
    sim::Simulation simv(3);
    net::StarFabric fabric(simv, "fabric", net::gigabitEthernetLink());
    host::Host h0(simv, "host0");
    host::Host h1(simv, "host1");
    auto paramsB = nic::pro1000Params();
    paramsB.mtu = 576;
    nic::EthNic nicA(simv, "host0.nic", h0.stack(), fabric.addNode(0),
                     0, nic::pro1000Params());
    nic::EthNic nic1(simv, "host1.nic", h1.stack(), fabric.addNode(1),
                     1, nic::pro1000Params());
    nic::EthNic nicB(simv, "host0.nic2", h0.stack(), fabric.addNode(2),
                     2, paramsB);

    const auto a0 = inet::InetAddr(*inet::Ipv4Addr::parse("10.0.0.1"));
    const auto a1 = inet::InetAddr(*inet::Ipv4Addr::parse("10.0.0.2"));
    h0.stack().addAddress(a0);
    h1.stack().addAddress(a1);
    h0.stack().routes().add(a1, 1);
    h1.stack().routes().add(a0, 0);

    EXPECT_EQ(h0.stack().primaryNic(), &nicA);
    EXPECT_EQ(h0.stack().egressFor(1), &nicA);

    auto srv = h1.stack().udpBind(inet::SockAddr{a1, 5353});
    auto cli = h0.stack().udpBind(inet::SockAddr{a0, 5454});
    std::vector<std::vector<std::uint8_t>> got;
    auto waitOne = std::make_shared<std::function<void()>>();
    *waitOne = [&, waitOne] {
        srv->recvFrom([&, waitOne](UdpSocket::Datagram d) {
            got.push_back(std::move(d.data));
            (*waitOne)();
        });
    };
    (*waitOne)();

    // Default egress: the primary NIC carries the frame unfragmented.
    cli->sendTo(pattern(1000), inet::SockAddr{a1, 5353}, nullptr);
    simv.runUntilCondition([&] { return got.size() == 1; },
                           sim::oneSec);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(nicA.txPackets.value(), 1u);
    EXPECT_EQ(nicB.txPackets.value(), 0u);

    // Pin the route to nicB: same destination, new egress, and the
    // 576 B interface MTU now fragments the kilobyte datagram.
    h0.stack().setEgress(1, nicB);
    EXPECT_EQ(h0.stack().egressFor(1), &nicB);
    cli->sendTo(pattern(1000, 2), inet::SockAddr{a1, 5353}, nullptr);
    simv.runUntilCondition([&] { return got.size() == 2; },
                           simv.now() + sim::oneSec);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[1], pattern(1000, 2));
    EXPECT_EQ(nicA.txPackets.value(), 1u);
    EXPECT_EQ(nicB.txPackets.value(), 2u);
}

TEST(HostSockets, UdpQueuesWhenNoWaiter)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto srv = bed.host(1).stack().udpBind(bed.addr(1, 5353));
    auto cli = bed.host(0).stack().udpBind(bed.addr(0, 5454));
    for (int i = 0; i < 5; ++i)
        cli->sendTo(pattern(64, static_cast<std::uint8_t>(i)),
                    bed.addr(1, 5353), nullptr);
    bed.sim().runFor(10 * sim::oneMs);
    EXPECT_EQ(srv->pendingCount(), 5u);
    // Drain in order.
    std::vector<std::uint8_t> first;
    srv->recvFrom([&](UdpSocket::Datagram d) { first = d.data; });
    bed.sim().runFor(sim::oneMs);
    EXPECT_EQ(first, pattern(64, 0));
}

TEST(HostSockets, LoopbackDelivery)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto cfg = bed.tcpConfig();
    // Server and client both on host 0, via the loopback path.
    std::shared_ptr<TcpSocket> server_sock;
    std::vector<std::uint8_t> got;
    bed.host(0).stack().tcpListen(
        7777, cfg, [&](std::shared_ptr<TcpSocket> s) {
            server_sock = s;
            s->recvExact(256, [&](std::vector<std::uint8_t> d) {
                got = std::move(d);
            });
        });
    auto cli = bed.host(0).stack().tcpConnect(
        bed.addr(0, 31003), bed.addr(0, 7777), cfg, nullptr);
    bed.sim().runUntilCondition([&] { return cli->connected(); },
                                5 * sim::oneSec);
    ASSERT_TRUE(cli->connected());
    cli->sendAll(pattern(256), [] {});
    bed.sim().runUntilCondition([&] { return got.size() == 256; },
                                bed.sim().now() + 5 * sim::oneSec);
    EXPECT_EQ(got, pattern(256));
    EXPECT_GT(bed.host(0).stack().loopbackPkts.value(), 0u);
    // Nothing crossed the wire.
    EXPECT_EQ(bed.nicOf(0).txPackets.value(), 0u);
}

TEST(HostSockets, BigTransferOverMyrinetIp)
{
    SocketsTestbed bed(2, SocketsFabric::MyrinetIp);
    auto cfg = bed.tcpConfig();
    EXPECT_GT(cfg.mss, 8000u); // 9000 MTU reflected in the MSS
    auto data = pattern(300000);
    std::vector<std::uint8_t> got;
    bed.host(1).stack().tcpListen(
        9000, cfg, [&](std::shared_ptr<TcpSocket> s) {
            s->recvExact(data.size(),
                         [&](std::vector<std::uint8_t> d) {
                             got = std::move(d);
                         });
        });
    auto cli = bed.host(0).stack().tcpConnect(
        bed.addr(0, 31004), bed.addr(1, 9000), cfg, nullptr);
    bed.sim().runUntilCondition([&] { return cli->connected(); },
                                5 * sim::oneSec);
    bool sent = false;
    cli->sendAll(data, [&] { sent = true; });
    bed.sim().runUntilCondition(
        [&] { return sent && got.size() == data.size(); },
        bed.sim().now() + 60 * sim::oneSec);
    EXPECT_EQ(got, data);
}

TEST(HostSockets, CpuTimeIsChargedForTransfers)
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto cfg = bed.tcpConfig();
    std::vector<std::uint8_t> got;
    bed.host(1).stack().tcpListen(
        9000, cfg, [&](std::shared_ptr<TcpSocket> s) {
            s->recvExact(100000, [&](std::vector<std::uint8_t> d) {
                got = std::move(d);
            });
        });
    auto cli = bed.host(0).stack().tcpConnect(
        bed.addr(0, 31005), bed.addr(1, 9000), cfg, nullptr);
    bed.sim().runUntilCondition([&] { return cli->connected(); },
                                5 * sim::oneSec);
    const auto tx0 = bed.host(0).cpu().busyTotal();
    const auto rx0 = bed.host(1).cpu().busyTotal();
    cli->sendAll(pattern(100000), [] {});
    bed.sim().runUntilCondition([&] { return got.size() == 100000; },
                                bed.sim().now() + 30 * sim::oneSec);
    // Both sides burned non-trivial CPU: at least the copies
    // (100 kB x ~2 cycles/byte ~= 0.4 ms at 550 MHz).
    EXPECT_GT(bed.host(0).cpu().busyTotal() - tx0,
              300 * sim::oneUs);
    EXPECT_GT(bed.host(1).cpu().busyTotal() - rx0,
              300 * sim::oneUs);
}
