/**
 * @file
 * Deterministic replay: two simulations built with the same seed must
 * produce bit-identical observable state — the full stats-registry
 * JSON dump and the full event-trace JSON — for both a clean QPIP
 * ping-pong and a lossy-fabric sockets TCP transfer where every
 * retransmission path is exercised. This pins down the simulator's
 * reproducibility guarantee: all randomness flows from the seeded
 * RNG, and event ordering is stable.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "apps/disk.hh"
#include "apps/verbs_util.hh"
#include "apps/nbd.hh"
#include "apps/pingpong.hh"
#include "apps/testbed.hh"
#include "apps/ttcp.hh"
#include "net/link.hh"
#include "net/pcap.hh"
#include "net/topology.hh"
#include "sim/parallel_engine.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

using namespace qpip;

namespace {

/** Observable end state of one run. */
struct RunArtifacts
{
    std::string statsJson;
    std::string traceJson;
    sim::Tick endTick = 0;
    bool completed = false;
    std::uint64_t faultEvents = 0;
};

RunArtifacts
runQpipPingPong(std::uint64_t seed)
{
    apps::QpipTestbed bed(2, apps::qpipNativeMtu, seed);
    bed.sim().tracer().enable();
    auto res = apps::runQpipTcpPingPong(bed, 16, 64);
    RunArtifacts out;
    out.completed = res.completed;
    out.statsJson = bed.sim().stats().jsonDump();
    out.traceJson = bed.sim().tracer().json();
    out.endTick = bed.sim().now();
    return out;
}

RunArtifacts
runLossyTransfer(std::uint64_t seed)
{
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet,
                             seed);
    bed.sim().tracer().enable();
    // A genuinely hostile wire: loss, duplication, corruption and
    // reordering on both spokes, so retransmission and
    // fast-retransmit paths all run.
    for (net::NodeId node = 0; node < 2; ++node) {
        auto &faults = bed.fabric().linkFor(node).faults();
        faults.config.dropProb = 0.02;
        faults.config.dupProb = 0.01;
        faults.config.corruptProb = 0.01;
        faults.config.reorderProb = 0.05;
    }
    auto res = apps::runSocketsTtcp(bed, 128 * 1024);
    RunArtifacts out;
    out.completed = res.completed;
    out.statsJson = bed.sim().stats().jsonDump();
    out.traceJson = bed.sim().tracer().json();
    out.endTick = bed.sim().now();
    for (const auto &path : bed.sim().stats().match("*.faults.*"))
        out.faultEvents += bed.sim().stats().counterValue(path);
    return out;
}

/**
 * Observable end state of one partitioned (parallel-engine) run.
 * Identical across thread counts by construction; these artifacts
 * are what the bit-identity tests compare.
 */
struct ParallelArtifacts
{
    std::string statsJson;
    /** Every link direction's pcap image, concatenated in a fixed
     *  (edge, side) order. */
    std::vector<std::uint8_t> pcap;
    sim::Tick endTick = 0;
    std::uint64_t executed = 0;
    bool completed = false;
    std::uint64_t faultEvents = 0;
};

/** Tap both directions of every fabric edge, in deterministic order. */
std::vector<std::unique_ptr<net::PcapWriter>>
tapAllEdges(net::Fabric &fabric)
{
    std::vector<std::unique_ptr<net::PcapWriter>> taps;
    for (const auto &e : fabric.edges()) {
        for (int side = 0; side < 2; ++side) {
            taps.push_back(std::make_unique<net::PcapWriter>());
            net::tapLinkSide(*e.link, side, *taps.back());
        }
    }
    return taps;
}

void
collectParallel(apps::SocketsTestbed &bed,
                const std::vector<std::unique_ptr<net::PcapWriter>> &taps,
                ParallelArtifacts &out)
{
    out.statsJson = bed.sim().stats().jsonDump();
    out.endTick = bed.sim().now();
    out.executed = bed.engine()->executed();
    for (const auto &t : taps) {
        out.pcap.insert(out.pcap.end(), t->bytes().begin(),
                        t->bytes().end());
    }
    for (const auto &path : bed.sim().stats().match("*.faults.*"))
        out.faultEvents += bed.sim().stats().counterValue(path);
}

/** All-pairs ttcp over a partitioned 4-host dual-star. */
ParallelArtifacts
runParallelTtcpPairs(int threads, std::uint64_t seed)
{
    apps::SocketsTestbed bed(4, apps::SocketsFabric::GigabitEthernet,
                             seed, host::HostCostModel{},
                             apps::FabricTopology::DualStar);
    bed.enableParallel(threads);
    const auto taps = tapAllEdges(bed.fabric());
    const auto r =
        apps::runSocketsTtcpPairs(bed, apps::allPairs(4), 32 * 1024);
    ParallelArtifacts out;
    out.completed = r.completed && r.pairsCompleted == 12;
    collectParallel(bed, taps, out);
    return out;
}

/** The lossy-wire transfer of runLossyTransfer, partitioned. */
ParallelArtifacts
runParallelLossy(int threads, std::uint64_t seed)
{
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet,
                             seed, host::HostCostModel{},
                             apps::FabricTopology::DualStar);
    bed.enableParallel(threads);
    for (net::NodeId node = 0; node < 2; ++node) {
        auto &faults = bed.fabric().linkFor(node).faults();
        faults.config.dropProb = 0.02;
        faults.config.dupProb = 0.01;
        faults.config.corruptProb = 0.01;
        faults.config.reorderProb = 0.05;
    }
    const auto taps = tapAllEdges(bed.fabric());
    const auto r = apps::runSocketsTtcp(bed, 128 * 1024);
    ParallelArtifacts out;
    out.completed = r.completed;
    collectParallel(bed, taps, out);
    return out;
}

/**
 * NBD write+read against a partitioned 2-host dual-star. No pcap
 * here: the NBD client draws its source port from a process-global
 * counter, so successive runs differ in the TCP headers (but in
 * nothing observable through stats or timing).
 */
ParallelArtifacts
runParallelNbd(int threads, std::uint64_t seed)
{
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet,
                             seed, host::HostCostModel{},
                             apps::FabricTopology::DualStar);
    bed.enableParallel(threads);
    // The store is server-side state: it must live (and burn disk
    // model time) on the server host's partition.
    apps::ServerStore store(bed.sim(), "store", 1 << 20);
    bed.engine()->assignByPrefix(
        "store", *bed.engine()->findPartition("host1"));
    apps::NbdSocketServer server(bed.host(1).stack(), store,
                                 apps::NbdServerConfig{});
    const auto w =
        apps::runNbdSocketsSequential(bed, 0, 1, true, 256 * 1024);
    const auto r =
        apps::runNbdSocketsSequential(bed, 0, 1, false, 256 * 1024);
    ParallelArtifacts out;
    out.completed = w.completed && r.completed && r.dataOk;
    out.statsJson = bed.sim().stats().jsonDump();
    out.endTick = bed.sim().now();
    out.executed = bed.engine()->executed();
    return out;
}

/**
 * RDMA Write/Read/Send fan-in over an SRQ on a partitioned 4-host
 * dual-star: three clients drive one-sided and two-sided traffic at
 * one server whose receives all come from a shared receive queue.
 */
ParallelArtifacts
runParallelRdmaSrq(int threads, std::uint64_t seed)
{
    apps::QpipTestbed bed(4, apps::qpipNativeMtu, seed,
                          nic::QpipNicParams{}, host::HostCostModel{},
                          apps::IpFamily::V6,
                          apps::FabricTopology::DualStar);
    bed.enableParallel(threads);
    const auto taps = tapAllEdges(bed.fabric());

    constexpr std::size_t clients[] = {0, 2, 3};
    constexpr int opsPerClient = 9; // op%3: 0=Write 1=Read 2=Send
    constexpr std::size_t opBytes = 2048;

    auto scq = bed.provider(1).createCq();
    auto srq = bed.provider(1).createSrq();
    std::vector<std::uint8_t> rbuf(1 << 16);
    auto rmr = bed.provider(1).registerMemory(rbuf,
                                              nic::accessRemoteRw);
    for (std::size_t i = 0; i < 16; ++i)
        srq->postRecv(i, *rmr, 32768 + i * 2048, 2048);

    verbs::QpAttrs attrs;
    attrs.rdmaWindowBytes = 1 << 14;
    verbs::QpAttrs server_attrs = attrs;
    server_attrs.srq = srq;
    verbs::Acceptor acc(bed.provider(1), 700, scq, scq);
    std::vector<std::shared_ptr<verbs::QueuePair>> serverQps;
    for (std::size_t i = 0; i < std::size(clients); ++i) {
        acc.acceptOne(
            [&](std::shared_ptr<verbs::QueuePair> q) {
                serverQps.push_back(std::move(q));
            },
            server_attrs);
    }

    struct Client
    {
        std::shared_ptr<verbs::CompletionQueue> cq;
        std::vector<std::uint8_t> buf;
        std::shared_ptr<verbs::MemoryRegion> mr;
        std::shared_ptr<verbs::QueuePair> qp;
        int done = 0;
        bool connected = false;
    };
    std::vector<Client> cs(std::size(clients));
    for (std::size_t i = 0; i < std::size(clients); ++i) {
        auto &c = cs[i];
        c.cq = bed.provider(clients[i]).createCq();
        c.buf.assign(1 << 15, static_cast<std::uint8_t>(i + 1));
        c.mr = bed.provider(clients[i]).registerMemory(c.buf);
        c.qp = bed.provider(clients[i])
                   .createQp(nic::QpType::ReliableTcp, c.cq, c.cq,
                             attrs);
        c.qp->connect(bed.addr(1, 700),
                      [&c](bool ok) { c.connected = ok; });
    }
    bed.sim().runUntilCondition(
        [&] {
            return serverQps.size() == std::size(clients) &&
                   std::all_of(cs.begin(), cs.end(),
                               [](const Client &c) {
                                   return c.connected;
                               });
        },
        bed.sim().now() + 30 * sim::oneSec);

    std::size_t serverReceives = 0;
    apps::waitLoop(*scq, [&](verbs::Completion c) {
        if (!c.isSend)
            ++serverReceives;
    });

    for (std::size_t i = 0; i < std::size(clients); ++i) {
        auto &c = cs[i];
        auto postNext = [&bed, &c, &rmr, i](auto &&self) -> void {
            if (c.done >= opsPerClient)
                return;
            const auto roff =
                static_cast<std::uint64_t>(i * 8192 +
                                           (c.done % 4) * 2048);
            switch (c.done % 3) {
              case 0:
                c.qp->postWrite(c.done, *c.mr, 0, opBytes,
                                rmr->key(), roff);
                break;
              case 1:
                c.qp->postRead(c.done, *c.mr, 4096, opBytes,
                               rmr->key(), roff);
                break;
              default:
                c.qp->postSend(c.done, *c.mr, 8192, opBytes);
                break;
            }
            // Re-arm before this op completes; Wait() holds one
            // waiter at a time, so arm from the completion callback.
            c.cq->wait([&c, self](verbs::Completion) {
                ++c.done;
                self(self);
            });
        };
        postNext(postNext);
    }

    const std::size_t wantReceives =
        std::size(clients) * (opsPerClient / 3);
    const bool completed = bed.sim().runUntilCondition(
        [&] {
            return serverReceives >= wantReceives &&
                   std::all_of(cs.begin(), cs.end(),
                               [](const Client &c) {
                                   return c.done >= opsPerClient;
                               });
        },
        bed.sim().now() + 120 * sim::oneSec);

    ParallelArtifacts out;
    out.completed = completed;
    out.statsJson = bed.sim().stats().jsonDump();
    out.endTick = bed.sim().now();
    out.executed = bed.engine()->executed();
    for (const auto &t : taps) {
        out.pcap.insert(out.pcap.end(), t->bytes().begin(),
                        t->bytes().end());
    }
    return out;
}

/**
 * One shift permutation of the all-to-all (host i -> host i+1 mod n)
 * over a partitioned 128-host k=8 fat-tree: the datacenter-scale
 * workload of the per-edge-horizon engine, with every host, edge
 * switch and spine in its own partition. Kept to one shift and small
 * transfers so the 1-vs-N comparison stays CI- and TSan-budgeted.
 */
ParallelArtifacts
runParallelFatTreeShift(int threads, std::uint64_t seed)
{
    apps::SocketsTestbed bed(128, apps::SocketsFabric::GigabitEthernet,
                             seed, host::HostCostModel{},
                             apps::FabricTopology::FatTreeK8);
    bed.enableParallel(threads);
    const auto taps = tapAllEdges(bed.fabric());
    const auto r = apps::runSocketsTtcpPairs(
        bed, apps::uniformShiftPairs(128, 1), 8 * 1024);
    ParallelArtifacts out;
    out.completed = r.completed && r.pairsCompleted == 128;
    collectParallel(bed, taps, out);
    return out;
}

/**
 * The RUD fan-in of runParallelRudFanIn with the whole batching path
 * switched on: chained posts (postSendList / SRQ postRecvList), the
 * doorbell coalescing window and completion-event moderation. Batch
 * doorbell records, fold decisions and moderated notify timing must
 * all be partition-invariant.
 */
ParallelArtifacts
runParallelBatchedFanIn(int threads, std::uint64_t seed)
{
    nic::QpipNicParams params;
    params.doorbellCoalesceCycles = 266;
    params.cqModerationCount = 4;
    params.cqModerationCycles = 1330;
    apps::QpipTestbed bed(4, apps::qpipNativeMtu, seed, params,
                          host::HostCostModel{}, apps::IpFamily::V6,
                          apps::FabricTopology::DualStar);
    bed.enableParallel(threads);
    const auto taps = tapAllEdges(bed.fabric());

    constexpr std::size_t clients[] = {0, 2, 3};
    constexpr int msgsPerClient = 9;
    constexpr int chain = 3;
    constexpr std::size_t msgBytes = 1536;

    auto scq = bed.provider(1).createCq();
    auto srq = bed.provider(1).createSrq();
    std::vector<std::uint8_t> rbuf(1 << 16);
    auto rmr = bed.provider(1).registerMemory(rbuf);
    // Fewer posted WRs than in-flight messages, as in the singleton
    // fan-in: RNR holds and chained replenishment interleave.
    for (std::size_t i = 0; i < 8; ++i)
        srq->postRecv(i, *rmr, i * 2048, 2048);

    verbs::QpAttrs server_attrs;
    server_attrs.srq = srq;
    auto qs = bed.provider(1).createQp(nic::QpType::ReliableDatagram,
                                       scq, scq, server_attrs);
    qs->bind(800);

    std::size_t serverReceives = 0;
    std::size_t pendingRepost = 0;
    apps::waitLoop(*scq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ++serverReceives;
        ++pendingRepost;
        if (pendingRepost < chain)
            return;
        // Chained replenish: one SRQ batch doorbell per chain.
        std::vector<verbs::RecvWrSpec> specs;
        for (std::size_t i = 0; i < pendingRepost; ++i) {
            const std::size_t slot = (serverReceives - pendingRepost +
                                      i) % 8;
            specs.push_back(
                {100 + serverReceives + i, rmr.get(), slot * 2048,
                 2048});
        }
        srq->postRecvList(specs);
        pendingRepost = 0;
    });

    struct Client
    {
        std::shared_ptr<verbs::CompletionQueue> cq;
        std::vector<std::uint8_t> buf;
        std::shared_ptr<verbs::MemoryRegion> mr;
        std::shared_ptr<verbs::QueuePair> qp;
        std::size_t acked = 0;
    };
    std::vector<Client> cs(std::size(clients));
    for (std::size_t i = 0; i < std::size(clients); ++i) {
        auto &c = cs[i];
        c.cq = bed.provider(clients[i]).createCq();
        c.buf.assign(1 << 15, static_cast<std::uint8_t>(i + 1));
        c.mr = bed.provider(clients[i]).registerMemory(c.buf);
        c.qp = bed.provider(clients[i])
                   .createQp(nic::QpType::ReliableDatagram, c.cq,
                             c.cq);
        c.qp->bind(static_cast<std::uint16_t>(2000 + clients[i]));
        apps::waitLoop(*c.cq, [&c](verbs::Completion comp) {
            if (comp.isSend)
                ++c.acked;
        });
        // Chained bursts: 9 messages as three 3-WR batch doorbells.
        for (int m = 0; m < msgsPerClient; m += chain) {
            std::vector<verbs::SendWrSpec> specs;
            for (int k = 0; k < chain; ++k) {
                const int wr = m + k;
                specs.push_back({static_cast<std::uint64_t>(wr),
                                 c.mr.get(), wr * msgBytes, msgBytes,
                                 bed.addr(1, 800)});
            }
            c.qp->postSendList(specs);
        }
    }

    const std::size_t wantReceives =
        std::size(clients) * msgsPerClient;
    const bool completed = bed.sim().runUntilCondition(
        [&] {
            return serverReceives >= wantReceives &&
                   std::all_of(cs.begin(), cs.end(),
                               [](const Client &c) {
                                   return c.acked >= msgsPerClient;
                               });
        },
        bed.sim().now() + 120 * sim::oneSec);

    ParallelArtifacts out;
    out.completed = completed;
    out.statsJson = bed.sim().stats().jsonDump();
    out.endTick = bed.sim().now();
    out.executed = bed.engine()->executed();
    for (const auto &t : taps) {
        out.pcap.insert(out.pcap.end(), t->bytes().begin(),
                        t->bytes().end());
    }
    return out;
}

/**
 * Reliable-datagram fan-in on a partitioned 4-host dual-star: three
 * clients each fire a burst of RUD sends at one server QP whose
 * receives come from a shared receive queue. The per-peer
 * acknowledgement/retransmit machinery and the RNR hold/release path
 * all run across the partition boundary.
 */
ParallelArtifacts
runParallelRudFanIn(int threads, std::uint64_t seed)
{
    apps::QpipTestbed bed(4, apps::qpipNativeMtu, seed,
                          nic::QpipNicParams{}, host::HostCostModel{},
                          apps::IpFamily::V6,
                          apps::FabricTopology::DualStar);
    bed.enableParallel(threads);
    const auto taps = tapAllEdges(bed.fabric());

    constexpr std::size_t clients[] = {0, 2, 3};
    constexpr int msgsPerClient = 9;
    constexpr std::size_t msgBytes = 1536;

    auto scq = bed.provider(1).createCq();
    auto srq = bed.provider(1).createSrq();
    std::vector<std::uint8_t> rbuf(1 << 16);
    auto rmr = bed.provider(1).registerMemory(rbuf);
    // Fewer posted WRs than in-flight messages: the server dips into
    // RNR holds mid-run and replenishment order must stay invariant.
    for (std::size_t i = 0; i < 8; ++i)
        srq->postRecv(i, *rmr, i * 2048, 2048);

    verbs::QpAttrs server_attrs;
    server_attrs.srq = srq;
    auto qs = bed.provider(1).createQp(nic::QpType::ReliableDatagram,
                                       scq, scq, server_attrs);
    qs->bind(800);

    std::size_t serverReceives = 0;
    apps::waitLoop(*scq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ++serverReceives;
        // Hand the consumed slot straight back to the pool.
        srq->postRecv(100 + serverReceives, *rmr,
                      (serverReceives % 8) * 2048, 2048);
    });

    struct Client
    {
        std::shared_ptr<verbs::CompletionQueue> cq;
        std::vector<std::uint8_t> buf;
        std::shared_ptr<verbs::MemoryRegion> mr;
        std::shared_ptr<verbs::QueuePair> qp;
        std::size_t acked = 0;
    };
    std::vector<Client> cs(std::size(clients));
    for (std::size_t i = 0; i < std::size(clients); ++i) {
        auto &c = cs[i];
        c.cq = bed.provider(clients[i]).createCq();
        c.buf.assign(1 << 15, static_cast<std::uint8_t>(i + 1));
        c.mr = bed.provider(clients[i]).registerMemory(c.buf);
        c.qp = bed.provider(clients[i])
                   .createQp(nic::QpType::ReliableDatagram, c.cq,
                             c.cq);
        c.qp->bind(static_cast<std::uint16_t>(2000 + clients[i]));
        apps::waitLoop(*c.cq, [&c](verbs::Completion comp) {
            if (comp.isSend)
                ++c.acked;
        });
        for (int m = 0; m < msgsPerClient; ++m) {
            c.qp->postSend(m, *c.mr, m * msgBytes, msgBytes,
                           bed.addr(1, 800));
        }
    }

    const std::size_t wantReceives =
        std::size(clients) * msgsPerClient;
    const bool completed = bed.sim().runUntilCondition(
        [&] {
            return serverReceives >= wantReceives &&
                   std::all_of(cs.begin(), cs.end(),
                               [](const Client &c) {
                                   return c.acked >= msgsPerClient;
                               });
        },
        bed.sim().now() + 120 * sim::oneSec);

    ParallelArtifacts out;
    out.completed = completed;
    out.statsJson = bed.sim().stats().jsonDump();
    out.endTick = bed.sim().now();
    out.executed = bed.engine()->executed();
    for (const auto &t : taps) {
        out.pcap.insert(out.pcap.end(), t->bytes().begin(),
                        t->bytes().end());
    }
    return out;
}

} // namespace

TEST(Determinism, QpipPingPongReplaysIdentically)
{
    const auto a = runQpipPingPong(7);
    const auto b = runQpipPingPong(7);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.traceJson, b.traceJson);
    // Sanity: the runs actually produced substantial state.
    EXPECT_GT(a.statsJson.size(), 1000u);
    EXPECT_GT(a.traceJson.size(), 1000u);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    // On a lossy fabric the RNG picks which packets die, so a
    // different seed must produce a different history; identical
    // output would mean the seed is ignored somewhere.
    const auto a = runLossyTransfer(1234);
    const auto b = runLossyTransfer(4321);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_NE(a.traceJson, b.traceJson);
    EXPECT_NE(a.statsJson, b.statsJson);
}

TEST(Determinism, LossyFabricTransferReplaysIdentically)
{
    const auto a = runLossyTransfer(1234);
    const auto b = runLossyTransfer(1234);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.traceJson, b.traceJson);
    // The fault injector really fired, or this test proves nothing.
    EXPECT_GT(a.faultEvents, 0u);
}

// --- parallel engine: N threads == 1 thread, bit for bit -----------

TEST(ParallelDeterminism, TtcpPairsThreadCountInvariant)
{
    const auto one = runParallelTtcpPairs(1, 11);
    const auto four = runParallelTtcpPairs(4, 11);
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(four.completed);
    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.statsJson, four.statsJson);
    EXPECT_EQ(one.pcap, four.pcap);
    // Sanity: real traffic crossed the tapped wires.
    EXPECT_GT(one.statsJson.size(), 1000u);
    EXPECT_GT(one.pcap.size(), 10000u);
    // And the 4-thread run itself replays bit-identically.
    const auto again = runParallelTtcpPairs(4, 11);
    EXPECT_EQ(four.statsJson, again.statsJson);
    EXPECT_EQ(four.pcap, again.pcap);
}

TEST(ParallelDeterminism, LossyTransferThreadCountInvariant)
{
    const auto one = runParallelLossy(1, 1234);
    const auto four = runParallelLossy(4, 1234);
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(four.completed);
    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.statsJson, four.statsJson);
    EXPECT_EQ(one.pcap, four.pcap);
    EXPECT_EQ(one.faultEvents, four.faultEvents);
    // Same RNG stream on both sides of the comparison: the faults
    // really fired, and identically so.
    EXPECT_GT(one.faultEvents, 0u);
}

TEST(ParallelDeterminism, NbdThreadCountInvariant)
{
    const auto one = runParallelNbd(1, 5);
    const auto four = runParallelNbd(4, 5);
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(four.completed);
    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.statsJson, four.statsJson);
    EXPECT_GT(one.statsJson.size(), 1000u);
}

TEST(ParallelDeterminism, RdmaSrqThreadCountInvariant)
{
    const auto one = runParallelRdmaSrq(1, 21);
    const auto four = runParallelRdmaSrq(4, 21);
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(four.completed);
    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.statsJson, four.statsJson);
    EXPECT_EQ(one.pcap, four.pcap);
    EXPECT_GT(one.statsJson.size(), 1000u);
    EXPECT_GT(one.pcap.size(), 10000u);
    // And the 4-thread run itself replays bit-identically.
    const auto again = runParallelRdmaSrq(4, 21);
    EXPECT_EQ(four.statsJson, again.statsJson);
    EXPECT_EQ(four.pcap, again.pcap);
}

TEST(ParallelDeterminism, RudFanInThreadCountInvariant)
{
    const auto one = runParallelRudFanIn(1, 29);
    const auto four = runParallelRudFanIn(4, 29);
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(four.completed);
    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.statsJson, four.statsJson);
    EXPECT_EQ(one.pcap, four.pcap);
    EXPECT_GT(one.statsJson.size(), 1000u);
    EXPECT_GT(one.pcap.size(), 10000u);
    // And the 4-thread run itself replays bit-identically.
    const auto again = runParallelRudFanIn(4, 29);
    EXPECT_EQ(four.statsJson, again.statsJson);
    EXPECT_EQ(four.pcap, again.pcap);
}

TEST(ParallelDeterminism, FatTree128ThreadCountInvariant)
{
    const auto one = runParallelFatTreeShift(1, 77);
    const auto four = runParallelFatTreeShift(4, 77);
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(four.completed);
    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.statsJson, four.statsJson);
    EXPECT_EQ(one.pcap, four.pcap);
    // Sanity: 128 hosts really pushed traffic through the tree.
    EXPECT_GT(one.statsJson.size(), 10000u);
    EXPECT_GT(one.pcap.size(), 100000u);
}

TEST(ParallelDeterminism, BatchedPostsThreadCountInvariant)
{
    const auto one = runParallelBatchedFanIn(1, 31);
    const auto four = runParallelBatchedFanIn(4, 31);
    ASSERT_TRUE(one.completed);
    ASSERT_TRUE(four.completed);
    EXPECT_EQ(one.endTick, four.endTick);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.statsJson, four.statsJson);
    EXPECT_EQ(one.pcap, four.pcap);
    EXPECT_GT(one.statsJson.size(), 1000u);
    EXPECT_GT(one.pcap.size(), 10000u);
    // And the 4-thread run itself replays bit-identically.
    const auto again = runParallelBatchedFanIn(4, 31);
    EXPECT_EQ(four.statsJson, again.statsJson);
    EXPECT_EQ(four.pcap, again.pcap);
}
