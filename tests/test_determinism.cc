/**
 * @file
 * Deterministic replay: two simulations built with the same seed must
 * produce bit-identical observable state — the full stats-registry
 * JSON dump and the full event-trace JSON — for both a clean QPIP
 * ping-pong and a lossy-fabric sockets TCP transfer where every
 * retransmission path is exercised. This pins down the simulator's
 * reproducibility guarantee: all randomness flows from the seeded
 * RNG, and event ordering is stable.
 */

#include <gtest/gtest.h>

#include <string>

#include "apps/pingpong.hh"
#include "apps/testbed.hh"
#include "apps/ttcp.hh"
#include "net/link.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

using namespace qpip;

namespace {

/** Observable end state of one run. */
struct RunArtifacts
{
    std::string statsJson;
    std::string traceJson;
    sim::Tick endTick = 0;
    bool completed = false;
    std::uint64_t faultEvents = 0;
};

RunArtifacts
runQpipPingPong(std::uint64_t seed)
{
    apps::QpipTestbed bed(2, apps::qpipNativeMtu, seed);
    bed.sim().tracer().enable();
    auto res = apps::runQpipTcpPingPong(bed, 16, 64);
    RunArtifacts out;
    out.completed = res.completed;
    out.statsJson = bed.sim().stats().jsonDump();
    out.traceJson = bed.sim().tracer().json();
    out.endTick = bed.sim().now();
    return out;
}

RunArtifacts
runLossyTransfer(std::uint64_t seed)
{
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet,
                             seed);
    bed.sim().tracer().enable();
    // A genuinely hostile wire: loss, duplication, corruption and
    // reordering on both spokes, so retransmission and
    // fast-retransmit paths all run.
    for (net::NodeId node = 0; node < 2; ++node) {
        auto &faults = bed.fabric().linkFor(node).faults();
        faults.config.dropProb = 0.02;
        faults.config.dupProb = 0.01;
        faults.config.corruptProb = 0.01;
        faults.config.reorderProb = 0.05;
    }
    auto res = apps::runSocketsTtcp(bed, 128 * 1024);
    RunArtifacts out;
    out.completed = res.completed;
    out.statsJson = bed.sim().stats().jsonDump();
    out.traceJson = bed.sim().tracer().json();
    out.endTick = bed.sim().now();
    for (const auto &path : bed.sim().stats().match("*.faults.*"))
        out.faultEvents += bed.sim().stats().counterValue(path);
    return out;
}

} // namespace

TEST(Determinism, QpipPingPongReplaysIdentically)
{
    const auto a = runQpipPingPong(7);
    const auto b = runQpipPingPong(7);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.traceJson, b.traceJson);
    // Sanity: the runs actually produced substantial state.
    EXPECT_GT(a.statsJson.size(), 1000u);
    EXPECT_GT(a.traceJson.size(), 1000u);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    // On a lossy fabric the RNG picks which packets die, so a
    // different seed must produce a different history; identical
    // output would mean the seed is ignored somewhere.
    const auto a = runLossyTransfer(1234);
    const auto b = runLossyTransfer(4321);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_NE(a.traceJson, b.traceJson);
    EXPECT_NE(a.statsJson, b.statsJson);
}

TEST(Determinism, LossyFabricTransferReplaysIdentically)
{
    const auto a = runLossyTransfer(1234);
    const auto b = runLossyTransfer(1234);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.traceJson, b.traceJson);
    // The fault injector really fired, or this test proves nothing.
    EXPECT_GT(a.faultEvents, 0u);
}
