/**
 * @file
 * Verbs / QPIP NIC tests: QP lifecycle, send-receive over reliable
 * and unreliable services, completion semantics (statuses, ordering,
 * Wait vs Poll), memory-region bounds, RNR hold, fragmentation of big
 * messages, multi-QP CQ sharing and teardown flushes.
 */

#include <gtest/gtest.h>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"

using namespace qpip;
using namespace qpip::apps;
using verbs::Completion;
using verbs::WcStatus;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 3)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed * 11 + i * 5);
    return v;
}

/** Connected RC pair with registered buffers, ready for messaging. */
struct RcPair
{
    explicit RcPair(QpipTestbed &bed, std::size_t buf_bytes = 1 << 16)
        : bed(bed)
    {
        cq0 = bed.provider(0).createCq();
        cq1 = bed.provider(1).createCq();
        buf0 = std::vector<std::uint8_t>(buf_bytes);
        buf1 = std::vector<std::uint8_t>(buf_bytes);
        mr0 = bed.provider(0).registerMemory(buf0);
        mr1 = bed.provider(1).registerMemory(buf1);
        acceptor = std::make_shared<verbs::Acceptor>(
            bed.provider(1), 700, cq1, cq1);
        acceptor->acceptOne(
            [this](std::shared_ptr<verbs::QueuePair> q) {
                qp1 = std::move(q);
            });
        qp0 = bed.provider(0).createQp(nic::QpType::ReliableTcp, cq0,
                                       cq0);
        bool connected = false;
        qp0->connect(bed.addr(1, 700),
                     [&](bool ok) { connected = ok; });
        bed.sim().runUntilCondition(
            [&] { return connected && qp1 != nullptr; },
            bed.sim().now() + 10 * sim::oneSec);
    }

    bool ready() const { return qp0 && qp1; }

    QpipTestbed &bed;
    std::shared_ptr<verbs::CompletionQueue> cq0, cq1;
    std::vector<std::uint8_t> buf0, buf1;
    std::shared_ptr<verbs::MemoryRegion> mr0, mr1;
    std::shared_ptr<verbs::Acceptor> acceptor;
    std::shared_ptr<verbs::QueuePair> qp0, qp1;
};

/** Run the sim until @p cq has a completion; pop it. */
bool
awaitCompletion(QpipTestbed &bed, verbs::CompletionQueue &cq,
                Completion &out,
                sim::Tick deadline = 10 * sim::oneSec)
{
    bed.sim().runUntilCondition([&] { return cq.depth() > 0; },
                                bed.sim().now() + deadline);
    return cq.poll(out);
}

} // namespace

TEST(QpipVerbs, RendezvousEstablishes)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    auto *conn = bed.nicOf(0).connectionOf(p.qp0->num());
    ASSERT_NE(conn, nullptr);
    EXPECT_TRUE(conn->established());
}

TEST(QpipVerbs, SendReceiveMessage)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());

    auto msg = pattern(4096);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    p.qp1->postRecv(11, *p.mr1, 0, 8192);
    p.qp0->postSend(22, *p.mr0, 0, msg.size());

    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq1, c));
    EXPECT_FALSE(c.isSend);
    EXPECT_EQ(c.wrId, 11u);
    EXPECT_EQ(c.status, WcStatus::Success);
    EXPECT_EQ(c.byteLen, msg.size());
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(), p.buf1.begin()));

    ASSERT_TRUE(awaitCompletion(bed, *p.cq0, c));
    EXPECT_TRUE(c.isSend);
    EXPECT_EQ(c.wrId, 22u);
    EXPECT_EQ(c.status, WcStatus::Success);
}

TEST(QpipVerbs, LargeMessageFragmentsAcrossMtu)
{
    QpipTestbed bed(2, 1500); // small link MTU forces fragmentation
    RcPair p(bed, 1 << 16);
    ASSERT_TRUE(p.ready());
    auto msg = pattern(40000);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    p.qp1->postRecv(1, *p.mr1, 0, 65536);
    p.qp0->postSend(2, *p.mr0, 0, msg.size());
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq1, c, 30 * sim::oneSec));
    EXPECT_EQ(c.byteLen, msg.size());
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(), p.buf1.begin()));
}

TEST(QpipVerbs, ReceiveShorterThanBufferReportsActualLength)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    p.qp1->postRecv(1, *p.mr1, 100, 1000); // offset into the region
    const auto msg = pattern(10);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    p.qp0->postSend(2, *p.mr0, 0, 10);
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq1, c));
    EXPECT_EQ(c.byteLen, 10u);
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(),
                           p.buf1.begin() + 100));
}

TEST(QpipVerbs, MessageLargerThanPostedBufferErrors)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    // Two small WRs make a 600-byte window, so the 500-byte message
    // transmits — but it exceeds the *front* WR's buffer, which is a
    // length error against that WR. (A message bigger than the whole
    // posted window is simply flow-controlled and never sent.)
    p.qp1->postRecv(1, *p.mr1, 0, 300);
    p.qp1->postRecv(2, *p.mr1, 300, 300);
    p.qp0->postSend(3, *p.mr0, 0, 500);
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq1, c));
    EXPECT_FALSE(c.isSend);
    EXPECT_EQ(c.wrId, 1u);
    EXPECT_EQ(c.status, WcStatus::LengthError);
}

TEST(QpipVerbs, RnrHoldsUntilBufferPosted)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    // Send with no receive posted: the firmware holds the message
    // un-ACKed, so no completion appears anywhere.
    std::copy_n(pattern(64).begin(), 64, p.buf0.begin());
    p.qp0->postSend(5, *p.mr0, 0, 64);
    bed.sim().runFor(50 * sim::oneMs);
    EXPECT_EQ(p.cq0->depth(), 0u);
    EXPECT_EQ(p.cq1->depth(), 0u);
    // Post the buffer: message lands and the sender completes.
    p.qp1->postRecv(6, *p.mr1, 0, 4096);
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq1, c, 30 * sim::oneSec));
    EXPECT_EQ(c.wrId, 6u);
    EXPECT_EQ(c.status, WcStatus::Success);
    ASSERT_TRUE(awaitCompletion(bed, *p.cq0, c, 30 * sim::oneSec));
    EXPECT_EQ(c.wrId, 5u);
}

TEST(QpipVerbs, CompletionOrderMatchesPostingOrder)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    for (std::uint64_t i = 0; i < 16; ++i)
        p.qp1->postRecv(100 + i, *p.mr1, i * 512, 512);
    for (std::uint64_t i = 0; i < 16; ++i)
        p.qp0->postSend(200 + i, *p.mr0, 0, 256);
    std::vector<std::uint64_t> send_order, recv_order;
    bed.sim().runUntilCondition(
        [&] {
            Completion c;
            while (p.cq0->poll(c))
                send_order.push_back(c.wrId);
            while (p.cq1->poll(c))
                recv_order.push_back(c.wrId);
            return send_order.size() == 16 && recv_order.size() == 16;
        },
        bed.sim().now() + 30 * sim::oneSec);
    ASSERT_EQ(send_order.size(), 16u);
    ASSERT_EQ(recv_order.size(), 16u);
    for (std::uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(send_order[i], 200 + i);
        EXPECT_EQ(recv_order[i], 100 + i);
    }
}

TEST(QpipVerbs, WaitDeliversViaInterrupt)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    p.qp1->postRecv(1, *p.mr1, 0, 1024);

    bool got = false;
    Completion got_c;
    p.cq1->wait([&](Completion c) {
        got = true;
        got_c = c;
    });
    // Nothing yet: the wait is armed, not polled.
    bed.sim().runFor(sim::oneMs);
    EXPECT_FALSE(got);

    p.qp0->postSend(2, *p.mr0, 0, 128);
    bed.sim().runUntilCondition([&] { return got; },
                                bed.sim().now() + 10 * sim::oneSec);
    ASSERT_TRUE(got);
    EXPECT_EQ(got_c.wrId, 1u);
    EXPECT_FALSE(got_c.isSend);
}

TEST(QpipVerbs, UdpQpDropsWithoutPostedWr)
{
    QpipTestbed bed(2);
    auto &prov0 = bed.provider(0);
    auto &prov1 = bed.provider(1);
    auto cq0 = prov0.createCq();
    auto cq1 = prov1.createCq();
    std::vector<std::uint8_t> b0(4096), b1(4096);
    auto mr0 = prov0.registerMemory(b0);
    auto mr1 = prov1.registerMemory(b1);
    auto qp0 = prov0.createQp(nic::QpType::UnreliableUdp, cq0, cq0);
    auto qp1 = prov1.createQp(nic::QpType::UnreliableUdp, cq1, cq1);
    qp0->bind(6000);
    qp1->bind(6001);

    // No recv posted at qp1: the datagram is dropped silently —
    // unreliable service means the send still completes.
    qp0->postSend(1, *mr0, 0, 100, bed.addr(1, 6001));
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *cq0, c));
    EXPECT_TRUE(c.isSend);
    EXPECT_EQ(c.status, WcStatus::Success);
    bed.sim().runFor(10 * sim::oneMs);
    EXPECT_EQ(cq1->depth(), 0u);
    EXPECT_EQ(bed.nicOf(1).udpNoWrDrops.value(), 1u);
}

TEST(QpipVerbs, UdpQpDeliversWithSourceAddress)
{
    QpipTestbed bed(2);
    auto &prov0 = bed.provider(0);
    auto &prov1 = bed.provider(1);
    auto cq0 = prov0.createCq();
    auto cq1 = prov1.createCq();
    std::vector<std::uint8_t> b0(4096), b1(4096);
    auto mr0 = prov0.registerMemory(b0);
    auto mr1 = prov1.registerMemory(b1);
    auto qp0 = prov0.createQp(nic::QpType::UnreliableUdp, cq0, cq0);
    auto qp1 = prov1.createQp(nic::QpType::UnreliableUdp, cq1, cq1);
    qp0->bind(6000);
    qp1->bind(6001);

    qp1->postRecv(9, *mr1, 0, 4096);
    auto msg = pattern(333);
    std::copy(msg.begin(), msg.end(), b0.begin());
    qp0->postSend(8, *mr0, 0, msg.size(), bed.addr(1, 6001));
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *cq1, c));
    EXPECT_EQ(c.wrId, 9u);
    EXPECT_EQ(c.byteLen, msg.size());
    EXPECT_EQ(c.from, bed.addr(0, 6000));
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(), b1.begin()));
}

TEST(QpipVerbs, TwoQpsOneCompletionQueue)
{
    QpipTestbed bed(3);
    // Host 0 runs two QPs (one to each peer) bound to a single CQ —
    // the grouping-by-CQ feature the paper highlights.
    auto &prov0 = bed.provider(0);
    auto cq = prov0.createCq();
    std::vector<std::uint8_t> buf(8192);
    auto mr = prov0.registerMemory(buf);

    // Peers just echo nothing; they only receive.
    std::vector<std::shared_ptr<verbs::CompletionQueue>> pcq;
    std::vector<std::shared_ptr<verbs::MemoryRegion>> pmr;
    std::vector<std::vector<std::uint8_t>> pbuf(2);
    std::vector<std::shared_ptr<verbs::QueuePair>> peer_qp(2);
    std::vector<std::shared_ptr<verbs::Acceptor>> acc;
    for (std::size_t i = 0; i < 2; ++i) {
        auto &prov = bed.provider(i + 1);
        pcq.push_back(prov.createCq());
        pbuf[i].resize(8192);
        pmr.push_back(prov.registerMemory(pbuf[i]));
        acc.push_back(std::make_shared<verbs::Acceptor>(
            prov, 700, pcq[i], pcq[i]));
        acc[i]->acceptOne([&, i](std::shared_ptr<verbs::QueuePair> q) {
            peer_qp[i] = q;
            q->postRecv(1, *pmr[i], 0, 8192);
        });
    }

    auto qp_a = prov0.createQp(nic::QpType::ReliableTcp, cq, cq);
    auto qp_b = prov0.createQp(nic::QpType::ReliableTcp, cq, cq);
    int connected = 0;
    qp_a->connect(bed.addr(1, 700), [&](bool ok) { connected += ok; });
    qp_b->connect(bed.addr(2, 700), [&](bool ok) { connected += ok; });
    bed.sim().runUntilCondition([&] { return connected == 2; },
                                10 * sim::oneSec);
    ASSERT_EQ(connected, 2);

    qp_a->postSend(100, *mr, 0, 64);
    qp_b->postSend(200, *mr, 64, 64);
    std::vector<std::pair<nic::QpNum, std::uint64_t>> seen;
    bed.sim().runUntilCondition(
        [&] {
            Completion c;
            while (cq->poll(c))
                seen.emplace_back(c.qp, c.wrId);
            return seen.size() == 2;
        },
        bed.sim().now() + 10 * sim::oneSec);
    ASSERT_EQ(seen.size(), 2u);
    // One completion per QP, both via the shared CQ.
    EXPECT_NE(seen[0].first, seen[1].first);
}

TEST(QpipVerbs, DisconnectFlushesPostedReceives)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    p.qp1->postRecv(41, *p.mr1, 0, 512);
    p.qp1->postRecv(42, *p.mr1, 512, 512);
    p.qp0->disconnect();
    // Wait for the FIN exchange to close both ends and flush.
    std::vector<std::uint64_t> flushed;
    bed.sim().runUntilCondition(
        [&] {
            Completion c;
            while (p.cq1->poll(c)) {
                if (!c.isSend)
                    flushed.push_back(c.wrId);
            }
            return flushed.size() == 2;
        },
        bed.sim().now() + 30 * sim::oneSec);
    ASSERT_EQ(flushed.size(), 2u);
    EXPECT_EQ(flushed[0], 41u);
    EXPECT_EQ(flushed[1], 42u);
}

TEST(QpipVerbs, SgeBeyondRegionFailsSend)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    EXPECT_DEATH(p.qp0->postSend(1, *p.mr0, p.buf0.size() - 10, 100),
                 "SGE out of region bounds");
}

TEST(QpipVerbs, SendQueueCapacityEnforced)
{
    QpipTestbed bed(2);
    auto &prov = bed.provider(0);
    auto cq = prov.createCq();
    std::vector<std::uint8_t> buf(1024);
    auto mr = prov.registerMemory(buf);
    auto qp = prov.createQp(nic::QpType::ReliableTcp, cq, cq, 4, 4);
    // Not connected: WRs queue in host memory up to the cap.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(qp->postSend(i, *mr, 0, 16));
    EXPECT_FALSE(qp->postSend(99, *mr, 0, 16));
}

TEST(QpipNicStats, FirmwareOccupancyAccrues)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());
    p.qp1->postRecv(1, *p.mr1, 0, 8192);
    p.qp0->postSend(2, *p.mr0, 0, 4096);
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq1, c));
    auto &fw = bed.nicOf(0).fw();
    EXPECT_GT(fw.busyTotal(), 0u);
    EXPECT_GT(fw.stageStat(nic::FwStage::GetWr).count(), 0u);
    EXPECT_GT(fw.stageStat(nic::FwStage::GetData).count(), 0u);
    EXPECT_GT(fw.stageStat(nic::FwStage::BuildTcpHdr).count(), 0u);
    auto &fw1 = bed.nicOf(1).fw();
    EXPECT_GT(fw1.stageStat(nic::FwStage::PutData).count(), 0u);
    EXPECT_GT(fw1.stageStat(nic::FwStage::TcpParse).count(), 0u);
}

// ---------------------------------------------------------------------
// Batched posting, doorbell coalescing and completion moderation
// ---------------------------------------------------------------------

TEST(QpipBatching, PostSendListDeliversAllWithOneDoorbell)
{
    QpipTestbed bed(2);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());

    constexpr std::size_t chain = 4;
    constexpr std::size_t bytes = 256;
    auto msg = pattern(chain * bytes);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    for (std::size_t i = 0; i < chain; ++i)
        p.qp1->postRecv(100 + i, *p.mr1, i * bytes, bytes);

    const auto &db = bed.nicOf(0).doorbells();
    auto &fw = bed.nicOf(0).fw();
    const std::uint64_t rings0 = db.rings.value();
    const std::uint64_t batched0 = db.batchedWrs.value();
    const std::uint64_t dbPasses0 =
        fw.stageStat(nic::FwStage::DoorbellProcess).count();
    const std::uint64_t schedPasses0 =
        fw.stageStat(nic::FwStage::Schedule).count();

    std::vector<verbs::SendWrSpec> specs;
    for (std::size_t i = 0; i < chain; ++i)
        specs.push_back({200 + i, p.mr0.get(), i * bytes, bytes, {}});
    ASSERT_TRUE(p.qp0->postSendList(specs));

    // The whole chain rode one doorbell: one PCI ring, one
    // DoorbellProcess pass, one Schedule pass.
    std::size_t received = 0, acked = 0;
    waitLoop(*p.cq1, [&](Completion c) {
        if (!c.isSend)
            ++received;
    });
    waitLoop(*p.cq0, [&](Completion c) {
        if (c.isSend)
            ++acked;
    });
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return received == chain && acked == chain; },
        bed.sim().now() + 10 * sim::oneSec));

    EXPECT_EQ(db.rings.value() - rings0, 1u);
    EXPECT_EQ(db.batchedWrs.value() - batched0, chain);
    EXPECT_EQ(fw.stageStat(nic::FwStage::DoorbellProcess).count() -
                  dbPasses0,
              1u);
    EXPECT_EQ(fw.stageStat(nic::FwStage::Schedule).count() -
                  schedPasses0,
              1u);
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(), p.buf1.begin()));
}

TEST(QpipBatching, PostSendListIsAllOrNothing)
{
    QpipTestbed bed(2);
    auto &prov = bed.provider(0);
    auto cq = prov.createCq();
    std::vector<std::uint8_t> buf(1024);
    auto mr = prov.registerMemory(buf);
    auto qp = prov.createQp(nic::QpType::ReliableTcp, cq, cq, 4, 4);

    std::vector<verbs::SendWrSpec> five(
        5, verbs::SendWrSpec{1, mr.get(), 0, 16, {}});
    EXPECT_FALSE(qp->postSendList(five));
    EXPECT_EQ(qp->sendQueueDepth(), 0u); // nothing partially posted

    std::vector<verbs::SendWrSpec> four(
        4, verbs::SendWrSpec{2, mr.get(), 0, 16, {}});
    EXPECT_TRUE(qp->postSendList(four));
    EXPECT_EQ(qp->sendQueueDepth(), 4u);
    EXPECT_TRUE(qp->postSendList({})); // empty chain is a no-op
    EXPECT_EQ(qp->sendQueueDepth(), 4u);
}

TEST(QpipBatching, CoalescingWindowFoldsBackToBackPosts)
{
    // A burst of singleton posts outpaces the serialized firmware, so
    // rings to the same send queue land while earlier records still
    // sit in the FIFO — the window folds them and every message still
    // arrives (the drain's host-ring shadows stay authoritative).
    nic::QpipNicParams params;
    params.doorbellCoalesceCycles = 1330; // ~10 us fold window
    QpipTestbed bed(2, qpipNativeMtu, 1, params);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());

    constexpr std::size_t msgs = 8;
    for (std::size_t i = 0; i < msgs; ++i)
        p.qp1->postRecv(100 + i, *p.mr1, i * 64, 64);
    for (std::size_t i = 0; i < msgs; ++i)
        ASSERT_TRUE(p.qp0->postSend(200 + i, *p.mr0, i * 64, 64));

    std::size_t received = 0;
    waitLoop(*p.cq1, [&](Completion c) {
        if (!c.isSend)
            ++received;
    });
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return received == msgs; },
        bed.sim().now() + 10 * sim::oneSec));

    const auto &db = bed.nicOf(0).doorbells();
    EXPECT_GT(db.coalesced.value(), 0u);
    EXPECT_LT(db.rings.value() - db.coalesced.value(),
              db.rings.value());
}

TEST(QpipBatching, TinyDoorbellCapBurstStillCompletes)
{
    // With a 2-deep FIFO most of a burst's doorbells overflow, but
    // any later drain recomputes freshness from the host ring, so no
    // WR is lost — overflow costs notifications, not correctness.
    nic::QpipNicParams params;
    params.doorbellCap = 2;
    QpipTestbed bed(2, qpipNativeMtu, 1, params);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());

    constexpr std::size_t msgs = 8;
    for (std::size_t i = 0; i < msgs; ++i)
        p.qp1->postRecv(100 + i, *p.mr1, i * 64, 64);
    for (std::size_t i = 0; i < msgs; ++i)
        ASSERT_TRUE(p.qp0->postSend(200 + i, *p.mr0, i * 64, 64));

    std::size_t received = 0;
    waitLoop(*p.cq1, [&](Completion c) {
        if (!c.isSend)
            ++received;
    });
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return received == msgs; },
        bed.sim().now() + 10 * sim::oneSec));
    EXPECT_GT(bed.nicOf(0).doorbells().overflows.value(), 0u);
}

TEST(QpipBatching, CqModerationNotifiesAfterCount)
{
    nic::QpipNicParams params;
    params.cqModerationCount = 4;
    params.cqModerationCycles = 133'000; // 1 ms: count triggers first
    QpipTestbed bed(2, qpipNativeMtu, 1, params);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());

    constexpr std::size_t msgs = 8;
    for (std::size_t i = 0; i < msgs; ++i)
        p.qp1->postRecv(100 + i, *p.mr1, i * 64, 64);

    std::size_t received = 0;
    waitLoop(*p.cq1, [&](Completion c) {
        if (!c.isSend)
            ++received;
    });
    for (std::size_t i = 0; i < msgs; ++i)
        ASSERT_TRUE(p.qp0->postSend(200 + i, *p.mr0, i * 64, 64));
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return received == msgs; },
        bed.sim().now() + 10 * sim::oneSec));

    // 8 receives behind a 4-CQE threshold: fewer interrupts than
    // messages, and some CQEs recorded as deferred.
    auto &rx = bed.nicOf(1);
    EXPECT_GT(rx.cqCoalesced.value(), 0u);
    EXPECT_LT(rx.cqNotifies.value(), msgs);
    EXPECT_GE(rx.cqNotifies.value(), 1u);
}

TEST(QpipBatching, CqModerationTimeoutDeliversShortBatch)
{
    // Fewer CQEs than the count threshold: the moderation timer must
    // flush them, or the blocked host would hang forever.
    nic::QpipNicParams params;
    params.cqModerationCount = 64;
    params.cqModerationCycles = 13'300; // 100 us timeout
    QpipTestbed bed(2, qpipNativeMtu, 1, params);
    RcPair p(bed);
    ASSERT_TRUE(p.ready());

    p.qp1->postRecv(11, *p.mr1, 0, 64);
    p.qp1->postRecv(12, *p.mr1, 64, 64);

    std::size_t received = 0;
    waitLoop(*p.cq1, [&](Completion c) {
        if (!c.isSend)
            ++received;
    });
    ASSERT_TRUE(p.qp0->postSend(21, *p.mr0, 0, 64));
    ASSERT_TRUE(p.qp0->postSend(22, *p.mr0, 64, 64));
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return received == 2; },
        bed.sim().now() + 10 * sim::oneSec));
    EXPECT_GE(bed.nicOf(1).cqNotifies.value(), 1u);
    EXPECT_GT(bed.nicOf(1).cqCoalesced.value(), 0u);
}
