/**
 * @file
 * One-sided RDMA and shared-receive-queue tests: Write/Read round
 * trips (pcap-verified against the wire), rkey/bounds protection
 * (remote-access-error completions, untouched target memory), SRQ
 * fan-in from many QPs, SRQ exhaustion (RNR hold on reliable QPs,
 * drop accounting on UD), the reliable-datagram (RUD) shim
 * (in-order ack-gated delivery, many-peer fan-in, RNR holds instead
 * of drops on SRQ exhaustion), and the QP context cache's
 * hit/miss/evict bookkeeping in both entry and byte denominations.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/testbed.hh"
#include "net/pcap.hh"

using namespace qpip;
using namespace qpip::apps;
using verbs::Completion;
using verbs::QpAttrs;
using verbs::WcStatus;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 7)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed * 13 + i * 3 + 1);
    return v;
}

/** Connected RC pair with RDMA framing enabled on both ends. */
struct RdmaPair
{
    explicit RdmaPair(QpipTestbed &bed, nic::MrAccess remote_access,
                      std::size_t buf_bytes = 1 << 16,
                      std::uint32_t window = 1 << 16)
        : bed(bed)
    {
        cq0 = bed.provider(0).createCq();
        cq1 = bed.provider(1).createCq();
        buf0 = std::vector<std::uint8_t>(buf_bytes);
        buf1 = std::vector<std::uint8_t>(buf_bytes);
        mr0 = bed.provider(0).registerMemory(buf0);
        mr1 = bed.provider(1).registerMemory(buf1, remote_access);

        QpAttrs attrs;
        attrs.rdmaWindowBytes = window;
        acceptor = std::make_shared<verbs::Acceptor>(
            bed.provider(1), 700, cq1, cq1);
        acceptor->acceptOne(
            [this](std::shared_ptr<verbs::QueuePair> q) {
                qp1 = std::move(q);
            },
            attrs);
        qp0 = bed.provider(0).createQp(nic::QpType::ReliableTcp, cq0,
                                       cq0, attrs);
        bool connected = false;
        qp0->connect(bed.addr(1, 700),
                     [&](bool ok) { connected = ok; });
        bed.sim().runUntilCondition(
            [&] { return connected && qp1 != nullptr; },
            bed.sim().now() + 10 * sim::oneSec);
    }

    bool ready() const { return qp0 && qp1; }

    QpipTestbed &bed;
    std::shared_ptr<verbs::CompletionQueue> cq0, cq1;
    std::vector<std::uint8_t> buf0, buf1;
    std::shared_ptr<verbs::MemoryRegion> mr0, mr1;
    std::shared_ptr<verbs::Acceptor> acceptor;
    std::shared_ptr<verbs::QueuePair> qp0, qp1;
};

bool
awaitCompletion(QpipTestbed &bed, verbs::CompletionQueue &cq,
                Completion &out,
                sim::Tick deadline = 10 * sim::oneSec)
{
    bed.sim().runUntilCondition([&] { return cq.depth() > 0; },
                                bed.sim().now() + deadline);
    return cq.poll(out);
}

/** Tap both directions of every fabric edge. */
std::vector<std::unique_ptr<net::PcapWriter>>
tapAllEdges(net::Fabric &fabric)
{
    std::vector<std::unique_ptr<net::PcapWriter>> taps;
    for (const auto &e : fabric.edges()) {
        for (int side = 0; side < 2; ++side) {
            taps.push_back(std::make_unique<net::PcapWriter>());
            net::tapLinkSide(*e.link, side, *taps.back());
        }
    }
    return taps;
}

/** Whether @p needle occurs in any tapped capture. */
bool
capturesContain(
    const std::vector<std::unique_ptr<net::PcapWriter>> &taps,
    const std::vector<std::uint8_t> &needle)
{
    for (const auto &t : taps) {
        const auto &hay = t->bytes();
        if (std::search(hay.begin(), hay.end(), needle.begin(),
                        needle.end()) != hay.end()) {
            return true;
        }
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// One-sided round trips
// ---------------------------------------------------------------------

TEST(Rdma, WriteRoundTripPcapVerified)
{
    QpipTestbed bed(2);
    const auto taps = tapAllEdges(bed.fabric());
    RdmaPair p(bed, nic::accessRemoteRw);
    ASSERT_TRUE(p.ready());

    const auto msg = pattern(4096);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    ASSERT_TRUE(p.qp0->postWrite(42, *p.mr0, 0, msg.size(),
                                 p.mr1->key(), 256));

    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq0, c));
    EXPECT_TRUE(c.isSend);
    EXPECT_EQ(c.wrId, 42u);
    EXPECT_EQ(c.opcode, nic::WrOpcode::RdmaWrite);
    EXPECT_EQ(c.status, WcStatus::Success);
    EXPECT_EQ(c.byteLen, msg.size());

    // One-sided: the target landed at raddr with no responder CQE.
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(),
                           p.buf1.begin() + 256));
    EXPECT_EQ(p.cq1->depth(), 0u);
    EXPECT_EQ(bed.nicOf(1).rdmaWrites.value(), 1u);
    EXPECT_EQ(bed.nicOf(1).rdmaRemoteErrors.value(), 0u);

    // The payload really crossed the wire (shows up in the capture).
    EXPECT_TRUE(capturesContain(taps, msg));
}

TEST(Rdma, ReadRoundTripPcapVerified)
{
    QpipTestbed bed(2);
    const auto taps = tapAllEdges(bed.fabric());
    RdmaPair p(bed, nic::accessRemoteRw);
    ASSERT_TRUE(p.ready());

    const auto remote = pattern(2048, 11);
    std::copy(remote.begin(), remote.end(), p.buf1.begin() + 512);
    ASSERT_TRUE(p.qp0->postRead(43, *p.mr0, 64, remote.size(),
                                p.mr1->key(), 512));

    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq0, c));
    EXPECT_TRUE(c.isSend);
    EXPECT_EQ(c.wrId, 43u);
    EXPECT_EQ(c.opcode, nic::WrOpcode::RdmaRead);
    EXPECT_EQ(c.status, WcStatus::Success);
    EXPECT_EQ(c.byteLen, remote.size());

    EXPECT_TRUE(std::equal(remote.begin(), remote.end(),
                           p.buf0.begin() + 64));
    EXPECT_EQ(p.cq1->depth(), 0u);
    EXPECT_EQ(bed.nicOf(1).rdmaReads.value(), 1u);

    // The read data crossed the wire in the response direction.
    EXPECT_TRUE(capturesContain(taps, remote));
}

TEST(Rdma, TwoSidedSendStillWorksOnRdmaQp)
{
    QpipTestbed bed(2);
    RdmaPair p(bed, nic::accessRemoteRw);
    ASSERT_TRUE(p.ready());

    const auto msg = pattern(1024, 5);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    p.qp1->postRecv(1, *p.mr1, 0, 4096);
    p.qp0->postSend(2, *p.mr0, 0, msg.size());

    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq1, c));
    EXPECT_FALSE(c.isSend);
    EXPECT_EQ(c.status, WcStatus::Success);
    EXPECT_EQ(c.byteLen, msg.size());
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(), p.buf1.begin()));
}

// ---------------------------------------------------------------------
// Protection: rkey / bounds / rights violations
// ---------------------------------------------------------------------

TEST(Rdma, WriteWithoutRemoteWriteRightsFails)
{
    QpipTestbed bed(2);
    // Target registered local-only: remote write must be refused.
    RdmaPair p(bed, nic::accessLocal);
    ASSERT_TRUE(p.ready());

    const auto msg = pattern(512);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    ASSERT_TRUE(
        p.qp0->postWrite(1, *p.mr0, 0, msg.size(), p.mr1->key(), 0));

    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq0, c));
    EXPECT_EQ(c.status, WcStatus::RemoteAccessError);
    EXPECT_EQ(c.opcode, nic::WrOpcode::RdmaWrite);
    EXPECT_EQ(bed.nicOf(1).rdmaRemoteErrors.value(), 1u);
    // Target memory untouched.
    EXPECT_TRUE(std::all_of(p.buf1.begin(), p.buf1.end(),
                            [](std::uint8_t b) { return b == 0; }));
}

TEST(Rdma, WriteOutOfBoundsFails)
{
    QpipTestbed bed(2);
    RdmaPair p(bed, nic::accessRemoteRw, 4096);
    ASSERT_TRUE(p.ready());

    const auto msg = pattern(1024);
    std::copy(msg.begin(), msg.end(), p.buf0.begin());
    // raddr + length overruns the 4 KB target region.
    ASSERT_TRUE(p.qp0->postWrite(1, *p.mr0, 0, msg.size(),
                                 p.mr1->key(), 4096 - 100));

    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq0, c));
    EXPECT_EQ(c.status, WcStatus::RemoteAccessError);
    EXPECT_EQ(bed.nicOf(1).rdmaRemoteErrors.value(), 1u);
}

TEST(Rdma, ReadWithBogusRkeyFails)
{
    QpipTestbed bed(2);
    RdmaPair p(bed, nic::accessRemoteRw);
    ASSERT_TRUE(p.ready());

    ASSERT_TRUE(p.qp0->postRead(9, *p.mr0, 0, 128,
                                p.mr1->key() + 999, 0));
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *p.cq0, c));
    EXPECT_EQ(c.status, WcStatus::RemoteAccessError);
    EXPECT_EQ(c.opcode, nic::WrOpcode::RdmaRead);
    EXPECT_EQ(bed.nicOf(1).rdmaRemoteErrors.value(), 1u);
    EXPECT_EQ(bed.nicOf(1).rdmaReads.value(), 0u);
}

// ---------------------------------------------------------------------
// Shared receive queues
// ---------------------------------------------------------------------

TEST(Srq, FanInFromManyQps)
{
    QpipTestbed bed(2);
    auto &sender = bed.provider(0);
    auto &server = bed.provider(1);

    auto scq = server.createCq();
    auto srq = server.createSrq();
    std::vector<std::uint8_t> rbuf(1 << 16);
    auto rmr = server.registerMemory(rbuf);

    constexpr std::size_t numQps = 8;
    constexpr std::size_t msgBytes = 256;
    // One shared pool feeds all QPs: slot i of the buffer.
    for (std::size_t i = 0; i < numQps; ++i)
        ASSERT_TRUE(srq->postRecv(100 + i, *rmr, i * 1024, 1024));
    EXPECT_EQ(srq->depth(), numQps);

    QpAttrs server_attrs;
    server_attrs.srq = srq;
    verbs::Acceptor acc(server, 700, scq, scq);
    std::vector<std::shared_ptr<verbs::QueuePair>> serverQps;
    for (std::size_t i = 0; i < numQps; ++i) {
        acc.acceptOne(
            [&](std::shared_ptr<verbs::QueuePair> q) {
                serverQps.push_back(std::move(q));
            },
            server_attrs);
    }

    auto ccq = sender.createCq();
    std::vector<std::uint8_t> sbuf(numQps * msgBytes);
    auto smr = sender.registerMemory(sbuf);
    std::vector<std::shared_ptr<verbs::QueuePair>> clientQps;
    std::size_t connected = 0;
    for (std::size_t i = 0; i < numQps; ++i) {
        auto qp = sender.createQp(nic::QpType::ReliableTcp, ccq, ccq);
        qp->connect(bed.addr(1, 700),
                    [&](bool ok) { connected += ok ? 1 : 0; });
        clientQps.push_back(std::move(qp));
    }
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return connected == numQps; },
        bed.sim().now() + 20 * sim::oneSec));

    // Every client sends one distinct message.
    for (std::size_t i = 0; i < numQps; ++i) {
        auto msg = pattern(msgBytes, static_cast<std::uint8_t>(i));
        std::copy(msg.begin(), msg.end(),
                  sbuf.begin() + i * msgBytes);
        ASSERT_TRUE(clientQps[i]->postSend(i, *smr, i * msgBytes,
                                           msgBytes));
    }

    // All arrive as receive completions on the shared CQ.
    std::size_t received = 0;
    std::vector<bool> slotUsed(numQps, false);
    while (received < numQps) {
        Completion c;
        ASSERT_TRUE(awaitCompletion(bed, *scq, c, 20 * sim::oneSec));
        if (c.isSend)
            continue;
        EXPECT_EQ(c.status, WcStatus::Success);
        EXPECT_EQ(c.byteLen, msgBytes);
        ASSERT_GE(c.wrId, 100u);
        ASSERT_LT(c.wrId, 100u + numQps);
        slotUsed[c.wrId - 100] = true;
        ++received;
    }
    // The pool drained WR-per-message, in ring order.
    EXPECT_TRUE(std::all_of(slotUsed.begin(), slotUsed.end(),
                            [](bool b) { return b; }));
    EXPECT_EQ(srq->depth(), 0u);
    EXPECT_EQ(bed.nicOf(1).srqEmptyDrops.value(), 0u);
}

TEST(Srq, ExhaustionHoldsTcpMessagesUntilReposted)
{
    QpipTestbed bed(2);
    auto &sender = bed.provider(0);
    auto &server = bed.provider(1);

    auto scq = server.createCq();
    auto srq = server.createSrq();
    std::vector<std::uint8_t> rbuf(1 << 16);
    auto rmr = server.registerMemory(rbuf);
    // One 512-byte WR: enough advertised window for both messages to
    // be transmitted, but only one can land.
    ASSERT_TRUE(srq->postRecv(100, *rmr, 0, 512));

    QpAttrs server_attrs;
    server_attrs.srq = srq;
    verbs::Acceptor acc(server, 700, scq, scq);
    std::vector<std::shared_ptr<verbs::QueuePair>> serverQps;
    for (int i = 0; i < 2; ++i) {
        acc.acceptOne(
            [&](std::shared_ptr<verbs::QueuePair> q) {
                serverQps.push_back(std::move(q));
            },
            server_attrs);
    }

    auto ccq = sender.createCq();
    std::vector<std::uint8_t> sbuf(512);
    auto smr = sender.registerMemory(sbuf);
    std::vector<std::shared_ptr<verbs::QueuePair>> clientQps;
    std::size_t connected = 0;
    for (int i = 0; i < 2; ++i) {
        auto qp = sender.createQp(nic::QpType::ReliableTcp, ccq, ccq);
        qp->connect(bed.addr(1, 700),
                    [&](bool ok) { connected += ok ? 1 : 0; });
        clientQps.push_back(std::move(qp));
    }
    ASSERT_TRUE(bed.sim().runUntilCondition(
        [&] { return connected == 2; },
        bed.sim().now() + 20 * sim::oneSec));

    // Both clients send; the single WR serves the first arrival and
    // the second message is held un-ACKed (RNR), not dropped.
    ASSERT_TRUE(clientQps[0]->postSend(0, *smr, 0, 200));
    ASSERT_TRUE(clientQps[1]->postSend(1, *smr, 200, 200));

    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *scq, c, 20 * sim::oneSec));
    while (c.isSend)
        ASSERT_TRUE(awaitCompletion(bed, *scq, c, 20 * sim::oneSec));
    EXPECT_EQ(c.wrId, 100u);
    bed.sim().runFor(200 * sim::oneMs);
    EXPECT_GE(bed.nicOf(1).srqRnrHolds.value(), 1u);
    EXPECT_EQ(srq->depth(), 0u);

    // Reposting frees the held message.
    ASSERT_TRUE(srq->postRecv(101, *rmr, 1024, 512));
    ASSERT_TRUE(awaitCompletion(bed, *scq, c, 20 * sim::oneSec));
    while (c.isSend)
        ASSERT_TRUE(awaitCompletion(bed, *scq, c, 20 * sim::oneSec));
    EXPECT_EQ(c.wrId, 101u);
    EXPECT_EQ(c.status, WcStatus::Success);
}

TEST(Srq, UdExhaustionDropsAndAccounts)
{
    QpipTestbed bed(2);
    auto &sender = bed.provider(0);
    auto &server = bed.provider(1);

    auto scq = server.createCq();
    auto ccq = sender.createCq();
    auto srq = server.createSrq();
    std::vector<std::uint8_t> rbuf(8192), sbuf(8192);
    auto rmr = server.registerMemory(rbuf);
    auto smr = sender.registerMemory(sbuf);

    QpAttrs attrs;
    attrs.srq = srq;
    auto qs =
        server.createQp(nic::QpType::UnreliableUdp, scq, scq, attrs);
    qs->bind(9000);
    auto qc = sender.createQp(nic::QpType::UnreliableUdp, ccq, ccq);
    qc->bind(9001);

    // SRQ empty: the datagram is dropped and accounted.
    ASSERT_TRUE(qc->postSend(1, *smr, 0, 256, bed.addr(1, 9000)));
    bed.sim().runFor(100 * sim::oneMs);
    EXPECT_EQ(bed.nicOf(1).srqEmptyDrops.value(), 1u);
    EXPECT_EQ(scq->depth(), 0u); // nothing delivered
    Completion c;
    ASSERT_TRUE(ccq->poll(c)); // the client's send CQE
    EXPECT_TRUE(c.isSend);

    // With a WR posted, delivery works.
    ASSERT_TRUE(srq->postRecv(7, *rmr, 0, 4096));
    ASSERT_TRUE(qc->postSend(2, *smr, 0, 256, bed.addr(1, 9000)));
    ASSERT_TRUE(awaitCompletion(bed, *scq, c, 10 * sim::oneSec));
    while (c.isSend)
        ASSERT_TRUE(awaitCompletion(bed, *scq, c, 10 * sim::oneSec));
    EXPECT_EQ(c.wrId, 7u);
    EXPECT_EQ(c.byteLen, 256u);
}

// ---------------------------------------------------------------------
// QP context cache
// ---------------------------------------------------------------------

TEST(QpCtxCache, MissesAndEvictionsAreCounted)
{
    nic::QpipNicParams params;
    params.qpCacheCapacity = 2; // tiny SRAM: 2 resident contexts
    QpipTestbed bed(2, qpipNativeMtu, 1, params);

    auto &prov = bed.provider(0);
    auto cq = prov.createCq();
    // Three QPs thrash a two-entry cache.
    auto a = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    auto b = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    auto q3 = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    a->bind(9000);
    b->bind(9001);
    q3->bind(9002);
    bed.sim().runFor(10 * sim::oneMs);

    const auto &cache = bed.nicOf(0).qpCache();
    // Warm installs: creating the third QP evicted the first.
    EXPECT_EQ(cache.evictions.value(), 1u);
    EXPECT_EQ(cache.misses.value(), 0u);

    std::vector<std::uint8_t> buf(4096);
    auto mr = prov.registerMemory(buf);
    // Touching the evicted QP now misses (fetch) and evicts another.
    ASSERT_TRUE(a->postSend(1, *mr, 0, 64, bed.addr(1, 9100)));
    bed.sim().runFor(10 * sim::oneMs);
    EXPECT_GE(cache.misses.value(), 1u);
    EXPECT_GE(cache.evictions.value(), 2u);
    EXPECT_GE(bed.nicOf(0).ctxWritebacks.value(), 1u);
}

TEST(QpCtxCache, DisabledCacheCountsNothing)
{
    nic::QpipNicParams params;
    params.qpCacheCapacity = 0;
    QpipTestbed bed(2, qpipNativeMtu, 1, params);

    auto &prov = bed.provider(0);
    auto cq = prov.createCq();
    auto qp = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    qp->bind(9000);
    std::vector<std::uint8_t> buf(4096);
    auto mr = prov.registerMemory(buf);
    ASSERT_TRUE(qp->postSend(1, *mr, 0, 64, bed.addr(1, 9100)));
    bed.sim().runFor(10 * sim::oneMs);

    const auto &cache = bed.nicOf(0).qpCache();
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.hits.value(), 0u);
    EXPECT_EQ(cache.misses.value(), 0u);
    EXPECT_EQ(cache.evictions.value(), 0u);
}

TEST(QpCtxCache, ByteModeEvictsBySizeWithDirtyTracking)
{
    // 1 KB of context SRAM, denominated in bytes.
    nic::QpContextCache cache(0, 1024);
    EXPECT_TRUE(cache.byteMode());
    EXPECT_TRUE(cache.enabled());

    // Two full-size RC contexts fill it exactly; no evictions.
    EXPECT_EQ(cache.install(1, 512).evictedCount, 0u);
    EXPECT_EQ(cache.install(2, 512).evictedCount, 0u);
    EXPECT_EQ(cache.usedBytes(), 1024u);

    // A third RC context displaces the LRU (qp1). Installed contexts
    // are dirty by definition, so the victim owes its bytes back.
    const auto t3 = cache.install(3, 512);
    EXPECT_EQ(t3.evictedCount, 1u);
    EXPECT_EQ(t3.evicted, 1u);
    EXPECT_EQ(t3.dirtyEvictions, 1u);
    EXPECT_EQ(t3.writebackBytes, 512u);
    EXPECT_FALSE(cache.resident(1));

    // Four UD-size fetches fit in the space of one RC block: the
    // first displaces qp2, the rest land free.
    const auto t4 = cache.touch(4, 128, /*dirty=*/false);
    EXPECT_FALSE(t4.hit);
    EXPECT_EQ(t4.fetchBytes, 128u);
    EXPECT_EQ(t4.evictedCount, 1u);
    for (nic::QpNum q = 5; q <= 7; ++q)
        EXPECT_EQ(cache.touch(q, 128, false).evictedCount, 0u);
    EXPECT_EQ(cache.usedBytes(), 512u + 4 * 128u);

    // Shelter the dirty RC block at the MRU position, then fetch
    // another RC-size block: it displaces all four small victims at
    // once — and because they were clean (read-only touches), none
    // of them owes a writeback.
    EXPECT_TRUE(cache.touch(3, 512, false).hit);
    const auto t8 = cache.touch(8, 512, true);
    EXPECT_FALSE(t8.hit);
    EXPECT_EQ(t8.evictedCount, 4u);
    EXPECT_EQ(t8.dirtyEvictions, 0u);
    EXPECT_EQ(t8.writebackBytes, 0u);

    // The sheltered dirty block pays its writeback when it finally
    // goes: a fetch that displaces it reports the 512 dirty bytes.
    const auto t9 = cache.touch(9, 128, false);
    EXPECT_FALSE(t9.hit);
    EXPECT_EQ(t9.dirtyEvictions, 1u);
    EXPECT_EQ(t9.writebackBytes, 512u);

    // A clean resident entry turns dirty on a dirty re-touch.
    EXPECT_FALSE(cache.dirty(9));
    EXPECT_TRUE(cache.touch(9, 128, true).hit);
    EXPECT_TRUE(cache.dirty(9));
}

TEST(QpCtxCache, ByteCapacityParamDrivesNicCache)
{
    nic::QpipNicParams params;
    // Room for exactly two UD contexts (128 B each).
    params.qpCacheBytes = 256;
    QpipTestbed bed(2, qpipNativeMtu, 1, params);

    auto &prov = bed.provider(0);
    auto cq = prov.createCq();
    auto a = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    auto b = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    auto c = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    a->bind(9000);
    b->bind(9001);
    c->bind(9002);
    bed.sim().runFor(10 * sim::oneMs);

    const auto &cache = bed.nicOf(0).qpCache();
    EXPECT_TRUE(cache.byteMode());
    EXPECT_LE(cache.usedBytes(), 256u);
    // Creating the third UD context displaced the first.
    EXPECT_EQ(cache.evictions.value(), 1u);

    std::vector<std::uint8_t> buf(4096);
    auto mr = prov.registerMemory(buf);
    ASSERT_TRUE(a->postSend(1, *mr, 0, 64, bed.addr(1, 9100)));
    bed.sim().runFor(10 * sim::oneMs);
    EXPECT_GE(cache.misses.value(), 1u);
    EXPECT_GE(bed.nicOf(0).ctxWritebacks.value(), 1u);
}

// ---------------------------------------------------------------------
// Reliable datagrams (RUD)
// ---------------------------------------------------------------------

TEST(Rud, InOrderDeliveryWithAckGatedCompletions)
{
    QpipTestbed bed(2);
    auto &client = bed.provider(0);
    auto &server = bed.provider(1);

    auto scq = server.createCq();
    auto ccq = client.createCq();
    std::vector<std::uint8_t> rbuf(1 << 14), sbuf(1 << 14);
    auto rmr = server.registerMemory(rbuf);
    auto smr = client.registerMemory(sbuf);

    auto qs = server.createQp(nic::QpType::ReliableDatagram, scq, scq);
    qs->bind(800);
    auto qc = client.createQp(nic::QpType::ReliableDatagram, ccq, ccq);
    qc->bind(801);

    constexpr std::size_t numMsgs = 4;
    constexpr std::size_t msgBytes = 512;
    for (std::size_t i = 0; i < numMsgs; ++i)
        ASSERT_TRUE(qs->postRecv(100 + i, *rmr, i * 1024, 1024));
    for (std::size_t i = 0; i < numMsgs; ++i) {
        const auto msg =
            pattern(msgBytes, static_cast<std::uint8_t>(i + 1));
        std::copy(msg.begin(), msg.end(),
                  sbuf.begin() + i * msgBytes);
        ASSERT_TRUE(qc->postSend(i, *smr, i * msgBytes, msgBytes,
                                 bed.addr(1, 800)));
    }

    // Delivery is in posted order, WR-per-message.
    for (std::size_t i = 0; i < numMsgs; ++i) {
        Completion c;
        ASSERT_TRUE(awaitCompletion(bed, *scq, c));
        EXPECT_FALSE(c.isSend);
        EXPECT_EQ(c.wrId, 100 + i);
        EXPECT_EQ(c.status, WcStatus::Success);
        EXPECT_EQ(c.byteLen, msgBytes);
        EXPECT_EQ(c.from, bed.addr(0, 801));
        const auto expect =
            pattern(msgBytes, static_cast<std::uint8_t>(i + 1));
        EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                               rbuf.begin() + i * 1024));
    }

    // Send completions are ack-gated and arrive in order too.
    for (std::size_t i = 0; i < numMsgs; ++i) {
        Completion c;
        ASSERT_TRUE(awaitCompletion(bed, *ccq, c));
        EXPECT_TRUE(c.isSend);
        EXPECT_EQ(c.wrId, i);
        EXPECT_EQ(c.status, WcStatus::Success);
    }
    EXPECT_GE(bed.nicOf(1).rudAcksSent.value(), 1u);
    EXPECT_EQ(bed.nicOf(0).rudRetransmits.value(), 0u);
    EXPECT_EQ(bed.nicOf(0).udpNoWrDrops.value(), 0u);
}

TEST(Rud, ManyPeersFanInToOneQp)
{
    QpipTestbed bed(2);
    auto &client = bed.provider(0);
    auto &server = bed.provider(1);

    auto scq = server.createCq();
    auto ccq = client.createCq();
    std::vector<std::uint8_t> rbuf(1 << 14), sbuf(1 << 14);
    auto rmr = server.registerMemory(rbuf);
    auto smr = client.registerMemory(sbuf);

    // One server QP; each client-side QP is a distinct peer (its own
    // source port), with its own sequence space on the server.
    auto qs = server.createQp(nic::QpType::ReliableDatagram, scq, scq);
    qs->bind(800);

    constexpr std::size_t numPeers = 4;
    constexpr std::size_t perPeer = 2;
    constexpr std::size_t msgBytes = 128;
    std::vector<std::shared_ptr<verbs::QueuePair>> peers;
    for (std::size_t i = 0; i < numPeers; ++i) {
        auto qp =
            client.createQp(nic::QpType::ReliableDatagram, ccq, ccq);
        qp->bind(static_cast<std::uint16_t>(2000 + i));
        peers.push_back(std::move(qp));
    }
    for (std::size_t i = 0; i < numPeers * perPeer; ++i)
        ASSERT_TRUE(qs->postRecv(100 + i, *rmr, i * 256, 256));
    for (std::size_t round = 0; round < perPeer; ++round) {
        for (std::size_t i = 0; i < numPeers; ++i) {
            const std::size_t n = round * numPeers + i;
            ASSERT_TRUE(peers[i]->postSend(n, *smr, n * msgBytes,
                                           msgBytes,
                                           bed.addr(1, 800)));
        }
    }

    std::map<std::uint16_t, std::size_t> perPort;
    for (std::size_t n = 0; n < numPeers * perPeer; ++n) {
        Completion c;
        ASSERT_TRUE(awaitCompletion(bed, *scq, c));
        ASSERT_FALSE(c.isSend);
        EXPECT_EQ(c.status, WcStatus::Success);
        ++perPort[c.from.port];
    }
    EXPECT_EQ(perPort.size(), numPeers);
    for (const auto &[port, count] : perPort)
        EXPECT_EQ(count, perPeer) << "port " << port;

    // Every send eventually completes (acked), none retransmitted on
    // a clean fabric.
    std::size_t sendsDone = 0;
    while (sendsDone < numPeers * perPeer) {
        Completion c;
        ASSERT_TRUE(awaitCompletion(bed, *ccq, c));
        if (c.isSend && c.status == WcStatus::Success)
            ++sendsDone;
    }
    EXPECT_EQ(bed.nicOf(0).rudRetransmits.value(), 0u);
}

TEST(Rud, SrqExhaustionHoldsAndAccountsRnr)
{
    QpipTestbed bed(2);
    auto &client = bed.provider(0);
    auto &server = bed.provider(1);

    auto scq = server.createCq();
    auto ccq = client.createCq();
    auto srq = server.createSrq();
    std::vector<std::uint8_t> rbuf(8192), sbuf(8192);
    auto rmr = server.registerMemory(rbuf);
    auto smr = client.registerMemory(sbuf);

    QpAttrs attrs;
    attrs.srq = srq;
    auto qs = server.createQp(nic::QpType::ReliableDatagram, scq, scq,
                              attrs);
    qs->bind(800);
    auto qc = client.createQp(nic::QpType::ReliableDatagram, ccq, ccq);
    qc->bind(801);

    // SRQ empty: unlike UD (which drops and counts srq.emptyDrops),
    // the reliable service holds the in-order datagram un-acked and
    // accounts an RNR hold.
    ASSERT_TRUE(qc->postSend(1, *smr, 0, 256, bed.addr(1, 800)));
    bed.sim().runFor(100 * sim::oneMs);
    EXPECT_GE(bed.nicOf(1).srqRnrHolds.value(), 1u);
    EXPECT_EQ(bed.nicOf(1).srqEmptyDrops.value(), 0u);
    EXPECT_EQ(scq->depth(), 0u); // nothing delivered...
    EXPECT_EQ(ccq->depth(), 0u); // ...and nothing acked

    // Reposting releases the held datagram; the ack then completes
    // the client's send.
    ASSERT_TRUE(srq->postRecv(7, *rmr, 0, 4096));
    Completion c;
    ASSERT_TRUE(awaitCompletion(bed, *scq, c, 20 * sim::oneSec));
    EXPECT_EQ(c.wrId, 7u);
    EXPECT_EQ(c.byteLen, 256u);
    EXPECT_EQ(c.status, WcStatus::Success);
    ASSERT_TRUE(awaitCompletion(bed, *ccq, c, 20 * sim::oneSec));
    EXPECT_TRUE(c.isSend);
    EXPECT_EQ(c.wrId, 1u);
    EXPECT_EQ(c.status, WcStatus::Success);
}

TEST(Rud, FlushSurfacesWindowedSendsOnDestroy)
{
    QpipTestbed bed(2);
    auto &client = bed.provider(0);
    auto ccq = client.createCq();
    std::vector<std::uint8_t> sbuf(4096);
    auto smr = client.registerMemory(sbuf);

    auto qc = client.createQp(nic::QpType::ReliableDatagram, ccq, ccq);
    qc->bind(801);
    // The peer port is bound by nobody: data flows out but no ack
    // ever returns, so the WR stays in the unacked window.
    ASSERT_TRUE(qc->postSend(1, *smr, 0, 256, bed.addr(1, 802)));
    bed.sim().runFor(20 * sim::oneMs);
    EXPECT_EQ(ccq->depth(), 0u);

    // Destroying the QP flushes the window.
    qc.reset();
    bed.sim().runFor(10 * sim::oneMs);
    Completion c;
    ASSERT_TRUE(ccq->poll(c));
    EXPECT_TRUE(c.isSend);
    EXPECT_EQ(c.wrId, 1u);
    EXPECT_EQ(c.status, WcStatus::Flushed);
}
