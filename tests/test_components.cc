/**
 * @file
 * Component-level tests for units not covered elsewhere: the doorbell
 * FIFO, the DMA engine, Ethernet NIC ring behaviour, sockbufs, the
 * histogram renderer, the stats reports, switch output contention and
 * the LanaiProcessor resource semantics.
 */

#include <gtest/gtest.h>

#include "apps/testbed.hh"
#include "host/sockbuf.hh"
#include "nic/doorbell.hh"
#include "nic/dma.hh"
#include "nic/lanai.hh"
#include "nic/report.hh"

using namespace qpip;

TEST(DoorbellFifo, DeliversAfterPciWriteLatency)
{
    sim::Simulation sim;
    nic::DoorbellFifo db(sim, "db", 4);
    int drained = 0;
    db.setDrainHook([&] { ++drained; });
    db.ring(nic::Doorbell{1, true});
    EXPECT_EQ(db.depth(), 0u); // not landed yet
    sim.run();
    EXPECT_EQ(drained, 1);
    EXPECT_EQ(db.depth(), 1u);
    nic::Doorbell out;
    ASSERT_TRUE(db.pop(out));
    EXPECT_EQ(out.qp, 1u);
    EXPECT_TRUE(out.isSend);
    EXPECT_FALSE(db.pop(out));
}

TEST(DoorbellFifo, OverflowsBeyondCapacity)
{
    sim::Simulation sim;
    nic::DoorbellFifo db(sim, "db", 2);
    for (unsigned i = 0; i < 5; ++i)
        db.ring(nic::Doorbell{i, false});
    sim.run();
    EXPECT_EQ(db.depth(), 2u);
    EXPECT_EQ(db.overflows.value(), 3u);
    EXPECT_EQ(db.rings.value(), 5u);
}

TEST(DoorbellFifo, RingBufferWrapsAcrossPops)
{
    sim::Simulation sim;
    nic::DoorbellFifo db(sim, "db", 2);
    db.ring(nic::Doorbell{1, true});
    db.ring(nic::Doorbell{2, true});
    sim.run();
    nic::Doorbell out;
    ASSERT_TRUE(db.pop(out));
    EXPECT_EQ(out.qp, 1u);
    // The freed slot takes the next record: storage wraps.
    db.ring(nic::Doorbell{3, true});
    sim.run();
    EXPECT_EQ(db.depth(), 2u);
    EXPECT_EQ(db.overflows.value(), 0u);
    ASSERT_TRUE(db.pop(out));
    EXPECT_EQ(out.qp, 2u);
    ASSERT_TRUE(db.pop(out));
    EXPECT_EQ(out.qp, 3u);
    EXPECT_FALSE(db.pop(out));
}

TEST(DoorbellFifo, CoalescingWindowFoldsSameQueue)
{
    sim::Simulation sim;
    nic::DoorbellFifo db(sim, "db", 4);
    db.coalesceWindow = sim::oneUs;
    int drained = 0;
    db.setDrainHook([&] { ++drained; });
    db.ring(nic::Doorbell{7, true});
    db.ring(nic::Doorbell{7, true, false, 3}); // folds into the first
    db.ring(nic::Doorbell{8, true});           // different queue
    sim.run();
    EXPECT_EQ(db.depth(), 2u);
    EXPECT_EQ(db.coalesced.value(), 1u);
    EXPECT_EQ(db.batchedWrs.value(), 3u);
    // A fold joins a record that already triggered the hook.
    EXPECT_EQ(drained, 2);
    nic::Doorbell out;
    ASSERT_TRUE(db.pop(out));
    EXPECT_EQ(out.qp, 7u);
    EXPECT_EQ(out.wrCount, 4u); // 1 + the folded 3
    ASSERT_TRUE(db.pop(out));
    EXPECT_EQ(out.qp, 8u);
    EXPECT_EQ(out.wrCount, 1u);
}

TEST(DoorbellFifo, CoalescingWindowExpires)
{
    sim::Simulation sim;
    nic::DoorbellFifo db(sim, "db", 4);
    db.coalesceWindow = sim::oneUs;
    db.ring(nic::Doorbell{7, true});
    sim.run();
    // Second ring lands well past the first record's window.
    db.writeLatency = 5 * sim::oneUs;
    db.ring(nic::Doorbell{7, true});
    sim.run();
    EXPECT_EQ(db.depth(), 2u);
    EXPECT_EQ(db.coalesced.value(), 0u);
}

TEST(DoorbellFifo, SrqAndQpRecordsNeverFold)
{
    // Send, receive and SRQ rings carrying the same number address
    // three distinct queues: none fold, and drain keeps ring order.
    sim::Simulation sim;
    nic::DoorbellFifo db(sim, "db", 4);
    db.coalesceWindow = sim::oneUs;
    db.ring(nic::Doorbell{5, true, false});
    db.ring(nic::Doorbell{5, false, false});
    db.ring(nic::Doorbell{5, false, true});
    sim.run();
    EXPECT_EQ(db.depth(), 3u);
    EXPECT_EQ(db.coalesced.value(), 0u);
    nic::Doorbell out;
    ASSERT_TRUE(db.pop(out));
    EXPECT_TRUE(out.isSend);
    ASSERT_TRUE(db.pop(out));
    EXPECT_FALSE(out.isSend);
    EXPECT_FALSE(out.isSrq);
    ASSERT_TRUE(db.pop(out));
    EXPECT_TRUE(out.isSrq);
}

TEST(DoorbellFifo, PoppedRecordIsNoLongerAFoldTarget)
{
    sim::Simulation sim;
    nic::DoorbellFifo db(sim, "db", 4);
    db.coalesceWindow = 100 * sim::oneUs;
    db.ring(nic::Doorbell{7, true});
    sim.run();
    nic::Doorbell out;
    ASSERT_TRUE(db.pop(out)); // the FSM consumed it
    // Still inside the window, but the record is gone: new slot.
    db.ring(nic::Doorbell{7, true});
    sim.run();
    EXPECT_EQ(db.depth(), 1u);
    EXPECT_EQ(db.coalesced.value(), 0u);
}

TEST(DmaEngine, SerializesTransfers)
{
    sim::Simulation sim;
    nic::DmaEngine dma(sim, "dma", {1e8, sim::oneUs}); // 100 MB/s
    // 1000 B = 10 us + 1 us setup.
    const auto t1 = dma.charge(1000);
    EXPECT_EQ(t1, 11 * sim::oneUs);
    // Second transfer queues behind the first.
    const auto t2 = dma.charge(1000);
    EXPECT_EQ(t2, 22 * sim::oneUs);
    // chargeAt in the future starts there.
    const auto t3 = dma.chargeAt(100 * sim::oneUs, 1000);
    EXPECT_EQ(t3, 111 * sim::oneUs);
    EXPECT_EQ(dma.busyTotal(), 33 * sim::oneUs);
}

TEST(DmaEngine, CompletionCallbackFires)
{
    sim::Simulation sim;
    nic::DmaEngine dma(sim, "dma", {1e8, sim::oneUs});
    bool done = false;
    dma.transfer(1000, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.now(), 11 * sim::oneUs);
}

TEST(LanaiProcessor, StageStatsAccumulatePerCharge)
{
    sim::Simulation sim;
    nic::LanaiProcessor fw(sim, "fw", 133'000'000);
    fw.charge(nic::FwStage::Schedule, 266); // 2 us
    fw.charge(nic::FwStage::Schedule, 133); // 1 us
    const auto &s = fw.stageStat(nic::FwStage::Schedule);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_NEAR(s.mean(), 1.5, 0.01);
    EXPECT_NEAR(sim::ticksToUs(fw.busyTotal()), 3.0, 0.01);
    fw.resetStats();
    EXPECT_EQ(fw.stageStat(nic::FwStage::Schedule).count(), 0u);
}

TEST(LanaiProcessor, ExecRunsAtBusyCompletion)
{
    sim::Simulation sim;
    nic::LanaiProcessor fw(sim, "fw", 100'000'000); // 10 ns/cycle
    std::vector<int> order;
    fw.exec(nic::FwStage::Mgmt, 100, [&] { order.push_back(1); });
    fw.exec(nic::FwStage::Mgmt, 100, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.now(), 2 * sim::oneUs);
}

TEST(SockBuf, AppendReadFreeSpace)
{
    host::SockBuf sb(10);
    EXPECT_EQ(sb.freeSpace(), 10u);
    std::vector<std::uint8_t> d{1, 2, 3, 4, 5, 6};
    sb.append(d);
    EXPECT_EQ(sb.freeSpace(), 4u);
    auto got = sb.read(4);
    EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3, 4}));
    EXPECT_EQ(sb.size(), 2u);
    // Over-capacity appends are stored (windows are advisory once
    // data is in flight), free space floors at zero.
    std::vector<std::uint8_t> big(20, 9);
    sb.append(big);
    EXPECT_EQ(sb.freeSpace(), 0u);
    EXPECT_EQ(sb.read(100).size(), 22u);
}

TEST(Histogram, RendersBars)
{
    sim::Histogram h(0, 10, 5);
    for (int i = 0; i < 10; ++i)
        h.sample(3.0);
    h.sample(9.0);
    auto text = h.render(20);
    EXPECT_NE(text.find('#'), std::string::npos);
    // Five bucket lines.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(Reports, FirmwareOccupancyAndTcpStats)
{
    apps::QpipTestbed bed(2);
    // Drive a little traffic.
    auto cq0 = bed.provider(0).createCq();
    auto cq1 = bed.provider(1).createCq();
    std::vector<std::uint8_t> b0(64), b1(64);
    auto mr0 = bed.provider(0).registerMemory(b0);
    auto mr1 = bed.provider(1).registerMemory(b1);
    verbs::Acceptor acc(bed.provider(1), 7, cq1, cq1);
    std::shared_ptr<verbs::QueuePair> qp1;
    acc.acceptOne([&](std::shared_ptr<verbs::QueuePair> q) {
        qp1 = q;
        q->postRecv(1, *mr1, 0, 64);
    });
    auto qp0 = bed.provider(0).createQp(nic::QpType::ReliableTcp, cq0,
                                        cq0);
    bool connected = false;
    qp0->connect(bed.addr(1, 7), [&](bool ok) { connected = ok; });
    bed.sim().runUntilCondition([&] { return connected; },
                                10 * sim::oneSec);
    qp0->postSend(2, *mr0, 0, 32);
    bed.sim().runUntilCondition([&] { return cq1->depth() > 0; },
                                10 * sim::oneSec);

    auto fw_report = nic::fwOccupancyReport(bed.sim().stats(),
                                            bed.nicOf(0).fw().name());
    EXPECT_NE(fw_report.find("Get WR"), std::string::npos);
    EXPECT_NE(fw_report.find("busy total"), std::string::npos);

    auto *conn = bed.nicOf(0).connectionOf(qp0->num());
    ASSERT_NE(conn, nullptr);
    ASSERT_TRUE(conn->stats().registered());
    auto tcp_report = nic::tcpStatsReport(bed.sim().stats(),
                                          conn->stats().statPrefix());
    EXPECT_NE(tcp_report.find("segs out"), std::string::npos);
}

TEST(EthNicModel, RingOverflowDropsFrames)
{
    // Tiny ring + interrupts that can't keep up: drops counted.
    apps::SocketsTestbed bed(2, apps::SocketsFabric::GigabitEthernet);
    // Blast raw packets at host 1's NIC faster than the ISR drains.
    auto &link = bed.fabric().linkFor(1);
    for (int i = 0; i < 600; ++i) {
        auto pkt = net::makePacket();
        pkt->src = 0;
        pkt->dst = 1;
        pkt->proto = net::NetProto::Ipv4;
        pkt->data.assign(64, 0); // bogus; stack will count bad
        link.send(1, pkt);
    }
    bed.sim().run();
    auto &nic = bed.nicOf(1);
    EXPECT_EQ(nic.rxPackets.value(), 600u);
    // Everything that survived the ring reached the stack; drops and
    // deliveries account for all frames.
    EXPECT_EQ(nic.rxRingDrops.value() +
                  bed.host(1).stack().pktsIn.value(),
              600u);
    EXPECT_GT(bed.host(1).stack().badPktsIn.value(), 0u);
}

TEST(SwitchContention, TwoSendersShareOneOutputLink)
{
    // Nodes 0 and 1 both blast node 2: the shared output serializes.
    sim::Simulation sim;
    net::LinkConfig cfg = net::myrinetLink(2000);
    cfg.propDelay = 0;
    cfg.overheadBytes = 0;
    net::StarFabric star(sim, "star", cfg);
    auto &l0 = star.addNode(0);
    auto &l1 = star.addNode(1);
    auto &l2 = star.addNode(2);

    struct Sink : net::NetReceiver
    {
        std::vector<sim::Tick> arrivals;
        sim::Simulation &sim;
        explicit Sink(sim::Simulation &s) : sim(s) {}
        void
        onPacket(net::PacketPtr) override
        {
            arrivals.push_back(sim.now());
        }
    } sink(sim);
    l2.attach(0, sink);

    auto send = [&](net::Link &l) {
        auto pkt = net::makePacket();
        pkt->src = 0;
        pkt->dst = 2;
        pkt->data.assign(2000, 1); // 8 us at 2 Gb/s
        l.send(0, pkt);
    };
    send(l0);
    send(l1);
    sim.run();
    ASSERT_EQ(sink.arrivals.size(), 2u);
    // The second frame queues behind the first on the switch->node2
    // link: arrivals at least one serialization time apart.
    EXPECT_GE(sink.arrivals[1] - sink.arrivals[0], 8 * sim::oneUs);
}

TEST(NeighborTable, LookupSemantics)
{
    inet::NeighborTable t;
    auto a = *inet::InetAddr::parse("fd00::1");
    auto b = *inet::InetAddr::parse("10.0.0.1");
    t.add(a, 3);
    t.add(b, 4);
    EXPECT_EQ(t.lookup(a), std::optional<net::NodeId>(3));
    EXPECT_EQ(t.lookup(b), std::optional<net::NodeId>(4));
    EXPECT_FALSE(t.lookup(*inet::InetAddr::parse("fd00::9")));
    t.add(a, 7); // overwrite
    EXPECT_EQ(t.lookup(a), std::optional<net::NodeId>(7));
    EXPECT_EQ(t.size(), 2u);
}

TEST(MrTable, BoundsCheckedResolution)
{
    nic::MrTable mrs;
    std::vector<std::uint8_t> mem(100);
    auto key = mrs.registerMemory(mem.data(), mem.size());
    EXPECT_EQ(mrs.resolve({key, 0, 100}), mem.data());
    EXPECT_EQ(mrs.resolve({key, 50, 50}), mem.data() + 50);
    EXPECT_EQ(mrs.resolve({key, 50, 51}), nullptr);   // overflow
    EXPECT_EQ(mrs.resolve({key + 9, 0, 10}), nullptr); // bad key
    mrs.deregister(key);
    EXPECT_EQ(mrs.resolve({key, 0, 10}), nullptr);
}

TEST(CqRing, OverflowRejectsAndArmNotifies)
{
    nic::CqRing ring(2);
    nic::Completion c;
    EXPECT_TRUE(ring.push(c));
    EXPECT_TRUE(ring.push(c));
    EXPECT_FALSE(ring.push(c)); // full
    EXPECT_EQ(ring.depth(), 2u);

    nic::CqRing armed(8);
    int notified = 0;
    armed.arm([&] { ++notified; });
    EXPECT_TRUE(armed.armed());
    armed.push(c);
    EXPECT_EQ(notified, 1);
    EXPECT_FALSE(armed.armed()); // one-shot
    armed.push(c);
    EXPECT_EQ(notified, 1);
}
