/**
 * @file
 * Property-style parameterized sweeps (gtest TEST_P): invariants that
 * must hold across randomized sizes, seeds, loss rates and MTUs —
 * checksum round-trips, fragmentation reassembly, ByteFifo vs a
 * reference model, TCP stream integrity under random loss, and QPIP
 * message integrity across MTUs.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <deque>

#include "apps/testbed.hh"
#include "apps/ttcp.hh"
#include "apps/verbs_util.hh"
#include "inet/byte_fifo.hh"
#include "inet/checksum.hh"
#include "inet/ip_frag.hh"
#include "net/fault.hh"
#include "tcp_harness.hh"

using namespace qpip;
using namespace qpip::test;

// ---------------------------------------------------------------------
// Checksum: inserting the computed checksum always verifies
// ---------------------------------------------------------------------

class ChecksumProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChecksumProperty, ComputedChecksumVerifies)
{
    sim::Random rng(GetParam());
    for (int round = 0; round < 50; ++round) {
        const auto n = static_cast<std::size_t>(
            rng.uniformInt(2, 2000));
        std::vector<std::uint8_t> data(n);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        // Zero a 16-bit field, compute, insert, verify whole == ok.
        data[0] = data[1] = 0;
        const std::uint16_t c = inet::internetChecksum(data);
        data[0] = static_cast<std::uint8_t>(c >> 8);
        data[1] = static_cast<std::uint8_t>(c);
        EXPECT_TRUE(inet::checksumOk(data));
        // A single bit flip must be detected.
        const auto idx =
            static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        data[idx] ^= static_cast<std::uint8_t>(
            1u << rng.uniformInt(0, 7));
        EXPECT_FALSE(inet::checksumOk(data));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------
// Checksum: the word-at-a-time fast path equals the byte-wise
// reference for every offset parity, length and add() split
// ---------------------------------------------------------------------

class ChecksumWordwiseProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChecksumWordwiseProperty, MatchesBytewiseReference)
{
    sim::Random rng(GetParam());
    for (int round = 0; round < 200; ++round) {
        const auto n =
            static_cast<std::size_t>(rng.uniformInt(0, 4096));
        // Random lead offset exercises unaligned loads.
        const auto lead =
            static_cast<std::size_t>(rng.uniformInt(0, 7));
        std::vector<std::uint8_t> raw(lead + n);
        // Every third round uses 0xff-heavy data: all-ones words
        // drive the intermediate one's-complement folds right up to
        // the 16-bit boundary, the regime where a dropped end-around
        // carry (off-by-one in the folded sum) becomes visible.
        const bool heavy = round % 3 == 0;
        for (auto &b : raw)
            b = heavy && rng.uniformInt(0, 7) != 0
                    ? 0xff
                    : static_cast<std::uint8_t>(rng.next());
        const std::span<const std::uint8_t> data(raw.data() + lead, n);

        inet::ChecksumAccumulator fast;
        inet::ChecksumBytewise ref;

        // Optionally mix in pseudo-header style 16/32-bit fields.
        if (rng.uniformInt(0, 1) == 1) {
            const auto v16 =
                static_cast<std::uint16_t>(rng.next());
            const auto v32 = static_cast<std::uint32_t>(rng.next());
            fast.addU16(v16);
            ref.addU16(v16);
            fast.addU32(v32);
            ref.addU32(v32);
        }

        // Split the span into random add() chunks (including empty
        // and odd-length ones) so the odd-byte stream state is hit.
        std::size_t pos = 0;
        while (pos < data.size()) {
            const auto chunk = static_cast<std::size_t>(
                rng.uniformInt(0, data.size() - pos));
            fast.add(data.subspan(pos, chunk));
            ref.add(data.subspan(pos, chunk));
            if (chunk == 0) {
                fast.add(data.subspan(pos, 1));
                ref.add(data.subspan(pos, 1));
                pos += 1;
            } else {
                pos += chunk;
            }
        }
        ASSERT_EQ(fast.finish(), ref.finish())
            << "len=" << n << " lead=" << lead;

        // One-shot form agrees too.
        ASSERT_EQ(inet::internetChecksum(data),
                  [&] {
                      inet::ChecksumBytewise one;
                      one.add(data);
                      return one.finish();
                  }());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumWordwiseProperty,
                         ::testing::Values(7, 21, 42, 77, 99));

// Regression: a 4-byte span whose native-order accumulator is exactly
// 0x1ffff. Folding that to 16 bits passes through 0x10000, so an
// implementation that folds a fixed number of times and truncates
// (instead of folding to closure) silently drops the final end-around
// carry and reports 0x0000 instead of 0x0001 for the folded word.
TEST(ChecksumWordwise, FoldCarryAtSixteenBitBoundary)
{
    const std::array<std::uint8_t, 4> raw = {0xff, 0xff, 0x01, 0x00};
    inet::ChecksumAccumulator fast;
    inet::ChecksumBytewise ref;
    fast.add(raw);
    ref.add(raw);
    EXPECT_EQ(fast.finish(), ref.finish());
    // Same span offset by every lead alignment, to cover the carry in
    // the 2/4-byte tail loads as well as the 8-byte bulk loop.
    for (std::size_t lead = 0; lead < 8; ++lead) {
        std::vector<std::uint8_t> buf(lead, 0x00);
        for (int rep = 0; rep < 3; ++rep)
            buf.insert(buf.end(), raw.begin(), raw.end());
        inet::ChecksumAccumulator f2;
        inet::ChecksumBytewise r2;
        f2.add({buf.data() + lead, buf.size() - lead});
        r2.add({buf.data() + lead, buf.size() - lead});
        EXPECT_EQ(f2.finish(), r2.finish()) << "lead=" << lead;
    }
}

// ---------------------------------------------------------------------
// IPv6 fragmentation: any payload reassembles through any MTU, in any
// delivery order
// ---------------------------------------------------------------------

struct FragCase
{
    std::uint64_t seed;
    std::uint32_t mtu;
};

class FragProperty : public ::testing::TestWithParam<FragCase>
{};

TEST_P(FragProperty, FragmentsReassembleShuffled)
{
    sim::Random rng(GetParam().seed);
    for (int round = 0; round < 20; ++round) {
        inet::IpDatagram d;
        d.src = *inet::InetAddr::parse("fd00::1");
        d.dst = *inet::InetAddr::parse("fd00::2");
        d.proto = inet::IpProto::Udp;
        const auto n =
            static_cast<std::size_t>(rng.uniformInt(1, 60000));
        d.payload.resize(n);
        for (auto &b : d.payload)
            b = static_cast<std::uint8_t>(rng.next());

        auto frames = fragmentIpv6(d, GetParam().mtu,
                                   static_cast<std::uint32_t>(round));
        // Fisher-Yates shuffle with the deterministic RNG.
        for (std::size_t i = frames.size(); i > 1; --i) {
            const auto j =
                static_cast<std::size_t>(rng.uniformInt(0, i - 1));
            std::swap(frames[i - 1], frames[j]);
        }

        inet::Ipv6Reassembler reass;
        std::optional<inet::IpDatagram> got;
        for (const auto &f : frames) {
            EXPECT_LE(f.size(), GetParam().mtu);
            inet::Ipv6Packet pkt;
            ASSERT_TRUE(parseIpv6(f, pkt));
            auto r = reass.offer(pkt, 0);
            if (r)
                got = std::move(r);
        }
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->payload, d.payload);
        EXPECT_EQ(reass.pending(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    MtuGrid, FragProperty,
    ::testing::Values(FragCase{1, 1280}, FragCase{2, 1500},
                      FragCase{3, 4352}, FragCase{4, 9000},
                      FragCase{5, 16384}));

// ---------------------------------------------------------------------
// ByteFifo behaves exactly like a reference deque under random ops
// ---------------------------------------------------------------------

class ByteFifoProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ByteFifoProperty, MatchesReferenceModel)
{
    sim::Random rng(GetParam());
    inet::ByteFifo fifo;
    std::deque<std::uint8_t> model;

    for (int op = 0; op < 2000; ++op) {
        const auto kind = rng.uniformInt(0, 3);
        if (kind == 0) { // append
            const auto n =
                static_cast<std::size_t>(rng.uniformInt(0, 300));
            std::vector<std::uint8_t> data(n);
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
            fifo.append(data);
            model.insert(model.end(), data.begin(), data.end());
        } else if (kind == 1 && !model.empty()) { // drop
            const auto n = static_cast<std::size_t>(
                rng.uniformInt(0, model.size()));
            fifo.drop(n);
            model.erase(model.begin(),
                        model.begin() +
                            static_cast<std::ptrdiff_t>(n));
        } else if (kind == 2 && !model.empty()) {
            // Sequential segment reads at advancing offsets: the
            // pattern the cached seek cursor is built for.
            const std::size_t seg = 1 +
                static_cast<std::size_t>(rng.uniformInt(0, 63));
            std::size_t off = 0;
            while (off < model.size()) {
                const std::size_t len =
                    std::min(seg, model.size() - off);
                std::vector<std::uint8_t> out(len);
                fifo.copyOut(off, len, out.data());
                for (std::size_t i = 0; i < len; ++i)
                    ASSERT_EQ(out[i], model[off + i]);
                off += len;
            }
        } else if (!model.empty()) { // random copyOut
            const auto off = static_cast<std::size_t>(
                rng.uniformInt(0, model.size() - 1));
            const auto len = static_cast<std::size_t>(
                rng.uniformInt(0, model.size() - off));
            std::vector<std::uint8_t> out(len);
            fifo.copyOut(off, len, out.data());
            for (std::size_t i = 0; i < len; ++i)
                ASSERT_EQ(out[i], model[off + i]);
        }
        ASSERT_EQ(fifo.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteFifoProperty,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------
// TCP stream integrity under random loss (harness pipe)
// ---------------------------------------------------------------------

struct LossCase
{
    std::uint64_t seed;
    double loss;
};

class TcpLossProperty : public ::testing::TestWithParam<LossCase>
{};

TEST_P(TcpLossProperty, StreamSurvivesRandomLossIntact)
{
    auto cfg = streamConfig();
    cfg.minRto = 10 * sim::oneMs;
    TcpPair p(cfg, cfg, GetParam().seed);
    sim::Random rng(GetParam().seed * 977);
    const double loss = GetParam().loss;
    p.client.txFilter = [&](auto...) { return !rng.bernoulli(loss); };
    p.server.txFilter = [&](auto...) { return !rng.bernoulli(loss); };
    ASSERT_TRUE(p.establish(120 * sim::oneSec));

    std::vector<std::uint8_t> data(60000 +
                                   (GetParam().seed % 7) * 1111);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31 + GetParam().seed);
    std::size_t sent = 0;
    auto feed = [&] {
        while (sent < data.size()) {
            auto n = p.client.conn().send(
                std::span(data).subspan(sent));
            if (n == 0)
                break;
            sent += n;
        }
    };
    feed();
    for (int i = 0;
         i < 5000 && p.server.received.size() < data.size(); ++i) {
        p.sim.runFor(10 * sim::oneMs);
        feed();
    }
    ASSERT_EQ(p.server.received.size(), data.size());
    EXPECT_EQ(p.server.received, data);
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, TcpLossProperty,
    ::testing::Values(LossCase{1, 0.0}, LossCase{2, 0.02},
                      LossCase{3, 0.05}, LossCase{4, 0.10},
                      LossCase{5, 0.02}, LossCase{6, 0.05}));

// ---------------------------------------------------------------------
// Incast bursts over the fixed-radix fat-tree
// ---------------------------------------------------------------------

struct IncastCase
{
    std::uint64_t seed;
    int threads;
};

class IncastProperty : public ::testing::TestWithParam<IncastCase>
{};

TEST_P(IncastProperty, BurstDeliversEveryByteThroughCongestion)
{
    // 32 hosts on the k=8 tree: every other host bursts at host 0
    // concurrently, oversubscribing its last-hop link. The property:
    // however contended, every pair's payload lands in full, serial
    // or partitioned alike.
    apps::SocketsTestbed bed(32, apps::SocketsFabric::GigabitEthernet,
                             GetParam().seed, host::HostCostModel{},
                             apps::FabricTopology::FatTreeK8);
    bed.enableParallel(GetParam().threads);
    const auto pairs = apps::incastPairs(32, 0);
    const auto r = apps::runSocketsTtcpPairs(bed, pairs, 16 * 1024);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.pairsCompleted, pairs.size());
    EXPECT_GT(r.aggMbPerSec, 0.0);
    // The destination's NIC really funneled the whole burst.
    EXPECT_GT(bed.sim().stats().counterValue("host0.nic.rxPackets"),
              static_cast<std::uint64_t>(pairs.size()));
}

INSTANTIATE_TEST_SUITE_P(Bursts, IncastProperty,
                         ::testing::Values(IncastCase{101, 1},
                                           IncastCase{101, 4},
                                           IncastCase{202, 4},
                                           IncastCase{303, 2}));

// ---------------------------------------------------------------------
// QPIP end-to-end message integrity across MTUs and sizes
// ---------------------------------------------------------------------

struct QpipCase
{
    std::uint64_t seed;
    std::uint32_t mtu;
};

class QpipMsgProperty : public ::testing::TestWithParam<QpipCase>
{};

TEST_P(QpipMsgProperty, MessagesArriveIntactAndInOrder)
{
    apps::QpipTestbed bed(2, GetParam().mtu, GetParam().seed);
    auto &sim = bed.sim();
    sim::Random rng(GetParam().seed * 31);

    constexpr std::size_t nMsgs = 12;
    constexpr std::size_t maxBytes = 40000;

    auto cq0 = bed.provider(0).createCq();
    auto cq1 = bed.provider(1).createCq();
    std::vector<std::uint8_t> sbuf(maxBytes), rbuf(maxBytes);
    auto mr0 = bed.provider(0).registerMemory(sbuf);
    auto mr1 = bed.provider(1).registerMemory(rbuf);

    verbs::Acceptor acc(bed.provider(1), 7, cq1, cq1);
    std::shared_ptr<verbs::QueuePair> rqp;
    acc.acceptOne([&](std::shared_ptr<verbs::QueuePair> q) {
        rqp = q;
        q->postRecv(1, *mr1, 0, maxBytes);
    });
    auto sqp =
        bed.provider(0).createQp(nic::QpType::ReliableTcp, cq0, cq0);
    bool connected = false;
    sqp->connect(bed.addr(1, 7), [&](bool ok) { connected = ok; });
    ASSERT_TRUE(sim.runUntilCondition(
        [&] { return connected && rqp != nullptr; },
        sim.now() + 30 * sim::oneSec));

    // Strictly serial: fill the (single) send buffer per message.
    std::size_t verified = 0;
    bool mismatch = false;
    std::vector<std::size_t> sizes;
    for (std::size_t m = 0; m < nMsgs; ++m)
        sizes.push_back(
            static_cast<std::size_t>(rng.uniformInt(1, maxBytes)));

    std::size_t in_flight_msg = 0;
    auto send_next = [&] {
        if (in_flight_msg >= nMsgs)
            return;
        for (std::size_t i = 0; i < sizes[in_flight_msg]; ++i)
            sbuf[i] = static_cast<std::uint8_t>(
                i * 7 + in_flight_msg * 13);
        sqp->postSend(in_flight_msg, *mr0, 0, sizes[in_flight_msg]);
        ++in_flight_msg;
    };
    apps::waitLoop(*cq1, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        if (c.byteLen != sizes[verified]) {
            mismatch = true;
        } else {
            for (std::size_t i = 0; i < c.byteLen; ++i) {
                if (rbuf[i] != static_cast<std::uint8_t>(
                                   i * 7 + verified * 13)) {
                    mismatch = true;
                    break;
                }
            }
        }
        ++verified;
        rqp->postRecv(1, *mr1, 0, maxBytes);
    });
    apps::waitLoop(*cq0, [&](verbs::Completion c) {
        if (c.isSend && c.status == verbs::WcStatus::Success)
            send_next();
    });
    send_next();

    ASSERT_TRUE(sim.runUntilCondition(
        [&] { return verified >= nMsgs || mismatch; },
        sim.now() + 120 * sim::oneSec));
    EXPECT_EQ(verified, nMsgs);
    EXPECT_FALSE(mismatch);
}

INSTANTIATE_TEST_SUITE_P(
    MtuSeedGrid, QpipMsgProperty,
    ::testing::Values(QpipCase{1, 1500}, QpipCase{2, 9000},
                      QpipCase{3, apps::qpipNativeMtu},
                      QpipCase{4, 1500}, QpipCase{5, 4000}));

// ---------------------------------------------------------------------
// Fault injector: empirical rates converge to configured
// probabilities, and the per-packet decision invariants hold
// ---------------------------------------------------------------------

struct FaultCase
{
    std::uint64_t seed;
    net::FaultConfig cfg;
};

class FaultInjectorProperty
    : public ::testing::TestWithParam<FaultCase>
{};

TEST_P(FaultInjectorProperty, EmpiricalRatesMatchConfig)
{
    const auto &[seed, cfg] = GetParam();
    sim::Random rng(seed);
    net::FaultInjector inj(rng);
    inj.config = cfg;

    const std::size_t rolls = 20000;
    std::size_t drops = 0, dups = 0, corruptions = 0, reorders = 0;
    const std::vector<std::uint8_t> original(64, 0x5a);
    for (std::size_t i = 0; i < rolls; ++i) {
        net::Packet pkt;
        pkt.data = original;
        const net::FaultDecision d = inj.apply(pkt);

        // A dropped packet is never also duplicated, delayed or
        // mutated: the wire either carried it or it didn't.
        if (d.drop) {
            EXPECT_FALSE(d.duplicate);
            EXPECT_EQ(d.extraDelay, 0u);
            EXPECT_EQ(pkt.data, original);
            ++drops;
            continue;
        }
        if (pkt.data != original)
            ++corruptions;
        if (d.duplicate)
            ++dups;
        if (d.extraDelay > 0) {
            EXPECT_EQ(d.extraDelay, cfg.reorderDelay);
            ++reorders;
        }
    }

    // The injector's own counters agree with what we observed.
    EXPECT_EQ(inj.drops.value(), drops);
    EXPECT_EQ(inj.dups.value(), dups);
    EXPECT_EQ(inj.corruptions.value(), corruptions);
    EXPECT_EQ(inj.reorders.value(), reorders);

    // Empirical rates within 5 sigma of the configured probability
    // (dup/corrupt/reorder are conditioned on not-dropped).
    auto check_rate = [](std::size_t hits, std::size_t trials,
                         double p, const char *what) {
        if (trials == 0)
            return;
        const double rate =
            static_cast<double>(hits) / static_cast<double>(trials);
        const double sigma =
            std::sqrt(p * (1.0 - p) / static_cast<double>(trials));
        EXPECT_NEAR(rate, p, 5.0 * sigma + 1e-12)
            << what << ": " << hits << "/" << trials;
    };
    check_rate(drops, rolls, cfg.dropProb, "drop");
    const std::size_t delivered = rolls - drops;
    check_rate(corruptions, delivered, cfg.corruptProb, "corrupt");
    check_rate(dups, delivered, cfg.dupProb, "dup");
    check_rate(reorders, delivered, cfg.reorderProb, "reorder");
}

INSTANTIATE_TEST_SUITE_P(
    SeedRateGrid, FaultInjectorProperty,
    ::testing::Values(
        FaultCase{1, {0.1, 0.05, 0.08, 0.12, 20 * sim::oneUs}},
        FaultCase{2, {0.02, 0.01, 0.01, 0.05, 20 * sim::oneUs}},
        FaultCase{3, {0.5, 0.5, 0.5, 0.5, 7 * sim::oneUs}},
        FaultCase{4, {0.0, 0.0, 0.0, 0.0, 20 * sim::oneUs}},
        FaultCase{5, {1.0, 1.0, 1.0, 1.0, 20 * sim::oneUs}},
        FaultCase{6, {0.25, 0.0, 0.9, 0.0, 20 * sim::oneUs}}));

// ---------------------------------------------------------------------
// RDMA under loss: a random serialized mix of Write/Read/Send over a
// lossy fabric must leave both memory regions exactly as a golden
// serial execution on plain arrays would
// ---------------------------------------------------------------------

struct RdmaLossCase
{
    std::uint64_t seed;
    double loss;
};

class RdmaLossProperty : public ::testing::TestWithParam<RdmaLossCase>
{};

TEST_P(RdmaLossProperty, MixedOpsMatchGoldenExecution)
{
    apps::QpipTestbed bed(2, 4000, GetParam().seed);
    for (net::NodeId node = 0; node < 2; ++node) {
        auto &faults = bed.fabric().linkFor(node).faults();
        faults.config.dropProb = GetParam().loss;
    }
    auto &sim = bed.sim();
    sim::Random rng(GetParam().seed * 131 + 7);

    constexpr std::size_t regionBytes = 1 << 15;
    constexpr std::size_t maxOp = 6000;
    auto cq0 = bed.provider(0).createCq();
    auto cq1 = bed.provider(1).createCq();
    std::vector<std::uint8_t> lbuf(regionBytes), rbuf(regionBytes);
    auto lmr = bed.provider(0).registerMemory(lbuf);
    auto rmr = bed.provider(1).registerMemory(rbuf,
                                             nic::accessRemoteRw);
    // Golden model: the same regions as plain arrays.
    std::vector<std::uint8_t> gold_l(regionBytes), gold_r(regionBytes);

    verbs::QpAttrs attrs;
    attrs.rdmaWindowBytes = 1 << 14;
    verbs::Acceptor acc(bed.provider(1), 7, cq1, cq1);
    std::shared_ptr<verbs::QueuePair> rqp;
    acc.acceptOne([&](std::shared_ptr<verbs::QueuePair> q) {
        rqp = std::move(q);
    }, attrs);
    auto sqp = bed.provider(0).createQp(nic::QpType::ReliableTcp, cq0,
                                        cq0, attrs);
    bool connected = false;
    sqp->connect(bed.addr(1, 7), [&](bool ok) { connected = ok; });
    ASSERT_TRUE(sim.runUntilCondition(
        [&] { return connected && rqp != nullptr; },
        sim.now() + 120 * sim::oneSec));

    constexpr int nOps = 24;
    for (int op = 0; op < nOps; ++op) {
        const auto kind = rng.uniformInt(0, 2);
        const auto len = static_cast<std::size_t>(
            rng.uniformInt(1, maxOp));
        const auto loff = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::uint64_t>(regionBytes - len)));
        const auto roff = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::uint64_t>(regionBytes - len)));
        int doneSend = 0, doneRecv = 0;
        int needSend = 1, needRecv = 0;
        verbs::WcStatus sendStatus = verbs::WcStatus::Success;
        if (kind == 0) { // RDMA Write
            for (std::size_t i = 0; i < len; ++i)
                lbuf[loff + i] = static_cast<std::uint8_t>(
                    op * 17 + i * 3 + 1);
            std::copy(lbuf.begin() + loff, lbuf.begin() + loff + len,
                      gold_l.begin() + loff);
            std::copy(gold_l.begin() + loff,
                      gold_l.begin() + loff + len,
                      gold_r.begin() + roff);
            ASSERT_TRUE(sqp->postWrite(op, *lmr, loff, len,
                                       rmr->key(), roff));
        } else if (kind == 1) { // RDMA Read
            std::copy(gold_r.begin() + roff,
                      gold_r.begin() + roff + len,
                      gold_l.begin() + loff);
            ASSERT_TRUE(
                sqp->postRead(op, *lmr, loff, len, rmr->key(), roff));
        } else { // two-sided Send
            needRecv = 1;
            for (std::size_t i = 0; i < len; ++i)
                lbuf[loff + i] = static_cast<std::uint8_t>(
                    op * 29 + i * 5 + 2);
            std::copy(lbuf.begin() + loff, lbuf.begin() + loff + len,
                      gold_l.begin() + loff);
            std::copy(gold_l.begin() + loff,
                      gold_l.begin() + loff + len,
                      gold_r.begin() + roff);
            ASSERT_TRUE(rqp->postRecv(op, *rmr, roff, len));
            ASSERT_TRUE(sqp->postSend(op, *lmr, loff, len));
        }
        // Serialized: drain this op's completions before the next.
        ASSERT_TRUE(sim.runUntilCondition(
            [&] {
                verbs::Completion c;
                while (cq0->poll(c)) {
                    ++doneSend;
                    sendStatus = c.status;
                }
                while (cq1->poll(c))
                    ++doneRecv;
                return doneSend >= needSend && doneRecv >= needRecv;
            },
            sim.now() + 600 * sim::oneSec))
            << "op " << op << " stalled";
        ASSERT_EQ(sendStatus, verbs::WcStatus::Success)
            << "op " << op;
    }

    EXPECT_EQ(lbuf, gold_l);
    EXPECT_EQ(rbuf, gold_r);
}

INSTANTIATE_TEST_SUITE_P(
    SeedLossGrid, RdmaLossProperty,
    ::testing::Values(RdmaLossCase{1, 0.0}, RdmaLossCase{2, 0.02},
                      RdmaLossCase{3, 0.05}, RdmaLossCase{4, 0.02},
                      RdmaLossCase{5, 0.05}));

// ---------------------------------------------------------------------
// RUD under loss: a pipelined burst of reliable datagrams over a
// lossy fabric must arrive intact, in order, exactly once — matching
// a golden serial execution — with every send acked eventually
// ---------------------------------------------------------------------

struct RudLossCase
{
    std::uint64_t seed;
    double loss;
};

class RudLossProperty : public ::testing::TestWithParam<RudLossCase>
{};

TEST_P(RudLossProperty, DatagramsArriveIntactInOrderUnderLoss)
{
    apps::QpipTestbed bed(2, 4000, GetParam().seed);
    for (net::NodeId node = 0; node < 2; ++node) {
        auto &faults = bed.fabric().linkFor(node).faults();
        faults.config.dropProb = GetParam().loss;
    }
    auto &sim = bed.sim();
    sim::Random rng(GetParam().seed * 977 + 3);

    constexpr int nMsgs = 24;
    constexpr std::size_t slot = 4096;
    constexpr std::size_t maxLen = 3000; // a few IP fragments at most
    auto scq = bed.provider(1).createCq();
    auto ccq = bed.provider(0).createCq();
    std::vector<std::uint8_t> sbuf(nMsgs * slot), rbuf(nMsgs * slot);
    auto smr = bed.provider(0).registerMemory(sbuf);
    auto rmr = bed.provider(1).registerMemory(rbuf);

    auto qs = bed.provider(1).createQp(nic::QpType::ReliableDatagram,
                                       scq, scq);
    qs->bind(800);
    auto qc = bed.provider(0).createQp(nic::QpType::ReliableDatagram,
                                       ccq, ccq);
    qc->bind(801);

    // Golden model: the posted payloads, in posted order.
    std::vector<std::vector<std::uint8_t>> gold(nMsgs);
    for (int i = 0; i < nMsgs; ++i)
        ASSERT_TRUE(qs->postRecv(100 + i, *rmr, i * slot, slot));
    for (int i = 0; i < nMsgs; ++i) {
        const auto len =
            static_cast<std::size_t>(rng.uniformInt(1, maxLen));
        gold[i].resize(len);
        for (std::size_t b = 0; b < len; ++b)
            gold[i][b] =
                static_cast<std::uint8_t>(i * 37 + b * 11 + 5);
        std::copy(gold[i].begin(), gold[i].end(),
                  sbuf.begin() + i * slot);
        ASSERT_TRUE(
            qc->postSend(i, *smr, i * slot, len, bed.addr(1, 800)));
    }

    // Pipelined: everything is in flight at once; loss recovery is
    // the sender's retransmit timer (5 ms base RTO, backoff-bounded).
    std::vector<verbs::Completion> recvs;
    int sendsDone = 0;
    ASSERT_TRUE(sim.runUntilCondition(
        [&] {
            verbs::Completion c;
            while (scq->poll(c)) {
                if (!c.isSend)
                    recvs.push_back(c);
            }
            while (ccq->poll(c)) {
                if (c.isSend) {
                    EXPECT_EQ(c.status, verbs::WcStatus::Success);
                    ++sendsDone;
                }
            }
            return recvs.size() ==
                       static_cast<std::size_t>(nMsgs) &&
                   sendsDone == nMsgs;
        },
        sim.now() + 600 * sim::oneSec))
        << "delivered " << recvs.size() << "/" << nMsgs << ", acked "
        << sendsDone << "/" << nMsgs;

    // Exact-once in-order delivery: recv WRs drained in ring order,
    // one message per WR, payloads byte-identical to the golden run.
    for (int i = 0; i < nMsgs; ++i) {
        EXPECT_EQ(recvs[i].wrId, 100u + i);
        EXPECT_EQ(recvs[i].status, verbs::WcStatus::Success);
        EXPECT_EQ(recvs[i].byteLen, gold[i].size()) << "msg " << i;
        EXPECT_TRUE(std::equal(gold[i].begin(), gold[i].end(),
                               rbuf.begin() + i * slot))
            << "msg " << i;
        EXPECT_EQ(recvs[i].from, bed.addr(0, 801));
    }
    if (GetParam().loss == 0.0) {
        EXPECT_EQ(bed.nicOf(0).rudRetransmits.value(), 0u);
        EXPECT_EQ(bed.nicOf(1).rudSeqDrops.value(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedLossGrid, RudLossProperty,
    ::testing::Values(RudLossCase{1, 0.0}, RudLossCase{2, 0.02},
                      RudLossCase{3, 0.05}, RudLossCase{4, 0.1},
                      RudLossCase{5, 0.05}));
