/**
 * @file
 * qpip-lint's own test coverage: each rule fires on its fixture file
 * with the exact rule id and file:line, a waived line stays silent,
 * and — the real gate — the entire src/ tree lints clean.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"

using namespace qpip::lint;

namespace {

std::string
fixture(const std::string &name)
{
    return std::string(QPIP_LINT_FIXTURES) + "/" + name;
}

/** All diagnostics for one fixture file. */
std::vector<Diagnostic>
lintFixture(const std::string &name)
{
    return lintPath(fixture(name));
}

} // namespace

TEST(LintRules, D1FiresOnRand)
{
    const auto diags = lintFixture("d1_nondet.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].line, 9);
    EXPECT_EQ(diags[0].file, fixture("d1_nondet.cc"));
}

TEST(LintRules, D2FiresOnUnorderedRangeFor)
{
    const auto diags = lintFixture("d2_unordered_iter.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
    EXPECT_EQ(diags[0].line, 11);
}

TEST(LintRules, L1FiresOnUpwardInclude)
{
    const auto diags = lintFixture("l1_layering.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "L1");
    EXPECT_EQ(diags[0].line, 4);
    EXPECT_NE(diags[0].message.find("inet must not include host"),
              std::string::npos);
}

TEST(LintRules, L1FiresOnPrivateTransportInclude)
{
    const auto diags = lintFixture("l1_transport.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "L1");
    EXPECT_EQ(diags[0].line, 6);
    EXPECT_NE(diags[0].message.find(
                  "nic/transport/ headers are private"),
              std::string::npos);
}

TEST(LintRules, W1FiresOnMemcpyAndReinterpretCast)
{
    const auto diags = lintFixture("w1_wirecast.cc");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "W1");
    EXPECT_EQ(diags[0].line, 12);
    EXPECT_EQ(diags[1].rule, "W1");
    EXPECT_EQ(diags[1].line, 13);
}

TEST(LintRules, T1FiresOnThreadingPrimitives)
{
    const auto diags = lintFixture("t1_thread.cc");
    ASSERT_EQ(diags.size(), 4u);
    for (const auto &d : diags)
        EXPECT_EQ(d.rule, "T1");
    EXPECT_EQ(diags[0].line, 4);  // #include <mutex>
    EXPECT_EQ(diags[1].line, 6);  // std::mutex
    EXPECT_EQ(diags[2].line, 8);  // thread_local
    EXPECT_EQ(diags[3].line, 16); // std::lock_guard
    // The waived std::atomic on line 11 stays silent.
    EXPECT_NE(diags[0].message.find("#include <mutex>"),
              std::string::npos);
}

TEST(LintRules, T1ExemptsSimLayer)
{
    // The parallel engine's own layer may use the primitives.
    const std::string src = "#include <mutex>\n"
                            "#include <atomic>\n"
                            "std::mutex m;\n"
                            "thread_local int t = 0;\n";
    EXPECT_TRUE(lintFile("src/sim/engine.cc", src).empty());
    // Any other src layer may not.
    EXPECT_FALSE(lintFile("src/host/stack.cc", src).empty());
}

TEST(LintRules, H1FiresOnIfndefGuard)
{
    const auto diags = lintFixture("h1_guard.hh");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "H1");
    EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, WaivedLineStaysSilent)
{
    EXPECT_TRUE(lintFixture("waived.cc").empty());
}

TEST(LintRules, DiagnosticFormatIsRuleFileLine)
{
    const auto diags = lintFixture("d1_nondet.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].format().rfind(
                  "D1 " + fixture("d1_nondet.cc") + ":9: ", 0),
              0u);
}

// --- rule corners driven through lintFile() directly ---------------

TEST(LintRules, BannedTokenInCommentOrStringIgnored)
{
    const std::string src = "// qpip-lint-layer: sim\n"
                            "// std::rand() in a comment\n"
                            "const char *s = \"system_clock\";\n";
    EXPECT_TRUE(lintFile("src/sim/x.cc", src).empty());
}

TEST(LintRules, D1FiresOnPointerKeyedMap)
{
    const std::string src =
        "#include <map>\n"
        "struct C;\n"
        "std::map<C *, int> owners;\n";
    const auto diags = lintFile("src/nic/x.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].line, 3);
}

TEST(LintRules, D2SeesThroughTypeAlias)
{
    const std::string src =
        "#include <unordered_map>\n"
        "using Table = std::unordered_map<int, int>;\n"
        "int f(Table &t) {\n"
        "    int n = 0;\n"
        "    for (auto it = t.begin(); it != t.end(); ++it)\n"
        "        ++n;\n"
        "    return n;\n"
        "}\n";
    const auto diags = lintFile("src/inet/x.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
    EXPECT_EQ(diags[0].line, 5);
}

TEST(LintRules, WaiverRequiresNonEmptyReason)
{
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> t;\n"
        "int f() {\n"
        "    int n = 0;\n"
        "    for (auto &[k, v] : t) // qpip-lint: unordered-iter-ok()\n"
        "        n += k + v;\n"
        "    return n;\n"
        "}\n";
    const auto diags = lintFile("src/inet/x.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintRules, TopLayerFilesSkipSrcOnlyRules)
{
    // Same body as the D2 fixture, but classified as a test file.
    const std::string src = "#include <unordered_map>\n"
                            "std::unordered_map<int, int> t;\n"
                            "int f() {\n"
                            "    int n = 0;\n"
                            "    for (auto &[k, v] : t)\n"
                            "        n += k + v;\n"
                            "    return n;\n"
                            "}\n";
    EXPECT_TRUE(lintFile("tests/x.cc", src).empty());
}

TEST(LintLayers, ClassifyAndRank)
{
    EXPECT_EQ(classifyPath("src/sim/clock.hh"), Layer::Sim);
    EXPECT_EQ(classifyPath("src/inet/tcp_conn.cc"), Layer::Inet);
    EXPECT_EQ(classifyPath("tests/test_tcp.cc"), Layer::Top);
    EXPECT_EQ(classifyPath("bench/fig3_rtt.cpp"), Layer::Top);
    EXPECT_LT(layerRank(Layer::Sim), layerRank(Layer::Net));
    EXPECT_LT(layerRank(Layer::Net), layerRank(Layer::Inet));
    EXPECT_LT(layerRank(Layer::Inet), layerRank(Layer::Host));
    EXPECT_LT(layerRank(Layer::Host), layerRank(Layer::Nic));
    EXPECT_LT(layerRank(Layer::Nic), layerRank(Layer::Qpip));
    EXPECT_LT(layerRank(Layer::Qpip), layerRank(Layer::Apps));
    EXPECT_LT(layerRank(Layer::Apps), layerRank(Layer::Top));
}

// --- the gate: the real tree lints clean ---------------------------

TEST(LintTree, SrcTreeIsClean)
{
    const std::string root = QPIP_SOURCE_DIR;
    const auto files = collectTree(root);
    ASSERT_GT(files.size(), 100u) << "tree scan found too few files";

    std::vector<Diagnostic> all;
    for (const auto &f : files) {
        for (auto &d : lintPath(root + "/" + f))
            all.push_back(d);
    }
    for (const auto &d : all)
        ADD_FAILURE() << d.format();
    EXPECT_TRUE(all.empty());
}

TEST(LintTree, FixturesAreExcludedFromTreeScan)
{
    for (const auto &f : collectTree(QPIP_SOURCE_DIR))
        EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
}
