/**
 * @file
 * qpip-lint's own test coverage: each rule fires on its fixture file
 * with the exact rule id and file:line, a waived line stays silent,
 * the cross-file families (S1/W2/T2/E1) and the waiver audit (A1)
 * fire on their project fixtures, SARIF output is well-formed, and —
 * the real gate — the entire tree lints clean under the full
 * project-wide pass.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"
#include "sarif.hh"

using namespace qpip::lint;

namespace {

std::string
fixture(const std::string &name)
{
    return std::string(QPIP_LINT_FIXTURES) + "/" + name;
}

/** All diagnostics for one fixture file. */
std::vector<Diagnostic>
lintFixture(const std::string &name)
{
    return lintPath(fixture(name));
}

/** Fixture files as SourceFiles, paths absolute (keeps S1 in scope). */
std::vector<SourceFile>
loadFixtures(const std::vector<std::string> &names)
{
    std::vector<std::string> paths;
    for (const auto &n : names)
        paths.push_back(fixture(n));
    return readSources("", paths);
}

/** Options running only the cross-file families, audit off. */
ProjectOptions
projectOnly()
{
    ProjectOptions opts;
    opts.fileRules = false;
    opts.projectRules = true;
    opts.auditWaivers = false;
    return opts;
}

} // namespace

TEST(LintRules, D1FiresOnRand)
{
    const auto diags = lintFixture("d1_nondet.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].line, 9);
    EXPECT_EQ(diags[0].file, fixture("d1_nondet.cc"));
}

TEST(LintRules, D2FiresOnUnorderedRangeFor)
{
    const auto diags = lintFixture("d2_unordered_iter.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
    EXPECT_EQ(diags[0].line, 11);
}

TEST(LintRules, L1FiresOnUpwardInclude)
{
    const auto diags = lintFixture("l1_layering.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "L1");
    EXPECT_EQ(diags[0].line, 4);
    EXPECT_NE(diags[0].message.find("inet must not include host"),
              std::string::npos);
}

TEST(LintRules, L1FiresOnPrivateTransportInclude)
{
    const auto diags = lintFixture("l1_transport.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "L1");
    EXPECT_EQ(diags[0].line, 6);
    EXPECT_NE(diags[0].message.find(
                  "nic/transport/ headers are private"),
              std::string::npos);
}

TEST(LintRules, W1FiresOnMemcpyAndReinterpretCast)
{
    const auto diags = lintFixture("w1_wirecast.cc");
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "W1");
    EXPECT_EQ(diags[0].line, 12);
    EXPECT_EQ(diags[1].rule, "W1");
    EXPECT_EQ(diags[1].line, 13);
}

TEST(LintRules, T1FiresOnThreadingPrimitives)
{
    const auto diags = lintFixture("t1_thread.cc");
    ASSERT_EQ(diags.size(), 4u);
    for (const auto &d : diags)
        EXPECT_EQ(d.rule, "T1");
    EXPECT_EQ(diags[0].line, 4);  // #include <mutex>
    EXPECT_EQ(diags[1].line, 6);  // std::mutex
    EXPECT_EQ(diags[2].line, 8);  // thread_local
    EXPECT_EQ(diags[3].line, 16); // std::lock_guard
    // The waived std::atomic on line 11 stays silent.
    EXPECT_NE(diags[0].message.find("#include <mutex>"),
              std::string::npos);
}

TEST(LintRules, T1ExemptsSimLayer)
{
    // The parallel engine's own layer may use the primitives.
    const std::string src = "#include <mutex>\n"
                            "#include <atomic>\n"
                            "std::mutex m;\n"
                            "thread_local int t = 0;\n";
    EXPECT_TRUE(lintFile("src/sim/engine.cc", src).empty());
    // Any other src layer may not.
    EXPECT_FALSE(lintFile("src/host/stack.cc", src).empty());
}

TEST(LintRules, H1FiresOnIfndefGuard)
{
    const auto diags = lintFixture("h1_guard.hh");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "H1");
    EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, WaivedLineStaysSilent)
{
    EXPECT_TRUE(lintFixture("waived.cc").empty());
}

TEST(LintRules, DiagnosticFormatIsRuleFileLine)
{
    const auto diags = lintFixture("d1_nondet.cc");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].format().rfind(
                  "D1 " + fixture("d1_nondet.cc") + ":9: ", 0),
              0u);
}

// --- rule corners driven through lintFile() directly ---------------

TEST(LintRules, BannedTokenInCommentOrStringIgnored)
{
    const std::string src = "// qpip-lint-layer: sim\n"
                            "// std::rand() in a comment\n"
                            "const char *s = \"system_clock\";\n";
    EXPECT_TRUE(lintFile("src/sim/x.cc", src).empty());
}

TEST(LintRules, D1FiresOnPointerKeyedMap)
{
    const std::string src =
        "#include <map>\n"
        "struct C;\n"
        "std::map<C *, int> owners;\n";
    const auto diags = lintFile("src/nic/x.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D1");
    EXPECT_EQ(diags[0].line, 3);
}

TEST(LintRules, D2SeesThroughTypeAlias)
{
    const std::string src =
        "#include <unordered_map>\n"
        "using Table = std::unordered_map<int, int>;\n"
        "int f(Table &t) {\n"
        "    int n = 0;\n"
        "    for (auto it = t.begin(); it != t.end(); ++it)\n"
        "        ++n;\n"
        "    return n;\n"
        "}\n";
    const auto diags = lintFile("src/inet/x.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
    EXPECT_EQ(diags[0].line, 5);
}

TEST(LintRules, WaiverRequiresNonEmptyReason)
{
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> t;\n"
        "int f() {\n"
        "    int n = 0;\n"
        "    for (auto &[k, v] : t) // qpip-lint: unordered-iter-ok()\n"
        "        n += k + v;\n"
        "    return n;\n"
        "}\n";
    const auto diags = lintFile("src/inet/x.cc", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "D2");
}

TEST(LintRules, TopLayerFilesSkipSrcOnlyRules)
{
    // Same body as the D2 fixture, but classified as a test file.
    const std::string src = "#include <unordered_map>\n"
                            "std::unordered_map<int, int> t;\n"
                            "int f() {\n"
                            "    int n = 0;\n"
                            "    for (auto &[k, v] : t)\n"
                            "        n += k + v;\n"
                            "    return n;\n"
                            "}\n";
    EXPECT_TRUE(lintFile("tests/x.cc", src).empty());
}

TEST(LintLayers, ClassifyAndRank)
{
    EXPECT_EQ(classifyPath("src/sim/clock.hh"), Layer::Sim);
    EXPECT_EQ(classifyPath("src/inet/tcp_conn.cc"), Layer::Inet);
    EXPECT_EQ(classifyPath("tests/test_tcp.cc"), Layer::Top);
    EXPECT_EQ(classifyPath("bench/fig3_rtt.cpp"), Layer::Top);
    EXPECT_LT(layerRank(Layer::Sim), layerRank(Layer::Net));
    EXPECT_LT(layerRank(Layer::Net), layerRank(Layer::Inet));
    EXPECT_LT(layerRank(Layer::Inet), layerRank(Layer::Host));
    EXPECT_LT(layerRank(Layer::Host), layerRank(Layer::Nic));
    EXPECT_LT(layerRank(Layer::Nic), layerRank(Layer::Qpip));
    EXPECT_LT(layerRank(Layer::Qpip), layerRank(Layer::Apps));
    EXPECT_LT(layerRank(Layer::Apps), layerRank(Layer::Top));
}

// --- the gate: the real tree lints clean ---------------------------

TEST(LintTree, SrcTreeIsClean)
{
    const std::string root = QPIP_SOURCE_DIR;
    const auto files = collectTree(root);
    ASSERT_GT(files.size(), 100u) << "tree scan found too few files";

    std::vector<Diagnostic> all;
    for (const auto &f : files) {
        for (auto &d : lintPath(root + "/" + f))
            all.push_back(d);
    }
    for (const auto &d : all)
        ADD_FAILURE() << d.format();
    EXPECT_TRUE(all.empty());
}

TEST(LintTree, FixturesAreExcludedFromTreeScan)
{
    for (const auto &f : collectTree(QPIP_SOURCE_DIR))
        EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
}

// --- cross-file rule families over the project fixtures ------------

TEST(LintProjectRules, S1FiresOnRegistryViolations)
{
    const auto diags =
        lintProject(loadFixtures({"s1_fire.cc"}), projectOnly());
    ASSERT_EQ(diags.size(), 4u);
    for (const auto &d : diags)
        EXPECT_EQ(d.rule, "S1");
    EXPECT_EQ(diags[0].line, 11); // "pkts.drop rate": grammar
    EXPECT_NE(diags[0].message.find("dotted-path"), std::string::npos);
    EXPECT_EQ(diags[1].line, 12); // second add of "pkts.in" on 'g'
    EXPECT_NE(diags[1].message.find("first at line 10"),
              std::string::npos);
    EXPECT_EQ(diags[2].line, 13); // "pkts.*": glob in registration
    EXPECT_NE(diags[2].message.find("glob characters"),
              std::string::npos);
    EXPECT_EQ(diags[3].line, 20); // "pkts.absent": unresolved lookup
    EXPECT_NE(diags[3].message.find("pkts.absent"), std::string::npos);
    EXPECT_NE(diags[3].message.find("silently read 0"),
              std::string::npos);
}

TEST(LintProjectRules, W2FiresOnDivergenceAndOrphans)
{
    const auto diags =
        lintProject(loadFixtures({"w2_fire.cc"}), projectOnly());
    ASSERT_EQ(diags.size(), 3u);
    for (const auto &d : diags)
        EXPECT_EQ(d.rule, "W2");
    EXPECT_EQ(diags[0].line, 15); // parseFoo reads u32 where u16 went
    EXPECT_NE(diags[0].message.find("field op #2"), std::string::npos);
    EXPECT_NE(diags[0].message.find("put 'u16' vs get 'u32'"),
              std::string::npos);
    EXPECT_EQ(diags[1].line, 26); // serializeOrphanPing, no reader
    EXPECT_NE(diags[1].message.find("no matching parseOrphanPing"),
              std::string::npos);
    EXPECT_EQ(diags[2].line, 34); // parseOrphanPong, no writer
    EXPECT_NE(diags[2].message.find("no matching serializeOrphanPong"),
              std::string::npos);
}

TEST(LintProjectRules, T2FiresOnStaticsAndForeignScheduling)
{
    const auto diags =
        lintProject(loadFixtures({"t2_fire.cc"}), projectOnly());
    ASSERT_EQ(diags.size(), 4u);
    for (const auto &d : diags)
        EXPECT_EQ(d.rule, "T2");
    EXPECT_EQ(diags[0].line, 5);  // namespace-scope mutable static
    EXPECT_EQ(diags[1].line, 11); // function-local mutable static
    EXPECT_EQ(diags[2].line, 13); // eventQueue().schedule(...)
    EXPECT_EQ(diags[3].line, 14); // eqRemote->scheduleIn(...)
    EXPECT_NE(diags[0].message.find("mutable static state"),
              std::string::npos);
    EXPECT_NE(diags[2].message.find("Link/Mailbox"), std::string::npos);
    // static constexpr (line 6) and static_cast (line 12) stay quiet.
}

TEST(LintProjectRules, E1FiresOnRefCaptures)
{
    const auto diags =
        lintProject(loadFixtures({"e1_fire.cc"}), projectOnly());
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "E1");
    EXPECT_EQ(diags[0].line, 8); // [&] into schedule()
    EXPECT_NE(diags[0].message.find("[&]"), std::string::npos);
    EXPECT_NE(diags[0].message.find("schedule()"), std::string::npos);
    EXPECT_EQ(diags[1].rule, "E1");
    EXPECT_EQ(diags[1].line, 9); // [&conn, seq] into scheduleIn()
    EXPECT_NE(diags[1].message.find("[&conn]"), std::string::npos);
    EXPECT_NE(diags[1].message.find("scheduleIn()"), std::string::npos);
    // Value captures (lines 10-11) and table[slot] stay quiet.
}

TEST(LintProjectRules, WaivedFixturesStaySilentAuditIncluded)
{
    // Full default options: file rules, project rules, and the A1
    // audit — the waiver both suppresses the finding and counts as
    // used, so nothing fires at all.
    for (const char *name : {"s1_waived.cc", "w2_waived.cc",
                             "t2_waived.cc", "e1_waived.cc"}) {
        const auto diags = lintProject(loadFixtures({name}));
        EXPECT_TRUE(diags.empty())
            << name << ": " << (diags.empty() ? "" : diags[0].format());
    }
}

TEST(LintProjectRules, DiffModeReportsOnlyListedFiles)
{
    const auto files = loadFixtures({"s1_fire.cc", "t2_fire.cc"});
    ProjectOptions opts = projectOnly();
    opts.reportOnly.insert(fixture("t2_fire.cc"));
    const auto diags = lintProject(files, opts);
    ASSERT_EQ(diags.size(), 4u);
    for (const auto &d : diags) {
        EXPECT_EQ(d.rule, "T2");
        EXPECT_EQ(d.file, fixture("t2_fire.cc"));
    }
}

// --- the waiver audit (A1) -----------------------------------------

TEST(LintAudit, A1FlagsStaleWaivers)
{
    const auto diags = lintProject(loadFixtures({"stale_waiver.cc"}));
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "A1");
    EXPECT_EQ(diags[0].line, 7);
    EXPECT_NE(diags[0].message.find("stale waiver 'stat-path-ok'"),
              std::string::npos);
    EXPECT_EQ(diags[1].rule, "A1");
    EXPECT_EQ(diags[1].line, 9);
    EXPECT_NE(diags[1].message.find("stale waiver 'ref-capture-ok'"),
              std::string::npos);
}

TEST(LintAudit, A1FlagsUnknownWaiverToken)
{
    const auto diags = lintProject(loadFixtures({"unknown_waiver.cc"}));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "A1");
    EXPECT_EQ(diags[0].line, 7);
    EXPECT_NE(
        diags[0].message.find("unknown waiver token 'made-up-ok'"),
        std::string::npos);
}

TEST(LintAudit, StaleWaiversNotAuditedWhenRuleFamilyDisabled)
{
    // With the project families off, their waiver tokens are not
    // audited (the rules never had a chance to use them).
    ProjectOptions opts;
    opts.projectRules = false;
    const auto diags =
        lintProject(loadFixtures({"stale_waiver.cc"}), opts);
    EXPECT_TRUE(diags.empty());
}

TEST(LintWaivers, TokenMappingRoundTrips)
{
    const char *rules[] = {"D1", "D2", "L1", "W1", "T1",
                           "S1", "W2", "T2", "E1"};
    for (const char *r : rules) {
        const std::string tok = waiverToken(r);
        ASSERT_FALSE(tok.empty()) << r;
        EXPECT_STREQ(ruleForWaiverToken(tok), r);
    }
    EXPECT_STREQ(waiverToken("A1"), ""); // A1 itself is unwaivable
    EXPECT_STREQ(ruleForWaiverToken("made-up-ok"), "");
}

// --- mechanical fixes (--fix) --------------------------------------

TEST(LintFixes, ApplyFixesStripsStaleWaivers)
{
    const auto files = loadFixtures({"stale_waiver.cc"});
    const auto diags = lintProject(files);
    ASSERT_EQ(diags.size(), 2u);
    bool changed = false;
    const std::string fixed =
        applyFixes(files[0].contents, diags, changed);
    EXPECT_TRUE(changed);
    EXPECT_EQ(fixed.find("qpip-lint:"), std::string::npos);
    // The fixed text is clean, audit included.
    std::vector<SourceFile> refixed = files;
    refixed[0].contents = fixed;
    EXPECT_TRUE(lintProject(refixed).empty());
}

TEST(LintFixes, ApplyFixesInsertsPragmaOnce)
{
    const std::string src = "struct X {};\n";
    const auto diags = lintFile("src/net/x.hh", src);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "H1");
    bool changed = false;
    const std::string fixed = applyFixes(src, diags, changed);
    EXPECT_TRUE(changed);
    EXPECT_EQ(fixed.rfind("#pragma once\n", 0), 0u);
    EXPECT_TRUE(lintFile("src/net/x.hh", fixed).empty());
}

TEST(LintFixes, ApplyFixesIsIdentityWithoutFixableFindings)
{
    bool changed = true;
    const std::string src = "int x = 0;\n";
    EXPECT_EQ(applyFixes(src, {}, changed), src);
    EXPECT_FALSE(changed);
}

// --- SARIF emission ------------------------------------------------

namespace {

/** Braces/brackets balance and every string closes. */
bool
jsonShapeOk(const std::string &s)
{
    int depth = 0;
    bool inStr = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (inStr) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inStr = false;
        } else if (c == '"') {
            inStr = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !inStr;
}

} // namespace

TEST(LintSarif, EmitsWellFormedSarif210)
{
    std::vector<Diagnostic> diags;
    diags.push_back(
        Diagnostic{"E1", "src/nic/x.cc", 12, "a \"quoted\" message"});
    diags.push_back(Diagnostic{"S1", "src\\net\\y.cc", 3, "path"});
    const std::string s = toSarif(diags);
    EXPECT_TRUE(jsonShapeOk(s));
    EXPECT_NE(s.find("sarif-schema-2.1.0.json"), std::string::npos);
    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"qpip-lint\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\": \"E1\""), std::string::npos);
    EXPECT_NE(s.find("\"startLine\": 12"), std::string::npos);
    EXPECT_NE(s.find("\"level\": \"error\""), std::string::npos);
    // Message text is JSON-escaped; backslash paths normalize to '/'.
    EXPECT_NE(s.find("a \\\"quoted\\\" message"), std::string::npos);
    EXPECT_NE(s.find("src/net/y.cc"), std::string::npos);
    // Both rules get driver metadata entries.
    EXPECT_NE(s.find("\"id\": \"E1\""), std::string::npos);
    EXPECT_NE(s.find("\"id\": \"S1\""), std::string::npos);
}

TEST(LintSarif, EmptyRunIsStillValid)
{
    const std::string s = toSarif({});
    EXPECT_TRUE(jsonShapeOk(s));
    EXPECT_NE(s.find("\"results\": ["), std::string::npos);
}

// --- the index covers the real tree --------------------------------

TEST(LintTree, IndexCoversRealTree)
{
    const std::string root = QPIP_SOURCE_DIR;
    const auto sources = readSources(root, collectTree(root));
    const IndexSummary sum = summarizeIndex(sources);
    // Whole-literal registrations land as leaf paths.
    EXPECT_TRUE(sum.statLeafPaths.count("faults.drops"));
    EXPECT_TRUE(sum.statLeafPaths.count("segsOut"));
    // Tag-function return literals (fwStageTag) land as segments.
    EXPECT_TRUE(sum.statSegments.count("getWr"));
    // The wire pairs the paper's message formats depend on.
    EXPECT_TRUE(sum.serializers.count("RdmaMessage"));
    EXPECT_TRUE(sum.parsers.count("RdmaMessage"));
    EXPECT_TRUE(sum.serializers.count("RudMessage"));
    EXPECT_TRUE(sum.parsers.count("RudMessage"));
    // W2-clean tree: every writer has its reader and vice versa.
    EXPECT_EQ(sum.serializers, sum.parsers);
}

// --- the project-wide gate: full pass over the real tree -----------

TEST(LintTree, ProjectPassIsCleanWithAuditEnabled)
{
    const std::string root = QPIP_SOURCE_DIR;
    const auto sources = readSources(root, collectTree(root));
    ASSERT_GT(sources.size(), 100u);
    const auto diags = lintProject(sources); // every family + A1
    for (const auto &d : diags)
        ADD_FAILURE() << d.format();
    EXPECT_TRUE(diags.empty());
}
