/**
 * @file
 * Protocol tests for the shared TCP engine over the harness pipe:
 * handshake, option negotiation, stream transfer, Nagle/NODELAY,
 * delayed ACK, loss recovery (RTO and fast retransmit), reassembly,
 * message mode, flow control (zero window + persist probe), teardown
 * and reset handling, header prediction.
 */

#include <gtest/gtest.h>

#include "tcp_harness.hh"

using namespace qpip;
using namespace qpip::test;
using inet::TcpState;
using inet::tcpflags::ack;
using inet::tcpflags::fin;
using inet::tcpflags::syn;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 0)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// Handshake and options
// ---------------------------------------------------------------------

TEST(TcpHandshake, ThreeWayEstablishesBothEnds)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    EXPECT_EQ(p.client.conn().state(), TcpState::Established);
    EXPECT_EQ(p.server.conn().state(), TcpState::Established);
    // SYN, SYN|ACK, ACK = 3 segments minimum.
    EXPECT_EQ(p.client.conn().stats().segsOut.value(), 2u); // SYN+ACK
    EXPECT_EQ(p.server.conn().stats().segsOut.value(), 1u); // SYN|ACK
}

TEST(TcpHandshake, SynRetransmitsOnLoss)
{
    TcpPair p(streamConfig());
    int dropped = 0;
    p.client.txFilter = [&](const inet::TcpHeader &hdr, auto, auto) {
        if (hdr.has(syn) && dropped < 2) {
            ++dropped;
            return false;
        }
        return true;
    };
    ASSERT_TRUE(p.establish(30 * sim::oneSec));
    EXPECT_EQ(dropped, 2);
    EXPECT_GE(p.client.conn().stats().retransmits.value(), 2u);
}

TEST(TcpHandshake, GivesUpAfterMaxSynRetries)
{
    auto cfg = streamConfig();
    cfg.maxSynRetries = 2;
    TcpPair p(cfg);
    p.client.txFilter = [](const inet::TcpHeader &hdr, auto, auto) {
        return !hdr.has(syn); // black-hole all SYNs
    };
    p.client.connect();
    p.sim.runUntilCondition([&] { return p.client.reset; },
                            p.sim.now() + 120 * sim::oneSec);
    EXPECT_TRUE(p.client.reset);
    EXPECT_FALSE(p.client.connected);
}

TEST(TcpHandshake, NegotiatesWindowScaleAndTimestamps)
{
    auto cfg = streamConfig();
    cfg.useWindowScale = true;
    cfg.windowScale = 6;
    cfg.useTimestamps = true;
    TcpPair p(cfg);
    p.client.window = 4 << 20; // needs scaling to advertise
    p.server.window = 4 << 20;
    ASSERT_TRUE(p.establish());

    // Transfer something so windows get advertised post-SYN.
    p.client.conn().send(pattern(5000));
    p.sim.runUntilCondition(
        [&] { return p.server.received.size() == 5000; },
        p.sim.now() + sim::oneSec);
    // The peer's advertised window, as seen by the client, can only
    // exceed 64 KB if scaling was applied.
    EXPECT_GT(p.client.conn().sndWnd(), 65535u);
}

TEST(TcpHandshake, ScaleDisabledWhenPeerDoesNotOffer)
{
    auto no_ws = streamConfig();
    no_ws.useWindowScale = false;
    TcpPair p(streamConfig(), no_ws);
    p.client.window = 4 << 20;
    p.server.window = 4 << 20;
    ASSERT_TRUE(p.establish());
    p.client.conn().send(pattern(1000));
    p.sim.runUntilCondition(
        [&] { return p.server.received.size() == 1000; },
        p.sim.now() + sim::oneSec);
    EXPECT_LE(p.client.conn().sndWnd(), 65535u);
}

// ---------------------------------------------------------------------
// Stream transfer
// ---------------------------------------------------------------------

TEST(TcpStream, TransfersBytesIntact)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    auto data = pattern(100000);
    std::size_t sent = 0;
    // Feed respecting the send buffer.
    auto feed = [&] {
        while (sent < data.size()) {
            auto n = p.client.conn().send(
                std::span(data).subspan(sent));
            if (n == 0)
                break;
            sent += n;
        }
    };
    feed();
    for (int i = 0; i < 200 && p.server.received.size() < data.size();
         ++i) {
        p.sim.runFor(5 * sim::oneMs);
        feed();
    }
    ASSERT_EQ(p.server.received.size(), data.size());
    EXPECT_EQ(p.server.received, data);
    EXPECT_EQ(p.client.conn().stats().retransmits.value(), 0u);
}

TEST(TcpStream, SegmentsRespectMss)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    std::size_t max_payload = 0;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        max_payload = std::max(max_payload, pl.size());
        return true;
    };
    p.client.conn().send(pattern(50000));
    p.sim.runFor(100 * sim::oneMs);
    EXPECT_LE(max_payload, 1460u);
    EXPECT_EQ(max_payload, 1460u); // full-size segments for bulk data
}

TEST(TcpStream, NagleCoalescesSmallWrites)
{
    auto cfg = streamConfig();
    cfg.noDelay = false;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    int data_segments = 0;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        if (!pl.empty())
            ++data_segments;
        return true;
    };
    // 50 tiny writes in rapid succession: Nagle allows one in-flight
    // small segment; the rest coalesce behind the first ACK.
    for (int i = 0; i < 50; ++i)
        p.client.conn().send(pattern(10));
    p.sim.runFor(50 * sim::oneMs);
    EXPECT_EQ(p.server.received.size(), 500u);
    EXPECT_LE(data_segments, 5);
}

TEST(TcpStream, NoDelaySendsEagerly)
{
    auto cfg = streamConfig();
    cfg.noDelay = true;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    // With NODELAY each write goes out immediately even while data is
    // outstanding, as long as it empties the buffer.
    p.client.conn().send(pattern(10));
    p.sim.runFor(100 * sim::oneUs); // less than RTT
    p.client.conn().send(pattern(10));
    p.sim.runFor(100 * sim::oneUs);
    EXPECT_GE(p.client.conn().stats().segsOut.value(), 3u);
}

TEST(TcpStream, DelayedAckCoalesces)
{
    auto cfg = streamConfig();
    cfg.delayedAck = true;
    cfg.delAckTimeout = 5 * sim::oneMs;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    // One small segment: the ACK should wait for the delack timer.
    p.client.conn().send(pattern(100));
    const auto acks_before = p.server.conn().stats().segsOut.value();
    p.sim.runFor(2 * sim::oneMs);
    EXPECT_EQ(p.server.conn().stats().segsOut.value(), acks_before);
    p.sim.runFor(10 * sim::oneMs);
    EXPECT_GT(p.server.conn().stats().segsOut.value(), acks_before);
}

TEST(TcpStream, SendRejectsWhenBufferFull)
{
    auto cfg = streamConfig();
    cfg.sendBufBytes = 4096;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    p.server.window = 0; // peer advertises nothing
    // Let the window-zero reach the client via the handshake ACK...
    auto big = pattern(10000);
    const auto accepted = p.client.conn().send(big);
    EXPECT_LE(accepted, 4096u);
    EXPECT_EQ(p.client.conn().sendSpace(), 4096u - accepted);
}

// ---------------------------------------------------------------------
// Loss recovery
// ---------------------------------------------------------------------

TEST(TcpLoss, RetransmitsAfterRto)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    bool dropped_one = false;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        if (!pl.empty() && !dropped_one) {
            dropped_one = true;
            return false;
        }
        return true;
    };
    p.client.conn().send(pattern(500));
    p.sim.runUntilCondition(
        [&] { return p.server.received.size() == 500; },
        p.sim.now() + 10 * sim::oneSec);
    EXPECT_EQ(p.server.received.size(), 500u);
    EXPECT_EQ(p.client.conn().stats().timeouts.value(), 1u);
    EXPECT_EQ(p.server.received, pattern(500));
}

TEST(TcpLoss, FastRetransmitOnTripleDupAck)
{
    auto cfg = streamConfig();
    cfg.initialCwndSegs = 8; // enough flight for three dup ACKs
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    // Drop exactly the first data segment; the following segments
    // generate dup ACKs that trigger fast retransmit well before RTO.
    bool dropped_one = false;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        if (!pl.empty() && !dropped_one) {
            dropped_one = true;
            return false;
        }
        return true;
    };
    p.client.conn().send(pattern(1460 * 8));
    p.sim.runUntilCondition(
        [&] { return p.server.received.size() == 1460u * 8; },
        p.sim.now() + 10 * sim::oneSec);
    EXPECT_EQ(p.server.received.size(), 1460u * 8);
    EXPECT_EQ(p.server.received, pattern(1460 * 8));
    EXPECT_GE(p.client.conn().stats().fastRetransmits.value(), 1u);
    EXPECT_EQ(p.client.conn().stats().timeouts.value(), 0u);
    EXPECT_GE(p.client.conn().stats().dupAcksIn.value(), 3u);
}

TEST(TcpLoss, ReassemblyAvoidsRetransmittingDeliveredData)
{
    auto cfg = streamConfig();
    cfg.initialCwndSegs = 8;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    bool dropped_one = false;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        if (!pl.empty() && !dropped_one) {
            dropped_one = true;
            return false;
        }
        return true;
    };
    p.client.conn().send(pattern(1460 * 8));
    p.sim.runUntilCondition(
        [&] { return p.server.received.size() == 1460u * 8; },
        p.sim.now() + 10 * sim::oneSec);
    // Out-of-order segments were buffered, not discarded.
    EXPECT_GE(p.server.conn().stats().oooSegments.value(), 3u);
    EXPECT_EQ(p.server.conn().stats().oooDropped.value(), 0u);
    // Only the dropped segment is retransmitted.
    EXPECT_LE(p.client.conn().stats().retransmits.value(), 2u);
}

TEST(TcpLoss, RtoBacksOffExponentially)
{
    auto cfg = streamConfig();
    cfg.minRto = 10 * sim::oneMs;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    // Black-hole everything from the client after established.
    p.client.txFilter = [](auto...) { return false; };
    p.client.conn().send(pattern(100));
    p.sim.runFor(200 * sim::oneMs);
    const auto n = p.client.conn().stats().timeouts.value();
    // 10+20+40+80 = 150 ms -> about 4 timeouts in 200 ms; without
    // backoff there would be ~20.
    EXPECT_GE(n, 3u);
    EXPECT_LE(n, 6u);
}

TEST(TcpLoss, AbortsAfterMaxRetries)
{
    auto cfg = streamConfig();
    cfg.minRto = 5 * sim::oneMs;
    cfg.maxRtxRetries = 3;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    p.client.txFilter = [](auto...) { return false; };
    p.client.conn().send(pattern(100));
    p.sim.runUntilCondition([&] { return p.client.reset; },
                            p.sim.now() + 60 * sim::oneSec);
    EXPECT_TRUE(p.client.reset);
}

TEST(TcpLoss, SurvivesHeavyRandomLoss)
{
    auto cfg = streamConfig();
    cfg.minRto = 10 * sim::oneMs;
    TcpPair p(cfg);
    ASSERT_TRUE(p.establish());
    // Drop every 7th segment in both directions.
    int c1 = 0, c2 = 0;
    p.client.txFilter = [&](auto...) { return ++c1 % 7 != 0; };
    p.server.txFilter = [&](auto...) { return ++c2 % 7 != 0; };
    auto data = pattern(120000);
    std::size_t sent = 0;
    auto feed = [&] {
        while (sent < data.size()) {
            auto n = p.client.conn().send(
                std::span(data).subspan(sent));
            if (n == 0)
                break;
            sent += n;
        }
    };
    feed();
    for (int i = 0;
         i < 3000 && p.server.received.size() < data.size(); ++i) {
        p.sim.runFor(10 * sim::oneMs);
        feed();
    }
    ASSERT_EQ(p.server.received.size(), data.size());
    EXPECT_EQ(p.server.received, data);
    EXPECT_GT(p.client.conn().stats().retransmits.value(), 0u);
}

// ---------------------------------------------------------------------
// Message mode (the QPIP discipline)
// ---------------------------------------------------------------------

TEST(TcpMessage, OneMessageOneSegment)
{
    TcpPair p(messageConfig());
    ASSERT_TRUE(p.establish());
    std::vector<std::size_t> seg_sizes;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        if (!pl.empty())
            seg_sizes.push_back(pl.size());
        return true;
    };
    p.client.conn().sendMessage(pattern(777), 1);
    p.client.conn().sendMessage(pattern(12345), 2);
    p.sim.runUntilCondition(
        [&] { return p.server.messages.size() == 2; },
        p.sim.now() + sim::oneSec);
    ASSERT_EQ(p.server.messages.size(), 2u);
    EXPECT_EQ(p.server.messages[0], pattern(777));
    EXPECT_EQ(p.server.messages[1], pattern(12345));
    ASSERT_EQ(seg_sizes.size(), 2u);
    EXPECT_EQ(seg_sizes[0], 777u);
    EXPECT_EQ(seg_sizes[1], 12345u);
}

TEST(TcpMessage, CompletionsSignaledOnAck)
{
    TcpPair p(messageConfig());
    ASSERT_TRUE(p.establish());
    p.client.conn().sendMessage(pattern(100), 42);
    EXPECT_TRUE(p.client.ackedTags.empty()); // not before the RTT
    p.sim.runUntilCondition(
        [&] { return !p.client.ackedTags.empty(); },
        p.sim.now() + sim::oneSec);
    ASSERT_EQ(p.client.ackedTags.size(), 1u);
    EXPECT_EQ(p.client.ackedTags[0], 42u);
}

TEST(TcpMessage, CompletionsInPostingOrder)
{
    TcpPair p(messageConfig());
    ASSERT_TRUE(p.establish());
    for (std::uint64_t t = 1; t <= 20; ++t)
        p.client.conn().sendMessage(pattern(64, t), t);
    p.sim.runUntilCondition(
        [&] { return p.client.ackedTags.size() == 20; },
        p.sim.now() + 10 * sim::oneSec);
    ASSERT_EQ(p.client.ackedTags.size(), 20u);
    for (std::uint64_t t = 1; t <= 20; ++t)
        EXPECT_EQ(p.client.ackedTags[t - 1], t);
}

TEST(TcpMessage, HeldWhenNoBufferPostedThenDelivered)
{
    TcpPair p(messageConfig());
    ASSERT_TRUE(p.establish());
    p.server.acceptMessages = false;
    p.client.conn().sendMessage(pattern(200), 7);
    p.sim.runFor(50 * sim::oneMs);
    EXPECT_TRUE(p.server.messages.empty());
    EXPECT_TRUE(p.client.ackedTags.empty()); // never ACKed while held
    EXPECT_GE(p.server.conn().stats().msgRefused.value(), 1u);

    // Application posts a buffer.
    p.server.acceptMessages = true;
    p.server.conn().onReceiveWindowGrew();
    p.sim.runUntilCondition(
        [&] { return !p.client.ackedTags.empty(); },
        p.sim.now() + 10 * sim::oneSec);
    ASSERT_EQ(p.server.messages.size(), 1u);
    EXPECT_EQ(p.server.messages[0], pattern(200));
}

TEST(TcpMessage, OutOfOrderSegmentsDroppedAndRecovered)
{
    TcpPair p(messageConfig());
    ASSERT_TRUE(p.establish());
    bool dropped_one = false;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        if (!pl.empty() && !dropped_one) {
            dropped_one = true;
            return false;
        }
        return true;
    };
    for (std::uint64_t t = 1; t <= 5; ++t)
        p.client.conn().sendMessage(pattern(300, t), t);
    p.sim.runUntilCondition(
        [&] { return p.server.messages.size() == 5; },
        p.sim.now() + 30 * sim::oneSec);
    ASSERT_EQ(p.server.messages.size(), 5u);
    for (std::uint64_t t = 1; t <= 5; ++t)
        EXPECT_EQ(p.server.messages[t - 1], pattern(300, t));
    // No reassembly in the firmware subset: later segments were
    // dropped and retransmitted.
    EXPECT_GT(p.server.conn().stats().oooDropped.value(), 0u);
}

TEST(TcpMessage, LargeMessageBlocksUntilWindowOpens)
{
    TcpPair p(messageConfig());
    p.server.window = 1000; // small posted buffer
    ASSERT_TRUE(p.establish());
    p.client.conn().sendMessage(pattern(8000), 9);
    p.sim.runFor(20 * sim::oneMs);
    EXPECT_TRUE(p.server.messages.empty()); // doesn't fit the window
    p.server.window = 64 * 1024;
    p.server.conn().onReceiveWindowGrew();
    p.sim.runUntilCondition(
        [&] { return p.server.messages.size() == 1; },
        p.sim.now() + 10 * sim::oneSec);
    ASSERT_EQ(p.server.messages.size(), 1u);
    EXPECT_EQ(p.server.messages[0].size(), 8000u);
}

// ---------------------------------------------------------------------
// Flow control
// ---------------------------------------------------------------------

TEST(TcpFlow, ZeroWindowStallsAndPersistProbes)
{
    auto cfg = streamConfig();
    cfg.persistInterval = 10 * sim::oneMs;
    TcpPair p(cfg);
    // The server is an application that never reads from a 2 kB
    // buffer: once 2 kB are delivered the window is gone.
    p.server.window = 2048;
    p.server.windowTracksBuffer = true;
    ASSERT_TRUE(p.establish());
    p.client.conn().send(pattern(8000));
    p.sim.runFor(200 * sim::oneMs);
    // Only the advertised window's worth arrives; probes keep the
    // connection alive while it is closed.
    EXPECT_LE(p.server.received.size(), 2100u);
    EXPECT_GT(p.client.conn().stats().persistProbes.value(), 0u);

    // The application finally "reads everything": window opens.
    p.server.windowTracksBuffer = false;
    p.server.window = 1 << 20;
    p.server.conn().onReceiveWindowGrew();
    p.sim.runUntilCondition(
        [&] { return p.server.received.size() == 8000; },
        p.sim.now() + 10 * sim::oneSec);
    EXPECT_EQ(p.server.received.size(), 8000u);
    EXPECT_EQ(p.server.received, pattern(8000));
}

TEST(TcpFlow, CongestionWindowGrowsOnAcks)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    const auto cwnd0 = p.client.conn().cwndBytes();
    auto data = pattern(200000);
    std::size_t sent = 0;
    auto feed = [&] {
        while (sent < data.size()) {
            auto n = p.client.conn().send(
                std::span(data).subspan(sent));
            if (n == 0)
                break;
            sent += n;
        }
    };
    feed();
    for (int i = 0; i < 100 && p.server.received.size() < data.size();
         ++i) {
        p.sim.runFor(5 * sim::oneMs);
        feed();
    }
    EXPECT_GT(p.client.conn().cwndBytes(), cwnd0);
}

TEST(TcpFlow, LossHalvesCongestionWindow)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    auto data = pattern(4 << 20);
    std::size_t sent = 0;
    auto feed = [&] {
        while (sent < data.size()) {
            auto n = p.client.conn().send(
                std::span(data).subspan(sent));
            if (n == 0)
                break;
            sent += n;
        }
    };
    feed();
    // Let cwnd open up, but stop while the transfer is in full swing
    // (the pipe is latency-only, so this happens within a few RTTs).
    for (int i = 0; i < 200 && p.client.conn().cwndBytes() < 30000;
         ++i) {
        p.sim.runFor(100 * sim::oneUs);
        feed();
    }
    const auto cwnd_before = p.client.conn().cwndBytes();
    ASSERT_GT(cwnd_before, 20000u);
    ASSERT_LT(p.server.received.size(), data.size() / 2);
    bool dropped = false;
    p.client.txFilter = [&](auto, std::span<const std::uint8_t> pl,
                            auto) {
        if (!pl.empty() && !dropped) {
            dropped = true;
            return false;
        }
        return true;
    };
    // Stop as soon as the fast retransmit fires, before congestion
    // avoidance has time to regrow the window.
    for (int i = 0; i < 100; ++i) {
        p.sim.runFor(100 * sim::oneUs);
        feed();
        if (p.client.conn().stats().fastRetransmits.value() > 0)
            break;
    }
    ASSERT_TRUE(dropped);
    ASSERT_GE(p.client.conn().stats().fastRetransmits.value(), 1u);
    p.sim.runFor(300 * sim::oneUs); // let recovery complete (~3 RTT)
    EXPECT_LT(p.client.conn().cwndBytes(), cwnd_before);
    EXPECT_LE(p.client.conn().cwndBytes(),
              cwnd_before / 2 + 12 * 1460);
}

// ---------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------

TEST(TcpClose, GracefulFinExchange)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    p.client.conn().close();
    p.sim.runUntilCondition([&] { return p.server.peerClosed; },
                            p.sim.now() + sim::oneSec);
    EXPECT_TRUE(p.server.peerClosed);
    EXPECT_EQ(p.server.conn().state(), TcpState::CloseWait);
    p.server.conn().close();
    p.sim.runUntilCondition(
        [&] { return p.server.closed && p.client.closed; },
        p.sim.now() + 10 * sim::oneSec);
    EXPECT_TRUE(p.client.closed);
    EXPECT_TRUE(p.server.closed);
    EXPECT_EQ(p.client.conn().state(), TcpState::Closed);
    EXPECT_EQ(p.server.conn().state(), TcpState::Closed);
    EXPECT_FALSE(p.client.reset);
}

TEST(TcpClose, FinAfterQueuedDataDrains)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    auto data = pattern(20000);
    p.client.conn().send(data);
    p.client.conn().close(); // close with data still queued
    p.sim.runUntilCondition([&] { return p.server.peerClosed; },
                            p.sim.now() + 10 * sim::oneSec);
    EXPECT_EQ(p.server.received, data); // everything arrived first
}

TEST(TcpClose, SimultaneousClose)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    p.client.conn().close();
    p.server.conn().close();
    p.sim.runUntilCondition(
        [&] { return p.client.closed && p.server.closed; },
        p.sim.now() + 10 * sim::oneSec);
    EXPECT_TRUE(p.client.closed);
    EXPECT_TRUE(p.server.closed);
}

TEST(TcpClose, RetransmitsLostFin)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    bool dropped_fin = false;
    p.client.txFilter = [&](const inet::TcpHeader &hdr, auto, auto) {
        if (hdr.has(fin) && !dropped_fin) {
            dropped_fin = true;
            return false;
        }
        return true;
    };
    p.client.conn().close();
    p.sim.runUntilCondition([&] { return p.server.peerClosed; },
                            p.sim.now() + 10 * sim::oneSec);
    EXPECT_TRUE(dropped_fin);
    EXPECT_TRUE(p.server.peerClosed);
}

TEST(TcpClose, AbortSendsRst)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    p.client.conn().abort();
    p.sim.runUntilCondition([&] { return p.server.reset; },
                            p.sim.now() + sim::oneSec);
    EXPECT_TRUE(p.server.reset);
    EXPECT_EQ(p.client.conn().state(), TcpState::Closed);
    EXPECT_EQ(p.server.conn().state(), TcpState::Closed);
}

// ---------------------------------------------------------------------
// Header prediction / instrumentation
// ---------------------------------------------------------------------

TEST(TcpPrediction, BulkTransferMostlyPredicted)
{
    TcpPair p(streamConfig());
    ASSERT_TRUE(p.establish());
    auto data = pattern(100000);
    std::size_t sent = 0;
    auto feed = [&] {
        while (sent < data.size()) {
            auto n = p.client.conn().send(
                std::span(data).subspan(sent));
            if (n == 0)
                break;
            sent += n;
        }
    };
    feed();
    for (int i = 0; i < 100 && p.server.received.size() < data.size();
         ++i) {
        p.sim.runFor(5 * sim::oneMs);
        feed();
    }
    ASSERT_EQ(p.server.received.size(), data.size());
    // The receiver should classify the bulk of in-order data segments
    // as header-predicted (the common case the firmware subset is
    // built around).
    const auto predicted =
        p.server.conn().stats().hdrPredicted.value();
    const auto segs = p.server.conn().stats().segsIn.value();
    EXPECT_GT(predicted, segs / 2);
}

TEST(TcpTimestamps, RttEstimatorConverges)
{
    auto cfg = streamConfig();
    cfg.tsGranularity = sim::oneUs;
    cfg.delayedAck = false; // delack would legitimately inflate RTT
    TcpPair p(cfg);
    p.client.oneWayDelay = 100 * sim::oneUs;
    p.server.oneWayDelay = 100 * sim::oneUs;
    ASSERT_TRUE(p.establish());
    for (int i = 0; i < 20; ++i) {
        p.client.conn().send(pattern(100));
        p.sim.runFor(5 * sim::oneMs);
    }
    ASSERT_TRUE(p.client.conn().rtt().hasSample());
    // ~200 us round trip, measured within timestamp granularity.
    EXPECT_NEAR(static_cast<double>(p.client.conn().rtt().srtt()),
                static_cast<double>(200 * sim::oneUs),
                static_cast<double>(60 * sim::oneUs));
}

TEST(TcpIss, SequenceWrapAroundIsTransparent)
{
    auto cfg = streamConfig();
    TcpPair p(cfg);
    // Start 3 kB below the wrap point so the transfer crosses it.
    p.client.issOverride = 0xffffffff - 3000;
    ASSERT_TRUE(p.establish());
    auto data = pattern(50000);
    std::size_t sent = 0;
    auto feed = [&] {
        while (sent < data.size()) {
            auto n = p.client.conn().send(
                std::span(data).subspan(sent));
            if (n == 0)
                break;
            sent += n;
        }
    };
    feed();
    for (int i = 0; i < 200 && p.server.received.size() < data.size();
         ++i) {
        p.sim.runFor(5 * sim::oneMs);
        feed();
    }
    ASSERT_EQ(p.server.received.size(), data.size());
    EXPECT_EQ(p.server.received, data);
}
