/**
 * @file
 * Unit tests for the fabric layer: serialization primitives, link
 * timing/MTU/queueing, switch forwarding, fault injection.
 */

#include <gtest/gtest.h>

#include "net/fault.hh"
#include "net/link.hh"
#include "net/serialize.hh"
#include "net/switch.hh"
#include "net/topology.hh"
#include "sim/simulation.hh"

using namespace qpip;
using namespace qpip::net;

namespace {

/** Collects delivered packets with their arrival times. */
class SinkPort : public NetReceiver
{
  public:
    explicit SinkPort(sim::Simulation &sim) : sim_(sim) {}

    void
    onPacket(PacketPtr pkt) override
    {
        packets.push_back(pkt);
        arrivals.push_back(sim_.now());
    }

    std::vector<PacketPtr> packets;
    std::vector<sim::Tick> arrivals;

  private:
    sim::Simulation &sim_;
};

PacketPtr
somePacket(std::size_t bytes, NodeId dst = 1)
{
    auto pkt = makePacket();
    pkt->dst = dst;
    pkt->src = 0;
    pkt->data.assign(bytes, 0xab);
    return pkt;
}

} // namespace

TEST(Serialize, RoundTripsBigEndian)
{
    std::vector<std::uint8_t> buf;
    ByteWriter w(buf);
    w.u8(0x12);
    w.u16(0x3456);
    w.u32(0x789abcde);
    w.u64(0x0123456789abcdefULL);
    EXPECT_EQ(buf.size(), 15u);
    EXPECT_EQ(buf[1], 0x34); // big-endian order on the wire
    EXPECT_EQ(buf[2], 0x56);

    ByteReader r(buf);
    EXPECT_EQ(r.u8(), 0x12);
    EXPECT_EQ(r.u16(), 0x3456);
    EXPECT_EQ(r.u32(), 0x789abcdeu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, ReaderFailsSoftOnUnderrun)
{
    std::vector<std::uint8_t> buf{1, 2};
    ByteReader r(buf);
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_TRUE(r.rest().empty());
}

TEST(Serialize, PatchU16OverwritesInPlace)
{
    std::vector<std::uint8_t> buf;
    ByteWriter w(buf);
    w.u16(0);
    w.u16(0xbeef);
    w.patchU16(0, 0xdead);
    ByteReader r(buf);
    EXPECT_EQ(r.u16(), 0xdead);
    EXPECT_EQ(r.u16(), 0xbeef);
}

TEST(Link, DeliversWithSerializationPlusPropagation)
{
    sim::Simulation sim;
    LinkConfig cfg;
    cfg.bitsPerSec = 1e9;
    cfg.propDelay = sim::oneUs;
    cfg.mtu = 1500;
    cfg.overheadBytes = 0;
    Link link(sim, "l", cfg);
    SinkPort sink(sim);
    link.attach(1, sink);

    link.send(0, somePacket(1000));
    sim.run();
    ASSERT_EQ(sink.packets.size(), 1u);
    // 1000 B at 1 Gb/s = 8 us serialization + 1 us propagation.
    EXPECT_EQ(sink.arrivals[0], 9 * sim::oneUs);
}

TEST(Link, TransmitterSerializesBackToBackPackets)
{
    sim::Simulation sim;
    LinkConfig cfg;
    cfg.bitsPerSec = 1e9;
    cfg.propDelay = 0;
    cfg.overheadBytes = 0;
    Link link(sim, "l", cfg);
    SinkPort sink(sim);
    link.attach(1, sink);

    link.send(0, somePacket(1250)); // 10 us each
    link.send(0, somePacket(1250));
    sim.run();
    ASSERT_EQ(sink.arrivals.size(), 2u);
    EXPECT_EQ(sink.arrivals[0], 10 * sim::oneUs);
    EXPECT_EQ(sink.arrivals[1], 20 * sim::oneUs);
}

TEST(Link, DropsOversizePackets)
{
    sim::Simulation sim;
    Link link(sim, "l", gigabitEthernetLink());
    SinkPort sink(sim);
    link.attach(1, sink);
    EXPECT_FALSE(link.send(0, somePacket(1501)));
    sim.run();
    EXPECT_TRUE(sink.packets.empty());
    EXPECT_EQ(link.oversizeDrops.value(), 1u);
}

TEST(Link, FullDuplexDirectionsAreIndependent)
{
    sim::Simulation sim;
    LinkConfig cfg;
    cfg.bitsPerSec = 1e9;
    cfg.propDelay = 0;
    cfg.overheadBytes = 0;
    Link link(sim, "l", cfg);
    SinkPort sink0(sim), sink1(sim);
    link.attach(0, sink0);
    link.attach(1, sink1);
    link.send(0, somePacket(1250));
    link.send(1, somePacket(1250));
    sim.run();
    // Both arrive at 10 us: no shared-medium contention.
    ASSERT_EQ(sink0.arrivals.size(), 1u);
    ASSERT_EQ(sink1.arrivals.size(), 1u);
    EXPECT_EQ(sink0.arrivals[0], sink1.arrivals[0]);
}

TEST(Fault, DropAndDuplicate)
{
    sim::Simulation sim;
    LinkConfig cfg = gigabitEthernetLink();
    Link link(sim, "l", cfg);
    SinkPort sink(sim);
    link.attach(1, sink);

    link.faults().config.dropProb = 1.0;
    link.send(0, somePacket(100));
    sim.run();
    EXPECT_TRUE(sink.packets.empty());
    EXPECT_EQ(link.faults().drops.value(), 1u);

    link.faults().config.dropProb = 0.0;
    link.faults().config.dupProb = 1.0;
    link.send(0, somePacket(100));
    sim.run();
    EXPECT_EQ(sink.packets.size(), 2u);
}

TEST(Fault, CorruptionFlipsBytes)
{
    sim::Simulation sim;
    Link link(sim, "l", gigabitEthernetLink());
    SinkPort sink(sim);
    link.attach(1, sink);
    link.faults().config.corruptProb = 1.0;
    link.send(0, somePacket(100));
    sim.run();
    ASSERT_EQ(sink.packets.size(), 1u);
    int diffs = 0;
    for (auto b : sink.packets[0]->data)
        diffs += (b != 0xab);
    EXPECT_EQ(diffs, 1);
}

TEST(Switch, ForwardsByDestination)
{
    sim::Simulation sim;
    StarFabric star(sim, "star", myrinetLink());
    Link &l0 = star.addNode(0);
    Link &l1 = star.addNode(1);
    Link &l2 = star.addNode(2);
    SinkPort s0(sim), s1(sim), s2(sim);
    l0.attach(0, s0);
    l1.attach(0, s1);
    l2.attach(0, s2);

    l0.send(0, somePacket(64, 2));
    l1.send(0, somePacket(64, 0));
    sim.run();
    EXPECT_EQ(s2.packets.size(), 1u);
    EXPECT_EQ(s0.packets.size(), 1u);
    EXPECT_TRUE(s1.packets.empty());
    EXPECT_EQ(star.fabricSwitch().forwarded.value(), 2u);
}

TEST(Switch, DropsUnroutable)
{
    sim::Simulation sim;
    StarFabric star(sim, "star", myrinetLink());
    Link &l0 = star.addNode(0);
    star.addNode(1);
    l0.send(0, somePacket(64, 99));
    sim.run();
    EXPECT_EQ(star.fabricSwitch().unroutableDrops.value(), 1u);
}

TEST(Switch, CutThroughAddsFixedLatency)
{
    sim::Simulation sim;
    LinkConfig cfg = myrinetLink();
    cfg.propDelay = 0;
    cfg.overheadBytes = 0;
    StarFabric star(sim, "star", cfg);
    Link &l0 = star.addNode(0);
    Link &l1 = star.addNode(1);
    SinkPort s1(sim);
    l1.attach(0, s1);
    (void)l0;

    l0.send(0, somePacket(1000, 1));
    sim.run();
    ASSERT_EQ(s1.arrivals.size(), 1u);
    // serialization (hop 1) + routing + serialization (hop 2):
    // 1000 B at 2 Gb/s = 4 us each, plus 300 ns cut-through.
    EXPECT_EQ(s1.arrivals[0], 2 * 4 * sim::oneUs + 300 * sim::oneNs);
}

// ---------------------------------------------------------------------
// Packet / buffer pooling
// ---------------------------------------------------------------------

TEST(PacketPool, RecyclesPacketsWithFullFieldReset)
{
    const auto before = poolStats();
    Packet *raw;
    std::uint64_t firstId;
    {
        auto pkt = makePacket();
        raw = pkt.get();
        firstId = pkt->id;
        pkt->src = 5;
        pkt->dst = 9;
        pkt->proto = NetProto::Ipv6;
        pkt->linkOverheadBytes = 42;
        pkt->injectedAt = 1234;
        pkt->data.assign(64, 0xee);
    } // last ref dropped: packet returns to the pool

    auto pkt2 = makePacket();
    const auto after = poolStats();
    // Same storage came back (LIFO freelist)...
    EXPECT_EQ(pkt2.get(), raw);
    EXPECT_GT(after.packetsRecycled, before.packetsRecycled);
    // ...but behaviorally it is a fresh packet.
    EXPECT_NE(pkt2->id, firstId);
    EXPECT_EQ(pkt2->src, invalidNode);
    EXPECT_EQ(pkt2->dst, invalidNode);
    EXPECT_EQ(pkt2->proto, NetProto::Raw);
    EXPECT_EQ(pkt2->linkOverheadBytes, 0u);
    EXPECT_EQ(pkt2->injectedAt, 0u);
    EXPECT_TRUE(pkt2->data.empty());
}

TEST(PacketPool, IntrusiveRefcountKeepsPacketAliveAcrossCopies)
{
    auto pkt = makePacket();
    pkt->data.assign(8, 0x11);
    PacketPtr copy = pkt;
    PacketPtr moved = std::move(pkt);
    EXPECT_FALSE(pkt);
    ASSERT_TRUE(copy);
    ASSERT_TRUE(moved);
    EXPECT_EQ(copy.get(), moved.get());
    copy.reset();
    EXPECT_EQ(moved->data.size(), 8u);
}

TEST(PacketPool, BufferPoolReturnsClearedStorageWithCapacity)
{
    std::vector<std::uint8_t> buf = acquireBuffer();
    buf.assign(4096, 0x5a);
    const auto *storage = buf.data();
    recycleBuffer(std::move(buf));
    std::vector<std::uint8_t> again = acquireBuffer();
    EXPECT_EQ(again.data(), storage); // LIFO: same storage back
    EXPECT_TRUE(again.empty());
    EXPECT_GE(again.capacity(), 4096u);
}

TEST(PacketPool, ClonedPacketGetsFreshIdAndOwnStorage)
{
    auto a = makePacket();
    a->data.assign(16, 0x7f);
    a->src = 1;
    a->dst = 2;
    auto b = clonePacket(*a);
    EXPECT_NE(a->id, b->id);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->data, b->data);
    b->data[0] = 0;
    EXPECT_EQ(a->data[0], 0x7f);
}
