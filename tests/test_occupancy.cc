/**
 * @file
 * Calibration regression tests: the firmware per-stage occupancy must
 * reproduce the paper's Tables 2 and 3 (within tight tolerances) for
 * 1-byte message traffic, and the hardware-assist knobs must move the
 * stages they claim to move. Guards the FirmwareCostModel against
 * accidental drift.
 */

#include <gtest/gtest.h>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"

using namespace qpip;
using namespace qpip::apps;
using nic::FwStage;

namespace {

/** One-way stream of 1-byte messages; returns true on completion. */
bool
runOneWay(QpipTestbed &bed, std::size_t messages)
{
    auto &ptx = bed.provider(0);
    auto &prx = bed.provider(1);
    auto ctx = ptx.createCq(4096);
    auto crx = prx.createCq(4096);
    auto btx = std::make_shared<std::vector<std::uint8_t>>(8, 1);
    auto brx = std::make_shared<std::vector<std::uint8_t>>(8, 0);
    auto mtx = ptx.registerMemory(*btx);
    auto mrx = prx.registerMemory(*brx);

    auto acc = std::make_shared<verbs::Acceptor>(prx, 7, crx, crx);
    auto received = std::make_shared<std::size_t>(0);
    auto rqp = std::make_shared<std::shared_ptr<verbs::QueuePair>>();
    acc->acceptOne([=](std::shared_ptr<verbs::QueuePair> q) {
        *rqp = q;
        q->postRecv(1, *mrx, 0, 1);
    });
    auto qp = ptx.createQp(nic::QpType::ReliableTcp, ctx, ctx, 64, 4);
    bool connected = false;
    qp->connect(bed.addr(1, 7), [&](bool ok) { connected = ok; });
    bed.sim().runUntilCondition([&] { return connected; },
                                10 * sim::oneSec);
    if (!connected)
        return false;
    bed.nicOf(0).fw().resetStats();
    bed.nicOf(1).fw().resetStats();

    auto sent = std::make_shared<std::size_t>(0);
    waitLoop(*crx, [=](verbs::Completion c) {
        if (!c.isSend) {
            ++*received;
            (*rqp)->postRecv(1, *mrx, 0, 1);
        }
    });
    auto send_next = std::make_shared<std::function<void()>>();
    *send_next = [=] {
        if (*sent >= messages)
            return;
        ++*sent;
        qp->postSend(*sent, *mtx, 0, 1);
    };
    waitLoop(*ctx, [=](verbs::Completion c) {
        if (c.isSend)
            (*send_next)();
    });
    (*send_next)();
    return bed.sim().runUntilCondition(
        [&] { return *received >= messages; },
        bed.sim().now() + 120 * sim::oneSec);
}

double
meanUs(nic::QpipNic &nic, FwStage s)
{
    return nic.fw().stageStat(s).mean();
}

} // namespace

TEST(Occupancy, Table2TransmitStages)
{
    QpipTestbed bed(2);
    ASSERT_TRUE(runOneWay(bed, 100));
    auto &tx = bed.nicOf(0); // data sends
    EXPECT_NEAR(meanUs(tx, FwStage::DoorbellProcess), 1.0, 0.1);
    EXPECT_NEAR(meanUs(tx, FwStage::Schedule), 2.0, 0.2);
    EXPECT_NEAR(meanUs(tx, FwStage::GetWr), 5.5, 0.3);
    EXPECT_NEAR(meanUs(tx, FwStage::GetData), 4.5, 0.5);
    EXPECT_NEAR(meanUs(tx, FwStage::BuildTcpHdr), 5.0, 0.3);
    EXPECT_NEAR(meanUs(tx, FwStage::BuildIpHdr), 1.0, 0.1);
    EXPECT_NEAR(meanUs(tx, FwStage::MediaSend), 1.0, 0.1);
    EXPECT_NEAR(meanUs(tx, FwStage::UpdateTx), 1.5, 0.2);
}

TEST(Occupancy, Table3ReceiveStages)
{
    QpipTestbed bed(2);
    ASSERT_TRUE(runOneWay(bed, 100));
    auto &rx = bed.nicOf(1); // receives data
    auto &tx = bed.nicOf(0); // receives ACKs
    EXPECT_NEAR(meanUs(rx, FwStage::MediaRcv), 1.0, 0.1);
    EXPECT_NEAR(meanUs(rx, FwStage::IpParse), 1.5, 0.2);
    EXPECT_NEAR(meanUs(rx, FwStage::TcpParse), 7.0, 0.5);
    EXPECT_NEAR(meanUs(rx, FwStage::GetWr), 5.5, 0.3);
    EXPECT_NEAR(meanUs(rx, FwStage::PutData), 4.5, 0.5);
    EXPECT_NEAR(meanUs(rx, FwStage::UpdateRx), 1.5, 0.2);
    // ACK side: software-multiply RTT estimators double the parse,
    // and Update writes back WR + QP state.
    EXPECT_NEAR(meanUs(tx, FwStage::TcpParse), 14.0, 0.8);
    EXPECT_NEAR(meanUs(tx, FwStage::UpdateRx), 9.0, 0.5);
}

TEST(Occupancy, HwMultiplyRemovesAckParsePenalty)
{
    nic::QpipNicParams p;
    p.costs.hwMultiply = true;
    QpipTestbed bed(2, qpipNativeMtu, 1, p);
    ASSERT_TRUE(runOneWay(bed, 100));
    auto &tx = bed.nicOf(0);
    EXPECT_NEAR(meanUs(tx, FwStage::TcpParse), 7.0, 0.5);
}

TEST(Occupancy, FirmwareChecksumChargesPerByte)
{
    nic::QpipNicParams p;
    p.costs = nic::lanai9FirmwareCosts();
    QpipTestbed bed(2, qpipNativeMtu, 1, p);
    ASSERT_TRUE(runOneWay(bed, 50));
    auto &rx = bed.nicOf(1);
    EXPECT_GT(rx.fw().stageStat(FwStage::Checksum).count(), 0u);
    // ~60-byte packets at ~2.75 cyc/B + 1 us fixed: low single-digit
    // microseconds.
    EXPECT_GT(meanUs(rx, FwStage::Checksum), 1.0);
    EXPECT_LT(meanUs(rx, FwStage::Checksum), 5.0);
}

TEST(Occupancy, SoftwareDoorbellCostsMore)
{
    double hw_us = 0.0, sw_us = 0.0;
    {
        QpipTestbed bed(2);
        ASSERT_TRUE(runOneWay(bed, 50));
        hw_us = meanUs(bed.nicOf(0), FwStage::DoorbellProcess);
    }
    {
        nic::QpipNicParams p;
        p.costs.hwDoorbell = false;
        QpipTestbed bed(2, qpipNativeMtu, 1, p);
        ASSERT_TRUE(runOneWay(bed, 50));
        sw_us = meanUs(bed.nicOf(0), FwStage::DoorbellProcess);
    }
    EXPECT_NEAR(sw_us, hw_us * 4.0, 0.5); // swDoorbellFactor
}

TEST(Occupancy, FirmwareBusyFractionTracksLoad)
{
    QpipTestbed bed(2);
    ASSERT_TRUE(runOneWay(bed, 200));
    // Serial 1-byte messages: the NIC is mostly idle between them.
    auto &fw = bed.nicOf(0).fw();
    EXPECT_GT(fw.busyTotal(), 0u);
    EXPECT_LT(fw.busyTotal(), bed.sim().now());
}

TEST(Occupancy, QpContextCacheIsFreeInPaperConfigs)
{
    // The paper's experiments run a handful of QPs; a cache sized
    // like the LANai's SRAM (the default 1024 contexts) warm-installs
    // every context at creation and never misses, so the Tables 2/3
    // timing must be byte-identical to a build with the cache model
    // disabled — fetch/writeback charges only appear under thrash.
    struct Snapshot
    {
        sim::Tick endTick, busyTx, busyRx;
        std::vector<std::pair<std::uint64_t, double>> stages;
    };
    auto run = [](std::size_t capacity) {
        nic::QpipNicParams p;
        p.qpCacheCapacity = capacity;
        QpipTestbed bed(2, qpipNativeMtu, 1, p);
        EXPECT_TRUE(runOneWay(bed, 100));
        Snapshot s{bed.sim().now(), bed.nicOf(0).fw().busyTotal(),
                   bed.nicOf(1).fw().busyTotal(),
                   {}};
        for (int n = 0; n < 2; ++n) {
            for (int i = 0; i < static_cast<int>(FwStage::NumStages);
                 ++i) {
                const auto &st = bed.nicOf(n).fw().stageStat(
                    static_cast<FwStage>(i));
                s.stages.emplace_back(st.count(), st.total());
            }
        }
        if (capacity > 0) {
            EXPECT_EQ(bed.nicOf(0).qpCache().misses.value(), 0u);
            EXPECT_EQ(bed.nicOf(0).qpCache().evictions.value(), 0u);
            EXPECT_GT(bed.nicOf(0).qpCache().hits.value(), 0u);
        }
        return s;
    };
    const auto cached = run(1024);
    const auto uncached = run(0);
    EXPECT_EQ(cached.endTick, uncached.endTick);
    EXPECT_EQ(cached.busyTx, uncached.busyTx);
    EXPECT_EQ(cached.busyRx, uncached.busyRx);
    EXPECT_EQ(cached.stages, uncached.stages);
}
