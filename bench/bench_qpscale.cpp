/**
 * @file
 * QP-scale benchmark: completion rate versus QP count under a finite
 * QP-context cache. The 133 MHz LANai keeps QP context blocks in its
 * 2 MB SRAM; once the active working set outgrows the cache (default
 * 1024 contexts), every doorbell and receive touches a cold context
 * and pays the fetch (plus a writeback for the victim) through the
 * serialized firmware processor. A round-robin send pattern across N
 * QPs is the worst case: N at or below the capacity never misses, N
 * above it misses on essentially every touch — the context-cache
 * thrash cliff.
 *
 * Two arms per sweep. RC: one server host parks N reliable QPs on a
 * shared receive queue; one client host connects N QPs and streams
 * 1-byte messages round-robin with a bounded outstanding window. RUD:
 * the same fan-in, but N reliable-datagram peers target ONE server QP
 * whose per-peer state lives in host memory — the server's context
 * working set is a single entry at any N, so its curve rides flat
 * through the RC cliff. The recorded metric is completions per
 * simulated second (firmware-bound, so wall time does not matter),
 * plus the cache hit/miss/eviction counters that explain it.
 *
 * Output is a JSON report (default ./BENCH_qpscale.json, override
 * with --out=<path>). Knobs: QPIP_QPSCALE_MSGS (messages per point,
 * default 16384), QPIP_QPSCALE_CACHE (cache capacity, default 1024),
 * QPIP_QPSCALE_MAXQPS (largest point, default 16384),
 * QPIP_QPSCALE_REPS (wall-clock repetitions, default 3). Everything
 * simulated is seed-1 deterministic; like bench_simspeed, this lives
 * in bench/ and may look at the wall clock for the convenience
 * columns only. Those columns are best-of-N: the sweep runs REPS
 * times with the reps interleaved across points (rep 0 of every
 * point, then rep 1, ...) so page-cache and allocator warm-up is
 * spread evenly instead of flattering whichever point ran last, and
 * each point reports its minimum wall time. Simulated fields are
 * asserted identical across reps.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::envKnob;

namespace {

struct Point
{
    const char *transport = "rc";
    std::size_t qps = 0;
    std::uint64_t messages = 0;
    sim::Tick simTicks = 0;
    double completionsPerSimSec = 0.0;
    std::uint64_t txHits = 0, txMisses = 0, txEvictions = 0;
    std::uint64_t rxHits = 0, rxMisses = 0, rxEvictions = 0;
    double wallSeconds = 0.0;
    bool completed = false;
};

Point
runPoint(std::size_t n_qps, std::uint64_t messages,
         std::size_t cache_capacity)
{
    nic::QpipNicParams params;
    params.qpCacheCapacity = cache_capacity;
    QpipTestbed bed(2, qpipNativeMtu, 1, params);
    auto &client = bed.provider(0);
    auto &server = bed.provider(1);

    constexpr std::size_t srqDepth = 256;
    constexpr std::size_t window = 64; // outstanding sends

    auto scq = server.createCq(1 << 16);
    auto ccq = client.createCq(1 << 16);
    auto srq = server.createSrq(1 << 16);
    std::vector<std::uint8_t> rbuf(srqDepth), sbuf(1);
    auto rmr = server.registerMemory(rbuf);
    auto smr = client.registerMemory(sbuf);
    std::uint64_t srqPosted = 0;
    for (; srqPosted < srqDepth; ++srqPosted)
        srq->postRecv(srqPosted, *rmr, srqPosted % srqDepth, 1);

    verbs::QpAttrs server_attrs;
    server_attrs.srq = srq;
    verbs::Acceptor acc(server, 700, scq, scq);
    std::vector<std::shared_ptr<verbs::QueuePair>> serverQps;
    serverQps.reserve(n_qps);
    for (std::size_t i = 0; i < n_qps; ++i) {
        acc.acceptOne(
            [&](std::shared_ptr<verbs::QueuePair> q) {
                serverQps.push_back(std::move(q));
            },
            server_attrs);
    }

    std::vector<std::shared_ptr<verbs::QueuePair>> clientQps;
    clientQps.reserve(n_qps);
    std::size_t connected = 0;
    for (std::size_t i = 0; i < n_qps; ++i) {
        // Send ring sized to the global window: a single QP can end
        // up holding every outstanding send at small N.
        auto qp = client.createQp(nic::QpType::ReliableTcp, ccq, ccq,
                                  verbs::QpAttrs{window, 0, nullptr, 0});
        qp->connect(bed.addr(1, 700),
                    [&](bool ok) { connected += ok ? 1 : 0; });
        clientQps.push_back(std::move(qp));
    }
    Point p;
    p.qps = n_qps;
    p.messages = messages;
    if (!bed.sim().runUntilCondition(
            [&] {
                return connected == n_qps &&
                       serverQps.size() == n_qps;
            },
            bed.sim().now() + 600 * sim::oneSec)) {
        return p; // connect storm stalled: report incomplete
    }

    // Steady state starts here: count only the messaging phase.
    const auto &txc = bed.nicOf(0).qpCache();
    const auto &rxc = bed.nicOf(1).qpCache();
    const std::uint64_t txHits0 = txc.hits.value();
    const std::uint64_t txMiss0 = txc.misses.value();
    const std::uint64_t txEvict0 = txc.evictions.value();
    const std::uint64_t rxHits0 = rxc.hits.value();
    const std::uint64_t rxMiss0 = rxc.misses.value();
    const std::uint64_t rxEvict0 = rxc.evictions.value();
    const sim::Tick t0 = bed.sim().now();
    const auto wall0 = std::chrono::steady_clock::now();

    std::uint64_t received = 0;
    waitLoop(*scq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ++received;
        srq->postRecv(srqPosted, *rmr, srqPosted % srqDepth, 1);
        ++srqPosted;
    });

    // Round-robin across all QPs — the cache's worst case.
    std::uint64_t sent = 0;
    std::size_t nextQp = 0;
    auto sendNext = [&] {
        if (sent >= messages)
            return;
        if (!clientQps[nextQp]->postSend(sent, *smr, 0, 1)) {
            std::fprintf(stderr, "send ring overflow at qp %zu\n",
                         nextQp);
            std::exit(1);
        }
        nextQp = (nextQp + 1) % n_qps;
        ++sent;
    };
    waitLoop(*ccq, [&](verbs::Completion c) {
        if (c.isSend)
            sendNext();
    });
    for (std::size_t i = 0; i < window && i < messages; ++i)
        sendNext();

    p.completed = bed.sim().runUntilCondition(
        [&] { return received >= messages; },
        bed.sim().now() + 36000 * sim::oneSec);

    const auto wall1 = std::chrono::steady_clock::now();
    p.simTicks = bed.sim().now() - t0;
    p.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    p.completionsPerSimSec =
        p.simTicks > 0
            ? static_cast<double>(received) /
                  (static_cast<double>(p.simTicks) /
                   static_cast<double>(sim::oneSec))
            : 0.0;
    p.txHits = txc.hits.value() - txHits0;
    p.txMisses = txc.misses.value() - txMiss0;
    p.txEvictions = txc.evictions.value() - txEvict0;
    p.rxHits = rxc.hits.value() - rxHits0;
    p.rxMisses = rxc.misses.value() - rxMiss0;
    p.rxEvictions = rxc.evictions.value() - rxEvict0;
    return p;
}

/**
 * The reliable-datagram arm: the same round-robin 1-byte fan-in, but
 * every client "peer" talks to ONE server RUD QP whose per-peer
 * reliability state lives in host memory — the server NIC touches a
 * single cached context no matter how many peers are active. The
 * client host models N independent peer hosts, so its NIC gets an
 * uncontended cache; the system under test is the server at the
 * default capacity.
 */
Point
runRudPoint(std::size_t n_peers, std::uint64_t messages,
            std::size_t cache_capacity)
{
    nic::QpipNicParams serverParams;
    serverParams.qpCacheCapacity = cache_capacity;
    nic::QpipNicParams clientParams;
    clientParams.qpCacheCapacity = n_peers + 16;
    QpipTestbed bed(2, qpipNativeMtu, 1,
                    {clientParams, serverParams});
    auto &client = bed.provider(0);
    auto &server = bed.provider(1);

    constexpr std::size_t srqDepth = 256;
    constexpr std::size_t window = 64; // outstanding sends

    auto scq = server.createCq(1 << 16);
    auto ccq = client.createCq(1 << 16);
    auto srq = server.createSrq(1 << 16);
    std::vector<std::uint8_t> rbuf(srqDepth), sbuf(1);
    auto rmr = server.registerMemory(rbuf);
    auto smr = client.registerMemory(sbuf);
    std::uint64_t srqPosted = 0;
    for (; srqPosted < srqDepth; ++srqPosted)
        srq->postRecv(srqPosted, *rmr, srqPosted % srqDepth, 1);

    verbs::QpAttrs server_attrs;
    server_attrs.srq = srq;
    auto serverQp = server.createQp(nic::QpType::ReliableDatagram,
                                    scq, scq, server_attrs);
    serverQp->bind(800);
    const auto serverAddr = bed.addr(1, 800);

    std::vector<std::shared_ptr<verbs::QueuePair>> peers;
    peers.reserve(n_peers);
    for (std::size_t i = 0; i < n_peers; ++i) {
        auto qp = client.createQp(nic::QpType::ReliableDatagram, ccq,
                                  ccq,
                                  verbs::QpAttrs{window, 0, nullptr, 0});
        qp->bind(static_cast<std::uint16_t>(2000 + i));
        peers.push_back(std::move(qp));
    }
    Point p;
    p.transport = "rud";
    p.qps = n_peers;
    p.messages = messages;

    // Drain the QP-create/bind management work queued on the client
    // firmware so the measured window sees steady state only (the RC
    // arm's connect phase does this implicitly).
    bed.sim().runFor(sim::oneSec);

    const auto &txc = bed.nicOf(0).qpCache();
    const auto &rxc = bed.nicOf(1).qpCache();
    const std::uint64_t txHits0 = txc.hits.value();
    const std::uint64_t txMiss0 = txc.misses.value();
    const std::uint64_t txEvict0 = txc.evictions.value();
    const std::uint64_t rxHits0 = rxc.hits.value();
    const std::uint64_t rxMiss0 = rxc.misses.value();
    const std::uint64_t rxEvict0 = rxc.evictions.value();
    const sim::Tick t0 = bed.sim().now();
    const auto wall0 = std::chrono::steady_clock::now();

    std::uint64_t received = 0;
    waitLoop(*scq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ++received;
        srq->postRecv(srqPosted, *rmr, srqPosted % srqDepth, 1);
        ++srqPosted;
    });

    // Round-robin across all peers; completions are ack-gated, so
    // the window self-clocks off the server's serialized firmware.
    std::uint64_t sent = 0;
    std::size_t nextQp = 0;
    auto sendNext = [&] {
        if (sent >= messages)
            return;
        if (!peers[nextQp]->postSend(sent, *smr, 0, 1, serverAddr)) {
            std::fprintf(stderr, "send ring overflow at peer %zu\n",
                         nextQp);
            std::exit(1);
        }
        nextQp = (nextQp + 1) % n_peers;
        ++sent;
    };
    waitLoop(*ccq, [&](verbs::Completion c) {
        if (c.isSend)
            sendNext();
    });
    for (std::size_t i = 0; i < window && i < messages; ++i)
        sendNext();

    p.completed = bed.sim().runUntilCondition(
        [&] { return received >= messages; },
        bed.sim().now() + 36000 * sim::oneSec);

    const auto wall1 = std::chrono::steady_clock::now();
    p.simTicks = bed.sim().now() - t0;
    p.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    p.completionsPerSimSec =
        p.simTicks > 0
            ? static_cast<double>(received) /
                  (static_cast<double>(p.simTicks) /
                   static_cast<double>(sim::oneSec))
            : 0.0;
    p.txHits = txc.hits.value() - txHits0;
    p.txMisses = txc.misses.value() - txMiss0;
    p.txEvictions = txc.evictions.value() - txEvict0;
    p.rxHits = rxc.hits.value() - rxHits0;
    p.rxMisses = rxc.misses.value() - rxMiss0;
    p.rxEvictions = rxc.evictions.value() - rxEvict0;
    return p;
}

void
writeJson(const std::vector<Point> &points, std::size_t cache,
          const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"benchmark\": \"qpscale\",\n");
    std::fprintf(f, "  \"qpCacheCapacity\": %zu,\n", cache);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        std::fprintf(
            f,
            "    {\"transport\": \"%s\", \"qps\": %zu, "
            "\"completed\": %s, "
            "\"messages\": %llu, \"simTicks\": %llu, "
            "\"completionsPerSimSec\": %.0f, "
            "\"txCtx\": {\"hits\": %llu, \"misses\": %llu, "
            "\"evictions\": %llu}, "
            "\"rxCtx\": {\"hits\": %llu, \"misses\": %llu, "
            "\"evictions\": %llu}, "
            "\"wallSeconds\": %.3f}%s\n",
            p.transport, p.qps, p.completed ? "true" : "false",
            static_cast<unsigned long long>(p.messages),
            static_cast<unsigned long long>(p.simTicks),
            p.completionsPerSimSec,
            static_cast<unsigned long long>(p.txHits),
            static_cast<unsigned long long>(p.txMisses),
            static_cast<unsigned long long>(p.txEvictions),
            static_cast<unsigned long long>(p.rxHits),
            static_cast<unsigned long long>(p.rxMisses),
            static_cast<unsigned long long>(p.rxEvictions),
            p.wallSeconds, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_qpscale.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }
    const auto messages =
        static_cast<std::uint64_t>(envKnob("QPIP_QPSCALE_MSGS", 16384));
    const std::size_t cache = envKnob("QPIP_QPSCALE_CACHE", 1024);
    const std::size_t maxQps = envKnob("QPIP_QPSCALE_MAXQPS", 16384);
    const std::size_t reps = envKnob("QPIP_QPSCALE_REPS", 3);

    // The sweep: the RC fan-in, then the scale-out arm where N peers
    // fan into one reliable-datagram QP (the server's context working
    // set stays at one entry, so the curve should ride flat through
    // the RC arm's cache cliff).
    struct Sweep
    {
        bool rud;
        std::size_t qps;
    };
    std::vector<Sweep> sweep;
    for (std::size_t n = 16; n <= maxQps; n *= 4)
        sweep.push_back({false, n});
    for (std::size_t n = 16; n <= maxQps; n *= 4)
        sweep.push_back({true, n});

    // Best-of-N, reps interleaved across points (see bench_common.hh).
    const auto points = qpip::bench::bestOfN(
        sweep.size(), reps,
        [&](std::size_t i) {
            return sweep[i].rud
                       ? runRudPoint(sweep[i].qps, messages, cache)
                       : runPoint(sweep[i].qps, messages, cache);
        },
        [](const Point &a, const Point &b) {
            return a.simTicks == b.simTicks &&
                   a.completionsPerSimSec == b.completionsPerSimSec;
        },
        [](Point &kept, const Point &p) {
            kept.wallSeconds = std::min(kept.wallSeconds, p.wallSeconds);
        },
        [](const Point &p) {
            return std::string(p.transport) + "/" +
                   std::to_string(p.qps);
        });

    std::printf("=== completion rate vs QP count (cache %zu contexts, "
                "%llu msgs/point) ===\n",
                cache, static_cast<unsigned long long>(messages));
    std::printf("%5s %8s %14s %16s %12s %12s %10s\n", "arm", "qps",
                "msgs", "compl/simsec", "txMisses", "rxMisses",
                "wall_s");
    bool all_ok = true;
    for (const auto &p : points) {
        std::printf("%5s %8zu %14llu %16.0f %12llu %12llu %10.2f%s\n",
                    p.transport, p.qps,
                    static_cast<unsigned long long>(p.messages),
                    p.completionsPerSimSec,
                    static_cast<unsigned long long>(p.txMisses),
                    static_cast<unsigned long long>(p.rxMisses),
                    p.wallSeconds,
                    p.completed ? "" : "  [INCOMPLETE]");
        all_ok = all_ok && p.completed;
    }
    writeJson(points, cache, out);
    std::printf("\nwrote %s\n", out.c_str());
    return all_ok ? 0 : 1;
}
