/**
 * @file
 * Simulator-speed benchmark: how fast does the simulation itself run
 * on the host executing it? Every other bench in this directory
 * measures *simulated* performance (MB/s on the modeled wire); this
 * one measures wall-clock cost — events/sec, simulated-bytes per
 * wall-second and sim-ticks per wall-second — for a fixed amount of
 * simulated work on the ttcp and NBD testbeds.
 *
 * Output is a JSON report (default ./BENCH_simspeed.json, override
 * with --out=<path>) so CI can archive the trajectory and perf PRs
 * can show before/after numbers instead of claiming them. Workload
 * sizes scale with QPIP_SIMSPEED_MB (default 32).
 *
 * The dual-star scale-out workload (8 hosts, all ordered pairs) runs
 * twice: once on the classic serial loop and once under the parallel
 * engine with --threads=N (or QPIP_SIMSPEED_THREADS, default 1).
 * Neither run counts toward the legacy ttcp aggregate, so the
 * headline number stays comparable with earlier records.
 *
 * The fabric arm sweeps the parallel engine across thread counts on
 * the 128-host k=8 fat-tree (one shift of the all-to-all): a serial
 * engine-less baseline plus one point per count in --fabric-threads=
 * (or QPIP_SIMSPEED_FABRIC_THREADS, default "1,2,4,8"; pass an empty
 * list to skip the arm). CI prunes the list to the cores the runner
 * actually has; the host's core count is recorded in the JSON so a
 * flat curve on a one-core box reads as methodology, not regression.
 *
 * Wall columns are interleaved best-of-N (QPIP_SIMSPEED_REPS, default
 * 1): reps run rep-major across the whole workload list and each
 * workload keeps its minimum wall time, with the simulated fields
 * asserted identical across reps (see bench_common.hh).
 *
 * Wall time is intentionally nondeterministic; everything *simulated*
 * here is seed-1 deterministic, so two runs differ only in the wall
 * columns. This binary lives in bench/ (not src/), outside the
 * qpip-lint D1 no-wall-clock rule, which is what makes it allowed to
 * look at std::chrono at all.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/nbd.hh"
#include "apps/ttcp.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::envKnob;

namespace {

struct WorkloadResult
{
    std::string name;
    /** Counts toward the headline ttcp events/sec aggregate. */
    bool ttcp = false;
    std::uint64_t events = 0;
    std::uint64_t simTicks = 0;
    std::uint64_t simBytes = 0;
    double wallSeconds = 0.0;
    bool completed = false;
    /** Worker threads (-1: legacy serial workload, no field). */
    int threads = -1;
    /** Engine counters (parallel workloads only; deterministic). */
    std::uint64_t epochs = 0;
    std::uint64_t mailboxPosts = 0;
    std::uint64_t batchedPosts = 0;
    std::uint64_t horizonStalls = 0;

    double eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(events) / wallSeconds
                   : 0.0;
    }
    double simBytesPerWallSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(simBytes) / wallSeconds
                   : 0.0;
    }
    double simTicksPerWallSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(simTicks) / wallSeconds
                   : 0.0;
    }
};

std::size_t
scaleMb()
{
    return envKnob("QPIP_SIMSPEED_MB", 32);
}

int
threadKnob()
{
    return static_cast<int>(envKnob("QPIP_SIMSPEED_THREADS", 1));
}

/** Parse a comma-separated thread-count list ("1,2,4,8"). */
std::vector<int>
parseThreadList(const std::string &spec)
{
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        const int v = std::atoi(tok.c_str());
        if (v > 0)
            out.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/**
 * Run @p body, filling the wall/event/tick columns around it.
 * @p count_events reads the executed-event total for this testbed
 * (global queue for serial runs, engine total for parallel ones).
 */
template <typename Body, typename Count>
WorkloadResult
timed(const std::string &name, bool ttcp, sim::Simulation &sim,
      std::uint64_t sim_bytes, Count &&count_events, Body &&body)
{
    WorkloadResult r;
    r.name = name;
    r.ttcp = ttcp;
    r.simBytes = sim_bytes;
    const std::uint64_t events0 = count_events();
    const sim::Tick t0 = sim.now();
    const auto wall0 = std::chrono::steady_clock::now();
    r.completed = body();
    const auto wall1 = std::chrono::steady_clock::now();
    r.events = count_events() - events0;
    r.simTicks = sim.now() - t0;
    r.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    return r;
}

template <typename Body>
WorkloadResult
timed(const std::string &name, bool ttcp, sim::Simulation &sim,
      std::uint64_t sim_bytes, Body &&body)
{
    return timed(name, ttcp, sim, sim_bytes,
                 [&sim] { return sim.eventQueue().executed(); },
                 std::forward<Body>(body));
}

/** Fold the engine's deterministic counters into a parallel row. */
void
captureEngineStats(WorkloadResult &r, const sim::Simulation &sim)
{
    const auto &stats = sim.stats();
    r.epochs = stats.counterValue("parallel.epochs");
    r.mailboxPosts = stats.counterValue("parallel.mailboxPosts");
    r.batchedPosts = stats.counterValue("parallel.batchedPosts");
    r.horizonStalls = stats.counterValue("parallel.horizonStalls");
}

/**
 * Build the workload list as factories: each invocation constructs a
 * fresh testbed and runs the workload once, so best-of-N reps replay
 * the identical simulation on a cold model.
 */
std::vector<std::function<WorkloadResult()>>
buildWorkloads(int threads, const std::vector<int> &fabric_threads)
{
    const std::uint64_t bytes = std::uint64_t(scaleMb()) << 20;
    std::vector<std::function<WorkloadResult()>> work;

    work.push_back([bytes] {
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        return timed("ttcp_sockets_gige", true, bed.sim(), bytes, [&] {
            return runSocketsTtcp(bed, bytes).completed;
        });
    });
    work.push_back([bytes] {
        SocketsTestbed bed(2, SocketsFabric::MyrinetIp);
        return timed("ttcp_sockets_myrinet", true, bed.sim(), bytes,
                     [&] { return runSocketsTtcp(bed, bytes).completed; });
    });
    work.push_back([bytes] {
        QpipTestbed bed(2);
        return timed("ttcp_qpip", true, bed.sim(), bytes, [&] {
            return runQpipTtcp(bed, bytes).completed;
        });
    });
    work.push_back([bytes] {
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        ServerStore store(bed.sim(), "store", bytes);
        NbdSocketServer server(bed.host(1).stack(), store, {});
        return timed("nbd_sockets_gige_read", false, bed.sim(), bytes,
                     [&] {
                         return runNbdSocketsSequential(bed, 0, 1,
                                                        false, bytes)
                             .completed;
                     });
    });
    work.push_back([bytes] {
        QpipTestbed bed(2, 9000);
        ServerStore store(bed.sim(), "store", bytes);
        NbdQpipServer server(bed.provider(1), store, {});
        return timed("nbd_qpip_read", false, bed.sim(), bytes, [&] {
            return runNbdQpipSequential(bed, 0, 1, false, bytes)
                .completed;
        });
    });

    // Scale-out sweep: 8 hosts on a dual-star, every ordered pair.
    const auto pairs = allPairs(8);
    const std::uint64_t per_pair = std::max<std::uint64_t>(
        bytes / pairs.size(), std::uint64_t(64) << 10);
    const std::uint64_t pair_bytes = per_pair * pairs.size();
    work.push_back([pairs, per_pair, pair_bytes] {
        SocketsTestbed bed(8, SocketsFabric::GigabitEthernet, 1,
                           host::HostCostModel{},
                           FabricTopology::DualStar);
        auto r = timed("ttcp_dualstar8_serial", false, bed.sim(),
                       pair_bytes, [&] {
                           return runSocketsTtcpPairs(bed, pairs,
                                                      per_pair)
                               .completed;
                       });
        r.threads = 0;
        return r;
    });
    work.push_back([threads, pairs, per_pair, pair_bytes] {
        SocketsTestbed bed(8, SocketsFabric::GigabitEthernet, 1,
                           host::HostCostModel{},
                           FabricTopology::DualStar);
        bed.enableParallel(threads);
        auto r = timed(
            "ttcp_dualstar8_parallel", false, bed.sim(), pair_bytes,
            [&] { return bed.engine()->executed(); },
            [&] {
                return runSocketsTtcpPairs(bed, pairs, per_pair)
                    .completed;
            });
        r.threads = threads;
        captureEngineStats(r, bed.sim());
        return r;
    });

    // Fabric scaling arm: one shift of the all-to-all on the 128-host
    // k=8 fat-tree — a serial engine-less baseline, then the parallel
    // engine at every requested worker count. Identical simulated
    // work per point, so the curve isolates engine overhead/speedup.
    if (!fabric_threads.empty()) {
        const auto fpairs = uniformShiftPairs(128, 1);
        const std::uint64_t f_per_pair = std::max<std::uint64_t>(
            bytes / 4 / fpairs.size(), std::uint64_t(16) << 10);
        const std::uint64_t f_bytes = f_per_pair * fpairs.size();
        work.push_back([fpairs, f_per_pair, f_bytes] {
            SocketsTestbed bed(128, SocketsFabric::GigabitEthernet, 1,
                               host::HostCostModel{},
                               FabricTopology::FatTreeK8);
            auto r = timed("ttcp_fattree128_serial", false, bed.sim(),
                           f_bytes, [&] {
                               return runSocketsTtcpPairs(bed, fpairs,
                                                          f_per_pair)
                                   .completed;
                           });
            r.threads = 0;
            return r;
        });
        for (const int t : fabric_threads) {
            work.push_back([t, fpairs, f_per_pair, f_bytes] {
                SocketsTestbed bed(128, SocketsFabric::GigabitEthernet,
                                   1, host::HostCostModel{},
                                   FabricTopology::FatTreeK8);
                bed.enableParallel(t);
                auto r = timed(
                    "ttcp_fattree128_t" + std::to_string(t), false,
                    bed.sim(), f_bytes,
                    [&] { return bed.engine()->executed(); },
                    [&] {
                        return runSocketsTtcpPairs(bed, fpairs,
                                                   f_per_pair)
                            .completed;
                    });
                r.threads = t;
                captureEngineStats(r, bed.sim());
                return r;
            });
        }
    }
    return work;
}

std::vector<WorkloadResult>
runAll(int threads, const std::vector<int> &fabric_threads,
       std::size_t reps)
{
    const auto work = buildWorkloads(threads, fabric_threads);
    // Interleaved best-of-N (see bench_common.hh): simulated fields
    // must replay identically; wall keeps the per-workload minimum.
    return qpip::bench::bestOfN(
        work.size(), reps, [&](std::size_t i) { return work[i](); },
        [](const WorkloadResult &a, const WorkloadResult &b) {
            return a.events == b.events && a.simTicks == b.simTicks &&
                   a.simBytes == b.simBytes &&
                   a.completed == b.completed &&
                   a.epochs == b.epochs &&
                   a.mailboxPosts == b.mailboxPosts &&
                   a.batchedPosts == b.batchedPosts &&
                   a.horizonStalls == b.horizonStalls;
        },
        [](WorkloadResult &kept, const WorkloadResult &p) {
            kept.wallSeconds =
                std::min(kept.wallSeconds, p.wallSeconds);
        },
        [](const WorkloadResult &p) { return p.name; });
}

void
writeJson(const std::vector<WorkloadResult> &results, std::size_t reps,
          const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::uint64_t ttcp_events = 0;
    double ttcp_wall = 0.0;
    std::fprintf(f, "{\n  \"benchmark\": \"simspeed\",\n");
    std::fprintf(f, "  \"scaleMb\": %zu,\n", scaleMb());
    // The machine context a scaling curve only makes sense against:
    // thread counts above hostCores cannot speed anything up.
    std::fprintf(f, "  \"hostCores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"reps\": %zu,\n", reps);
    std::fprintf(f, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        if (r.ttcp) {
            ttcp_events += r.events;
            ttcp_wall += r.wallSeconds;
        }
        std::string threads_field;
        if (r.threads >= 0)
            threads_field =
                "\"threads\": " + std::to_string(r.threads) + ", ";
        if (r.threads >= 1) {
            threads_field += "\"epochs\": " + std::to_string(r.epochs) +
                             ", \"mailboxPosts\": " +
                             std::to_string(r.mailboxPosts) +
                             ", \"batchedPosts\": " +
                             std::to_string(r.batchedPosts) +
                             ", \"horizonStalls\": " +
                             std::to_string(r.horizonStalls) + ", ";
        }
        std::fprintf(
            f,
            "    {\"name\": \"%s\", %s\"completed\": %s, "
            "\"events\": %llu, \"simTicks\": %llu, "
            "\"simBytes\": %llu, \"wallSeconds\": %.4f, "
            "\"eventsPerSec\": %.0f, \"simBytesPerWallSec\": %.0f, "
            "\"simTicksPerWallSec\": %.0f}%s\n",
            r.name.c_str(), threads_field.c_str(),
            r.completed ? "true" : "false",
            static_cast<unsigned long long>(r.events),
            static_cast<unsigned long long>(r.simTicks),
            static_cast<unsigned long long>(r.simBytes), r.wallSeconds,
            r.eventsPerSec(), r.simBytesPerWallSec(),
            r.simTicksPerWallSec(),
            i + 1 < results.size() ? "," : "");
    }
    const double agg =
        ttcp_wall > 0.0 ? static_cast<double>(ttcp_events) / ttcp_wall
                        : 0.0;
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"aggregate\": {\"ttcpEvents\": %llu, "
                 "\"ttcpWallSeconds\": %.4f, "
                 "\"ttcpEventsPerSec\": %.0f}\n}\n",
                 static_cast<unsigned long long>(ttcp_events),
                 ttcp_wall, agg);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_simspeed.json";
    int threads = threadKnob();
    std::string fabric_spec = "1,2,4,8";
    if (const char *env = std::getenv("QPIP_SIMSPEED_FABRIC_THREADS"))
        fabric_spec = env;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
        else if (std::strncmp(argv[i], "--threads=", 10) == 0)
            threads = std::max(1, std::atoi(argv[i] + 10));
        else if (std::strncmp(argv[i], "--fabric-threads=", 17) == 0)
            fabric_spec = argv[i] + 17;
    }
    const std::size_t reps = envKnob("QPIP_SIMSPEED_REPS", 1);

    auto results =
        runAll(threads, parseThreadList(fabric_spec), reps);

    std::printf("\n=== simulator speed (%zu MB per workload, "
                "%d worker thread%s) ===\n",
                scaleMb(), threads, threads == 1 ? "" : "s");
    std::printf("%-24s %12s %10s %14s %14s\n", "workload", "events",
                "wall_s", "events/sec", "simMB/wall_s");
    std::uint64_t ttcp_events = 0;
    double ttcp_wall = 0.0;
    bool all_ok = true;
    for (const auto &r : results) {
        std::printf("%-24s %12llu %10.3f %14.0f %14.1f%s\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.wallSeconds, r.eventsPerSec(),
                    r.simBytesPerWallSec() / (1024.0 * 1024.0),
                    r.completed ? "" : "  [INCOMPLETE]");
        if (r.ttcp) {
            ttcp_events += r.events;
            ttcp_wall += r.wallSeconds;
        }
        all_ok = all_ok && r.completed;
    }
    std::printf("%-24s %12llu %10.3f %14.0f\n", "ttcp aggregate",
                static_cast<unsigned long long>(ttcp_events), ttcp_wall,
                ttcp_wall > 0.0
                    ? static_cast<double>(ttcp_events) / ttcp_wall
                    : 0.0);

    writeJson(results, reps, out);
    std::printf("\nwrote %s\n", out.c_str());
    return all_ok ? 0 : 1;
}
