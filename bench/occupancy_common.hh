/**
 * @file
 * Shared driver for the NI-occupancy tables (Tables 2 and 3): a
 * one-way stream of 1-byte reliable-QP messages. With traffic flowing
 * one way, the two NICs' stage statistics separate cleanly into the
 * paper's columns:
 *
 *   sender NIC  tx stages  -> Table 2 "Data Send"
 *   receiver NIC tx stages -> Table 2 "ACK Send"
 *   receiver NIC rx stages -> Table 3 "Data Recv"
 *   sender NIC  rx stages  -> Table 3 "ACK Recv"
 */

#pragma once

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"
#include "bench_common.hh"

namespace qpip::bench {

/** Run the one-way 1-byte message stream; NIC stats accumulate. */
inline bool
runOccupancyWorkload(apps::QpipTestbed &bed, std::size_t messages)
{
    using namespace qpip;
    auto &prov_tx = bed.provider(0);
    auto &prov_rx = bed.provider(1);
    auto cq_tx = prov_tx.createCq(8192);
    auto cq_rx = prov_rx.createCq(8192);
    auto buf_tx = std::make_shared<std::vector<std::uint8_t>>(64, 1);
    auto buf_rx = std::make_shared<std::vector<std::uint8_t>>(64, 0);
    auto mr_tx = prov_tx.registerMemory(*buf_tx);
    auto mr_rx = prov_rx.registerMemory(*buf_rx);

    auto acceptor = std::make_shared<verbs::Acceptor>(prov_rx, 7,
                                                      cq_rx, cq_rx);
    auto received = std::make_shared<std::size_t>(0);
    auto qp_rx_keep =
        std::make_shared<std::shared_ptr<verbs::QueuePair>>();
    acceptor->acceptOne(
        [&, received, qp_rx_keep,
         mr_rx](std::shared_ptr<verbs::QueuePair> qp) {
            *qp_rx_keep = qp;
            qp->postRecv(1, *mr_rx, 0, 1);
            apps::periodicReaper(
                bed.provider(1), 20 * sim::oneUs,
                [qp, cq_rx, mr_rx, received, messages]() -> bool {
                    verbs::Completion c;
                    while (cq_rx->poll(c)) {
                        if (!c.isSend) {
                            ++*received;
                            qp->postRecv(1, *mr_rx, 0, 1);
                        }
                    }
                    return *received < messages;
                });
        });

    auto qp_tx = prov_tx.createQp(nic::QpType::ReliableTcp, cq_tx,
                                  cq_tx, 64, 4);
    bool connected = false;
    qp_tx->connect(bed.addr(1, 7), [&](bool ok) { connected = ok; });
    bed.sim().runUntilCondition([&] { return connected; },
                                10 * sim::oneSec);
    if (!connected)
        return false;

    // Reset NIC stats after connection setup so the tables only see
    // steady-state message traffic.
    bed.nicOf(0).fw().resetStats();
    bed.nicOf(1).fw().resetStats();

    auto posted = std::make_shared<std::size_t>(0);
    auto completed = std::make_shared<std::size_t>(0);
    auto top_up = [qp_tx, mr_tx, posted, completed, messages] {
        while (*posted < messages && *posted - *completed < 16) {
            if (!qp_tx->postSend(*posted, *mr_tx, 0, 1))
                break;
            ++*posted;
        }
    };
    top_up();
    apps::periodicReaper(prov_tx, 20 * sim::oneUs,
                         [cq_tx, completed, top_up,
                          messages]() -> bool {
                             verbs::Completion c;
                             while (cq_tx->poll(c)) {
                                 if (c.isSend)
                                     ++*completed;
                             }
                             top_up();
                             return *completed < messages;
                         });

    return bed.sim().runUntilCondition(
        [&] { return *received >= messages; },
        bed.sim().now() + 600 * sim::oneSec);
}

/** Registry path of a firmware stage's occupancy SampleStat. */
inline std::string
stagePath(nic::QpipNic &nic, nic::FwStage stage)
{
    return nic.fw().name() + ".stage." + nic::fwStageTag(stage);
}

/** Stage mean in microseconds from the stat registry (0 when empty). */
inline double
stageMeanUs(nic::QpipNic &nic, nic::FwStage stage)
{
    return statMean(nic.statRegistry(), stagePath(nic, stage));
}

inline Row
stageRow(const std::string &name, double paper, bool has_paper,
         nic::QpipNic &nic, nic::FwStage stage)
{
    Row r;
    r.name = name;
    r.paper = paper;
    r.hasPaper = has_paper;
    r.measured = stageMeanUs(nic, stage);
    r.unit = "us";
    r.simSeconds = 1e-4;
    r.counters["samples"] = static_cast<double>(
        statCount(nic.statRegistry(), stagePath(nic, stage)));
    return r;
}

} // namespace qpip::bench
