/**
 * @file
 * Figure 7: Network Block Device client performance — sequential
 * write then sequential read of the device over an ext2-like client
 * filesystem, for the three systems. Writes are flushed with 'sync';
 * the read phase runs against the server's (now warm) cache, as in
 * the paper where the 409 MB file fits the server's 1 GB of RAM.
 *
 * The paper gives ranges rather than bar values ("40% to 137%
 * throughput improvement at up to 133% better CPU effectiveness",
 * ">= 26% raw CPU for filesystem processing"); the per-bar paper
 * numbers below are read off the figure (approximate). Device size
 * defaults to the paper's 409 MB; set QPIP_NBD_MB to shrink it for
 * quick runs (throughput is size-invariant past ~64 MB).
 */

#include <cstdlib>

#include "apps/nbd.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::Row;

namespace {

std::uint64_t
deviceBytes()
{
    if (const char *env = std::getenv("QPIP_NBD_MB"))
        return static_cast<std::uint64_t>(std::atoi(env)) << 20;
    return std::uint64_t(409) << 20; // the paper's 409 MB
}

Row
row(const std::string &name, double paper_mbps, const NbdRunResult &r)
{
    Row out;
    out.name = name;
    out.paper = paper_mbps;
    out.measured = r.mbPerSec;
    out.unit = "MB/s";
    out.simSeconds = 0.001;
    out.counters["cpu_pct"] = r.clientCpuUtil * 100.0;
    out.counters["MB_per_cpu_s"] = r.mbPerCpuSec;
    out.counters["completed"] = r.completed ? 1.0 : 0.0;
    return out;
}

std::vector<Row>
build()
{
    const std::uint64_t bytes = deviceBytes();
    std::vector<Row> rows;

    {
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        ServerStore store(bed.sim(), "store", bytes);
        NbdSocketServer server(bed.host(1).stack(), store, {});
        rows.push_back(row(
            "IP/GigE write", 17,
            runNbdSocketsSequential(bed, 0, 1, true, bytes)));
        rows.push_back(row(
            "IP/GigE read", 33,
            runNbdSocketsSequential(bed, 0, 1, false, bytes)));
    }
    {
        SocketsTestbed bed(2, SocketsFabric::MyrinetIp);
        ServerStore store(bed.sim(), "store", bytes);
        NbdSocketServer server(bed.host(1).stack(), store, {});
        rows.push_back(row(
            "IP/Myrinet write", 25,
            runNbdSocketsSequential(bed, 0, 1, true, bytes)));
        rows.push_back(row(
            "IP/Myrinet read", 50,
            runNbdSocketsSequential(bed, 0, 1, false, bytes)));
    }
    {
        // The paper's QPIP NBD runs used a 9000-byte MTU.
        QpipTestbed bed(2, 9000);
        ServerStore store(bed.sim(), "store", bytes);
        NbdQpipServer server(bed.provider(1), store, {});
        rows.push_back(row("QPIP write", 40,
                           runNbdQpipSequential(bed, 0, 1, true,
                                                bytes)));
        rows.push_back(row("QPIP read", 70,
                           runNbdQpipSequential(bed, 0, 1, false,
                                                bytes)));
    }
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Figure 7: NBD client throughput and CPU"
                " effectiveness (sequential, write then read)",
                build)
