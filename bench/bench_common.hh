/**
 * @file
 * Shared harness for the paper-reproduction benches. Each bench binary
 * computes its rows by running full-system simulations, prints a
 * paper-vs-measured table, and registers one google-benchmark entry
 * per row (manual time = simulated duration, plus custom counters) so
 * the standard benchmark tooling/JSON output works too.
 */

#pragma once

// The standalone record-only benches (simspeed, qpscale, msgrate)
// define QPIP_BENCH_STANDALONE and link no benchmark library; they
// get only the knob/best-of-N/stat helpers below.
#ifndef QPIP_BENCH_STANDALONE
#include <benchmark/benchmark.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/stat_registry.hh"

namespace qpip::bench {

/** Positive integer env knob, or @p fallback when unset/invalid. */
inline std::size_t
envKnob(const char *name, std::size_t fallback)
{
    if (const char *env = std::getenv(name)) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    return fallback;
}

/**
 * Interleaved best-of-N repetition for the record-only benches. Runs
 * @p run(i) for every point i once per rep, rep-major (rep 0 of every
 * point, then rep 1, ...), so page-cache and allocator warm-up is
 * spread evenly across the sweep instead of flattering whichever
 * point ran last. @p same_sim compares the *simulated* fields of two
 * reps of one point — they must replay identically, and a mismatch
 * aborts the bench (exit 1) because a nondeterministic simulation
 * invalidates every recorded number. @p fold_wall merges a later
 * rep's wall-clock columns into the kept point (typically min);
 * @p label names a point for the abort diagnostic.
 */
template <typename Run, typename SameSim, typename FoldWall,
          typename Label>
auto
bestOfN(std::size_t n_points, std::size_t reps, Run &&run,
        SameSim &&same_sim, FoldWall &&fold_wall, Label &&label)
    -> std::vector<decltype(run(std::size_t{0}))>
{
    std::vector<decltype(run(std::size_t{0}))> points(n_points);
    for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < n_points; ++i) {
            auto p = run(i);
            if (rep == 0) {
                points[i] = std::move(p);
                continue;
            }
            if (!same_sim(points[i], p)) {
                std::fprintf(stderr,
                             "nondeterministic point %s across reps\n",
                             label(p).c_str());
                std::exit(1);
            }
            fold_wall(points[i], p);
        }
    }
    return points;
}

/** Counter value by registry path (0 when absent). */
inline double
statValue(const sim::StatRegistry &stats, const std::string &path)
{
    return static_cast<double>(stats.counterValue(path));
}

/** SampleStat mean by registry path (0 when absent or empty). */
inline double
statMean(const sim::StatRegistry &stats, const std::string &path)
{
    const sim::SampleStat *s = stats.sample(path);
    return (s != nullptr && s->count() > 0) ? s->mean() : 0.0;
}

/** SampleStat sample count by registry path (0 when absent). */
inline std::uint64_t
statCount(const sim::StatRegistry &stats, const std::string &path)
{
    const sim::SampleStat *s = stats.sample(path);
    return s != nullptr ? s->count() : 0;
}

/** One result row: a bar in a figure or a line in a table. */
struct Row
{
    std::string name;
    /** The paper's reported value (NaN if the paper gives no number). */
    double paper = 0.0;
    bool hasPaper = true;
    double measured = 0.0;
    std::string unit;
    /** Simulated duration backing the measurement (for benchmark). */
    double simSeconds = 1e-3;
    std::map<std::string, double> counters;
};

inline void
printTable(const std::string &title, const std::vector<Row> &rows)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-34s %12s %12s %8s\n", "case", "paper", "measured",
                "unit");
    for (const auto &r : rows) {
        if (r.hasPaper) {
            std::printf("%-34s %12.2f %12.2f %8s", r.name.c_str(),
                        r.paper, r.measured, r.unit.c_str());
        } else {
            std::printf("%-34s %12s %12.2f %8s", r.name.c_str(), "-",
                        r.measured, r.unit.c_str());
        }
        for (const auto &[k, v] : r.counters)
            std::printf("  %s=%.3g", k.c_str(), v);
        std::printf("\n");
    }
    std::printf("\n");
}

#ifndef QPIP_BENCH_STANDALONE

inline void
registerRows(const std::vector<Row> &rows)
{
    for (const auto &row : rows) {
        benchmark::RegisterBenchmark(
            row.name.c_str(),
            [row](benchmark::State &state) {
                for (auto _ : state)
                    state.SetIterationTime(row.simSeconds);
                state.counters["measured_" + row.unit] = row.measured;
                if (row.hasPaper)
                    state.counters["paper_" + row.unit] = row.paper;
                for (const auto &[k, v] : row.counters)
                    state.counters[k] = v;
            })
            ->Iterations(1)
            ->UseManualTime();
    }
}

/** Standard main body for a bench binary. */
inline int
benchMain(int argc, char **argv, const std::string &title,
          std::vector<Row> (*build)())
{
    auto rows = build();
    printTable(title, rows);
    registerRows(rows);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

#endif // QPIP_BENCH_STANDALONE

} // namespace qpip::bench

#ifndef QPIP_BENCH_STANDALONE
#define QPIP_BENCH_MAIN(title, build)                                  \
    int main(int argc, char **argv)                                    \
    {                                                                   \
        return qpip::bench::benchMain(argc, argv, title, build);        \
    }
#endif
