/**
 * @file
 * Table 1: host overhead for the transmit and receive paths of a
 * 1-byte TCP message.
 *
 *  - Host-based IP: measured as the paper does — round trips through
 *    the loopback interface; one message crosses the send path and
 *    the receive path once, so per-message overhead is the host CPU
 *    time per loopback half-round-trip.
 *  - QPIP: directly timing the communication methods from user space:
 *    the CPU cycles consumed by PostSend() plus a successful Poll().
 */

#include "apps/testbed.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::Row;

namespace {

constexpr double hostMhz = 550.0;

/** Host-based: loopback TCP echo, CPU time per message. */
Row
hostLoopbackRow()
{
    SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
    auto &stack = bed.host(0).stack();
    auto cfg = bed.tcpConfig();
    cfg.noDelay = true;

    std::shared_ptr<host::TcpSocket> srv;
    auto echo = std::make_shared<
        std::function<void(std::shared_ptr<host::TcpSocket>)>>();
    *echo = [echo](std::shared_ptr<host::TcpSocket> s) {
        s->recvExact(1, [echo, s](std::vector<std::uint8_t> d) {
            if (d.empty())
                return;
            s->sendAll(std::move(d), [echo, s] { (*echo)(s); });
        });
    };
    stack.tcpListen(7, cfg,
                    [&, echo](std::shared_ptr<host::TcpSocket> s) {
                        srv = s;
                        (*echo)(s);
                    });
    auto cli = stack.tcpConnect(bed.addr(0, 31000), bed.addr(0, 7),
                                cfg, nullptr);
    bed.sim().runUntilCondition([&] { return cli->connected(); },
                                5 * sim::oneSec);

    const int warmup = 8, iters = 256;
    int done = 0;
    sim::Tick busy0 = 0;
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [&, loop] {
        if (done == warmup)
            busy0 = bed.host(0).cpu().busyTotal();
        if (done >= warmup + iters)
            return;
        ++done;
        cli->sendAll({0x5a}, [] {});
        cli->recvExact(1, [&, loop](std::vector<std::uint8_t>) {
            (*loop)();
        });
    };
    (*loop)();
    bed.sim().runUntilCondition([&] { return done >= warmup + iters; },
                                60 * sim::oneSec);
    const sim::Tick busy = bed.host(0).cpu().busyTotal() - busy0;
    // Each iteration is 2 messages (request + echo), each crossing
    // one send path and one receive path on this host.
    const double us_per_msg =
        sim::ticksToUs(busy) / (2.0 * static_cast<double>(iters));

    Row r;
    r.name = "Host-based IP (loopback)";
    r.paper = 29.9;
    r.measured = us_per_msg;
    r.unit = "us";
    r.simSeconds = sim::ticksToSec(busy);
    r.counters["cycles"] = us_per_msg * hostMhz;
    r.counters["paper_cycles"] = 16445;
    return r;
}

/** QPIP: cycles consumed by PostSend + successful Poll. */
Row
qpipVerbsRow()
{
    QpipTestbed bed(2);
    auto &prov0 = bed.provider(0);
    auto &prov1 = bed.provider(1);
    auto cq0 = prov0.createCq();
    auto cq1 = prov1.createCq();
    std::vector<std::uint8_t> b0(64), b1(64);
    auto mr0 = prov0.registerMemory(b0);
    auto mr1 = prov1.registerMemory(b1);
    verbs::Acceptor acc(prov1, 7, cq1, cq1);
    std::shared_ptr<verbs::QueuePair> qp1;
    acc.acceptOne([&](std::shared_ptr<verbs::QueuePair> q) {
        qp1 = q;
    });
    auto qp0 = prov0.createQp(nic::QpType::ReliableTcp, cq0, cq0);
    bool connected = false;
    qp0->connect(bed.addr(1, 7), [&](bool ok) { connected = ok; });
    bed.sim().runUntilCondition([&] { return connected && qp1; },
                                10 * sim::oneSec);

    // Echo server: repost + reply on every message.
    qp1->postRecv(1, *mr1, 0, 1);
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [&, pump] {
        verbs::Completion c;
        while (cq1->poll(c)) {
            if (!c.isSend) {
                qp1->postSend(2, *mr1, 0, 1);
                qp1->postRecv(1, *mr1, 0, 1);
            }
        }
        bed.sim().eventQueue().scheduleIn(10 * sim::oneUs,
                                          [pump] { (*pump)(); });
    };
    (*pump)();

    auto &cpu = bed.host(0).cpu();
    const int iters = 256;
    sim::Tick post_busy = 0, poll_busy = 0;
    int polls = 0;
    for (int i = 0; i < iters; ++i) {
        qp0->postRecv(1, *mr0, 0, 1);
        sim::Tick b = cpu.busyTotal();
        qp0->postSend(2, *mr0, 0, 1);
        post_busy += cpu.busyTotal() - b;
        // Run until the echo lands, then time one successful poll
        // (plus the empty polls a spinning caller would issue are
        // not counted — matching "directly timing the methods").
        int got = 0;
        bed.sim().runUntilCondition(
            [&] { return cq0->depth() >= 2; },
            bed.sim().now() + sim::oneSec);
        verbs::Completion c;
        while (cq0->depth() > 0) {
            b = cpu.busyTotal();
            if (cq0->poll(c)) {
                poll_busy += cpu.busyTotal() - b;
                ++polls;
                ++got;
            }
        }
        (void)got;
    }
    // Per message: one PostSend + one successful Poll.
    const double us = sim::ticksToUs(post_busy + poll_busy / 2) /
                      static_cast<double>(iters);
    Row r;
    r.name = "QPIP (PostSend + Poll)";
    r.paper = 2.5;
    r.measured = us;
    r.unit = "us";
    r.simSeconds = 1e-3;
    r.counters["cycles"] = us * hostMhz;
    r.counters["paper_cycles"] = 1386;
    return r;
}

std::vector<Row>
build()
{
    return {hostLoopbackRow(), qpipVerbsRow()};
}

} // namespace

QPIP_BENCH_MAIN("Table 1: host overhead, 1-byte TCP message", build)
