/**
 * @file
 * Figure 3: application-to-application round-trip time of a 1-byte
 * message, UDP and TCP, for the three systems. The paper reports the
 * emulated-hardware-checksum QPIP numbers in the figure and gives the
 * firmware-checksum values in the text (73 us UDP, 113 us TCP); the
 * figure's host-stack bars are read off the chart (approximate).
 */

#include "apps/pingpong.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::Row;

namespace {

constexpr std::size_t iterations = 400;

Row
row(const std::string &name, double paper, bool has_paper,
    const PingPongResult &r)
{
    Row out;
    out.name = name;
    out.paper = paper;
    out.hasPaper = has_paper;
    out.measured = r.rttUs;
    out.unit = "us";
    out.simSeconds = r.rttUs * 1e-6 * static_cast<double>(r.iterations);
    out.counters["iters"] = static_cast<double>(r.iterations);
    return out;
}

std::vector<Row>
build()
{
    std::vector<Row> rows;
    {
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        rows.push_back(row("IP/GigE UDP", 105, true,
                           runSocketUdpPingPong(bed, iterations)));
    }
    {
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        rows.push_back(row("IP/GigE TCP", 118, true,
                           runSocketTcpPingPong(bed, iterations)));
    }
    {
        SocketsTestbed bed(2, SocketsFabric::MyrinetIp);
        rows.push_back(row("IP/Myrinet UDP", 110, true,
                           runSocketUdpPingPong(bed, iterations)));
    }
    {
        SocketsTestbed bed(2, SocketsFabric::MyrinetIp);
        rows.push_back(row("IP/Myrinet TCP", 125, true,
                           runSocketTcpPingPong(bed, iterations)));
    }
    {
        QpipTestbed bed(2);
        rows.push_back(row("QPIP UDP (emulated hw cksum)", 60, true,
                           runQpipUdpPingPong(bed, iterations)));
    }
    {
        QpipTestbed bed(2);
        rows.push_back(row("QPIP TCP (emulated hw cksum)", 100, true,
                           runQpipTcpPingPong(bed, iterations)));
    }
    {
        nic::QpipNicParams p;
        p.costs = nic::lanai9FirmwareCosts();
        QpipTestbed bed(2, qpipNativeMtu, 1, p);
        rows.push_back(row("QPIP UDP (firmware cksum)", 73, true,
                           runQpipUdpPingPong(bed, iterations)));
    }
    {
        nic::QpipNicParams p;
        p.costs = nic::lanai9FirmwareCosts();
        QpipTestbed bed(2, qpipNativeMtu, 1, p);
        rows.push_back(row("QPIP TCP (firmware cksum)", 113, true,
                           runQpipTcpPingPong(bed, iterations)));
    }
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Figure 3: application-to-application RTT (1-byte)",
                build)
