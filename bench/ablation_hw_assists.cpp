/**
 * @file
 * Ablation: the hardware-assist knobs section 5.2 names as the key
 * acceleration targets for a production QPIP interface — receive
 * checksums, a hardware multiplier (the RTT-estimator math), the
 * doorbell FIFO and connection demultiplexing — plus the full
 * "Infiniband-grade" design point. Each row reports 1-byte TCP RTT
 * and 16 KB ttcp throughput under one configuration.
 */

#include "apps/pingpong.hh"
#include "apps/ttcp.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::Row;

namespace {

Row
runConfig(const std::string &name, const nic::FirmwareCostModel &costs)
{
    nic::QpipNicParams params;
    params.costs = costs;

    double rtt_us = 0.0;
    {
        QpipTestbed bed(2, qpipNativeMtu, 1, params);
        rtt_us = runQpipTcpPingPong(bed, 200).rttUs;
    }
    TtcpResult t;
    {
        QpipTestbed bed(2, qpipNativeMtu, 1, params);
        t = runQpipTtcp(bed, std::size_t(10) << 20);
    }

    Row r;
    r.name = name;
    r.hasPaper = false;
    r.measured = rtt_us;
    r.unit = "us";
    r.simSeconds = t.elapsedMs * 1e-3;
    r.counters["ttcp_MBps"] = t.mbPerSec;
    return r;
}

std::vector<Row>
build()
{
    std::vector<Row> rows;

    rows.push_back(runConfig("prototype (fw rx cksum)",
                             nic::lanai9FirmwareCosts()));
    rows.push_back(runConfig("+ hw rx checksum",
                             nic::lanai9EmulatedHwChecksum()));
    {
        auto c = nic::lanai9EmulatedHwChecksum();
        c.hwMultiply = true;
        rows.push_back(runConfig("+ hw multiply", c));
    }
    {
        auto c = nic::lanai9EmulatedHwChecksum();
        c.hwMultiply = true;
        c.hwDemux = true;
        rows.push_back(runConfig("+ hw demux", c));
    }
    {
        auto c = nic::lanai9EmulatedHwChecksum();
        c.hwDoorbell = false; // ablate the doorbell FIFO *away*
        rows.push_back(runConfig("- hw doorbell (sw poll)", c));
    }
    rows.push_back(runConfig("Infiniband-grade hardware",
                             nic::infinibandGradeCosts()));
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Ablation: hardware assists (RTT us; ttcp MB/s as"
                " counter)",
                build)
