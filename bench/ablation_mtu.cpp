/**
 * @file
 * Ablation: QPIP ttcp throughput across a fine MTU grid — extending
 * Figure 4's three QPIP points to show where end-to-end fragmentation
 * stops hurting (the per-fragment firmware costs amortize away as the
 * MTU approaches the 16 KB message size).
 */

#include "apps/ttcp.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::Row;

namespace {

std::vector<Row>
build()
{
    std::vector<Row> rows;
    for (std::uint32_t mtu :
         {1500u, 3000u, 4500u, 6000u, 9000u, 12000u, qpipNativeMtu}) {
        QpipTestbed bed(2, mtu);
        auto t = runQpipTtcp(bed, std::size_t(10) << 20);
        Row r;
        r.name = "QPIP ttcp, mtu=" + std::to_string(mtu);
        r.hasPaper = false;
        r.measured = t.mbPerSec;
        r.unit = "MB/s";
        r.simSeconds = t.elapsedMs * 1e-3;
        r.counters["tx_cpu_pct"] = t.txCpuUtil * 100.0;
        rows.push_back(r);
    }
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Ablation: QPIP throughput vs MTU", build)
