/**
 * @file
 * Table 3: receive-side network-interface processing costs per stage.
 * Data receives are measured on the receiver NIC; ACK receives on the
 * sender NIC, whose "TCP Parse" carries the software-multiply RTT
 * estimator penalty of the multiplier-less LANai 9 and whose "Update"
 * writes back both the WR status and QP state.
 */

#include "occupancy_common.hh"

using namespace qpip;
using namespace qpip::bench;
using nic::FwStage;

namespace {

std::vector<Row>
build()
{
    apps::QpipTestbed bed(2);
    if (!runOccupancyWorkload(bed, 400))
        sim::fatal("table3 workload did not complete");
    auto &tx_nic = bed.nicOf(0); // receives ACKs
    auto &rx_nic = bed.nicOf(1); // receives data

    std::vector<Row> rows;
    rows.push_back(stageRow("Data: Doorbell Process", 1.0, true,
                            rx_nic, FwStage::DoorbellProcess));
    rows.push_back(stageRow("Data: Media Rcv", 1.0, true, rx_nic,
                            FwStage::MediaRcv));
    rows.push_back(stageRow("Data: IP Parse", 1.5, true, rx_nic,
                            FwStage::IpParse));
    rows.push_back(stageRow("Data: TCP Parse", 7.0, true, rx_nic,
                            FwStage::TcpParse));
    rows.push_back(
        stageRow("Data: Get WR", 5.5, true, rx_nic, FwStage::GetWr));
    rows.push_back(stageRow("Data: Put Data", 4.5, true, rx_nic,
                            FwStage::PutData));
    rows.push_back(stageRow("Data: Update", 1.5, true, rx_nic,
                            FwStage::UpdateRx));

    rows.push_back(stageRow("ACK: Doorbell Process", 1.0, true,
                            tx_nic, FwStage::DoorbellProcess));
    rows.push_back(stageRow("ACK: Media Rcv", 1.0, true, tx_nic,
                            FwStage::MediaRcv));
    rows.push_back(stageRow("ACK: IP Parse", 1.5, true, tx_nic,
                            FwStage::IpParse));
    rows.push_back(stageRow("ACK: TCP Parse (sw multiply)", 14.0, true,
                            tx_nic, FwStage::TcpParse));
    rows.push_back(stageRow("ACK: Update (WR + QP state)", 9.0, true,
                            tx_nic, FwStage::UpdateRx));
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Table 3: receive-side NI processing costs (us)",
                build)
