/**
 * @file
 * Table 2: transmit-side network-interface processing costs per
 * stage, for data sends (sender NIC) and ACK sends (receiver NIC),
 * measured exactly as the paper did — from the firmware processor's
 * per-stage occupancy instrumentation during 1-byte message traffic.
 */

#include "occupancy_common.hh"

using namespace qpip;
using namespace qpip::bench;
using nic::FwStage;

namespace {

std::vector<Row>
build()
{
    apps::QpipTestbed bed(2);
    if (!runOccupancyWorkload(bed, 400))
        sim::fatal("table2 workload did not complete");
    auto &tx_nic = bed.nicOf(0); // data sends
    auto &rx_nic = bed.nicOf(1); // ACK sends

    std::vector<Row> rows;
    rows.push_back(stageRow("Data: Doorbell Process", 1.0, true,
                            tx_nic, FwStage::DoorbellProcess));
    rows.push_back(
        stageRow("Data: Schedule", 2.0, true, tx_nic,
                 FwStage::Schedule));
    rows.push_back(
        stageRow("Data: Get WR", 5.5, true, tx_nic, FwStage::GetWr));
    rows.push_back(stageRow("Data: Get Data", 4.5, true, tx_nic,
                            FwStage::GetData));
    rows.push_back(stageRow("Data: Build TCP Hdr", 5.0, true, tx_nic,
                            FwStage::BuildTcpHdr));
    rows.push_back(stageRow("Data: Build IP Hdr", 1.0, true, tx_nic,
                            FwStage::BuildIpHdr));
    rows.push_back(
        stageRow("Data: Send", 1.0, true, tx_nic, FwStage::MediaSend));
    rows.push_back(stageRow("Data: Update", 1.5, true, tx_nic,
                            FwStage::UpdateTx));

    rows.push_back(stageRow("ACK: Doorbell Process", 1.0, true,
                            rx_nic, FwStage::DoorbellProcess));
    rows.push_back(
        stageRow("ACK: Schedule", 2.0, true, rx_nic, FwStage::Schedule));
    rows.push_back(stageRow("ACK: Build TCP Hdr", 5.0, true, rx_nic,
                            FwStage::BuildTcpHdr));
    rows.push_back(stageRow("ACK: Build IP Hdr", 1.0, true, rx_nic,
                            FwStage::BuildIpHdr));
    rows.push_back(
        stageRow("ACK: Send", 1.0, true, rx_nic, FwStage::MediaSend));
    rows.push_back(stageRow("ACK: Update", 1.5, true, rx_nic,
                            FwStage::UpdateTx));
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Table 2: transmit-side NI processing costs (us)",
                build)
