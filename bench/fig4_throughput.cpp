/**
 * @file
 * Figure 4: ttcp application throughput and CPU utilization — a 10 MB
 * transfer in 16 KB chunks with TCP_NODELAY, native MTUs, plus the
 * QPIP MTU sweep and firmware-checksum variant the paper reports in
 * the text. CPU utilization is the transmitting host's (the receiver
 * is reported as a counter).
 */

#include <cstdlib>

#include "apps/ttcp.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::Row;

namespace {

std::size_t
transferBytes()
{
    if (const char *env = std::getenv("QPIP_TTCP_MB"))
        return static_cast<std::size_t>(std::atoi(env)) << 20;
    return std::size_t(10) << 20; // the paper's 10 MB
}

Row
row(const std::string &name, double paper_mbps, const TtcpResult &r)
{
    Row out;
    out.name = name;
    out.paper = paper_mbps;
    out.measured = r.mbPerSec;
    out.unit = "MB/s";
    out.simSeconds = r.elapsedMs * 1e-3;
    out.counters["tx_cpu_pct"] = r.txCpuUtil * 100.0;
    out.counters["rx_cpu_pct"] = r.rxCpuUtil * 100.0;
    return out;
}

std::vector<Row>
build()
{
    const std::size_t bytes = transferBytes();
    std::vector<Row> rows;
    {
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        rows.push_back(
            row("IP/GigE (1500 MTU)", 45.4, runSocketsTtcp(bed, bytes)));
    }
    {
        SocketsTestbed bed(2, SocketsFabric::MyrinetIp);
        rows.push_back(row("IP/Myrinet (9000 MTU)", 60.0,
                           runSocketsTtcp(bed, bytes)));
    }
    {
        QpipTestbed bed(2, qpipNativeMtu);
        rows.push_back(
            row("QPIP (native 16K MTU)", 75.6, runQpipTtcp(bed, bytes)));
    }
    {
        QpipTestbed bed(2, 9000);
        rows.push_back(
            row("QPIP (9000 MTU)", 70.1, runQpipTtcp(bed, bytes)));
    }
    {
        QpipTestbed bed(2, 1500);
        rows.push_back(
            row("QPIP (1500 MTU)", 35.4, runQpipTtcp(bed, bytes)));
    }
    {
        nic::QpipNicParams p;
        p.costs = nic::lanai9FirmwareCosts();
        QpipTestbed bed(2, qpipNativeMtu, 1, p);
        rows.push_back(row("QPIP (firmware cksum, 16K)", 26.4,
                           runQpipTtcp(bed, bytes)));
    }
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Figure 4: ttcp throughput and CPU utilization (10 MB,"
                " 16 KB chunks, NODELAY)",
                build)
