/**
 * @file
 * Ablation: loss sensitivity of the message-per-segment mapping. The
 * paper accepts that "TCP segments are arbitrarily sized and
 * performance could suffer if subsequent IP fragments are lost" —
 * acceptable because SAN loss is rare. This bench injects packet loss
 * on the fabric links and sweeps the MTU: at small MTUs a 16 KB
 * message rides 12 fragments, so the per-message loss probability is
 * ~12x the per-packet rate and every loss costs a whole-message
 * retransmission.
 */

#include "apps/ttcp.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::Row;

namespace {

Row
runPoint(std::uint32_t mtu, double loss)
{
    QpipTestbed bed(2, mtu);
    bed.fabric().linkFor(0).faults().config.dropProb = loss;
    bed.fabric().linkFor(1).faults().config.dropProb = loss;
    auto t = runQpipTtcp(bed, std::size_t(4) << 20);
    Row r;
    r.name = "mtu=" + std::to_string(mtu) +
             " loss=" + std::to_string(loss);
    r.hasPaper = false;
    r.measured = t.mbPerSec;
    r.unit = "MB/s";
    r.simSeconds = t.elapsedMs * 1e-3;
    r.counters["completed"] = t.completed ? 1 : 0;
    return r;
}

std::vector<Row>
build()
{
    std::vector<Row> rows;
    for (std::uint32_t mtu : {1500u, 9000u, qpipNativeMtu}) {
        for (double loss : {0.0, 1e-3, 1e-2}) {
            rows.push_back(runPoint(mtu, loss));
        }
    }
    return rows;
}

} // namespace

QPIP_BENCH_MAIN("Ablation: packet loss vs message-per-segment mapping",
                build)
