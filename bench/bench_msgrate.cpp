/**
 * @file
 * Small-message rate benchmark: completions per simulated second with
 * and without the batching path — chained posts (postSendList), the
 * doorbell coalescing window and completion-event moderation — across
 * 64..512-byte messages on the RC and RUD transports.
 *
 * The unbatched arm is the paper's per-post discipline: one doorbell
 * ring, one DoorbellProcess pass and one Schedule pass per WR, one
 * host notification per completion. The batched arm posts chains of
 * QPIP_MSGRATE_CHAIN WRs with a single batch doorbell (the FSM pays
 * the full pass once plus doorbellPerWr per extra WR and one Schedule
 * for the run), folds back-to-back singleton rings inside the
 * coalescing window, and lets an armed CQ accumulate CQEs before the
 * notify upcall. At these sizes the serialized 133 MHz firmware is
 * the bottleneck, so the saved per-WR doorbell/schedule occupancy
 * shows up directly as message rate.
 *
 * Output is a JSON report (default ./BENCH_msgrate.json, override
 * with --out=<path>) carrying the doorbell and CQ-moderation counters
 * alongside each rate. Knobs: QPIP_MSGRATE_MSGS (messages per point,
 * default 8192), QPIP_MSGRATE_CHAIN (chain length, default 16).
 * Everything simulated is seed-1 deterministic; wall time is a
 * convenience column only.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"
#include "bench_common.hh"

using namespace qpip;
using namespace qpip::apps;
using qpip::bench::envKnob;

namespace {

struct Point
{
    const char *transport = "rc";
    bool batched = false;
    std::size_t msgBytes = 0;
    std::uint64_t messages = 0;
    std::size_t chain = 1;
    sim::Tick simTicks = 0;
    double completionsPerSimSec = 0.0;
    std::uint64_t dbRings = 0;
    std::uint64_t dbCoalesced = 0;
    std::uint64_t dbBatchedWrs = 0;
    std::uint64_t cqNotifies = 0;
    std::uint64_t cqCoalesced = 0;
    double wallSeconds = 0.0;
    bool completed = false;
};

/**
 * One sweep point: a single client QP streams @p messages of
 * @p msg_bytes to one server QP feeding an SRQ, with a bounded
 * outstanding window. The batched arm posts send chains of
 * @p chain WRs and replenishes the SRQ in equal chains; the
 * unbatched arm posts and replenishes one WR at a time.
 */
Point
runPoint(bool rud, bool batched, std::size_t msg_bytes,
         std::uint64_t messages, std::size_t chain)
{
    nic::QpipNicParams params;
    if (batched) {
        // ~2 us of 133 MHz cycles: wide enough to fold a burst of
        // back-to-back singleton rings (SRQ replenish, ack-driven
        // refills), narrow enough not to defer an isolated post.
        params.doorbellCoalesceCycles = 266;
        // Notify after 8 CQEs or ~10 us, whichever first.
        params.cqModerationCount = 8;
        params.cqModerationCycles = 1330;
    }
    QpipTestbed bed(2, qpipNativeMtu, 1, params);
    auto &client = bed.provider(0);
    auto &server = bed.provider(1);

    constexpr std::size_t srqDepth = 256;
    constexpr std::size_t window = 64; // outstanding sends

    auto scq = server.createCq(1 << 16);
    auto ccq = client.createCq(1 << 16);
    auto srq = server.createSrq(1 << 16);
    std::vector<std::uint8_t> rbuf(srqDepth * msg_bytes);
    std::vector<std::uint8_t> sbuf(msg_bytes);
    auto rmr = server.registerMemory(rbuf);
    auto smr = client.registerMemory(sbuf);

    std::uint64_t srqPosted = 0;
    const auto srqSlotOff = [&](std::uint64_t i) {
        return (i % srqDepth) * msg_bytes;
    };
    for (; srqPosted < srqDepth; ++srqPosted)
        srq->postRecv(srqPosted, *rmr, srqSlotOff(srqPosted),
                      msg_bytes);

    Point p;
    p.transport = rud ? "rud" : "rc";
    p.batched = batched;
    p.msgBytes = msg_bytes;
    p.messages = messages;
    p.chain = batched ? chain : 1;

    verbs::QpAttrs server_attrs;
    server_attrs.srq = srq;
    std::shared_ptr<verbs::QueuePair> serverQp;
    std::shared_ptr<verbs::QueuePair> clientQp;
    inet::SockAddr serverAddr;
    if (rud) {
        serverQp = server.createQp(nic::QpType::ReliableDatagram, scq,
                                   scq, server_attrs);
        serverQp->bind(800);
        serverAddr = bed.addr(1, 800);
        clientQp = client.createQp(nic::QpType::ReliableDatagram, ccq,
                                   ccq,
                                   verbs::QpAttrs{window, 0, nullptr, 0});
        clientQp->bind(2000);
        // Drain the create/bind management work before measuring.
        bed.sim().runFor(sim::oneSec);
    } else {
        verbs::Acceptor acc(server, 700, scq, scq);
        acc.acceptOne(
            [&](std::shared_ptr<verbs::QueuePair> q) {
                serverQp = std::move(q);
            },
            server_attrs);
        bool connected = false;
        clientQp = client.createQp(nic::QpType::ReliableTcp, ccq, ccq,
                                   verbs::QpAttrs{window, 0, nullptr, 0});
        clientQp->connect(bed.addr(1, 700),
                          [&](bool ok) { connected = ok; });
        if (!bed.sim().runUntilCondition(
                [&] { return connected && serverQp != nullptr; },
                bed.sim().now() + 600 * sim::oneSec)) {
            return p; // rendezvous stalled: report incomplete
        }
    }

    // Steady state starts here: count only the messaging phase.
    const auto &cdb = bed.nicOf(0).doorbells();
    const std::uint64_t dbRings0 = cdb.rings.value();
    const std::uint64_t dbCoalesced0 =
        cdb.coalesced.value() + bed.nicOf(1).doorbells().coalesced.value();
    const std::uint64_t dbBatched0 = cdb.batchedWrs.value();
    const std::uint64_t cqNotifies0 = bed.nicOf(0).cqNotifies.value() +
                                      bed.nicOf(1).cqNotifies.value();
    const std::uint64_t cqCoalesced0 =
        bed.nicOf(0).cqCoalesced.value() +
        bed.nicOf(1).cqCoalesced.value();
    const sim::Tick t0 = bed.sim().now();
    const auto wall0 = std::chrono::steady_clock::now();

    // Server: repost receive WRs as messages land — chained in the
    // batched arm, one at a time otherwise.
    std::uint64_t received = 0;
    std::uint64_t consumedSinceRepost = 0;
    waitLoop(*scq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        ++received;
        ++consumedSinceRepost;
        const std::size_t replenish = batched ? chain : 1;
        if (consumedSinceRepost >= replenish) {
            std::vector<verbs::RecvWrSpec> specs;
            specs.reserve(consumedSinceRepost);
            for (std::uint64_t i = 0; i < consumedSinceRepost; ++i) {
                specs.push_back({srqPosted, rmr.get(),
                                 srqSlotOff(srqPosted), msg_bytes});
                ++srqPosted;
            }
            if (batched) {
                srq->postRecvList(specs);
            } else {
                for (const auto &s : specs)
                    srq->postRecv(s.wrId, *s.mr, s.offset, s.length);
            }
            consumedSinceRepost = 0;
        }
    });

    // Client: keep up to `window` sends outstanding. The batched arm
    // tops up in chains through postSendList; the unbatched arm posts
    // one WR per send completion.
    std::uint64_t sent = 0;
    std::uint64_t inflight = 0;
    auto topUp = [&] {
        if (batched) {
            while (sent < messages && inflight + chain <= window) {
                const std::size_t run = static_cast<std::size_t>(
                    std::min<std::uint64_t>(chain, messages - sent));
                std::vector<verbs::SendWrSpec> specs;
                specs.reserve(run);
                for (std::size_t i = 0; i < run; ++i)
                    specs.push_back({sent + i, smr.get(), 0, msg_bytes,
                                     serverAddr});
                if (!clientQp->postSendList(specs)) {
                    std::fprintf(stderr, "chained post overflow\n");
                    std::exit(1);
                }
                sent += run;
                inflight += run;
            }
            return;
        }
        while (sent < messages && inflight < window) {
            if (!clientQp->postSend(sent, *smr, 0, msg_bytes,
                                    serverAddr)) {
                std::fprintf(stderr, "send ring overflow\n");
                std::exit(1);
            }
            ++sent;
            ++inflight;
        }
    };
    waitLoop(*ccq, [&](verbs::Completion c) {
        if (!c.isSend)
            return;
        --inflight;
        topUp();
    });
    topUp();

    p.completed = bed.sim().runUntilCondition(
        [&] { return received >= messages; },
        bed.sim().now() + 36000 * sim::oneSec);

    const auto wall1 = std::chrono::steady_clock::now();
    p.simTicks = bed.sim().now() - t0;
    p.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    p.completionsPerSimSec =
        p.simTicks > 0
            ? static_cast<double>(received) /
                  (static_cast<double>(p.simTicks) /
                   static_cast<double>(sim::oneSec))
            : 0.0;
    p.dbRings = cdb.rings.value() - dbRings0;
    p.dbCoalesced = cdb.coalesced.value() +
                    bed.nicOf(1).doorbells().coalesced.value() -
                    dbCoalesced0;
    p.dbBatchedWrs = cdb.batchedWrs.value() - dbBatched0;
    p.cqNotifies = bed.nicOf(0).cqNotifies.value() +
                   bed.nicOf(1).cqNotifies.value() - cqNotifies0;
    p.cqCoalesced = bed.nicOf(0).cqCoalesced.value() +
                    bed.nicOf(1).cqCoalesced.value() - cqCoalesced0;
    return p;
}

void
writeJson(const std::vector<Point> &points, std::size_t chain,
          const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"benchmark\": \"msgrate\",\n");
    std::fprintf(f, "  \"chain\": %zu,\n", chain);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        std::fprintf(
            f,
            "    {\"transport\": \"%s\", \"batched\": %s, "
            "\"msgBytes\": %zu, \"completed\": %s, "
            "\"messages\": %llu, \"simTicks\": %llu, "
            "\"completionsPerSimSec\": %.0f, "
            "\"doorbells\": {\"rings\": %llu, \"coalesced\": %llu, "
            "\"batchedWrs\": %llu}, "
            "\"cq\": {\"notifies\": %llu, \"coalesced\": %llu}, "
            "\"wallSeconds\": %.3f}%s\n",
            p.transport, p.batched ? "true" : "false", p.msgBytes,
            p.completed ? "true" : "false",
            static_cast<unsigned long long>(p.messages),
            static_cast<unsigned long long>(p.simTicks),
            p.completionsPerSimSec,
            static_cast<unsigned long long>(p.dbRings),
            static_cast<unsigned long long>(p.dbCoalesced),
            static_cast<unsigned long long>(p.dbBatchedWrs),
            static_cast<unsigned long long>(p.cqNotifies),
            static_cast<unsigned long long>(p.cqCoalesced),
            p.wallSeconds, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_msgrate.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--out=", 6) == 0)
            out = argv[i] + 6;
    }
    const auto messages =
        static_cast<std::uint64_t>(envKnob("QPIP_MSGRATE_MSGS", 8192));
    const std::size_t chain = envKnob("QPIP_MSGRATE_CHAIN", 16);
    const std::size_t reps = envKnob("QPIP_MSGRATE_REPS", 3);

    struct Sweep
    {
        bool rud;
        bool batched;
        std::size_t bytes;
    };
    std::vector<Sweep> sweep;
    for (const bool rud : {false, true}) {
        for (const bool batched : {false, true}) {
            for (const std::size_t bytes : {64, 128, 256, 512})
                sweep.push_back({rud, batched, bytes});
        }
    }

    // Best-of-N, reps interleaved across points (see bench_common.hh).
    const auto points = qpip::bench::bestOfN(
        sweep.size(), reps,
        [&](std::size_t i) {
            return runPoint(sweep[i].rud, sweep[i].batched,
                            sweep[i].bytes, messages, chain);
        },
        [](const Point &a, const Point &b) {
            return a.simTicks == b.simTicks &&
                   a.completionsPerSimSec == b.completionsPerSimSec &&
                   a.dbRings == b.dbRings && a.cqNotifies == b.cqNotifies;
        },
        [](Point &kept, const Point &p) {
            kept.wallSeconds = std::min(kept.wallSeconds, p.wallSeconds);
        },
        [](const Point &p) {
            return std::string(p.transport) +
                   (p.batched ? "/batched/" : "/unbatched/") +
                   std::to_string(p.msgBytes);
        });

    std::printf("=== small-message rate, batched vs unbatched "
                "(chain %zu, %llu msgs/point, best of %zu) ===\n",
                chain, static_cast<unsigned long long>(messages),
                reps);
    std::printf("%5s %8s %9s %16s %9s %10s %11s %10s %10s\n", "arm",
                "batched", "bytes", "compl/simsec", "dbRings",
                "dbFolded", "batchedWrs", "notifies", "cqFolded");
    bool all_ok = true;
    for (const auto &p : points) {
        std::printf(
            "%5s %8s %9zu %16.0f %9llu %10llu %11llu %10llu "
            "%10llu%s\n",
            p.transport, p.batched ? "yes" : "no", p.msgBytes,
            p.completionsPerSimSec,
            static_cast<unsigned long long>(p.dbRings),
            static_cast<unsigned long long>(p.dbCoalesced),
            static_cast<unsigned long long>(p.dbBatchedWrs),
            static_cast<unsigned long long>(p.cqNotifies),
            static_cast<unsigned long long>(p.cqCoalesced),
            p.completed ? "" : "  [INCOMPLETE]");
        all_ok = all_ok && p.completed;
    }
    writeJson(points, chain, out);
    std::printf("\nwrote %s\n", out.c_str());
    return all_ok ? 0 : 1;
}
