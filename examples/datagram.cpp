/**
 * @file
 * Unreliable-datagram QPs and QP<->socket interoperation.
 *
 * Part 1: two UD queue pairs exchange best-effort messages (each QP
 * message is exactly one UDP datagram, no extra protocol layer).
 *
 * Part 2: the paper's interoperability claim — "communication can
 * occur between QPIP applications or QPIP and traditional (socket)
 * systems" — demonstrated by a QPIP node sending a UDP datagram that
 * a plain sockets host receives through its kernel stack, and vice
 * versa. The QPIP NIC and the host stack share the same wire format,
 * so nothing special is needed: just routes.
 */

#include <cstdio>
#include <cstring>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"
#include "nic/eth_nic.hh"

using namespace qpip;
using namespace qpip::apps;

namespace {

void
udQpPingPong()
{
    std::printf("--- UD queue pairs: datagram ping-pong ---\n");
    QpipTestbed bed(2);
    auto &sim = bed.sim();

    auto cq0 = bed.provider(0).createCq();
    auto cq1 = bed.provider(1).createCq();
    std::vector<std::uint8_t> b0(2048), b1(2048);
    auto mr0 = bed.provider(0).registerMemory(b0);
    auto mr1 = bed.provider(1).registerMemory(b1);
    auto qp0 =
        bed.provider(0).createQp(nic::QpType::UnreliableUdp, cq0, cq0);
    auto qp1 =
        bed.provider(1).createQp(nic::QpType::UnreliableUdp, cq1, cq1);
    qp0->bind(6000);
    qp1->bind(6001);

    // Node 1 echoes whatever arrives back to the sender's address.
    qp1->postRecv(1, *mr1, 0, 2048);
    spinLoop(bed.provider(1), *cq1, [&](verbs::Completion c) {
        if (!c.isSend) {
            std::printf("[node1] got %zu bytes from %s, echoing\n",
                        c.byteLen, c.from.toString().c_str());
            qp1->postSend(2, *mr1, 0, c.byteLen, c.from);
        }
    });

    const char msg[] = "best effort, no connection";
    std::memcpy(b0.data() + 1024, msg, sizeof(msg));
    qp0->postRecv(3, *mr0, 0, 1024);
    qp0->postSend(4, *mr0, 1024, sizeof(msg), bed.addr(1, 6001));

    bool echoed = false;
    spinLoop(bed.provider(0), *cq0, [&](verbs::Completion c) {
        if (!c.isSend) {
            std::printf("[node0] echo arrived: \"%s\"\n",
                        reinterpret_cast<const char *>(b0.data()));
            echoed = true;
        }
    });
    sim.runUntilCondition([&] { return echoed; },
                          sim.now() + 5 * sim::oneSec);
}

void
qpToSocketInterop()
{
    std::printf("\n--- QP <-> socket interop over one fabric ---\n");
    // Hand-built testbed: node 0 is a QPIP host, node 1 a plain
    // sockets host with the kernel stack — both on a Myrinet star.
    sim::Simulation sim(7);
    net::StarFabric fabric(sim, "fabric", net::myrinetLink(9000));
    net::Link &l0 = fabric.addNode(0);
    net::Link &l1 = fabric.addNode(1);

    auto qpip_addr = *inet::InetAddr::parse("fd00::1");
    auto sock_addr = *inet::InetAddr::parse("fd00::2");

    host::Host h0(sim, "qpip_host");
    nic::QpipNic qnic(sim, "qpip_host.nic", l0, 0, {});
    qnic.setAddress(qpip_addr);
    qnic.routes().add(sock_addr, 1);
    verbs::Provider prov(h0, qnic);

    host::Host h1(sim, "sock_host");
    nic::EthNic enic(sim, "sock_host.nic", h1.stack(), l1, 1,
                     nic::gmIpParams());
    h1.stack().addAddress(sock_addr);
    h1.stack().routes().add(qpip_addr, 0);

    // Sockets side: bind a UDP socket and echo.
    auto usock =
        h1.stack().udpBind(inet::SockAddr{sock_addr, 9999});
    usock->recvFrom([&](host::UdpSocket::Datagram d) {
        std::printf("[sockets] kernel stack got %zu bytes from %s\n",
                    d.data.size(), d.from.toString().c_str());
        usock->sendTo(std::move(d.data), d.from, nullptr);
    });

    // QPIP side: UD QP sends to the socket's port.
    auto cq = prov.createCq();
    std::vector<std::uint8_t> buf(1024);
    auto mr = prov.registerMemory(buf);
    auto qp = prov.createQp(nic::QpType::UnreliableUdp, cq, cq);
    qp->bind(6000);
    const char msg[] = "from a queue pair to a socket";
    std::memcpy(buf.data() + 512, msg, sizeof(msg));
    qp->postRecv(1, *mr, 0, 512);
    qp->postSend(2, *mr, 512, sizeof(msg),
                 inet::SockAddr{sock_addr, 9999});

    bool replied = false;
    spinLoop(prov, *cq, [&](verbs::Completion c) {
        if (!c.isSend) {
            std::printf("[qpip] reply landed in posted buffer: "
                        "\"%s\" (from %s)\n",
                        reinterpret_cast<const char *>(buf.data()),
                        c.from.toString().c_str());
            replied = true;
        }
    });
    sim.runUntilCondition([&] { return replied; },
                          sim.now() + 5 * sim::oneSec);
    sim.eventQueue().clear();
}

} // namespace

int
main()
{
    udQpPingPong();
    qpToSocketInterop();
    std::printf("\nok\n");
    return 0;
}
