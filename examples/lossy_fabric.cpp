/**
 * @file
 * The offloaded transport riding through induced faults: a reliable
 * QP transfer over a fabric that randomly drops, duplicates and
 * corrupts packets. The firmware TCP retransmits through all of it
 * and the posted buffers come out bit-exact — the "wealth of
 * understanding and services" of inter-network protocols the paper
 * brings to the SAN.
 *
 *   $ ./lossy_fabric [drop_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"

using namespace qpip;
using namespace qpip::apps;

int
main(int argc, char **argv)
{
    const double drop =
        (argc > 1 ? std::atof(argv[1]) : 2.0) / 100.0;
    QpipTestbed bed(2, 9000, /*seed=*/42);
    for (int node = 0; node < 2; ++node) {
        auto &faults = bed.fabric().linkFor(node).faults();
        faults.config.dropProb = drop;
        faults.config.dupProb = drop / 4;
        faults.config.corruptProb = drop / 4;
    }
    std::printf("fabric faults: drop=%.1f%% dup=%.2f%% corrupt=%.2f%%\n",
                drop * 100, drop * 25, drop * 25);

    auto &sim = bed.sim();
    constexpr std::size_t nMsgs = 64;
    constexpr std::size_t msgBytes = 20000; // fragments across the MTU

    // Receiver.
    auto rcq = bed.provider(1).createCq();
    std::vector<std::uint8_t> rbuf(msgBytes);
    auto rmr = bed.provider(1).registerMemory(rbuf);
    verbs::Acceptor acceptor(bed.provider(1), 7, rcq, rcq);
    std::size_t received = 0, corrupt = 0;
    std::shared_ptr<verbs::QueuePair> rqp;
    acceptor.acceptOne([&](std::shared_ptr<verbs::QueuePair> qp) {
        rqp = qp;
        qp->postRecv(1, *rmr, 0, msgBytes);
    });
    waitLoop(*rcq, [&](verbs::Completion c) {
        if (c.isSend)
            return;
        // Verify the payload of every delivered message.
        const auto tag = static_cast<std::uint8_t>(received);
        for (std::size_t i = 0; i < c.byteLen; ++i) {
            if (rbuf[i] != static_cast<std::uint8_t>(tag + i * 7)) {
                ++corrupt;
                break;
            }
        }
        ++received;
        rqp->postRecv(1, *rmr, 0, msgBytes);
    });

    // Sender: keep a few messages in flight.
    auto scq = bed.provider(0).createCq();
    std::vector<std::uint8_t> sbuf(msgBytes);
    auto smr = bed.provider(0).registerMemory(sbuf);
    auto sqp = bed.provider(0).createQp(nic::QpType::ReliableTcp, scq,
                                        scq, 16, 4);
    std::size_t posted = 0, acked = 0;
    auto post_next = [&] {
        if (posted >= nMsgs)
            return;
        const auto tag = static_cast<std::uint8_t>(posted);
        for (std::size_t i = 0; i < msgBytes; ++i)
            sbuf[i] = static_cast<std::uint8_t>(tag + i * 7);
        sqp->postSend(posted, *smr, 0, msgBytes);
        ++posted;
    };
    sqp->connect(bed.addr(1, 7), [&](bool ok) {
        if (ok)
            post_next(); // strictly one at a time: sbuf is reused
    });
    waitLoop(*scq, [&](verbs::Completion c) {
        if (c.isSend && c.status == verbs::WcStatus::Success) {
            ++acked;
            post_next();
        }
    });

    sim.runUntilCondition(
        [&] { return received >= nMsgs && acked >= nMsgs; },
        sim.now() + 120 * sim::oneSec);

    auto &conn_stats =
        bed.nicOf(0).connectionOf(sqp->num())->stats();
    std::printf("delivered %zu/%zu messages, %zu corrupted payloads\n",
                received, nMsgs, corrupt);
    std::printf("firmware TCP fought through: %llu retransmits "
                "(%llu timeouts, %llu fast), %llu segments\n",
                static_cast<unsigned long long>(
                    conn_stats.retransmits.value()),
                static_cast<unsigned long long>(
                    conn_stats.timeouts.value()),
                static_cast<unsigned long long>(
                    conn_stats.fastRetransmits.value()),
                static_cast<unsigned long long>(
                    conn_stats.segsOut.value()));
    std::printf("link drops: %llu (injected)\n",
                static_cast<unsigned long long>(
                    bed.fabric().linkFor(0).faults().drops.value() +
                    bed.fabric().linkFor(1).faults().drops.value()));
    const bool ok = received == nMsgs && corrupt == 0;
    std::printf("%s\n", ok ? "ok: all data intact" : "FAILED");
    return ok ? 0 : 1;
}
