/**
 * @file
 * Quickstart: the smallest complete QPIP program. Two hosts on a
 * Myrinet fabric, one reliable queue pair each; the client posts a
 * receive, connects, sends a message, and both sides reap their
 * completion queues — the paper's PostSend/PostRecv/Poll workflow in
 * ~80 lines.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <cstring>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"

using namespace qpip;
using namespace qpip::apps;

int
main()
{
    // A two-node SAN: hosts, QPIP NICs, switch, routes.
    QpipTestbed bed(2);
    auto &sim = bed.sim();

    // --- server (host 1): park an idle QP on port 7 ----------------
    auto &sprov = bed.provider(1);
    auto scq = sprov.createCq();
    std::vector<std::uint8_t> sbuf(4096);
    auto smr = sprov.registerMemory(sbuf);

    verbs::Acceptor acceptor(sprov, 7, scq, scq);
    std::shared_ptr<verbs::QueuePair> server_qp;
    acceptor.acceptOne([&](std::shared_ptr<verbs::QueuePair> qp) {
        std::printf("[server] connection mated to QP %u\n", qp->num());
        server_qp = qp;
        qp->postRecv(/*wr_id=*/1, *smr, 0, sbuf.size());
    });

    // --- client (host 0): connect and send -------------------------
    auto &cprov = bed.provider(0);
    auto ccq = cprov.createCq();
    std::vector<std::uint8_t> cbuf(4096);
    auto cmr = cprov.registerMemory(cbuf);
    auto client_qp =
        cprov.createQp(nic::QpType::ReliableTcp, ccq, ccq);

    const char greeting[] = "hello, queue pair IP!";
    client_qp->connect(bed.addr(1, 7), [&](bool ok) {
        if (!ok) {
            std::printf("[client] connect failed\n");
            return;
        }
        std::printf("[client] connected, posting send\n");
        std::memcpy(cbuf.data(), greeting, sizeof(greeting));
        client_qp->postSend(/*wr_id=*/2, *cmr, 0, sizeof(greeting));
    });

    // --- reap completions -------------------------------------------
    bool server_got = false, client_done = false;
    spinLoop(sprov, *scq, [&](verbs::Completion c) {
        std::printf("[server] completion: wr=%llu %s, %zu bytes: "
                    "\"%s\"\n",
                    static_cast<unsigned long long>(c.wrId),
                    nic::wcStatusName(c.status), c.byteLen,
                    reinterpret_cast<const char *>(sbuf.data()));
        server_got = true;
    });
    spinLoop(cprov, *ccq, [&](verbs::Completion c) {
        std::printf("[client] send completion: wr=%llu %s "
                    "(message ACKed end-to-end)\n",
                    static_cast<unsigned long long>(c.wrId),
                    nic::wcStatusName(c.status));
        client_done = true;
    });

    sim.runUntilCondition([&] { return server_got && client_done; },
                          sim.now() + 10 * sim::oneSec);
    std::printf("done at t=%.1f us (simulated)\n",
                sim::ticksToUs(sim.now()));
    return server_got && client_done ? 0 : 1;
}
