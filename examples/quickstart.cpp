/**
 * @file
 * Quickstart: the smallest complete QPIP program. Two hosts on a
 * Myrinet fabric, one reliable queue pair each; the client posts a
 * receive, connects, sends a message, and both sides reap their
 * completion queues — the paper's PostSend/PostRecv/Poll workflow in
 * ~80 lines.
 *
 * Observability flags (all optional):
 *
 *   $ ./quickstart --stats=run.json --trace=run.trace.json \
 *                  --pcap=run.pcap
 *
 * --stats dumps the full stat registry as JSON, --trace writes a
 * Chrome trace_event file (chrome://tracing, ui.perfetto.dev), and
 * --pcap captures every frame on the fabric for Wireshark.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/testbed.hh"
#include "apps/verbs_util.hh"
#include "net/pcap.hh"
#include "sim/trace.hh"

using namespace qpip;
using namespace qpip::apps;

namespace {

const char *
flagValue(int argc, char **argv, const char *flag)
{
    const std::size_t n = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=')
            return argv[i] + n + 1;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *stats_path = flagValue(argc, argv, "--stats");
    const char *trace_path = flagValue(argc, argv, "--trace");
    const char *pcap_path = flagValue(argc, argv, "--pcap");

    // A two-node SAN: hosts, QPIP NICs, switch, routes.
    QpipTestbed bed(2);
    auto &sim = bed.sim();

    if (trace_path != nullptr)
        sim.tracer().enable();
    net::PcapWriter pcap;
    if (pcap_path != nullptr) {
        net::tapLink(bed.fabric().linkFor(0), pcap);
        net::tapLink(bed.fabric().linkFor(1), pcap);
    }

    // --- server (host 1): park an idle QP on port 7 ----------------
    auto &sprov = bed.provider(1);
    auto scq = sprov.createCq();
    std::vector<std::uint8_t> sbuf(4096);
    auto smr = sprov.registerMemory(sbuf);

    verbs::Acceptor acceptor(sprov, 7, scq, scq);
    std::shared_ptr<verbs::QueuePair> server_qp;
    acceptor.acceptOne([&](std::shared_ptr<verbs::QueuePair> qp) {
        std::printf("[server] connection mated to QP %u\n", qp->num());
        server_qp = qp;
        qp->postRecv(/*wr_id=*/1, *smr, 0, sbuf.size());
    });

    // --- client (host 0): connect and send -------------------------
    auto &cprov = bed.provider(0);
    auto ccq = cprov.createCq();
    std::vector<std::uint8_t> cbuf(4096);
    auto cmr = cprov.registerMemory(cbuf);
    auto client_qp =
        cprov.createQp(nic::QpType::ReliableTcp, ccq, ccq);

    const char greeting[] = "hello, queue pair IP!";
    client_qp->connect(bed.addr(1, 7), [&](bool ok) {
        if (!ok) {
            std::printf("[client] connect failed\n");
            return;
        }
        std::printf("[client] connected, posting send\n");
        std::memcpy(cbuf.data(), greeting, sizeof(greeting));
        client_qp->postSend(/*wr_id=*/2, *cmr, 0, sizeof(greeting));
    });

    // --- reap completions -------------------------------------------
    bool server_got = false, client_done = false;
    spinLoop(sprov, *scq, [&](verbs::Completion c) {
        std::printf("[server] completion: wr=%llu %s, %zu bytes: "
                    "\"%s\"\n",
                    static_cast<unsigned long long>(c.wrId),
                    nic::wcStatusName(c.status), c.byteLen,
                    reinterpret_cast<const char *>(sbuf.data()));
        server_got = true;
    });
    spinLoop(cprov, *ccq, [&](verbs::Completion c) {
        std::printf("[client] send completion: wr=%llu %s "
                    "(message ACKed end-to-end)\n",
                    static_cast<unsigned long long>(c.wrId),
                    nic::wcStatusName(c.status));
        client_done = true;
    });

    sim.runUntilCondition([&] { return server_got && client_done; },
                          sim.now() + 10 * sim::oneSec);
    std::printf("done at t=%.1f us (simulated)\n",
                sim::ticksToUs(sim.now()));

    if (stats_path != nullptr) {
        const std::string json = sim.stats().jsonDump();
        if (std::FILE *f = std::fopen(stats_path, "w")) {
            std::fwrite(json.data(), 1, json.size(), f);
            std::fclose(f);
            std::printf("stats:  %s (%zu stats)\n", stats_path,
                        sim.stats().size());
        }
    }
    if (trace_path != nullptr && sim.tracer().writeFile(trace_path)) {
        std::printf("trace:  %s (%zu events)\n", trace_path,
                    sim.tracer().numEvents());
    }
    if (pcap_path != nullptr && pcap.writeFile(pcap_path)) {
        std::printf("pcap:   %s (%zu frames)\n", pcap_path,
                    pcap.frames());
    }
    return server_got && client_done ? 0 : 1;
}
