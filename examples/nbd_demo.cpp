/**
 * @file
 * The paper's storage application (Figures 5-7): a Network Block
 * Device served over QPIP and over classic sockets, side by side. A
 * small device is written sequentially, synced, and read back with
 * verification; the demo prints throughput and client CPU
 * effectiveness for both transports.
 *
 *   $ ./nbd_demo [device_MB]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/nbd.hh"

using namespace qpip;
using namespace qpip::apps;

namespace {

void
report(const char *system, const char *phase, const NbdRunResult &r)
{
    std::printf("  %-10s %-6s %7.1f MB/s  cpu=%5.1f%%  "
                "%6.1f MB/CPU-s  %s%s\n",
                system, phase, r.mbPerSec, r.clientCpuUtil * 100.0,
                r.mbPerCpuSec, r.completed ? "ok" : "INCOMPLETE",
                r.dataOk ? "" : " DATA-MISMATCH");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t device_mb =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
    const std::uint64_t bytes = device_mb << 20;
    std::printf("NBD demo: %llu MB device, sequential write+sync then"
                " read-back\n",
                static_cast<unsigned long long>(device_mb));

    NbdClientParams params;
    params.verifyContent = true;

    {
        std::printf("\nsockets transport (IP/GigE):\n");
        SocketsTestbed bed(2, SocketsFabric::GigabitEthernet);
        ServerStore store(bed.sim(), "store", bytes);
        NbdSocketServer server(bed.host(1).stack(), store, {});
        report("IP/GigE", "write",
               runNbdSocketsSequential(bed, 0, 1, true, bytes, params));
        report("IP/GigE", "read",
               runNbdSocketsSequential(bed, 0, 1, false, bytes,
                                       params));
    }
    {
        std::printf("\nQPIP transport (9000 B MTU):\n");
        QpipTestbed bed(2, 9000);
        ServerStore store(bed.sim(), "store", bytes);
        NbdQpipServer server(bed.provider(1), store, {});
        report("QPIP", "write",
               runNbdQpipSequential(bed, 0, 1, true, bytes, params));
        report("QPIP", "read",
               runNbdQpipSequential(bed, 0, 1, false, bytes, params));
    }
    std::printf("\ndone\n");
    return 0;
}
