# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_inet_basic[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_qpip[1]_include.cmake")
include("/root/repo/build/tests/test_nbd[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_interop[1]_include.cmake")
include("/root/repo/build/tests/test_occupancy[1]_include.cmake")
include("/root/repo/build/tests/test_components[1]_include.cmake")
