file(REMOVE_RECURSE
  "CMakeFiles/test_components.dir/test_components.cc.o"
  "CMakeFiles/test_components.dir/test_components.cc.o.d"
  "test_components"
  "test_components.pdb"
  "test_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
