# Empty dependencies file for test_components.
# This may be replaced when dependencies are built.
