# Empty dependencies file for test_qpip.
# This may be replaced when dependencies are built.
