file(REMOVE_RECURSE
  "CMakeFiles/test_qpip.dir/test_qpip.cc.o"
  "CMakeFiles/test_qpip.dir/test_qpip.cc.o.d"
  "test_qpip"
  "test_qpip.pdb"
  "test_qpip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qpip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
