file(REMOVE_RECURSE
  "CMakeFiles/test_occupancy.dir/test_occupancy.cc.o"
  "CMakeFiles/test_occupancy.dir/test_occupancy.cc.o.d"
  "test_occupancy"
  "test_occupancy.pdb"
  "test_occupancy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
