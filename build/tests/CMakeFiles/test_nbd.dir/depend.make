# Empty dependencies file for test_nbd.
# This may be replaced when dependencies are built.
