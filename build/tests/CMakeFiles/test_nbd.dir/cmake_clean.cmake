file(REMOVE_RECURSE
  "CMakeFiles/test_nbd.dir/test_nbd.cc.o"
  "CMakeFiles/test_nbd.dir/test_nbd.cc.o.d"
  "test_nbd"
  "test_nbd.pdb"
  "test_nbd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
