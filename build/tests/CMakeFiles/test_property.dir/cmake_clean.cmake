file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/test_property.cc.o"
  "CMakeFiles/test_property.dir/test_property.cc.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
