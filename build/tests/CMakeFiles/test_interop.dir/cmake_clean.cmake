file(REMOVE_RECURSE
  "CMakeFiles/test_interop.dir/test_interop.cc.o"
  "CMakeFiles/test_interop.dir/test_interop.cc.o.d"
  "test_interop"
  "test_interop.pdb"
  "test_interop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
