# Empty dependencies file for test_interop.
# This may be replaced when dependencies are built.
