file(REMOVE_RECURSE
  "CMakeFiles/test_inet_basic.dir/test_inet_basic.cc.o"
  "CMakeFiles/test_inet_basic.dir/test_inet_basic.cc.o.d"
  "test_inet_basic"
  "test_inet_basic.pdb"
  "test_inet_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inet_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
