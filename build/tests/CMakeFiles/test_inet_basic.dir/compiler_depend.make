# Empty compiler generated dependencies file for test_inet_basic.
# This may be replaced when dependencies are built.
