# Empty compiler generated dependencies file for nbd_demo.
# This may be replaced when dependencies are built.
