file(REMOVE_RECURSE
  "CMakeFiles/nbd_demo.dir/nbd_demo.cpp.o"
  "CMakeFiles/nbd_demo.dir/nbd_demo.cpp.o.d"
  "nbd_demo"
  "nbd_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbd_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
