file(REMOVE_RECURSE
  "CMakeFiles/lossy_fabric.dir/lossy_fabric.cpp.o"
  "CMakeFiles/lossy_fabric.dir/lossy_fabric.cpp.o.d"
  "lossy_fabric"
  "lossy_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
