# Empty dependencies file for lossy_fabric.
# This may be replaced when dependencies are built.
