file(REMOVE_RECURSE
  "CMakeFiles/datagram.dir/datagram.cpp.o"
  "CMakeFiles/datagram.dir/datagram.cpp.o.d"
  "datagram"
  "datagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
