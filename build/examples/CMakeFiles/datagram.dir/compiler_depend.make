# Empty compiler generated dependencies file for datagram.
# This may be replaced when dependencies are built.
