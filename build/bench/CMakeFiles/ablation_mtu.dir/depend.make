# Empty dependencies file for ablation_mtu.
# This may be replaced when dependencies are built.
