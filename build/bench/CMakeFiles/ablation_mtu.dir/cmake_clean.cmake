file(REMOVE_RECURSE
  "CMakeFiles/ablation_mtu.dir/ablation_mtu.cpp.o"
  "CMakeFiles/ablation_mtu.dir/ablation_mtu.cpp.o.d"
  "ablation_mtu"
  "ablation_mtu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mtu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
