file(REMOVE_RECURSE
  "CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o"
  "CMakeFiles/table1_overhead.dir/table1_overhead.cpp.o.d"
  "table1_overhead"
  "table1_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
