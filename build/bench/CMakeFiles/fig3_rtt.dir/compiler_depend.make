# Empty compiler generated dependencies file for fig3_rtt.
# This may be replaced when dependencies are built.
