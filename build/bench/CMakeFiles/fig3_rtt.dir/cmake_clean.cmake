file(REMOVE_RECURSE
  "CMakeFiles/fig3_rtt.dir/fig3_rtt.cpp.o"
  "CMakeFiles/fig3_rtt.dir/fig3_rtt.cpp.o.d"
  "fig3_rtt"
  "fig3_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
