# Empty compiler generated dependencies file for ablation_hw_assists.
# This may be replaced when dependencies are built.
