file(REMOVE_RECURSE
  "CMakeFiles/ablation_hw_assists.dir/ablation_hw_assists.cpp.o"
  "CMakeFiles/ablation_hw_assists.dir/ablation_hw_assists.cpp.o.d"
  "ablation_hw_assists"
  "ablation_hw_assists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hw_assists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
