file(REMOVE_RECURSE
  "CMakeFiles/ablation_loss.dir/ablation_loss.cpp.o"
  "CMakeFiles/ablation_loss.dir/ablation_loss.cpp.o.d"
  "ablation_loss"
  "ablation_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
