# Empty compiler generated dependencies file for ablation_loss.
# This may be replaced when dependencies are built.
