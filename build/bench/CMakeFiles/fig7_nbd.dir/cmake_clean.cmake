file(REMOVE_RECURSE
  "CMakeFiles/fig7_nbd.dir/fig7_nbd.cpp.o"
  "CMakeFiles/fig7_nbd.dir/fig7_nbd.cpp.o.d"
  "fig7_nbd"
  "fig7_nbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
