# Empty compiler generated dependencies file for fig7_nbd.
# This may be replaced when dependencies are built.
