file(REMOVE_RECURSE
  "CMakeFiles/fig4_throughput.dir/fig4_throughput.cpp.o"
  "CMakeFiles/fig4_throughput.dir/fig4_throughput.cpp.o.d"
  "fig4_throughput"
  "fig4_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
