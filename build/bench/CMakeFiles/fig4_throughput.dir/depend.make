# Empty dependencies file for fig4_throughput.
# This may be replaced when dependencies are built.
