file(REMOVE_RECURSE
  "CMakeFiles/table3_rx_occupancy.dir/table3_rx_occupancy.cpp.o"
  "CMakeFiles/table3_rx_occupancy.dir/table3_rx_occupancy.cpp.o.d"
  "table3_rx_occupancy"
  "table3_rx_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rx_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
