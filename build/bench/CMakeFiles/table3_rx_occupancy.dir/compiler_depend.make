# Empty compiler generated dependencies file for table3_rx_occupancy.
# This may be replaced when dependencies are built.
