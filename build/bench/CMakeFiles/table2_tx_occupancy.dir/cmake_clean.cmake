file(REMOVE_RECURSE
  "CMakeFiles/table2_tx_occupancy.dir/table2_tx_occupancy.cpp.o"
  "CMakeFiles/table2_tx_occupancy.dir/table2_tx_occupancy.cpp.o.d"
  "table2_tx_occupancy"
  "table2_tx_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tx_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
