# Empty dependencies file for table2_tx_occupancy.
# This may be replaced when dependencies are built.
