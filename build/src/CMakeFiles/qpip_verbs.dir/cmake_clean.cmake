file(REMOVE_RECURSE
  "CMakeFiles/qpip_verbs.dir/qpip/completion_queue.cc.o"
  "CMakeFiles/qpip_verbs.dir/qpip/completion_queue.cc.o.d"
  "CMakeFiles/qpip_verbs.dir/qpip/connection.cc.o"
  "CMakeFiles/qpip_verbs.dir/qpip/connection.cc.o.d"
  "CMakeFiles/qpip_verbs.dir/qpip/memory_region.cc.o"
  "CMakeFiles/qpip_verbs.dir/qpip/memory_region.cc.o.d"
  "CMakeFiles/qpip_verbs.dir/qpip/provider.cc.o"
  "CMakeFiles/qpip_verbs.dir/qpip/provider.cc.o.d"
  "CMakeFiles/qpip_verbs.dir/qpip/queue_pair.cc.o"
  "CMakeFiles/qpip_verbs.dir/qpip/queue_pair.cc.o.d"
  "libqpip_verbs.a"
  "libqpip_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpip_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
