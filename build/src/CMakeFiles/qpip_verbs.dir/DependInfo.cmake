
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qpip/completion_queue.cc" "src/CMakeFiles/qpip_verbs.dir/qpip/completion_queue.cc.o" "gcc" "src/CMakeFiles/qpip_verbs.dir/qpip/completion_queue.cc.o.d"
  "/root/repo/src/qpip/connection.cc" "src/CMakeFiles/qpip_verbs.dir/qpip/connection.cc.o" "gcc" "src/CMakeFiles/qpip_verbs.dir/qpip/connection.cc.o.d"
  "/root/repo/src/qpip/memory_region.cc" "src/CMakeFiles/qpip_verbs.dir/qpip/memory_region.cc.o" "gcc" "src/CMakeFiles/qpip_verbs.dir/qpip/memory_region.cc.o.d"
  "/root/repo/src/qpip/provider.cc" "src/CMakeFiles/qpip_verbs.dir/qpip/provider.cc.o" "gcc" "src/CMakeFiles/qpip_verbs.dir/qpip/provider.cc.o.d"
  "/root/repo/src/qpip/queue_pair.cc" "src/CMakeFiles/qpip_verbs.dir/qpip/queue_pair.cc.o" "gcc" "src/CMakeFiles/qpip_verbs.dir/qpip/queue_pair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qpip_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_inet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
