file(REMOVE_RECURSE
  "libqpip_verbs.a"
)
