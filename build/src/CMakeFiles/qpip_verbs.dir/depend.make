# Empty dependencies file for qpip_verbs.
# This may be replaced when dependencies are built.
