file(REMOVE_RECURSE
  "CMakeFiles/qpip_net.dir/net/fault.cc.o"
  "CMakeFiles/qpip_net.dir/net/fault.cc.o.d"
  "CMakeFiles/qpip_net.dir/net/link.cc.o"
  "CMakeFiles/qpip_net.dir/net/link.cc.o.d"
  "CMakeFiles/qpip_net.dir/net/packet.cc.o"
  "CMakeFiles/qpip_net.dir/net/packet.cc.o.d"
  "CMakeFiles/qpip_net.dir/net/serialize.cc.o"
  "CMakeFiles/qpip_net.dir/net/serialize.cc.o.d"
  "CMakeFiles/qpip_net.dir/net/switch.cc.o"
  "CMakeFiles/qpip_net.dir/net/switch.cc.o.d"
  "CMakeFiles/qpip_net.dir/net/topology.cc.o"
  "CMakeFiles/qpip_net.dir/net/topology.cc.o.d"
  "libqpip_net.a"
  "libqpip_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpip_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
