file(REMOVE_RECURSE
  "libqpip_net.a"
)
