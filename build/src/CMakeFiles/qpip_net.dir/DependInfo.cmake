
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fault.cc" "src/CMakeFiles/qpip_net.dir/net/fault.cc.o" "gcc" "src/CMakeFiles/qpip_net.dir/net/fault.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/qpip_net.dir/net/link.cc.o" "gcc" "src/CMakeFiles/qpip_net.dir/net/link.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/qpip_net.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/qpip_net.dir/net/packet.cc.o.d"
  "/root/repo/src/net/serialize.cc" "src/CMakeFiles/qpip_net.dir/net/serialize.cc.o" "gcc" "src/CMakeFiles/qpip_net.dir/net/serialize.cc.o.d"
  "/root/repo/src/net/switch.cc" "src/CMakeFiles/qpip_net.dir/net/switch.cc.o" "gcc" "src/CMakeFiles/qpip_net.dir/net/switch.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/qpip_net.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/qpip_net.dir/net/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qpip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
