# Empty dependencies file for qpip_net.
# This may be replaced when dependencies are built.
