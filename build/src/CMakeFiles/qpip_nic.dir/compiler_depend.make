# Empty compiler generated dependencies file for qpip_nic.
# This may be replaced when dependencies are built.
