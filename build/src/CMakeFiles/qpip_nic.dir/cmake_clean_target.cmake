file(REMOVE_RECURSE
  "libqpip_nic.a"
)
