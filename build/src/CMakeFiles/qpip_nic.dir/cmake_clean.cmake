file(REMOVE_RECURSE
  "CMakeFiles/qpip_nic.dir/nic/dma.cc.o"
  "CMakeFiles/qpip_nic.dir/nic/dma.cc.o.d"
  "CMakeFiles/qpip_nic.dir/nic/doorbell.cc.o"
  "CMakeFiles/qpip_nic.dir/nic/doorbell.cc.o.d"
  "CMakeFiles/qpip_nic.dir/nic/eth_nic.cc.o"
  "CMakeFiles/qpip_nic.dir/nic/eth_nic.cc.o.d"
  "CMakeFiles/qpip_nic.dir/nic/lanai.cc.o"
  "CMakeFiles/qpip_nic.dir/nic/lanai.cc.o.d"
  "CMakeFiles/qpip_nic.dir/nic/qpip_nic.cc.o"
  "CMakeFiles/qpip_nic.dir/nic/qpip_nic.cc.o.d"
  "CMakeFiles/qpip_nic.dir/nic/report.cc.o"
  "CMakeFiles/qpip_nic.dir/nic/report.cc.o.d"
  "libqpip_nic.a"
  "libqpip_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpip_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
