
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/dma.cc" "src/CMakeFiles/qpip_nic.dir/nic/dma.cc.o" "gcc" "src/CMakeFiles/qpip_nic.dir/nic/dma.cc.o.d"
  "/root/repo/src/nic/doorbell.cc" "src/CMakeFiles/qpip_nic.dir/nic/doorbell.cc.o" "gcc" "src/CMakeFiles/qpip_nic.dir/nic/doorbell.cc.o.d"
  "/root/repo/src/nic/eth_nic.cc" "src/CMakeFiles/qpip_nic.dir/nic/eth_nic.cc.o" "gcc" "src/CMakeFiles/qpip_nic.dir/nic/eth_nic.cc.o.d"
  "/root/repo/src/nic/lanai.cc" "src/CMakeFiles/qpip_nic.dir/nic/lanai.cc.o" "gcc" "src/CMakeFiles/qpip_nic.dir/nic/lanai.cc.o.d"
  "/root/repo/src/nic/qpip_nic.cc" "src/CMakeFiles/qpip_nic.dir/nic/qpip_nic.cc.o" "gcc" "src/CMakeFiles/qpip_nic.dir/nic/qpip_nic.cc.o.d"
  "/root/repo/src/nic/report.cc" "src/CMakeFiles/qpip_nic.dir/nic/report.cc.o" "gcc" "src/CMakeFiles/qpip_nic.dir/nic/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qpip_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_inet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
