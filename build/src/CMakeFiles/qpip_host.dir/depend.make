# Empty dependencies file for qpip_host.
# This may be replaced when dependencies are built.
