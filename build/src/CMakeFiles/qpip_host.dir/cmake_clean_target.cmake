file(REMOVE_RECURSE
  "libqpip_host.a"
)
