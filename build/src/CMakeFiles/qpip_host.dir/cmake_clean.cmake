file(REMOVE_RECURSE
  "CMakeFiles/qpip_host.dir/host/cpu.cc.o"
  "CMakeFiles/qpip_host.dir/host/cpu.cc.o.d"
  "CMakeFiles/qpip_host.dir/host/host.cc.o"
  "CMakeFiles/qpip_host.dir/host/host.cc.o.d"
  "CMakeFiles/qpip_host.dir/host/host_os.cc.o"
  "CMakeFiles/qpip_host.dir/host/host_os.cc.o.d"
  "CMakeFiles/qpip_host.dir/host/host_stack.cc.o"
  "CMakeFiles/qpip_host.dir/host/host_stack.cc.o.d"
  "CMakeFiles/qpip_host.dir/host/sockbuf.cc.o"
  "CMakeFiles/qpip_host.dir/host/sockbuf.cc.o.d"
  "CMakeFiles/qpip_host.dir/host/socket.cc.o"
  "CMakeFiles/qpip_host.dir/host/socket.cc.o.d"
  "libqpip_host.a"
  "libqpip_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpip_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
