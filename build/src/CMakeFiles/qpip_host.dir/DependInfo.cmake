
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/cpu.cc" "src/CMakeFiles/qpip_host.dir/host/cpu.cc.o" "gcc" "src/CMakeFiles/qpip_host.dir/host/cpu.cc.o.d"
  "/root/repo/src/host/host.cc" "src/CMakeFiles/qpip_host.dir/host/host.cc.o" "gcc" "src/CMakeFiles/qpip_host.dir/host/host.cc.o.d"
  "/root/repo/src/host/host_os.cc" "src/CMakeFiles/qpip_host.dir/host/host_os.cc.o" "gcc" "src/CMakeFiles/qpip_host.dir/host/host_os.cc.o.d"
  "/root/repo/src/host/host_stack.cc" "src/CMakeFiles/qpip_host.dir/host/host_stack.cc.o" "gcc" "src/CMakeFiles/qpip_host.dir/host/host_stack.cc.o.d"
  "/root/repo/src/host/sockbuf.cc" "src/CMakeFiles/qpip_host.dir/host/sockbuf.cc.o" "gcc" "src/CMakeFiles/qpip_host.dir/host/sockbuf.cc.o.d"
  "/root/repo/src/host/socket.cc" "src/CMakeFiles/qpip_host.dir/host/socket.cc.o" "gcc" "src/CMakeFiles/qpip_host.dir/host/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qpip_inet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
