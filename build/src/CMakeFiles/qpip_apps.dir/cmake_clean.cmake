file(REMOVE_RECURSE
  "CMakeFiles/qpip_apps.dir/apps/disk.cc.o"
  "CMakeFiles/qpip_apps.dir/apps/disk.cc.o.d"
  "CMakeFiles/qpip_apps.dir/apps/nbd.cc.o"
  "CMakeFiles/qpip_apps.dir/apps/nbd.cc.o.d"
  "CMakeFiles/qpip_apps.dir/apps/pingpong.cc.o"
  "CMakeFiles/qpip_apps.dir/apps/pingpong.cc.o.d"
  "CMakeFiles/qpip_apps.dir/apps/testbed.cc.o"
  "CMakeFiles/qpip_apps.dir/apps/testbed.cc.o.d"
  "CMakeFiles/qpip_apps.dir/apps/ttcp.cc.o"
  "CMakeFiles/qpip_apps.dir/apps/ttcp.cc.o.d"
  "CMakeFiles/qpip_apps.dir/apps/verbs_util.cc.o"
  "CMakeFiles/qpip_apps.dir/apps/verbs_util.cc.o.d"
  "libqpip_apps.a"
  "libqpip_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpip_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
