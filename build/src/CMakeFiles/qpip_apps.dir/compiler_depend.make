# Empty compiler generated dependencies file for qpip_apps.
# This may be replaced when dependencies are built.
