file(REMOVE_RECURSE
  "libqpip_apps.a"
)
