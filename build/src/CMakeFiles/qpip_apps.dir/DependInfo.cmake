
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/disk.cc" "src/CMakeFiles/qpip_apps.dir/apps/disk.cc.o" "gcc" "src/CMakeFiles/qpip_apps.dir/apps/disk.cc.o.d"
  "/root/repo/src/apps/nbd.cc" "src/CMakeFiles/qpip_apps.dir/apps/nbd.cc.o" "gcc" "src/CMakeFiles/qpip_apps.dir/apps/nbd.cc.o.d"
  "/root/repo/src/apps/pingpong.cc" "src/CMakeFiles/qpip_apps.dir/apps/pingpong.cc.o" "gcc" "src/CMakeFiles/qpip_apps.dir/apps/pingpong.cc.o.d"
  "/root/repo/src/apps/testbed.cc" "src/CMakeFiles/qpip_apps.dir/apps/testbed.cc.o" "gcc" "src/CMakeFiles/qpip_apps.dir/apps/testbed.cc.o.d"
  "/root/repo/src/apps/ttcp.cc" "src/CMakeFiles/qpip_apps.dir/apps/ttcp.cc.o" "gcc" "src/CMakeFiles/qpip_apps.dir/apps/ttcp.cc.o.d"
  "/root/repo/src/apps/verbs_util.cc" "src/CMakeFiles/qpip_apps.dir/apps/verbs_util.cc.o" "gcc" "src/CMakeFiles/qpip_apps.dir/apps/verbs_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qpip_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_host.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_inet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
