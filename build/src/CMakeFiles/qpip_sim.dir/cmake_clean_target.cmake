file(REMOVE_RECURSE
  "libqpip_sim.a"
)
