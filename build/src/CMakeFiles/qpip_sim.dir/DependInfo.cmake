
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/qpip_sim.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/qpip_sim.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/qpip_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/qpip_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/qpip_sim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/qpip_sim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/qpip_sim.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/qpip_sim.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/CMakeFiles/qpip_sim.dir/sim/sim_object.cc.o" "gcc" "src/CMakeFiles/qpip_sim.dir/sim/sim_object.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/qpip_sim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/qpip_sim.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/qpip_sim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/qpip_sim.dir/sim/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
