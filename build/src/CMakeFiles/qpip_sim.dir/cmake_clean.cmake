file(REMOVE_RECURSE
  "CMakeFiles/qpip_sim.dir/sim/clock.cc.o"
  "CMakeFiles/qpip_sim.dir/sim/clock.cc.o.d"
  "CMakeFiles/qpip_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/qpip_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/qpip_sim.dir/sim/logging.cc.o"
  "CMakeFiles/qpip_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/qpip_sim.dir/sim/random.cc.o"
  "CMakeFiles/qpip_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/qpip_sim.dir/sim/sim_object.cc.o"
  "CMakeFiles/qpip_sim.dir/sim/sim_object.cc.o.d"
  "CMakeFiles/qpip_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/qpip_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/qpip_sim.dir/sim/stats.cc.o"
  "CMakeFiles/qpip_sim.dir/sim/stats.cc.o.d"
  "libqpip_sim.a"
  "libqpip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
