# Empty compiler generated dependencies file for qpip_sim.
# This may be replaced when dependencies are built.
