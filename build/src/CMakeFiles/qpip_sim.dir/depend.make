# Empty dependencies file for qpip_sim.
# This may be replaced when dependencies are built.
