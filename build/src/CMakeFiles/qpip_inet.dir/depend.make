# Empty dependencies file for qpip_inet.
# This may be replaced when dependencies are built.
