
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inet/checksum.cc" "src/CMakeFiles/qpip_inet.dir/inet/checksum.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/checksum.cc.o.d"
  "/root/repo/src/inet/inet_addr.cc" "src/CMakeFiles/qpip_inet.dir/inet/inet_addr.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/inet_addr.cc.o.d"
  "/root/repo/src/inet/ip_frag.cc" "src/CMakeFiles/qpip_inet.dir/inet/ip_frag.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/ip_frag.cc.o.d"
  "/root/repo/src/inet/ipv4.cc" "src/CMakeFiles/qpip_inet.dir/inet/ipv4.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/ipv4.cc.o.d"
  "/root/repo/src/inet/ipv6.cc" "src/CMakeFiles/qpip_inet.dir/inet/ipv6.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/ipv6.cc.o.d"
  "/root/repo/src/inet/route.cc" "src/CMakeFiles/qpip_inet.dir/inet/route.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/route.cc.o.d"
  "/root/repo/src/inet/rtt_estimator.cc" "src/CMakeFiles/qpip_inet.dir/inet/rtt_estimator.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/rtt_estimator.cc.o.d"
  "/root/repo/src/inet/tcp_conn.cc" "src/CMakeFiles/qpip_inet.dir/inet/tcp_conn.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/tcp_conn.cc.o.d"
  "/root/repo/src/inet/tcp_header.cc" "src/CMakeFiles/qpip_inet.dir/inet/tcp_header.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/tcp_header.cc.o.d"
  "/root/repo/src/inet/tcp_reass.cc" "src/CMakeFiles/qpip_inet.dir/inet/tcp_reass.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/tcp_reass.cc.o.d"
  "/root/repo/src/inet/udp.cc" "src/CMakeFiles/qpip_inet.dir/inet/udp.cc.o" "gcc" "src/CMakeFiles/qpip_inet.dir/inet/udp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qpip_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qpip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
