file(REMOVE_RECURSE
  "CMakeFiles/qpip_inet.dir/inet/checksum.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/checksum.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/inet_addr.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/inet_addr.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/ip_frag.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/ip_frag.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/ipv4.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/ipv4.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/ipv6.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/ipv6.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/route.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/route.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/rtt_estimator.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/rtt_estimator.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/tcp_conn.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/tcp_conn.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/tcp_header.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/tcp_header.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/tcp_reass.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/tcp_reass.cc.o.d"
  "CMakeFiles/qpip_inet.dir/inet/udp.cc.o"
  "CMakeFiles/qpip_inet.dir/inet/udp.cc.o.d"
  "libqpip_inet.a"
  "libqpip_inet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpip_inet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
