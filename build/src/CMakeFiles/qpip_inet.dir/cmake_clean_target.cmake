file(REMOVE_RECURSE
  "libqpip_inet.a"
)
