#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>
#include <regex>
#include <sstream>

#include "internal.hh"

namespace qpip::lint {

namespace fs = std::filesystem;

using detail::Ctx;
using detail::FileData;
using detail::Lexed;
using detail::Sink;
using detail::WaiverMap;

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << rule << ' ' << file << ':' << line << ": " << message;
    return os.str();
}

int
layerRank(Layer l)
{
    return static_cast<int>(l);
}

const char *
layerName(Layer l)
{
    switch (l) {
      case Layer::Sim: return "sim";
      case Layer::Net: return "net";
      case Layer::Inet: return "inet";
      case Layer::Host: return "host";
      case Layer::Nic: return "nic";
      case Layer::Qpip: return "qpip";
      case Layer::Apps: return "apps";
      case Layer::Top: return "top";
    }
    return "?";
}

namespace {

std::optional<Layer>
layerByName(const std::string &name)
{
    for (Layer l : {Layer::Sim, Layer::Net, Layer::Inet, Layer::Host,
                    Layer::Nic, Layer::Qpip, Layer::Apps, Layer::Top})
        if (name == layerName(l))
            return l;
    return std::nullopt;
}

std::string
normalize(const std::string &path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p;
}

} // namespace

Layer
classifyPath(const std::string &path)
{
    const std::string p = normalize(path);
    for (Layer l : {Layer::Sim, Layer::Net, Layer::Inet, Layer::Host,
                    Layer::Nic, Layer::Qpip, Layer::Apps}) {
        const std::string needle =
            std::string("src/") + layerName(l) + "/";
        if (p.find(needle) != std::string::npos)
            return l;
    }
    return Layer::Top;
}

namespace {

struct RuleToken
{
    const char *rule;
    const char *token;
};

constexpr RuleToken ruleTokens[] = {
    {"D1", "nondet-ok"},      {"D2", "unordered-iter-ok"},
    {"L1", "layer-ok"},       {"W1", "wire-ok"},
    {"T1", "thread-ok"},      {"S1", "stat-path-ok"},
    {"W2", "wire-pair-ok"},   {"T2", "partition-ok"},
    {"E1", "ref-capture-ok"},
};

} // namespace

const char *
waiverToken(const std::string &rule)
{
    for (const auto &rt : ruleTokens)
        if (rule == rt.rule)
            return rt.token;
    return "";
}

const char *
ruleForWaiverToken(const std::string &token)
{
    for (const auto &rt : ruleTokens)
        if (token == rt.token)
            return rt.rule;
    return "";
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

namespace detail {

Lexed
lex(const std::string &text)
{
    Lexed out;
    {
        std::string line;
        for (const char c : text) {
            if (c == '\n') {
                out.raw.push_back(std::move(line));
                line.clear();
            } else {
                line += c;
            }
        }
        out.raw.push_back(std::move(line));
    }
    std::string code, comment, literal;
    std::vector<std::string> lits;
    enum class St { Code, Str, Chr, Line, Block } st = St::Code;

    auto flush = [&] {
        out.code.push_back(code);
        out.comments.push_back(comment);
        out.strings.push_back(lits);
        code.clear();
        comment.clear();
        lits.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::Line)
                st = St::Code;
            if (st == St::Str) {
                // Unterminated on this line (multi-line raw strings
                // are not used in this codebase): close it out.
                lits.push_back(literal);
                literal.clear();
                st = St::Code;
            }
            flush();
            continue;
        }
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                ++i;
            } else if (c == '"') {
                st = St::Str;
                literal.clear();
                code += '"';
            } else if (c == '\'') {
                st = St::Chr;
                code += '\'';
            } else {
                code += c;
            }
            break;
          case St::Str:
            if (c == '\\' && n != '\0') {
                literal += c;
                literal += n;
                ++i;
            } else if (c == '"') {
                st = St::Code;
                code += '"';
                lits.push_back(literal);
                literal.clear();
            } else {
                literal += c;
            }
            break;
          case St::Chr:
            if (c == '\\' && n != '\0') {
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                code += '\'';
            }
            break;
          case St::Line:
            comment += c;
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                st = St::Code;
                ++i;
            } else {
                comment += c;
            }
            break;
        }
    }
    flush();
    return out;
}

WaiverMap
collectWaivers(const Lexed &lx)
{
    static const std::regex re(
        R"(qpip-lint:\s*([a-z][a-z-]*-ok)\(\s*[^)\s][^)]*\))");
    WaiverMap out(lx.comments.size());
    auto blankCode = [&](std::size_t i) {
        return lx.code[i].find_first_not_of(" \t") == std::string::npos;
    };
    for (std::size_t i = 0; i < lx.comments.size(); ++i) {
        auto begin = std::sregex_iterator(lx.comments[i].begin(),
                                          lx.comments[i].end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            out[i].emplace((*it)[1].str(), static_cast<int>(i));
    }
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        if (!out[i].empty() && blankCode(i))
            out[i + 1].insert(out[i].begin(), out[i].end());
    }
    return out;
}

std::size_t
FileData::lineOf(std::size_t offset) const
{
    auto it = std::upper_bound(starts.begin(), starts.end(), offset);
    return static_cast<std::size_t>(it - starts.begin()) - 1;
}

namespace {

std::optional<Layer>
layerDirective(const Lexed &lx)
{
    static const std::regex re(R"(qpip-lint-layer:\s*([a-z]+))");
    for (const auto &c : lx.comments) {
        std::smatch m;
        if (std::regex_search(c, m, re))
            return layerByName(m[1].str());
    }
    return std::nullopt;
}

bool
wireDirective(const Lexed &lx)
{
    for (const auto &c : lx.comments)
        if (c.find("qpip-lint-wire-file") != std::string::npos)
            return true;
    return false;
}

} // namespace

bool
isHeaderPath(const std::string &path)
{
    return path.ends_with(".hh") || path.ends_with(".h");
}

bool
wireAllowlisted(const std::string &path)
{
    const std::string p = normalize(path);
    return p.find("inet/checksum.") != std::string::npos ||
           p.find("net/serialize.") != std::string::npos;
}

FileData
makeFileData(const std::string &path, const std::string &contents)
{
    FileData f;
    f.path = path;
    f.lx = lex(contents);
    f.waivers = collectWaivers(f.lx);
    f.layer = layerDirective(f.lx).value_or(classifyPath(path));
    f.wireFile =
        normalize(path).find("net/serialize.") != std::string::npos ||
        wireDirective(f.lx);
    for (const auto &l : f.lx.code) {
        f.starts.push_back(f.all.size());
        f.all += l;
        f.all += '\n';
    }
    return f;
}

void
Sink::add(const FileData &f, const std::string &rule,
          std::size_t line_idx, std::string msg)
{
    if (line_idx < f.waivers.size()) {
        auto it = f.waivers[line_idx].find(waiverToken(rule));
        if (it != f.waivers[line_idx].end()) {
            usedWaivers.emplace(&f, it->second);
            return;
        }
    }
    diags.push_back(Diagnostic{rule, f.path,
                               static_cast<int>(line_idx) + 1,
                               std::move(msg)});
}

std::size_t
skipAngles(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (; pos < s.size(); ++pos) {
        if (s[pos] == '<')
            ++depth;
        else if (s[pos] == '>' && --depth == 0)
            return pos + 1;
    }
    return std::string::npos;
}

std::size_t
skipParens(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (; pos < s.size(); ++pos) {
        if (s[pos] == '(')
            ++depth;
        else if (s[pos] == ')' && --depth == 0)
            return pos + 1;
    }
    return std::string::npos;
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

} // namespace detail

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

namespace {

void
sortDiags(std::vector<Diagnostic> &diags)
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
}

void
runFileRules(const FileData &f, Sink &sink)
{
    Ctx ctx{f, sink};
    if (f.layer != Layer::Top) {
        detail::ruleD1(ctx);
        detail::ruleD2(ctx);
        if (!detail::wireAllowlisted(f.path))
            detail::ruleW1(ctx);
        if (f.layer != Layer::Sim)
            detail::ruleT1(ctx);
    }
    detail::ruleL1(ctx);
    if (detail::isHeaderPath(f.path))
        detail::ruleH1(ctx);
}

/**
 * A1: every waiver comment must have suppressed at least one finding
 * of an enabled rule during this run.
 */
void
auditWaivers(const std::vector<FileData> &files, Sink &sink,
             const ProjectOptions &opts)
{
    static const char *projectRuleIds[] = {"S1", "W2", "T2", "E1"};
    auto ruleEnabled = [&](const std::string &rule) {
        for (const char *r : projectRuleIds)
            if (rule == r)
                return opts.projectRules;
        return opts.fileRules;
    };
    for (const auto &f : files) {
        // Collect distinct waiver sites: (origin line, token).
        std::set<std::pair<int, std::string>> sites;
        for (const auto &perLine : f.waivers)
            for (const auto &[token, origin] : perLine)
                sites.emplace(origin, token);
        for (const auto &[origin, token] : sites) {
            const std::string rule = ruleForWaiverToken(token);
            if (rule.empty()) {
                sink.diags.push_back(Diagnostic{
                    "A1", f.path, origin + 1,
                    "unknown waiver token '" + token +
                        "': no rule uses it (see waiverToken())"});
                continue;
            }
            if (!ruleEnabled(rule))
                continue;
            if (!sink.usedWaivers.count({&f, origin})) {
                sink.diags.push_back(Diagnostic{
                    "A1", f.path, origin + 1,
                    "stale waiver '" + token + "': rule " + rule +
                        " no longer fires on the waived line — "
                        "delete the waiver (or fix the regression "
                        "that was hiding behind it)"});
            }
        }
    }
}

} // namespace

std::vector<Diagnostic>
lintProject(const std::vector<SourceFile> &files,
            const ProjectOptions &opts)
{
    std::vector<FileData> data;
    data.reserve(files.size());
    for (const auto &sf : files)
        data.push_back(detail::makeFileData(sf.path, sf.contents));

    Sink sink;
    if (opts.fileRules)
        for (const auto &f : data)
            runFileRules(f, sink);

    if (opts.projectRules) {
        const detail::ProjectIndex ix = detail::buildIndex(data);
        detail::ruleS1(ix, sink);
        detail::ruleW2(ix, sink);
        for (const auto &f : data) {
            detail::ruleT2(f, sink);
            detail::ruleE1(f, sink);
        }
    }

    if (opts.auditWaivers)
        auditWaivers(data, sink, opts);

    std::vector<Diagnostic> out;
    if (opts.reportOnly.empty()) {
        out = std::move(sink.diags);
    } else {
        for (auto &d : sink.diags)
            if (opts.reportOnly.count(d.file))
                out.push_back(std::move(d));
    }
    sortDiags(out);
    return out;
}

IndexSummary
summarizeIndex(const std::vector<SourceFile> &files)
{
    std::vector<FileData> data;
    data.reserve(files.size());
    for (const auto &sf : files)
        data.push_back(detail::makeFileData(sf.path, sf.contents));
    const detail::ProjectIndex ix = detail::buildIndex(data);

    IndexSummary out;
    out.statLeafPaths = ix.statLeafPaths;
    out.statSegments = ix.statSegments;
    for (const auto &[name, fn] : ix.serializers)
        out.serializers.insert(name);
    for (const auto &[name, fn] : ix.parsers)
        out.parsers.insert(name);
    return out;
}

std::vector<Diagnostic>
lintFile(const std::string &path, const std::string &contents)
{
    const FileData f = detail::makeFileData(path, contents);
    Sink sink;
    runFileRules(f, sink);
    std::vector<Diagnostic> diags = std::move(sink.diags);
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return diags;
}

std::vector<Diagnostic>
lintPath(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {Diagnostic{"IO", path, 0, "cannot open file"}};
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintFile(path, ss.str());
}

std::vector<SourceFile>
readSources(const std::string &root,
            const std::vector<std::string> &paths)
{
    std::vector<SourceFile> out;
    for (const auto &p : paths) {
        const bool absolute =
            !p.empty() && (p[0] == '/' || (p.size() > 1 && p[1] == ':'));
        const std::string full = absolute ? p : root + "/" + p;
        SourceFile sf;
        sf.path = p;
        std::ifstream in(full, std::ios::binary);
        if (!in) {
            sf.contents.clear();
            out.push_back(std::move(sf));
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        sf.contents = ss.str();
        out.push_back(std::move(sf));
    }
    return out;
}

// ---------------------------------------------------------------------
// Mechanical fixes
// ---------------------------------------------------------------------

std::string
applyFixes(const std::string &contents,
           const std::vector<Diagnostic> &diags, bool &changed)
{
    changed = false;
    bool addPragma = false;
    std::set<int> staleLines; // 1-based
    for (const auto &d : diags) {
        if (d.rule == "H1")
            addPragma = true;
        else if (d.rule == "A1" &&
                 d.message.rfind("stale waiver", 0) == 0)
            staleLines.insert(d.line);
    }
    if (!addPragma && staleLines.empty())
        return contents;

    std::vector<std::string> lines;
    {
        std::string cur;
        for (const char c : contents) {
            if (c == '\n') {
                lines.push_back(std::move(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        lines.push_back(std::move(cur));
    }

    static const std::regex waiverRe(
        R"(\s*(//\s*)?qpip-lint:\s*[a-z][a-z-]*-ok\(\s*[^)\s][^)]*\)\s*)");
    for (const int ln : staleLines) {
        const std::size_t i = static_cast<std::size_t>(ln) - 1;
        if (i >= lines.size())
            continue;
        std::string stripped =
            std::regex_replace(lines[i], waiverRe, "");
        // A now-empty comment or blank line disappears entirely.
        static const std::regex emptyComment(R"(^\s*(//\s*)?$)");
        if (std::regex_match(stripped, emptyComment))
            stripped.clear();
        if (stripped != lines[i]) {
            lines[i] = stripped;
            changed = true;
        }
    }
    // Drop lines emptied by waiver removal (rather than leaving a
    // blank hole where the comment was).
    if (changed) {
        std::vector<std::string> keep;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            if (lines[i].empty() &&
                staleLines.count(static_cast<int>(i) + 1)) {
                continue;
            }
            keep.push_back(lines[i]);
        }
        lines = std::move(keep);
    }

    if (addPragma) {
        // Insert after a leading block comment, before the first
        // code line.
        const Lexed lx = detail::lex(contents);
        std::size_t at = 0;
        for (std::size_t i = 0; i < lx.code.size() && i < lines.size();
             ++i) {
            if (lx.code[i].find_first_not_of(" \t") !=
                std::string::npos) {
                at = i;
                break;
            }
        }
        lines.insert(lines.begin() + static_cast<long>(at),
                     "#pragma once");
        if (at + 1 < lines.size() && !lines[at + 1].empty())
            lines.insert(lines.begin() + static_cast<long>(at) + 1,
                         "");
        changed = true;
    }

    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        out += lines[i];
        if (i + 1 < lines.size())
            out += '\n';
    }
    return out;
}

// ---------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------

std::vector<std::string>
collectTree(const std::string &root)
{
    std::vector<std::string> out;
    const fs::path base(root);
    for (const char *dir : {"src", "tests", "bench", "examples",
                            "tools"}) {
        const fs::path d = base / dir;
        if (!fs::exists(d))
            continue;
        for (auto it = fs::recursive_directory_iterator(d);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "lint_fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".cc" && ext != ".cpp" && ext != ".hh" &&
                ext != ".h")
                continue;
            out.push_back(
                fs::relative(it->path(), base).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<std::string>
filesFromCompileCommands(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::vector<std::string> out;
    static const std::regex fileRe(
        R"rx("file"\s*:\s*"((?:[^"\\]|\\.)*)")rx");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), fileRe);
         it != std::sregex_iterator(); ++it) {
        std::string raw = (*it)[1].str(), un;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] == '\\' && i + 1 < raw.size())
                un += raw[++i];
            else
                un += raw[i];
        }
        out.push_back(un);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace qpip::lint
