#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>

namespace qpip::lint {

namespace fs = std::filesystem;

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << rule << ' ' << file << ':' << line << ": " << message;
    return os.str();
}

int
layerRank(Layer l)
{
    return static_cast<int>(l);
}

const char *
layerName(Layer l)
{
    switch (l) {
      case Layer::Sim: return "sim";
      case Layer::Net: return "net";
      case Layer::Inet: return "inet";
      case Layer::Host: return "host";
      case Layer::Nic: return "nic";
      case Layer::Qpip: return "qpip";
      case Layer::Apps: return "apps";
      case Layer::Top: return "top";
    }
    return "?";
}

namespace {

std::optional<Layer>
layerByName(const std::string &name)
{
    for (Layer l : {Layer::Sim, Layer::Net, Layer::Inet, Layer::Host,
                    Layer::Nic, Layer::Qpip, Layer::Apps, Layer::Top})
        if (name == layerName(l))
            return l;
    return std::nullopt;
}

std::string
normalize(const std::string &path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p;
}

} // namespace

Layer
classifyPath(const std::string &path)
{
    const std::string p = normalize(path);
    for (Layer l : {Layer::Sim, Layer::Net, Layer::Inet, Layer::Host,
                    Layer::Nic, Layer::Qpip, Layer::Apps}) {
        const std::string needle =
            std::string("src/") + layerName(l) + "/";
        if (p.find(needle) != std::string::npos)
            return l;
    }
    return Layer::Top;
}

const char *
waiverToken(const std::string &rule)
{
    if (rule == "D1") return "nondet-ok";
    if (rule == "D2") return "unordered-iter-ok";
    if (rule == "L1") return "layer-ok";
    if (rule == "W1") return "wire-ok";
    if (rule == "T1") return "thread-ok";
    return "";
}

namespace {

/**
 * The lexed view of one file: per physical line, the code text with
 * comments and string/char literal bodies removed, and the comment
 * text (for waiver directives).
 */
struct Lexed
{
    /** Untouched physical lines (needed for #include paths). */
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<std::string> comments;
};

Lexed
lex(const std::string &text)
{
    Lexed out;
    {
        std::string line;
        for (const char c : text) {
            if (c == '\n') {
                out.raw.push_back(std::move(line));
                line.clear();
            } else {
                line += c;
            }
        }
        out.raw.push_back(std::move(line));
    }
    std::string code, comment;
    enum class St { Code, Str, Chr, Line, Block } st = St::Code;

    auto flush = [&] {
        out.code.push_back(code);
        out.comments.push_back(comment);
        code.clear();
        comment.clear();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::Line)
                st = St::Code;
            flush();
            continue;
        }
        switch (st) {
          case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                ++i;
            } else if (c == '"') {
                st = St::Str;
                code += '"';
            } else if (c == '\'') {
                st = St::Chr;
                code += '\'';
            } else {
                code += c;
            }
            break;
          case St::Str:
            if (c == '\\' && n != '\0') {
                ++i;
            } else if (c == '"') {
                st = St::Code;
                code += '"';
            }
            break;
          case St::Chr:
            if (c == '\\' && n != '\0') {
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                code += '\'';
            }
            break;
          case St::Line:
            comment += c;
            break;
          case St::Block:
            if (c == '*' && n == '/') {
                st = St::Code;
                ++i;
            } else {
                comment += c;
            }
            break;
        }
    }
    flush();
    return out;
}

/**
 * Waiver tokens in effect on each line: a trailing comment waives
 * its own line; a comment-only line waives the next code line
 * (NOLINTNEXTLINE style), chaining through blank/comment lines.
 */
std::vector<std::set<std::string>>
collectWaivers(const Lexed &lx)
{
    static const std::regex re(
        R"(qpip-lint:\s*([a-z][a-z-]*-ok)\(\s*[^)\s][^)]*\))");
    std::vector<std::set<std::string>> out(lx.comments.size());
    auto blankCode = [&](std::size_t i) {
        return lx.code[i].find_first_not_of(" \t") == std::string::npos;
    };
    for (std::size_t i = 0; i < lx.comments.size(); ++i) {
        auto begin = std::sregex_iterator(lx.comments[i].begin(),
                                          lx.comments[i].end(), re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            out[i].insert((*it)[1].str());
    }
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        if (!out[i].empty() && blankCode(i))
            out[i + 1].insert(out[i].begin(), out[i].end());
    }
    return out;
}

std::optional<Layer>
layerDirective(const Lexed &lx)
{
    static const std::regex re(R"(qpip-lint-layer:\s*([a-z]+))");
    for (const auto &c : lx.comments) {
        std::smatch m;
        if (std::regex_search(c, m, re))
            return layerByName(m[1].str());
    }
    return std::nullopt;
}

bool
isHeader(const std::string &path)
{
    return path.ends_with(".hh") || path.ends_with(".h");
}

struct Ctx
{
    const std::string &path;
    Layer layer;
    const Lexed &lx;
    const std::vector<std::set<std::string>> &waivers;
    std::vector<Diagnostic> &diags;

    bool
    waived(std::size_t line_idx, const std::string &rule) const
    {
        return line_idx < waivers.size() &&
               waivers[line_idx].count(waiverToken(rule)) != 0;
    }

    void
    add(const std::string &rule, std::size_t line_idx, std::string msg)
    {
        if (!waived(line_idx, rule))
            diags.push_back(Diagnostic{rule, path,
                                       static_cast<int>(line_idx) + 1,
                                       std::move(msg)});
    }
};

// --- D1: nondeterminism sources -----------------------------------

void
ruleD1(Ctx &ctx)
{
    struct Banned
    {
        std::regex re;
        const char *what;
    };
    static const std::vector<Banned> banned = {
        {std::regex(R"(\bs?rand\s*\()"),
         "C library rand()/srand() is not replay-deterministic; use "
         "sim::Random"},
        {std::regex(R"(\brandom_device\b)"),
         "std::random_device draws entropy from the OS; use the "
         "seeded sim::Random"},
        {std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
         "wall-clock time source; use sim::Clock / Simulation time"},
        {std::regex(R"(\b(gettimeofday|clock_gettime)\b)"),
         "wall-clock time source; use sim::Clock / Simulation time"},
        {std::regex(R"(\bgetpid\s*\()"),
         "process id varies across runs; derive ids from the seed"},
        {std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)?\s*\))"),
         "time() reads the wall clock; use sim::Clock / Simulation "
         "time"},
        {std::regex(R"(\bmap\s*<[^,<>]*\*\s*,)"),
         "pointer-keyed map: addresses vary across runs, so key "
         "order (and any iteration) is nondeterministic"},
    };
    for (std::size_t i = 0; i < ctx.lx.code.size(); ++i) {
        for (const auto &b : banned) {
            if (std::regex_search(ctx.lx.code[i], b.re))
                ctx.add("D1", i, b.what);
        }
    }
}

// --- D2: iteration over unordered containers ----------------------

/** Skip a balanced <...> starting at @p pos (which must be '<'). */
std::size_t
skipAngles(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (; pos < s.size(); ++pos) {
        if (s[pos] == '<')
            ++depth;
        else if (s[pos] == '>' && --depth == 0)
            return pos + 1;
    }
    return std::string::npos;
}

void
ruleD2(Ctx &ctx)
{
    // Join the code text, remembering line starts for offset->line.
    std::string all;
    std::vector<std::size_t> starts;
    for (const auto &l : ctx.lx.code) {
        starts.push_back(all.size());
        all += l;
        all += '\n';
    }
    auto lineOf = [&](std::size_t off) {
        auto it = std::upper_bound(starts.begin(), starts.end(), off);
        return static_cast<std::size_t>(it - starts.begin()) - 1;
    };

    // Pass 1: names of variables (and type aliases) whose type is an
    // unordered associative container.
    static const std::regex declRe(R"(\bunordered_(map|set)\s*<)");
    static const std::regex nameRe(
        R"(^\s*[&*]?\s*([A-Za-z_]\w*)\s*([;={(),]))");
    static const std::regex aliasRe(R"(\busing\s+([A-Za-z_]\w*)\s*=\s*$)");
    std::set<std::string> unorderedVars, unorderedAliases;
    for (auto it = std::sregex_iterator(all.begin(), all.end(), declRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            static_cast<std::size_t>(it->position()) + it->length() - 1;
        // "using Alias = std::unordered_map<...>;"
        const std::size_t pos = static_cast<std::size_t>(it->position());
        std::size_t bol = all.rfind('\n', pos);
        bol = bol == std::string::npos ? 0 : bol + 1;
        std::string before = all.substr(bol, pos - bol);
        // Strip a trailing "std::" qualifier so aliasRe can anchor.
        if (before.ends_with("std::"))
            before.erase(before.size() - 5);
        std::smatch am;
        if (std::regex_search(before, am, aliasRe)) {
            unorderedAliases.insert(am[1].str());
            continue;
        }
        const std::size_t end = skipAngles(all, open);
        if (end == std::string::npos)
            continue;
        std::smatch nm;
        const std::string after = all.substr(end, 160);
        if (std::regex_search(after, nm, nameRe))
            unorderedVars.insert(nm[1].str());
    }
    // Declarations through an alias: "Alias name;".
    for (const auto &alias : unorderedAliases) {
        const std::regex aliasDecl("\\b" + alias +
                                   R"(\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(),])");
        for (auto it =
                 std::sregex_iterator(all.begin(), all.end(), aliasDecl);
             it != std::sregex_iterator(); ++it)
            unorderedVars.insert((*it)[1].str());
    }
    if (unorderedVars.empty())
        return;

    auto lastComponent = [](std::string expr) {
        const auto dot = expr.find_last_of('.');
        if (dot != std::string::npos)
            expr = expr.substr(dot + 1);
        const auto arrow = expr.rfind("->");
        if (arrow != std::string::npos)
            expr = expr.substr(arrow + 2);
        return expr;
    };

    // Pass 2a: range-for over a tracked variable.
    static const std::regex rangeForRe(
        R"(\bfor\s*\([^;()]*:\s*([A-Za-z_][\w.]*(?:->[\w.]+)*)\s*\))");
    for (auto it =
             std::sregex_iterator(all.begin(), all.end(), rangeForRe);
         it != std::sregex_iterator(); ++it) {
        const std::string var = lastComponent((*it)[1].str());
        if (unorderedVars.count(var))
            ctx.add("D2", lineOf(static_cast<std::size_t>(it->position())),
                    "range-for over std::unordered container '" + var +
                        "': iteration order is hash/insertion "
                        "dependent and breaks same-seed replay");
    }

    // Pass 2b: iterator loops (x.begin() / cbegin / rbegin).
    static const std::regex beginRe(
        R"(([A-Za-z_][\w.]*(?:->[\w.]+)*)\s*\.\s*c?r?begin\s*\()");
    for (auto it = std::sregex_iterator(all.begin(), all.end(), beginRe);
         it != std::sregex_iterator(); ++it) {
        const std::string var = lastComponent((*it)[1].str());
        if (unorderedVars.count(var))
            ctx.add("D2", lineOf(static_cast<std::size_t>(it->position())),
                    "iterator walk over std::unordered container '" +
                        var + "': order is hash/insertion dependent "
                              "and breaks same-seed replay");
    }
}

// --- L1: include layering -----------------------------------------

void
ruleL1(Ctx &ctx)
{
    static const std::regex incRe(
        R"(^\s*#\s*include\s+"([A-Za-z_0-9]+)/)");
    for (std::size_t i = 0; i < ctx.lx.raw.size(); ++i) {
        // String-literal bodies are blanked in the code view, so the
        // include path has to come from the raw line.
        std::smatch m;
        if (!std::regex_search(ctx.lx.raw[i], m, incRe))
            continue;
        const auto inc = layerByName(m[1].str());
        if (!inc)
            continue; // system-ish or unknown prefix: not layered
        if (layerRank(*inc) > layerRank(ctx.layer))
            ctx.add("L1", i,
                    std::string("layering violation: ") +
                        layerName(ctx.layer) + " must not include " +
                        layerName(*inc) + " (DAG: sim <- net <- inet "
                        "<- host <- nic <- qpip <- apps <- "
                        "{tests,bench,examples})");
    }

    // The transport engines are the NIC's private internals: even
    // layers above nic in the DAG (qpip, apps, tests, bench) must
    // not reach into them — the verbs surface is the public seam.
    static const std::regex privRe(
        R"(^\s*#\s*include\s+"nic/transport/)");
    for (std::size_t i = 0; i < ctx.lx.raw.size(); ++i) {
        if (!std::regex_search(ctx.lx.raw[i], privRe))
            continue;
        if (ctx.layer == Layer::Nic)
            continue;
        ctx.add("L1", i,
                "layering violation: nic/transport/ headers are "
                "private to the nic layer; drive transports through "
                "the qpip verbs surface");
    }
}

// --- W1: wire-format hygiene --------------------------------------

bool
wireAllowlisted(const std::string &path)
{
    const std::string p = normalize(path);
    return p.find("inet/checksum.") != std::string::npos ||
           p.find("net/serialize.") != std::string::npos;
}

void
ruleW1(Ctx &ctx)
{
    static const std::regex castRe(R"(\breinterpret_cast\b)");
    static const std::regex memcpyRe(R"(\bmemcpy\s*\()");
    for (std::size_t i = 0; i < ctx.lx.code.size(); ++i) {
        if (std::regex_search(ctx.lx.code[i], castRe))
            ctx.add("W1", i,
                    "reinterpret_cast near wire data: serialize "
                    "through net::Serializer / inet::checksum "
                    "byte-order helpers instead");
        if (std::regex_search(ctx.lx.code[i], memcpyRe))
            ctx.add("W1", i,
                    "raw memcpy: wire I/O must go through "
                    "net::Serializer / inet::checksum byte-order "
                    "helpers");
    }
}

// --- T1: threading primitives outside the sim layer ---------------

/**
 * The parallel engine (src/sim) is the one place allowed to spawn
 * threads and synchronize: every other layer runs single-threaded
 * within its partition, and ad-hoc locking there would hide
 * scheduling nondeterminism the engine's barrier protocol exists to
 * prevent. Model-level concurrency belongs in events, not threads.
 */
void
ruleT1(Ctx &ctx)
{
    static const std::regex incRe(
        R"(^\s*#\s*include\s*<(thread|mutex|shared_mutex|atomic|)"
        R"(condition_variable|stop_token|barrier|latch|semaphore|)"
        R"(future)>)");
    static const std::regex useRe(
        R"(\bstd\s*::\s*(thread|jthread|mutex|recursive_mutex|)"
        R"(timed_mutex|recursive_timed_mutex|shared_mutex|)"
        R"(shared_timed_mutex|condition_variable|)"
        R"(condition_variable_any|atomic\w*|lock_guard|unique_lock|)"
        R"(scoped_lock|shared_lock|promise|future|async|call_once|)"
        R"(once_flag)\b)");
    static const std::regex tlsRe(R"(\bthread_local\b)");
    for (std::size_t i = 0; i < ctx.lx.code.size(); ++i) {
        const std::string &l = ctx.lx.code[i];
        std::smatch m;
        if (std::regex_search(l, m, incRe)) {
            ctx.add("T1", i,
                    "#include <" + m[1].str() +
                        "> outside src/sim: threading primitives "
                        "live in the parallel engine; partitioned "
                        "code is single-threaded");
        } else if (std::regex_search(l, m, useRe)) {
            ctx.add("T1", i,
                    "std::" + m[1].str() +
                        " outside src/sim: the parallel engine owns "
                        "all synchronization; model concurrency with "
                        "events, not threads");
        } else if (std::regex_search(l, tlsRe)) {
            ctx.add("T1", i,
                    "thread_local outside src/sim: per-thread state "
                    "in model code hides scheduling dependence; bind "
                    "state to the SimObject or partition instead");
        }
    }
}

// --- H1: header guard style ---------------------------------------

void
ruleH1(Ctx &ctx)
{
    for (const auto &l : ctx.lx.code)
        if (l.find("#pragma once") != std::string::npos)
            return;
    ctx.diags.push_back(Diagnostic{
        "H1", ctx.path, 1,
        "header must use '#pragma once' (no #ifndef guards)"});
}

} // namespace

std::vector<Diagnostic>
lintFile(const std::string &path, const std::string &contents)
{
    const Lexed lx = lex(contents);
    const auto waivers = collectWaivers(lx);
    const Layer layer =
        layerDirective(lx).value_or(classifyPath(path));

    std::vector<Diagnostic> diags;
    Ctx ctx{path, layer, lx, waivers, diags};

    if (layer != Layer::Top) {
        ruleD1(ctx);
        ruleD2(ctx);
        if (!wireAllowlisted(path))
            ruleW1(ctx);
        if (layer != Layer::Sim)
            ruleT1(ctx);
    }
    ruleL1(ctx);
    if (isHeader(path))
        ruleH1(ctx);

    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return diags;
}

std::vector<Diagnostic>
lintPath(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {Diagnostic{"IO", path, 0, "cannot open file"}};
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintFile(path, ss.str());
}

std::vector<std::string>
collectTree(const std::string &root)
{
    std::vector<std::string> out;
    const fs::path base(root);
    for (const char *dir : {"src", "tests", "bench", "examples",
                            "tools"}) {
        const fs::path d = base / dir;
        if (!fs::exists(d))
            continue;
        for (auto it = fs::recursive_directory_iterator(d);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "lint_fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".cc" && ext != ".cpp" && ext != ".hh" &&
                ext != ".h")
                continue;
            out.push_back(
                fs::relative(it->path(), base).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<std::string>
filesFromCompileCommands(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::vector<std::string> out;
    static const std::regex fileRe(
        R"rx("file"\s*:\s*"((?:[^"\\]|\\.)*)")rx");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), fileRe);
         it != std::sregex_iterator(); ++it) {
        std::string raw = (*it)[1].str(), un;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] == '\\' && i + 1 < raw.size())
                un += raw[++i];
            else
                un += raw[i];
        }
        out.push_back(un);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace qpip::lint
