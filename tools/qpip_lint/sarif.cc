#include "sarif.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace qpip::lint {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
ruleDescription(const std::string &rule)
{
    if (rule == "D1") return "No nondeterminism sources in src/";
    if (rule == "D2") return "No iteration over unordered containers";
    if (rule == "L1") return "Include layering must follow the DAG";
    if (rule == "W1") return "Wire bytes only via the serializers";
    if (rule == "T1") return "Threading primitives only under src/sim";
    if (rule == "H1") return "Headers use #pragma once";
    if (rule == "S1") return "Stat paths must resolve against the registry";
    if (rule == "W2") return "serialize/parse field sequences must pair";
    if (rule == "T2") return "Cross-partition access via Link/Mailbox only";
    if (rule == "E1") return "No by-reference captures in deferred callbacks";
    if (rule == "A1") return "Waivers must still suppress a live finding";
    if (rule == "IO") return "File could not be read";
    return "qpip-lint finding";
}

} // namespace

std::string
toSarif(const std::vector<Diagnostic> &diags)
{
    // Rules referenced by the findings, in stable (sorted) order.
    std::map<std::string, int> ruleIndex;
    for (const auto &d : diags)
        ruleIndex.emplace(d.rule, 0);
    {
        int i = 0;
        for (auto &[id, idx] : ruleIndex)
            idx = i++;
    }

    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-"
          "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"qpip-lint\",\n"
       << "          \"version\": \"2.0.0\",\n"
       << "          \"informationUri\": "
          "\"https://example.invalid/qpip/DESIGN.md\",\n"
       << "          \"rules\": [\n";
    {
        std::size_t i = 0;
        for (const auto &[id, idx] : ruleIndex) {
            os << "            {\n"
               << "              \"id\": \"" << jsonEscape(id)
               << "\",\n"
               << "              \"shortDescription\": { \"text\": \""
               << jsonEscape(ruleDescription(id)) << "\" }\n"
               << "            }"
               << (++i < ruleIndex.size() ? "," : "") << "\n";
        }
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const auto &d = diags[i];
        std::string uri = d.file;
        std::replace(uri.begin(), uri.end(), '\\', '/');
        os << "        {\n"
           << "          \"ruleId\": \"" << jsonEscape(d.rule)
           << "\",\n"
           << "          \"ruleIndex\": " << ruleIndex[d.rule] << ",\n"
           << "          \"level\": \"error\",\n"
           << "          \"message\": { \"text\": \""
           << jsonEscape(d.message) << "\" },\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": { \"uri\": \""
           << jsonEscape(uri) << "\" },\n"
           << "                \"region\": { \"startLine\": "
           << std::max(d.line, 1) << " }\n"
           << "              }\n"
           << "            }\n"
           << "          ]\n"
           << "        }" << (i + 1 < diags.size() ? "," : "") << "\n";
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

} // namespace qpip::lint
