/**
 * @file
 * qpip-lint internals shared between the driver (lint.cc), the index
 * builder (index.cc) and the rule families under rules/. Not part of
 * the public surface — tests and the CLI go through lint.hh.
 */

#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace qpip::lint::detail {

/**
 * The lexed view of one file: per physical line, the code text with
 * comments removed and string/char literal bodies blanked (the
 * delimiting quotes survive as "" so call shapes stay parseable),
 * the comment text (for waiver directives), and the literal bodies
 * in source order (for the path-literal rules).
 */
struct Lexed
{
    /** Untouched physical lines (needed for #include paths). */
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<std::string> comments;
    /** Per line: the bodies of its string literals, in order. */
    std::vector<std::vector<std::string>> strings;
};

Lexed lex(const std::string &text);

/**
 * Per line: waiver tokens in effect -> the physical line index of
 * the comment that granted them (a trailing comment waives its own
 * line; a comment-only line waives the next code line, chaining
 * through blank/comment lines).
 */
using WaiverMap = std::vector<std::map<std::string, int>>;

WaiverMap collectWaivers(const Lexed &lx);

/** One lexed file plus everything derived from it. */
struct FileData
{
    std::string path;
    Layer layer = Layer::Top;
    bool wireFile = false; ///< net/serialize.* or fixture directive
    Lexed lx;
    WaiverMap waivers;
    /** Code text joined with '\n', plus each line's start offset. */
    std::string all;
    std::vector<std::size_t> starts;

    std::size_t lineOf(std::size_t offset) const;
};

FileData makeFileData(const std::string &path,
                      const std::string &contents);

bool isHeaderPath(const std::string &path);
bool wireAllowlisted(const std::string &path);

/**
 * Diagnostic sink with waiver accounting: suppressions are recorded
 * as (file, waiver-origin-line, token) so the stale-waiver audit can
 * tell which waivers earned their keep.
 */
struct Sink
{
    std::vector<Diagnostic> diags;
    /** Waiver sites that suppressed at least one finding. */
    std::set<std::pair<const FileData *, int>> usedWaivers;

    void add(const FileData &f, const std::string &rule,
             std::size_t line_idx, std::string msg);
};

/** Per-file rule context (the v1 shape, now over FileData + Sink). */
struct Ctx
{
    const FileData &f;
    Sink &sink;

    void
    add(const std::string &rule, std::size_t line_idx, std::string msg)
    {
        sink.add(f, rule, line_idx, std::move(msg));
    }
};

// --- per-file rule families (rules/file_rules.cc) -------------------

void ruleD1(Ctx &ctx);
void ruleD2(Ctx &ctx);
void ruleL1(Ctx &ctx);
void ruleW1(Ctx &ctx);
void ruleT1(Ctx &ctx);
void ruleH1(Ctx &ctx);

// --- the shared project index (index.cc) ----------------------------

/** One stat registration site. */
struct StatAddSite
{
    const FileData *file = nullptr;
    std::size_t line = 0;
    /** Receiver spelling ("group_", "stats_", "reg", "" for regStat). */
    std::string receiver;
    /** Literal fragments of the first argument, in order. */
    std::vector<std::string> literals;
    /** True when the first argument is one literal and nothing else. */
    bool wholeLiteral = false;
    /** Identifiers called inside the first argument (tag functions). */
    std::vector<std::string> calledFns;
    /** Brace-depth-zero scope ordinal (for duplicate detection). */
    int scopeId = 0;
};

/** One stat lookup site (counter/counterValue/sample/.../match). */
struct StatLookupSite
{
    const FileData *file = nullptr;
    std::size_t line = 0;
    std::string kind;
    std::vector<std::string> literals;
    bool wholeLiteral = false;
    /** The argument expression ends with a string literal. */
    bool endsWithLiteral = false;
};

/** A serializeXxx or parseXxx function body's canonical field ops. */
struct WireFn
{
    const FileData *file = nullptr;
    std::size_t line = 0;
    std::string name; ///< suffix after serialize/parse
    /** Canonical tokens: u8,u16,u32,u64,bytes,pad,case:<Label>. */
    std::vector<std::string> ops;
};

struct ProjectIndex
{
    std::vector<StatAddSite> statAdds;
    std::vector<StatLookupSite> statLookups;
    /** Full dotted literals registered in one piece. */
    std::set<std::string> statLeafPaths;
    /** Every complete segment seen at a registration site. */
    std::set<std::string> statSegments;
    /** serialize<name> / parse<name> with field ops, by name suffix. */
    std::map<std::string, WireFn> serializers;
    std::map<std::string, WireFn> parsers;
};

ProjectIndex buildIndex(const std::vector<FileData> &files);

// --- project-wide rule families (rules/*.cc) ------------------------

void ruleS1(const ProjectIndex &ix, Sink &sink);
void ruleW2(const ProjectIndex &ix, Sink &sink);
void ruleT2(const FileData &f, Sink &sink);
void ruleE1(const FileData &f, Sink &sink);

/** Skip a balanced <...> starting at @p pos (which must be '<'). */
std::size_t skipAngles(const std::string &s, std::size_t pos);

/** Skip a balanced (...) starting at @p pos (which must be '('). */
std::size_t skipParens(const std::string &s, std::size_t pos);

/** '*' matches any run, '?' exactly one (mirrors statPatternMatch). */
bool globMatch(const std::string &pattern, const std::string &text);

} // namespace qpip::lint::detail
