/**
 * @file
 * SARIF 2.1.0 emission for qpip-lint findings, consumable by GitHub
 * code scanning (codeql-action/upload-sarif) and any SARIF viewer.
 */

#pragma once

#include <string>
#include <vector>

#include "lint.hh"

namespace qpip::lint {

/**
 * Render @p diags as one SARIF 2.1.0 run. Rule metadata is derived
 * from the rule ids present in the findings; file URIs are emitted
 * as given (relative paths recommended), with backslashes normalized.
 */
std::string toSarif(const std::vector<Diagnostic> &diags);

} // namespace qpip::lint
