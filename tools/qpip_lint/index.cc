/**
 * @file
 * Pass 1 of the project-wide lint: one walk over every lexed file
 * builds the shared index the cross-file rule families (S1, W2) run
 * against — stat registration/lookup sites with their literal
 * fragments, tag-function return literals, and serialize/parse field
 * sequences. Everything here works on the code view (comments gone,
 * string bodies blanked to "") with the literal bodies re-attached by
 * offset, so call shapes parse without a real C++ frontend.
 */

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <string>
#include <vector>

#include "internal.hh"

namespace qpip::lint::detail {

namespace {

/** One string literal: offset of its opening quote in f.all + body. */
struct Lit
{
    std::size_t offset = 0;
    const std::string *body = nullptr;
};

/**
 * Re-attach literal bodies to their (blanked) positions in the joined
 * code view: quote characters in the code come in pairs, pair j on
 * line i is lx.strings[i][j].
 */
std::vector<Lit>
literalPositions(const FileData &f)
{
    std::vector<Lit> out;
    for (std::size_t i = 0; i < f.lx.code.size(); ++i) {
        std::size_t pair = 0;
        bool open = false;
        for (std::size_t c = 0; c < f.lx.code[i].size(); ++c) {
            if (f.lx.code[i][c] != '"')
                continue;
            if (!open) {
                if (pair < f.lx.strings[i].size())
                    out.push_back(Lit{f.starts[i] + c,
                                      &f.lx.strings[i][pair]});
                ++pair;
            }
            open = !open;
        }
    }
    return out;
}

std::vector<const std::string *>
literalsInRange(const std::vector<Lit> &lits, std::size_t begin,
                std::size_t end)
{
    std::vector<const std::string *> out;
    for (const auto &l : lits)
        if (l.offset >= begin && l.offset < end)
            out.push_back(l.body);
    return out;
}

/**
 * Offsets where a top-level brace group closed; the scope ordinal of
 * an offset is how many groups closed before it. Good enough to tell
 * "same function" apart for duplicate-registration detection.
 */
std::vector<std::size_t>
scopeBoundaries(const std::string &all)
{
    std::vector<std::size_t> out;
    int depth = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i] == '{')
            ++depth;
        else if (all[i] == '}' && depth > 0 && --depth == 0)
            out.push_back(i);
    }
    return out;
}

int
scopeIdAt(const std::vector<std::size_t> &bounds, std::size_t offset)
{
    return static_cast<int>(
        std::upper_bound(bounds.begin(), bounds.end(), offset) -
        bounds.begin());
}

/** End offset (exclusive) of the first top-level call argument. */
std::size_t
firstArgEnd(const std::string &all, std::size_t open, std::size_t close)
{
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
        const char c = all[i];
        if (c == '(' || c == '[' || c == '{')
            ++depth;
        else if (c == ')' || c == ']' || c == '}')
            --depth;
        else if (c == ',' && depth == 0)
            return i;
    }
    return close > 0 ? close - 1 : close;
}

/** Identifier ending right before @p pos (walking back over ws). */
std::string
identBefore(const std::string &all, std::size_t pos)
{
    while (pos > 0 && std::isspace(static_cast<unsigned char>(
                          all[pos - 1])))
        --pos;
    std::size_t end = pos;
    while (pos > 0 &&
           (std::isalnum(static_cast<unsigned char>(all[pos - 1])) ||
            all[pos - 1] == '_'))
        --pos;
    return all.substr(pos, end - pos);
}

/**
 * Is the add/lookup site in a file the stat rules cover? The tool's
 * own sources use ".add(" for diagnostics, so tools/ (and examples/)
 * stay out of the stat index entirely.
 */
bool
statScope(const std::string &path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    if (p.find("tools/") != std::string::npos ||
        p.find("examples/") != std::string::npos)
        return false;
    return p.find("src/") != std::string::npos ||
           p.find("tests/") != std::string::npos ||
           p.find("bench/") != std::string::npos ||
           classifyPath(p) != Layer::Top;
}

/** Identifiers directly followed by '(' inside [begin, end). */
std::vector<std::string>
calledFnsIn(const std::string &all, std::size_t begin, std::size_t end)
{
    std::vector<std::string> out;
    static const std::regex re(R"(([A-Za-z_]\w*)\s*\()");
    const std::string slice = all.substr(begin, end - begin);
    for (auto it = std::sregex_iterator(slice.begin(), slice.end(), re);
         it != std::sregex_iterator(); ++it)
        out.push_back((*it)[1].str());
    return out;
}

/**
 * Functions defined in the repo style — name at column 0, return type
 * on the previous line — whose bodies 'return "literal";'. These are
 * the stat tag functions (fwStageTag and friends): their return
 * literals are complete path tokens by construction.
 */
void
collectTagFns(const FileData &f, const std::vector<Lit> &lits,
              std::map<std::string, std::vector<std::string>> &out)
{
    static const std::regex defRe(R"((^|\n)([A-Za-z_]\w*)\s*\()");
    const std::string &all = f.all;
    for (auto it = std::sregex_iterator(all.begin(), all.end(), defRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(
            it->position(2) + (*it)[2].length());
        std::size_t parenOpen = all.find('(', open);
        if (parenOpen == std::string::npos)
            continue;
        const std::size_t parenEnd = skipParens(all, parenOpen);
        if (parenEnd == std::string::npos)
            continue;
        std::size_t p = parenEnd;
        while (p < all.size() && std::isspace(static_cast<unsigned char>(
                                     all[p])))
            ++p;
        if (p >= all.size() || all[p] != '{')
            continue; // declaration, not a definition
        int depth = 0;
        std::size_t bodyEnd = p;
        for (; bodyEnd < all.size(); ++bodyEnd) {
            if (all[bodyEnd] == '{')
                ++depth;
            else if (all[bodyEnd] == '}' && --depth == 0)
                break;
        }
        static const std::regex retRe(R"(\breturn\s*")");
        const std::string body = all.substr(p, bodyEnd - p);
        for (auto rit =
                 std::sregex_iterator(body.begin(), body.end(), retRe);
             rit != std::sregex_iterator(); ++rit) {
            const std::size_t quote = p +
                static_cast<std::size_t>(rit->position()) +
                static_cast<std::size_t>(rit->length()) - 1;
            for (const auto &l : lits) {
                if (l.offset == quote) {
                    out[(*it)[2].str()].push_back(*l.body);
                    break;
                }
            }
        }
    }
}

void
collectStatSites(const FileData &f, const std::vector<Lit> &lits,
                 ProjectIndex &ix)
{
    const std::string &all = f.all;
    const std::vector<std::size_t> scopes = scopeBoundaries(all);

    static const std::regex addRe(
        R"((\bregStat|\.\s*add|->\s*add)\s*\()");
    for (auto it = std::sregex_iterator(all.begin(), all.end(), addRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(
            it->position() + it->length() - 1);
        const std::size_t close = skipParens(all, open);
        if (close == std::string::npos)
            continue;
        const std::size_t argEnd = firstArgEnd(all, open, close);
        const auto bodies = literalsInRange(lits, open + 1, argEnd);
        if (bodies.empty())
            continue; // first argument carries no literal: not a stat
        StatAddSite site;
        site.file = &f;
        site.line = f.lineOf(static_cast<std::size_t>(it->position()));
        const std::string head = (*it)[1].str();
        site.receiver = head.starts_with("regStat")
                            ? "this"
                            : identBefore(all, static_cast<std::size_t>(
                                                   it->position()));
        for (const auto *b : bodies)
            site.literals.push_back(*b);
        // Whole-literal: the argument is exactly one string literal.
        std::string arg = all.substr(open + 1, argEnd - open - 1);
        arg.erase(std::remove_if(arg.begin(), arg.end(),
                                 [](char c) {
                                     return std::isspace(
                                         static_cast<unsigned char>(c));
                                 }),
                  arg.end());
        site.wholeLiteral = arg == "\"\"";
        site.calledFns = calledFnsIn(all, open + 1, argEnd);
        site.scopeId = scopeIdAt(
            scopes, static_cast<std::size_t>(it->position()));
        ix.statAdds.push_back(std::move(site));
    }

    static const std::regex lookRe(
        R"((\.|->)\s*(counter|counterValue|sample|histogram|match|jsonDump)\s*\()");
    for (auto it = std::sregex_iterator(all.begin(), all.end(), lookRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(
            it->position() + it->length() - 1);
        const std::size_t close = skipParens(all, open);
        if (close == std::string::npos)
            continue;
        const std::size_t argEnd = firstArgEnd(all, open, close);
        const auto bodies = literalsInRange(lits, open + 1, argEnd);
        if (bodies.empty())
            continue; // computed path: nothing to check statically
        StatLookupSite site;
        site.file = &f;
        site.line = f.lineOf(static_cast<std::size_t>(it->position()));
        site.kind = (*it)[2].str();
        for (const auto *b : bodies)
            site.literals.push_back(*b);
        std::string arg = all.substr(open + 1, argEnd - open - 1);
        const auto first = arg.find_first_not_of(" \t\n");
        const auto last = arg.find_last_not_of(" \t\n");
        site.wholeLiteral = first != std::string::npos &&
                            arg[first] == '"' && arg[last] == '"' &&
                            bodies.size() == 1 && last == first + 1;
        site.endsWithLiteral =
            last != std::string::npos && arg[last] == '"';
        ix.statLookups.push_back(std::move(site));
    }
}

std::vector<std::string>
splitDots(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == '.') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

/**
 * Fold one registration site into the declared sets. Whole literals
 * are full (relative) paths; fragments contribute only their
 * dot-bounded segments; tag-function return literals are complete
 * tokens by construction.
 */
void
declareSite(const StatAddSite &site,
            const std::map<std::string, std::vector<std::string>> &tagFns,
            ProjectIndex &ix)
{
    if (site.wholeLiteral) {
        const std::string &path = site.literals[0];
        ix.statLeafPaths.insert(path);
        for (const auto &seg : splitDots(path))
            if (!seg.empty())
                ix.statSegments.insert(seg);
        return;
    }
    for (std::size_t k = 0; k < site.literals.size(); ++k) {
        const std::string &lit = site.literals[k];
        if (lit.empty() || lit == ".")
            continue;
        const bool startsDot = lit.front() == '.';
        const bool endsDot = lit.back() == '.';
        const auto pieces = splitDots(lit);
        for (std::size_t j = 0; j < pieces.size(); ++j) {
            if (pieces[j].empty())
                continue;
            const bool left = j > 0 || startsDot || k == 0;
            const bool right = j + 1 < pieces.size() || endsDot;
            if (left && right)
                ix.statSegments.insert(pieces[j]);
        }
    }
    for (const auto &fn : site.calledFns) {
        const auto it = tagFns.find(fn);
        if (it == tagFns.end())
            continue;
        for (const auto &lit : it->second)
            for (const auto &seg : splitDots(lit))
                if (!seg.empty())
                    ix.statSegments.insert(seg);
    }
}

// --- wire function extraction -------------------------------------

void
collectWireFns(const FileData &f, ProjectIndex &ix)
{
    const std::string &all = f.all;
    static const std::regex defRe(
        R"((^|\n)(serialize|parse)([A-Za-z_]\w*)\s*\()");
    for (auto it = std::sregex_iterator(all.begin(), all.end(), defRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t nameAt =
            static_cast<std::size_t>(it->position(2));
        std::size_t parenOpen = all.find('(', nameAt);
        if (parenOpen == std::string::npos)
            continue;
        const std::size_t parenEnd = skipParens(all, parenOpen);
        if (parenEnd == std::string::npos)
            continue;
        std::size_t p = parenEnd;
        while (p < all.size() && std::isspace(static_cast<unsigned char>(
                                     all[p])))
            ++p;
        if (p >= all.size() || all[p] != '{')
            continue; // declaration only
        int depth = 0;
        std::size_t bodyEnd = p;
        for (; bodyEnd < all.size(); ++bodyEnd) {
            if (all[bodyEnd] == '{')
                ++depth;
            else if (all[bodyEnd] == '}' && --depth == 0)
                break;
        }
        const std::string body = all.substr(p, bodyEnd - p);

        const bool isSer = (*it)[2].str() == "serialize";
        static const std::regex varRe(
            R"(\bByte(Writer|Reader)\s+(\w+)\s*[;({])");
        std::smatch vm;
        std::string var;
        if (std::regex_search(body, vm, varRe))
            var = vm[2].str();
        if (var.empty())
            continue; // no writer/reader: not a field-op body

        WireFn fn;
        fn.file = &f;
        fn.line = f.lineOf(nameAt);
        fn.name = (*it)[3].str();

        const std::regex opRe(
            "\\b" + var +
            R"(\s*\.\s*(u8|u16|u32|u64|bytes|rest|zeros|skip)\s*\()");
        static const std::regex caseRe(R"(\bcase\s+([\w:]+)\s*:)");
        struct Op
        {
            std::size_t at;
            std::string tok;
        };
        std::vector<Op> ops;
        for (auto oit =
                 std::sregex_iterator(body.begin(), body.end(), opRe);
             oit != std::sregex_iterator(); ++oit) {
            std::string t = (*oit)[1].str();
            if (t == "rest")
                t = "bytes";
            else if (t == "zeros" || t == "skip")
                t = "pad";
            ops.push_back(
                Op{static_cast<std::size_t>(oit->position()), t});
        }
        for (auto cit =
                 std::sregex_iterator(body.begin(), body.end(), caseRe);
             cit != std::sregex_iterator(); ++cit) {
            std::string label = (*cit)[1].str();
            const auto sep = label.rfind("::");
            if (sep != std::string::npos)
                label = label.substr(sep + 2);
            ops.push_back(Op{static_cast<std::size_t>(cit->position()),
                             "case:" + label});
        }
        std::sort(ops.begin(), ops.end(),
                  [](const Op &a, const Op &b) { return a.at < b.at; });
        for (auto &op : ops)
            fn.ops.push_back(std::move(op.tok));

        auto &dst = isSer ? ix.serializers : ix.parsers;
        dst.emplace(fn.name, std::move(fn));
    }
}

} // namespace

ProjectIndex
buildIndex(const std::vector<FileData> &files)
{
    ProjectIndex ix;

    // Tag functions first: registration sites in any file may call
    // tag functions defined in another.
    std::map<std::string, std::vector<std::string>> tagFns;
    std::map<const FileData *, std::vector<Lit>> litCache;
    for (const auto &f : files) {
        litCache[&f] = literalPositions(f);
        if (statScope(f.path))
            collectTagFns(f, litCache[&f], tagFns);
    }

    for (const auto &f : files) {
        if (statScope(f.path))
            collectStatSites(f, litCache[&f], ix);
        if (f.wireFile)
            collectWireFns(f, ix);
    }

    for (const auto &site : ix.statAdds)
        declareSite(site, tagFns, ix);

    return ix;
}

} // namespace qpip::lint::detail
