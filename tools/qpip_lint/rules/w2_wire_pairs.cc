/**
 * @file
 * W2: wire-format pairing. Every serializeXxx in a wire file needs a
 * parseXxx whose canonical field-op sequence (widths, order, branch
 * labels) mirrors the put sequence — the static form of the pcap
 * round-trip tests, catching header drift at lint time instead.
 */

#include <sstream>
#include <string>

#include "../internal.hh"

namespace qpip::lint::detail {

namespace {

std::string
opsToString(const std::vector<std::string> &ops)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < ops.size(); ++i)
        os << (i ? " " : "") << ops[i];
    return os.str();
}

void
comparePair(const WireFn &ser, const WireFn &par, Sink &sink)
{
    const std::size_t n = std::min(ser.ops.size(), par.ops.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (ser.ops[i] == par.ops[i])
            continue;
        sink.add(*par.file, "W2", par.line,
                 "parse" + par.name + " diverges from serialize" +
                     ser.name + " at field op #" + std::to_string(i + 1) +
                     ": put '" + ser.ops[i] + "' vs get '" +
                     par.ops[i] + "' (put: [" + opsToString(ser.ops) +
                     "], get: [" + opsToString(par.ops) + "])");
        return;
    }
    if (ser.ops.size() != par.ops.size())
        sink.add(*par.file, "W2", par.line,
                 "parse" + par.name + " reads " +
                     std::to_string(par.ops.size()) +
                     " field ops but serialize" + ser.name +
                     " writes " + std::to_string(ser.ops.size()) +
                     " (put: [" + opsToString(ser.ops) + "], get: [" +
                     opsToString(par.ops) + "])");
}

} // namespace

void
ruleW2(const ProjectIndex &ix, Sink &sink)
{
    for (const auto &[name, ser] : ix.serializers) {
        const auto pit = ix.parsers.find(name);
        if (pit == ix.parsers.end()) {
            sink.add(*ser.file, "W2", ser.line,
                     "serialize" + name + " has no matching parse" +
                         name + ": every wire writer needs the "
                         "symmetric reader next to it");
            continue;
        }
        comparePair(ser, pit->second, sink);
    }
    for (const auto &[name, par] : ix.parsers) {
        if (!ix.serializers.count(name))
            sink.add(*par.file, "W2", par.line,
                     "parse" + name + " has no matching serialize" +
                         name + ": every wire reader needs the "
                         "symmetric writer next to it");
    }
}

} // namespace qpip::lint::detail
