/**
 * @file
 * E1: no by-reference captures in deferred callbacks. A closure
 * handed to schedule()/scheduleIn()/exec()/scheduleTimer() runs
 * after the enclosing frame is gone — and after the referenced
 * object may have been destroyed (destroyQp erases the QP
 * immediately) — so [&] / [&x] there is the PR 5 use-after-free
 * class. Capture by value, or capture an id and re-look-up inside
 * the callback.
 */

#include <cctype>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "../internal.hh"

namespace qpip::lint::detail {

namespace {

/** Split a capture list on top-level commas. */
std::vector<std::string>
splitCaptures(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (const char c : list) {
        if (c == '(' || c == '{' || c == '<' || c == '[')
            ++depth;
        else if (c == ')' || c == '}' || c == '>' || c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\n");
    return s.substr(b, e - b + 1);
}

} // namespace

void
ruleE1(const FileData &f, Sink &sink)
{
    if (f.layer == Layer::Top)
        return;

    const std::string &all = f.all;
    static const std::regex sinkRe(
        R"(\b(schedule|scheduleIn|exec|scheduleTimer)\s*\()");
    // Nested sinks see the same lambda twice; dedupe per line+names.
    std::set<std::pair<std::size_t, std::string>> reported;

    for (auto it = std::sregex_iterator(all.begin(), all.end(), sinkRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open = static_cast<std::size_t>(
            it->position() + it->length() - 1);
        const std::size_t close = skipParens(all, open);
        if (close == std::string::npos)
            continue;
        for (std::size_t p = open + 1; p < close; ++p) {
            if (all[p] != '[')
                continue;
            // A lambda introducer follows '(' or ',' (an argument
            // position); after an identifier or ')' it is a
            // subscript.
            std::size_t q = p;
            while (q > 0 && std::isspace(static_cast<unsigned char>(
                                all[q - 1])))
                --q;
            if (q == 0 || (all[q - 1] != '(' && all[q - 1] != ','))
                continue;
            // Matching ']' (captures may nest brackets in inits).
            int depth = 0;
            std::size_t end = p;
            for (; end < close; ++end) {
                if (all[end] == '[')
                    ++depth;
                else if (all[end] == ']' && --depth == 0)
                    break;
            }
            if (end >= close)
                continue;
            const std::string list =
                all.substr(p + 1, end - p - 1);
            std::vector<std::string> refs;
            for (const auto &item : splitCaptures(list)) {
                const std::string t = trim(item);
                if (t.empty())
                    continue;
                if (t == "&" || (t[0] == '&' && t[1] != '&'))
                    refs.push_back(t == "&" ? "&" : t);
            }
            if (refs.empty())
                continue;
            std::string names;
            for (std::size_t i = 0; i < refs.size(); ++i)
                names += (i ? ", " : "") + refs[i];
            const std::size_t line = f.lineOf(p);
            if (!reported.emplace(line, names).second)
                continue;
            sink.add(f, "E1", line,
                     "by-reference capture [" + names +
                         "] in a callback passed to " +
                         (*it)[1].str() +
                         "(): the closure outlives this frame (and "
                         "possibly the referent) — capture by value, "
                         "or capture an id and re-look-up in the "
                         "callback");
        }
    }
}

} // namespace qpip::lint::detail
