/**
 * @file
 * T2: partition discipline. Model code outside src/sim runs inside
 * exactly one partition; mutable static state is shared across all of
 * them by construction, and scheduling directly into another object's
 * event queue bypasses the conservative-sync channel accounting.
 * Cross-partition traffic goes through the Link/Mailbox APIs
 * (net/link.* is the one sanctioned boundary and owns the eq-side
 * handoff).
 */

#include <algorithm>
#include <regex>
#include <string>

#include "../internal.hh"

namespace qpip::lint::detail {

namespace {

bool
linkBoundary(const std::string &path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p.find("net/link.") != std::string::npos;
}

/** Statement text from 'static' to the first of ';', '{' or '='. */
std::string
staticStatement(const FileData &f, std::size_t line, std::size_t col)
{
    std::string out;
    for (std::size_t i = line; i < f.lx.code.size() && i < line + 5;
         ++i) {
        const std::string &l = f.lx.code[i];
        for (std::size_t c = i == line ? col : 0; c < l.size(); ++c) {
            if (l[c] == ';' || l[c] == '{' || l[c] == '=')
                return out;
            out += l[c];
        }
        out += ' ';
    }
    return out;
}

} // namespace

void
ruleT2(const FileData &f, Sink &sink)
{
    if (f.layer == Layer::Top || f.layer == Layer::Sim)
        return;

    // (a) mutable static / namespace-scope data.
    static const std::regex staticRe(R"(\bstatic\b)");
    for (std::size_t i = 0; i < f.lx.code.size(); ++i) {
        std::smatch m;
        std::string::const_iterator from = f.lx.code[i].begin();
        while (std::regex_search(from, f.lx.code[i].cend(), m,
                                 staticRe)) {
            const std::size_t col = static_cast<std::size_t>(
                m.position() + (from - f.lx.code[i].begin()));
            from = m[0].second;
            const std::string stmt = staticStatement(f, i, col);
            if (stmt.find("static_assert") != std::string::npos ||
                stmt.find("static_cast") != std::string::npos)
                continue;
            static const std::regex constRe(
                R"(\bstatic\s+(const|constexpr|inline\s+const|)"
                R"(inline\s+constexpr)\b)");
            if (std::regex_search(stmt, constRe))
                continue;
            if (stmt.find('(') != std::string::npos)
                continue; // function or member-function declaration
            sink.add(f, "T2", i,
                     "mutable static state outside src/sim: statics "
                     "are shared across every partition, so writes "
                     "race under the parallel engine and break "
                     "same-seed replay; hang the state off the owning "
                     "SimObject");
        }
    }

    // (b) scheduling into a foreign event queue.
    if (linkBoundary(f.path))
        return;
    static const std::regex foreignRe(
        R"((eventQueue\s*\(\s*\)|\beq[A-Za-z0-9_]*)\s*(->|\.)\s*(schedule|scheduleIn)\s*\()");
    for (std::size_t i = 0; i < f.lx.code.size(); ++i) {
        if (std::regex_search(f.lx.code[i], foreignRe))
            sink.add(f, "T2", i,
                     "direct scheduling into an event queue outside "
                     "src/sim: cross-SimObject traffic must go "
                     "through the Link/Mailbox APIs so the "
                     "conservative sync protocol can account for it");
    }
}

} // namespace qpip::lint::detail
