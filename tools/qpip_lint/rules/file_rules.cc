/**
 * @file
 * The per-file rule families (D1/D2/L1/W1/T1/H1), unchanged in
 * behaviour from qpip-lint v1 but running over the shared FileData so
 * the waiver audit can account for their suppressions.
 */

#include <algorithm>
#include <optional>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "../internal.hh"

namespace qpip::lint::detail {

namespace {

std::optional<Layer>
layerByName(const std::string &name)
{
    for (Layer l : {Layer::Sim, Layer::Net, Layer::Inet, Layer::Host,
                    Layer::Nic, Layer::Qpip, Layer::Apps, Layer::Top})
        if (name == layerName(l))
            return l;
    return std::nullopt;
}

} // namespace

// --- D1: nondeterminism sources -----------------------------------

void
ruleD1(Ctx &ctx)
{
    struct Banned
    {
        std::regex re;
        const char *what;
    };
    static const std::vector<Banned> banned = {
        {std::regex(R"(\bs?rand\s*\()"),
         "C library rand()/srand() is not replay-deterministic; use "
         "sim::Random"},
        {std::regex(R"(\brandom_device\b)"),
         "std::random_device draws entropy from the OS; use the "
         "seeded sim::Random"},
        {std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
         "wall-clock time source; use sim::Clock / Simulation time"},
        {std::regex(R"(\b(gettimeofday|clock_gettime)\b)"),
         "wall-clock time source; use sim::Clock / Simulation time"},
        {std::regex(R"(\bgetpid\s*\()"),
         "process id varies across runs; derive ids from the seed"},
        {std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)?\s*\))"),
         "time() reads the wall clock; use sim::Clock / Simulation "
         "time"},
        {std::regex(R"(\bmap\s*<[^,<>]*\*\s*,)"),
         "pointer-keyed map: addresses vary across runs, so key "
         "order (and any iteration) is nondeterministic"},
    };
    for (std::size_t i = 0; i < ctx.f.lx.code.size(); ++i) {
        for (const auto &b : banned) {
            if (std::regex_search(ctx.f.lx.code[i], b.re))
                ctx.add("D1", i, b.what);
        }
    }
}

// --- D2: iteration over unordered containers ----------------------

void
ruleD2(Ctx &ctx)
{
    const std::string &all = ctx.f.all;
    auto lineOf = [&](std::size_t off) { return ctx.f.lineOf(off); };

    // Pass 1: names of variables (and type aliases) whose type is an
    // unordered associative container.
    static const std::regex declRe(R"(\bunordered_(map|set)\s*<)");
    static const std::regex nameRe(
        R"(^\s*[&*]?\s*([A-Za-z_]\w*)\s*([;={(),]))");
    static const std::regex aliasRe(R"(\busing\s+([A-Za-z_]\w*)\s*=\s*$)");
    std::set<std::string> unorderedVars, unorderedAliases;
    for (auto it = std::sregex_iterator(all.begin(), all.end(), declRe);
         it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            static_cast<std::size_t>(it->position()) + it->length() - 1;
        // "using Alias = std::unordered_map<...>;"
        const std::size_t pos = static_cast<std::size_t>(it->position());
        std::size_t bol = all.rfind('\n', pos);
        bol = bol == std::string::npos ? 0 : bol + 1;
        std::string before = all.substr(bol, pos - bol);
        // Strip a trailing "std::" qualifier so aliasRe can anchor.
        if (before.ends_with("std::"))
            before.erase(before.size() - 5);
        std::smatch am;
        if (std::regex_search(before, am, aliasRe)) {
            unorderedAliases.insert(am[1].str());
            continue;
        }
        const std::size_t end = skipAngles(all, open);
        if (end == std::string::npos)
            continue;
        std::smatch nm;
        const std::string after = all.substr(end, 160);
        if (std::regex_search(after, nm, nameRe))
            unorderedVars.insert(nm[1].str());
    }
    // Declarations through an alias: "Alias name;".
    for (const auto &alias : unorderedAliases) {
        const std::regex aliasDecl("\\b" + alias +
                                   R"(\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(),])");
        for (auto it =
                 std::sregex_iterator(all.begin(), all.end(), aliasDecl);
             it != std::sregex_iterator(); ++it)
            unorderedVars.insert((*it)[1].str());
    }
    if (unorderedVars.empty())
        return;

    auto lastComponent = [](std::string expr) {
        const auto dot = expr.find_last_of('.');
        if (dot != std::string::npos)
            expr = expr.substr(dot + 1);
        const auto arrow = expr.rfind("->");
        if (arrow != std::string::npos)
            expr = expr.substr(arrow + 2);
        return expr;
    };

    // Pass 2a: range-for over a tracked variable.
    static const std::regex rangeForRe(
        R"(\bfor\s*\([^;()]*:\s*([A-Za-z_][\w.]*(?:->[\w.]+)*)\s*\))");
    for (auto it =
             std::sregex_iterator(all.begin(), all.end(), rangeForRe);
         it != std::sregex_iterator(); ++it) {
        const std::string var = lastComponent((*it)[1].str());
        if (unorderedVars.count(var))
            ctx.add("D2", lineOf(static_cast<std::size_t>(it->position())),
                    "range-for over std::unordered container '" + var +
                        "': iteration order is hash/insertion "
                        "dependent and breaks same-seed replay");
    }

    // Pass 2b: iterator loops (x.begin() / cbegin / rbegin).
    static const std::regex beginRe(
        R"(([A-Za-z_][\w.]*(?:->[\w.]+)*)\s*\.\s*c?r?begin\s*\()");
    for (auto it = std::sregex_iterator(all.begin(), all.end(), beginRe);
         it != std::sregex_iterator(); ++it) {
        const std::string var = lastComponent((*it)[1].str());
        if (unorderedVars.count(var))
            ctx.add("D2", lineOf(static_cast<std::size_t>(it->position())),
                    "iterator walk over std::unordered container '" +
                        var + "': order is hash/insertion dependent "
                              "and breaks same-seed replay");
    }
}

// --- L1: include layering -----------------------------------------

void
ruleL1(Ctx &ctx)
{
    static const std::regex incRe(
        R"(^\s*#\s*include\s+"([A-Za-z_0-9]+)/)");
    for (std::size_t i = 0; i < ctx.f.lx.raw.size(); ++i) {
        // String-literal bodies are blanked in the code view, so the
        // include path has to come from the raw line.
        std::smatch m;
        if (!std::regex_search(ctx.f.lx.raw[i], m, incRe))
            continue;
        const auto inc = layerByName(m[1].str());
        if (!inc)
            continue; // system-ish or unknown prefix: not layered
        if (layerRank(*inc) > layerRank(ctx.f.layer))
            ctx.add("L1", i,
                    std::string("layering violation: ") +
                        layerName(ctx.f.layer) + " must not include " +
                        layerName(*inc) + " (DAG: sim <- net <- inet "
                        "<- host <- nic <- qpip <- apps <- "
                        "{tests,bench,examples})");
    }

    // The transport engines are the NIC's private internals: even
    // layers above nic in the DAG (qpip, apps, tests, bench) must
    // not reach into them — the verbs surface is the public seam.
    static const std::regex privRe(
        R"(^\s*#\s*include\s+"nic/transport/)");
    for (std::size_t i = 0; i < ctx.f.lx.raw.size(); ++i) {
        if (!std::regex_search(ctx.f.lx.raw[i], privRe))
            continue;
        if (ctx.f.layer == Layer::Nic)
            continue;
        ctx.add("L1", i,
                "layering violation: nic/transport/ headers are "
                "private to the nic layer; drive transports through "
                "the qpip verbs surface");
    }
}

// --- W1: wire-format hygiene --------------------------------------

void
ruleW1(Ctx &ctx)
{
    static const std::regex castRe(R"(\breinterpret_cast\b)");
    static const std::regex memcpyRe(R"(\bmemcpy\s*\()");
    for (std::size_t i = 0; i < ctx.f.lx.code.size(); ++i) {
        if (std::regex_search(ctx.f.lx.code[i], castRe))
            ctx.add("W1", i,
                    "reinterpret_cast near wire data: serialize "
                    "through net::Serializer / inet::checksum "
                    "byte-order helpers instead");
        if (std::regex_search(ctx.f.lx.code[i], memcpyRe))
            ctx.add("W1", i,
                    "raw memcpy: wire I/O must go through "
                    "net::Serializer / inet::checksum byte-order "
                    "helpers");
    }
}

// --- T1: threading primitives outside the sim layer ---------------

/**
 * The parallel engine (src/sim) is the one place allowed to spawn
 * threads and synchronize: every other layer runs single-threaded
 * within its partition, and ad-hoc locking there would hide
 * scheduling nondeterminism the engine's barrier protocol exists to
 * prevent. Model-level concurrency belongs in events, not threads.
 */
void
ruleT1(Ctx &ctx)
{
    static const std::regex incRe(
        R"(^\s*#\s*include\s*<(thread|mutex|shared_mutex|atomic|)"
        R"(condition_variable|stop_token|barrier|latch|semaphore|)"
        R"(future)>)");
    static const std::regex useRe(
        R"(\bstd\s*::\s*(thread|jthread|mutex|recursive_mutex|)"
        R"(timed_mutex|recursive_timed_mutex|shared_mutex|)"
        R"(shared_timed_mutex|condition_variable|)"
        R"(condition_variable_any|atomic\w*|lock_guard|unique_lock|)"
        R"(scoped_lock|shared_lock|promise|future|async|call_once|)"
        R"(once_flag)\b)");
    static const std::regex tlsRe(R"(\bthread_local\b)");
    for (std::size_t i = 0; i < ctx.f.lx.code.size(); ++i) {
        const std::string &l = ctx.f.lx.code[i];
        std::smatch m;
        if (std::regex_search(l, m, incRe)) {
            ctx.add("T1", i,
                    "#include <" + m[1].str() +
                        "> outside src/sim: threading primitives "
                        "live in the parallel engine; partitioned "
                        "code is single-threaded");
        } else if (std::regex_search(l, m, useRe)) {
            ctx.add("T1", i,
                    "std::" + m[1].str() +
                        " outside src/sim: the parallel engine owns "
                        "all synchronization; model concurrency with "
                        "events, not threads");
        } else if (std::regex_search(l, tlsRe)) {
            ctx.add("T1", i,
                    "thread_local outside src/sim: per-thread state "
                    "in model code hides scheduling dependence; bind "
                    "state to the SimObject or partition instead");
        }
    }
}

// --- H1: header guard style ---------------------------------------

void
ruleH1(Ctx &ctx)
{
    for (const auto &l : ctx.f.lx.code)
        if (l.find("#pragma once") != std::string::npos)
            return;
    ctx.sink.diags.push_back(Diagnostic{
        "H1", ctx.f.path, 1,
        "header must use '#pragma once' (no #ifndef guards)"});
}

} // namespace qpip::lint::detail
