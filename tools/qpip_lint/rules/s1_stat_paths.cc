/**
 * @file
 * S1: the stat-path registry rules. Registration literals must follow
 * the dotted-path grammar and be unique per receiver within a scope;
 * lookup/glob literals must resolve against the declared set — a
 * typo'd path otherwise compiles fine and silently reads 0 at
 * runtime, which is exactly how stat regressions hide.
 */

#include <map>
#include <regex>
#include <string>
#include <vector>

#include "../internal.hh"

namespace qpip::lint::detail {

namespace {

std::vector<std::string>
splitDots(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == '.') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

bool
hasGlob(const std::string &s)
{
    return s.find('*') != std::string::npos ||
           s.find('?') != std::string::npos;
}

/** Complete path: identifier segments joined by single dots. */
bool
pathGrammarOk(const std::string &s)
{
    static const std::regex re(R"(^[A-Za-z_]\w*(\.[A-Za-z_]\w*)*$)");
    return std::regex_match(s, re);
}

/** Fragment: like a path but may open and/or close on a dot. */
bool
fragmentGrammarOk(const std::string &s)
{
    if (s == ".")
        return true;
    static const std::regex re(
        R"(^\.?[A-Za-z_]\w*(\.[A-Za-z_]\w*)*\.?$)");
    return std::regex_match(s, re);
}

/** Does @p seg (possibly a glob) resolve against any known segment? */
bool
segmentResolves(const ProjectIndex &ix, const std::string &seg)
{
    if (ix.statSegments.count(seg))
        return true;
    if (!hasGlob(seg))
        return false;
    for (const auto &s : ix.statSegments)
        if (globMatch(seg, s))
            return true;
    return false;
}

void
checkLookup(const ProjectIndex &ix, const StatLookupSite &site,
            Sink &sink)
{
    if (site.wholeLiteral) {
        const std::string &path = site.literals[0];
        if (ix.statLeafPaths.count(path))
            return;
        if (hasGlob(path)) {
            for (const auto &leaf : ix.statLeafPaths)
                if (globMatch(path, leaf))
                    return;
        }
        // Registered full paths carry runtime prefixes ("host0.qnic.")
        // the index cannot see, so fall back to the final segment: it
        // must at least name a leaf some component registers.
        const auto pieces = splitDots(path);
        if (!pieces.empty() &&
            segmentResolves(ix, pieces.back()))
            return;
        sink.add(*site.file, "S1", site.line,
                 "stat " + site.kind + " path '" + path +
                     "' does not resolve against any registered stat "
                     "(typo'd paths silently read 0); register it or "
                     "fix the spelling");
        return;
    }
    // Concatenation: only dot-bounded fragments are checkable.
    for (std::size_t k = 0; k < site.literals.size(); ++k) {
        const std::string &lit = site.literals[k];
        if (lit.empty() || lit == ".")
            continue;
        const bool startsDot = lit.front() == '.';
        const bool endsDot = lit.back() == '.';
        const bool lastLit = k + 1 == site.literals.size();
        const auto pieces = splitDots(lit);
        for (std::size_t j = 0; j < pieces.size(); ++j) {
            if (pieces[j].empty())
                continue;
            const bool left = j > 0 || startsDot || k == 0;
            const bool right = j + 1 < pieces.size() || endsDot ||
                               (lastLit && site.endsWithLiteral);
            if (!left || !right)
                continue; // partial token: cannot be checked
            if (!segmentResolves(ix, pieces[j]))
                sink.add(*site.file, "S1", site.line,
                         "stat " + site.kind + " fragment '" + lit +
                             "': segment '" + pieces[j] +
                             "' is not part of any registered stat "
                             "path");
        }
    }
}

} // namespace

void
ruleS1(const ProjectIndex &ix, Sink &sink)
{
    // Registration sites: grammar + per-scope uniqueness.
    std::map<std::string, const StatAddSite *> seen;
    for (const auto &site : ix.statAdds) {
        for (const auto &lit : site.literals) {
            if (hasGlob(lit)) {
                sink.add(*site.file, "S1", site.line,
                         "stat registration literal '" + lit +
                             "' contains glob characters: "
                             "registered paths must be concrete");
                continue;
            }
            const bool ok = site.wholeLiteral ? pathGrammarOk(lit)
                                              : fragmentGrammarOk(lit);
            if (!ok)
                sink.add(*site.file, "S1", site.line,
                         "stat registration literal '" + lit +
                             "' does not match the dotted-path "
                             "grammar ident('.'ident)*");
        }
        if (site.wholeLiteral) {
            const std::string key = site.file->path + "\n" +
                                    std::to_string(site.scopeId) +
                                    "\n" + site.receiver + "\n" +
                                    site.literals[0];
            const auto [it, inserted] = seen.emplace(key, &site);
            if (!inserted)
                sink.add(*site.file, "S1", site.line,
                         "duplicate stat registration '" +
                             site.literals[0] + "' on '" +
                             site.receiver + "' (first at line " +
                             std::to_string(it->second->line + 1) +
                             "): the second add overwrites the "
                             "first entry's pointer");
        }
    }

    for (const auto &site : ix.statLookups)
        checkLookup(ix, site, sink);
}

} // namespace qpip::lint::detail
