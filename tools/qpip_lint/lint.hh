/**
 * @file
 * qpip-lint: a lightweight static-analysis pass over the project's
 * own sources. No libclang — a small lexer strips comments and
 * string literals, then per-rule pattern matchers enforce the
 * repository invariants that protect same-seed bit-identical replay
 * and the layering DAG:
 *
 *   D1  no nondeterminism sources in src/ (rand, random_device, wall
 *       clocks, argless time(), pointer-keyed maps);
 *   D2  no iteration over std::unordered_{map,set} in src/;
 *   L1  include layering must follow the DAG
 *       sim <- net <- inet <- host <- nic <- qpip <- apps
 *       <- {tests, bench, examples};
 *   W1  wire-format hygiene: no reinterpret_cast or memcpy outside
 *       the designated serializers (inet/checksum.*, net/serialize.*);
 *   T1  threading primitives (std::thread/mutex/atomic/..., the
 *       matching headers, thread_local) only under src/sim — the
 *       parallel engine owns all synchronization;
 *   H1  every header uses '#pragma once'.
 *
 * A violation line may carry a waiver comment
 *   // qpip-lint: <token>-ok(<reason>)
 * with a non-empty reason; the token names the rule (see
 * waiverToken()). Fixture files outside src/ can opt into a layer
 * with '// qpip-lint-layer: <name>'.
 */

#pragma once

#include <string>
#include <vector>

namespace qpip::lint {

/** One finding. Formatted as "<rule> <file>:<line>: <message>". */
struct Diagnostic
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;

    std::string format() const;
};

/** Layers of the include DAG, bottom (most fundamental) first. */
enum class Layer {
    Sim,
    Net,
    Inet,
    Host,
    Nic,
    Qpip,
    Apps,
    /** tests/, bench/, examples/, tools/: may include anything. */
    Top,
};

/** DAG rank: a file may only include layers of rank <= its own. */
int layerRank(Layer l);

/** Layer name as spelled in include paths ("sim", "inet", ...). */
const char *layerName(Layer l);

/**
 * Classify @p path by its directory ("src/inet/..." -> Inet;
 * tests/bench/examples/tools -> Top). Unrecognized paths are Top.
 */
Layer classifyPath(const std::string &path);

/** Waiver token for a rule id ("D2" -> "unordered-iter-ok"). */
const char *waiverToken(const std::string &rule);

/**
 * Lint one file. @p path is used for diagnostics and for layer /
 * allowlist classification; a '// qpip-lint-layer: <name>' directive
 * in @p contents overrides the path-derived layer (fixtures use
 * this). Diagnostics come back in line order.
 */
std::vector<Diagnostic> lintFile(const std::string &path,
                                 const std::string &contents);

/** Read @p path and lintFile() it. IO failure yields an IO finding. */
std::vector<Diagnostic> lintPath(const std::string &path);

/**
 * Collect the tree's lintable files under @p root: all .cc/.hh under
 * src/, plus headers and sources under tests/, bench/, examples/ and
 * tools/. tests/lint_fixtures/ is excluded — those files exist to
 * fail. Paths come back sorted, relative to @p root.
 */
std::vector<std::string> collectTree(const std::string &root);

/**
 * File list from a CMAKE_EXPORT_COMPILE_COMMANDS database: every
 * "file" entry, absolute. Minimal JSON scan, tolerant of formatting.
 */
std::vector<std::string> filesFromCompileCommands(const std::string &path);

} // namespace qpip::lint
