/**
 * @file
 * qpip-lint: a lightweight static-analysis pass over the project's
 * own sources. No libclang — a small lexer strips comments and
 * string literals (literal bodies are kept to the side for the
 * path-literal rules), then rules run in two passes: pass 1 builds a
 * project-wide index over every file handed in (stat-path literals,
 * serialize/parse field sequences, waiver sites), pass 2 runs the
 * rule families against it.
 *
 * Per-file rule families (as in v1):
 *
 *   D1  no nondeterminism sources in src/ (rand, random_device, wall
 *       clocks, argless time(), pointer-keyed maps);
 *   D2  no iteration over std::unordered_{map,set} in src/;
 *   L1  include layering must follow the DAG
 *       sim <- net <- inet <- host <- nic <- qpip <- apps
 *       <- {tests, bench, examples};
 *   W1  wire-format hygiene: no reinterpret_cast or memcpy outside
 *       the designated serializers (inet/checksum.*, net/serialize.*);
 *   T1  threading primitives (std::thread/mutex/atomic/..., the
 *       matching headers, thread_local) only under src/sim — the
 *       parallel engine owns all synchronization;
 *   H1  every header uses '#pragma once'.
 *
 * Project-wide (cross-file, index-driven) rule families (v2):
 *
 *   S1  stat-path registry: every registration literal handed to
 *       StatRegistry/StatGroup::add or SimObject::regStat must
 *       follow the dotted-path grammar and be unique per
 *       registration scope, and every stat lookup/glob literal in
 *       src/, tests/ and bench/ must resolve against the registered
 *       set (a typo'd path otherwise silently reads 0 at runtime);
 *   W2  wire-format pairing: each serializeXxx in net/serialize must
 *       have a matching parseXxx whose field get sequence mirrors the
 *       put sequence (same order, same widths, branch for branch);
 *   T2  partition discipline: outside src/sim, no mutable static /
 *       namespace-scope state (it is shared across partitions by
 *       construction) and no direct scheduling into another
 *       SimObject's event queue — cross-partition traffic goes
 *       through the Link/Mailbox APIs;
 *   E1  no by-reference captures ([&], [&x]) in closures passed to
 *       schedule()/scheduleIn()/exec()/scheduleTimer(): the closure
 *       outlives the enclosing frame, so such captures are the PR 5
 *       use-after-free class.
 *
 *   A1  stale-waiver audit: a 'qpip-lint:' waiver whose rule no
 *       longer fires on the waived line is itself a hard error, as is
 *       a waiver token that names no known rule.
 *
 * A violation line may carry a waiver comment
 *   // qpip-lint: <token>-ok(<reason>)
 * with a non-empty reason; the token names the rule (see
 * waiverToken()). Fixture files outside src/ can opt into a layer
 * with '// qpip-lint-layer: <name>'; a fixture standing in for a
 * wire serializer module marks itself with '// qpip-lint-wire-file'.
 */

#pragma once

#include <set>
#include <string>
#include <vector>

namespace qpip::lint {

/** One finding. Formatted as "<rule> <file>:<line>: <message>". */
struct Diagnostic
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;

    std::string format() const;
};

/** Layers of the include DAG, bottom (most fundamental) first. */
enum class Layer {
    Sim,
    Net,
    Inet,
    Host,
    Nic,
    Qpip,
    Apps,
    /** tests/, bench/, examples/, tools/: may include anything. */
    Top,
};

/** DAG rank: a file may only include layers of rank <= its own. */
int layerRank(Layer l);

/** Layer name as spelled in include paths ("sim", "inet", ...). */
const char *layerName(Layer l);

/**
 * Classify @p path by its directory ("src/inet/..." -> Inet;
 * tests/bench/examples/tools -> Top). Unrecognized paths are Top.
 */
Layer classifyPath(const std::string &path);

/** Waiver token for a rule id ("D2" -> "unordered-iter-ok"). */
const char *waiverToken(const std::string &rule);

/** Rule id for a waiver token ("unordered-iter-ok" -> "D2"). */
const char *ruleForWaiverToken(const std::string &token);

/**
 * Lint one file with the per-file rule families only (D1/D2/L1/W1/
 * T1/H1) — the v1 behaviour, kept for single-file callers and the
 * fixture tests. @p path is used for diagnostics and for layer /
 * allowlist classification; a '// qpip-lint-layer: <name>' directive
 * in @p contents overrides the path-derived layer. Diagnostics come
 * back in line order.
 */
std::vector<Diagnostic> lintFile(const std::string &path,
                                 const std::string &contents);

/** Read @p path and lintFile() it. IO failure yields an IO finding. */
std::vector<Diagnostic> lintPath(const std::string &path);

// ---------------------------------------------------------------------
// Project-wide analysis (v2)
// ---------------------------------------------------------------------

/** One source file handed to lintProject (already read). */
struct SourceFile
{
    std::string path; ///< as reported in diagnostics
    std::string contents;
};

struct ProjectOptions
{
    /** Run the per-file families (D1/D2/L1/W1/T1/H1). */
    bool fileRules = true;
    /** Run the cross-file families (S1/W2/T2/E1). */
    bool projectRules = true;
    /** Flag stale waivers (A1). Only audits tokens of enabled rules. */
    bool auditWaivers = true;
    /**
     * When non-empty, the index is still built over every file but
     * diagnostics are only reported for paths in this set (--diff).
     */
    std::set<std::string> reportOnly;
};

/**
 * The two-pass project run: lex everything, build the shared index,
 * run every enabled rule family, then audit waivers. Diagnostics are
 * ordered by file, then line, then rule.
 */
std::vector<Diagnostic> lintProject(const std::vector<SourceFile> &files,
                                    const ProjectOptions &opts = {});

/** Read each path (relative paths resolved against @p root). */
std::vector<SourceFile> readSources(const std::string &root,
                                    const std::vector<std::string> &paths);

/**
 * What pass 1 knows — exposed so tests can assert the index covers
 * the real tree (every registered stat leaf, every wire pair).
 */
struct IndexSummary
{
    /** Full dotted literals registered in one piece. */
    std::set<std::string> statLeafPaths;
    /** Every path segment seen at any registration site. */
    std::set<std::string> statSegments;
    /** serializeXxx functions with a field-op body, by name. */
    std::set<std::string> serializers;
    /** parseXxx functions with a field-op body, by name. */
    std::set<std::string> parsers;
};

IndexSummary summarizeIndex(const std::vector<SourceFile> &files);

// ---------------------------------------------------------------------
// Mechanical fixes (--fix)
// ---------------------------------------------------------------------

/**
 * Apply the mechanical fixes for @p diags to @p contents: H1 (insert
 * '#pragma once' before the first code line) and A1 (strip the stale
 * waiver, dropping the comment line when nothing else is on it).
 * Returns the rewritten text, or an empty optional-like flag via
 * @p changed when no fix applied.
 */
std::string applyFixes(const std::string &contents,
                       const std::vector<Diagnostic> &diags,
                       bool &changed);

// ---------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------

/**
 * Collect the tree's lintable files under @p root: all .cc/.hh under
 * src/, plus headers and sources under tests/, bench/, examples/ and
 * tools/. tests/lint_fixtures/ is excluded — those files exist to
 * fail. Paths come back sorted, relative to @p root.
 */
std::vector<std::string> collectTree(const std::string &root);

/**
 * File list from a CMAKE_EXPORT_COMPILE_COMMANDS database: every
 * "file" entry, absolute. Minimal JSON scan, tolerant of formatting.
 */
std::vector<std::string> filesFromCompileCommands(const std::string &path);

} // namespace qpip::lint
