/**
 * @file
 * qpip-lint CLI.
 *
 *   qpip_lint [--root <dir>] [--compile-commands <json>]
 *             [--sarif <out.sarif>] [--diff <ref>] [--fix]
 *             [--no-project] [files...]
 *
 * With explicit files, lints exactly those (fixtures use a
 * '// qpip-lint-layer: <name>' directive to place themselves in the
 * DAG). Without, lints the whole tree under --root (default "."),
 * unioned with the translation units named by the compile-commands
 * database when one is given — which is how the CMake `lint` target
 * drives it off CMAKE_EXPORT_COMPILE_COMMANDS.
 *
 * The project-wide families (S1/W2/T2/E1) and the stale-waiver audit
 * always see the whole file set; --diff <ref> only narrows which
 * files findings are *reported* for (those changed vs the merge-base
 * with <ref>, per git). --fix rewrites mechanical findings in place
 * (H1 pragma insertion, stale-waiver removal). --sarif additionally
 * writes the findings as SARIF 2.1.0.
 *
 * Exit status: 0 clean, 1 violations found, 2 usage/IO error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"
#include "sarif.hh"

namespace {

/** Lines of `git <args>` output, empty on failure. */
std::vector<std::string>
gitLines(const std::string &root, const std::string &args)
{
    const std::string cmd =
        "git -C '" + root + "' " + args + " 2>/dev/null";
    std::vector<std::string> out;
    FILE *p = popen(cmd.c_str(), "r");
    if (p == nullptr)
        return out;
    char buf[4096];
    std::string cur;
    while (std::fgets(buf, sizeof buf, p) != nullptr) {
        cur += buf;
        while (true) {
            const auto nl = cur.find('\n');
            if (nl == std::string::npos)
                break;
            out.push_back(cur.substr(0, nl));
            cur = cur.substr(nl + 1);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    pclose(p);
    return out;
}

/** Paths (relative to the repo root) changed vs merge-base(ref). */
std::set<std::string>
changedFiles(const std::string &root, const std::string &ref)
{
    const auto base =
        gitLines(root, "merge-base " + ref + " HEAD");
    const std::string against = base.empty() ? ref : base[0];
    std::set<std::string> out;
    for (const auto &f :
         gitLines(root, "diff --name-only " + against))
        out.insert(f);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qpip::lint;

    std::string root = ".";
    std::string compileCommands;
    std::string sarifOut;
    std::string diffRef;
    bool fix = false;
    bool projectRules = true;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--compile-commands" && i + 1 < argc) {
            compileCommands = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarifOut = argv[++i];
        } else if (arg == "--diff" && i + 1 < argc) {
            diffRef = argv[++i];
        } else if (arg == "--fix") {
            fix = true;
        } else if (arg == "--no-project") {
            projectRules = false;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: qpip_lint [--root <dir>] "
                "[--compile-commands <json>] [--sarif <out>] "
                "[--diff <ref>] [--fix] [--no-project] [files...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "qpip-lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    // Resolve the work list. Tree mode reports root-relative paths;
    // compile-commands entries are folded back onto the tree set so
    // nothing is linted (or reported) twice under two spellings.
    std::set<std::string> work;
    const bool treeMode = files.empty();
    if (treeMode) {
        for (auto &f : collectTree(root))
            work.insert(f);
        if (work.empty()) {
            std::fprintf(stderr,
                         "qpip-lint: no lintable files under '%s'\n",
                         root.c_str());
            return 2;
        }
        if (!compileCommands.empty()) {
            const std::string prefix = root + "/";
            for (auto f : filesFromCompileCommands(compileCommands)) {
                if (f.rfind(prefix, 0) == 0)
                    f = f.substr(prefix.size());
                work.insert(f);
            }
        }
    } else {
        work.insert(files.begin(), files.end());
    }

    const std::vector<std::string> paths(work.begin(), work.end());
    std::vector<SourceFile> sources = readSources(root, paths);

    bool ioError = false;
    std::vector<SourceFile> readable;
    for (auto &sf : sources) {
        if (sf.contents.empty()) {
            std::ifstream probe(
                sf.path[0] == '/' ? sf.path : root + "/" + sf.path);
            if (!probe) {
                std::fprintf(stderr,
                             "qpip-lint: cannot open '%s'\n",
                             sf.path.c_str());
                ioError = true;
                continue;
            }
        }
        readable.push_back(std::move(sf));
    }

    ProjectOptions opts;
    opts.projectRules = projectRules;
    // The audit only makes sense when every family that might consume
    // a waiver actually ran.
    opts.auditWaivers = projectRules;
    if (!diffRef.empty()) {
        // The index still spans the whole tree; only the changed
        // files' findings are reported.
        opts.reportOnly = changedFiles(root, diffRef);
        if (opts.reportOnly.empty())
            std::fprintf(stderr,
                         "qpip-lint: --diff %s: no changed files "
                         "(or not a git checkout); reporting "
                         "everything\n",
                         diffRef.c_str());
    }

    std::vector<Diagnostic> diags = lintProject(readable, opts);

    if (fix) {
        int fixedFiles = 0;
        for (const auto &sf : readable) {
            std::vector<Diagnostic> mine;
            for (const auto &d : diags)
                if (d.file == sf.path &&
                    (d.rule == "H1" || d.rule == "A1"))
                    mine.push_back(d);
            if (mine.empty())
                continue;
            bool changed = false;
            const std::string fixedText =
                applyFixes(sf.contents, mine, changed);
            if (!changed)
                continue;
            const std::string full =
                sf.path[0] == '/' ? sf.path : root + "/" + sf.path;
            std::ofstream outf(full, std::ios::binary |
                                         std::ios::trunc);
            if (!outf) {
                std::fprintf(stderr,
                             "qpip-lint: cannot rewrite '%s'\n",
                             full.c_str());
                ioError = true;
                continue;
            }
            outf << fixedText;
            ++fixedFiles;
        }
        if (fixedFiles)
            std::fprintf(stderr, "qpip-lint: fixed %d file(s); "
                                 "re-run to see remaining findings\n",
                         fixedFiles);
    }

    for (const auto &d : diags)
        std::printf("%s\n", d.format().c_str());

    if (!sarifOut.empty()) {
        std::ofstream outf(sarifOut,
                           std::ios::binary | std::ios::trunc);
        if (!outf) {
            std::fprintf(stderr, "qpip-lint: cannot write '%s'\n",
                         sarifOut.c_str());
            ioError = true;
        } else {
            outf << toSarif(diags);
        }
    }

    const int violations = static_cast<int>(diags.size());
    if (violations)
        std::fprintf(stderr, "qpip-lint: %d violation(s)\n",
                     violations);
    if (ioError)
        return 2;
    return violations ? 1 : 0;
}
