/**
 * @file
 * qpip-lint CLI.
 *
 *   qpip_lint [--root <dir>] [--compile-commands <json>] [files...]
 *
 * With explicit files, lints exactly those (fixtures use a
 * '// qpip-lint-layer: <name>' directive to place themselves in the
 * DAG). Without, lints the whole tree under --root (default "."),
 * unioned with the translation units named by the compile-commands
 * database when one is given — which is how the CMake `lint` target
 * drives it off CMAKE_EXPORT_COMPILE_COMMANDS.
 *
 * Exit status: 0 clean, 1 violations found, 2 usage/IO error.
 */

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    using namespace qpip::lint;

    std::string root = ".";
    std::string compileCommands;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--compile-commands" && i + 1 < argc) {
            compileCommands = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: qpip_lint [--root <dir>] "
                        "[--compile-commands <json>] [files...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "qpip-lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    // Resolve the work list. Tree mode reports root-relative paths;
    // compile-commands entries are folded back onto the tree set so
    // nothing is linted (or reported) twice under two spellings.
    std::set<std::string> work;
    bool treeMode = files.empty();
    if (treeMode) {
        for (auto &f : collectTree(root))
            work.insert(f);
        if (work.empty()) {
            std::fprintf(stderr,
                         "qpip-lint: no lintable files under '%s'\n",
                         root.c_str());
            return 2;
        }
        if (!compileCommands.empty()) {
            const std::string prefix = root + "/";
            for (auto f : filesFromCompileCommands(compileCommands)) {
                if (f.rfind(prefix, 0) == 0)
                    f = f.substr(prefix.size());
                work.insert(f);
            }
        }
    } else {
        work.insert(files.begin(), files.end());
    }

    int violations = 0;
    bool ioError = false;
    for (const auto &f : work) {
        const std::string full =
            treeMode && f.rfind('/', 0) != 0 && !(f.size() > 1 && f[1] == ':')
                ? (f.rfind(root + "/", 0) == 0 ? f : root + "/" + f)
                : f;
        for (const auto &d : lintPath(full)) {
            Diagnostic shown = d;
            shown.file = f;
            std::printf("%s\n", shown.format().c_str());
            if (d.rule == "IO")
                ioError = true;
            else
                ++violations;
        }
    }

    if (violations)
        std::fprintf(stderr, "qpip-lint: %d violation(s)\n", violations);
    if (ioError)
        return 2;
    return violations ? 1 : 0;
}
