/**
 * @file
 * A cut-through crossbar switch in the Myrinet mold. Forwarding uses a
 * static table from fabric NodeId to output port (built by the
 * topology helper — the moral equivalent of Myrinet's source routes
 * resolved at route-computation time, or a learned Ethernet FDB).
 *
 * Cut-through means a fixed per-hop routing latency independent of
 * packet length; output contention is resolved by the attached Link's
 * transmitter serialization.
 */

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/link.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace qpip::net {

/**
 * The switch. Create it, then connect links to numbered ports and
 * install routes.
 */
class Switch : public sim::SimObject
{
  public:
    /**
     * @param routing_delay fixed cut-through per-hop latency.
     */
    Switch(sim::Simulation &sim, std::string name,
           sim::Tick routing_delay = 300 * sim::oneNs);

    /**
     * Connect @p link's @p link_side to a new switch port.
     * @return the port number.
     */
    int connect(Link &link, int link_side);

    /** Route packets destined to @p node out of @p port. */
    void addRoute(NodeId node, int port);

    sim::Counter forwarded;
    sim::Counter unroutableDrops;

  private:
    /** Per-port receiver shim so onPacket knows the ingress port. */
    class Port : public NetReceiver
    {
      public:
        Port(Switch &sw, int num, Link &link, int link_side)
            : sw_(sw), num_(num), link_(link), linkSide_(link_side)
        {}

        void onPacket(PacketPtr pkt) override;

        Link &link() { return link_; }
        int linkSide() const { return linkSide_; }

      private:
        Switch &sw_;
        int num_;
        Link &link_;
        int linkSide_;
    };

    void forward(PacketPtr pkt, int in_port);

    sim::Tick routingDelay_;
    std::vector<std::unique_ptr<Port>> ports_;
    /** Ordered by node id: deterministic if the table is ever dumped. */
    std::map<NodeId, int> routes_;
};

} // namespace qpip::net
