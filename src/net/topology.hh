/**
 * @file
 * Topology builders. Every experiment in the paper runs on a star (N
 * hosts, one switch), and the scale-out sweeps add two multi-switch
 * fabrics: a dual-star (two switches joined by a trunk, half the
 * hosts on each) and a 2-level fat-tree (edge switches with host
 * spokes, fully connected to spine switches).
 *
 * All fabrics share the Fabric interface: addNode() returns the
 * spoke link whose side 0 the host's NIC attaches to, and edges()
 * exposes the link graph with per-side attachments — which is what
 * net::partitionFabric uses to shard a fabric across the parallel
 * engine (hosts in caller-provided partitions, each switch in its
 * own) and derive the conservative lookahead from the minimum link
 * propagation delay.
 */

#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hh"
#include "net/switch.hh"

namespace qpip::sim {
class ParallelEngine;
class Partition;
} // namespace qpip::sim

namespace qpip::net {

/**
 * Common base of all fabric builders: owns the switches and links,
 * records the edge graph.
 */
class Fabric
{
  public:
    /** How one end of a fabric link attaches. */
    struct Attachment
    {
        bool isSwitch = false;
        /** Host NodeId, or index into the fabric's switch list. */
        std::uint32_t index = 0;
    };

    /** One link plus what its two sides attach to. */
    struct Edge
    {
        Link *link = nullptr;
        std::array<Attachment, 2> ends; // indexed by link side
    };

    Fabric(sim::Simulation &sim, std::string name,
           LinkConfig link_config);
    virtual ~Fabric() = default;

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /**
     * Add a spoke for fabric address @p node.
     * @return the link; the caller attaches its NIC to side 0.
     */
    virtual Link &addNode(NodeId node) = 0;

    Link &linkFor(NodeId node);

    Switch &switchAt(std::size_t i) { return *switches_.at(i); }
    std::size_t numSwitches() const { return switches_.size(); }

    const std::vector<Edge> &edges() const { return edges_; }

    /**
     * Minimum propagation delay over every fabric link: the parallel
     * engine's conservative lookahead window.
     */
    sim::Tick minPropDelay() const;

    const std::string &name() const { return name_; }

  protected:
    /** Create a switch (recorded for edges/partitioning). */
    Switch &makeSwitch(const std::string &name);

    /**
     * Create the spoke link for @p node and connect its side 1 to
     * switch @p sw_index (side 0 is the host's).
     * @return the switch port it landed on.
     */
    int makeSpoke(NodeId node, std::size_t sw_index);

    /**
     * Create an inter-switch link @p name from switch @p a (side 0)
     * to switch @p b (side 1).
     * @return the ports it landed on: {port on a, port on b}.
     */
    std::array<int, 2> makeTrunk(const std::string &name,
                                 std::size_t a, std::size_t b);

    sim::Simulation &sim_;
    std::string name_;
    LinkConfig linkCfg_;
    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<std::pair<NodeId, std::unique_ptr<Link>>> links_;
    std::vector<std::unique_ptr<Link>> trunks_;
    std::vector<Edge> edges_;
};

/**
 * A star of point-to-point links around one switch.
 */
class StarFabric : public Fabric
{
  public:
    /**
     * @param link_config parameters applied to every spoke link.
     */
    StarFabric(sim::Simulation &sim, std::string name,
               LinkConfig link_config);

    Link &addNode(NodeId node) override;

    Switch &fabricSwitch() { return *switches_.front(); }
};

/**
 * Two stars joined by a trunk link: hosts [0, n/2) on switch 0, the
 * rest on switch 1. The smallest fabric where traffic crosses a
 * multi-hop path, and the parallel engine's headline workload.
 */
class DualStarFabric : public Fabric
{
  public:
    /**
     * @param n_hosts total hosts the fabric will carry (fixes the
     *        half split; addNode accepts ids [0, n_hosts)).
     */
    DualStarFabric(sim::Simulation &sim, std::string name,
                   LinkConfig link_config, std::size_t n_hosts);

    Link &addNode(NodeId node) override;

  private:
    std::size_t switchOf(NodeId node) const;

    std::size_t nHosts_;
    std::size_t half_;
    /** Trunk port on each switch (toward the other). */
    std::array<int, 2> trunkPort_{};
};

/**
 * A 2-level fat-tree: hosts attach to edge switches
 * (@p hosts_per_edge spokes each), every edge switch uplinks to
 * every spine switch, and flows to host d ride spine d % n_spines —
 * deterministic d-mod load balancing across the spine stage.
 */
class FatTreeFabric : public Fabric
{
  public:
    FatTreeFabric(sim::Simulation &sim, std::string name,
                  LinkConfig link_config, std::size_t n_hosts,
                  std::size_t hosts_per_edge = 2,
                  std::size_t n_spines = 2);

    Link &addNode(NodeId node) override;

    std::size_t numEdgeSwitches() const { return nEdges_; }
    std::size_t numSpineSwitches() const { return nSpines_; }

  private:
    std::size_t edgeOf(NodeId node) const;
    std::size_t spineOf(NodeId node) const;

    std::size_t nHosts_;
    std::size_t hostsPerEdge_;
    std::size_t nEdges_;
    std::size_t nSpines_;
    /** upPortOnEdge_[e][s]: port on edge e toward spine s. */
    std::vector<std::vector<int>> upPortOnEdge_;
    /** upPortOnSpine_[s][e]: port on spine s toward edge e. */
    std::vector<std::vector<int>> upPortOnSpine_;
};

/**
 * Build the k-ary 2-level fat-tree: k-port switches, so every edge
 * switch carries k/2 host spokes and k/2 spine uplinks. k=8 reaches
 * 128 hosts at 32 edge switches, k=16 reaches 1024 at 128 — the
 * datacenter-scale shapes the parallel-engine scaling sweep runs on.
 * @p n_hosts must be a positive multiple of k/2, bounded by what the
 * edge tier can carry; @p k must be even and >= 4.
 */
std::unique_ptr<FatTreeFabric>
makeKAryFatTree(sim::Simulation &sim, std::string name,
                LinkConfig link_config, std::size_t k,
                std::size_t n_hosts);

/**
 * Shard @p fabric across @p engine: one new partition per switch,
 * hosts in the caller's partitions (@p host_parts indexed by
 * NodeId), every link direction bound to its sending partition with
 * a mailbox toward the receiver, the global default lookahead set to
 * the fabric's minimum propagation delay and every mailbox edge
 * declaring its own link's propagation delay (per-edge horizons),
 * and per-link fold hooks registered.
 * Call after every addNode (the edge list must be complete).
 */
void partitionFabric(sim::ParallelEngine &engine, Fabric &fabric,
                     const std::vector<sim::Partition *> &host_parts);

} // namespace qpip::net
