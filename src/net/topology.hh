/**
 * @file
 * Topology builders. Every experiment in the paper runs on a star: N
 * hosts, one switch. StarFabric owns the switch and the per-host
 * links; hosts attach their NICs to side 0 of their link.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/link.hh"
#include "net/switch.hh"

namespace qpip::net {

/**
 * A star of point-to-point links around one switch.
 */
class StarFabric
{
  public:
    /**
     * @param link_config parameters applied to every spoke link.
     */
    StarFabric(sim::Simulation &sim, std::string name,
               LinkConfig link_config);

    /**
     * Add a spoke for fabric address @p node.
     * @return the link; the caller attaches its NIC to side 0.
     */
    Link &addNode(NodeId node);

    Switch &fabricSwitch() { return *switch_; }
    Link &linkFor(NodeId node);

  private:
    sim::Simulation &sim_;
    std::string name_;
    LinkConfig linkCfg_;
    std::unique_ptr<Switch> switch_;
    std::vector<std::pair<NodeId, std::unique_ptr<Link>>> links_;
};

} // namespace qpip::net
