/**
 * @file
 * Fault injection for links: probabilistic drop, duplication, payload
 * corruption and reorder-by-delay. The paper assumes a robust SAN
 * where "packet loss or reordering seldom occurs"; the fault injector
 * lets the test suite and the loss-sensitivity ablation bench violate
 * that assumption on purpose.
 */

#pragma once

#include "net/packet.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace qpip::net {

/** Probabilities and parameters for injected faults. */
struct FaultConfig
{
    double dropProb = 0.0;
    double dupProb = 0.0;
    double corruptProb = 0.0;
    double reorderProb = 0.0;
    /** Extra delivery delay applied to reordered packets. */
    sim::Tick reorderDelay = 20 * sim::oneUs;
};

/** What the injector decided for one packet. */
struct FaultDecision
{
    bool drop = false;
    bool duplicate = false;
    /** Extra delay to apply (0 = deliver on time). */
    sim::Tick extraDelay = 0;
};

/**
 * Stateless per-packet fault roller (the RNG carries the state).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(sim::Random &rng) : rng_(rng) {}

    FaultConfig config;

    /**
     * Roll the dice for @p pkt. Corruption mutates the packet bytes
     * in place (a random byte is XORed with a random non-zero value),
     * which downstream checksums must catch.
     */
    FaultDecision apply(Packet &pkt);

    sim::Counter drops;
    sim::Counter dups;
    sim::Counter corruptions;
    sim::Counter reorders;

  private:
    sim::Random &rng_;
};

} // namespace qpip::net
