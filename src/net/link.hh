/**
 * @file
 * A full-duplex point-to-point link with finite bandwidth, fixed
 * propagation delay, an MTU, and per-direction store-and-forward
 * serialization. Each direction models the transmitter: packets queue
 * behind one another and occupy the wire for wireBytes()*8/bandwidth.
 *
 * Two link personalities are used by the testbeds:
 *  - Gigabit Ethernet: 1 Gb/s, 1500 B MTU, 38 B of framing overhead.
 *  - Myrinet: 2 Gb/s full duplex, arbitrary MTU, 8 B framing,
 *    effectively lossless (large queue, link-level backpressure).
 */

#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "net/fault.hh"
#include "net/packet.hh"
#include "sim/partition.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace qpip::net {

/**
 * Parallel mode: the execution-context binding of one link
 * direction. The transmitter of a side always runs in the sender's
 * partition; @p outbox carries deliveries toward a receiver living in
 * a different partition (nullptr when both endpoints share one).
 */
struct LinkBoundary
{
    /** The sending partition's event queue (drives this direction). */
    sim::EventQueue *eq = nullptr;
    /** The sending partition's RNG (per-direction fault stream). */
    sim::Random *rng = nullptr;
    /** Cross-partition channel to the receiver, or nullptr. */
    sim::Mailbox *outbox = nullptr;
};

/** Static parameters of a link. */
struct LinkConfig
{
    /** Raw bit rate in bits per second. */
    double bitsPerSec = 1e9;
    /** One-way propagation + phy delay. */
    sim::Tick propDelay = sim::oneUs;
    /** Maximum network-layer bytes per frame (excl. link overhead). */
    std::uint32_t mtu = 1500;
    /** Modeled link header/trailer bytes added to every frame. */
    std::uint32_t overheadBytes = 38;
    /** Transmit queue capacity in packets (drop-tail beyond). */
    std::size_t txQueueCap = 1024;
};

/** Canned Gigabit Ethernet link parameters (Intel Pro1000-like). */
LinkConfig gigabitEthernetLink();

/** Canned Myrinet 2000 link parameters (2 Gb/s, LANai 9 era). */
LinkConfig myrinetLink(std::uint32_t mtu = 16384);

/**
 * The link itself. Side 0 and side 1 are symmetrical.
 */
class Link : public sim::SimObject
{
  public:
    Link(sim::Simulation &sim, std::string name, LinkConfig config);

    /** Attach the receiver for @p side (0 or 1). */
    void attach(int side, NetReceiver &receiver);

    /**
     * Enqueue @p pkt for transmission from @p from_side toward the
     * other side. Oversized packets and queue overflow are dropped
     * (counted), mirroring real hardware.
     * @return false if the packet was dropped at enqueue time.
     */
    bool send(int from_side, PacketPtr pkt);

    /** Tick at which the transmitter of @p side next goes idle. */
    sim::Tick txIdleAt(int side) const;

    /** Serialization time of @p wire_bytes on this link. */
    sim::Tick serializationDelay(std::size_t wire_bytes) const;

    const LinkConfig &config() const { return cfg_; }
    FaultInjector &faults() { return faults_; }

    /**
     * Parallel mode: bind the transmitter of @p side to its sending
     * partition. From then on this direction schedules on the bound
     * queue, draws faults from a per-direction injector seeded off
     * the bound RNG, and counts into per-direction shadow counters
     * (folded into the public ones by foldBoundaryStats()). Wired up
     * by net::partitionFabric during setup.
     */
    void bindSide(int side, const LinkBoundary &boundary);

    /** @return true once either side has been bound (parallel mode). */
    bool
    bound() const
    {
        return dir_[0].bnd.eq != nullptr || dir_[1].bnd.eq != nullptr;
    }

    /**
     * Per-side capture tap (parallel mode: each tap is invoked only
     * from its own sending partition). Overrides txTap for that side.
     */
    void setSideTap(int side,
                    std::function<void(const Packet &, sim::Tick)> tap);

    /**
     * Fold the per-direction shadow counters (packet/byte/drop/fault
     * counts) into the public counters and reset them. Sums are
     * commutative, so the result is independent of execution
     * interleaving; registered as an engine fold hook.
     */
    void foldBoundaryStats();

    /**
     * Capture tap: invoked for every frame that occupies the wire
     * (after fault injection, so corrupted bytes are seen) with the
     * tick its serialization starts. See net/pcap.hh.
     */
    std::function<void(const Packet &, sim::Tick)> txTap;

    sim::Counter packetsSent;
    sim::Counter bytesSent;
    sim::Counter oversizeDrops;
    sim::Counter queueDrops;

  private:
    struct Direction
    {
        NetReceiver *receiver = nullptr;
        sim::Tick busyUntil = 0;
        // --- parallel mode only -------------------------------------
        LinkBoundary bnd;
        /** Per-direction fault stream (bnd.rng), folded post-run. */
        std::unique_ptr<FaultInjector> faults;
        /** Shadow counters owned by the sending partition. */
        sim::Counter packetsSent;
        sim::Counter bytesSent;
        sim::Counter oversizeDrops;
        sim::Counter queueDrops;
        std::function<void(const Packet &, sim::Tick)> tap;
    };

    void deliver(int to_side, PacketPtr pkt, sim::Tick extra_delay);
    bool sendBoundary(Direction &tx, int from_side, PacketPtr pkt);

    LinkConfig cfg_;
    FaultInjector faults_;
    std::array<Direction, 2> dir_;
};

} // namespace qpip::net
