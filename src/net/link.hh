/**
 * @file
 * A full-duplex point-to-point link with finite bandwidth, fixed
 * propagation delay, an MTU, and per-direction store-and-forward
 * serialization. Each direction models the transmitter: packets queue
 * behind one another and occupy the wire for wireBytes()*8/bandwidth.
 *
 * Two link personalities are used by the testbeds:
 *  - Gigabit Ethernet: 1 Gb/s, 1500 B MTU, 38 B of framing overhead.
 *  - Myrinet: 2 Gb/s full duplex, arbitrary MTU, 8 B framing,
 *    effectively lossless (large queue, link-level backpressure).
 */

#pragma once

#include <array>
#include <deque>
#include <functional>
#include <string>

#include "net/fault.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace qpip::net {

/** Static parameters of a link. */
struct LinkConfig
{
    /** Raw bit rate in bits per second. */
    double bitsPerSec = 1e9;
    /** One-way propagation + phy delay. */
    sim::Tick propDelay = sim::oneUs;
    /** Maximum network-layer bytes per frame (excl. link overhead). */
    std::uint32_t mtu = 1500;
    /** Modeled link header/trailer bytes added to every frame. */
    std::uint32_t overheadBytes = 38;
    /** Transmit queue capacity in packets (drop-tail beyond). */
    std::size_t txQueueCap = 1024;
};

/** Canned Gigabit Ethernet link parameters (Intel Pro1000-like). */
LinkConfig gigabitEthernetLink();

/** Canned Myrinet 2000 link parameters (2 Gb/s, LANai 9 era). */
LinkConfig myrinetLink(std::uint32_t mtu = 16384);

/**
 * The link itself. Side 0 and side 1 are symmetrical.
 */
class Link : public sim::SimObject
{
  public:
    Link(sim::Simulation &sim, std::string name, LinkConfig config);

    /** Attach the receiver for @p side (0 or 1). */
    void attach(int side, NetReceiver &receiver);

    /**
     * Enqueue @p pkt for transmission from @p from_side toward the
     * other side. Oversized packets and queue overflow are dropped
     * (counted), mirroring real hardware.
     * @return false if the packet was dropped at enqueue time.
     */
    bool send(int from_side, PacketPtr pkt);

    /** Tick at which the transmitter of @p side next goes idle. */
    sim::Tick txIdleAt(int side) const;

    /** Serialization time of @p wire_bytes on this link. */
    sim::Tick serializationDelay(std::size_t wire_bytes) const;

    const LinkConfig &config() const { return cfg_; }
    FaultInjector &faults() { return faults_; }

    /**
     * Capture tap: invoked for every frame that occupies the wire
     * (after fault injection, so corrupted bytes are seen) with the
     * tick its serialization starts. See net/pcap.hh.
     */
    std::function<void(const Packet &, sim::Tick)> txTap;

    sim::Counter packetsSent;
    sim::Counter bytesSent;
    sim::Counter oversizeDrops;
    sim::Counter queueDrops;

  private:
    struct Direction
    {
        NetReceiver *receiver = nullptr;
        sim::Tick busyUntil = 0;
    };

    void deliver(int to_side, PacketPtr pkt, sim::Tick extra_delay);

    LinkConfig cfg_;
    FaultInjector faults_;
    std::array<Direction, 2> dir_;
};

} // namespace qpip::net
