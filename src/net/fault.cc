#include "net/fault.hh"

namespace qpip::net {

FaultDecision
FaultInjector::apply(Packet &pkt)
{
    FaultDecision d;
    if (rng_.bernoulli(config.dropProb)) {
        d.drop = true;
        drops.inc();
        return d;
    }
    if (rng_.bernoulli(config.corruptProb) && !pkt.data.empty()) {
        auto idx = static_cast<std::size_t>(
            rng_.uniformInt(0, pkt.data.size() - 1));
        auto mask = static_cast<std::uint8_t>(rng_.uniformInt(1, 255));
        pkt.data[idx] ^= mask;
        corruptions.inc();
    }
    if (rng_.bernoulli(config.dupProb)) {
        d.duplicate = true;
        dups.inc();
    }
    if (rng_.bernoulli(config.reorderProb)) {
        d.extraDelay = config.reorderDelay;
        reorders.inc();
    }
    return d;
}

} // namespace qpip::net
