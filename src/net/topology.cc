#include "net/topology.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/parallel_engine.hh"

namespace qpip::net {

// --- Fabric ---------------------------------------------------------

Fabric::Fabric(sim::Simulation &sim, std::string name,
               LinkConfig link_config)
    : sim_(sim), name_(std::move(name)), linkCfg_(link_config)
{}

Link &
Fabric::linkFor(NodeId node)
{
    for (auto &[id, link] : links_) {
        if (id == node)
            return *link;
    }
    sim::panic("%s: unknown node %u", name_.c_str(), node);
}

sim::Tick
Fabric::minPropDelay() const
{
    sim::Tick min = sim::maxTick;
    for (const Edge &e : edges_)
        min = std::min(min, e.link->config().propDelay);
    return min;
}

Switch &
Fabric::makeSwitch(const std::string &name)
{
    switches_.push_back(std::make_unique<Switch>(sim_, name));
    return *switches_.back();
}

int
Fabric::makeSpoke(NodeId node, std::size_t sw_index)
{
    auto link = std::make_unique<Link>(
        sim_, name_ + ".link" + std::to_string(node), linkCfg_);
    const int port = switches_.at(sw_index)->connect(*link, 1);
    Edge edge;
    edge.link = link.get();
    edge.ends[0] = Attachment{false, node};
    edge.ends[1] =
        Attachment{true, static_cast<std::uint32_t>(sw_index)};
    edges_.push_back(edge);
    links_.emplace_back(node, std::move(link));
    return port;
}

std::array<int, 2>
Fabric::makeTrunk(const std::string &name, std::size_t a,
                  std::size_t b)
{
    auto link = std::make_unique<Link>(sim_, name, linkCfg_);
    const int port_a = switches_.at(a)->connect(*link, 0);
    const int port_b = switches_.at(b)->connect(*link, 1);
    Edge edge;
    edge.link = link.get();
    edge.ends[0] = Attachment{true, static_cast<std::uint32_t>(a)};
    edge.ends[1] = Attachment{true, static_cast<std::uint32_t>(b)};
    edges_.push_back(edge);
    trunks_.push_back(std::move(link));
    return {port_a, port_b};
}

// --- StarFabric -----------------------------------------------------

StarFabric::StarFabric(sim::Simulation &sim, std::string name,
                       LinkConfig link_config)
    : Fabric(sim, std::move(name), link_config)
{
    makeSwitch(name_ + ".switch");
}

Link &
StarFabric::addNode(NodeId node)
{
    const int port = makeSpoke(node, 0);
    switches_.front()->addRoute(node, port);
    return *links_.back().second;
}

// --- DualStarFabric -------------------------------------------------

DualStarFabric::DualStarFabric(sim::Simulation &sim, std::string name,
                               LinkConfig link_config,
                               std::size_t n_hosts)
    : Fabric(sim, std::move(name), link_config), nHosts_(n_hosts),
      half_((n_hosts + 1) / 2)
{
    makeSwitch(name_ + ".switch0");
    makeSwitch(name_ + ".switch1");
    trunkPort_ = makeTrunk(name_ + ".trunk", 0, 1);
}

std::size_t
DualStarFabric::switchOf(NodeId node) const
{
    return node < half_ ? 0 : 1;
}

Link &
DualStarFabric::addNode(NodeId node)
{
    if (node >= nHosts_) {
        sim::panic("%s: node %u out of range (n_hosts=%zu)",
                   name_.c_str(), node, nHosts_);
    }
    const std::size_t own = switchOf(node);
    const std::size_t other = own ^ 1;
    const int port = makeSpoke(node, own);
    switches_.at(own)->addRoute(node, port);
    // The far star reaches this host over the trunk.
    switches_.at(other)->addRoute(node, trunkPort_.at(other));
    return *links_.back().second;
}

// --- FatTreeFabric --------------------------------------------------

FatTreeFabric::FatTreeFabric(sim::Simulation &sim, std::string name,
                             LinkConfig link_config,
                             std::size_t n_hosts,
                             std::size_t hosts_per_edge,
                             std::size_t n_spines)
    : Fabric(sim, std::move(name), link_config), nHosts_(n_hosts),
      hostsPerEdge_(hosts_per_edge),
      nEdges_((n_hosts + hosts_per_edge - 1) / hosts_per_edge),
      nSpines_(n_spines)
{
    if (hosts_per_edge == 0 || n_spines == 0)
        sim::panic("%s: degenerate fat-tree shape", name_.c_str());
    for (std::size_t e = 0; e < nEdges_; ++e)
        makeSwitch(name_ + ".edge" + std::to_string(e));
    for (std::size_t s = 0; s < nSpines_; ++s)
        makeSwitch(name_ + ".spine" + std::to_string(s));

    upPortOnEdge_.resize(nEdges_, std::vector<int>(nSpines_, -1));
    upPortOnSpine_.resize(nSpines_, std::vector<int>(nEdges_, -1));
    for (std::size_t e = 0; e < nEdges_; ++e) {
        for (std::size_t s = 0; s < nSpines_; ++s) {
            const auto ports =
                makeTrunk(name_ + ".up" + std::to_string(e) + "_" +
                              std::to_string(s),
                          e, nEdges_ + s);
            upPortOnEdge_[e][s] = ports[0];
            upPortOnSpine_[s][e] = ports[1];
        }
    }
}

std::size_t
FatTreeFabric::edgeOf(NodeId node) const
{
    return node / hostsPerEdge_;
}

std::size_t
FatTreeFabric::spineOf(NodeId node) const
{
    return node % nSpines_;
}

Link &
FatTreeFabric::addNode(NodeId node)
{
    if (node >= nHosts_) {
        sim::panic("%s: node %u out of range (n_hosts=%zu)",
                   name_.c_str(), node, nHosts_);
    }
    const std::size_t own = edgeOf(node);
    const std::size_t spine = spineOf(node);
    const int port = makeSpoke(node, own);
    switches_.at(own)->addRoute(node, port);
    // Remote edges climb to this host's spine; the spine descends to
    // the owning edge.
    for (std::size_t e = 0; e < nEdges_; ++e) {
        if (e != own) {
            switches_.at(e)->addRoute(node, upPortOnEdge_[e][spine]);
        }
    }
    switches_.at(nEdges_ + spine)
        ->addRoute(node, upPortOnSpine_[spine][own]);
    return *links_.back().second;
}

std::unique_ptr<FatTreeFabric>
makeKAryFatTree(sim::Simulation &sim, std::string name,
                LinkConfig link_config, std::size_t k,
                std::size_t n_hosts)
{
    if (k < 4 || k % 2 != 0)
        sim::panic("%s: k-ary fat-tree needs even k >= 4 (k=%zu)",
                   name.c_str(), k);
    const std::size_t radix = k / 2;
    if (n_hosts == 0 || n_hosts % radix != 0) {
        sim::panic("%s: n_hosts=%zu is not a positive multiple of "
                   "k/2=%zu",
                   name.c_str(), n_hosts, radix);
    }
    return std::make_unique<FatTreeFabric>(
        sim, std::move(name), link_config, n_hosts, radix, radix);
}

// --- partitionFabric ------------------------------------------------

void
partitionFabric(sim::ParallelEngine &engine, Fabric &fabric,
                const std::vector<sim::Partition *> &host_parts)
{
    std::vector<sim::Partition *> sw_parts;
    sw_parts.reserve(fabric.numSwitches());
    for (std::size_t i = 0; i < fabric.numSwitches(); ++i) {
        Switch &sw = fabric.switchAt(i);
        sim::Partition &p = engine.addPartition(sw.name());
        engine.assignByPrefix(sw.name(), p);
        sw_parts.push_back(&p);
    }

    engine.setLookahead(fabric.minPropDelay());

    const auto part_of =
        [&](const Fabric::Attachment &a) -> sim::Partition * {
        return a.isSwitch ? sw_parts.at(a.index)
                          : host_parts.at(a.index);
    };

    for (const Fabric::Edge &e : fabric.edges()) {
        for (int side = 0; side < 2; ++side) {
            sim::Partition *src = part_of(e.ends.at(
                static_cast<std::size_t>(side)));
            sim::Partition *dst = part_of(e.ends.at(
                static_cast<std::size_t>(side ^ 1)));
            LinkBoundary b;
            b.eq = &src->eventQueue();
            b.rng = &src->rng();
            b.outbox =
                src == dst ? nullptr : &engine.mailbox(*src, *dst);
            if (b.outbox != nullptr) {
                // Declare this edge's own lookahead: the propagation
                // delay of the link it carries plus its serialization
                // floor — arrival is busyUntil + propDelay, and even
                // an empty frame occupies the wire for the link
                // overhead bytes, so no delivery can undercut this.
                // Several links can share one mailbox (parallel
                // trunks between the same partition pair), so keep
                // the minimum.
                const sim::Tick l =
                    e.link->config().propDelay +
                    e.link->serializationDelay(
                        e.link->config().overheadBytes);
                if (l < b.outbox->lookahead())
                    b.outbox->setLookahead(l);
            }
            e.link->bindSide(side, b);
        }
        Link *link = e.link;
        engine.addFoldHook([link] { link->foldBoundaryStats(); });
    }
}

} // namespace qpip::net
