#include "net/topology.hh"

#include "sim/logging.hh"

namespace qpip::net {

StarFabric::StarFabric(sim::Simulation &sim, std::string name,
                       LinkConfig link_config)
    : sim_(sim), name_(std::move(name)), linkCfg_(link_config),
      switch_(std::make_unique<Switch>(sim, name_ + ".switch"))
{}

Link &
StarFabric::addNode(NodeId node)
{
    auto link = std::make_unique<Link>(
        sim_, name_ + ".link" + std::to_string(node), linkCfg_);
    const int port = switch_->connect(*link, 1);
    switch_->addRoute(node, port);
    links_.emplace_back(node, std::move(link));
    return *links_.back().second;
}

Link &
StarFabric::linkFor(NodeId node)
{
    for (auto &[id, link] : links_) {
        if (id == node)
            return *link;
    }
    sim::panic("StarFabric: unknown node %u", node);
}

} // namespace qpip::net
