#include "net/packet.hh"

namespace qpip::net {

namespace {
std::uint64_t gNextPacketId = 1;
} // namespace

PacketPtr
makePacket()
{
    auto pkt = std::make_shared<Packet>();
    pkt->id = gNextPacketId++;
    return pkt;
}

PacketPtr
clonePacket(const Packet &pkt)
{
    auto copy = std::make_shared<Packet>(pkt);
    copy->id = gNextPacketId++;
    return copy;
}

} // namespace qpip::net
