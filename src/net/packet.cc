#include "net/packet.hh"

namespace qpip::net {

namespace {

// Per-thread pools keep the partitioned engine lock-free; ids are
// trace-only and never affect behavior.
// qpip-lint: thread-ok(per-thread pool state, see Pools below)
thread_local std::uint64_t gNextPacketId = 1;

/**
 * Per-thread recycling pools. Within one thread event order is
 * deterministic, so release order — and therefore the LIFO freelist
 * order — replays identically; making the pools thread-local keeps
 * that property per partition worker under the parallel engine
 * without any locking. Pooled storage is behaviorally invisible:
 * every acquired packet is field-reset and every acquired buffer is
 * cleared; only capacity (never contents or ids) survives recycling.
 * A packet released on a different thread than it was acquired on
 * simply retires into the releasing thread's pool.
 */
struct Pools
{
    std::vector<Packet *> packets;
    std::vector<std::vector<std::uint8_t>> buffers;
    PoolStats stats;

    ~Pools()
    {
        for (Packet *p : packets)
            delete p;
    }
};

Pools &
pools()
{
    // qpip-lint: thread-ok(see gNextPacketId above)
    thread_local Pools p;
    return p;
}

/** Cap retained buffers so a burst doesn't pin memory forever. */
constexpr std::size_t maxPooledBuffers = 4096;

} // namespace

namespace detail {

void
releasePacket(Packet *pkt)
{
    auto &p = pools();
    // Retire the payload storage into the buffer pool so the next
    // serialization pass reuses its capacity.
    recycleBuffer(std::move(pkt->data));
    pkt->data.clear();
    p.packets.push_back(pkt);
    p.stats.packetFreelistDepth = p.packets.size();
}

} // namespace detail

std::vector<std::uint8_t>
acquireBuffer()
{
    auto &p = pools();
    ++p.stats.buffersAcquired;
    if (!p.buffers.empty()) {
        std::vector<std::uint8_t> buf = std::move(p.buffers.back());
        p.buffers.pop_back();
        p.stats.bufferFreelistDepth = p.buffers.size();
        ++p.stats.buffersRecycled;
        buf.clear();
        return buf;
    }
    return {};
}

void
recycleBuffer(std::vector<std::uint8_t> &&buf)
{
    auto &p = pools();
    if (buf.capacity() == 0 || p.buffers.size() >= maxPooledBuffers)
        return; // nothing worth keeping
    buf.clear();
    p.buffers.push_back(std::move(buf));
    p.stats.bufferFreelistDepth = p.buffers.size();
}

PoolStats
poolStats()
{
    auto &p = pools();
    PoolStats s = p.stats;
    s.packetFreelistDepth = p.packets.size();
    s.bufferFreelistDepth = p.buffers.size();
    return s;
}

PacketPtr
makePacket()
{
    auto &p = pools();
    ++p.stats.packetsAcquired;
    Packet *pkt;
    if (!p.packets.empty()) {
        pkt = p.packets.back();
        p.packets.pop_back();
        ++p.stats.packetsRecycled;
        // Field-reset so a recycled packet is indistinguishable from a
        // fresh one (data keeps capacity only; releasePacket cleared it).
        pkt->src = invalidNode;
        pkt->dst = invalidNode;
        pkt->proto = NetProto::Raw;
        pkt->linkOverheadBytes = 0;
        pkt->injectedAt = 0;
        // data stays empty: senders either move a pooled frame buffer
        // in (wireTx) or acquireBuffer() themselves (clonePacket).
    } else {
        pkt = new Packet();
    }
    pkt->id = gNextPacketId++;
    return PacketPtr(pkt);
}

PacketPtr
clonePacket(const Packet &pkt)
{
    PacketPtr copy = makePacket();
    copy->src = pkt.src;
    copy->dst = pkt.dst;
    copy->proto = pkt.proto;
    copy->linkOverheadBytes = pkt.linkOverheadBytes;
    copy->injectedAt = pkt.injectedAt;
    copy->data = acquireBuffer();
    copy->data.assign(pkt.data.begin(), pkt.data.end());
    return copy;
}

} // namespace qpip::net
