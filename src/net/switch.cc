#include "net/switch.hh"

#include "sim/logging.hh"

namespace qpip::net {

using sim::panic;
using sim::warn;

Switch::Switch(sim::Simulation &sim, std::string name,
               sim::Tick routing_delay)
    : SimObject(sim, std::move(name)), routingDelay_(routing_delay)
{
    regStat("forwarded", forwarded);
    regStat("unroutableDrops", unroutableDrops);
}

int
Switch::connect(Link &link, int link_side)
{
    const int port = static_cast<int>(ports_.size());
    ports_.push_back(
        std::make_unique<Port>(*this, port, link, link_side));
    link.attach(link_side, *ports_.back());
    return port;
}

void
Switch::addRoute(NodeId node, int port)
{
    routes_[node] = port;
}

void
Switch::Port::onPacket(PacketPtr pkt)
{
    sw_.forward(std::move(pkt), num_);
}

void
Switch::forward(PacketPtr pkt, int in_port)
{
    auto it = routes_.find(pkt->dst);
    if (it == routes_.end()) {
        unroutableDrops.inc();
        warn("%s: no route for node %u", name().c_str(), pkt->dst);
        return;
    }
    const int out_port = it->second;
    if (out_port == in_port) {
        // A frame never goes back out its ingress port.
        unroutableDrops.inc();
        return;
    }
    forwarded.inc();
    // Ports live as long as the switch, so the deferred send may
    // hold the port by pointer (the link.cc idiom) — never by
    // reference to this frame.
    Port *port = ports_.at(static_cast<std::size_t>(out_port)).get();
    schedule(curTick() + routingDelay_, [port, pkt] {
        port->link().send(port->linkSide(), pkt);
    });
}

} // namespace qpip::net
