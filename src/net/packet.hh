/**
 * @file
 * The wire unit of the simulated fabric.
 *
 * A Packet carries the *real bytes* of the network layer and above
 * (IPv4/IPv6 + TCP/UDP headers + payload) — these are serialized,
 * checksummed and parsed exactly as on a real wire. The link layer is
 * modeled: instead of serializing a Myrinet route header or Ethernet
 * MAC header we carry fabric source/destination ids as metadata and
 * account for the header's size in wireBytes(). This preserves all
 * timing (serialization occupies the link for header + payload bytes)
 * while keeping fabric addressing orthogonal to the protocol code.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/types.hh"

namespace qpip::net {

/** Fabric address of a node's link-layer attachment. */
using NodeId = std::uint32_t;

constexpr NodeId invalidNode = ~NodeId(0);

/** Network-layer protocol carried in a packet (like EtherType). */
enum class NetProto : std::uint16_t {
    Raw = 0,
    Ipv4 = 0x0800,
    Ipv6 = 0x86dd,
};

/**
 * One link-layer frame.
 */
struct Packet
{
    /** Monotonic id for tracing/debugging. */
    std::uint64_t id = 0;

    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    NetProto proto = NetProto::Raw;

    /** Modeled link header+CRC size included in wire time. */
    std::uint32_t linkOverheadBytes = 0;

    /** Real network-layer bytes. */
    std::vector<std::uint8_t> data;

    /** Time the packet first entered a link (for latency stats). */
    sim::Tick injectedAt = 0;

    /** Total bytes that occupy the wire. */
    std::size_t wireBytes() const
    {
        return data.size() + linkOverheadBytes;
    }

    std::span<const std::uint8_t> bytes() const { return data; }
};

using PacketPtr = std::shared_ptr<Packet>;

/** Allocate a packet with a fresh trace id. */
PacketPtr makePacket();

/** Deep-copy a packet (fresh id) — used by duplication fault injection. */
PacketPtr clonePacket(const Packet &pkt);

/**
 * Interface implemented by anything that terminates a link: NICs and
 * switch ports.
 */
class NetReceiver
{
  public:
    virtual ~NetReceiver() = default;

    /** A packet has fully arrived at this endpoint. */
    virtual void onPacket(PacketPtr pkt) = 0;
};

} // namespace qpip::net
