/**
 * @file
 * The wire unit of the simulated fabric.
 *
 * A Packet carries the *real bytes* of the network layer and above
 * (IPv4/IPv6 + TCP/UDP headers + payload) — these are serialized,
 * checksummed and parsed exactly as on a real wire. The link layer is
 * modeled: instead of serializing a Myrinet route header or Ethernet
 * MAC header we carry fabric source/destination ids as metadata and
 * account for the header's size in wireBytes(). This preserves all
 * timing (serialization occupies the link for header + payload bytes)
 * while keeping fabric addressing orthogonal to the protocol code.
 *
 * Hot-path design: packets and their payload storage are recycled
 * through process-wide pools (PacketPool / payload BufferPool) instead
 * of being heap-allocated per hop. PacketPtr is an intrusive
 * refcounted pointer — the count lives in the Packet — so copying one
 * into an event closure costs an increment, not a shared_ptr control
 * block. Recycling is deterministic: the freelists are LIFO in
 * release order, release order is fixed by the (deterministic) event
 * order, and every acquired object is field-reset, so a replayed run
 * sees bit-identical packet contents and ids. Only malloc traffic —
 * never simulated behavior — depends on the pool.
 */

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace qpip::net {

/** Fabric address of a node's link-layer attachment. */
using NodeId = std::uint32_t;

constexpr NodeId invalidNode = ~NodeId(0);

/** Network-layer protocol carried in a packet (like EtherType). */
enum class NetProto : std::uint16_t {
    Raw = 0,
    Ipv4 = 0x0800,
    Ipv6 = 0x86dd,
};

/**
 * One link-layer frame.
 */
struct Packet
{
    /** Monotonic id for tracing/debugging. */
    std::uint64_t id = 0;

    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    NetProto proto = NetProto::Raw;

    /** Modeled link header+CRC size included in wire time. */
    std::uint32_t linkOverheadBytes = 0;

    /** Real network-layer bytes. */
    std::vector<std::uint8_t> data;

    /** Time the packet first entered a link (for latency stats). */
    sim::Tick injectedAt = 0;

    /** Total bytes that occupy the wire. */
    std::size_t wireBytes() const
    {
        return data.size() + linkOverheadBytes;
    }

    std::span<const std::uint8_t> bytes() const { return data; }

  private:
    friend class PacketPtr;
    friend class PacketPool;
    /** Intrusive reference count (single-threaded simulation). */
    std::uint32_t refs_ = 0;
};

namespace detail {
/** Return a fully-dereferenced packet to the pool. */
void releasePacket(Packet *pkt);
} // namespace detail

/**
 * Intrusive refcounted handle to a pooled Packet. API-compatible with
 * the shared_ptr it replaces for the operations the datapath uses
 * (copy, move, ->, *, bool). When the last handle drops, the packet
 * returns to the PacketPool and its payload storage to the
 * BufferPool.
 */
class PacketPtr
{
  public:
    PacketPtr() = default;

    /** Adopt @p pkt (pool-internal; use makePacket()). */
    explicit PacketPtr(Packet *pkt) : pkt_(pkt)
    {
        if (pkt_ != nullptr)
            ++pkt_->refs_;
    }

    PacketPtr(const PacketPtr &o) : pkt_(o.pkt_)
    {
        if (pkt_ != nullptr)
            ++pkt_->refs_;
    }

    PacketPtr(PacketPtr &&o) noexcept
        : pkt_(std::exchange(o.pkt_, nullptr))
    {}

    PacketPtr &
    operator=(const PacketPtr &o)
    {
        PacketPtr tmp(o);
        std::swap(pkt_, tmp.pkt_);
        return *this;
    }

    PacketPtr &
    operator=(PacketPtr &&o) noexcept
    {
        PacketPtr tmp(std::move(o));
        std::swap(pkt_, tmp.pkt_);
        return *this;
    }

    ~PacketPtr()
    {
        if (pkt_ != nullptr && --pkt_->refs_ == 0)
            detail::releasePacket(pkt_);
    }

    void
    reset()
    {
        PacketPtr tmp;
        std::swap(pkt_, tmp.pkt_);
    }

    Packet *operator->() const { return pkt_; }
    Packet &operator*() const { return *pkt_; }
    Packet *get() const { return pkt_; }
    explicit operator bool() const { return pkt_ != nullptr; }

    friend bool
    operator==(const PacketPtr &a, const PacketPtr &b)
    {
        return a.pkt_ == b.pkt_;
    }

  private:
    Packet *pkt_ = nullptr;
};

/**
 * Acquire a payload-sized byte buffer from the process-wide buffer
 * pool. The returned vector is empty but keeps whatever capacity it
 * retired with, so steady-state serialization re-uses wire-frame
 * storage instead of growing fresh vectors. Deterministic: LIFO in
 * release order.
 */
std::vector<std::uint8_t> acquireBuffer();

/** Return a buffer's storage to the pool (it is cleared, not freed). */
void recycleBuffer(std::vector<std::uint8_t> &&buf);

/** Pool occupancy counters, for tests and diagnostics. */
struct PoolStats
{
    std::uint64_t packetsAcquired = 0;
    std::uint64_t packetsRecycled = 0; ///< served from the freelist
    std::uint64_t buffersAcquired = 0;
    std::uint64_t buffersRecycled = 0; ///< served from the freelist
    std::size_t packetFreelistDepth = 0;
    std::size_t bufferFreelistDepth = 0;
};

/** Snapshot of the process-wide pools. */
PoolStats poolStats();

/** Allocate a packet with a fresh trace id (pooled). */
PacketPtr makePacket();

/** Deep-copy a packet (fresh id) — used by duplication fault injection. */
PacketPtr clonePacket(const Packet &pkt);

/**
 * Interface implemented by anything that terminates a link: NICs and
 * switch ports.
 */
class NetReceiver
{
  public:
    virtual ~NetReceiver() = default;

    /** A packet has fully arrived at this endpoint. */
    virtual void onPacket(PacketPtr pkt) = 0;
};

} // namespace qpip::net
