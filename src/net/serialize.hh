/**
 * @file
 * Bounds-checked big-endian (network byte order) serialization used by
 * every protocol header in src/inet. Readers fail soft: out-of-bounds
 * reads return zero and latch !ok(), so corrupted packets can be
 * parsed defensively and then discarded.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace qpip::net {

/**
 * Appends big-endian fields to a byte vector.
 */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void bytes(std::span<const std::uint8_t> data);
    void zeros(std::size_t n);

    /** Overwrite a previously written 16-bit field at @p offset. */
    void patchU16(std::size_t offset, std::uint16_t v);

    std::size_t size() const { return out_.size(); }

  private:
    std::vector<std::uint8_t> &out_;
};

/**
 * Cursor-based reader over a byte span with soft failure.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data)
        : data_(data)
    {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();

    /** Copy @p n bytes out; zero-fills on under-run. */
    void bytes(std::uint8_t *dst, std::size_t n);

    /** Skip @p n bytes. */
    void skip(std::size_t n);

    /** Remaining unread bytes. */
    std::size_t remaining() const
    {
        return ok_ ? data_.size() - pos_ : 0;
    }

    /** View of the remaining bytes (empty if failed). */
    std::span<const std::uint8_t> rest() const;

    std::size_t position() const { return pos_; }
    bool ok() const { return ok_; }

  private:
    bool ensure(std::size_t n);

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace qpip::net
