/**
 * @file
 * Bounds-checked big-endian (network byte order) serialization used by
 * every protocol header in src/inet, plus the QPIP RDMA message
 * framing (a RETH-style extended transport header carried inside the
 * TCP message payload on RDMA-enabled QPs). Readers fail soft:
 * out-of-bounds reads return zero and latch !ok(), so corrupted
 * packets can be parsed defensively and then discarded.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace qpip::net {

/**
 * Appends big-endian fields to a byte vector.
 */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }

    void
    u16(std::uint16_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v));
    }

    void
    u32(std::uint32_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v >> 24));
        out_.push_back(static_cast<std::uint8_t>(v >> 16));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v >> 32));
        u32(static_cast<std::uint32_t>(v));
    }

    void
    bytes(std::span<const std::uint8_t> data)
    {
        out_.insert(out_.end(), data.begin(), data.end());
    }

    void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

    /** Overwrite a previously written 16-bit field at @p offset. */
    void
    patchU16(std::size_t offset, std::uint16_t v)
    {
        out_.at(offset) = static_cast<std::uint8_t>(v >> 8);
        out_.at(offset + 1) = static_cast<std::uint8_t>(v);
    }

    std::size_t size() const { return out_.size(); }

  private:
    std::vector<std::uint8_t> &out_;
};

/**
 * Cursor-based reader over a byte span with soft failure.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data)
        : data_(data)
    {}

    std::uint8_t
    u8()
    {
        if (!ensure(1))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        if (!ensure(2))
            return 0;
        const auto v = static_cast<std::uint16_t>(
            (data_[pos_] << 8) | data_[pos_ + 1]);
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!ensure(4))
            return 0;
        const std::uint32_t v =
            (static_cast<std::uint32_t>(data_[pos_]) << 24) |
            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
            static_cast<std::uint32_t>(data_[pos_ + 3]);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t hi = u32();
        const std::uint64_t lo = u32();
        return (hi << 32) | lo;
    }

    /** Copy @p n bytes out; zero-fills on under-run. */
    void bytes(std::uint8_t *dst, std::size_t n);

    /** Skip @p n bytes. */
    void
    skip(std::size_t n)
    {
        if (ensure(n))
            pos_ += n;
    }

    /** Remaining unread bytes. */
    std::size_t remaining() const
    {
        return ok_ ? data_.size() - pos_ : 0;
    }

    /** View of the remaining bytes (empty if failed). */
    std::span<const std::uint8_t>
    rest() const
    {
        if (!ok_)
            return {};
        return data_.subspan(pos_);
    }

    std::size_t position() const { return pos_; }
    bool ok() const { return ok_; }

  private:
    bool
    ensure(std::size_t n)
    {
        if (!ok_ || data_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// ---------------------------------------------------------------------
// QPIP RDMA message framing
// ---------------------------------------------------------------------

/**
 * Per-message transport opcode on RDMA-enabled QPs. The opcode is the
 * first byte of every TCP message; legacy (non-RDMA) QPs carry raw
 * payloads and never see these.
 */
enum class RdmaOpcode : std::uint8_t {
    Send = 0,      ///< two-sided send, consumes a receive WR
    Write = 1,     ///< one-sided write; RETH + payload
    ReadReq = 2,   ///< one-sided read request; RETH + length
    WriteAck = 3,  ///< responder's completion of a Write
    ReadResp = 4,  ///< responder's reply to a ReadReq (+ payload)
};

const char *rdmaOpcodeName(RdmaOpcode op);

/** Status carried in WriteAck / ReadResp. */
enum class RdmaWireStatus : std::uint8_t {
    Ok = 0,
    RemoteAccess = 1, ///< bad rkey, out of bounds, or no permission
};

/**
 * The decoded framing header. Field validity depends on the opcode:
 * Write/ReadReq carry the RETH (raddr, rkey); ReadReq also carries
 * length; responses carry status. opId matches a response to its
 * request (per-QP, monotonically increasing).
 */
struct RdmaHeader
{
    RdmaOpcode opcode = RdmaOpcode::Send;
    std::uint64_t opId = 0;
    std::uint64_t raddr = 0; ///< byte offset into the remote MR
    std::uint32_t rkey = 0;
    std::uint32_t length = 0; ///< ReadReq: bytes requested
    RdmaWireStatus status = RdmaWireStatus::Ok;
};

/** Serialized header size for @p op (payload follows immediately). */
std::size_t rdmaHeaderBytes(RdmaOpcode op);

/** Frame @p payload under @p hdr into one message buffer. */
std::vector<std::uint8_t>
serializeRdmaMessage(const RdmaHeader &hdr,
                     std::span<const std::uint8_t> payload);

/**
 * Parse a framed message. @return false on truncation or an unknown
 * opcode; on success @p out is filled and @p payload views the bytes
 * after the header (inside @p msg).
 */
bool parseRdmaMessage(std::span<const std::uint8_t> msg, RdmaHeader &out,
                      std::span<const std::uint8_t> &payload);

// ---------------------------------------------------------------------
// QPIP reliable-datagram (RUD) message framing
// ---------------------------------------------------------------------

/**
 * Per-datagram opcode of the reliable-over-UD shim. Every UDP
 * datagram a ReliableDatagram QP emits starts with one of these;
 * plain UnreliableUdp QPs carry raw payloads and never see them.
 */
enum class RudOpcode : std::uint8_t {
    Data = 0, ///< sequenced payload; carries a piggybacked ack
    Ack = 1,  ///< standalone cumulative ack (no payload)
};

const char *rudOpcodeName(RudOpcode op);

/**
 * The decoded RUD framing header. seq is valid for Data only; ack is
 * the cumulative acknowledgment (highest in-order sequence received
 * from the datagram's destination) and is carried by both opcodes —
 * Data piggybacks it, Ack exists for nothing else. Sequence numbers
 * are per (QP, peer) and start at 1; ack 0 means "nothing yet".
 */
struct RudHeader
{
    RudOpcode opcode = RudOpcode::Data;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
};

/** Serialized header size for @p op (payload follows immediately). */
std::size_t rudHeaderBytes(RudOpcode op);

/** Frame @p payload under @p hdr into one datagram buffer. */
std::vector<std::uint8_t>
serializeRudMessage(const RudHeader &hdr,
                    std::span<const std::uint8_t> payload);

/**
 * Parse a framed RUD datagram. @return false on truncation or an
 * unknown opcode; on success @p out is filled and @p payload views
 * the bytes after the header (inside @p msg).
 */
bool parseRudMessage(std::span<const std::uint8_t> msg, RudHeader &out,
                     std::span<const std::uint8_t> &payload);

} // namespace qpip::net
