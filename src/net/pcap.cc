#include "net/pcap.hh"

#include <cstdio>

#include "net/link.hh"
#include "sim/logging.hh"

namespace qpip::net {

namespace {

// pcap is host-endian with endianness signalled by the magic; we
// always write little-endian (the conventional on-disk form).
void
putLe16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putLe32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

} // namespace

PcapWriter::PcapWriter(std::uint32_t snaplen) : snaplen_(snaplen)
{
    putLe32(buf_, 0xa1b2c3d4); // magic: microsecond timestamps
    putLe16(buf_, 2);          // version major
    putLe16(buf_, 4);          // version minor
    putLe32(buf_, 0);          // thiszone
    putLe32(buf_, 0);          // sigfigs
    putLe32(buf_, snaplen_);
    putLe32(buf_, pcapLinktypeRaw);
}

void
PcapWriter::record(const Packet &pkt, sim::Tick when)
{
    const auto incl = static_cast<std::uint32_t>(
        std::min<std::size_t>(pkt.data.size(), snaplen_));
    putLe32(buf_, static_cast<std::uint32_t>(when / sim::oneSec));
    putLe32(buf_, static_cast<std::uint32_t>((when % sim::oneSec) /
                                             sim::oneUs));
    putLe32(buf_, incl);
    putLe32(buf_, static_cast<std::uint32_t>(pkt.data.size()));
    buf_.insert(buf_.end(), pkt.data.begin(), pkt.data.begin() + incl);
    ++frames_;
}

bool
PcapWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        sim::warn("PcapWriter: cannot open '%s'", path.c_str());
        return false;
    }
    const bool ok =
        std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size();
    std::fclose(f);
    return ok;
}

void
tapLink(Link &link, PcapWriter &writer)
{
    link.txTap = [&writer](const Packet &pkt, sim::Tick when) {
        writer.record(pkt, when);
    };
}

void
tapLinkSide(Link &link, int side, PcapWriter &writer)
{
    link.setSideTap(side,
                    [&writer](const Packet &pkt, sim::Tick when) {
                        writer.record(pkt, when);
                    });
}

} // namespace qpip::net
