#include "net/link.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace qpip::net {

using sim::panic;
using sim::warn;

LinkConfig
gigabitEthernetLink()
{
    LinkConfig cfg;
    cfg.bitsPerSec = 1e9;
    cfg.propDelay = sim::oneUs; // phy + cable across a machine room
    cfg.mtu = 1500;
    // preamble(8) + MACs(12) + type(2) + FCS(4) + IFG(12)
    cfg.overheadBytes = 38;
    cfg.txQueueCap = 512;
    return cfg;
}

LinkConfig
myrinetLink(std::uint32_t mtu)
{
    LinkConfig cfg;
    cfg.bitsPerSec = 2e9;
    cfg.propDelay = sim::oneUs / 2;
    cfg.mtu = mtu;
    cfg.overheadBytes = 8; // route bytes + type + CRC
    // Myrinet applies link-level backpressure instead of dropping;
    // a deep queue approximates that losslessness.
    cfg.txQueueCap = 1 << 20;
    return cfg;
}

Link::Link(sim::Simulation &sim, std::string name, LinkConfig config)
    : SimObject(sim, std::move(name)), cfg_(config), faults_(sim.rng())
{
    regStat("packetsSent", packetsSent);
    regStat("bytesSent", bytesSent);
    regStat("oversizeDrops", oversizeDrops);
    regStat("queueDrops", queueDrops);
    regStat("faults.drops", faults_.drops);
    regStat("faults.dups", faults_.dups);
    regStat("faults.corruptions", faults_.corruptions);
    regStat("faults.reorders", faults_.reorders);
}

void
Link::attach(int side, NetReceiver &receiver)
{
    dir_.at(static_cast<std::size_t>(side)).receiver = &receiver;
}

sim::Tick
Link::serializationDelay(std::size_t wire_bytes) const
{
    const double bits = static_cast<double>(wire_bytes) * 8.0;
    return static_cast<sim::Tick>(
        std::llround(bits / cfg_.bitsPerSec * 1e12));
}

sim::Tick
Link::txIdleAt(int side) const
{
    return dir_.at(static_cast<std::size_t>(side)).busyUntil;
}

void
Link::bindSide(int side, const LinkBoundary &boundary)
{
    auto &d = dir_.at(static_cast<std::size_t>(side));
    d.bnd = boundary;
    d.faults = std::make_unique<FaultInjector>(*boundary.rng);
    d.faults->config = faults_.config;
}

void
Link::setSideTap(int side,
                 std::function<void(const Packet &, sim::Tick)> tap)
{
    dir_.at(static_cast<std::size_t>(side)).tap = std::move(tap);
}

void
Link::foldBoundaryStats()
{
    for (auto &d : dir_) {
        if (d.bnd.eq == nullptr)
            continue;
        packetsSent.inc(d.packetsSent.value());
        bytesSent.inc(d.bytesSent.value());
        oversizeDrops.inc(d.oversizeDrops.value());
        queueDrops.inc(d.queueDrops.value());
        d.packetsSent.reset();
        d.bytesSent.reset();
        d.oversizeDrops.reset();
        d.queueDrops.reset();
        faults_.drops.inc(d.faults->drops.value());
        faults_.dups.inc(d.faults->dups.value());
        faults_.corruptions.inc(d.faults->corruptions.value());
        faults_.reorders.inc(d.faults->reorders.value());
        d.faults->drops.reset();
        d.faults->dups.reset();
        d.faults->corruptions.reset();
        d.faults->reorders.reset();
    }
}

/**
 * The parallel-mode transmit path: identical wire model to send(),
 * but all mutable state it touches — busyUntil, counters, the fault
 * stream, the tap — is owned by this direction's sending partition,
 * and delivery goes through the bound queue or the cross-partition
 * mailbox instead of the global queue.
 */
bool
Link::sendBoundary(Direction &tx, int from_side, PacketPtr pkt)
{
    const int to_side = from_side ^ 1;

    if (pkt->data.size() > cfg_.mtu) {
        tx.oversizeDrops.inc();
        warn("%s: dropping oversize packet (%zu > mtu %u)",
             name().c_str(), pkt->data.size(), cfg_.mtu);
        return false;
    }

    const sim::Tick now = tx.bnd.eq->now();
    if (tx.busyUntil > now) {
        const sim::Tick backlog = tx.busyUntil - now;
        const sim::Tick one_mtu =
            serializationDelay(cfg_.mtu + cfg_.overheadBytes);
        if (backlog > one_mtu * cfg_.txQueueCap) {
            tx.queueDrops.inc();
            return false;
        }
    }

    pkt->linkOverheadBytes = cfg_.overheadBytes;
    if (pkt->injectedAt == 0)
        pkt->injectedAt = now;

    const sim::Tick start = std::max(now, tx.busyUntil);
    const sim::Tick ser = serializationDelay(pkt->wireBytes());
    tx.busyUntil = start + ser;

    tx.packetsSent.inc();
    tx.bytesSent.inc(pkt->wireBytes());

    // Live config (tests flip fault rates between runs), private
    // per-direction stream and counters.
    tx.faults->config = faults_.config;
    FaultDecision fault = tx.faults->apply(*pkt);

    if (tx.tap)
        tx.tap(*pkt, start);
    // No tracer span: the parallel engine rejects tracing outright.

    if (fault.drop)
        return true; // consumed the wire, never arrives

    auto &rx = dir_.at(static_cast<std::size_t>(to_side));
    if (rx.receiver == nullptr)
        panic("%s: side %d has no receiver", name().c_str(), to_side);
    NetReceiver *receiver = rx.receiver;

    const auto post = [&](PacketPtr p, sim::Tick extra) {
        const sim::Tick arrive = tx.busyUntil + cfg_.propDelay + extra;
        if (tx.bnd.outbox != nullptr) {
            tx.bnd.outbox->post(arrive, sim::defaultPriority,
                                [receiver, p] {
                                    receiver->onPacket(p);
                                });
        } else {
            tx.bnd.eq->schedule(arrive, [receiver, p] {
                receiver->onPacket(p);
            });
        }
    };

    post(pkt, fault.extraDelay);
    if (fault.duplicate)
        post(clonePacket(*pkt), fault.extraDelay);
    return true;
}

bool
Link::send(int from_side, PacketPtr pkt)
{
    auto &tx = dir_.at(static_cast<std::size_t>(from_side));
    const int to_side = from_side ^ 1;

    if (tx.bnd.eq != nullptr)
        return sendBoundary(tx, from_side, std::move(pkt));

    if (pkt->data.size() > cfg_.mtu) {
        oversizeDrops.inc();
        warn("%s: dropping oversize packet (%zu > mtu %u)",
             name().c_str(), pkt->data.size(), cfg_.mtu);
        return false;
    }

    const sim::Tick now = curTick();
    // Model queue depth by how far ahead of real time the transmitter
    // is already committed.
    if (tx.busyUntil > now) {
        const sim::Tick backlog = tx.busyUntil - now;
        const sim::Tick one_mtu =
            serializationDelay(cfg_.mtu + cfg_.overheadBytes);
        if (backlog > one_mtu * cfg_.txQueueCap) {
            queueDrops.inc();
            return false;
        }
    }

    pkt->linkOverheadBytes = cfg_.overheadBytes;
    if (pkt->injectedAt == 0)
        pkt->injectedAt = now;

    const sim::Tick start = std::max(now, tx.busyUntil);
    const sim::Tick ser = serializationDelay(pkt->wireBytes());
    tx.busyUntil = start + ser;

    packetsSent.inc();
    bytesSent.inc(pkt->wireBytes());

    FaultDecision fault = faults_.apply(*pkt);

    if (tx.tap)
        tx.tap(*pkt, start);
    else if (txTap)
        txTap(*pkt, start);
    if (tracer().enabled()) {
        // Tag with the link-local sequence number (not pkt->id, which
        // is a process-global counter and would break same-seed trace
        // comparisons across runs).
        tracer().span(name(), "tx", start, ser,
                      sim::strfmt("{\"seq\": %llu, \"bytes\": %zu, "
                                  "\"side\": %d}",
                                  static_cast<unsigned long long>(
                                      packetsSent.value()),
                                  pkt->wireBytes(), from_side));
    }

    if (fault.drop)
        return true; // consumed the wire, never arrives

    deliver(to_side, pkt, fault.extraDelay);
    if (fault.duplicate)
        deliver(to_side, clonePacket(*pkt), fault.extraDelay);
    return true;
}

void
Link::deliver(int to_side, PacketPtr pkt, sim::Tick extra_delay)
{
    auto &rx = dir_.at(static_cast<std::size_t>(to_side));
    if (rx.receiver == nullptr)
        panic("%s: side %d has no receiver", name().c_str(), to_side);

    auto &tx = dir_.at(static_cast<std::size_t>(to_side ^ 1));
    const sim::Tick arrive = tx.busyUntil + cfg_.propDelay + extra_delay;
    NetReceiver *receiver = rx.receiver;
    schedule(arrive, [receiver, pkt] { receiver->onPacket(pkt); });
}

} // namespace qpip::net
