#include "net/link.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace qpip::net {

using sim::panic;
using sim::warn;

LinkConfig
gigabitEthernetLink()
{
    LinkConfig cfg;
    cfg.bitsPerSec = 1e9;
    cfg.propDelay = sim::oneUs; // phy + cable across a machine room
    cfg.mtu = 1500;
    // preamble(8) + MACs(12) + type(2) + FCS(4) + IFG(12)
    cfg.overheadBytes = 38;
    cfg.txQueueCap = 512;
    return cfg;
}

LinkConfig
myrinetLink(std::uint32_t mtu)
{
    LinkConfig cfg;
    cfg.bitsPerSec = 2e9;
    cfg.propDelay = sim::oneUs / 2;
    cfg.mtu = mtu;
    cfg.overheadBytes = 8; // route bytes + type + CRC
    // Myrinet applies link-level backpressure instead of dropping;
    // a deep queue approximates that losslessness.
    cfg.txQueueCap = 1 << 20;
    return cfg;
}

Link::Link(sim::Simulation &sim, std::string name, LinkConfig config)
    : SimObject(sim, std::move(name)), cfg_(config), faults_(sim.rng())
{
    regStat("packetsSent", packetsSent);
    regStat("bytesSent", bytesSent);
    regStat("oversizeDrops", oversizeDrops);
    regStat("queueDrops", queueDrops);
    regStat("faults.drops", faults_.drops);
    regStat("faults.dups", faults_.dups);
    regStat("faults.corruptions", faults_.corruptions);
    regStat("faults.reorders", faults_.reorders);
}

void
Link::attach(int side, NetReceiver &receiver)
{
    dir_.at(static_cast<std::size_t>(side)).receiver = &receiver;
}

sim::Tick
Link::serializationDelay(std::size_t wire_bytes) const
{
    const double bits = static_cast<double>(wire_bytes) * 8.0;
    return static_cast<sim::Tick>(
        std::llround(bits / cfg_.bitsPerSec * 1e12));
}

sim::Tick
Link::txIdleAt(int side) const
{
    return dir_.at(static_cast<std::size_t>(side)).busyUntil;
}

bool
Link::send(int from_side, PacketPtr pkt)
{
    auto &tx = dir_.at(static_cast<std::size_t>(from_side));
    const int to_side = from_side ^ 1;

    if (pkt->data.size() > cfg_.mtu) {
        oversizeDrops.inc();
        warn("%s: dropping oversize packet (%zu > mtu %u)",
             name().c_str(), pkt->data.size(), cfg_.mtu);
        return false;
    }

    const sim::Tick now = curTick();
    // Model queue depth by how far ahead of real time the transmitter
    // is already committed.
    if (tx.busyUntil > now) {
        const sim::Tick backlog = tx.busyUntil - now;
        const sim::Tick one_mtu =
            serializationDelay(cfg_.mtu + cfg_.overheadBytes);
        if (backlog > one_mtu * cfg_.txQueueCap) {
            queueDrops.inc();
            return false;
        }
    }

    pkt->linkOverheadBytes = cfg_.overheadBytes;
    if (pkt->injectedAt == 0)
        pkt->injectedAt = now;

    const sim::Tick start = std::max(now, tx.busyUntil);
    const sim::Tick ser = serializationDelay(pkt->wireBytes());
    tx.busyUntil = start + ser;

    packetsSent.inc();
    bytesSent.inc(pkt->wireBytes());

    FaultDecision fault = faults_.apply(*pkt);

    if (txTap)
        txTap(*pkt, start);
    if (tracer().enabled()) {
        // Tag with the link-local sequence number (not pkt->id, which
        // is a process-global counter and would break same-seed trace
        // comparisons across runs).
        tracer().span(name(), "tx", start, ser,
                      sim::strfmt("{\"seq\": %llu, \"bytes\": %zu, "
                                  "\"side\": %d}",
                                  static_cast<unsigned long long>(
                                      packetsSent.value()),
                                  pkt->wireBytes(), from_side));
    }

    if (fault.drop)
        return true; // consumed the wire, never arrives

    deliver(to_side, pkt, fault.extraDelay);
    if (fault.duplicate)
        deliver(to_side, clonePacket(*pkt), fault.extraDelay);
    return true;
}

void
Link::deliver(int to_side, PacketPtr pkt, sim::Tick extra_delay)
{
    auto &rx = dir_.at(static_cast<std::size_t>(to_side));
    if (rx.receiver == nullptr)
        panic("%s: side %d has no receiver", name().c_str(), to_side);

    auto &tx = dir_.at(static_cast<std::size_t>(to_side ^ 1));
    const sim::Tick arrive = tx.busyUntil + cfg_.propDelay + extra_delay;
    NetReceiver *receiver = rx.receiver;
    schedule(arrive, [receiver, pkt] { receiver->onPacket(pkt); });
}

} // namespace qpip::net
