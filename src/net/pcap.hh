/**
 * @file
 * Packet capture to standard pcap files readable by Wireshark and
 * tcpdump. Because packets carry the real serialized bytes of the
 * network layer and above (genuine IPv4/IPv6/TCP/UDP headers and
 * checksums), captures use LINKTYPE_RAW (the frame starts at the IP
 * version nibble) and every captured frame dissects cleanly. A writer
 * taps a Link's transmitters: frames are recorded at the tick their
 * serialization starts, after fault injection, so the capture shows
 * exactly what occupied the wire — including corrupted frames and
 * frames subsequently dropped by the fault injector.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace qpip::net {

class Link;

/** pcap linktype for frames beginning with a raw IP header. */
constexpr std::uint32_t pcapLinktypeRaw = 101;

constexpr std::size_t pcapFileHeaderBytes = 24;
constexpr std::size_t pcapRecordHeaderBytes = 16;

/**
 * An in-memory pcap capture: record frames, then write the file.
 */
class PcapWriter
{
  public:
    explicit PcapWriter(std::uint32_t snaplen = 65535);

    /** Append one frame timestamped @p when (simulated ticks). */
    void record(const Packet &pkt, sim::Tick when);

    std::size_t frames() const { return frames_; }

    /** The complete pcap file image (header + records). */
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    /** Write bytes() to @p path. @return false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    std::uint32_t snaplen_;
    std::size_t frames_ = 0;
    std::vector<std::uint8_t> buf_;
};

/**
 * Tap both transmitters of @p link into @p writer, which must outlive
 * the link's traffic. Replaces any previous tap on the link.
 */
void tapLink(Link &link, PcapWriter &writer);

/**
 * Tap only the transmitter of @p side into @p writer. Parallel mode
 * requires one writer per direction — each side's tap fires in that
 * side's sending partition, so a shared writer would interleave
 * nondeterministically. Compare captures per side (or concatenate in
 * a fixed order) instead.
 */
void tapLinkSide(Link &link, int side, PcapWriter &writer);

} // namespace qpip::net
