#include "net/serialize.hh"

namespace qpip::net {

void
ByteWriter::u16(std::uint16_t v)
{
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
}

void
ByteWriter::u32(std::uint32_t v)
{
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
}

void
ByteWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
}

void
ByteWriter::bytes(std::span<const std::uint8_t> data)
{
    out_.insert(out_.end(), data.begin(), data.end());
}

void
ByteWriter::zeros(std::size_t n)
{
    out_.insert(out_.end(), n, 0);
}

void
ByteWriter::patchU16(std::size_t offset, std::uint16_t v)
{
    out_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    out_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

bool
ByteReader::ensure(std::size_t n)
{
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint8_t
ByteReader::u8()
{
    if (!ensure(1))
        return 0;
    return data_[pos_++];
}

std::uint16_t
ByteReader::u16()
{
    if (!ensure(2))
        return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      data_[pos_ + 1];
    pos_ += 2;
    return v;
}

std::uint32_t
ByteReader::u32()
{
    if (!ensure(4))
        return 0;
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    std::uint64_t hi = u32();
    std::uint64_t lo = u32();
    return (hi << 32) | lo;
}

void
ByteReader::bytes(std::uint8_t *dst, std::size_t n)
{
    if (!ensure(n)) {
        std::memset(dst, 0, n);
        return;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
}

void
ByteReader::skip(std::size_t n)
{
    if (ensure(n))
        pos_ += n;
}

std::span<const std::uint8_t>
ByteReader::rest() const
{
    if (!ok_)
        return {};
    return data_.subspan(pos_);
}

} // namespace qpip::net
