#include "net/serialize.hh"

namespace qpip::net {

void
ByteReader::bytes(std::uint8_t *dst, std::size_t n)
{
    if (!ensure(n)) {
        std::memset(dst, 0, n);
        return;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
}

const char *
rdmaOpcodeName(RdmaOpcode op)
{
    switch (op) {
      case RdmaOpcode::Send: return "send";
      case RdmaOpcode::Write: return "write";
      case RdmaOpcode::ReadReq: return "read-req";
      case RdmaOpcode::WriteAck: return "write-ack";
      case RdmaOpcode::ReadResp: return "read-resp";
    }
    return "?";
}

std::size_t
rdmaHeaderBytes(RdmaOpcode op)
{
    switch (op) {
      case RdmaOpcode::Send:
        return 1;
      case RdmaOpcode::Write: // op + opId + raddr + rkey
        return 1 + 8 + 8 + 4;
      case RdmaOpcode::ReadReq: // op + opId + raddr + rkey + length
        return 1 + 8 + 8 + 4 + 4;
      case RdmaOpcode::WriteAck: // op + opId + status
      case RdmaOpcode::ReadResp:
        return 1 + 8 + 1;
    }
    return 0;
}

std::vector<std::uint8_t>
serializeRdmaMessage(const RdmaHeader &hdr,
                     std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(rdmaHeaderBytes(hdr.opcode) + payload.size());
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(hdr.opcode));
    switch (hdr.opcode) {
      case RdmaOpcode::Send:
        break;
      case RdmaOpcode::Write:
        w.u64(hdr.opId);
        w.u64(hdr.raddr);
        w.u32(hdr.rkey);
        break;
      case RdmaOpcode::ReadReq:
        w.u64(hdr.opId);
        w.u64(hdr.raddr);
        w.u32(hdr.rkey);
        w.u32(hdr.length);
        break;
      case RdmaOpcode::WriteAck:
      case RdmaOpcode::ReadResp:
        w.u64(hdr.opId);
        w.u8(static_cast<std::uint8_t>(hdr.status));
        break;
    }
    w.bytes(payload);
    return out;
}

bool
parseRdmaMessage(std::span<const std::uint8_t> msg, RdmaHeader &out,
                 std::span<const std::uint8_t> &payload)
{
    ByteReader r(msg);
    const std::uint8_t op = r.u8();
    if (!r.ok() ||
        op > static_cast<std::uint8_t>(RdmaOpcode::ReadResp)) {
        return false;
    }
    out = RdmaHeader{};
    out.opcode = static_cast<RdmaOpcode>(op);
    switch (out.opcode) {
      case RdmaOpcode::Send:
        break;
      case RdmaOpcode::Write:
        out.opId = r.u64();
        out.raddr = r.u64();
        out.rkey = r.u32();
        break;
      case RdmaOpcode::ReadReq:
        out.opId = r.u64();
        out.raddr = r.u64();
        out.rkey = r.u32();
        out.length = r.u32();
        break;
      case RdmaOpcode::WriteAck:
      case RdmaOpcode::ReadResp: {
        out.opId = r.u64();
        const std::uint8_t st = r.u8();
        if (st > static_cast<std::uint8_t>(RdmaWireStatus::RemoteAccess))
            return false;
        out.status = static_cast<RdmaWireStatus>(st);
        break;
      }
    }
    if (!r.ok())
        return false;
    payload = r.rest();
    return true;
}

const char *
rudOpcodeName(RudOpcode op)
{
    switch (op) {
      case RudOpcode::Data: return "data";
      case RudOpcode::Ack: return "ack";
    }
    return "?";
}

std::size_t
rudHeaderBytes(RudOpcode op)
{
    switch (op) {
      case RudOpcode::Data: // op + seq + ack
        return 1 + 4 + 4;
      case RudOpcode::Ack: // op + ack
        return 1 + 4;
    }
    return 0;
}

std::vector<std::uint8_t>
serializeRudMessage(const RudHeader &hdr,
                    std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(rudHeaderBytes(hdr.opcode) + payload.size());
    ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(hdr.opcode));
    switch (hdr.opcode) {
      case RudOpcode::Data:
        w.u32(hdr.seq);
        w.u32(hdr.ack);
        break;
      case RudOpcode::Ack:
        w.u32(hdr.ack);
        break;
    }
    w.bytes(payload);
    return out;
}

bool
parseRudMessage(std::span<const std::uint8_t> msg, RudHeader &out,
                std::span<const std::uint8_t> &payload)
{
    ByteReader r(msg);
    const std::uint8_t op = r.u8();
    if (!r.ok() || op > static_cast<std::uint8_t>(RudOpcode::Ack))
        return false;
    out = RudHeader{};
    out.opcode = static_cast<RudOpcode>(op);
    switch (out.opcode) {
      case RudOpcode::Data:
        out.seq = r.u32();
        out.ack = r.u32();
        break;
      case RudOpcode::Ack:
        out.ack = r.u32();
        break;
    }
    if (!r.ok())
        return false;
    payload = r.rest();
    return true;
}

} // namespace qpip::net
