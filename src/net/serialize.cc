#include "net/serialize.hh"

namespace qpip::net {

void
ByteReader::bytes(std::uint8_t *dst, std::size_t n)
{
    if (!ensure(n)) {
        std::memset(dst, 0, n);
        return;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
}

} // namespace qpip::net
