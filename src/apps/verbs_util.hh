/**
 * @file
 * Small verbs-side helpers shared by the applications: a spin-polling
 * completion reaper (lowest latency, burns the CPU while waiting, as
 * user-level benchmarks do) and a periodic reaper (near-zero CPU,
 * used by the throughput apps so the host stays <1% utilized as in
 * Figure 4).
 */

#pragma once

#include <functional>

#include "qpip/qpip.hh"

namespace qpip::apps {

/**
 * Poll @p cq until a completion appears, then invoke @p cb with it.
 * Each empty poll charges the host CPU and retries as soon as the CPU
 * frees up — a faithful user-level spin.
 */
void spinPoll(verbs::Provider &prov, verbs::CompletionQueue &cq,
              std::function<void(verbs::Completion)> cb);

/**
 * Like spinPoll, but re-arms itself after every completion: @p cb is
 * invoked for each completion, forever (or until the simulation
 * stops running events).
 */
void spinLoop(verbs::Provider &prov, verbs::CompletionQueue &cq,
              std::function<void(verbs::Completion)> cb);

/**
 * Blocking completion loop: Wait() for each completion (interrupt
 * path, negligible CPU) and invoke @p cb, forever.
 */
void waitLoop(verbs::CompletionQueue &cq,
              std::function<void(verbs::Completion)> cb);

/**
 * Call @p drain every @p interval until it returns false. Each tick
 * charges only the poll cost, so a deep-pipelined transfer runs with
 * negligible host CPU.
 */
void periodicReaper(verbs::Provider &prov, sim::Tick interval,
                    std::function<bool()> drain);

} // namespace qpip::apps
