#include "apps/disk.hh"

#include <algorithm>
#include <cmath>

namespace qpip::apps {

DiskModel::DiskModel(sim::Simulation &sim, std::string name,
                     DiskParams params)
    : SimObject(sim, std::move(name)), params_(params)
{}

void
DiskModel::access(std::uint64_t offset, std::size_t len,
                  std::function<void()> done)
{
    accesses.inc();
    sim::Tick position = 0;
    if (offset != nextSequential_) {
        position = params_.seekTime + params_.rotationalDelay;
        seeks.inc();
    }
    const auto media = static_cast<sim::Tick>(std::llround(
        static_cast<double>(len) / params_.bytesPerSec * 1e12));
    const sim::Tick start = std::max(curTick(), busyUntil_);
    busyUntil_ = start + position + media;
    nextSequential_ = offset + len;
    schedule(busyUntil_, std::move(done));
}

ServerStore::ServerStore(sim::Simulation &sim, std::string name,
                         std::uint64_t device_bytes, DiskParams disk,
                         std::size_t dirty_cap)
    : SimObject(sim, std::move(name)), deviceBytes_(device_bytes),
      disk_(sim, this->name() + ".disk", disk), dirtyCap_(dirty_cap)
{}

void
ServerStore::read(std::uint64_t offset, std::size_t len,
                  std::function<void()> done)
{
    if (offset + len <= cachedUpTo_) {
        cacheHits.inc();
        // RAM-speed: effectively immediate at this timescale.
        schedule(curTick(), std::move(done));
        return;
    }
    cacheMisses.inc();
    disk_.access(offset, len, [this, offset, len,
                               done = std::move(done)]() mutable {
        // Sequential reads populate the cache watermark.
        if (offset <= cachedUpTo_)
            cachedUpTo_ = std::max(cachedUpTo_, offset + len);
        done();
    });
}

void
ServerStore::write(std::uint64_t offset, std::size_t len,
                   std::function<void()> done)
{
    // Written data is cache-resident for subsequent reads.
    if (offset <= cachedUpTo_)
        cachedUpTo_ = std::max(cachedUpTo_, offset + len);

    dirtyQueue_.emplace_back(offset, len);
    dirtyBytes_ += len;
    drain();
    if (dirtyBytes_ <= dirtyCap_) {
        schedule(curTick(), std::move(done));
    } else {
        // Dirty buffer full: the writer blocks until the disk
        // catches up.
        writeWaiters_.emplace_back(len, std::move(done));
    }
}

void
ServerStore::drain()
{
    if (draining_ || dirtyQueue_.empty())
        return;
    draining_ = true;
    auto [offset, len] = dirtyQueue_.front();
    dirtyQueue_.pop_front();
    disk_.access(offset, len, [this, len = len] {
        dirtyBytes_ -= len;
        draining_ = false;
        serveWaiters();
        drain();
        if (dirtyQueue_.empty() && !flushWaiters_.empty()) {
            auto waiters = std::move(flushWaiters_);
            flushWaiters_.clear();
            for (auto &w : waiters)
                w();
        }
    });
}

void
ServerStore::serveWaiters()
{
    while (!writeWaiters_.empty() && dirtyBytes_ <= dirtyCap_) {
        auto done = std::move(writeWaiters_.front().second);
        writeWaiters_.pop_front();
        done();
    }
}

void
ServerStore::flush(std::function<void()> done)
{
    if (dirtyQueue_.empty() && !draining_) {
        schedule(curTick(), std::move(done));
        return;
    }
    flushWaiters_.push_back(std::move(done));
}

} // namespace qpip::apps
