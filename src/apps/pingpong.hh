/**
 * @file
 * Application-to-application round-trip benchmark (Figure 3): one
 * small message bounced between two processes, timed at user level.
 * Sockets variants run over the host stack; QPIP variants post WRs
 * and spin-poll the CQ (the prototype's low-latency completion path).
 */

#pragma once

#include "apps/testbed.hh"

namespace qpip::apps {

/** Result of a ping-pong run. */
struct PingPongResult
{
    /** Mean round-trip time over the measured iterations. */
    double rttUs = 0.0;
    std::size_t iterations = 0;
    bool completed = false;
};

/** TCP ping-pong over the sockets stack (client = host 0). */
PingPongResult runSocketTcpPingPong(SocketsTestbed &bed,
                                    std::size_t iterations,
                                    std::size_t msg_bytes = 1,
                                    std::size_t warmup = 8);

/** UDP ping-pong over the sockets stack. */
PingPongResult runSocketUdpPingPong(SocketsTestbed &bed,
                                    std::size_t iterations,
                                    std::size_t msg_bytes = 1,
                                    std::size_t warmup = 8);

/** Reliable (TCP) QP ping-pong over QPIP. */
PingPongResult runQpipTcpPingPong(QpipTestbed &bed,
                                  std::size_t iterations,
                                  std::size_t msg_bytes = 1,
                                  std::size_t warmup = 8);

/** Unreliable (UDP) QP ping-pong over QPIP. */
PingPongResult runQpipUdpPingPong(QpipTestbed &bed,
                                  std::size_t iterations,
                                  std::size_t msg_bytes = 1,
                                  std::size_t warmup = 8);

} // namespace qpip::apps
