#include "apps/nbd.hh"

#include <algorithm>
#include <unordered_map>

#include "apps/verbs_util.hh"
#include "net/serialize.hh"
#include "sim/logging.hh"

namespace qpip::apps {

using host::TcpSocket;
using sim::Tick;

namespace {

constexpr Tick runDeadline = 1200 * sim::oneSec;

/** Each client run gets a fresh source port (old conns may linger). */
std::uint16_t
nextClientPort()
{
    // qpip-lint: partition-ok(called only from the serial run* harness entry points, before any partitioned execution starts)
    static std::uint16_t port = 30100;
    return port++;
}

/** Deterministic device pattern byte for an absolute offset. */
std::uint8_t
patternByte(std::uint64_t off)
{
    return static_cast<std::uint8_t>((off >> 12) * 31 + (off & 0xff));
}

void
fillPattern(std::uint64_t off, std::span<std::uint8_t> out)
{
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = patternByte(off + i);
}

} // namespace

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
serializeNbdRequest(const NbdRequest &req,
                    std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(nbdRequestHeaderBytes + payload.size());
    net::ByteWriter w(out);
    w.u32(nbdRequestMagic);
    w.u32(static_cast<std::uint32_t>(req.type));
    w.u64(req.handle);
    w.u64(req.offset);
    w.u32(req.length);
    w.bytes(payload);
    return out;
}

bool
parseNbdRequest(std::span<const std::uint8_t> bytes, NbdRequest &out)
{
    if (bytes.size() < nbdRequestHeaderBytes)
        return false;
    net::ByteReader r(bytes);
    if (r.u32() != nbdRequestMagic)
        return false;
    out.type = static_cast<NbdOp>(r.u32());
    out.handle = r.u64();
    out.offset = r.u64();
    out.length = r.u32();
    return r.ok();
}

std::vector<std::uint8_t>
serializeNbdReply(std::uint64_t handle, std::uint32_t error,
                  std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(nbdReplyHeaderBytes + payload.size());
    net::ByteWriter w(out);
    w.u32(nbdReplyMagic);
    w.u32(error);
    w.u64(handle);
    w.bytes(payload);
    return out;
}

bool
parseNbdReply(std::span<const std::uint8_t> bytes,
              std::uint64_t &handle, std::uint32_t &error)
{
    if (bytes.size() < nbdReplyHeaderBytes)
        return false;
    net::ByteReader r(bytes);
    if (r.u32() != nbdReplyMagic)
        return false;
    error = r.u32();
    handle = r.u64();
    return r.ok();
}

// ---------------------------------------------------------------------
// Sockets server
// ---------------------------------------------------------------------

NbdSocketServer::NbdSocketServer(host::HostStack &stack,
                                 ServerStore &store,
                                 NbdServerConfig config)
    : stack_(stack), store_(store), cfg_(config)
{
    auto cfg = stack_.defaultTcpConfig();
    cfg.noDelay = true;
    stack_.tcpListen(cfg_.port, cfg,
                     [this](std::shared_ptr<TcpSocket> sock) {
                         serve(std::move(sock));
                     });
}

void
NbdSocketServer::serve(std::shared_ptr<TcpSocket> sock)
{
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [this, sock, loop] {
        sock->recvExact(
            nbdRequestHeaderBytes,
            [this, sock, loop](std::vector<std::uint8_t> hdr) {
                NbdRequest req;
                if (!parseNbdRequest(hdr, req))
                    return; // EOF or protocol error: stop serving
                switch (req.type) {
                  case NbdOp::Read:
                    stack_.os().charge(cfg_.serverFsReadCyclesPerPage *
                                       (req.length / 4096 + 1));
                    store_.read(req.offset, req.length, [this, sock,
                                                         loop, req] {
                        std::vector<std::uint8_t> data(req.length);
                        if (cfg_.content != nullptr) {
                            std::copy_n(cfg_.content->begin() +
                                            static_cast<std::ptrdiff_t>(
                                                req.offset),
                                        req.length, data.begin());
                        } else {
                            fillPattern(req.offset, data);
                        }
                        sock->sendAll(
                            serializeNbdReply(req.handle, 0, data),
                            [loop] { (*loop)(); });
                    });
                    break;
                  case NbdOp::Write:
                    sock->recvExact(
                        req.length,
                        [this, sock, loop,
                         req](std::vector<std::uint8_t> data) {
                            if (data.size() < req.length)
                                return; // EOF mid-request
                            stack_.os().charge(
                                cfg_.serverFsWriteCyclesPerPage *
                                (req.length / 4096 + 1));
                            if (cfg_.content != nullptr) {
                                std::copy(
                                    data.begin(), data.end(),
                                    cfg_.content->begin() +
                                        static_cast<std::ptrdiff_t>(
                                            req.offset));
                            }
                            store_.write(
                                req.offset, req.length,
                                [sock, loop, req] {
                                    sock->sendAll(serializeNbdReply(
                                                      req.handle, 0),
                                                  [loop] { (*loop)(); });
                                });
                        });
                    break;
                  case NbdOp::Flush:
                    store_.flush([sock, loop, req] {
                        sock->sendAll(serializeNbdReply(req.handle, 0),
                                      [loop] { (*loop)(); });
                    });
                    break;
                }
            });
    };
    (*loop)();
}

// ---------------------------------------------------------------------
// QPIP server
// ---------------------------------------------------------------------

NbdQpipServer::NbdQpipServer(verbs::Provider &provider,
                             ServerStore &store, NbdServerConfig config)
    : provider_(provider), store_(store), cfg_(config)
{
    cq_ = provider_.createCq(4096);
    const std::size_t req_slot =
        nbdRequestHeaderBytes + cfg_.maxRequestBytes;
    const std::size_t rep_slot =
        nbdReplyHeaderBytes + cfg_.maxRequestBytes;
    reqBuf_ = std::make_shared<std::vector<std::uint8_t>>(req_slot *
                                                          slots_);
    repBuf_ = std::make_shared<std::vector<std::uint8_t>>(rep_slot *
                                                          slots_);
    reqMr_ = provider_.registerMemory(*reqBuf_);
    repMr_ = provider_.registerMemory(*repBuf_);
    acceptor_ = std::make_shared<verbs::Acceptor>(provider_, cfg_.port,
                                                  cq_, cq_);
    armAccept();
}

void
NbdQpipServer::armAccept()
{
    // Serve one client at a time; when a connection mates, park
    // another idle QP for the next mount (the paper's NBD server is
    // single-client too).
    acceptor_->acceptOne([this](std::shared_ptr<verbs::QueuePair> qp) {
        qp_ = std::move(qp);
        const std::size_t slot =
            nbdRequestHeaderBytes + cfg_.maxRequestBytes;
        for (std::size_t i = 0; i < slots_; ++i)
            qp_->postRecv(i, *reqMr_, i * slot, slot);
        pump();
        armAccept();
    });
}

void
NbdQpipServer::pump()
{
    if (pumping_)
        return;
    pumping_ = true;
    cq_->wait([this](verbs::Completion c) {
        pumping_ = false;
        if (!c.isSend && c.status == verbs::WcStatus::Success) {
            const std::size_t slot =
                nbdRequestHeaderBytes + cfg_.maxRequestBytes;
            const std::size_t base = c.wrId * slot;
            std::vector<std::uint8_t> msg(
                reqBuf_->begin() + static_cast<std::ptrdiff_t>(base),
                reqBuf_->begin() +
                    static_cast<std::ptrdiff_t>(base + c.byteLen));
            // Re-arm the slot right away; single-outstanding clients
            // never overrun four slots.
            qp_->postRecv(c.wrId, *reqMr_, base, slot);
            onRequest(qp_, std::move(msg));
        }
        pump();
    });
}

void
NbdQpipServer::onRequest(std::shared_ptr<verbs::QueuePair> qp,
                         std::vector<std::uint8_t> msg)
{
    NbdRequest req;
    if (!parseNbdRequest(msg, req))
        return;
    const std::size_t rep_slot =
        nbdReplyHeaderBytes + cfg_.maxRequestBytes;
    const std::size_t rep_base =
        (req.handle % slots_) * rep_slot;

    auto send_reply = [this, qp, req, rep_base](
                          std::span<const std::uint8_t> payload) {
        auto reply = serializeNbdReply(req.handle, 0, payload);
        std::copy(reply.begin(), reply.end(),
                  repBuf_->begin() +
                      static_cast<std::ptrdiff_t>(rep_base));
        qp->postSend(1000 + (req.handle % slots_), *repMr_, rep_base,
                     reply.size());
    };

    switch (req.type) {
      case NbdOp::Read:
        provider_.host().os().charge(cfg_.serverFsReadCyclesPerPage *
                                     (req.length / 4096 + 1));
        store_.read(req.offset, req.length,
                    [this, req, send_reply] {
                        std::vector<std::uint8_t> data(req.length);
                        if (cfg_.content != nullptr) {
                            std::copy_n(cfg_.content->begin() +
                                            static_cast<std::ptrdiff_t>(
                                                req.offset),
                                        req.length, data.begin());
                        } else {
                            fillPattern(req.offset, data);
                        }
                        send_reply(data);
                    });
        break;
      case NbdOp::Write: {
        provider_.host().os().charge(cfg_.serverFsWriteCyclesPerPage *
                                     (req.length / 4096 + 1));
        auto payload = std::span<const std::uint8_t>(msg).subspan(
            nbdRequestHeaderBytes);
        if (cfg_.content != nullptr && payload.size() == req.length) {
            std::copy(payload.begin(), payload.end(),
                      cfg_.content->begin() +
                          static_cast<std::ptrdiff_t>(req.offset));
        }
        store_.write(req.offset, req.length,
                     [send_reply] { send_reply({}); });
        break;
      }
      case NbdOp::Flush:
        store_.flush([send_reply] { send_reply({}); });
        break;
    }
}

// ---------------------------------------------------------------------
// Client runners
// ---------------------------------------------------------------------

namespace {

struct ClientWindow
{
    Tick t0 = 0;
    Tick busy0 = 0;
};

NbdRunResult
finishRun(const ClientWindow &w, Tick t_end, Tick busy_end,
          std::uint64_t total_bytes, bool completed, bool data_ok)
{
    NbdRunResult r;
    const Tick wall = t_end - w.t0;
    if (wall == 0)
        return r;
    const double mb = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
    r.mbPerSec = mb / sim::ticksToSec(wall);
    r.clientCpuUtil =
        host::CpuModel::utilization(busy_end - w.busy0, wall);
    const double cpu_sec = sim::ticksToSec(busy_end - w.busy0);
    r.mbPerCpuSec = cpu_sec > 0 ? mb / cpu_sec : 0.0;
    r.completed = completed;
    r.dataOk = data_ok;
    return r;
}

} // namespace
namespace {

/** Shared measurement window helpers (defined above). */

} // namespace

NbdRunResult
runNbdSocketsSequential(SocketsTestbed &bed, std::size_t client_idx,
                        std::size_t server_idx, bool is_write,
                        std::uint64_t total_bytes,
                        NbdClientParams params, std::uint16_t port)
{
    auto &sim = bed.sim();
    auto &client = bed.host(client_idx);
    auto cfg = client.stack().defaultTcpConfig();
    cfg.noDelay = true;

    auto sock = client.stack().tcpConnect(
        bed.addr(client_idx, nextClientPort()),
        bed.addr(server_idx, port), cfg, nullptr);
    sim.runUntilCondition([&] { return sock->connected(); },
                          sim.now() + runDeadline);

    ClientWindow window;
    window.t0 = sim.now();
    window.busy0 = client.cpu().busyTotal();

    // Pipelined block layer: up to params.pipelineDepth requests in
    // flight, like the kernel driver's request queue.
    struct St
    {
        std::uint64_t nextOffset = 0;
        std::uint64_t completed = 0;
        std::size_t outstanding = 0;
        std::uint64_t handle = 1;
        std::unordered_map<std::uint64_t,
                           std::pair<std::uint64_t, std::uint32_t>>
            reqs;
        bool senderActive = false;
        bool done = false;
        bool dataOk = true;
        sim::Tick tEnd = 0;
    };
    auto st = std::make_shared<St>();

    const sim::Cycles fs_per_req =
        params.fsCyclesPerPage *
        (params.requestBytes / params.fsPageBytes);

    auto sender = std::make_shared<std::function<void()>>();
    auto reader = std::make_shared<std::function<void()>>();
    auto finish_write = std::make_shared<std::function<void()>>();

    *sender = [&sim, &client, sock, st, sender, total_bytes, is_write,
               params, fs_per_req] {
        if (st->senderActive || st->done)
            return;
        if (st->nextOffset >= total_bytes ||
            st->outstanding >= params.pipelineDepth) {
            return;
        }
        st->senderActive = true;
        const auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(params.requestBytes,
                                    total_bytes - st->nextOffset));
        NbdRequest req;
        req.type = is_write ? NbdOp::Write : NbdOp::Read;
        req.handle = st->handle++;
        req.offset = st->nextOffset;
        req.length = len;
        st->reqs[req.handle] = {req.offset, len};
        st->nextOffset += len;
        ++st->outstanding;

        // Filesystem / block-layer work above the NBD driver.
        client.os().defer(fs_per_req, [sock, st, sender, req,
                                       is_write, len] {
            std::vector<std::uint8_t> wire;
            if (is_write) {
                std::vector<std::uint8_t> payload(len);
                fillPattern(req.offset, payload);
                wire = serializeNbdRequest(req, payload);
            } else {
                wire = serializeNbdRequest(req);
            }
            sock->sendAll(std::move(wire), [st, sender] {
                st->senderActive = false;
                (*sender)();
            });
        });
    };

    *reader = [&sim, sock, st, sender, reader, finish_write,
               total_bytes, is_write, params] {
        sock->recvExact(
            nbdReplyHeaderBytes,
            [&sim, sock, st, sender, reader, finish_write,
             total_bytes, is_write, params](std::vector<std::uint8_t> h) {
                std::uint64_t handle = 0;
                std::uint32_t err = 0;
                if (!parseNbdReply(h, handle, err) || err != 0) {
                    st->dataOk = st->dataOk && h.empty() == false;
                    st->done = true;
                    return;
                }
                const auto [req_off, len] = st->reqs[handle];
                st->reqs.erase(handle);
                auto complete = [&sim, st, sender, reader,
                                 finish_write, total_bytes,
                                 is_write](std::uint32_t n) {
                    --st->outstanding;
                    st->completed += n;
                    if (st->completed >= total_bytes) {
                        if (is_write)
                            (*finish_write)();
                        else {
                            st->tEnd = sim.now();
                            st->done = true;
                        }
                        return;
                    }
                    (*sender)();
                    (*reader)();
                };
                if (is_write) {
                    complete(len);
                } else {
                    sock->recvExact(
                        len,
                        [st, len, req_off, complete,
                         params](std::vector<std::uint8_t> d) {
                            if (d.size() < len) {
                                st->dataOk = false;
                                st->done = true;
                                return;
                            }
                            if (params.verifyContent) {
                                for (std::size_t i = 0; i < len; ++i) {
                                    if (d[i] !=
                                        patternByte(req_off + i)) {
                                        st->dataOk = false;
                                        break;
                                    }
                                }
                            }
                            complete(len);
                        });
                }
            });
    };

    *finish_write = [&sim, sock, st] {
        // 'sync': flush the server's dirty buffer to disk.
        NbdRequest req;
        req.type = NbdOp::Flush;
        req.handle = 0xffff;
        sock->sendAll(serializeNbdRequest(req), [] {});
        sock->recvExact(nbdReplyHeaderBytes,
                        [&sim, st](std::vector<std::uint8_t>) {
                            st->tEnd = sim.now();
                            st->done = true;
                        });
    };

    (*sender)();
    (*reader)();

    const bool ok = sim.runUntilCondition([&] { return st->done; },
                                          sim.now() + runDeadline);
    return finishRun(window, st->tEnd, client.cpu().busyTotal(),
                     total_bytes, ok && st->done, st->dataOk);
}

NbdRunResult
runNbdQpipSequential(QpipTestbed &bed, std::size_t client_idx,
                     std::size_t server_idx, bool is_write,
                     std::uint64_t total_bytes, NbdClientParams params,
                     std::uint16_t port)
{
    auto &sim = bed.sim();
    auto &client = bed.host(client_idx);
    auto &prov = bed.provider(client_idx);

    const std::size_t depth = params.pipelineDepth;
    auto cq = prov.createCq(4096);
    const std::size_t req_slot =
        nbdRequestHeaderBytes + params.requestBytes;
    const std::size_t rep_slot =
        nbdReplyHeaderBytes + params.requestBytes;
    auto req_buf = std::make_shared<std::vector<std::uint8_t>>(
        req_slot * depth);
    auto rep_buf = std::make_shared<std::vector<std::uint8_t>>(
        rep_slot * depth);
    auto req_mr = prov.registerMemory(*req_buf);
    auto rep_mr = prov.registerMemory(*rep_buf);
    auto qp = prov.createQp(nic::QpType::ReliableTcp, cq, cq,
                            depth * 2 + 8, depth + 4);

    auto connected = std::make_shared<bool>(false);
    qp->connect(bed.addr(server_idx, port),
                [connected](bool ok) { *connected = ok; });
    sim.runUntilCondition([&] { return *connected; },
                          sim.now() + runDeadline);

    ClientWindow window;
    window.t0 = sim.now();
    window.busy0 = client.cpu().busyTotal();

    struct St
    {
        std::uint64_t nextOffset = 0;
        std::uint64_t completed = 0;
        std::size_t outstanding = 0;
        std::uint64_t handle = 1;
        std::unordered_map<std::uint64_t, std::uint32_t> lens;
        bool done = false;
        bool flushing = false;
        bool dataOk = true;
        sim::Tick tEnd = 0;
    };
    auto st = std::make_shared<St>();

    const sim::Cycles fs_per_req =
        params.fsCyclesPerPage *
        (params.requestBytes / params.fsPageBytes);

    // Issue requests into pipeline slots (handle % depth).
    auto issue = std::make_shared<std::function<void()>>();
    *issue = [&client, qp, req_mr, rep_mr, req_buf, st, total_bytes,
              is_write, params, fs_per_req, req_slot, rep_slot,
              depth] {
        while (!st->done && st->nextOffset < total_bytes &&
               st->outstanding < depth) {
            const auto len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(params.requestBytes,
                                        total_bytes - st->nextOffset));
            NbdRequest req;
            req.type = is_write ? NbdOp::Write : NbdOp::Read;
            req.handle = st->handle++;
            req.offset = st->nextOffset;
            req.length = len;
            st->nextOffset += len;
            st->lens[req.handle] = len;
            ++st->outstanding;
            const std::size_t slot = req.handle % depth;

            client.os().defer(
                fs_per_req,
                [qp, req_mr, rep_mr, req_buf, req, is_write, len,
                 slot, req_slot, rep_slot] {
                    std::vector<std::uint8_t> msg;
                    if (is_write) {
                        std::vector<std::uint8_t> payload(len);
                        fillPattern(req.offset, payload);
                        msg = serializeNbdRequest(req, payload);
                    } else {
                        msg = serializeNbdRequest(req);
                    }
                    std::copy(msg.begin(), msg.end(),
                              req_buf->begin() +
                                  static_cast<std::ptrdiff_t>(
                                      slot * req_slot));
                    qp->postRecv(slot, *rep_mr, slot * rep_slot,
                                 rep_slot);
                    qp->postSend(100 + slot, *req_mr,
                                 slot * req_slot, msg.size());
                });
        }
    };

    auto start_flush = [qp, req_mr, rep_mr, req_buf, st, req_slot,
                        rep_slot] {
        st->flushing = true;
        NbdRequest req;
        req.type = NbdOp::Flush;
        req.handle = 0xffff;
        auto msg = serializeNbdRequest(req);
        std::copy(msg.begin(), msg.end(), req_buf->begin());
        qp->postRecv(0, *rep_mr, 0, rep_slot);
        qp->postSend(100, *req_mr, 0, msg.size());
    };

    // Completion pump: the kernel NBD driver blocks on CQ events.
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [&sim, cq, rep_buf, st, issue, pump, total_bytes,
             is_write, rep_slot, start_flush, depth] {
        cq->wait([&sim, cq, rep_buf, st, issue, pump, total_bytes,
                  is_write, rep_slot, start_flush,
                  depth](verbs::Completion c) {
            if (!c.isSend && c.status == verbs::WcStatus::Success) {
                if (st->flushing) {
                    st->tEnd = sim.now();
                    st->done = true;
                    return;
                }
                const std::size_t base =
                    static_cast<std::size_t>(c.wrId) * rep_slot;
                std::uint64_t handle = 0;
                std::uint32_t err = 0;
                std::span<const std::uint8_t> rep(
                    rep_buf->data() + base, c.byteLen);
                if (!parseNbdReply(rep, handle, err) || err != 0) {
                    st->dataOk = false;
                } else {
                    auto it = st->lens.find(handle);
                    if (it != st->lens.end()) {
                        st->completed += it->second;
                        st->lens.erase(it);
                    }
                }
                --st->outstanding;
                (*issue)();
                if (st->completed >= total_bytes &&
                    st->outstanding == 0) {
                    if (is_write) {
                        start_flush();
                    } else {
                        st->tEnd = sim.now();
                        st->done = true;
                        return;
                    }
                }
            }
            if (!st->done)
                (*pump)();
        });
    };

    (*issue)();
    (*pump)();

    const bool ok = sim.runUntilCondition([&] { return st->done; },
                                          sim.now() + runDeadline);
    return finishRun(window, st->tEnd, client.cpu().busyTotal(),
                     total_bytes, ok && st->done, st->dataOk);
}

} // namespace qpip::apps
