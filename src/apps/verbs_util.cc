#include "apps/verbs_util.hh"

#include "sim/simulation.hh"

namespace qpip::apps {

void
spinPoll(verbs::Provider &prov, verbs::CompletionQueue &cq,
         std::function<void(verbs::Completion)> cb)
{
    verbs::Completion c;
    if (cq.poll(c)) {
        cb(c);
        return;
    }
    // The empty poll charged the CPU; retry the moment it frees.
    auto &os = prov.host().os();
    const sim::Tick next = prov.host().cpu().busyUntil();
    // Schedule through the OS SimObject so the retry lands on the
    // host's partition queue under the parallel engine.
    // qpip-lint: ref-capture-ok(prov and cq are caller-owned and outlive the spin loop by the verbs contract)
    os.schedule(next, [&prov, &cq, cb = std::move(cb)]() mutable {
        spinPoll(prov, cq, std::move(cb));
    });
}

void
spinLoop(verbs::Provider &prov, verbs::CompletionQueue &cq,
         std::function<void(verbs::Completion)> cb)
{
    spinPoll(prov, cq, [&prov, &cq, cb](verbs::Completion c) {
        cb(c);
        spinLoop(prov, cq, std::move(cb));
    });
}

void
waitLoop(verbs::CompletionQueue &cq,
         std::function<void(verbs::Completion)> cb)
{
    cq.wait([&cq, cb](verbs::Completion c) {
        cb(c);
        waitLoop(cq, std::move(cb));
    });
}

void
periodicReaper(verbs::Provider &prov, sim::Tick interval,
               std::function<bool()> drain)
{
    if (!drain())
        return;
    auto &os = prov.host().os();
    os.scheduleIn(
        // qpip-lint: ref-capture-ok(prov is caller-owned and outlives the reaper loop by the verbs contract)
        interval, [&prov, interval, drain = std::move(drain)]() mutable {
            periodicReaper(prov, interval, std::move(drain));
        });
}

} // namespace qpip::apps
