/**
 * @file
 * The ttcp-style throughput benchmark (Figure 4): a bulk transfer in
 * fixed-size chunks with TCP_NODELAY, reporting sustained MB/s and
 * the CPU utilization of both ends. QPIP mode posts 16 KB messages
 * through a deep WR pipeline and reaps completions with a periodic
 * poll, so the host does almost no work.
 */

#pragma once

#include <vector>

#include "apps/testbed.hh"

namespace qpip::apps {

/** Result of one ttcp run. */
struct TtcpResult
{
    double mbPerSec = 0.0;
    double txCpuUtil = 0.0;
    double rxCpuUtil = 0.0;
    double elapsedMs = 0.0;
    bool completed = false;
};

/** Bulk TCP transfer over the sockets stack, host 0 -> host 1. */
TtcpResult runSocketsTtcp(SocketsTestbed &bed, std::size_t total_bytes,
                          std::size_t chunk_bytes = 16384);

/**
 * Bulk reliable-QP transfer over QPIP, host 0 -> host 1.
 * @param pipeline_depth outstanding WRs kept posted on each side.
 * @param poll_interval completion-reaper period.
 */
TtcpResult runQpipTtcp(QpipTestbed &bed, std::size_t total_bytes,
                       std::size_t chunk_bytes = 16384,
                       std::size_t pipeline_depth = 64,
                       sim::Tick poll_interval = 200 * sim::oneUs);

/** One directed transfer of a multi-pair run. */
struct TtcpPair
{
    std::size_t src = 0;
    std::size_t dst = 1;
};

/** Result of a multi-pair run. */
struct MultiTtcpResult
{
    /** Sum of all pairs' payload over the common elapsed window. */
    double aggMbPerSec = 0.0;
    double elapsedMs = 0.0;
    std::size_t pairsCompleted = 0;
    bool completed = false;
};

/** Every ordered pair (i, j), i != j, over @p n_hosts hosts. */
std::vector<TtcpPair> allPairs(std::size_t n_hosts);

/**
 * All-to-all traffic as @p n_shifts shift permutations: for shift s in
 * [1, n_shifts], every host i sends to (i + s) mod n. With
 * n_shifts = n-1 this is the full all-to-all (== allPairs reordered);
 * smaller values sample it while still loading every host's NIC in
 * both directions — the tractable datacenter-scale sweep workload.
 * @pre n_shifts < n_hosts.
 */
std::vector<TtcpPair> uniformShiftPairs(std::size_t n_hosts,
                                        std::size_t n_shifts);

/**
 * Incast: every host except @p dst sends to @p dst, the classic
 * fan-in burst that congests the destination's last-hop link.
 */
std::vector<TtcpPair> incastPairs(std::size_t n_hosts,
                                  std::size_t dst);

/**
 * Run concurrent bulk TCP transfers for every pair in @p pairs
 * (pair k listens on port 5001+k and connects from port 30000+k).
 * The scale-out ttcp workload: with a multi-switch fabric and a
 * parallel-enabled testbed this is the engine's headline sweep, and
 * it runs identically — including bit-identical stats — in serial
 * mode.
 */
MultiTtcpResult
runSocketsTtcpPairs(SocketsTestbed &bed,
                    const std::vector<TtcpPair> &pairs,
                    std::size_t bytes_per_pair,
                    std::size_t chunk_bytes = 16384);

} // namespace qpip::apps
