#include "apps/pingpong.hh"

#include "apps/verbs_util.hh"
#include "sim/logging.hh"

namespace qpip::apps {

using host::TcpSocket;
using host::UdpSocket;
using sim::Tick;

namespace {

constexpr Tick runDeadline = 120 * sim::oneSec;
constexpr std::uint16_t serverPort = 7; // echo

/** Shared measurement state for one run. */
struct PingState
{
    std::size_t iterations = 0;
    std::size_t warmup = 0;
    std::size_t msgBytes = 1;
    std::size_t done = 0;
    Tick t0 = 0;
    sim::SampleStat rtt;
    bool finished = false;

    void
    sample(Tick now)
    {
        if (done >= warmup)
            rtt.sample(sim::ticksToUs(now - t0));
        ++done;
        if (done >= iterations + warmup)
            finished = true;
    }
};

PingPongResult
collect(const PingState &st)
{
    PingPongResult r;
    r.rttUs = st.rtt.mean();
    r.iterations = st.rtt.count();
    r.completed = st.finished;
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Sockets / TCP
// ---------------------------------------------------------------------

PingPongResult
runSocketTcpPingPong(SocketsTestbed &bed, std::size_t iterations,
                     std::size_t msg_bytes, std::size_t warmup)
{
    auto st = std::make_shared<PingState>();
    st->iterations = iterations;
    st->warmup = warmup;
    st->msgBytes = msg_bytes;

    auto cfg = bed.tcpConfig();
    cfg.noDelay = true;

    auto &server = bed.host(1).stack();
    auto &client = bed.host(0).stack();

    // Server: echo every message back.
    auto echo = std::make_shared<
        std::function<void(std::shared_ptr<TcpSocket>)>>();
    *echo = [st, echo](std::shared_ptr<TcpSocket> sock) {
        sock->recvExact(st->msgBytes,
                        [st, echo, sock](std::vector<std::uint8_t> d) {
                            if (d.size() < st->msgBytes)
                                return; // EOF
                            sock->sendAll(std::move(d), [st, echo, sock] {
                                (*echo)(sock);
                            });
                        });
    };
    server.tcpListen(serverPort, cfg,
                     [echo](std::shared_ptr<TcpSocket> sock) {
                         (*echo)(sock);
                     });

    // Client: timed request/response loop.
    auto &sim = bed.sim();
    auto iterate = std::make_shared<
        std::function<void(std::shared_ptr<TcpSocket>)>>();
    *iterate = [st, iterate, &sim](std::shared_ptr<TcpSocket> sock) {
        if (st->finished)
            return;
        st->t0 = sim.now();
        std::vector<std::uint8_t> msg(st->msgBytes, 0x5a);
        sock->sendAll(std::move(msg), [] {});
        sock->recvExact(st->msgBytes,
                        [st, iterate, &sim,
                         sock](std::vector<std::uint8_t> d) {
                            if (d.size() < st->msgBytes)
                                return;
                            st->sample(sim.now());
                            if (!st->finished)
                                (*iterate)(sock);
                        });
    };

    auto sock = client.tcpConnect(
        bed.addr(0, 30001), bed.addr(1, serverPort), cfg, nullptr);
    // Kick the loop once connected.
    sim.runUntilCondition([&] { return sock->connected(); },
                          sim.now() + runDeadline);
    (*iterate)(sock);
    sim.runUntilCondition([&] { return st->finished; },
                          sim.now() + runDeadline);
    return collect(*st);
}

// ---------------------------------------------------------------------
// Sockets / UDP
// ---------------------------------------------------------------------

PingPongResult
runSocketUdpPingPong(SocketsTestbed &bed, std::size_t iterations,
                     std::size_t msg_bytes, std::size_t warmup)
{
    auto st = std::make_shared<PingState>();
    st->iterations = iterations;
    st->warmup = warmup;
    st->msgBytes = msg_bytes;

    auto srv = bed.host(1).stack().udpBind(bed.addr(1, serverPort));
    auto cli = bed.host(0).stack().udpBind(bed.addr(0, 30001));

    auto echo = std::make_shared<std::function<void()>>();
    *echo = [srv, echo] {
        srv->recvFrom([srv, echo](UdpSocket::Datagram d) {
            srv->sendTo(std::move(d.data), d.from, nullptr);
            (*echo)();
        });
    };
    (*echo)();

    auto &sim = bed.sim();
    const auto server_addr = bed.addr(1, serverPort);
    auto iterate = std::make_shared<std::function<void()>>();
    *iterate = [st, iterate, cli, server_addr, &sim] {
        if (st->finished)
            return;
        st->t0 = sim.now();
        cli->sendTo(std::vector<std::uint8_t>(st->msgBytes, 0xa5),
                    server_addr, nullptr);
        cli->recvFrom([st, iterate, &sim](UdpSocket::Datagram) {
            st->sample(sim.now());
            if (!st->finished)
                (*iterate)();
        });
    };
    (*iterate)();

    sim.runUntilCondition([&] { return st->finished; },
                          sim.now() + runDeadline);
    return collect(*st);
}

// ---------------------------------------------------------------------
// QPIP / reliable (TCP) QPs
// ---------------------------------------------------------------------

PingPongResult
runQpipTcpPingPong(QpipTestbed &bed, std::size_t iterations,
                   std::size_t msg_bytes, std::size_t warmup)
{
    auto st = std::make_shared<PingState>();
    st->iterations = iterations;
    st->warmup = warmup;
    st->msgBytes = msg_bytes;

    auto &sim = bed.sim();
    auto &prov_s = bed.provider(1);
    auto &prov_c = bed.provider(0);

    // --- server ------------------------------------------------------
    auto cq_s = prov_s.createCq();
    auto buf_s =
        std::make_shared<std::vector<std::uint8_t>>(msg_bytes, 0);
    auto mr_s = prov_s.registerMemory(*buf_s);
    auto acceptor = std::make_shared<verbs::Acceptor>(
        prov_s, serverPort, cq_s, cq_s);

    auto server_loop = std::make_shared<
        std::function<void(std::shared_ptr<verbs::QueuePair>)>>();
    *server_loop = [st, server_loop, &prov_s, cq_s, mr_s,
                    buf_s](std::shared_ptr<verbs::QueuePair> qp) {
        spinPoll(prov_s, *cq_s,
                 [st, server_loop, qp, mr_s](verbs::Completion c) {
                     if (!c.isSend) {
                         // Echo and re-arm the receive after the echo
                         // is on the wire.
                         qp->postSend(2, *mr_s, 0, st->msgBytes);
                     } else {
                         qp->postRecv(1, *mr_s, 0, st->msgBytes);
                     }
                     (*server_loop)(qp);
                 });
    };
    acceptor->acceptOne(
        [st, server_loop, mr_s](std::shared_ptr<verbs::QueuePair> qp) {
            qp->postRecv(1, *mr_s, 0, st->msgBytes);
            (*server_loop)(qp);
        });

    // --- client ------------------------------------------------------
    auto cq_c = prov_c.createCq();
    auto buf_c =
        std::make_shared<std::vector<std::uint8_t>>(msg_bytes, 0x5a);
    auto mr_c = prov_c.registerMemory(*buf_c);
    auto qp_c = prov_c.createQp(nic::QpType::ReliableTcp, cq_c, cq_c);

    auto iterate = std::make_shared<std::function<void()>>();
    auto await_reply = std::make_shared<std::function<void()>>();
    *await_reply = [st, await_reply, iterate, &prov_c, cq_c, qp_c,
                    mr_c, &sim] {
        spinPoll(prov_c, *cq_c,
                 [st, await_reply, iterate, &sim,
                  mr_c](verbs::Completion c) {
                     if (c.isSend) {
                         (*await_reply)();
                         return;
                     }
                     st->sample(sim.now());
                     if (!st->finished)
                         (*iterate)();
                 });
    };
    *iterate = [st, await_reply, qp_c, mr_c, &sim] {
        qp_c->postRecv(1, *mr_c, 0, st->msgBytes);
        st->t0 = sim.now();
        qp_c->postSend(2, *mr_c, 0, st->msgBytes);
        (*await_reply)();
    };

    qp_c->connect(bed.addr(1, serverPort), [iterate](bool ok) {
        if (ok)
            (*iterate)();
    });

    sim.runUntilCondition([&] { return st->finished; },
                          sim.now() + runDeadline);
    return collect(*st);
}

// ---------------------------------------------------------------------
// QPIP / unreliable (UDP) QPs
// ---------------------------------------------------------------------

PingPongResult
runQpipUdpPingPong(QpipTestbed &bed, std::size_t iterations,
                   std::size_t msg_bytes, std::size_t warmup)
{
    auto st = std::make_shared<PingState>();
    st->iterations = iterations;
    st->warmup = warmup;
    st->msgBytes = msg_bytes;

    auto &sim = bed.sim();
    auto &prov_s = bed.provider(1);
    auto &prov_c = bed.provider(0);

    // --- server ------------------------------------------------------
    auto cq_s = prov_s.createCq();
    auto buf_s =
        std::make_shared<std::vector<std::uint8_t>>(msg_bytes, 0);
    auto mr_s = prov_s.registerMemory(*buf_s);
    auto qp_s = prov_s.createQp(nic::QpType::UnreliableUdp, cq_s, cq_s);
    qp_s->bind(serverPort);
    qp_s->postRecv(1, *mr_s, 0, msg_bytes);

    auto server_loop = std::make_shared<std::function<void()>>();
    *server_loop = [st, server_loop, &prov_s, cq_s, qp_s, mr_s] {
        spinPoll(prov_s, *cq_s,
                 [st, server_loop, qp_s, mr_s](verbs::Completion c) {
                     if (!c.isSend) {
                         qp_s->postSend(2, *mr_s, 0, st->msgBytes,
                                        c.from);
                         qp_s->postRecv(1, *mr_s, 0, st->msgBytes);
                     }
                     (*server_loop)();
                 });
    };
    (*server_loop)();

    // --- client ------------------------------------------------------
    auto cq_c = prov_c.createCq();
    auto buf_c =
        std::make_shared<std::vector<std::uint8_t>>(msg_bytes, 0xa5);
    auto mr_c = prov_c.registerMemory(*buf_c);
    auto qp_c = prov_c.createQp(nic::QpType::UnreliableUdp, cq_c, cq_c);
    qp_c->bind(30001);

    const auto server_addr = bed.addr(1, serverPort);
    auto iterate = std::make_shared<std::function<void()>>();
    auto await_reply = std::make_shared<std::function<void()>>();
    *await_reply = [st, await_reply, iterate, &prov_c, cq_c, &sim] {
        spinPoll(prov_c, *cq_c,
                 [st, await_reply, iterate, &sim](verbs::Completion c) {
                     if (c.isSend) {
                         (*await_reply)();
                         return;
                     }
                     st->sample(sim.now());
                     if (!st->finished)
                         (*iterate)();
                 });
    };
    *iterate = [st, await_reply, qp_c, mr_c, server_addr, &sim] {
        qp_c->postRecv(1, *mr_c, 0, st->msgBytes);
        st->t0 = sim.now();
        qp_c->postSend(2, *mr_c, 0, st->msgBytes, server_addr);
        (*await_reply)();
    };
    (*iterate)();

    sim.runUntilCondition([&] { return st->finished; },
                          sim.now() + runDeadline);
    return collect(*st);
}

} // namespace qpip::apps
