/**
 * @file
 * Storage substrate for the Network Block Device experiment: a
 * rotational disk model (seek + rotational + media rate, with
 * sequential-access detection) and the server-side store that fronts
 * it with a RAM cache and bounded write-behind, like the user-level
 * NBD server sitting on a 2001-era filesystem.
 */

#pragma once

#include <deque>
#include <functional>

#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace qpip::apps {

/** Rotational disk parameters (roughly a 10k RPM SCSI disk). */
struct DiskParams
{
    double bytesPerSec = 50e6;
    sim::Tick seekTime = 5 * sim::oneMs;
    sim::Tick rotationalDelay = 2 * sim::oneMs;
};

/**
 * A serialized disk with sequential detection.
 */
class DiskModel : public sim::SimObject
{
  public:
    DiskModel(sim::Simulation &sim, std::string name,
              DiskParams params = DiskParams{});

    /**
     * Access [offset, offset+len); @p done runs at completion.
     * Back-to-back sequential accesses skip the positioning time.
     */
    void access(std::uint64_t offset, std::size_t len,
                std::function<void()> done);

    sim::Tick busyUntil() const { return busyUntil_; }

    sim::Counter accesses;
    sim::Counter seeks;

  private:
    DiskParams params_;
    sim::Tick busyUntil_ = 0;
    std::uint64_t nextSequential_ = ~std::uint64_t(0);
};

/**
 * The NBD server's backing store: RAM cache over the disk, with a
 * bounded dirty buffer drained by the disk (write-behind). A read
 * hits the cache when the block was written this run or preloaded;
 * writes complete into the dirty buffer and block only when it fills.
 */
class ServerStore : public sim::SimObject
{
  public:
    ServerStore(sim::Simulation &sim, std::string name,
                std::uint64_t device_bytes,
                DiskParams disk = DiskParams{},
                std::size_t dirty_cap = 64 * 1024 * 1024);

    std::uint64_t deviceBytes() const { return deviceBytes_; }

    /** Mark the whole device resident in the server's page cache. */
    void preloadCache() { cachedUpTo_ = deviceBytes_; }

    /** Read [offset, offset+len); done(cache_hit) at completion. */
    void read(std::uint64_t offset, std::size_t len,
              std::function<void()> done);

    /** Write; done fires when the data is accepted (buffered). */
    void write(std::uint64_t offset, std::size_t len,
               std::function<void()> done);

    /** Flush the dirty buffer ('sync'); done when drained. */
    void flush(std::function<void()> done);

    sim::Counter cacheHits;
    sim::Counter cacheMisses;

  private:
    void drain();
    void serveWaiters();

    std::uint64_t deviceBytes_;
    DiskModel disk_;
    std::size_t dirtyCap_;
    std::size_t dirtyBytes_ = 0;
    bool draining_ = false;
    /** Sequential cache watermark: [0, cachedUpTo_) is resident. */
    std::uint64_t cachedUpTo_ = 0;
    std::deque<std::pair<std::size_t, std::function<void()>>>
        writeWaiters_;
    std::deque<std::function<void()>> flushWaiters_;
    /** Pending dirty extents to push to disk. */
    std::deque<std::pair<std::uint64_t, std::size_t>> dirtyQueue_;
};

} // namespace qpip::apps
