/**
 * @file
 * Canned experiment fabrics. Every benchmark and integration test in
 * the paper runs on a two-or-more-node star; these builders wire up
 * the three systems under test:
 *
 *  - SocketsTestbed + gigE      -> the IP/GigE baseline
 *  - SocketsTestbed + myrinetIp -> the IP/Myrinet (GM link) baseline
 *  - QpipTestbed                -> the QPIP prototype
 *
 * Hosts get addresses 10.0.0.<i+1> (v4 baselines) or fd00::<i+1>
 * (QPIP's IPv6), with routes and fabric addresses installed both
 * ways.
 */

#pragma once

#include <memory>
#include <vector>

#include "host/host.hh"
#include "net/topology.hh"
#include "nic/eth_nic.hh"
#include "nic/qpip_nic.hh"
#include "qpip/qpip.hh"
#include "sim/parallel_engine.hh"
#include "sim/simulation.hh"

namespace qpip::apps {

/** Which baseline fabric a sockets testbed models. */
enum class SocketsFabric { GigabitEthernet, MyrinetIp };

/**
 * Which fabric shape wires the hosts together. FatTree picks its
 * radix from the host count; FatTreeK8/FatTreeK16 fix the switch
 * radix (8/16 ports) the way a real datacenter part would, scaling
 * edge count with hosts — k=8 carries up to 128 hosts at 4 hosts per
 * edge switch, k=16 up to 1024 at 8.
 */
enum class FabricTopology { Star, DualStar, FatTree, FatTreeK8,
                            FatTreeK16 };

/** Address family a testbed assigns to its nodes. */
enum class IpFamily { V4, V6 };

/**
 * The QPIP prototype's "native" link MTU: a 16 KB message-segment
 * plus TCP/IPv6 headers rides unfragmented (Myrinet supports
 * arbitrary MTUs).
 */
constexpr std::uint32_t qpipNativeMtu = 16384 + 128;

/**
 * N hosts with the host-resident stack over a conventional NIC.
 */
class SocketsTestbed
{
  public:
    SocketsTestbed(std::size_t n_hosts, SocketsFabric fabric_kind,
                   std::uint64_t seed = 1,
                   host::HostCostModel costs = host::HostCostModel{},
                   FabricTopology topology = FabricTopology::Star);
    ~SocketsTestbed();

    sim::Simulation &sim() { return sim_; }
    host::Host &host(std::size_t i) { return *hosts_.at(i); }
    nic::EthNic &nicOf(std::size_t i) { return *nics_.at(i); }
    net::Fabric &fabric() { return *fabric_; }
    std::size_t numHosts() const { return hosts_.size(); }

    /**
     * Shard the testbed across a parallel engine: one partition per
     * host (host + NIC + the sending side of its spoke), one per
     * switch, with the fabric's minimum propagation delay as the
     * conservative lookahead. Call once, after construction and
     * before the first run. threads=1 runs the identical partitioned
     * schedule on one thread — the bit-identity baseline.
     */
    void enableParallel(int threads);
    sim::ParallelEngine *engine() { return engine_.get(); }

    /** The v4 address of host @p i with @p port. */
    inet::SockAddr addr(std::size_t i, std::uint16_t port) const;

    /** MTU-derived TCP config for this fabric. */
    inet::TcpConfig tcpConfig() const;

  private:
    sim::Simulation sim_;
    /**
     * Declared before the model objects: the engine owns the
     * partition event queues, which must outlive every host/NIC
     * holding event handles into them. The destructor parks the
     * worker pool before any model teardown begins.
     */
    std::unique_ptr<sim::ParallelEngine> engine_;
    std::unique_ptr<net::Fabric> fabric_;
    std::vector<std::unique_ptr<host::Host>> hosts_;
    std::vector<std::unique_ptr<nic::EthNic>> nics_;
};

/**
 * N hosts with QPIP NICs on a Myrinet fabric.
 */
class QpipTestbed
{
  public:
    QpipTestbed(std::size_t n_hosts, std::uint32_t mtu = qpipNativeMtu,
                std::uint64_t seed = 1,
                nic::QpipNicParams nic_params = nic::QpipNicParams{},
                host::HostCostModel costs = host::HostCostModel{},
                IpFamily family = IpFamily::V6,
                FabricTopology topology = FabricTopology::Star);

    /**
     * Heterogeneous variant: one QpipNicParams per host (size must
     * equal @p n_hosts). Lets an experiment pin, say, a tiny context
     * cache on the system under test while its load generator runs
     * uncontended.
     */
    QpipTestbed(std::size_t n_hosts, std::uint32_t mtu,
                std::uint64_t seed,
                std::vector<nic::QpipNicParams> nic_params,
                host::HostCostModel costs = host::HostCostModel{},
                IpFamily family = IpFamily::V6,
                FabricTopology topology = FabricTopology::Star);
    ~QpipTestbed();

    sim::Simulation &sim() { return sim_; }
    host::Host &host(std::size_t i) { return *hosts_.at(i); }
    nic::QpipNic &nicOf(std::size_t i) { return *nics_.at(i); }
    verbs::Provider &provider(std::size_t i)
    {
        return *providers_.at(i);
    }
    net::Fabric &fabric() { return *fabric_; }
    std::size_t numHosts() const { return hosts_.size(); }

    /** See SocketsTestbed::enableParallel. */
    void enableParallel(int threads);
    sim::ParallelEngine *engine() { return engine_.get(); }

    /** The fabric address of host @p i with @p port. */
    inet::SockAddr addr(std::size_t i, std::uint16_t port) const;

  private:
    sim::Simulation sim_;
    IpFamily family_;
    /** See SocketsTestbed: destroyed after the model it schedules. */
    std::unique_ptr<sim::ParallelEngine> engine_;
    std::unique_ptr<net::Fabric> fabric_;
    std::vector<std::unique_ptr<host::Host>> hosts_;
    std::vector<std::unique_ptr<nic::QpipNic>> nics_;
    std::vector<std::unique_ptr<verbs::Provider>> providers_;
};

} // namespace qpip::apps
