#include "apps/ttcp.hh"

#include "apps/verbs_util.hh"
#include "sim/logging.hh"

namespace qpip::apps {

using host::TcpSocket;
using sim::Tick;

namespace {

constexpr std::uint16_t ttcpPort = 5001;
constexpr Tick runDeadline = 600 * sim::oneSec;

struct Window
{
    Tick t0 = 0;
    Tick busyTx0 = 0;
    Tick busyRx0 = 0;
};

TtcpResult
finish(const Window &w, sim::Tick t_end, Tick busy_tx, Tick busy_rx,
       std::size_t total_bytes, bool completed)
{
    TtcpResult r;
    const Tick wall = t_end - w.t0;
    if (wall == 0)
        return r;
    r.mbPerSec = static_cast<double>(total_bytes) /
                 (1024.0 * 1024.0) / sim::ticksToSec(wall);
    r.txCpuUtil =
        host::CpuModel::utilization(busy_tx - w.busyTx0, wall);
    r.rxCpuUtil =
        host::CpuModel::utilization(busy_rx - w.busyRx0, wall);
    r.elapsedMs = sim::ticksToSec(wall) * 1e3;
    r.completed = completed;
    return r;
}

} // namespace

TtcpResult
runSocketsTtcp(SocketsTestbed &bed, std::size_t total_bytes,
               std::size_t chunk_bytes)
{
    auto &sim = bed.sim();
    auto cfg = bed.tcpConfig();
    cfg.noDelay = true; // ttcp -D

    auto received = std::make_shared<std::size_t>(0);
    auto done = std::make_shared<bool>(false);
    auto t_end = std::make_shared<Tick>(0);

    // Receiver: drain until the expected byte count arrives.
    auto drain = std::make_shared<
        std::function<void(std::shared_ptr<TcpSocket>)>>();
    *drain = [received, done, t_end, total_bytes, &sim,
              drain](std::shared_ptr<TcpSocket> sock) {
        sock->recv(262144, [received, done, t_end, total_bytes, &sim,
                            drain, sock](std::vector<std::uint8_t> d) {
            if (d.empty())
                return; // EOF
            *received += d.size();
            if (*received >= total_bytes) {
                *t_end = sim.now();
                *done = true;
                return;
            }
            (*drain)(sock);
        });
    };
    bed.host(1).stack().tcpListen(
        ttcpPort, cfg,
        [drain](std::shared_ptr<TcpSocket> sock) { (*drain)(sock); });

    // Sender.
    auto window = std::make_shared<Window>();
    auto sock = bed.host(0).stack().tcpConnect(
        bed.addr(0, 30002), bed.addr(1, ttcpPort), cfg, nullptr);

    sim.runUntilCondition([&] { return sock->connected(); },
                          sim.now() + runDeadline);
    window->t0 = sim.now();
    window->busyTx0 = bed.host(0).cpu().busyTotal();
    window->busyRx0 = bed.host(1).cpu().busyTotal();

    auto sent = std::make_shared<std::size_t>(0);
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [sock, sent, total_bytes, chunk_bytes, pump] {
        if (*sent >= total_bytes)
            return;
        const std::size_t n =
            std::min(chunk_bytes, total_bytes - *sent);
        *sent += n;
        sock->sendAll(std::vector<std::uint8_t>(n, 0xcd),
                      [pump] { (*pump)(); });
    };
    (*pump)();

    const bool ok = sim.runUntilCondition([&] { return *done; },
                                          sim.now() + runDeadline);
    return finish(*window, *t_end, bed.host(0).cpu().busyTotal(),
                  bed.host(1).cpu().busyTotal(), total_bytes, ok);
}

TtcpResult
runQpipTtcp(QpipTestbed &bed, std::size_t total_bytes,
            std::size_t chunk_bytes, std::size_t pipeline_depth,
            sim::Tick poll_interval)
{
    auto &sim = bed.sim();
    auto &prov_tx = bed.provider(0);
    auto &prov_rx = bed.provider(1);

    const std::size_t n_msgs =
        (total_bytes + chunk_bytes - 1) / chunk_bytes;

    // --- receiver ------------------------------------------------------
    auto cq_rx = prov_rx.createCq(8192);
    auto buf_rx = std::make_shared<std::vector<std::uint8_t>>(
        chunk_bytes * pipeline_depth);
    auto mr_rx = prov_rx.registerMemory(*buf_rx);
    auto acceptor = std::make_shared<verbs::Acceptor>(
        prov_rx, ttcpPort, cq_rx, cq_rx);

    auto received = std::make_shared<std::size_t>(0);
    auto done = std::make_shared<bool>(false);
    auto t_end = std::make_shared<Tick>(0);
    auto qp_rx_keep =
        std::make_shared<std::shared_ptr<verbs::QueuePair>>();

    acceptor->acceptOne([&, received, done, t_end, qp_rx_keep, mr_rx,
                         buf_rx](std::shared_ptr<verbs::QueuePair> qp) {
        *qp_rx_keep = qp;
        // Pre-post the whole pipeline of receive buffers.
        for (std::size_t i = 0; i < pipeline_depth; ++i)
            qp->postRecv(i, *mr_rx, i * chunk_bytes, chunk_bytes);
        // Periodic reaper: drain completions, repost, count bytes.
        periodicReaper(
            prov_rx, poll_interval,
            [&sim, qp, cq_rx, received, done, t_end, mr_rx,
             pipeline_depth, chunk_bytes, total_bytes]() -> bool {
                verbs::Completion c;
                while (cq_rx->poll(c)) {
                    if (c.isSend)
                        continue;
                    *received += c.byteLen;
                    qp->postRecv(c.wrId, *mr_rx,
                                 (c.wrId % pipeline_depth) * chunk_bytes,
                                 chunk_bytes);
                }
                if (*received >= total_bytes) {
                    *t_end = sim.now();
                    *done = true;
                    return false;
                }
                return true;
            });
    });

    // --- sender --------------------------------------------------------
    auto cq_tx = prov_tx.createCq(8192);
    auto buf_tx =
        std::make_shared<std::vector<std::uint8_t>>(chunk_bytes, 0xcd);
    auto mr_tx = prov_tx.registerMemory(*buf_tx);
    auto qp_tx = prov_tx.createQp(nic::QpType::ReliableTcp, cq_tx,
                                  cq_tx, pipeline_depth + 8, 8);

    auto window = std::make_shared<Window>();
    auto posted = std::make_shared<std::size_t>(0);
    auto completed_sends = std::make_shared<std::size_t>(0);
    auto connected = std::make_shared<bool>(false);

    qp_tx->connect(bed.addr(1, ttcpPort),
                   [connected](bool ok) { *connected = ok; });
    sim.runUntilCondition([&] { return *connected; },
                          sim.now() + runDeadline);

    window->t0 = sim.now();
    window->busyTx0 = bed.host(0).cpu().busyTotal();
    window->busyRx0 = bed.host(1).cpu().busyTotal();

    // Fill the pipeline, then keep it full from the reaper.
    auto top_up = [qp_tx, mr_tx, posted, completed_sends, n_msgs,
                   pipeline_depth, chunk_bytes, total_bytes] {
        while (*posted < n_msgs &&
               *posted - *completed_sends < pipeline_depth) {
            const std::size_t remaining =
                total_bytes - *posted * chunk_bytes;
            const std::size_t len = std::min(chunk_bytes, remaining);
            if (!qp_tx->postSend(*posted, *mr_tx, 0, len))
                break;
            ++*posted;
        }
    };
    top_up();
    periodicReaper(prov_tx, poll_interval,
                   [cq_tx, completed_sends, top_up, n_msgs]() -> bool {
                       verbs::Completion c;
                       while (cq_tx->poll(c)) {
                           if (c.isSend)
                               ++*completed_sends;
                       }
                       top_up();
                       return *completed_sends < n_msgs;
                   });

    const bool ok = sim.runUntilCondition([&] { return *done; },
                                          sim.now() + runDeadline);
    return finish(*window, *t_end, bed.host(0).cpu().busyTotal(),
                  bed.host(1).cpu().busyTotal(), total_bytes, ok);
}

} // namespace qpip::apps
