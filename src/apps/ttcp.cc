#include "apps/ttcp.hh"

#include "apps/verbs_util.hh"
#include "sim/logging.hh"

namespace qpip::apps {

using host::TcpSocket;
using sim::Tick;

namespace {

constexpr std::uint16_t ttcpPort = 5001;
constexpr Tick runDeadline = 600 * sim::oneSec;

struct Window
{
    Tick t0 = 0;
    Tick busyTx0 = 0;
    Tick busyRx0 = 0;
};

TtcpResult
finish(const Window &w, sim::Tick t_end, Tick busy_tx, Tick busy_rx,
       std::size_t total_bytes, bool completed)
{
    TtcpResult r;
    const Tick wall = t_end - w.t0;
    if (wall == 0)
        return r;
    r.mbPerSec = static_cast<double>(total_bytes) /
                 (1024.0 * 1024.0) / sim::ticksToSec(wall);
    r.txCpuUtil =
        host::CpuModel::utilization(busy_tx - w.busyTx0, wall);
    r.rxCpuUtil =
        host::CpuModel::utilization(busy_rx - w.busyRx0, wall);
    r.elapsedMs = sim::ticksToSec(wall) * 1e3;
    r.completed = completed;
    return r;
}

} // namespace

TtcpResult
runSocketsTtcp(SocketsTestbed &bed, std::size_t total_bytes,
               std::size_t chunk_bytes)
{
    auto &sim = bed.sim();
    auto cfg = bed.tcpConfig();
    cfg.noDelay = true; // ttcp -D

    auto received = std::make_shared<std::size_t>(0);
    auto done = std::make_shared<bool>(false);
    auto t_end = std::make_shared<Tick>(0);

    // Receiver: drain until the expected byte count arrives.
    auto drain = std::make_shared<
        std::function<void(std::shared_ptr<TcpSocket>)>>();
    *drain = [received, done, t_end, total_bytes, &sim,
              drain](std::shared_ptr<TcpSocket> sock) {
        sock->recv(262144, [received, done, t_end, total_bytes, &sim,
                            drain, sock](std::vector<std::uint8_t> d) {
            if (d.empty())
                return; // EOF
            *received += d.size();
            if (*received >= total_bytes) {
                *t_end = sim.now();
                *done = true;
                return;
            }
            (*drain)(sock);
        });
    };
    bed.host(1).stack().tcpListen(
        ttcpPort, cfg,
        [drain](std::shared_ptr<TcpSocket> sock) { (*drain)(sock); });

    // Sender.
    auto window = std::make_shared<Window>();
    auto sock = bed.host(0).stack().tcpConnect(
        bed.addr(0, 30002), bed.addr(1, ttcpPort), cfg, nullptr);

    sim.runUntilCondition([&] { return sock->connected(); },
                          sim.now() + runDeadline);
    window->t0 = sim.now();
    window->busyTx0 = bed.host(0).cpu().busyTotal();
    window->busyRx0 = bed.host(1).cpu().busyTotal();

    auto sent = std::make_shared<std::size_t>(0);
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [sock, sent, total_bytes, chunk_bytes, pump] {
        if (*sent >= total_bytes)
            return;
        const std::size_t n =
            std::min(chunk_bytes, total_bytes - *sent);
        *sent += n;
        sock->sendAll(std::vector<std::uint8_t>(n, 0xcd),
                      [pump] { (*pump)(); });
    };
    (*pump)();

    const bool ok = sim.runUntilCondition([&] { return *done; },
                                          sim.now() + runDeadline);
    return finish(*window, *t_end, bed.host(0).cpu().busyTotal(),
                  bed.host(1).cpu().busyTotal(), total_bytes, ok);
}

TtcpResult
runQpipTtcp(QpipTestbed &bed, std::size_t total_bytes,
            std::size_t chunk_bytes, std::size_t pipeline_depth,
            sim::Tick poll_interval)
{
    auto &sim = bed.sim();
    auto &prov_tx = bed.provider(0);
    auto &prov_rx = bed.provider(1);

    const std::size_t n_msgs =
        (total_bytes + chunk_bytes - 1) / chunk_bytes;

    // --- receiver ------------------------------------------------------
    auto cq_rx = prov_rx.createCq(8192);
    auto buf_rx = std::make_shared<std::vector<std::uint8_t>>(
        chunk_bytes * pipeline_depth);
    auto mr_rx = prov_rx.registerMemory(*buf_rx);
    auto acceptor = std::make_shared<verbs::Acceptor>(
        prov_rx, ttcpPort, cq_rx, cq_rx);

    auto received = std::make_shared<std::size_t>(0);
    auto done = std::make_shared<bool>(false);
    auto t_end = std::make_shared<Tick>(0);
    auto qp_rx_keep =
        std::make_shared<std::shared_ptr<verbs::QueuePair>>();

    acceptor->acceptOne([&, received, done, t_end, qp_rx_keep, mr_rx,
                         buf_rx](std::shared_ptr<verbs::QueuePair> qp) {
        *qp_rx_keep = qp;
        // Pre-post the whole pipeline of receive buffers.
        for (std::size_t i = 0; i < pipeline_depth; ++i)
            qp->postRecv(i, *mr_rx, i * chunk_bytes, chunk_bytes);
        // Periodic reaper: drain completions, repost, count bytes.
        periodicReaper(
            prov_rx, poll_interval,
            [&sim, qp, cq_rx, received, done, t_end, mr_rx,
             pipeline_depth, chunk_bytes, total_bytes]() -> bool {
                verbs::Completion c;
                while (cq_rx->poll(c)) {
                    if (c.isSend)
                        continue;
                    *received += c.byteLen;
                    qp->postRecv(c.wrId, *mr_rx,
                                 (c.wrId % pipeline_depth) * chunk_bytes,
                                 chunk_bytes);
                }
                if (*received >= total_bytes) {
                    *t_end = sim.now();
                    *done = true;
                    return false;
                }
                return true;
            });
    });

    // --- sender --------------------------------------------------------
    auto cq_tx = prov_tx.createCq(8192);
    auto buf_tx =
        std::make_shared<std::vector<std::uint8_t>>(chunk_bytes, 0xcd);
    auto mr_tx = prov_tx.registerMemory(*buf_tx);
    auto qp_tx = prov_tx.createQp(nic::QpType::ReliableTcp, cq_tx,
                                  cq_tx, pipeline_depth + 8, 8);

    auto window = std::make_shared<Window>();
    auto posted = std::make_shared<std::size_t>(0);
    auto completed_sends = std::make_shared<std::size_t>(0);
    auto connected = std::make_shared<bool>(false);

    qp_tx->connect(bed.addr(1, ttcpPort),
                   [connected](bool ok) { *connected = ok; });
    sim.runUntilCondition([&] { return *connected; },
                          sim.now() + runDeadline);

    window->t0 = sim.now();
    window->busyTx0 = bed.host(0).cpu().busyTotal();
    window->busyRx0 = bed.host(1).cpu().busyTotal();

    // Fill the pipeline, then keep it full from the reaper.
    auto top_up = [qp_tx, mr_tx, posted, completed_sends, n_msgs,
                   pipeline_depth, chunk_bytes, total_bytes] {
        while (*posted < n_msgs &&
               *posted - *completed_sends < pipeline_depth) {
            const std::size_t remaining =
                total_bytes - *posted * chunk_bytes;
            const std::size_t len = std::min(chunk_bytes, remaining);
            if (!qp_tx->postSend(*posted, *mr_tx, 0, len))
                break;
            ++*posted;
        }
    };
    top_up();
    periodicReaper(prov_tx, poll_interval,
                   [cq_tx, completed_sends, top_up, n_msgs]() -> bool {
                       verbs::Completion c;
                       while (cq_tx->poll(c)) {
                           if (c.isSend)
                               ++*completed_sends;
                       }
                       top_up();
                       return *completed_sends < n_msgs;
                   });

    const bool ok = sim.runUntilCondition([&] { return *done; },
                                          sim.now() + runDeadline);
    return finish(*window, *t_end, bed.host(0).cpu().busyTotal(),
                  bed.host(1).cpu().busyTotal(), total_bytes, ok);
}

std::vector<TtcpPair>
allPairs(std::size_t n_hosts)
{
    std::vector<TtcpPair> pairs;
    for (std::size_t i = 0; i < n_hosts; ++i) {
        for (std::size_t j = 0; j < n_hosts; ++j) {
            if (i != j)
                pairs.push_back(TtcpPair{i, j});
        }
    }
    return pairs;
}

std::vector<TtcpPair>
uniformShiftPairs(std::size_t n_hosts, std::size_t n_shifts)
{
    if (n_shifts >= n_hosts)
        sim::panic("uniformShiftPairs: n_shifts %zu must be below "
                   "n_hosts %zu",
                   n_shifts, n_hosts);
    std::vector<TtcpPair> pairs;
    pairs.reserve(n_hosts * n_shifts);
    for (std::size_t s = 1; s <= n_shifts; ++s) {
        for (std::size_t i = 0; i < n_hosts; ++i)
            pairs.push_back(TtcpPair{i, (i + s) % n_hosts});
    }
    return pairs;
}

std::vector<TtcpPair>
incastPairs(std::size_t n_hosts, std::size_t dst)
{
    if (dst >= n_hosts)
        sim::panic("incastPairs: dst %zu out of range (n_hosts %zu)",
                   dst, n_hosts);
    std::vector<TtcpPair> pairs;
    pairs.reserve(n_hosts - 1);
    for (std::size_t i = 0; i < n_hosts; ++i) {
        if (i != dst)
            pairs.push_back(TtcpPair{i, dst});
    }
    return pairs;
}

MultiTtcpResult
runSocketsTtcpPairs(SocketsTestbed &bed,
                    const std::vector<TtcpPair> &pairs,
                    std::size_t bytes_per_pair,
                    std::size_t chunk_bytes)
{
    auto &sim = bed.sim();
    auto cfg = bed.tcpConfig();
    cfg.noDelay = true;

    // One flag per pair, each written only by its receiving host's
    // partition: a shared counter here would be incremented
    // concurrently from different worker threads. The completion
    // predicate sums the flags, and only runs at epoch barriers.
    auto done = std::make_shared<std::vector<std::uint8_t>>(
        pairs.size(), std::uint8_t{0});
    const auto done_count = [done] {
        std::size_t n = 0;
        for (const std::uint8_t f : *done)
            n += f;
        return n;
    };

    // Listeners first: pair k on port 5001+k.
    for (std::size_t k = 0; k < pairs.size(); ++k) {
        auto drain = std::make_shared<
            std::function<void(std::shared_ptr<TcpSocket>)>>();
        auto received = std::make_shared<std::size_t>(0);
        *drain = [received, done, k, bytes_per_pair,
                  drain](std::shared_ptr<TcpSocket> sock) {
            sock->recv(262144, [received, done, k, bytes_per_pair,
                                drain,
                                sock](std::vector<std::uint8_t> d) {
                if (d.empty())
                    return; // EOF
                *received += d.size();
                if (*received >= bytes_per_pair) {
                    (*done)[k] = 1;
                    return;
                }
                (*drain)(sock);
            });
        };
        bed.host(pairs[k].dst)
            .stack()
            .tcpListen(static_cast<std::uint16_t>(ttcpPort + k), cfg,
                       [drain](std::shared_ptr<TcpSocket> sock) {
                           (*drain)(sock);
                       });
    }

    // Connect every sender (source port 30000+k keeps 4-tuples
    // unique even when one host runs several pairs).
    std::vector<std::shared_ptr<TcpSocket>> socks;
    socks.reserve(pairs.size());
    for (std::size_t k = 0; k < pairs.size(); ++k) {
        socks.push_back(bed.host(pairs[k].src).stack().tcpConnect(
            bed.addr(pairs[k].src,
                     static_cast<std::uint16_t>(30000 + k)),
            bed.addr(pairs[k].dst,
                     static_cast<std::uint16_t>(ttcpPort + k)),
            cfg, nullptr));
    }
    sim.runUntilCondition(
        [&] {
            for (const auto &s : socks) {
                if (!s->connected())
                    return false;
            }
            return true;
        },
        sim.now() + runDeadline);

    const Tick t0 = sim.now();
    for (auto &sock : socks) {
        auto sent = std::make_shared<std::size_t>(0);
        auto pump = std::make_shared<std::function<void()>>();
        *pump = [sock, sent, bytes_per_pair, chunk_bytes, pump] {
            if (*sent >= bytes_per_pair)
                return;
            const std::size_t n =
                std::min(chunk_bytes, bytes_per_pair - *sent);
            *sent += n;
            sock->sendAll(std::vector<std::uint8_t>(n, 0xcd),
                          [pump] { (*pump)(); });
        };
        (*pump)();
    }

    const bool ok = sim.runUntilCondition(
        [&] { return done_count() >= pairs.size(); },
        sim.now() + runDeadline);

    MultiTtcpResult r;
    r.pairsCompleted = done_count();
    r.completed = ok;
    const Tick wall = sim.now() - t0;
    if (wall != 0) {
        r.elapsedMs = sim::ticksToSec(wall) * 1e3;
        r.aggMbPerSec =
            static_cast<double>(r.pairsCompleted) *
            static_cast<double>(bytes_per_pair) / (1024.0 * 1024.0) /
            sim::ticksToSec(wall);
    }
    return r;
}

} // namespace qpip::apps
