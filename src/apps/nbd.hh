/**
 * @file
 * The Network Block Device (Figure 5/6/7): a client whose block I/O
 * requests are forwarded to a server emulating a network-attached
 * disk. Two transports, as in the paper: the classic sockets version
 * (client driver in the kernel doing socket calls) and the QPIP port
 * (requests and replies as QP messages; "integrating the QP interface
 * into NBD was straightforward and proved simpler than the socket
 * implementation").
 *
 * Wire format (classic NBD):
 *   request: magic(4) type(4) handle(8) offset(8) length(4) [+data]
 *   reply:   magic(4) error(4) handle(8) [+data]
 */

#pragma once

#include <optional>

#include "apps/disk.hh"
#include "apps/testbed.hh"

namespace qpip::apps {

constexpr std::uint32_t nbdRequestMagic = 0x25609513;
constexpr std::uint32_t nbdReplyMagic = 0x67446698;
constexpr std::size_t nbdRequestHeaderBytes = 28;
constexpr std::size_t nbdReplyHeaderBytes = 16;

/** NBD request opcodes. */
enum class NbdOp : std::uint32_t { Read = 0, Write = 1, Flush = 3 };

/** Parsed NBD request header. */
struct NbdRequest
{
    NbdOp type = NbdOp::Read;
    std::uint64_t handle = 0;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
};

/** Serialize a request header (+ optional write payload). */
std::vector<std::uint8_t>
serializeNbdRequest(const NbdRequest &req,
                    std::span<const std::uint8_t> payload = {});

/** Parse a request header. @return false on bad magic/truncation. */
bool parseNbdRequest(std::span<const std::uint8_t> bytes,
                     NbdRequest &out);

/** Serialize a reply header (+ optional read payload). */
std::vector<std::uint8_t>
serializeNbdReply(std::uint64_t handle, std::uint32_t error,
                  std::span<const std::uint8_t> payload = {});

/** Parse a reply header. */
bool parseNbdReply(std::span<const std::uint8_t> bytes,
                   std::uint64_t &handle, std::uint32_t &error);

/** Server configuration. */
struct NbdServerConfig
{
    std::uint16_t port = 10809;
    std::size_t maxRequestBytes = 65536;
    /**
     * Optional real device contents (small devices, integrity
     * tests). When null the server serves a deterministic pattern.
     */
    std::vector<std::uint8_t> *content = nullptr;
    /** Server-side filesystem work per 4 kB page (write path). */
    sim::Cycles serverFsWriteCyclesPerPage = 10000;
    /** Server-side page-cache copy per 4 kB page (read path). */
    sim::Cycles serverFsReadCyclesPerPage = 6000;
};

/** The sockets-based server (user-level, as shipped with Linux). */
class NbdSocketServer
{
  public:
    NbdSocketServer(host::HostStack &stack, ServerStore &store,
                    NbdServerConfig config);

  private:
    struct Session;
    void serve(std::shared_ptr<host::TcpSocket> sock);

    host::HostStack &stack_;
    ServerStore &store_;
    NbdServerConfig cfg_;
};

/** The QPIP server (requests/replies as QP messages). */
class NbdQpipServer
{
  public:
    NbdQpipServer(verbs::Provider &provider, ServerStore &store,
                  NbdServerConfig config);

  private:
    void onRequest(std::shared_ptr<verbs::QueuePair> qp,
                   std::vector<std::uint8_t> msg);
    void pump();
    void armAccept();

    verbs::Provider &provider_;
    ServerStore &store_;
    NbdServerConfig cfg_;
    std::shared_ptr<verbs::CompletionQueue> cq_;
    std::shared_ptr<verbs::Acceptor> acceptor_;
    std::shared_ptr<verbs::QueuePair> qp_;
    std::shared_ptr<std::vector<std::uint8_t>> reqBuf_;
    std::shared_ptr<std::vector<std::uint8_t>> repBuf_;
    std::shared_ptr<verbs::MemoryRegion> reqMr_;
    std::shared_ptr<verbs::MemoryRegion> repMr_;
    std::size_t slots_ = 16;
    bool pumping_ = false;
};

/** Client-side cost/shape parameters (the "filesystem" above NBD). */
struct NbdClientParams
{
    std::size_t requestBytes = 65536;
    std::size_t fsPageBytes = 4096;
    /** ext2 + buffer cache + block layer work per page. */
    sim::Cycles fsCyclesPerPage = 10000;
    /** Block requests kept in flight (kernel request queue depth). */
    std::size_t pipelineDepth = 8;
    bool verifyContent = false;
};

/** Result of one sequential NBD phase. */
struct NbdRunResult
{
    double mbPerSec = 0.0;
    double clientCpuUtil = 0.0;
    /** CPU effectiveness: MB transferred per client CPU-second. */
    double mbPerCpuSec = 0.0;
    bool completed = false;
    bool dataOk = true;
};

/**
 * Run a sequential read or write of @p total_bytes from client host
 * @p client_idx against a sockets NBD server already listening on
 * host @p server_idx.
 */
NbdRunResult
runNbdSocketsSequential(SocketsTestbed &bed, std::size_t client_idx,
                        std::size_t server_idx, bool is_write,
                        std::uint64_t total_bytes,
                        NbdClientParams params = NbdClientParams{},
                        std::uint16_t port = 10809);

/** Same over QPIP. */
NbdRunResult
runNbdQpipSequential(QpipTestbed &bed, std::size_t client_idx,
                     std::size_t server_idx, bool is_write,
                     std::uint64_t total_bytes,
                     NbdClientParams params = NbdClientParams{},
                     std::uint16_t port = 10809);

} // namespace qpip::apps
