#include "apps/testbed.hh"

#include "sim/logging.hh"

namespace qpip::apps {

namespace {

inet::InetAddr
v4Of(std::size_t i)
{
    auto a = inet::Ipv4Addr::parse("10.0.0." + std::to_string(i + 1));
    return inet::InetAddr(*a);
}

inet::InetAddr
v6Of(std::size_t i)
{
    auto a = inet::Ipv6Addr::parse("fd00::" + std::to_string(i + 1));
    return inet::InetAddr(*a);
}

} // namespace

SocketsTestbed::SocketsTestbed(std::size_t n_hosts,
                               SocketsFabric fabric_kind,
                               std::uint64_t seed,
                               host::HostCostModel costs)
    : sim_(seed)
{
    const bool gige = fabric_kind == SocketsFabric::GigabitEthernet;
    net::LinkConfig link =
        gige ? net::gigabitEthernetLink() : net::myrinetLink(9000);
    fabric_ = std::make_unique<net::StarFabric>(sim_, "fabric", link);

    for (std::size_t i = 0; i < n_hosts; ++i) {
        auto node = static_cast<net::NodeId>(i);
        net::Link &spoke = fabric_->addNode(node);
        hosts_.push_back(std::make_unique<host::Host>(
            sim_, "host" + std::to_string(i), costs));
        nics_.push_back(std::make_unique<nic::EthNic>(
            sim_, "host" + std::to_string(i) + ".nic",
            hosts_[i]->stack(), spoke, node,
            gige ? nic::pro1000Params() : nic::gmIpParams()));
        hosts_[i]->stack().addAddress(v4Of(i));
    }
    // Full-mesh neighbor entries.
    for (std::size_t i = 0; i < n_hosts; ++i) {
        for (std::size_t j = 0; j < n_hosts; ++j) {
            if (i != j) {
                hosts_[i]->stack().routes().add(
                    v4Of(j), static_cast<net::NodeId>(j));
            }
        }
    }
}

SocketsTestbed::~SocketsTestbed()
{
    // Pending event closures can hold the last references to sockets
    // and connections; release them while stacks and NICs still
    // exist.
    sim_.eventQueue().clear();
}

inet::SockAddr
SocketsTestbed::addr(std::size_t i, std::uint16_t port) const
{
    return inet::SockAddr{v4Of(i), port};
}

inet::TcpConfig
SocketsTestbed::tcpConfig() const
{
    return hosts_.at(0)->stack().defaultTcpConfig();
}

QpipTestbed::QpipTestbed(std::size_t n_hosts, std::uint32_t mtu,
                         std::uint64_t seed,
                         nic::QpipNicParams nic_params,
                         host::HostCostModel costs, IpFamily family)
    : sim_(seed), family_(family)
{
    const auto addr_of = [family](std::size_t i) {
        return family == IpFamily::V6 ? v6Of(i) : v4Of(i);
    };
    fabric_ = std::make_unique<net::StarFabric>(sim_, "fabric",
                                                net::myrinetLink(mtu));
    for (std::size_t i = 0; i < n_hosts; ++i) {
        auto node = static_cast<net::NodeId>(i);
        net::Link &spoke = fabric_->addNode(node);
        hosts_.push_back(std::make_unique<host::Host>(
            sim_, "host" + std::to_string(i), costs));
        nics_.push_back(std::make_unique<nic::QpipNic>(
            sim_, "host" + std::to_string(i) + ".qnic", spoke, node,
            nic_params));
        nics_[i]->setAddress(addr_of(i));
        providers_.push_back(std::make_unique<verbs::Provider>(
            *hosts_[i], *nics_[i]));
    }
    for (std::size_t i = 0; i < n_hosts; ++i) {
        for (std::size_t j = 0; j < n_hosts; ++j) {
            if (i != j) {
                nics_[i]->routes().add(addr_of(j),
                                       static_cast<net::NodeId>(j));
            }
        }
    }
}

QpipTestbed::~QpipTestbed()
{
    // Pending event closures can hold the last references to queue
    // pairs and CQs; release them while providers and NICs still
    // exist.
    sim_.eventQueue().clear();
}

inet::SockAddr
QpipTestbed::addr(std::size_t i, std::uint16_t port) const
{
    return inet::SockAddr{
        family_ == IpFamily::V6 ? v6Of(i) : v4Of(i), port};
}

} // namespace qpip::apps
