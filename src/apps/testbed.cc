#include "apps/testbed.hh"

#include "sim/logging.hh"

namespace qpip::apps {

namespace {

inet::InetAddr
v4Of(std::size_t i)
{
    auto a = inet::Ipv4Addr::parse("10.0.0." + std::to_string(i + 1));
    return inet::InetAddr(*a);
}

inet::InetAddr
v6Of(std::size_t i)
{
    auto a = inet::Ipv6Addr::parse("fd00::" + std::to_string(i + 1));
    return inet::InetAddr(*a);
}

std::unique_ptr<net::Fabric>
makeFabric(sim::Simulation &sim, net::LinkConfig link,
           FabricTopology topology, std::size_t n_hosts)
{
    switch (topology) {
      case FabricTopology::Star:
        return std::make_unique<net::StarFabric>(sim, "fabric", link);
      case FabricTopology::DualStar:
        return std::make_unique<net::DualStarFabric>(sim, "fabric",
                                                     link, n_hosts);
      case FabricTopology::FatTree:
        return std::make_unique<net::FatTreeFabric>(sim, "fabric",
                                                    link, n_hosts);
      case FabricTopology::FatTreeK8:
        return net::makeKAryFatTree(sim, "fabric", link, 8, n_hosts);
      case FabricTopology::FatTreeK16:
        return net::makeKAryFatTree(sim, "fabric", link, 16, n_hosts);
    }
    sim::panic("makeFabric: unknown topology");
}

/**
 * One partition per host named "host<i>" (binding the host, its OS,
 * stack and NIC by name prefix), then hand the fabric's switches and
 * links to partitionFabric.
 */
template <typename Bed>
std::unique_ptr<sim::ParallelEngine>
makeEngine(Bed &bed, int threads)
{
    auto engine =
        std::make_unique<sim::ParallelEngine>(bed.sim(), threads);
    std::vector<sim::Partition *> parts;
    for (std::size_t i = 0; i < bed.numHosts(); ++i) {
        const std::string prefix = "host" + std::to_string(i);
        sim::Partition &p = engine->addPartition(prefix);
        engine->assignByPrefix(prefix, p);
        parts.push_back(&p);
    }
    net::partitionFabric(*engine, bed.fabric(), parts);
    return engine;
}

} // namespace

SocketsTestbed::SocketsTestbed(std::size_t n_hosts,
                               SocketsFabric fabric_kind,
                               std::uint64_t seed,
                               host::HostCostModel costs,
                               FabricTopology topology)
    : sim_(seed)
{
    const bool gige = fabric_kind == SocketsFabric::GigabitEthernet;
    net::LinkConfig link =
        gige ? net::gigabitEthernetLink() : net::myrinetLink(9000);
    fabric_ = makeFabric(sim_, link, topology, n_hosts);

    for (std::size_t i = 0; i < n_hosts; ++i) {
        auto node = static_cast<net::NodeId>(i);
        net::Link &spoke = fabric_->addNode(node);
        hosts_.push_back(std::make_unique<host::Host>(
            sim_, "host" + std::to_string(i), costs));
        nics_.push_back(std::make_unique<nic::EthNic>(
            sim_, "host" + std::to_string(i) + ".nic",
            hosts_[i]->stack(), spoke, node,
            gige ? nic::pro1000Params() : nic::gmIpParams()));
        hosts_[i]->stack().addAddress(v4Of(i));
    }
    // Full-mesh neighbor entries.
    for (std::size_t i = 0; i < n_hosts; ++i) {
        for (std::size_t j = 0; j < n_hosts; ++j) {
            if (i != j) {
                hosts_[i]->stack().routes().add(
                    v4Of(j), static_cast<net::NodeId>(j));
            }
        }
    }
}

SocketsTestbed::~SocketsTestbed()
{
    // Pending event closures can hold the last references to sockets
    // and connections; release them while stacks and NICs still
    // exist.
    if (engine_ != nullptr) {
        engine_->park();
        engine_->clearAll();
    } else {
        sim_.eventQueue().clear();
    }
}

void
SocketsTestbed::enableParallel(int threads)
{
    engine_ = makeEngine(*this, threads);
}

inet::SockAddr
SocketsTestbed::addr(std::size_t i, std::uint16_t port) const
{
    return inet::SockAddr{v4Of(i), port};
}

inet::TcpConfig
SocketsTestbed::tcpConfig() const
{
    return hosts_.at(0)->stack().defaultTcpConfig();
}

QpipTestbed::QpipTestbed(std::size_t n_hosts, std::uint32_t mtu,
                         std::uint64_t seed,
                         nic::QpipNicParams nic_params,
                         host::HostCostModel costs, IpFamily family,
                         FabricTopology topology)
    : QpipTestbed(n_hosts, mtu, seed,
                  std::vector<nic::QpipNicParams>(n_hosts, nic_params),
                  costs, family, topology)
{
}

QpipTestbed::QpipTestbed(std::size_t n_hosts, std::uint32_t mtu,
                         std::uint64_t seed,
                         std::vector<nic::QpipNicParams> nic_params,
                         host::HostCostModel costs, IpFamily family,
                         FabricTopology topology)
    : sim_(seed), family_(family)
{
    if (nic_params.size() != n_hosts)
        sim::panic("QpipTestbed: nic_params size != n_hosts");
    const auto addr_of = [family](std::size_t i) {
        return family == IpFamily::V6 ? v6Of(i) : v4Of(i);
    };
    fabric_ = makeFabric(sim_, net::myrinetLink(mtu), topology,
                         n_hosts);
    for (std::size_t i = 0; i < n_hosts; ++i) {
        auto node = static_cast<net::NodeId>(i);
        net::Link &spoke = fabric_->addNode(node);
        hosts_.push_back(std::make_unique<host::Host>(
            sim_, "host" + std::to_string(i), costs));
        nics_.push_back(std::make_unique<nic::QpipNic>(
            sim_, "host" + std::to_string(i) + ".qnic", spoke, node,
            nic_params[i]));
        nics_[i]->setAddress(addr_of(i));
        providers_.push_back(std::make_unique<verbs::Provider>(
            *hosts_[i], *nics_[i]));
    }
    for (std::size_t i = 0; i < n_hosts; ++i) {
        for (std::size_t j = 0; j < n_hosts; ++j) {
            if (i != j) {
                nics_[i]->routes().add(addr_of(j),
                                       static_cast<net::NodeId>(j));
            }
        }
    }
}

QpipTestbed::~QpipTestbed()
{
    // Pending event closures can hold the last references to queue
    // pairs and CQs; release them while providers and NICs still
    // exist.
    if (engine_ != nullptr) {
        engine_->park();
        engine_->clearAll();
    } else {
        sim_.eventQueue().clear();
    }
}

void
QpipTestbed::enableParallel(int threads)
{
    engine_ = makeEngine(*this, threads);
}

inet::SockAddr
QpipTestbed::addr(std::size_t i, std::uint16_t port) const
{
    return inet::SockAddr{
        family_ == IpFamily::V6 ? v6Of(i) : v4Of(i), port};
}

} // namespace qpip::apps
