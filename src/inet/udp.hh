/**
 * @file
 * UDP (RFC 768) with the v4/v6 pseudo-header checksum. The paper's
 * unreliable QP service encapsulates each message directly in one UDP
 * datagram, with no additional protocol layer.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "inet/ip.hh"

namespace qpip::inet {

constexpr std::size_t udpHeaderBytes = 8;

/** Parsed UDP header. */
struct UdpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t length = 0;
};

/**
 * Build UDP wire bytes (header + payload) with the checksum computed
 * over the pseudo-header for the given IP endpoints.
 */
std::vector<std::uint8_t>
serializeUdp(const InetAddr &src, const InetAddr &dst,
             std::uint16_t src_port, std::uint16_t dst_port,
             std::span<const std::uint8_t> payload);

/**
 * Parse and verify UDP bytes delivered by the IP layer.
 * @param src,dst the IP endpoints (for the pseudo-header).
 * @param[out] hdr parsed header.
 * @param[out] payload view into @p bytes.
 * @return false on truncation or checksum failure.
 */
bool parseUdp(const InetAddr &src, const InetAddr &dst,
              std::span<const std::uint8_t> bytes, UdpHeader &hdr,
              std::span<const std::uint8_t> &payload);

/**
 * Fold the TCP/UDP pseudo-header for either family into @p acc.
 */
void addPseudoHeader(class ChecksumAccumulator &acc, const InetAddr &src,
                     const InetAddr &dst, IpProto proto,
                     std::uint32_t l4_len);

} // namespace qpip::inet
