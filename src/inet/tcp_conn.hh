/**
 * @file
 * The TCP engine shared by the host-based baseline stacks and the
 * QPIP NIC firmware — mirroring the paper, whose firmware TCP "is
 * based on existing inter-network protocol stacks to shorten
 * development time and ensure correctness".
 *
 * Features (the prototype's subset, per section 4.1):
 *  - 3-way handshake via the standard sockets rendezvous model;
 *  - sliding-window data transfer with RTT estimation, window
 *    management, congestion control (Reno: slow start, congestion
 *    avoidance, fast retransmit/recovery) and flow control;
 *  - RFC 1323 timestamps and window scaling;
 *  - delayed ACK and Nagle (both defeatable — ttcp runs NODELAY);
 *  - header-prediction fast-path classification (Stevens/Wright);
 *  - graceful close (FIN state machine incl. TIME_WAIT) and RST;
 *  - zero-window persist probing (BSD-style garbage-byte probe).
 *
 * Two delivery disciplines:
 *  - *stream mode* (host sockets): byte stream, MSS-sized segments;
 *  - *message mode* (QPIP): one QP message maps one-for-one onto one
 *    TCP segment of arbitrary size (relying on IPv6 end-to-end
 *    fragmentation below); out-of-order segments are not reassembled,
 *    and the receive window is whatever buffer the application has
 *    posted.
 *
 * The engine is environment-agnostic: time, timers, output and ISS
 * randomness come from a TcpEnv, and all policy upcalls (delivery,
 * completion, window sizing) go through a TcpObserver.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "inet/byte_fifo.hh"
#include "inet/ip.hh"
#include "inet/pcb_table.hh"
#include "inet/rtt_estimator.hh"
#include "inet/tcp_header.hh"
#include "inet/tcp_reass.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace qpip::sim {
class Tracer;
} // namespace qpip::sim

namespace qpip::inet {

class TcpConnection;

/** RFC 793 connection states (Listen lives in the owning stack). */
enum class TcpState : std::uint8_t {
    Closed,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
};

const char *tcpStateName(TcpState s);

/** Tunables; host and firmware instantiations differ. */
struct TcpConfig
{
    /** Max payload per segment in stream mode. */
    std::uint32_t mss = 1460;
    bool useTimestamps = true;
    bool useWindowScale = true;
    /** Receive window scale shift we advertise. */
    std::uint8_t windowScale = 4;
    /** Timestamp clock granularity (Linux: 1 ms; firmware: 1 us). */
    sim::Tick tsGranularity = sim::oneMs;
    /** Disable Nagle (TCP_NODELAY). */
    bool noDelay = false;
    bool delayedAck = true;
    sim::Tick delAckTimeout = 40 * sim::oneMs;
    /** QPIP message-per-segment discipline. */
    bool messageMode = false;
    /** Buffer out-of-order segments (host stacks yes, firmware no). */
    bool reassembly = true;
    /** Stream-mode send buffer bytes. */
    std::uint32_t sendBufBytes = 256 * 1024;
    sim::Tick minRto = 200 * sim::oneMs;
    sim::Tick maxRto = 60 * sim::oneSec;
    /** TIME_WAIT holds 2*msl. */
    sim::Tick msl = 500 * sim::oneMs;
    /** Initial congestion window in segments. */
    std::uint32_t initialCwndSegs = 2;
    /** Message-mode congestion window cap, in segments. */
    std::uint32_t maxCwndSegs = 128;
    unsigned maxSynRetries = 5;
    unsigned maxRtxRetries = 10;
    sim::Tick persistInterval = 200 * sim::oneMs;
};

/** Classification of an outgoing segment, for NIC/host cost models. */
struct TcpSegMeta
{
    bool pureAck = false;
    bool retransmit = false;
    std::size_t payloadBytes = 0;
    std::uint8_t flags = 0;
};

/**
 * Services the owning stack provides to a connection.
 */
class TcpEnv
{
  public:
    virtual ~TcpEnv() = default;

    virtual sim::Tick now() = 0;

    /** Arm a one-shot timer. */
    virtual sim::EventHandle scheduleTimer(sim::Tick delay,
                                           std::function<void()> fn) = 0;

    /** Hand a finished segment to the IP layer. */
    virtual void tcpOutput(IpDatagram &&dgram, const TcpSegMeta &meta) = 0;

    /** Initial send sequence randomness. */
    virtual std::uint32_t randomIss() = 0;

    /** The connection reached Closed; the stack may reap it. */
    virtual void connectionClosed(TcpConnection &conn) = 0;

    /** Event tracer for state-transition instants; may be null. */
    virtual sim::Tracer *tracer() { return nullptr; }
};

/**
 * Policy/delivery upcalls to the connection's user.
 */
class TcpObserver
{
  public:
    virtual ~TcpObserver() = default;

    /** Handshake completed (either direction). */
    virtual void onConnected(TcpConnection &) {}

    /** Stream mode: in-order bytes arrived. */
    virtual void onDataDelivered(TcpConnection &,
                                 std::span<const std::uint8_t>)
    {}

    /**
     * Message mode: may the connection accept this message right now
     * (is a receive WR posted)? The payload is passed so protocol
     * observers can peek a framing opcode — one-sided RDMA ops are
     * admitted without a posted WR. Refusal drops the segment
     * un-ACKed; the peer retransmits.
     */
    virtual bool canAcceptMessage(TcpConnection &,
                                  std::span<const std::uint8_t>)
    {
        return true;
    }

    /** Message mode: a whole message (one segment) arrived in order. */
    virtual void onMessage(TcpConnection &, std::vector<std::uint8_t> &&)
    {}

    /** Message mode: message @p tag is fully ACKed (WR completes). */
    virtual void onMessageAcked(TcpConnection &, std::uint64_t) {}

    /** Stream mode: send-buffer space became available. */
    virtual void onSendSpace(TcpConnection &) {}

    /** Peer sent FIN (read side hits EOF once data drains). */
    virtual void onPeerClosed(TcpConnection &) {}

    /** Connection fully closed (normal teardown finished). */
    virtual void onClosed(TcpConnection &) {}

    /** Connection reset (by peer or by retry exhaustion). */
    virtual void onReset(TcpConnection &) {}

    /**
     * Receive buffer space to advertise, in bytes: sockbuf space for
     * sockets, total posted receive-WR bytes for QPIP.
     */
    virtual std::uint32_t receiveWindow(TcpConnection &) = 0;
};

/** Counters exposed for tests and the occupancy/ablation benches. */
struct TcpStats
{
    sim::Counter segsOut;
    sim::Counter segsIn;
    sim::Counter bytesOut;
    sim::Counter bytesIn;
    sim::Counter retransmits;
    sim::Counter fastRetransmits;
    sim::Counter timeouts;
    sim::Counter dupAcksIn;
    sim::Counter oooSegments;
    sim::Counter oooDropped;
    sim::Counter hdrPredicted;
    sim::Counter msgRefused;
    sim::Counter persistProbes;
    sim::Counter badSegments;

    /**
     * Publish every counter under "<prefix>.<name>" in @p registry.
     * The registrations share the connection's lifetime (unregistered
     * when the TcpStats is destroyed).
     */
    void registerIn(sim::StatRegistry &registry, std::string prefix);

    bool registered() const { return group_.bound(); }
    const std::string &statPrefix() const { return group_.prefix(); }

  private:
    sim::StatGroup group_;
};

/**
 * One TCP connection.
 */
class TcpConnection
{
  public:
    TcpConnection(TcpEnv &env, TcpObserver &observer, TcpConfig config);
    ~TcpConnection();

    TcpConnection(const TcpConnection &) = delete;
    TcpConnection &operator=(const TcpConnection &) = delete;

    /** Start an active open (client side): sends SYN. */
    void openActive(const SockAddr &local, const SockAddr &remote);

    /**
     * Start a passive open (server side) from a received SYN: enters
     * SynRcvd and sends SYN|ACK. The owning stack creates one of
     * these per accepted SYN.
     */
    void openPassive(const SockAddr &local, const SockAddr &remote,
                     const TcpHeader &syn);

    /**
     * Stream mode: queue bytes for transmission.
     * @return bytes accepted (bounded by send-buffer space).
     */
    std::size_t send(std::span<const std::uint8_t> data);

    /** Stream-mode send buffer space remaining. */
    std::size_t sendSpace() const;

    /**
     * Message mode: queue one message; it will travel as exactly one
     * TCP segment. @p tag is returned via onMessageAcked.
     * @pre message is non-empty.
     */
    void sendMessage(std::vector<std::uint8_t> data, std::uint64_t tag);

    /** Graceful close: FIN after queued data. */
    void close();

    /** Hard abort: RST to the peer, immediate Closed. */
    void abort();

    /**
     * A verified segment for this connection arrived from IP.
     */
    void segmentArrived(const TcpHeader &hdr,
                        std::span<const std::uint8_t> payload);

    /**
     * The receive window grew (WRs posted / sockbuf drained). Sends a
     * window update when the growth is significant, and re-delivers
     * any segment retained while the application had no buffer.
     */
    void onReceiveWindowGrew();

    TcpState state() const { return state_; }
    bool established() const { return state_ == TcpState::Established; }
    const FourTuple &tuple() const { return tuple_; }
    const TcpConfig &config() const { return cfg_; }
    TcpStats &stats() { return stats_; }

    /** Unacked bytes in flight. */
    std::uint32_t flightSize() const { return sndNxt_ - sndUna_; }

    /** Stream-mode bytes buffered for transmission (incl. in flight). */
    std::size_t sendBuffered() const { return sndBuf_.size(); }

    /** Effective MSS for stream segmentation. */
    std::uint32_t effMss() const;

    /** Peer-advertised (scaled) send window, for tests. */
    std::uint32_t sndWnd() const { return sndWnd_; }
    std::uint32_t cwndBytes() const { return cwnd_; }
    std::uint32_t cwndSegs() const { return cwndSegs_; }
    const RttEstimator &rtt() const { return rtt_; }

  private:
    // --- segment construction -----------------------------------
    struct OutSpec
    {
        std::uint32_t seq = 0;
        std::uint8_t flags = 0;
        std::span<const std::uint8_t> payload;
        bool retransmit = false;
        bool withOptionsForSyn = false;
    };

    void emitSegment(const OutSpec &spec);
    void sendAck();
    void sendRst(std::uint32_t seq, std::uint32_t ack, bool with_ack);
    std::uint32_t currentAdvertiseWindow();
    std::uint32_t tsNow() const;

    // --- send machinery -------------------------------------------
    void trySend(bool force_one = false);
    void trySendStream();
    void trySendMessages();
    void maybeSendFin();
    std::uint32_t usableWindowBytes() const;

    // --- timers -----------------------------------------------------
    void armRtxTimer();
    void cancelRtxTimer();
    void onRtxTimeout();
    void armDelAck();
    void onDelAckTimeout();
    void armPersist();
    void onPersistTimeout();
    void enterTimeWait();

    // --- receive machinery -----------------------------------------
    void processSynSent(const TcpHeader &hdr);
    void processAck(const TcpHeader &hdr, std::size_t payload_len);
    void processData(const TcpHeader &hdr,
                     std::span<const std::uint8_t> payload);
    void processFin(const TcpHeader &hdr,
                    std::size_t delivered_payload);
    void deliverInOrder(std::span<const std::uint8_t> payload);
    void updateSendWindow(const TcpHeader &hdr);
    bool headerPredicted(const TcpHeader &hdr, std::size_t payload_len);
    void scheduleAckAfterData(std::size_t payload_len);

    // --- congestion control ----------------------------------------
    void openCongestionWindow(std::uint32_t acked_bytes);
    void onLossDetected(bool timeout);

    // --- message-mode bookkeeping -----------------------------------
    struct PendingMsg
    {
        std::vector<std::uint8_t> data;
        std::uint64_t tag = 0;
        std::uint32_t seqStart = 0;
        bool sent = false;
    };

    void completeAckedMessages();
    void retransmitOldest();

    // --- teardown ----------------------------------------------------
    void toClosed(bool notify_reset);

    /** Move to @p next, emitting a trace instant when tracing is on. */
    void transition(TcpState next);

    TcpEnv &env_;
    TcpObserver &observer_;
    TcpConfig cfg_;
    FourTuple tuple_;
    TcpState state_ = TcpState::Closed;
    TcpStats stats_;

    // Sequence state (RFC 793 names).
    std::uint32_t iss_ = 0, irs_ = 0;
    std::uint32_t sndUna_ = 0, sndNxt_ = 0;
    std::uint32_t sndWnd_ = 0;
    std::uint32_t sndWl1_ = 0, sndWl2_ = 0;
    std::uint32_t sndMaxSeen_ = 0; ///< highest sndNxt ever (for FIN acct)
    std::uint32_t rcvNxt_ = 0;
    std::uint32_t rcvAdvertised_ = 0; ///< right edge last advertised

    // Negotiated options.
    bool tsEnabled_ = false;
    bool wsEnabled_ = false;
    std::uint8_t sndScale_ = 0; ///< applied to peer's window field
    std::uint8_t rcvScale_ = 0; ///< applied to our window field
    std::uint32_t tsRecent_ = 0; ///< TSval to echo
    std::uint32_t peerMss_ = 536;

    // Congestion control (byte-based in stream mode, segment-based in
    // message mode where segment sizes are application-chosen).
    std::uint32_t cwnd_ = 0;
    std::uint32_t ssthresh_ = 0;
    std::uint32_t cwndSegs_ = 0;
    std::uint32_t ssthreshSegs_ = 0;
    std::uint32_t caAccum_ = 0; ///< congestion-avoidance accumulator
    unsigned dupAcks_ = 0;
    bool inRecovery_ = false;
    std::uint32_t recover_ = 0; ///< sndNxt at loss (NewReno)

    // RTT measurement.
    RttEstimator rtt_;
    bool rttTiming_ = false;
    std::uint32_t rttSeq_ = 0;
    sim::Tick rttStamp_ = 0;
    bool retransmittedSinceTiming_ = false;

    // Stream-mode buffers. sndBuf_ head corresponds to sndUna_.
    ByteFifo sndBuf_;
    /**
     * Reused per-segment copy-out target: emitSegment() consumes the
     * payload span synchronously, so one scratch buffer per
     * connection avoids a zero-initialized allocation per segment.
     */
    std::vector<std::uint8_t> segScratch_;
    TcpReassembly reass_;
    std::uint64_t rcvOffset_ = 0; ///< logical stream offset of rcvNxt_

    // Message mode queue; front is oldest unacked.
    std::deque<PendingMsg> sendQueue_;
    std::size_t firstUnsent_ = 0;

    // Deferred in-order message retained while no WR was posted.
    std::vector<std::uint8_t> heldMessage_;
    bool holdingMessage_ = false;

    // Close handshake.
    bool finQueued_ = false;  ///< user asked to close
    bool finSent_ = false;
    std::uint32_t finSeq_ = 0;

    // Timers.
    sim::EventHandle rtxTimer_;
    sim::EventHandle delAckTimer_;
    sim::EventHandle persistTimer_;
    sim::EventHandle timeWaitTimer_;
    unsigned rtxRetries_ = 0;
    std::size_t unackedSegsSinceAck_ = 0;
};

} // namespace qpip::inet
