#include "inet/inet_addr.hh"

#include <charconv>
#include <cstdio>
#include <vector>

#include "sim/logging.hh"

namespace qpip::inet {

std::optional<Ipv4Addr>
Ipv4Addr::parse(std::string_view text)
{
    std::uint32_t value = 0;
    int octets = 0;
    std::size_t pos = 0;
    while (octets < 4) {
        std::size_t end = text.find('.', pos);
        std::string_view part = (end == std::string_view::npos)
            ? text.substr(pos)
            : text.substr(pos, end - pos);
        unsigned v = 0;
        auto [p, ec] =
            std::from_chars(part.data(), part.data() + part.size(), v);
        if (ec != std::errc() || p != part.data() + part.size() ||
            v > 255 || part.empty()) {
            return std::nullopt;
        }
        value = (value << 8) | v;
        ++octets;
        if (end == std::string_view::npos)
            break;
        pos = end + 1;
    }
    if (octets != 4)
        return std::nullopt;
    return Ipv4Addr{value};
}

std::string
Ipv4Addr::toString() const
{
    return sim::strfmt("%u.%u.%u.%u", (value >> 24) & 0xff,
                       (value >> 16) & 0xff, (value >> 8) & 0xff,
                       value & 0xff);
}

std::optional<Ipv6Addr>
Ipv6Addr::parse(std::string_view text)
{
    // Split on "::" (at most one).
    std::size_t dcolon = text.find("::");
    if (dcolon != std::string_view::npos &&
        text.find("::", dcolon + 1) != std::string_view::npos) {
        return std::nullopt;
    }

    auto parse_groups =
        [](std::string_view s,
           std::vector<std::uint16_t> &out) -> bool {
        if (s.empty())
            return true;
        std::size_t pos = 0;
        while (true) {
            std::size_t end = s.find(':', pos);
            std::string_view part = (end == std::string_view::npos)
                ? s.substr(pos)
                : s.substr(pos, end - pos);
            if (part.empty() || part.size() > 4)
                return false;
            unsigned v = 0;
            auto [p, ec] = std::from_chars(
                part.data(), part.data() + part.size(), v, 16);
            if (ec != std::errc() || p != part.data() + part.size())
                return false;
            out.push_back(static_cast<std::uint16_t>(v));
            if (end == std::string_view::npos)
                return true;
            pos = end + 1;
        }
    };

    std::vector<std::uint16_t> head, tail;
    if (dcolon == std::string_view::npos) {
        if (!parse_groups(text, head) || head.size() != 8)
            return std::nullopt;
    } else {
        if (!parse_groups(text.substr(0, dcolon), head) ||
            !parse_groups(text.substr(dcolon + 2), tail) ||
            head.size() + tail.size() > 7) {
            return std::nullopt;
        }
    }

    Ipv6Addr addr;
    for (std::size_t i = 0; i < head.size(); ++i) {
        addr.bytes[2 * i] = static_cast<std::uint8_t>(head[i] >> 8);
        addr.bytes[2 * i + 1] = static_cast<std::uint8_t>(head[i]);
    }
    for (std::size_t i = 0; i < tail.size(); ++i) {
        std::size_t g = 8 - tail.size() + i;
        addr.bytes[2 * g] = static_cast<std::uint8_t>(tail[i] >> 8);
        addr.bytes[2 * g + 1] = static_cast<std::uint8_t>(tail[i]);
    }
    return addr;
}

std::string
Ipv6Addr::toString() const
{
    std::uint16_t groups[8];
    for (int i = 0; i < 8; ++i) {
        groups[i] = static_cast<std::uint16_t>(
            (bytes[2 * i] << 8) | bytes[2 * i + 1]);
    }
    // Find the longest run of zero groups (>= 2) to compress.
    int best_start = -1, best_len = 0;
    for (int i = 0; i < 8;) {
        if (groups[i] != 0) {
            ++i;
            continue;
        }
        int j = i;
        while (j < 8 && groups[j] == 0)
            ++j;
        if (j - i > best_len) {
            best_len = j - i;
            best_start = i;
        }
        i = j;
    }
    if (best_len < 2)
        best_start = -1;

    std::string out;
    for (int i = 0; i < 8; ++i) {
        if (i == best_start) {
            out += "::";
            i += best_len - 1;
            continue;
        }
        if (!out.empty() && out.back() != ':')
            out += ':';
        out += sim::strfmt("%x", groups[i]);
    }
    return out;
}

std::optional<InetAddr>
InetAddr::parse(std::string_view text)
{
    if (text.find(':') != std::string_view::npos) {
        auto v6 = Ipv6Addr::parse(text);
        if (!v6)
            return std::nullopt;
        return InetAddr(*v6);
    }
    auto v4 = Ipv4Addr::parse(text);
    if (!v4)
        return std::nullopt;
    return InetAddr(*v4);
}

std::string
InetAddr::toString() const
{
    return isV6() ? v6.toString() : v4.toString();
}

std::string
SockAddr::toString() const
{
    if (addr.isV6())
        return sim::strfmt("[%s]:%u", addr.toString().c_str(), port);
    return sim::strfmt("%s:%u", addr.toString().c_str(), port);
}

std::size_t
InetAddrHash::operator()(const InetAddr &a) const
{
    std::size_t h = static_cast<std::size_t>(a.family) * 0x9e3779b9;
    if (a.isV6()) {
        for (auto b : a.v6.bytes)
            h = h * 131 + b;
    } else {
        h = h * 131 + a.v4.value;
    }
    return h;
}

std::size_t
SockAddrHash::operator()(const SockAddr &a) const
{
    return InetAddrHash()(a.addr) * 65599 + a.port;
}

} // namespace qpip::inet
