#include "inet/tcp_reass.hh"

#include <algorithm>

namespace qpip::inet {

void
TcpReassembly::insert(std::uint64_t offset,
                      std::span<const std::uint8_t> data,
                      std::uint64_t next_expected)
{
    // Trim anything already delivered.
    if (offset < next_expected) {
        const std::uint64_t trim = next_expected - offset;
        if (trim >= data.size())
            return;
        data = data.subspan(static_cast<std::size_t>(trim));
        offset = next_expected;
    }
    if (data.empty())
        return;

    std::uint64_t pos = offset;
    std::uint64_t end = offset + data.size();

    // Walk existing segments, inserting only the gaps (first copy
    // wins on overlap).
    auto it = segments_.upper_bound(pos);
    if (it != segments_.begin()) {
        auto prev = std::prev(it);
        const std::uint64_t prev_end = prev->first + prev->second.size();
        if (prev_end > pos)
            pos = prev_end;
    }
    while (pos < end) {
        it = segments_.lower_bound(pos);
        std::uint64_t gap_end = end;
        if (it != segments_.end())
            gap_end = std::min(gap_end, it->first);
        if (pos < gap_end) {
            const auto base = static_cast<std::size_t>(pos - offset);
            const auto len = static_cast<std::size_t>(gap_end - pos);
            std::vector<std::uint8_t> piece(
                data.begin() + static_cast<std::ptrdiff_t>(base),
                data.begin() + static_cast<std::ptrdiff_t>(base + len));
            bufferedBytes_ += piece.size();
            segments_.emplace(pos, std::move(piece));
        }
        if (it == segments_.end())
            break;
        pos = it->first + it->second.size();
    }
}

std::size_t
TcpReassembly::extract(std::uint64_t next_expected,
                       std::vector<std::uint8_t> &out)
{
    std::size_t n = 0;
    while (!segments_.empty()) {
        auto it = segments_.begin();
        if (it->first != next_expected)
            break;
        out.insert(out.end(), it->second.begin(), it->second.end());
        n += it->second.size();
        next_expected += it->second.size();
        bufferedBytes_ -= it->second.size();
        segments_.erase(it);
    }
    return n;
}

void
TcpReassembly::clear()
{
    segments_.clear();
    bufferedBytes_ = 0;
}

} // namespace qpip::inet
