/**
 * @file
 * The shared inter-network protocol engine — the paper's central
 * claim made structural: *one* TCP/UDP/IP implementation that runs in
 * two execution contexts, the host kernel (HostStack) and the LANai
 * firmware (QpipNic). The engine owns everything that used to be
 * duplicated across those two datapaths:
 *
 *   - IPv4 + IPv6 output with end-to-end fragmentation and the
 *     ident/frag-ident counters;
 *   - receive-side parse, reassembly and protocol dispatch;
 *   - the UDP port table and the TCP PCB (four-tuple) table;
 *   - the drop/demux counters.
 *
 * Everything context-specific — what a cycle costs, where frames go,
 * how time and timers work, who accepts a new connection — is pushed
 * through the InetEnv interface. The engine itself charges nothing:
 * each cost hook is a no-op by default, and the two adapters map the
 * hooks onto HostCostModel charges or FirmwareCostModel stage
 * charges, which is what keeps the paper's Tables 2/3 occupancy
 * numbers identical whichever context the engine runs in.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "inet/ip_frag.hh"
#include "inet/pcb_table.hh"
#include "inet/route.hh"
#include "inet/tcp_conn.hh"
#include "net/packet.hh"
#include "sim/stats.hh"

namespace qpip::inet {

/** Outcome of handing a datagram to InetStack::ipOutput. */
enum class IpSendResult {
    Ok,
    /** No transmit path (no NIC attached). */
    NoLink,
    /** No neighbor entry for the destination. */
    NoRoute,
    /** EMSGSIZE: exceeds the family's datagram limit. */
    MsgSize,
};

/**
 * A bound UDP receiver: the engine's port table maps ports to these.
 * Host UdpSockets and NIC unreliable-QP contexts both implement it.
 */
class UdpEndpoint
{
  public:
    virtual ~UdpEndpoint() = default;

    /** One datagram payload arrived for this port. */
    virtual void udpDeliver(std::vector<std::uint8_t> &&payload,
                            const SockAddr &from) = 0;
};

/**
 * The execution context an InetStack runs in. Generalizes TcpEnv:
 * runtime services (time, timers, randomness, tracing) plus the wire
 * transmit path and the per-stage cost hooks that make host-kernel
 * cycles and firmware stage occupancy pluggable.
 */
class InetEnv
{
  public:
    virtual ~InetEnv() = default;

    // --- runtime services (the TcpEnv subset) -----------------------
    virtual sim::Tick now() = 0;
    virtual sim::EventHandle scheduleTimer(sim::Tick delay,
                                           std::function<void()> fn) = 0;
    virtual std::uint32_t randomIss() = 0;
    virtual sim::Tracer *tracer() { return nullptr; }

    /** Context name for diagnostics. */
    virtual const std::string &inetName() const = 0;

    /**
     * A TCP connection reached Closed and was already removed from
     * the engine's PCB table; release any context-side ownership.
     */
    virtual void connectionClosed(TcpConnection &conn) = 0;

    // --- transmit path ----------------------------------------------
    /**
     * MTU of the egress interface toward @p next_hop, or nullopt when
     * there is no transmit path. Multi-homed contexts (a host with
     * several NICs) resolve the interface per route; the engine always
     * pairs this with a wireTx carrying the same @p next_hop, so the
     * two see one consistent egress decision.
     */
    virtual std::optional<std::uint32_t> txMtu(net::NodeId next_hop) = 0;

    /** Cost of building the IP header (firmware: Build IP Hdr). */
    virtual void chargeIpHeaderTx() {}

    /** Cost of emitting @p extra fragments beyond the first frame. */
    virtual void chargeFragmentsTx(std::size_t extra) { (void)extra; }

    /** Cost of handing frames to the medium (firmware: Send). */
    virtual void chargeMediaSend() {}

    /** Put serialized frames on the wire toward @p dst_node. */
    virtual void wireTx(std::vector<std::vector<std::uint8_t>> &&frames,
                        bool ipv6, net::NodeId dst_node) = 0;

    /**
     * A finished TCP segment leaves the engine. The context charges
     * its transmit-side protocol costs (deferred on the host, staged
     * on the firmware) and feeds the datagram back to ipOutput.
     */
    virtual void emitTcpSegment(IpDatagram &&dgram,
                                const TcpSegMeta &meta) = 0;

    // --- receive path -----------------------------------------------
    /** Per-frame cost before parsing (host IP charge / fw checksum). */
    virtual void chargeRxFrame(std::size_t wire_bytes)
    {
        (void)wire_bytes;
    }

    /** Cost after a frame parsed (firmware: IP Parse/Reassembly). */
    virtual void chargeIpParsed(bool fragment) { (void)fragment; }

    /** TCP input cost for a parsed segment. */
    virtual void chargeTcpInput(std::size_t payload_bytes, bool pure_ack)
    {
        (void)payload_bytes;
        (void)pure_ack;
    }

    /** UDP cost charged before the datagram is parsed (firmware). */
    virtual void chargeUdpPreParse() {}

    /** UDP cost charged after the datagram is parsed (host). */
    virtual void chargeUdpInput(std::size_t payload_bytes)
    {
        (void)payload_bytes;
    }

    // --- demux upcalls ----------------------------------------------
    /**
     * A SYN arrived for @p t with no matching connection. Accept it
     * (create a connection, register it, open passive) and return
     * true, or return false to refuse.
     */
    virtual bool tcpAccept(const FourTuple &t, const TcpHeader &syn) = 0;

    /**
     * A non-SYN segment matched nothing (counted as a no-match drop
     * already). Hosts answer with RST; firmware silently drops.
     */
    virtual void tcpRefused(const IpDatagram &dgram, const TcpHeader &hdr,
                            std::span<const std::uint8_t> payload)
    {
        (void)dgram;
        (void)hdr;
        (void)payload;
    }
};

/**
 * The engine. One instance per execution context; also the TcpEnv its
 * TcpConnections run against.
 */
class InetStack : public TcpEnv
{
  public:
    explicit InetStack(InetEnv &env,
                       sim::Tick reass_timeout = 60 * sim::oneSec);

    // --- addressing and routing -------------------------------------
    void addLocalAddress(const InetAddr &addr);
    bool isLocal(const InetAddr &addr) const;
    NeighborTable &routes() { return routes_; }

    // --- transmit ----------------------------------------------------
    /**
     * Emit @p dgram: loopback to local addresses, otherwise fragment
     * to the link MTU (either family) and hand the frames to the
     * context's wire.
     */
    IpSendResult ipOutput(IpDatagram &&dgram);

    /** Largest IP payload the family's wire format can carry. */
    static std::size_t maxIpPayload(const InetAddr &dst);

    // --- receive ------------------------------------------------------
    /** One link frame arrived (after context-side media costs). */
    void wireInput(net::NetProto proto,
                   std::span<const std::uint8_t> bytes);

    /** Dispatch a whole datagram (loopback and reassembled paths). */
    void ipInput(IpDatagram dgram);

    // --- TCP PCB table ------------------------------------------------
    void registerConn(const FourTuple &t, TcpConnection *conn);
    void unregisterConn(const FourTuple &t);
    TcpConnection *lookupConn(const FourTuple &t) const;

    // --- UDP port table -----------------------------------------------
    /** @return false if the port is already bound. */
    bool bindUdp(std::uint16_t port, UdpEndpoint *ep);
    void unbindUdp(std::uint16_t port);

    // --- TcpEnv (forwarded to the context) ----------------------------
    sim::Tick now() override;
    sim::EventHandle scheduleTimer(sim::Tick delay,
                                   std::function<void()> fn) override;
    void tcpOutput(IpDatagram &&dgram, const TcpSegMeta &meta) override;
    std::uint32_t randomIss() override;
    void connectionClosed(TcpConnection &conn) override;
    sim::Tracer *tracer() override;

    // Counters; the owning context registers them under its own
    // legacy stat names.
    sim::Counter pktsOut;
    sim::Counter loopbackPkts;
    sim::Counter badFrames;
    sim::Counter noMatchDrops;
    sim::Counter msgSizeDrops;

    IpReassembler &reassembler() { return reass_; }

  private:
    void deliverTcp(IpDatagram &dgram);
    void deliverUdp(IpDatagram &dgram);

    InetEnv &env_;
    NeighborTable routes_;
    /** Ordered: address/port sets walk in key order when scanned. */
    std::set<InetAddr> localAddrs_;
    PcbTable<TcpConnection, void> tcp_;
    std::map<std::uint16_t, UdpEndpoint *> udpPorts_;
    IpReassembler reass_;
    std::uint16_t identCounter_ = 1;
    std::uint32_t fragIdent_ = 1;
};

} // namespace qpip::inet
