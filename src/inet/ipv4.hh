/**
 * @file
 * IPv4 header (RFC 791, no options) serialization and parsing with
 * header checksum generation/verification and in-header fragmentation
 * fields. Used by the host-based baseline stack (the paper's "Linux
 * host-based IPv4 stack over Gigabit Ethernet") and, through the
 * shared InetStack, by the QPIP firmware when configured for v4.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "inet/ip.hh"

namespace qpip::inet {

constexpr std::size_t ipv4HeaderBytes = 20;

/**
 * Serialize @p dgram into IPv4 wire bytes (header checksum computed).
 * Emits the unfragmented form: DF set, offset 0 (the TCP
 * path-MTU-discovery era default).
 * @param ident IP identification field (for fragment grouping).
 * @pre both addresses are IPv4.
 */
std::vector<std::uint8_t> serializeIpv4(const IpDatagram &dgram,
                                        std::uint16_t ident);

/**
 * Serialize one fragment of @p dgram: header with MF/offset fields
 * set, carrying @p slice of the original upper-layer payload.
 */
std::vector<std::uint8_t>
serializeIpv4Fragment(const IpDatagram &dgram, std::uint16_t ident,
                      std::uint16_t offset_bytes, bool more_fragments,
                      std::span<const std::uint8_t> slice);

/**
 * Parse IPv4 wire bytes into the family-neutral frame view,
 * surfacing the fragmentation fields.
 * @return false on truncation, bad version, bad checksum or length
 *         mismatch.
 */
bool parseIpv4(std::span<const std::uint8_t> wire, IpFrame &out);

/**
 * Parse an unfragmented IPv4 packet straight into a datagram.
 * @return false on any wire error or if the packet is a fragment;
 *         @p out is untouched on failure.
 */
bool parseIpv4(std::span<const std::uint8_t> wire, IpDatagram &out);

} // namespace qpip::inet
