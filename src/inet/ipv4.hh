/**
 * @file
 * IPv4 header (RFC 791, no options) serialization and parsing with
 * header checksum generation/verification. Used by the host-based
 * baseline stack (the paper's "Linux host-based IPv4 stack over
 * Gigabit Ethernet").
 */

#ifndef QPIP_INET_IPV4_HH
#define QPIP_INET_IPV4_HH

#include <cstdint>
#include <span>
#include <vector>

#include "inet/ip.hh"

namespace qpip::inet {

constexpr std::size_t ipv4HeaderBytes = 20;

/**
 * Serialize @p dgram into IPv4 wire bytes (header checksum computed).
 * @param ident IP identification field (for fragment grouping).
 * @pre both addresses are IPv4.
 */
std::vector<std::uint8_t> serializeIpv4(const IpDatagram &dgram,
                                        std::uint16_t ident);

/**
 * Parse IPv4 wire bytes.
 * @return false on truncation, bad version, bad checksum or length
 *         mismatch; @p out is untouched on failure.
 */
bool parseIpv4(std::span<const std::uint8_t> wire, IpDatagram &out);

} // namespace qpip::inet

#endif // QPIP_INET_IPV4_HH
