/**
 * @file
 * IPv6 (RFC 2460) fixed header plus the Fragment extension header.
 * The QPIP firmware speaks IPv6 ("we believe it reflects the next
 * generation of network systems"); its end-to-end-only fragmentation
 * model is what makes NIC-resident fragmentation tractable, and is
 * how the prototype carries 16 KB message-segments over 1500/9000 B
 * MTUs in the Figure 4 sweep.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "inet/ip.hh"

namespace qpip::inet {

constexpr std::size_t ipv6HeaderBytes = 40;
constexpr std::size_t ipv6FragHeaderBytes = 8;

/**
 * Parsed view of an IPv6 packet that may carry a fragment header —
 * the family-neutral IpFrame (ip.hh) fits IPv6 exactly.
 */
using Ipv6Packet = IpFrame;

/** Serialize an unfragmented IPv6 packet. @pre addresses are IPv6. */
std::vector<std::uint8_t> serializeIpv6(const IpDatagram &dgram);

/**
 * Serialize one fragment: fixed header + fragment extension header +
 * @p slice of the original upper-layer payload.
 */
std::vector<std::uint8_t>
serializeIpv6Fragment(const IpDatagram &dgram, std::uint32_t ident,
                      std::uint16_t offset_bytes, bool more_fragments,
                      std::span<const std::uint8_t> slice);

/**
 * Parse IPv6 wire bytes (fixed header + optional fragment header).
 * @return false on truncation or bad version.
 */
bool parseIpv6(std::span<const std::uint8_t> wire, Ipv6Packet &out);

} // namespace qpip::inet
