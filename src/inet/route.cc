#include "inet/route.hh"

namespace qpip::inet {

void
NeighborTable::add(const InetAddr &addr, net::NodeId node)
{
    table_[addr] = node;
}

std::optional<net::NodeId>
NeighborTable::lookup(const InetAddr &addr) const
{
    auto it = table_.find(addr);
    if (it == table_.end())
        return std::nullopt;
    return it->second;
}

} // namespace qpip::inet
