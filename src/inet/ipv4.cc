#include "inet/ipv4.hh"

#include "inet/checksum.hh"
#include "net/packet.hh"
#include "net/serialize.hh"
#include "sim/logging.hh"

namespace qpip::inet {

namespace {

constexpr std::uint16_t ipv4FlagDf = 0x4000;
constexpr std::uint16_t ipv4FlagMf = 0x2000;
constexpr std::uint16_t ipv4OffsetMask = 0x1fff;

std::vector<std::uint8_t>
writeIpv4(const IpDatagram &dgram, std::uint16_t ident,
          std::uint16_t flags_frag, std::span<const std::uint8_t> body)
{
    if (dgram.src.isV6() || dgram.dst.isV6())
        sim::panic("serializeIpv4 with IPv6 addresses");

    std::vector<std::uint8_t> out = net::acquireBuffer();
    out.reserve(ipv4HeaderBytes + body.size());
    net::ByteWriter w(out);
    w.u8(0x45); // version 4, IHL 5
    w.u8(0);    // TOS
    w.u16(static_cast<std::uint16_t>(ipv4HeaderBytes + body.size()));
    w.u16(ident);
    w.u16(flags_frag);
    w.u8(dgram.hopLimit);
    w.u8(static_cast<std::uint8_t>(dgram.proto));
    const std::size_t cksum_off = out.size();
    w.u16(0); // checksum placeholder
    w.u32(dgram.src.v4.value);
    w.u32(dgram.dst.v4.value);
    w.patchU16(cksum_off, internetChecksum(out));
    w.bytes(body);
    return out;
}

} // namespace

std::vector<std::uint8_t>
serializeIpv4(const IpDatagram &dgram, std::uint16_t ident)
{
    // DF set, offset 0 (TCP path-MTU era default).
    return writeIpv4(dgram, ident, ipv4FlagDf, dgram.payload);
}

std::vector<std::uint8_t>
serializeIpv4Fragment(const IpDatagram &dgram, std::uint16_t ident,
                      std::uint16_t offset_bytes, bool more_fragments,
                      std::span<const std::uint8_t> slice)
{
    if (offset_bytes % 8 != 0)
        sim::panic("fragment offset %u not a multiple of 8",
                   offset_bytes);
    const std::uint16_t flags_frag = static_cast<std::uint16_t>(
        (more_fragments ? ipv4FlagMf : 0) | (offset_bytes >> 3));
    return writeIpv4(dgram, ident, flags_frag, slice);
}

bool
parseIpv4(std::span<const std::uint8_t> wire, IpFrame &out)
{
    if (wire.size() < ipv4HeaderBytes)
        return false;
    net::ByteReader r(wire);
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4 || (ver_ihl & 0x0f) != 5)
        return false;
    r.u8(); // TOS
    const std::uint16_t total_len = r.u16();
    const std::uint16_t ident = r.u16();
    const std::uint16_t flags_frag = r.u16();
    const std::uint8_t ttl = r.u8();
    const std::uint8_t proto = r.u8();
    r.u16(); // checksum (verified over whole header below)
    const std::uint32_t src = r.u32();
    const std::uint32_t dst = r.u32();
    if (!r.ok())
        return false;
    if (total_len < ipv4HeaderBytes || total_len > wire.size())
        return false;
    if (!checksumOk(wire.subspan(0, ipv4HeaderBytes)))
        return false;

    out.src = InetAddr(Ipv4Addr{src});
    out.dst = InetAddr(Ipv4Addr{dst});
    out.proto = static_cast<IpProto>(proto);
    out.hopLimit = ttl;
    out.frag.reset();
    const std::uint16_t offset =
        static_cast<std::uint16_t>((flags_frag & ipv4OffsetMask) << 3);
    const bool more = (flags_frag & ipv4FlagMf) != 0;
    if (offset != 0 || more) {
        IpFrame::FragInfo fi;
        fi.ident = ident;
        fi.offsetBytes = offset;
        fi.moreFragments = more;
        out.frag = fi;
    }
    auto body = wire.subspan(ipv4HeaderBytes,
                             total_len - ipv4HeaderBytes);
    out.payload = net::acquireBuffer();
    out.payload.assign(body.begin(), body.end());
    return true;
}

bool
parseIpv4(std::span<const std::uint8_t> wire, IpDatagram &out)
{
    IpFrame frame;
    if (!parseIpv4(wire, frame) || frame.frag)
        return false;
    out.src = frame.src;
    out.dst = frame.dst;
    out.proto = frame.proto;
    out.hopLimit = frame.hopLimit;
    out.payload = std::move(frame.payload);
    return true;
}

} // namespace qpip::inet
