#include "inet/udp.hh"

#include "inet/checksum.hh"
#include "net/packet.hh"
#include "net/serialize.hh"

namespace qpip::inet {

void
addPseudoHeader(ChecksumAccumulator &acc, const InetAddr &src,
                const InetAddr &dst, IpProto proto, std::uint32_t l4_len)
{
    if (src.isV6()) {
        acc.add(src.v6.bytes);
        acc.add(dst.v6.bytes);
        acc.addU32(l4_len);
        acc.addU32(static_cast<std::uint32_t>(proto));
    } else {
        acc.addU32(src.v4.value);
        acc.addU32(dst.v4.value);
        acc.addU16(static_cast<std::uint16_t>(proto));
        acc.addU16(static_cast<std::uint16_t>(l4_len));
    }
}

std::vector<std::uint8_t>
serializeUdp(const InetAddr &src, const InetAddr &dst,
             std::uint16_t src_port, std::uint16_t dst_port,
             std::span<const std::uint8_t> payload)
{
    const auto len =
        static_cast<std::uint16_t>(udpHeaderBytes + payload.size());
    std::vector<std::uint8_t> out = net::acquireBuffer();
    out.reserve(len);
    net::ByteWriter w(out);
    w.u16(src_port);
    w.u16(dst_port);
    w.u16(len);
    w.u16(0); // checksum placeholder
    w.bytes(payload);

    ChecksumAccumulator acc;
    addPseudoHeader(acc, src, dst, IpProto::Udp, len);
    acc.add(out);
    std::uint16_t cksum = acc.finish();
    if (cksum == 0)
        cksum = 0xffff; // RFC 768: 0 means "no checksum"
    w.patchU16(6, cksum);
    return out;
}

bool
parseUdp(const InetAddr &src, const InetAddr &dst,
         std::span<const std::uint8_t> bytes, UdpHeader &hdr,
         std::span<const std::uint8_t> &payload)
{
    if (bytes.size() < udpHeaderBytes)
        return false;
    net::ByteReader r(bytes);
    hdr.srcPort = r.u16();
    hdr.dstPort = r.u16();
    hdr.length = r.u16();
    const std::uint16_t cksum = r.u16();
    if (hdr.length < udpHeaderBytes || hdr.length > bytes.size())
        return false;

    if (cksum != 0) {
        ChecksumAccumulator acc;
        addPseudoHeader(acc, src, dst, IpProto::Udp, hdr.length);
        acc.add(bytes.subspan(0, hdr.length));
        if (acc.finish() != 0)
            return false;
    }
    payload = bytes.subspan(udpHeaderBytes, hdr.length - udpHeaderBytes);
    return true;
}

} // namespace qpip::inet
