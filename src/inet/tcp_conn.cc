#include "inet/tcp_conn.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

#define TCP_TRACE(...) \
    sim::debugLog(sim::LogLevel::Trace, "tcp", __VA_ARGS__)

namespace qpip::inet {

using sim::Tick;

const char *
tcpStateName(TcpState s)
{
    switch (s) {
      case TcpState::Closed: return "Closed";
      case TcpState::SynSent: return "SynSent";
      case TcpState::SynRcvd: return "SynRcvd";
      case TcpState::Established: return "Established";
      case TcpState::FinWait1: return "FinWait1";
      case TcpState::FinWait2: return "FinWait2";
      case TcpState::CloseWait: return "CloseWait";
      case TcpState::Closing: return "Closing";
      case TcpState::LastAck: return "LastAck";
      case TcpState::TimeWait: return "TimeWait";
    }
    return "?";
}

void
TcpStats::registerIn(sim::StatRegistry &registry, std::string prefix)
{
    group_.clear();
    group_.init(registry, std::move(prefix));
    group_.add("segsOut", segsOut);
    group_.add("segsIn", segsIn);
    group_.add("bytesOut", bytesOut);
    group_.add("bytesIn", bytesIn);
    group_.add("retransmits", retransmits);
    group_.add("fastRetransmits", fastRetransmits);
    group_.add("timeouts", timeouts);
    group_.add("dupAcksIn", dupAcksIn);
    group_.add("oooSegments", oooSegments);
    group_.add("oooDropped", oooDropped);
    group_.add("hdrPredicted", hdrPredicted);
    group_.add("msgRefused", msgRefused);
    group_.add("persistProbes", persistProbes);
    group_.add("badSegments", badSegments);
}

TcpConnection::TcpConnection(TcpEnv &env, TcpObserver &observer,
                             TcpConfig config)
    : env_(env), observer_(observer), cfg_(config),
      rtt_(config.minRto, config.maxRto)
{}

void
TcpConnection::transition(TcpState next)
{
    const TcpState prev = state_;
    state_ = next;
    if (prev == next)
        return;
    sim::Tracer *tr = env_.tracer();
    if (tr != nullptr && tr->enabled()) {
        tr->instant("tcp",
                    std::string(tcpStateName(prev)) + "->" +
                        tcpStateName(next),
                    env_.now(),
                    sim::strfmt("{\"lport\": %u, \"rport\": %u}",
                                tuple_.local.port, tuple_.remote.port));
    }
}

TcpConnection::~TcpConnection()
{
    rtxTimer_.cancel();
    delAckTimer_.cancel();
    persistTimer_.cancel();
    timeWaitTimer_.cancel();
}

std::uint32_t
TcpConnection::effMss() const
{
    return std::min(cfg_.mss, static_cast<std::uint32_t>(peerMss_));
}

std::uint32_t
TcpConnection::tsNow() const
{
    return static_cast<std::uint32_t>(env_.now() / cfg_.tsGranularity);
}

// --------------------------------------------------------------------
// Open paths
// --------------------------------------------------------------------

void
TcpConnection::openActive(const SockAddr &local, const SockAddr &remote)
{
    tuple_ = FourTuple{local, remote};
    iss_ = env_.randomIss();
    sndUna_ = iss_;
    sndNxt_ = iss_ + 1;
    sndMaxSeen_ = sndNxt_;
    transition(TcpState::SynSent);

    OutSpec syn;
    syn.seq = iss_;
    syn.flags = tcpflags::syn;
    syn.withOptionsForSyn = true;
    emitSegment(syn);
    armRtxTimer();
}

void
TcpConnection::openPassive(const SockAddr &local, const SockAddr &remote,
                           const TcpHeader &syn)
{
    tuple_ = FourTuple{local, remote};
    irs_ = syn.seq;
    rcvNxt_ = irs_ + 1;
    iss_ = env_.randomIss();
    sndUna_ = iss_;
    sndNxt_ = iss_ + 1;
    sndMaxSeen_ = sndNxt_;

    tsEnabled_ = cfg_.useTimestamps && syn.timestamps.has_value();
    if (tsEnabled_)
        tsRecent_ = syn.timestamps->value;
    wsEnabled_ = cfg_.useWindowScale && syn.wscale.has_value();
    if (wsEnabled_) {
        sndScale_ = *syn.wscale;
        rcvScale_ = cfg_.windowScale;
    }
    peerMss_ = syn.mss.value_or(536);
    // Window field in a SYN is never scaled.
    sndWnd_ = syn.wnd;
    sndWl1_ = syn.seq;
    sndWl2_ = iss_;

    transition(TcpState::SynRcvd);
    OutSpec synack;
    synack.seq = iss_;
    synack.flags = tcpflags::syn | tcpflags::ack;
    synack.withOptionsForSyn = true;
    emitSegment(synack);
    armRtxTimer();
}

// --------------------------------------------------------------------
// User send interface
// --------------------------------------------------------------------

std::size_t
TcpConnection::sendSpace() const
{
    const std::size_t used = sndBuf_.size();
    return used >= cfg_.sendBufBytes ? 0 : cfg_.sendBufBytes - used;
}

std::size_t
TcpConnection::send(std::span<const std::uint8_t> data)
{
    if (cfg_.messageMode)
        sim::panic("stream send() on a message-mode connection");
    if (finQueued_ || state_ == TcpState::Closed)
        return 0;
    const std::size_t n = std::min(data.size(), sendSpace());
    if (n == 0)
        return 0;
    sndBuf_.append(data.subspan(0, n));
    if (established() || state_ == TcpState::CloseWait)
        trySend();
    return n;
}

void
TcpConnection::sendMessage(std::vector<std::uint8_t> data,
                           std::uint64_t tag)
{
    if (!cfg_.messageMode)
        sim::panic("sendMessage() on a stream-mode connection");
    if (data.empty())
        sim::panic("empty TCP message");
    PendingMsg msg;
    msg.data = std::move(data);
    msg.tag = tag;
    sendQueue_.push_back(std::move(msg));
    if (established() || state_ == TcpState::CloseWait)
        trySend();
}

void
TcpConnection::close()
{
    if (finQueued_ || state_ == TcpState::Closed)
        return;
    if (state_ == TcpState::SynSent) {
        // Nothing on the wire worth finishing.
        toClosed(false);
        return;
    }
    finQueued_ = true;
    maybeSendFin();
}

void
TcpConnection::abort()
{
    if (state_ != TcpState::Closed && state_ != TcpState::SynSent)
        sendRst(sndNxt_, rcvNxt_, true);
    toClosed(false);
}

// --------------------------------------------------------------------
// Segment emission
// --------------------------------------------------------------------

std::uint32_t
TcpConnection::currentAdvertiseWindow()
{
    std::uint32_t w = observer_.receiveWindow(*this);
    const std::uint32_t cap = wsEnabled_
        ? (std::uint32_t(65535) << rcvScale_)
        : 65535;
    w = std::min(w, cap);
    // Never shrink the advertised right edge (RFC 793 SHLD).
    const std::uint32_t edge = rcvNxt_ + w;
    if (state_ != TcpState::SynSent && state_ != TcpState::Closed &&
        rcvAdvertised_ != 0 && seqLt(edge, rcvAdvertised_)) {
        w = rcvAdvertised_ - rcvNxt_;
    }
    return w;
}

void
TcpConnection::emitSegment(const OutSpec &spec)
{
    TcpHeader hdr;
    hdr.srcPort = tuple_.local.port;
    hdr.dstPort = tuple_.remote.port;
    hdr.seq = spec.seq;
    hdr.flags = spec.flags;
    if (hdr.has(tcpflags::ack))
        hdr.ack = rcvNxt_;

    const std::uint32_t adv = currentAdvertiseWindow();
    if (hdr.has(tcpflags::syn)) {
        hdr.wnd = static_cast<std::uint16_t>(std::min<std::uint32_t>(
            adv, 65535));
        if (spec.withOptionsForSyn) {
            hdr.mss = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(cfg_.mss, 65535));
            if (cfg_.useWindowScale)
                hdr.wscale = cfg_.windowScale;
            const bool offer_ts = (state_ == TcpState::SynSent)
                ? cfg_.useTimestamps
                : tsEnabled_;
            if (offer_ts)
                hdr.timestamps = TcpTimestamps{tsNow(), tsRecent_};
        }
    } else {
        // Round up to the scale granularity: a small nonzero window
        // (e.g. one posted 1-byte buffer) must not quantize to zero.
        const std::uint32_t gran = std::uint32_t(1) << rcvScale_;
        const std::uint32_t scaled =
            adv == 0 ? 0 : (adv + gran - 1) >> rcvScale_;
        hdr.wnd = static_cast<std::uint16_t>(
            std::min<std::uint32_t>(scaled, 65535));
        if (tsEnabled_)
            hdr.timestamps = TcpTimestamps{tsNow(), tsRecent_};
        rcvAdvertised_ =
            rcvNxt_ + (std::uint32_t(hdr.wnd) << rcvScale_);
    }
    if (hdr.has(tcpflags::syn))
        rcvAdvertised_ = rcvNxt_ + adv;

    IpDatagram dgram;
    dgram.src = tuple_.local.addr;
    dgram.dst = tuple_.remote.addr;
    dgram.proto = IpProto::Tcp;
    dgram.payload = serializeTcp(tuple_.local.addr, tuple_.remote.addr,
                                 hdr, spec.payload);

    TcpSegMeta meta;
    meta.flags = hdr.flags;
    meta.payloadBytes = spec.payload.size();
    meta.retransmit = spec.retransmit;
    meta.pureAck = spec.payload.empty() &&
                   !(hdr.flags &
                     (tcpflags::syn | tcpflags::fin | tcpflags::rst));

    stats_.segsOut.inc();
    stats_.bytesOut.inc(spec.payload.size());
    if (spec.retransmit)
        stats_.retransmits.inc();

    // Any segment carrying our current rcvNxt_ acknowledges received
    // data; reset delayed-ACK machinery.
    if (hdr.has(tcpflags::ack)) {
        delAckTimer_.cancel();
        unackedSegsSinceAck_ = 0;
    }

    // Start an RTT timing on fresh data if idle (Karn fallback when
    // timestamps are off).
    if (!tsEnabled_ && !rttTiming_ && !spec.retransmit &&
        !spec.payload.empty()) {
        rttTiming_ = true;
        rttSeq_ = spec.seq;
        rttStamp_ = env_.now();
        retransmittedSinceTiming_ = false;
    }
    if (spec.retransmit)
        retransmittedSinceTiming_ = true;

    env_.tcpOutput(std::move(dgram), meta);
}

void
TcpConnection::sendAck()
{
    OutSpec ack;
    ack.seq = sndNxt_;
    ack.flags = tcpflags::ack;
    emitSegment(ack);
}

void
TcpConnection::sendRst(std::uint32_t seq, std::uint32_t ack, bool with_ack)
{
    TcpHeader hdr;
    hdr.srcPort = tuple_.local.port;
    hdr.dstPort = tuple_.remote.port;
    hdr.seq = seq;
    hdr.flags = tcpflags::rst;
    if (with_ack) {
        hdr.flags |= tcpflags::ack;
        hdr.ack = ack;
    }
    IpDatagram dgram;
    dgram.src = tuple_.local.addr;
    dgram.dst = tuple_.remote.addr;
    dgram.proto = IpProto::Tcp;
    dgram.payload =
        serializeTcp(tuple_.local.addr, tuple_.remote.addr, hdr, {});
    TcpSegMeta meta;
    meta.flags = hdr.flags;
    stats_.segsOut.inc();
    env_.tcpOutput(std::move(dgram), meta);
}

// --------------------------------------------------------------------
// Transmit scheduling
// --------------------------------------------------------------------

std::uint32_t
TcpConnection::usableWindowBytes() const
{
    const std::uint32_t wnd = std::min(cwnd_, sndWnd_);
    const std::uint32_t inflight = sndNxt_ - sndUna_;
    return wnd > inflight ? wnd - inflight : 0;
}

void
TcpConnection::trySend(bool force_one)
{
    if (state_ != TcpState::Established &&
        state_ != TcpState::CloseWait && state_ != TcpState::FinWait1 &&
        state_ != TcpState::Closing && state_ != TcpState::LastAck) {
        return;
    }
    if (cfg_.messageMode)
        trySendMessages();
    else
        trySendStream();
    (void)force_one;
    maybeSendFin();
}

void
TcpConnection::trySendStream()
{
    const std::uint32_t mss = effMss();
    while (true) {
        const std::uint32_t inflight = sndNxt_ - sndUna_;
        if (sndBuf_.size() < inflight)
            sim::panic("send buffer behind sndNxt");
        const std::size_t avail = sndBuf_.size() - inflight;
        if (avail == 0)
            break;
        const std::uint32_t usable = usableWindowBytes();
        std::size_t len = std::min<std::size_t>({mss, avail, usable});
        if (len == 0) {
            if (sndWnd_ == 0 && inflight == 0)
                armPersist();
            break;
        }
        // Nagle / silly-window avoidance: don't emit a short segment
        // while data is outstanding unless it empties the buffer with
        // NODELAY set.
        if (len < mss && inflight > 0) {
            const bool closes_buffer = len == avail && cfg_.noDelay;
            if (!closes_buffer)
                break;
        }

        segScratch_.resize(len);
        sndBuf_.copyOut(inflight, len, segScratch_.data());

        OutSpec spec;
        spec.seq = sndNxt_;
        spec.flags = tcpflags::ack;
        if (len == avail)
            spec.flags |= tcpflags::psh;
        spec.payload = segScratch_;
        sndNxt_ += static_cast<std::uint32_t>(len);
        if (seqGt(sndNxt_, sndMaxSeen_))
            sndMaxSeen_ = sndNxt_;
        emitSegment(spec);
        armRtxTimer();
    }
}

void
TcpConnection::trySendMessages()
{
    while (firstUnsent_ < sendQueue_.size()) {
        if (firstUnsent_ >= cwndSegs_)
            break; // entries [0, firstUnsent_) are all in flight
        PendingMsg &msg = sendQueue_[firstUnsent_];
        const std::uint32_t inflight = sndNxt_ - sndUna_;
        const std::uint32_t room =
            sndWnd_ > inflight ? sndWnd_ - inflight : 0;
        if (msg.data.size() > room) {
            TCP_TRACE("msg %zuB > room %u (wnd=%u fly=%u)",
                      msg.data.size(), room, sndWnd_, inflight);
            if (inflight == 0)
                armPersist();
            break;
        }
        msg.seqStart = sndNxt_;
        msg.sent = true;
        OutSpec spec;
        spec.seq = sndNxt_;
        spec.flags = tcpflags::ack | tcpflags::psh;
        spec.payload = msg.data;
        sndNxt_ += static_cast<std::uint32_t>(msg.data.size());
        if (seqGt(sndNxt_, sndMaxSeen_))
            sndMaxSeen_ = sndNxt_;
        ++firstUnsent_;
        emitSegment(spec);
        armRtxTimer();
    }
}

void
TcpConnection::maybeSendFin()
{
    if (!finQueued_ || finSent_)
        return;
    // All queued data must be on the wire first.
    const std::uint32_t inflight = sndNxt_ - sndUna_;
    const bool stream_drained =
        cfg_.messageMode || sndBuf_.size() == inflight;
    const bool msgs_drained =
        !cfg_.messageMode || firstUnsent_ == sendQueue_.size();
    if (!stream_drained || !msgs_drained)
        return;

    finSeq_ = sndNxt_;
    finSent_ = true;
    OutSpec fin;
    fin.seq = sndNxt_;
    fin.flags = tcpflags::fin | tcpflags::ack;
    sndNxt_ += 1;
    if (seqGt(sndNxt_, sndMaxSeen_))
        sndMaxSeen_ = sndNxt_;

    if (state_ == TcpState::Established)
        transition(TcpState::FinWait1);
    else if (state_ == TcpState::CloseWait)
        transition(TcpState::LastAck);

    emitSegment(fin);
    armRtxTimer();
}

// --------------------------------------------------------------------
// Timers
// --------------------------------------------------------------------

void
TcpConnection::armRtxTimer()
{
    const bool outstanding =
        sndNxt_ != sndUna_ || state_ == TcpState::SynSent ||
        state_ == TcpState::SynRcvd;
    if (!outstanding) {
        cancelRtxTimer();
        return;
    }
    if (rtxTimer_.pending())
        return;
    rtxTimer_ = env_.scheduleTimer(rtt_.rto(), [this] {
        onRtxTimeout();
    });
}

void
TcpConnection::cancelRtxTimer()
{
    rtxTimer_.cancel();
}

void
TcpConnection::onRtxTimeout()
{
    stats_.timeouts.inc();
    ++rtxRetries_;
    rtt_.backoff();
    retransmittedSinceTiming_ = true;
    rttTiming_ = false;
    dupAcks_ = 0;
    // RTO recovery also retransmits the old window NewReno-style.
    inRecovery_ = true;
    recover_ = sndNxt_;

    if (state_ == TcpState::SynSent || state_ == TcpState::SynRcvd) {
        if (rtxRetries_ > cfg_.maxSynRetries) {
            toClosed(true);
            return;
        }
        OutSpec syn;
        syn.seq = iss_;
        syn.flags = (state_ == TcpState::SynSent)
            ? tcpflags::syn
            : static_cast<std::uint8_t>(tcpflags::syn | tcpflags::ack);
        syn.withOptionsForSyn = true;
        syn.retransmit = true;
        emitSegment(syn);
        armRtxTimer();
        return;
    }

    if (rtxRetries_ > cfg_.maxRtxRetries) {
        sendRst(sndNxt_, rcvNxt_, true);
        toClosed(true);
        return;
    }

    onLossDetected(true);
    retransmitOldest();
    armRtxTimer();
}

void
TcpConnection::armDelAck()
{
    if (delAckTimer_.pending())
        return;
    delAckTimer_ = env_.scheduleTimer(cfg_.delAckTimeout, [this] {
        onDelAckTimeout();
    });
}

void
TcpConnection::onDelAckTimeout()
{
    if (unackedSegsSinceAck_ > 0)
        sendAck();
}

void
TcpConnection::armPersist()
{
    if (persistTimer_.pending() || rtxTimer_.pending())
        return;
    TCP_TRACE("arming persist timer (%llu us)",
              static_cast<unsigned long long>(
                  cfg_.persistInterval / sim::oneUs));
    persistTimer_ = env_.scheduleTimer(cfg_.persistInterval, [this] {
        onPersistTimeout();
    });
}

void
TcpConnection::onPersistTimeout()
{
    // Probe whenever data is waiting and the window cannot take the
    // next chunk — a tiny-but-nonzero window blocks a whole message
    // (or an MSS) just as thoroughly as a zero one.
    const std::uint32_t inflight = sndNxt_ - sndUna_;
    const std::uint32_t room =
        sndWnd_ > inflight ? sndWnd_ - inflight : 0;
    bool blocked = false;
    if (cfg_.messageMode) {
        blocked = firstUnsent_ < sendQueue_.size() &&
                  sendQueue_[firstUnsent_].data.size() > room;
    } else {
        blocked = sndBuf_.size() > inflight && room == 0;
    }
    if (!blocked) {
        trySend();
        return;
    }
    stats_.persistProbes.inc();
    TCP_TRACE("persist probe at una-1");
    // BSD-style probe: one garbage byte below sndUna_ forces a
    // duplicate-data ACK carrying the peer's current window.
    static const std::uint8_t garbage[1] = {0};
    OutSpec probe;
    probe.seq = sndUna_ - 1;
    probe.flags = tcpflags::ack;
    probe.payload = std::span<const std::uint8_t>(garbage, 1);
    probe.retransmit = true;
    emitSegment(probe);
    armPersist();
}

void
TcpConnection::enterTimeWait()
{
    transition(TcpState::TimeWait);
    cancelRtxTimer();
    timeWaitTimer_.cancel();
    timeWaitTimer_ = env_.scheduleTimer(2 * cfg_.msl, [this] {
        toClosed(false);
    });
}

// --------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------

bool
TcpConnection::headerPredicted(const TcpHeader &hdr,
                               std::size_t payload_len)
{
    if (state_ != TcpState::Established)
        return false;
    if (hdr.flags & ~(tcpflags::ack | tcpflags::psh))
        return false;
    if (hdr.seq != rcvNxt_)
        return false;
    const std::uint32_t wnd = std::uint32_t(hdr.wnd) << sndScale_;
    if (wnd != sndWnd_)
        return false;
    if (payload_len > 0)
        return seqGe(hdr.ack, sndUna_); // in-order data fast path
    return seqGt(hdr.ack, sndUna_) && seqLe(hdr.ack, sndNxt_);
}

void
TcpConnection::segmentArrived(const TcpHeader &hdr,
                              std::span<const std::uint8_t> payload)
{
    stats_.segsIn.inc();
    stats_.bytesIn.inc(payload.size());

    if (state_ == TcpState::Closed)
        return;

    if (hdr.has(tcpflags::rst)) {
        if (state_ == TcpState::SynSent && !hdr.has(tcpflags::ack))
            return;
        toClosed(true);
        return;
    }

    if (state_ == TcpState::SynSent) {
        processSynSent(hdr);
        return;
    }

    if (headerPredicted(hdr, payload.size()))
        stats_.hdrPredicted.inc();

    // SYN retransmission while we sit in SynRcvd: repeat the SYN|ACK.
    if (state_ == TcpState::SynRcvd && hdr.has(tcpflags::syn) &&
        !hdr.has(tcpflags::ack)) {
        OutSpec synack;
        synack.seq = iss_;
        synack.flags = tcpflags::syn | tcpflags::ack;
        synack.withOptionsForSyn = true;
        synack.retransmit = true;
        emitSegment(synack);
        return;
    }

    if (!hdr.has(tcpflags::ack)) {
        stats_.badSegments.inc();
        return;
    }

    // RFC 1323: remember the timestamp of the segment occupying the
    // left window edge.
    if (tsEnabled_ && hdr.timestamps && seqLe(hdr.seq, rcvNxt_))
        tsRecent_ = hdr.timestamps->value;

    if (state_ == TcpState::SynRcvd) {
        if (seqLe(hdr.ack, iss_) || seqGt(hdr.ack, sndNxt_)) {
            sendRst(hdr.ack, 0, false);
            return;
        }
        transition(TcpState::Established);
        const std::uint32_t mss = effMss();
        cwnd_ = cfg_.initialCwndSegs * mss;
        ssthresh_ = cfg_.maxCwndSegs * mss;
        cwndSegs_ = cfg_.initialCwndSegs;
        ssthreshSegs_ = cfg_.maxCwndSegs;
        rtxRetries_ = 0;
        cancelRtxTimer();
        observer_.onConnected(*this);
        // Fall through: this ACK may carry data and window info.
    }

    // Trim payload against what we've already received.
    std::span<const std::uint8_t> usable = payload;
    std::uint32_t seg_seq = hdr.seq;
    const std::size_t orig_len = payload.size();
    if (seqLt(seg_seq, rcvNxt_)) {
        const std::uint32_t old = rcvNxt_ - seg_seq;
        if (old >= usable.size()) {
            usable = {};
            // Wholly duplicate data (includes persist probes): force
            // an immediate ACK so the sender makes progress.
            if (orig_len > 0)
                sendAck();
        } else {
            usable = usable.subspan(old);
        }
        seg_seq = rcvNxt_;
    }

    processAck(hdr, orig_len);
    if (state_ == TcpState::Closed)
        return; // ACK processing may have finished LastAck

    if (!usable.empty()) {
        TcpHeader trimmed = hdr;
        trimmed.seq = seg_seq;
        processData(trimmed, usable);
    }

    if (hdr.has(tcpflags::fin))
        processFin(hdr, orig_len);
}

void
TcpConnection::processSynSent(const TcpHeader &hdr)
{
    if (!hdr.has(tcpflags::syn) || !hdr.has(tcpflags::ack)) {
        stats_.badSegments.inc();
        return;
    }
    if (hdr.ack != iss_ + 1) {
        sendRst(hdr.ack, 0, false);
        return;
    }
    irs_ = hdr.seq;
    rcvNxt_ = irs_ + 1;
    sndUna_ = hdr.ack;

    tsEnabled_ = cfg_.useTimestamps && hdr.timestamps.has_value();
    if (tsEnabled_) {
        tsRecent_ = hdr.timestamps->value;
        // RFC 7323: the SYN|ACK echoes our SYN's timestamp — the
        // handshake itself yields the first RTT sample.
        const std::uint32_t elapsed = tsNow() - hdr.timestamps->echo;
        rtt_.sample(static_cast<Tick>(elapsed) * cfg_.tsGranularity);
    }
    wsEnabled_ = cfg_.useWindowScale && hdr.wscale.has_value();
    if (wsEnabled_) {
        sndScale_ = *hdr.wscale;
        rcvScale_ = cfg_.windowScale;
    }
    peerMss_ = hdr.mss.value_or(536);
    sndWnd_ = hdr.wnd; // unscaled in SYN
    sndWl1_ = hdr.seq;
    sndWl2_ = hdr.ack;

    const std::uint32_t mss = effMss();
    cwnd_ = cfg_.initialCwndSegs * mss;
    ssthresh_ = cfg_.maxCwndSegs * mss;
    cwndSegs_ = cfg_.initialCwndSegs;
    ssthreshSegs_ = cfg_.maxCwndSegs;

    transition(TcpState::Established);
    rtxRetries_ = 0;
    cancelRtxTimer();
    sendAck();
    observer_.onConnected(*this);
    trySend();
}

void
TcpConnection::updateSendWindow(const TcpHeader &hdr)
{
    const std::uint32_t wnd = std::uint32_t(hdr.wnd) << sndScale_;
    if (seqLt(sndWl1_, hdr.seq) ||
        (sndWl1_ == hdr.seq && seqLe(sndWl2_, hdr.ack))) {
        TCP_TRACE("send window update: %u -> %u", sndWnd_, wnd);
        sndWnd_ = wnd;
        sndWl1_ = hdr.seq;
        sndWl2_ = hdr.ack;
        if (sndWnd_ > 0 && persistTimer_.pending()) {
            persistTimer_.cancel();
            trySend();
        }
    }
}

void
TcpConnection::openCongestionWindow(std::uint32_t acked_bytes)
{
    const std::uint32_t mss = effMss();
    if (cfg_.messageMode) {
        if (cwndSegs_ < ssthreshSegs_) {
            ++cwndSegs_;
        } else {
            caAccum_ += 1;
            if (caAccum_ >= cwndSegs_) {
                caAccum_ = 0;
                ++cwndSegs_;
            }
        }
        cwndSegs_ = std::min(cwndSegs_, cfg_.maxCwndSegs);
        return;
    }
    const std::uint32_t cap = cfg_.maxCwndSegs * mss;
    if (cwnd_ < ssthresh_)
        cwnd_ += std::min(acked_bytes, mss);
    else
        cwnd_ += std::max<std::uint32_t>(1, mss * mss / cwnd_);
    cwnd_ = std::min(cwnd_, cap);
}

void
TcpConnection::onLossDetected(bool timeout)
{
    const std::uint32_t mss = effMss();
    if (cfg_.messageMode) {
        const std::uint32_t inflight_segs =
            static_cast<std::uint32_t>(firstUnsent_);
        ssthreshSegs_ = std::max<std::uint32_t>(inflight_segs / 2, 1);
        cwndSegs_ = timeout ? 1 : ssthreshSegs_;
        caAccum_ = 0;
        return;
    }
    const std::uint32_t flight = sndNxt_ - sndUna_;
    ssthresh_ = std::max<std::uint32_t>(flight / 2, 2 * mss);
    cwnd_ = timeout ? mss : ssthresh_ + 3 * mss;
}

void
TcpConnection::retransmitOldest()
{
    if (cfg_.messageMode) {
        if (!sendQueue_.empty() && sendQueue_.front().sent) {
            PendingMsg &msg = sendQueue_.front();
            OutSpec spec;
            spec.seq = msg.seqStart;
            spec.flags = tcpflags::ack | tcpflags::psh;
            spec.payload = msg.data;
            spec.retransmit = true;
            emitSegment(spec);
            return;
        }
    } else {
        const std::uint32_t inflight = sndNxt_ - sndUna_;
        if (inflight > 0 && !sndBuf_.empty()) {
            const std::size_t len = std::min<std::size_t>(
                {effMss(), sndBuf_.size(), inflight});
            segScratch_.resize(len);
            sndBuf_.copyOut(0, len, segScratch_.data());
            OutSpec spec;
            spec.seq = sndUna_;
            spec.flags = tcpflags::ack;
            spec.payload = segScratch_;
            spec.retransmit = true;
            emitSegment(spec);
            return;
        }
    }
    // Only the FIN (or a SYN phase handled elsewhere) is outstanding.
    if (finSent_ && seqLt(sndUna_, finSeq_ + 1)) {
        OutSpec fin;
        fin.seq = finSeq_;
        fin.flags = tcpflags::fin | tcpflags::ack;
        fin.retransmit = true;
        emitSegment(fin);
    }
}

void
TcpConnection::completeAckedMessages()
{
    while (!sendQueue_.empty()) {
        PendingMsg &front = sendQueue_.front();
        if (!front.sent)
            break;
        const std::uint32_t end =
            front.seqStart + static_cast<std::uint32_t>(front.data.size());
        if (!seqGe(sndUna_, end))
            break;
        const std::uint64_t tag = front.tag;
        sendQueue_.pop_front();
        --firstUnsent_;
        observer_.onMessageAcked(*this, tag);
    }
}

void
TcpConnection::processAck(const TcpHeader &hdr, std::size_t payload_len)
{
    if (seqGt(hdr.ack, sndNxt_)) {
        // Acks data we never sent.
        stats_.badSegments.inc();
        sendAck();
        return;
    }

    if (seqLe(hdr.ack, sndUna_)) {
        // Not a new ACK. Count pure duplicates toward fast retransmit.
        const std::uint32_t wnd = std::uint32_t(hdr.wnd) << sndScale_;
        const bool pure_dup = payload_len == 0 && hdr.ack == sndUna_ &&
                              wnd == sndWnd_ && sndNxt_ != sndUna_ &&
                              !hdr.has(tcpflags::syn) &&
                              !hdr.has(tcpflags::fin);
        if (pure_dup) {
            stats_.dupAcksIn.inc();
            ++dupAcks_;
            if (dupAcks_ == 3) {
                stats_.fastRetransmits.inc();
                recover_ = sndNxt_;
                inRecovery_ = true;
                onLossDetected(false);
                retransmitOldest();
            } else if (dupAcks_ > 3 && !cfg_.messageMode) {
                cwnd_ += effMss(); // inflate during recovery
                trySend();
            }
        }
        updateSendWindow(hdr);
        return;
    }

    // New data acknowledged.
    const std::uint32_t acked = hdr.ack - sndUna_;
    const bool was_recovering = inRecovery_;

    // RTT sampling: timestamps give a sample per ACK; otherwise use
    // the one timed segment (Karn's rule).
    if (tsEnabled_ && hdr.timestamps) {
        const std::uint32_t elapsed = tsNow() - hdr.timestamps->echo;
        rtt_.sample(static_cast<Tick>(elapsed) * cfg_.tsGranularity);
    } else if (rttTiming_ && seqGt(hdr.ack, rttSeq_)) {
        if (!retransmittedSinceTiming_)
            rtt_.sample(env_.now() - rttStamp_);
        rttTiming_ = false;
    }
    rtt_.resetBackoff();
    rtxRetries_ = 0;
    dupAcks_ = 0;

    // Consume the send buffer / message queue. The FIN, if ACKed,
    // occupies one sequence number not present in the buffers.
    std::uint32_t data_acked = acked;
    if (finSent_ && seqGe(hdr.ack, finSeq_ + 1))
        --data_acked;
    if (!cfg_.messageMode) {
        const std::size_t drop =
            std::min<std::size_t>(data_acked, sndBuf_.size());
        sndBuf_.drop(drop);
    }
    sndUna_ = hdr.ack;
    if (cfg_.messageMode)
        completeAckedMessages();

    // NewReno: a partial ACK during recovery means the next segment
    // in the old window was also lost — retransmit it immediately
    // instead of waiting out an RTO per segment. Essential here:
    // without receiver-side reassembly (the firmware subset), a
    // single lost packet discards the whole out-of-order tail.
    if (was_recovering && seqLt(hdr.ack, recover_)) {
        retransmitOldest();
    } else {
        if (was_recovering)
            inRecovery_ = false;
        if (was_recovering && !cfg_.messageMode)
            cwnd_ = ssthresh_; // deflate after recovery
        else
            openCongestionWindow(acked);
    }

    updateSendWindow(hdr);

    // FIN acknowledged?
    if (finSent_ && seqGe(hdr.ack, finSeq_ + 1)) {
        switch (state_) {
          case TcpState::FinWait1:
            transition(TcpState::FinWait2);
            break;
          case TcpState::Closing:
            enterTimeWait();
            break;
          case TcpState::LastAck:
            toClosed(false);
            return;
          default:
            break;
        }
    }

    cancelRtxTimer();
    armRtxTimer();

    if (!cfg_.messageMode)
        observer_.onSendSpace(*this);
    trySend();
}

void
TcpConnection::deliverInOrder(std::span<const std::uint8_t> payload)
{
    rcvNxt_ += static_cast<std::uint32_t>(payload.size());
    rcvOffset_ += payload.size();
    observer_.onDataDelivered(*this, payload);
}

void
TcpConnection::processData(const TcpHeader &hdr,
                           std::span<const std::uint8_t> payload)
{
    if (state_ != TcpState::Established &&
        state_ != TcpState::FinWait1 && state_ != TcpState::FinWait2) {
        return;
    }

    if (hdr.seq == rcvNxt_) {
        if (cfg_.messageMode) {
            if (holdingMessage_) {
                // Retransmission of the segment we already hold.
                return;
            }
            if (!observer_.canAcceptMessage(*this, payload)) {
                // No receive WR posted: retain the message un-ACKed
                // until the application posts one.
                stats_.msgRefused.inc();
                heldMessage_.assign(payload.begin(), payload.end());
                holdingMessage_ = true;
                return;
            }
            rcvNxt_ += static_cast<std::uint32_t>(payload.size());
            rcvOffset_ += payload.size();
            observer_.onMessage(
                *this,
                std::vector<std::uint8_t>(payload.begin(), payload.end()));
            scheduleAckAfterData(payload.size());
            return;
        }

        deliverInOrder(payload);
        // Pull anything now contiguous out of the reassembly queue.
        if (!reass_.empty()) {
            std::vector<std::uint8_t> more;
            reass_.extract(rcvOffset_, more);
            if (!more.empty())
                deliverInOrder(more);
        }
        scheduleAckAfterData(payload.size());
        return;
    }

    // Out of order (hdr.seq > rcvNxt_).
    stats_.oooSegments.inc();
    if (cfg_.reassembly && !cfg_.messageMode) {
        const std::uint64_t off = rcvOffset_ + (hdr.seq - rcvNxt_);
        reass_.insert(off, payload, rcvOffset_);
    } else {
        stats_.oooDropped.inc();
    }
    // Duplicate ACK right away so the sender can fast-retransmit.
    sendAck();
}

void
TcpConnection::scheduleAckAfterData(std::size_t payload_len)
{
    (void)payload_len;
    ++unackedSegsSinceAck_;
    if (!cfg_.delayedAck || unackedSegsSinceAck_ >= 2 ||
        holdingMessage_) {
        sendAck();
        return;
    }
    armDelAck();
}

void
TcpConnection::processFin(const TcpHeader &hdr, std::size_t payload_len)
{
    // Accept the FIN only once all preceding data has been consumed.
    const std::uint32_t fin_seq =
        hdr.seq + static_cast<std::uint32_t>(payload_len);
    if (fin_seq != rcvNxt_)
        return; // out-of-order FIN; peer will retransmit

    if (state_ == TcpState::CloseWait || state_ == TcpState::LastAck ||
        state_ == TcpState::Closing || state_ == TcpState::TimeWait) {
        // Duplicate FIN: re-ACK (and refresh TIME_WAIT).
        sendAck();
        if (state_ == TcpState::TimeWait)
            enterTimeWait();
        return;
    }

    rcvNxt_ += 1;
    sendAck();
    observer_.onPeerClosed(*this);

    switch (state_) {
      case TcpState::Established:
        transition(TcpState::CloseWait);
        break;
      case TcpState::FinWait1:
        // Our FIN not yet ACKed (otherwise we'd be in FinWait2).
        transition(TcpState::Closing);
        break;
      case TcpState::FinWait2:
        enterTimeWait();
        break;
      default:
        break;
    }
}

void
TcpConnection::onReceiveWindowGrew()
{
    if (state_ == TcpState::Closed)
        return;

    if (holdingMessage_ &&
        observer_.canAcceptMessage(*this, heldMessage_)) {
        std::vector<std::uint8_t> msg = std::move(heldMessage_);
        heldMessage_.clear();
        holdingMessage_ = false;
        rcvNxt_ += static_cast<std::uint32_t>(msg.size());
        rcvOffset_ += msg.size();
        observer_.onMessage(*this, std::move(msg));
        sendAck();
        return;
    }

    if (!established() && state_ != TcpState::CloseWait)
        return;
    // Send a window update if the edge moved meaningfully (BSD: by
    // two segments or half the buffer).
    const std::uint32_t w = observer_.receiveWindow(*this);
    const std::uint32_t new_edge = rcvNxt_ + w;
    TCP_TRACE("rcv window grew: w=%u edge=%u advertised=%u", w,
              new_edge, rcvAdvertised_);
    // Update when the window opened by two segments, or when it was
    // effectively closed (the remaining edge could not carry a full
    // segment/message).
    if (seqGt(new_edge, rcvAdvertised_) &&
        (new_edge - rcvAdvertised_ >= 2 * effMss() ||
         rcvAdvertised_ - rcvNxt_ < effMss())) {
        sendAck();
    }
}

// --------------------------------------------------------------------
// Teardown
// --------------------------------------------------------------------

void
TcpConnection::toClosed(bool notify_reset)
{
    if (state_ == TcpState::Closed)
        return;
    transition(TcpState::Closed);
    rtxTimer_.cancel();
    delAckTimer_.cancel();
    persistTimer_.cancel();
    timeWaitTimer_.cancel();
    if (notify_reset)
        observer_.onReset(*this);
    else
        observer_.onClosed(*this);
    env_.connectionClosed(*this);
}

} // namespace qpip::inet
