/**
 * @file
 * Family-agnostic network-layer datagram: what the transport hands to
 * (and receives from) the IP layer. Serialization to real IPv4/IPv6
 * wire bytes lives in ipv4.hh / ipv6.hh.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "inet/inet_addr.hh"

namespace qpip::inet {

/** IANA protocol numbers we implement. */
enum class IpProto : std::uint8_t {
    Tcp = 6,
    Udp = 17,
    Ipv6Frag = 44,
};

/**
 * The one hop-limit/TTL default used everywhere a datagram or frame
 * is built (RFC 1700's recommended 64). Kept as a single constant so
 * the serializers, the reassembler and the parsed-frame defaults
 * cannot drift apart.
 */
constexpr std::uint8_t defaultHopLimit = 64;

/**
 * One network-layer datagram (unfragmented view).
 */
struct IpDatagram
{
    InetAddr src;
    InetAddr dst;
    IpProto proto = IpProto::Udp;
    std::uint8_t hopLimit = defaultHopLimit;
    /** Transport-layer bytes (TCP/UDP header + payload). */
    std::vector<std::uint8_t> payload;
};

/**
 * Parsed view of one wire frame of either family, which may be a
 * fragment of a larger datagram. IPv4 expresses fragmentation in the
 * fixed header, IPv6 in a fragment extension header; both reduce to
 * the same (ident, byte offset, more-fragments) triple, so one parsed
 * form feeds one reassembler.
 */
struct IpFrame
{
    InetAddr src;
    InetAddr dst;
    std::uint8_t hopLimit = defaultHopLimit;
    /** Upper-layer protocol (after any fragment header). */
    IpProto proto = IpProto::Udp;

    /** Fragmentation info; nullopt for atomic packets. */
    struct FragInfo
    {
        std::uint32_t ident = 0;
        std::uint16_t offsetBytes = 0; ///< multiple of 8
        bool moreFragments = false;
    };
    std::optional<FragInfo> frag;

    /** Upper-layer bytes (this fragment's slice if fragmented). */
    std::vector<std::uint8_t> payload;
};

} // namespace qpip::inet
