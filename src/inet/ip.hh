/**
 * @file
 * Family-agnostic network-layer datagram: what the transport hands to
 * (and receives from) the IP layer. Serialization to real IPv4/IPv6
 * wire bytes lives in ipv4.hh / ipv6.hh.
 */

#ifndef QPIP_INET_IP_HH
#define QPIP_INET_IP_HH

#include <cstdint>
#include <vector>

#include "inet/inet_addr.hh"

namespace qpip::inet {

/** IANA protocol numbers we implement. */
enum class IpProto : std::uint8_t {
    Tcp = 6,
    Udp = 17,
    Ipv6Frag = 44,
};

/**
 * One network-layer datagram (unfragmented view).
 */
struct IpDatagram
{
    InetAddr src;
    InetAddr dst;
    IpProto proto = IpProto::Udp;
    std::uint8_t hopLimit = 64;
    /** Transport-layer bytes (TCP/UDP header + payload). */
    std::vector<std::uint8_t> payload;
};

} // namespace qpip::inet

#endif // QPIP_INET_IP_HH
