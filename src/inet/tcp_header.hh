/**
 * @file
 * TCP header (RFC 793) with the option subset the prototype
 * implements: MSS, window scale and RFC 1323 timestamps. Checksums
 * run over the family-appropriate pseudo-header.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "inet/ip.hh"

namespace qpip::inet {

constexpr std::size_t tcpMinHeaderBytes = 20;

/** TCP flag bits. */
namespace tcpflags {
constexpr std::uint8_t fin = 0x01;
constexpr std::uint8_t syn = 0x02;
constexpr std::uint8_t rst = 0x04;
constexpr std::uint8_t psh = 0x08;
constexpr std::uint8_t ack = 0x10;
constexpr std::uint8_t urg = 0x20;
} // namespace tcpflags

/** RFC 1323 timestamp option payload. */
struct TcpTimestamps
{
    std::uint32_t value = 0; ///< TSval: sender's clock
    std::uint32_t echo = 0;  ///< TSecr: echoed peer clock
};

/** Parsed/to-serialize TCP header. */
struct TcpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t flags = 0;
    /** Raw window field (unscaled; scaling is connection state). */
    std::uint16_t wnd = 0;
    std::uint16_t urgent = 0;

    /** Options (present only when sent/received). */
    std::optional<std::uint16_t> mss;
    std::optional<std::uint8_t> wscale;
    std::optional<TcpTimestamps> timestamps;

    bool has(std::uint8_t flag) const { return (flags & flag) != 0; }

    /** Header length in bytes including options, padded to 4. */
    std::size_t headerBytes() const;
};

/**
 * Serialize header + payload, computing the pseudo-header checksum
 * for the (src, dst) IP endpoints.
 */
std::vector<std::uint8_t>
serializeTcp(const InetAddr &src, const InetAddr &dst,
             const TcpHeader &hdr, std::span<const std::uint8_t> payload);

/**
 * Parse and verify TCP bytes delivered by the IP layer.
 * @param[out] payload view into @p bytes past the options.
 * @return false on truncation, bad offset or checksum failure.
 */
bool parseTcp(const InetAddr &src, const InetAddr &dst,
              std::span<const std::uint8_t> bytes, TcpHeader &hdr,
              std::span<const std::uint8_t> &payload);

/** Sequence-number comparisons with wraparound (RFC 793 arithmetic). */
inline bool
seqLt(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) < 0;
}

inline bool
seqLe(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) <= 0;
}

inline bool
seqGt(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) > 0;
}

inline bool
seqGe(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) >= 0;
}

} // namespace qpip::inet
