/**
 * @file
 * The Internet checksum (RFC 1071): 16-bit one's-complement of the
 * one's-complement sum. Used by IPv4 headers, UDP and TCP (the latter
 * two over a pseudo-header). The accumulator form lets callers fold in
 * pseudo-header fields and payload spans incrementally, which is also
 * how the LANai DMA engine's hardware checksum assist is modeled.
 *
 * add() runs word-at-a-time: the 32-bit halves of 8-byte native-order
 * loads are accumulated branch-free into a 64-bit sum (which cannot
 * wrap inside any realistic span), then folded to 16 bits and
 * byte-swapped back into the big-endian word domain (one's-complement
 * addition commutes with byte swapping, RFC 1071 §2B). Odd offsets and
 * lengths are handled by byte-parity state, so split streams checksum
 * identically to one contiguous pass. ChecksumBytewise is the obvious
 * byte-pair reference implementation, kept for property tests to pin
 * the fast path against.
 */

#pragma once

#include <cstdint>
#include <span>

namespace qpip::inet {

/**
 * Incremental one's-complement checksum accumulator (word-at-a-time).
 */
class ChecksumAccumulator
{
  public:
    /** Fold a byte span into the sum (handles odd lengths/offsets). */
    void add(std::span<const std::uint8_t> data);

    /** Fold a single 16-bit value (already host order). */
    void addU16(std::uint16_t v) { sum_ += v; }

    /** Fold a 32-bit value as two 16-bit words. */
    void
    addU32(std::uint32_t v)
    {
        addU16(static_cast<std::uint16_t>(v >> 16));
        addU16(static_cast<std::uint16_t>(v));
    }

    /** Final checksum value (one's complement of the folded sum). */
    std::uint16_t finish() const;

  private:
    std::uint64_t sum_ = 0;
    bool odd_ = false;
};

/**
 * Reference byte-at-a-time accumulator with the same stream semantics
 * as ChecksumAccumulator. Used by tests to cross-check the word-wise
 * fast path; not for datapath use.
 */
class ChecksumBytewise
{
  public:
    void add(std::span<const std::uint8_t> data);
    void addU16(std::uint16_t v) { sum_ += v; }

    void
    addU32(std::uint32_t v)
    {
        addU16(static_cast<std::uint16_t>(v >> 16));
        addU16(static_cast<std::uint16_t>(v));
    }

    std::uint16_t finish() const;

  private:
    std::uint64_t sum_ = 0;
    bool odd_ = false;
};

/** One-shot checksum of a span. */
std::uint16_t internetChecksum(std::span<const std::uint8_t> data);

/**
 * Verify a span whose checksum field is included: the folded sum of
 * valid data is 0xffff (so finish() == 0).
 */
bool checksumOk(std::span<const std::uint8_t> data);

} // namespace qpip::inet
