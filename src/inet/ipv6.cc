#include "inet/ipv6.hh"

#include "net/packet.hh"
#include "net/serialize.hh"
#include "sim/logging.hh"

namespace qpip::inet {

namespace {

void
writeFixedHeader(net::ByteWriter &w, const IpDatagram &dgram,
                 std::uint8_t next_header, std::size_t payload_len)
{
    w.u32(0x60000000); // version 6, tc 0, flow label 0
    w.u16(static_cast<std::uint16_t>(payload_len));
    w.u8(next_header);
    w.u8(dgram.hopLimit);
    w.bytes(dgram.src.v6.bytes);
    w.bytes(dgram.dst.v6.bytes);
}

} // namespace

std::vector<std::uint8_t>
serializeIpv6(const IpDatagram &dgram)
{
    if (!dgram.src.isV6() || !dgram.dst.isV6())
        sim::panic("serializeIpv6 with IPv4 addresses");
    std::vector<std::uint8_t> out = net::acquireBuffer();
    out.reserve(ipv6HeaderBytes + dgram.payload.size());
    net::ByteWriter w(out);
    writeFixedHeader(w, dgram, static_cast<std::uint8_t>(dgram.proto),
                     dgram.payload.size());
    w.bytes(dgram.payload);
    return out;
}

std::vector<std::uint8_t>
serializeIpv6Fragment(const IpDatagram &dgram, std::uint32_t ident,
                      std::uint16_t offset_bytes, bool more_fragments,
                      std::span<const std::uint8_t> slice)
{
    if (!dgram.src.isV6() || !dgram.dst.isV6())
        sim::panic("serializeIpv6Fragment with IPv4 addresses");
    if (offset_bytes % 8 != 0)
        sim::panic("fragment offset %u not a multiple of 8",
                   offset_bytes);

    std::vector<std::uint8_t> out = net::acquireBuffer();
    out.reserve(ipv6HeaderBytes + ipv6FragHeaderBytes + slice.size());
    net::ByteWriter w(out);
    writeFixedHeader(
        w, dgram, static_cast<std::uint8_t>(IpProto::Ipv6Frag),
        ipv6FragHeaderBytes + slice.size());
    w.u8(static_cast<std::uint8_t>(dgram.proto)); // next header
    w.u8(0);                                      // reserved
    w.u16(static_cast<std::uint16_t>(offset_bytes |
                                     (more_fragments ? 1 : 0)));
    w.u32(ident);
    w.bytes(slice);
    return out;
}

bool
parseIpv6(std::span<const std::uint8_t> wire, Ipv6Packet &out)
{
    if (wire.size() < ipv6HeaderBytes)
        return false;
    net::ByteReader r(wire);
    const std::uint32_t vcf = r.u32();
    if ((vcf >> 28) != 6)
        return false;
    const std::uint16_t payload_len = r.u16();
    std::uint8_t next_header = r.u8();
    out.hopLimit = r.u8();
    Ipv6Addr src, dst;
    r.bytes(src.bytes.data(), src.bytes.size());
    r.bytes(dst.bytes.data(), dst.bytes.size());
    if (!r.ok() || wire.size() < ipv6HeaderBytes + payload_len)
        return false;
    out.src = InetAddr(src);
    out.dst = InetAddr(dst);
    out.frag.reset();

    std::size_t body_off = ipv6HeaderBytes;
    std::size_t body_len = payload_len;
    if (next_header == static_cast<std::uint8_t>(IpProto::Ipv6Frag)) {
        if (body_len < ipv6FragHeaderBytes)
            return false;
        next_header = r.u8();
        r.u8(); // reserved
        const std::uint16_t off_flags = r.u16();
        const std::uint32_t ident = r.u32();
        if (!r.ok())
            return false;
        Ipv6Packet::FragInfo fi;
        fi.ident = ident;
        fi.offsetBytes = static_cast<std::uint16_t>(off_flags & ~7u);
        fi.moreFragments = (off_flags & 1) != 0;
        out.frag = fi;
        body_off += ipv6FragHeaderBytes;
        body_len -= ipv6FragHeaderBytes;
    }
    out.proto = static_cast<IpProto>(next_header);
    auto body = wire.subspan(body_off, body_len);
    out.payload = net::acquireBuffer();
    out.payload.assign(body.begin(), body.end());
    return true;
}

} // namespace qpip::inet
