/**
 * @file
 * Out-of-order TCP segment reassembly queue. The host-based stacks use
 * it; the QPIP prototype firmware deliberately does not ("support for
 * out-of-order reassembly or urgent data was not included") — the
 * firmware drops out-of-order segments and lets the sender retransmit,
 * which is cheap in a SAN where loss and reordering seldom occur.
 *
 * Keys are 64-bit logical stream offsets, not raw 32-bit sequence
 * numbers: the owning connection converts in-window sequence numbers
 * to offsets, which makes wraparound a non-issue here.
 */

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace qpip::inet {

/**
 * Buffers segments beyond the next expected stream offset and
 * surrenders bytes once they become contiguous.
 */
class TcpReassembly
{
  public:
    /**
     * Insert a segment at logical stream offset @p offset. Overlaps
     * with already-buffered data keep the first copy (as in BSD).
     * Bytes at or below @p next_expected are trimmed.
     */
    void insert(std::uint64_t offset,
                std::span<const std::uint8_t> data,
                std::uint64_t next_expected);

    /**
     * Extract bytes now contiguous from @p next_expected, appending
     * to @p out.
     * @return bytes extracted.
     */
    std::size_t extract(std::uint64_t next_expected,
                        std::vector<std::uint8_t> &out);

    /** Total buffered (not yet contiguous) bytes. */
    std::size_t bufferedBytes() const { return bufferedBytes_; }

    bool empty() const { return segments_.empty(); }
    void clear();

  private:
    /** offset -> bytes, non-overlapping. */
    std::map<std::uint64_t, std::vector<std::uint8_t>> segments_;
    std::size_t bufferedBytes_ = 0;
};

} // namespace qpip::inet
