#include "inet/ip_frag.hh"

#include <algorithm>
#include <utility>

#include "inet/ipv4.hh"
#include "net/packet.hh"
#include "sim/logging.hh"

namespace qpip::inet {

std::vector<std::vector<std::uint8_t>>
fragmentIpv6(const IpDatagram &dgram, std::uint32_t link_mtu,
             std::uint32_t ident)
{
    std::vector<std::vector<std::uint8_t>> out;
    if (ipv6HeaderBytes + dgram.payload.size() <= link_mtu) {
        out.push_back(serializeIpv6(dgram));
        return out;
    }

    if (link_mtu < ipv6HeaderBytes + ipv6FragHeaderBytes + 8)
        sim::fatal("link MTU %u too small to fragment", link_mtu);

    // Per-fragment payload capacity, rounded down to 8 bytes as the
    // offset field requires.
    const std::size_t cap =
        (link_mtu - ipv6HeaderBytes - ipv6FragHeaderBytes) & ~std::size_t(7);

    std::span<const std::uint8_t> payload(dgram.payload);
    std::size_t offset = 0;
    while (offset < payload.size()) {
        const std::size_t n = std::min(cap, payload.size() - offset);
        const bool more = offset + n < payload.size();
        out.push_back(serializeIpv6Fragment(
            dgram, ident, static_cast<std::uint16_t>(offset), more,
            payload.subspan(offset, n)));
        offset += n;
    }
    return out;
}

std::vector<std::vector<std::uint8_t>>
fragmentIpv4(const IpDatagram &dgram, std::uint32_t link_mtu,
             std::uint16_t ident)
{
    std::vector<std::vector<std::uint8_t>> out;
    if (ipv4HeaderBytes + dgram.payload.size() <= link_mtu) {
        out.push_back(serializeIpv4(dgram, ident));
        return out;
    }

    if (link_mtu < ipv4HeaderBytes + 8)
        sim::fatal("link MTU %u too small to fragment", link_mtu);

    const std::size_t cap =
        (link_mtu - ipv4HeaderBytes) & ~std::size_t(7);

    std::span<const std::uint8_t> payload(dgram.payload);
    std::size_t offset = 0;
    while (offset < payload.size()) {
        const std::size_t n = std::min(cap, payload.size() - offset);
        const bool more = offset + n < payload.size();
        out.push_back(serializeIpv4Fragment(
            dgram, ident, static_cast<std::uint16_t>(offset), more,
            payload.subspan(offset, n)));
        offset += n;
    }
    return out;
}

std::optional<IpDatagram>
IpReassembler::offer(IpFrame pkt, sim::Tick now)
{
    if (!pkt.frag) {
        IpDatagram d;
        d.src = pkt.src;
        d.dst = pkt.dst;
        d.proto = pkt.proto;
        d.hopLimit = pkt.hopLimit;
        d.payload = std::move(pkt.payload);
        return d;
    }

    fragmentsIn.inc();
    const Key key{pkt.src, pkt.dst, pkt.frag->ident};
    Partial &p = pending_[key];
    if (p.slices.empty()) {
        p.firstAt = now;
        p.proto = pkt.proto;
        p.hopLimit = pkt.hopLimit;
    }
    const auto sliceLen = static_cast<std::uint32_t>(pkt.payload.size());
    // Duplicate fragments simply overwrite.
    p.slices[pkt.frag->offsetBytes] = std::move(pkt.payload);
    if (!pkt.frag->moreFragments) {
        p.sawLast = true;
        p.totalLen = pkt.frag->offsetBytes + sliceLen;
    }
    return tryComplete(key, p);
}

std::optional<IpDatagram>
IpReassembler::tryComplete(const Key &key, Partial &p)
{
    if (!p.sawLast)
        return std::nullopt;
    // Check contiguity from offset 0.
    std::uint32_t next = 0;
    for (const auto &[off, bytes] : p.slices) {
        if (off != next)
            return std::nullopt;
        next += static_cast<std::uint32_t>(bytes.size());
    }
    if (next != p.totalLen)
        return std::nullopt;

    IpDatagram d;
    d.src = key.src;
    d.dst = key.dst;
    d.proto = p.proto;
    d.hopLimit = p.hopLimit;
    d.payload = net::acquireBuffer();
    d.payload.reserve(p.totalLen);
    for (auto &[off, bytes] : p.slices) {
        d.payload.insert(d.payload.end(), bytes.begin(), bytes.end());
        net::recycleBuffer(std::move(bytes));
    }
    pending_.erase(key);
    reassembled.inc();
    return d;
}

void
IpReassembler::expire(sim::Tick now)
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (now - it->second.firstAt > timeout_) {
            it = pending_.erase(it);
            expired.inc();
        } else {
            ++it;
        }
    }
}

} // namespace qpip::inet
