/**
 * @file
 * A chunked byte FIFO with O(1) amortized append/drop and random
 * access copy-out. Backs the TCP stream send buffer and the socket
 * layer's sockbufs, where a plain deque<uint8_t> would make the
 * 400 MB NBD runs crawl.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <vector>

namespace qpip::inet {

/**
 * FIFO of bytes stored as a deque of chunks.
 */
class ByteFifo
{
  public:
    /** Append bytes at the tail. */
    void
    append(std::span<const std::uint8_t> data)
    {
        if (data.empty())
            return;
        chunks_.emplace_back(data.begin(), data.end());
        size_ += data.size();
    }

    /**
     * Copy @p len bytes starting @p offset bytes past the head into
     * @p dst. @pre offset + len <= size()
     */
    void
    copyOut(std::size_t offset, std::size_t len, std::uint8_t *dst) const
    {
        offset += headOffset_;
        for (const auto &chunk : chunks_) {
            if (len == 0)
                break;
            if (offset >= chunk.size()) {
                offset -= chunk.size();
                continue;
            }
            const std::size_t n =
                std::min(len, chunk.size() - offset);
            // qpip-lint: wire-ok(bulk payload copy, no wire format)
            std::memcpy(dst, chunk.data() + offset, n);
            dst += n;
            len -= n;
            offset = 0;
        }
    }

    /** Drop @p n bytes from the head. @pre n <= size() */
    void
    drop(std::size_t n)
    {
        size_ -= n;
        while (n > 0) {
            auto &head = chunks_.front();
            const std::size_t avail = head.size() - headOffset_;
            if (n < avail) {
                headOffset_ += n;
                return;
            }
            n -= avail;
            headOffset_ = 0;
            chunks_.pop_front();
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        chunks_.clear();
        headOffset_ = 0;
        size_ = 0;
    }

  private:
    std::deque<std::vector<std::uint8_t>> chunks_;
    std::size_t headOffset_ = 0;
    std::size_t size_ = 0;
};

} // namespace qpip::inet
