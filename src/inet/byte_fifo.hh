/**
 * @file
 * A chunked byte FIFO with O(1) amortized append/drop and random
 * access copy-out. Backs the TCP stream send buffer and the socket
 * layer's sockbufs, where a plain deque<uint8_t> would make the
 * 400 MB NBD runs crawl.
 *
 * Two hot-path refinements over the naive chunk list:
 *  - appends coalesce into the tail chunk (up to coalesceBytes), so a
 *    stream written in small writes doesn't degenerate into thousands
 *    of tiny chunks;
 *  - copyOut() caches a seek cursor (logical offset -> chunk index)
 *    so the advancing per-segment reads TCP issues (offset 0, mss,
 *    2*mss, ...) resume from the previous position instead of
 *    rescanning the chunk list from the head every time.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <vector>

namespace qpip::inet {

/**
 * FIFO of bytes stored as a deque of chunks.
 */
class ByteFifo
{
  public:
    /** Tail chunks grow by coalescing appends up to this size. */
    static constexpr std::size_t coalesceBytes = 16384;

    /** Append bytes at the tail. */
    void
    append(std::span<const std::uint8_t> data)
    {
        if (data.empty())
            return;
        if (!chunks_.empty() &&
            chunks_.back().size() + data.size() <= coalesceBytes) {
            auto &tail = chunks_.back();
            tail.insert(tail.end(), data.begin(), data.end());
        } else {
            chunks_.emplace_back(data.begin(), data.end());
        }
        size_ += data.size();
    }

    /**
     * Copy @p len bytes starting @p offset bytes past the head into
     * @p dst. @pre offset + len <= size()
     */
    void
    copyOut(std::size_t offset, std::size_t len, std::uint8_t *dst) const
    {
        // Seek: resume from the cached cursor when reading at or past
        // it (the common sequential-segment case), else from the head.
        std::size_t ci = 0;
        std::size_t pos = headOffset_ + offset;
        if (cursorValid_ && offset >= cursorLogical_) {
            ci = cursorChunk_;
            pos = cursorIntra_ + (offset - cursorLogical_);
        }
        while (ci < chunks_.size() && pos >= chunks_[ci].size()) {
            pos -= chunks_[ci].size();
            ++ci;
        }
        if (ci < chunks_.size()) {
            // Cache where this read starts (never a past-the-end
            // position: a later coalescing append would invalidate it).
            cursorValid_ = true;
            cursorLogical_ = offset;
            cursorChunk_ = ci;
            cursorIntra_ = pos;
        }
        while (len > 0) {
            const auto &chunk = chunks_[ci];
            const std::size_t n = std::min(len, chunk.size() - pos);
            // qpip-lint: wire-ok(bulk payload copy, no wire format)
            std::memcpy(dst, chunk.data() + pos, n);
            dst += n;
            len -= n;
            pos = 0;
            ++ci;
        }
    }

    /** Drop @p n bytes from the head. @pre n <= size() */
    void
    drop(std::size_t n)
    {
        size_ -= n;
        // The cursor's logical coordinate shifts with the head; its
        // chunk index shifts by the number of chunks popped.
        if (cursorValid_) {
            if (cursorLogical_ >= n)
                cursorLogical_ -= n;
            else
                cursorValid_ = false;
        }
        while (n > 0) {
            auto &head = chunks_.front();
            const std::size_t avail = head.size() - headOffset_;
            if (n < avail) {
                headOffset_ += n;
                return;
            }
            n -= avail;
            headOffset_ = 0;
            chunks_.pop_front();
            if (cursorValid_) {
                if (cursorChunk_ == 0)
                    cursorValid_ = false;
                else
                    --cursorChunk_;
            }
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Number of backing chunks (diagnostics/tests). */
    std::size_t chunkCount() const { return chunks_.size(); }

    void
    clear()
    {
        chunks_.clear();
        headOffset_ = 0;
        size_ = 0;
        cursorValid_ = false;
        cursorLogical_ = 0;
        cursorChunk_ = 0;
        cursorIntra_ = 0;
    }

  private:
    std::deque<std::vector<std::uint8_t>> chunks_;
    std::size_t headOffset_ = 0;
    std::size_t size_ = 0;

    // Cached seek cursor: logical offset cursorLogical_ (in copyOut
    // coordinates) lives at chunks_[cursorChunk_][cursorIntra_].
    // mutable: copyOut is logically const.
    mutable bool cursorValid_ = false;
    mutable std::size_t cursorLogical_ = 0;
    mutable std::size_t cursorChunk_ = 0;
    mutable std::size_t cursorIntra_ = 0;
};

} // namespace qpip::inet
