#include "inet/checksum.hh"

#include <bit>
#include <cstring>

namespace qpip::inet {

namespace {

/**
 * Fold a native-order one's-complement accumulator to 16 bits and
 * express it in the big-endian word domain the byte-pair sum uses.
 * Congruence mod 0xffff is preserved at every step, and a fold is 0
 * only when the input bytes were all zero, so finish() results are
 * identical to the byte-wise reference.
 */
inline std::uint16_t
foldToBigEndian(std::uint64_t acc)
{
    std::uint64_t s = (acc >> 32) + (acc & 0xffffffffull);
    while (s >> 16)
        s = (s >> 16) + (s & 0xffff);
    auto word = static_cast<std::uint16_t>(s);
    if constexpr (std::endian::native == std::endian::little) {
        word = static_cast<std::uint16_t>((word << 8) |
                                          (word >> 8));
    }
    return word;
}

} // namespace

void
ChecksumAccumulator::add(std::span<const std::uint8_t> data)
{
    const std::uint8_t *p = data.data();
    std::size_t n = data.size();

    if (odd_ && n != 0) {
        // Continue a previously odd-length stream: this byte is the
        // low half of the pending word.
        sum_ += *p++;
        --n;
        odd_ = false;
    }

    // Bulk: accumulate the 32-bit halves of 8-byte loads into a
    // 64-bit accumulator. Plain binary addition of <= 32-bit values
    // cannot wrap a 64-bit accumulator inside any realistic span, so
    // the loop is branch-free (no per-step end-around carry) and
    // congruence mod 0xffff is preserved; the fold at the end
    // re-canonicalizes. memcpy is the strict-aliasing-safe unaligned
    // load; it compiles to a single 64-bit move.
    std::uint64_t acc = 0;
    while (n >= 16) {
        std::uint64_t w0;
        std::uint64_t w1;
        std::memcpy(&w0, p, sizeof(w0));
        std::memcpy(&w1, p + 8, sizeof(w1));
        acc += (w0 & 0xffffffffull) + (w0 >> 32) +
               (w1 & 0xffffffffull) + (w1 >> 32);
        p += 16;
        n -= 16;
    }
    if (n >= 8) {
        std::uint64_t w;
        std::memcpy(&w, p, sizeof(w));
        acc += (w & 0xffffffffull) + (w >> 32);
        p += sizeof(w);
        n -= sizeof(w);
    }
    if (n >= 4) {
        std::uint32_t w;
        std::memcpy(&w, p, sizeof(w));
        acc += w;
        p += sizeof(w);
        n -= sizeof(w);
    }
    if (n >= 2) {
        std::uint16_t w;
        std::memcpy(&w, p, sizeof(w));
        acc += w;
        p += sizeof(w);
        n -= sizeof(w);
    }
    sum_ += foldToBigEndian(acc);

    if (n != 0) {
        sum_ += static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(*p) << 8);
        odd_ = true;
    }
}

std::uint16_t
ChecksumAccumulator::finish() const
{
    std::uint64_t s = sum_;
    while (s >> 16)
        s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(~s & 0xffff);
}

void
ChecksumBytewise::add(std::span<const std::uint8_t> data)
{
    std::size_t i = 0;
    if (odd_ && !data.empty()) {
        sum_ += data[0];
        odd_ = false;
        i = 1;
    }
    for (; i + 1 < data.size(); i += 2) {
        sum_ += static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(data[i]) << 8) | data[i + 1]);
    }
    if (i < data.size()) {
        sum_ += static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(data[i]) << 8);
        odd_ = true;
    }
}

std::uint16_t
ChecksumBytewise::finish() const
{
    std::uint64_t s = sum_;
    while (s >> 16)
        s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t
internetChecksum(std::span<const std::uint8_t> data)
{
    ChecksumAccumulator acc;
    acc.add(data);
    return acc.finish();
}

bool
checksumOk(std::span<const std::uint8_t> data)
{
    return internetChecksum(data) == 0;
}

} // namespace qpip::inet
