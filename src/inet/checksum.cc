#include "inet/checksum.hh"

namespace qpip::inet {

void
ChecksumAccumulator::add(std::span<const std::uint8_t> data)
{
    std::size_t i = 0;
    if (odd_ && !data.empty()) {
        // Continue a previously odd-length stream: this byte is the
        // low half of the pending word.
        sum_ += data[0];
        odd_ = false;
        i = 1;
    }
    for (; i + 1 < data.size(); i += 2) {
        sum_ += static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(data[i]) << 8) | data[i + 1]);
    }
    if (i < data.size()) {
        sum_ += static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(data[i]) << 8);
        odd_ = true;
    }
}

std::uint16_t
ChecksumAccumulator::finish() const
{
    std::uint64_t s = sum_;
    while (s >> 16)
        s = (s & 0xffff) + (s >> 16);
    return static_cast<std::uint16_t>(~s & 0xffff);
}

std::uint16_t
internetChecksum(std::span<const std::uint8_t> data)
{
    ChecksumAccumulator acc;
    acc.add(data);
    return acc.finish();
}

bool
checksumOk(std::span<const std::uint8_t> data)
{
    return internetChecksum(data) == 0;
}

} // namespace qpip::inet
