/**
 * @file
 * Internet addresses: IPv4, IPv6 (with full textual parse/format
 * including "::" compression) and the family-agnostic InetAddr /
 * SockAddr used by the transport layer. The QPIP prototype speaks
 * IPv6; the host-based Linux baseline speaks IPv4, exactly as in the
 * paper.
 */

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qpip::inet {

/** An IPv4 address in host byte order. */
struct Ipv4Addr
{
    std::uint32_t value = 0;

    static std::optional<Ipv4Addr> parse(std::string_view text);
    std::string toString() const;

    auto operator<=>(const Ipv4Addr &) const = default;
};

/** An IPv6 address as 16 network-order bytes. */
struct Ipv6Addr
{
    std::array<std::uint8_t, 16> bytes{};

    static std::optional<Ipv6Addr> parse(std::string_view text);
    std::string toString() const;

    auto operator<=>(const Ipv6Addr &) const = default;
};

/** Address family discriminator. */
enum class Family : std::uint8_t { V4, V6 };

/**
 * A family-tagged address. The transport code (TCP/UDP) is family
 * agnostic; only header serialization and the pseudo-header checksum
 * differ.
 */
struct InetAddr
{
    Family family = Family::V4;
    Ipv4Addr v4{};
    Ipv6Addr v6{};

    InetAddr() = default;
    InetAddr(Ipv4Addr a) : family(Family::V4), v4(a) {}
    InetAddr(Ipv6Addr a) : family(Family::V6), v6(a) {}

    /** Parse either family from text (IPv6 if it contains ':'). */
    static std::optional<InetAddr> parse(std::string_view text);

    std::string toString() const;
    bool isV6() const { return family == Family::V6; }

    auto operator<=>(const InetAddr &) const = default;
};

/** Address + transport port. */
struct SockAddr
{
    InetAddr addr;
    std::uint16_t port = 0;

    std::string toString() const;

    auto operator<=>(const SockAddr &) const = default;
};

/** Hash support for unordered_map keys. */
struct InetAddrHash
{
    std::size_t operator()(const InetAddr &a) const;
};

struct SockAddrHash
{
    std::size_t operator()(const SockAddr &a) const;
};

} // namespace qpip::inet
