#include "inet/inet_stack.hh"

#include "inet/ipv4.hh"
#include "inet/ipv6.hh"
#include "inet/tcp_header.hh"
#include "inet/udp.hh"
#include "net/packet.hh"
#include "sim/logging.hh"

namespace qpip::inet {

InetStack::InetStack(InetEnv &env, sim::Tick reass_timeout)
    : env_(env), reass_(reass_timeout)
{}

void
InetStack::addLocalAddress(const InetAddr &addr)
{
    localAddrs_.insert(addr);
}

bool
InetStack::isLocal(const InetAddr &addr) const
{
    return localAddrs_.contains(addr);
}

std::size_t
InetStack::maxIpPayload(const InetAddr &dst)
{
    // Both wire formats bound a datagram by 16-bit length fields:
    // v4's total length includes the header; v6's payload length (and
    // the fragment offset field) cap the upper-layer bytes.
    return dst.isV6() ? 65535 : 65535 - ipv4HeaderBytes;
}

// ---------------------------------------------------------------------
// Transmit
// ---------------------------------------------------------------------

IpSendResult
InetStack::ipOutput(IpDatagram &&dgram)
{
    if (isLocal(dgram.dst)) {
        // Loopback: straight back into ipInput with the receive-side
        // protocol charges (no driver, no interrupt) — exactly the
        // path the paper uses to bound host overhead in Table 1.
        loopbackPkts.inc();
        ipInput(std::move(dgram));
        return IpSendResult::Ok;
    }
    // Route first: the egress interface — and with it the MTU — is a
    // property of the chosen next hop on a multi-homed context.
    const auto route = routes_.lookup(dgram.dst);
    if (!route) {
        sim::warn("%s: no route to %s", env_.inetName().c_str(),
                  dgram.dst.toString().c_str());
        return IpSendResult::NoRoute;
    }
    const auto mtu = env_.txMtu(*route);
    if (!mtu) {
        sim::warn("%s: no NIC attached, dropping",
                  env_.inetName().c_str());
        return IpSendResult::NoLink;
    }

    env_.chargeIpHeaderTx();
    const bool v6 = dgram.dst.isV6();
    const std::size_t len = dgram.payload.size();
    bool encodable;
    if (!v6) {
        encodable = len <= maxIpPayload(dgram.dst);
    } else if (ipv6HeaderBytes + len <= *mtu) {
        // Single frame: the 16-bit payload-length field binds.
        encodable = len <= maxIpPayload(dgram.dst);
    } else {
        // Fragmented: each fragment's 13-bit (x8-octet) offset must
        // encode, which on a SAN-scale MTU admits datagrams beyond
        // 64 KiB (QPIP message mode leans on this, jumbogram-style).
        const std::size_t cap =
            (*mtu - ipv6HeaderBytes - ipv6FragHeaderBytes) &
            ~std::size_t(7);
        encodable = cap > 0 && ((len - 1) / cap) * cap <= 65528;
    }
    if (!encodable) {
        msgSizeDrops.inc();
        sim::warn("%s: datagram exceeds the IP length limit, dropping",
                  env_.inetName().c_str());
        return IpSendResult::MsgSize;
    }

    pktsOut.inc();
    auto frames = v6 ? fragmentIpv6(dgram, *mtu, fragIdent_++)
                     : fragmentIpv4(dgram, *mtu, identCounter_++);
    if (frames.size() > 1)
        env_.chargeFragmentsTx(frames.size() - 1);
    env_.chargeMediaSend();
    env_.wireTx(std::move(frames), v6, *route);
    // The datagram's payload has been copied into the wire frames;
    // retire its storage so the next segment reuses the capacity.
    net::recycleBuffer(std::move(dgram.payload));
    return IpSendResult::Ok;
}

// ---------------------------------------------------------------------
// Receive
// ---------------------------------------------------------------------

void
InetStack::wireInput(net::NetProto proto,
                     std::span<const std::uint8_t> bytes)
{
    env_.chargeRxFrame(bytes.size());

    IpFrame frame;
    bool ok = false;
    if (proto == net::NetProto::Ipv4)
        ok = parseIpv4(bytes, frame);
    else if (proto == net::NetProto::Ipv6)
        ok = parseIpv6(bytes, frame);
    if (!ok) {
        badFrames.inc();
        return;
    }
    env_.chargeIpParsed(frame.frag.has_value());

    reass_.expire(env_.now());
    auto dgram = reass_.offer(std::move(frame), env_.now());
    if (dgram)
        ipInput(std::move(*dgram));
    // else: fragment held for reassembly
}

void
InetStack::ipInput(IpDatagram dgram)
{
    switch (dgram.proto) {
      case IpProto::Tcp:
        deliverTcp(dgram);
        break;
      case IpProto::Udp:
        deliverUdp(dgram);
        break;
      default:
        badFrames.inc();
        break;
    }
    // Upper layers consume the payload synchronously (spans are
    // copied before returning); retire the storage for reuse.
    net::recycleBuffer(std::move(dgram.payload));
}

void
InetStack::deliverTcp(IpDatagram &dgram)
{
    TcpHeader hdr;
    std::span<const std::uint8_t> payload;
    if (!parseTcp(dgram.src, dgram.dst, dgram.payload, hdr, payload)) {
        badFrames.inc();
        return;
    }

    const bool pure_ack =
        payload.empty() &&
        !(hdr.flags &
          (tcpflags::syn | tcpflags::fin | tcpflags::rst));
    env_.chargeTcpInput(payload.size(), pure_ack);

    FourTuple t;
    t.local = SockAddr{dgram.dst, hdr.dstPort};
    t.remote = SockAddr{dgram.src, hdr.srcPort};
    if (auto *conn = tcp_.lookupConn(t)) {
        conn->segmentArrived(hdr, payload);
        return;
    }
    // New connection?
    if (hdr.has(tcpflags::syn) && !hdr.has(tcpflags::ack)) {
        if (env_.tcpAccept(t, hdr))
            return;
    }
    noMatchDrops.inc();
    env_.tcpRefused(dgram, hdr, payload);
}

void
InetStack::deliverUdp(IpDatagram &dgram)
{
    env_.chargeUdpPreParse();
    UdpHeader hdr;
    std::span<const std::uint8_t> payload;
    if (!parseUdp(dgram.src, dgram.dst, dgram.payload, hdr, payload)) {
        badFrames.inc();
        return;
    }
    env_.chargeUdpInput(payload.size());

    auto it = udpPorts_.find(hdr.dstPort);
    if (it == udpPorts_.end()) {
        noMatchDrops.inc();
        return;
    }
    it->second->udpDeliver(
        std::vector<std::uint8_t>(payload.begin(), payload.end()),
        SockAddr{dgram.src, hdr.srcPort});
}

// ---------------------------------------------------------------------
// Demux tables
// ---------------------------------------------------------------------

void
InetStack::registerConn(const FourTuple &t, TcpConnection *conn)
{
    tcp_.insertConn(t, conn);
}

void
InetStack::unregisterConn(const FourTuple &t)
{
    tcp_.eraseConn(t);
}

TcpConnection *
InetStack::lookupConn(const FourTuple &t) const
{
    return tcp_.lookupConn(t);
}

bool
InetStack::bindUdp(std::uint16_t port, UdpEndpoint *ep)
{
    if (udpPorts_.contains(port))
        return false;
    udpPorts_[port] = ep;
    return true;
}

void
InetStack::unbindUdp(std::uint16_t port)
{
    udpPorts_.erase(port);
}

// ---------------------------------------------------------------------
// TcpEnv
// ---------------------------------------------------------------------

sim::Tick
InetStack::now()
{
    return env_.now();
}

sim::EventHandle
InetStack::scheduleTimer(sim::Tick delay, std::function<void()> fn)
{
    return env_.scheduleTimer(delay, std::move(fn));
}

void
InetStack::tcpOutput(IpDatagram &&dgram, const TcpSegMeta &meta)
{
    env_.emitTcpSegment(std::move(dgram), meta);
}

std::uint32_t
InetStack::randomIss()
{
    return env_.randomIss();
}

void
InetStack::connectionClosed(TcpConnection &conn)
{
    tcp_.eraseConn(conn.tuple());
    env_.connectionClosed(conn);
}

sim::Tracer *
InetStack::tracer()
{
    return env_.tracer();
}

} // namespace qpip::inet
