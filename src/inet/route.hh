/**
 * @file
 * Static neighbor/route table mapping IP addresses to fabric node ids
 * — the moral equivalent of the prototype's "static table that maps
 * IPv6 addresses to switch routes" (and of ARP for the v4 baseline).
 */

#pragma once

#include <optional>
#include <unordered_map>

#include "inet/inet_addr.hh"
#include "net/packet.hh"

namespace qpip::inet {

/**
 * Address-to-link-destination resolution.
 */
class NeighborTable
{
  public:
    void add(const InetAddr &addr, net::NodeId node);

    /** @return fabric node for @p addr, or nullopt if unknown. */
    std::optional<net::NodeId> lookup(const InetAddr &addr) const;

    std::size_t size() const { return table_.size(); }

  private:
    std::unordered_map<InetAddr, net::NodeId, InetAddrHash> table_;
};

} // namespace qpip::inet
