#include "inet/rtt_estimator.hh"

#include <algorithm>

namespace qpip::inet {

RttEstimator::RttEstimator(sim::Tick min_rto, sim::Tick max_rto)
    : minRto_(min_rto), maxRto_(max_rto)
{}

void
RttEstimator::sample(sim::Tick rtt)
{
    if (!hasSample_) {
        // RFC 6298 (2.2): SRTT <- R, RTTVAR <- R/2.
        srtt_ = rtt;
        rttvar_ = rtt / 2;
        hasSample_ = true;
        return;
    }
    // RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R|
    const sim::Tick err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = (3 * rttvar_ + err) / 4;
    // SRTT <- 7/8 SRTT + 1/8 R
    srtt_ = (7 * srtt_ + rtt) / 8;
}

sim::Tick
RttEstimator::rto() const
{
    sim::Tick base = hasSample_ ? srtt_ + std::max<sim::Tick>(
                                      4 * rttvar_, sim::oneMs)
                                : sim::oneSec; // RFC 6298 initial 1 s
    base = std::clamp(base, minRto_, maxRto_);
    // Apply exponential backoff, saturating at maxRto_.
    for (unsigned i = 0; i < backoffShift_; ++i) {
        if (base >= maxRto_ / 2)
            return maxRto_;
        base *= 2;
    }
    return std::min(base, maxRto_);
}

void
RttEstimator::backoff()
{
    if (backoffShift_ < 16)
        ++backoffShift_;
}

} // namespace qpip::inet
