/**
 * @file
 * Protocol control block demultiplexing: maps a connection four-tuple
 * (or a listening local port) to its endpoint object. Both the host
 * stack and the QPIP NIC firmware use one of these; the paper calls
 * out "UDP/TCP connection de-multiplexing" as one of the key places
 * where hardware support pays off.
 */

#pragma once

#include <cstdint>
#include <map>

#include "inet/inet_addr.hh"

namespace qpip::inet {

/** Connection identity: local and remote endpoints. */
struct FourTuple
{
    SockAddr local;
    SockAddr remote;

    auto operator<=>(const FourTuple &) const = default;
};

/**
 * Demux table: exact four-tuple matches first, then listeners by
 * local port. Ordered containers: teardown and bulk walks iterate in
 * four-tuple order, so same-seed replays visit connections in the
 * same sequence regardless of hash seeding or insertion history.
 */
template <typename Conn, typename Listener>
class PcbTable
{
  public:
    void
    insertConn(const FourTuple &t, Conn *conn)
    {
        conns_[t] = conn;
    }

    void eraseConn(const FourTuple &t) { conns_.erase(t); }

    Conn *
    lookupConn(const FourTuple &t) const
    {
        auto it = conns_.find(t);
        return it == conns_.end() ? nullptr : it->second;
    }

    void
    insertListener(std::uint16_t port, Listener *l)
    {
        listeners_[port] = l;
    }

    void eraseListener(std::uint16_t port) { listeners_.erase(port); }

    Listener *
    lookupListener(std::uint16_t port) const
    {
        auto it = listeners_.find(port);
        return it == listeners_.end() ? nullptr : it->second;
    }

    std::size_t connCount() const { return conns_.size(); }

    /** Visit every connection (e.g. for teardown) in key order. */
    template <typename Fn>
    void
    forEachConn(Fn fn) const
    {
        for (auto &[t, c] : conns_)
            fn(t, c);
    }

  private:
    std::map<FourTuple, Conn *> conns_;
    std::map<std::uint16_t, Listener *> listeners_;
};

} // namespace qpip::inet
