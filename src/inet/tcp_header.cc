#include "inet/tcp_header.hh"

#include "inet/checksum.hh"
#include "inet/udp.hh" // addPseudoHeader
#include "net/packet.hh"
#include "net/serialize.hh"

namespace qpip::inet {

namespace {

// Option kinds.
constexpr std::uint8_t optEnd = 0;
constexpr std::uint8_t optNop = 1;
constexpr std::uint8_t optMss = 2;
constexpr std::uint8_t optWscale = 3;
constexpr std::uint8_t optTimestamps = 8;

std::size_t
optionBytes(const TcpHeader &hdr)
{
    std::size_t n = 0;
    if (hdr.mss)
        n += 4;
    if (hdr.wscale)
        n += 3;
    if (hdr.timestamps)
        n += 10;
    return (n + 3) & ~std::size_t(3); // pad to 32-bit boundary
}

} // namespace

std::size_t
TcpHeader::headerBytes() const
{
    return tcpMinHeaderBytes + optionBytes(*this);
}

std::vector<std::uint8_t>
serializeTcp(const InetAddr &src, const InetAddr &dst,
             const TcpHeader &hdr, std::span<const std::uint8_t> payload)
{
    const std::size_t hdr_len = hdr.headerBytes();
    std::vector<std::uint8_t> out = net::acquireBuffer();
    out.reserve(hdr_len + payload.size());
    net::ByteWriter w(out);
    w.u16(hdr.srcPort);
    w.u16(hdr.dstPort);
    w.u32(hdr.seq);
    w.u32(hdr.ack);
    w.u8(static_cast<std::uint8_t>((hdr_len / 4) << 4));
    w.u8(hdr.flags);
    w.u16(hdr.wnd);
    w.u16(0); // checksum placeholder
    w.u16(hdr.urgent);

    if (hdr.mss) {
        w.u8(optMss);
        w.u8(4);
        w.u16(*hdr.mss);
    }
    if (hdr.wscale) {
        w.u8(optWscale);
        w.u8(3);
        w.u8(*hdr.wscale);
    }
    if (hdr.timestamps) {
        w.u8(optTimestamps);
        w.u8(10);
        w.u32(hdr.timestamps->value);
        w.u32(hdr.timestamps->echo);
    }
    while (out.size() < hdr_len)
        w.u8(optEnd);

    w.bytes(payload);

    ChecksumAccumulator acc;
    addPseudoHeader(acc, src, dst, IpProto::Tcp,
                    static_cast<std::uint32_t>(out.size()));
    acc.add(out);
    w.patchU16(16, acc.finish());
    return out;
}

bool
parseTcp(const InetAddr &src, const InetAddr &dst,
         std::span<const std::uint8_t> bytes, TcpHeader &hdr,
         std::span<const std::uint8_t> &payload)
{
    if (bytes.size() < tcpMinHeaderBytes)
        return false;

    ChecksumAccumulator acc;
    addPseudoHeader(acc, src, dst, IpProto::Tcp,
                    static_cast<std::uint32_t>(bytes.size()));
    acc.add(bytes);
    if (acc.finish() != 0)
        return false;

    net::ByteReader r(bytes);
    hdr.srcPort = r.u16();
    hdr.dstPort = r.u16();
    hdr.seq = r.u32();
    hdr.ack = r.u32();
    const std::uint8_t off = r.u8();
    hdr.flags = r.u8() & 0x3f;
    hdr.wnd = r.u16();
    r.u16(); // checksum (already verified)
    hdr.urgent = r.u16();

    const std::size_t hdr_len = std::size_t(off >> 4) * 4;
    if (hdr_len < tcpMinHeaderBytes || hdr_len > bytes.size())
        return false;

    hdr.mss.reset();
    hdr.wscale.reset();
    hdr.timestamps.reset();

    std::size_t pos = tcpMinHeaderBytes;
    while (pos < hdr_len) {
        const std::uint8_t kind = bytes[pos];
        if (kind == optEnd)
            break;
        if (kind == optNop) {
            ++pos;
            continue;
        }
        if (pos + 1 >= hdr_len)
            return false;
        const std::uint8_t len = bytes[pos + 1];
        if (len < 2 || pos + len > hdr_len)
            return false;
        net::ByteReader opt(bytes.subspan(pos + 2, len - 2));
        switch (kind) {
          case optMss:
            if (len == 4)
                hdr.mss = opt.u16();
            break;
          case optWscale:
            if (len == 3)
                hdr.wscale = opt.u8();
            break;
          case optTimestamps:
            if (len == 10) {
                TcpTimestamps ts;
                ts.value = opt.u32();
                ts.echo = opt.u32();
                hdr.timestamps = ts;
            }
            break;
          default:
            break; // unknown options skipped
        }
        pos += len;
    }

    payload = bytes.subspan(hdr_len);
    return true;
}

} // namespace qpip::inet
