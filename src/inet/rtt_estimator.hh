/**
 * @file
 * Round-trip-time estimation and retransmission timeout computation in
 * the BSD/Jacobson tradition, with Karn's rule applied by the caller
 * (retransmitted segments are never timed; RFC 1323 timestamps allow a
 * sample from every ACK).
 *
 * This is the computation whose software multiplies dominate the
 * LANai 9's ACK-receive cost in Table 3 — the firmware cost model
 * charges extra cycles for it when the hwMultiply assist is off.
 */

#pragma once

#include "sim/types.hh"

namespace qpip::inet {

/**
 * srtt/rttvar estimator per Jacobson '88 / RFC 6298 with configurable
 * RTO clamps.
 */
class RttEstimator
{
  public:
    /**
     * @param min_rto lower clamp (Linux uses 200 ms; the SAN-tuned
     *        firmware runtime uses a much smaller value).
     */
    RttEstimator(sim::Tick min_rto, sim::Tick max_rto);

    /** Fold in a measured round-trip sample. */
    void sample(sim::Tick rtt);

    /** Current retransmission timeout (with backoff applied). */
    sim::Tick rto() const;

    /** Exponential backoff after a retransmission timeout. */
    void backoff();

    /** Reset backoff after an ACK of new data (Karn). */
    void resetBackoff() { backoffShift_ = 0; }

    bool hasSample() const { return hasSample_; }
    sim::Tick srtt() const { return srtt_; }
    sim::Tick rttvar() const { return rttvar_; }
    unsigned backoffShift() const { return backoffShift_; }

  private:
    sim::Tick minRto_;
    sim::Tick maxRto_;
    sim::Tick srtt_ = 0;
    sim::Tick rttvar_ = 0;
    bool hasSample_ = false;
    unsigned backoffShift_ = 0;
};

} // namespace qpip::inet
