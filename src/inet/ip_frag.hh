/**
 * @file
 * IP fragmentation and reassembly for both families. IPv6 has no
 * in-network fragmentation: only the source fragments and only the
 * destination reassembles — the property the paper calls "better
 * suited to hardware based protocol implementations". The QPIP NIC
 * uses this to push one arbitrarily-sized TCP message-segment through
 * a smaller link MTU (Figure 4's 1500/9000 byte points). The IPv4
 * source-side fragmenter follows the same end-to-end discipline so
 * the shared InetStack can carry either family.
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "inet/ipv6.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace qpip::inet {

/**
 * Fragment @p dgram into IPv6 wire packets that fit @p link_mtu.
 * Emits a single unfragmented packet when it fits. @p ident must be
 * unique per (src,dst) for the reassembly window.
 */
std::vector<std::vector<std::uint8_t>>
fragmentIpv6(const IpDatagram &dgram, std::uint32_t link_mtu,
             std::uint32_t ident);

/**
 * Fragment @p dgram into IPv4 wire packets that fit @p link_mtu.
 * A datagram that fits emits the unfragmented (DF) form; larger ones
 * carry MF/offset in the fixed header (RFC 791).
 */
std::vector<std::vector<std::uint8_t>>
fragmentIpv4(const IpDatagram &dgram, std::uint32_t link_mtu,
             std::uint16_t ident);

/**
 * Destination-side reassembly for either family. Keyed by
 * (src, dst, ident) — the addresses keep the two families' ident
 * spaces apart; partial datagrams expire after a timeout (RFC 2460
 * says 60 s; the SAN configs use far less so a lost fragment doesn't
 * pin NIC SRAM).
 */
class IpReassembler
{
  public:
    explicit IpReassembler(sim::Tick timeout = 60 * sim::oneSec)
        : timeout_(timeout)
    {}

    /**
     * Offer one parsed frame. Taken by value so the hot unfragmented
     * path can move the payload through instead of copying it.
     * @return a complete datagram if @p pkt finished one, else
     *         std::nullopt. Unfragmented packets complete immediately.
     */
    std::optional<IpDatagram> offer(IpFrame pkt, sim::Tick now);

    /** Drop partial datagrams older than the timeout. */
    void expire(sim::Tick now);

    /** Number of partially reassembled datagrams held. */
    std::size_t pending() const { return pending_.size(); }

    sim::Counter fragmentsIn;
    sim::Counter reassembled;
    sim::Counter expired;

  private:
    struct Key
    {
        InetAddr src, dst;
        std::uint32_t ident;
        auto operator<=>(const Key &) const = default;
    };

    struct Partial
    {
        /** offset -> slice bytes. */
        std::map<std::uint16_t, std::vector<std::uint8_t>> slices;
        /** Total length, known once the last fragment arrives. */
        std::uint32_t totalLen = 0;
        bool sawLast = false;
        IpProto proto = IpProto::Udp;
        std::uint8_t hopLimit = defaultHopLimit;
        sim::Tick firstAt = 0;
    };

    std::optional<IpDatagram> tryComplete(const Key &key, Partial &p);

    sim::Tick timeout_;
    /** Ordered so the expiry sweep walks partials deterministically. */
    std::map<Key, Partial> pending_;
};

/** Historical name from when only the IPv6 path could fragment. */
using Ipv6Reassembler = IpReassembler;

} // namespace qpip::inet
