#include "sim/partition.hh"

namespace qpip::sim {

namespace detail {

namespace {
thread_local ExecContext *gExecContext = nullptr;
} // namespace

ExecContext *
currentExecContext()
{
    return gExecContext;
}

void
setCurrentExecContext(ExecContext *ctx)
{
    gExecContext = ctx;
}

} // namespace detail

Partition::Partition(std::uint32_t id, std::string name,
                     std::uint64_t seed)
    : id_(id), name_(std::move(name)), rng_(seed)
{
    eq_.setLabel(name_);
    ctx_.eq = &eq_;
    ctx_.rng = &rng_;
}

} // namespace qpip::sim
