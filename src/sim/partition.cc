#include "sim/partition.hh"

#include <algorithm>

namespace qpip::sim {

namespace detail {

namespace {
thread_local ExecContext *gExecContext = nullptr;
} // namespace

ExecContext *
currentExecContext()
{
    return gExecContext;
}

void
setCurrentExecContext(ExecContext *ctx)
{
    gExecContext = ctx;
}

} // namespace detail

Partition::Partition(std::uint32_t id, std::string name,
                     std::uint64_t seed)
    : id_(id), name_(std::move(name)), rng_(seed)
{
    eq_.setLabel(name_);
    ctx_.eq = &eq_;
    ctx_.rng = &rng_;
}

void
Mailbox::sortBatch()
{
    const auto before = [](const Msg &a, const Msg &b) {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    };
    if (!std::is_sorted(msgs_.begin(), msgs_.end(), before))
        std::sort(msgs_.begin(), msgs_.end(), before);
}

void
Mailbox::panicBelowHorizon(Tick when) const
{
    panic("Mailbox p%u(%s) -> p%u(%s): post at tick %llu violates the "
          "destination's epoch horizon %llu (edge lookahead %llu "
          "declared too large for the link it models?)",
          src_.id(), src_.name().c_str(), dst_.id(),
          dst_.name().c_str(), static_cast<unsigned long long>(when),
          static_cast<unsigned long long>(dst_.epochHorizon()),
          static_cast<unsigned long long>(lookahead_));
}

} // namespace qpip::sim
