/**
 * @file
 * Lightweight statistics used everywhere in the simulator: counters,
 * running mean/stddev accumulators, min/max trackers and fixed-bucket
 * histograms. The NIC firmware uses SampleStat per pipeline stage to
 * regenerate the paper's occupancy tables (Tables 2 and 3).
 */

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace qpip::sim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Accumulates samples and reports count/mean/stddev/min/max using
 * Welford's online algorithm.
 */
class SampleStat
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double total() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A histogram over [lo, hi) with equal-width buckets plus underflow
 * and overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Approximate quantile (0..1) from bucket midpoints. */
    double quantile(double q) const;

    /** Multi-line ASCII rendering for reports. */
    std::string render(std::size_t width = 40) const;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

} // namespace qpip::sim
