/**
 * @file
 * Clock domains: convert between cycle counts of a component running
 * at some frequency (host CPU at 550 MHz, LANai at 133 MHz, PCI at
 * 33 MHz) and global picosecond ticks.
 */

#pragma once

#include <cstdint>

#include "sim/types.hh"

namespace qpip::sim {

/**
 * A fixed-frequency clock domain.
 */
class ClockDomain
{
  public:
    /** @param freq_hz domain frequency in Hz; must be > 0. */
    explicit ClockDomain(std::uint64_t freq_hz);

    /** Domain frequency in Hz. */
    std::uint64_t frequency() const { return freqHz_; }

    /** Period of one cycle, in (fractional) picoseconds. */
    double periodPs() const { return periodPs_; }

    /** Convert a cycle count to ticks (rounded to nearest tick). */
    Tick cyclesToTicks(Cycles c) const;

    /** Convert (fractional) microseconds to whole cycles (rounded). */
    Cycles usToCycles(double us) const;

    /** Convert a tick count to whole cycles (rounded down). */
    Cycles ticksToCycles(Tick t) const;

  private:
    std::uint64_t freqHz_;
    double periodPs_;
};

} // namespace qpip::sim
