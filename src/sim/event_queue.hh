/**
 * @file
 * The discrete-event scheduler at the heart of the simulation.
 *
 * Events are closures scheduled at an absolute Tick. Ties are broken
 * first by an explicit priority (lower runs first) and then by
 * insertion order, so the simulation is fully deterministic. Scheduled
 * events can be cancelled or rescheduled through an EventHandle,
 * which is how protocol timers (TCP retransmit, delayed ACK, ...) are
 * implemented.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace qpip::sim {

/** Default event priority; smaller values run earlier within a tick. */
constexpr int defaultPriority = 0;

namespace detail {

/** Shared bookkeeping for one scheduled event. */
struct EventRecord
{
    Tick when = 0;
    int priority = defaultPriority;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    bool cancelled = false;
    bool done = false;
};

} // namespace detail

/**
 * A cancellable reference to a scheduled event. Default-constructed
 * handles are inert. Handles are cheap to copy; cancelling any copy
 * cancels the event.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** @return true if the event is still pending (not run/cancelled). */
    bool
    pending() const
    {
        return rec_ && !rec_->cancelled && !rec_->done;
    }

    /** Cancel the event if it has not run yet. Safe to call anytime. */
    void
    cancel()
    {
        if (rec_)
            rec_->cancelled = true;
    }

    /** Scheduled expiry tick; only meaningful while pending(). */
    Tick
    when() const
    {
        return rec_ ? rec_->when : maxTick;
    }

  private:
    friend class EventQueue;
    explicit EventHandle(std::shared_ptr<detail::EventRecord> rec)
        : rec_(std::move(rec))
    {}

    std::shared_ptr<detail::EventRecord> rec_;
};

/**
 * A deterministic priority-queue event scheduler.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now()
     */
    EventHandle schedule(Tick when, std::function<void()> fn,
                         int priority = defaultPriority);

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle
    scheduleIn(Tick delay, std::function<void()> fn,
               int priority = defaultPriority)
    {
        return schedule(now_ + delay, std::move(fn), priority);
    }

    /** @return true if no runnable events remain. */
    bool empty() const;

    /** Tick of the next runnable event, or maxTick if none. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue drains or @p until is reached.
     * Events scheduled exactly at @p until do not run; now() advances
     * to min(until, drain time).
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue fully drains. @return events executed. */
    std::uint64_t run() { return runUntil(maxTick); }

    /**
     * Run a single event if one is runnable before @p until.
     * @return true if an event ran.
     */
    bool step(Tick until = maxTick);

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Discard every pending event without running it. Destroying the
     * dropped closures may release resources that try to schedule
     * further events; those are silently discarded too. Use this to
     * break reference cycles before tearing down the objects the
     * closures point at.
     */
    void clear();

  private:
    using RecPtr = std::shared_ptr<detail::EventRecord>;

    struct Later
    {
        bool
        operator()(const RecPtr &a, const RecPtr &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    /** Drop cancelled events sitting at the head of the heap. */
    void skipCancelled();

    std::priority_queue<RecPtr, std::vector<RecPtr>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    bool clearing_ = false;
};

} // namespace qpip::sim
