/**
 * @file
 * The discrete-event scheduler at the heart of the simulation.
 *
 * Events are closures scheduled at an absolute Tick. Ties are broken
 * first by an explicit priority (lower runs first) and then by
 * insertion order, so the simulation is fully deterministic. Scheduled
 * events can be cancelled or rescheduled through an EventHandle,
 * which is how protocol timers (TCP retransmit, delayed ACK, ...) are
 * implemented.
 *
 * Hot-path design: event records live in a slab (a deque of
 * fixed-position records) recycled through a LIFO freelist, and the
 * closure is stored inline in the record (EventFn) — the
 * schedule/cancel/fire cycle performs no heap allocation once the
 * slab has grown to the workload's steady-state event population.
 * Handles are generation-counted (slot, gen) pairs instead of
 * shared_ptr, so copying one is trivial and a stale handle on a
 * recycled slot is detected by the generation mismatch. The freelist
 * is LIFO in heap-pop order, which is itself deterministic, so slot
 * assignment never perturbs replay.
 *
 * EventHandles must not outlive the EventQueue they came from (in
 * practice: the Simulation outlives the SimObjects built against it).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace qpip::sim {

/** Default event priority; smaller values run earlier within a tick. */
constexpr int defaultPriority = 0;

namespace detail {

/**
 * A move-in, invoke-once callable slot with inline storage. Closures
 * up to inlineBytes are constructed in place inside the event record;
 * larger ones (rare) fall back to one heap allocation. Unlike
 * std::function this never allocates for the common simulator
 * closures (a `this` pointer plus a few captured values).
 */
class EventFn
{
  public:
    EventFn() = default;
    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;
    ~EventFn() { reset(); }

    /** Construct a callable in place (destroys any previous one). */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
            heap_ = nullptr;
        } else {
            heap_ = new Fn(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            destroy_ = [](void *p) { delete static_cast<Fn *>(p); };
        }
    }

    /** Destroy the held callable, if any. */
    void
    reset()
    {
        if (invoke_ == nullptr)
            return;
        // Clear before destroying: the destructor may re-enter the
        // event queue (closures owning resources that cancel timers).
        auto *destroy = destroy_;
        void *target = heap_ != nullptr ? heap_ : storage_;
        invoke_ = nullptr;
        destroy_ = nullptr;
        heap_ = nullptr;
        destroy(target);
    }

    explicit operator bool() const { return invoke_ != nullptr; }

    void
    operator()()
    {
        invoke_(heap_ != nullptr ? heap_ : storage_);
    }

    /** Inline capacity, sized for the datapath's largest closures. */
    static constexpr std::size_t inlineBytes = 128;

  private:
    alignas(std::max_align_t) unsigned char storage_[inlineBytes];
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    void *heap_ = nullptr;
};

/** Lifecycle of a slab slot. */
enum class EventState : std::uint8_t {
    Free,      ///< on the freelist
    Pending,   ///< scheduled, in the heap
    Cancelled, ///< cancelled, heap entry not yet popped
    Running,   ///< popped and executing (slot freed afterwards)
};

/** One slab slot: bookkeeping for one scheduled event. */
struct EventRecord
{
    Tick when = 0;
    int priority = defaultPriority;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    EventState state = EventState::Free;
    EventFn fn;
};

} // namespace detail

class EventQueue;

/**
 * A cancellable reference to a scheduled event. Default-constructed
 * handles are inert. Handles are trivially copyable (slot index plus
 * generation); cancelling any copy cancels the event. A handle whose
 * event has run or been cancelled — or whose slot was recycled for a
 * newer event — reports !pending() and when() == maxTick.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** @return true if the event is still pending (not run/cancelled). */
    bool pending() const;

    /** Cancel the event if it has not run yet. Safe to call anytime. */
    void cancel();

    /** Scheduled expiry tick; maxTick once run/cancelled/inert. */
    Tick when() const;

  private:
    friend class EventQueue;
    EventHandle(EventQueue *q, std::uint32_t slot, std::uint32_t gen)
        : queue_(q), slot_(slot), gen_(gen)
    {}

    EventQueue *queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * A deterministic priority-queue event scheduler.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn (any void() callable) to run at absolute time
     * @p when. The callable is stored inline in the pooled event
     * record; no allocation happens for closures that fit
     * detail::EventFn::inlineBytes.
     * @pre when >= now()
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn, int priority = defaultPriority)
    {
        if (clearing_)
            return EventHandle{}; // teardown in progress: drop silently
        checkSchedulable(when);
        const std::uint32_t slot = acquireSlot();
        detail::EventRecord &rec = slab_[slot];
        rec.when = when;
        rec.priority = priority;
        rec.seq = nextSeq_++;
        rec.state = detail::EventState::Pending;
        rec.fn.emplace(std::forward<F>(fn));
        heapPush(HeapEntry{when, priority, rec.seq, slot});
        return EventHandle(this, slot, rec.gen);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&fn, int priority = defaultPriority)
    {
        return schedule(now_ + delay, std::forward<F>(fn), priority);
    }

    /** @return true if no runnable events remain. */
    bool empty() const;

    /** Tick of the next runnable event, or maxTick if none. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue drains or @p until is reached.
     * Events scheduled exactly at @p until do not run; now() advances
     * to min(until, drain time).
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Run until the queue fully drains. @return events executed. */
    std::uint64_t run() { return runUntil(maxTick); }

    /**
     * Advance the clock to @p t without running anything — the
     * parallel engine's idle-partition fast path: a partition with no
     * event below its epoch bound still owns the time, so later
     * schedule() calls must be measured against it. maxTick is
     * ignored (mirroring runUntil); skipping a runnable event would
     * corrupt causality and panics.
     */
    void advanceTo(Tick t);

    /**
     * Run a single event if one is runnable before @p until.
     * @return true if an event ran.
     */
    bool
    step(Tick until = maxTick)
    {
        skipCancelled();
        if (heap_.empty() || heap_.front().when >= until)
            return false;
        const std::uint32_t slot = heap_.front().slot;
        heapPop();
        detail::EventRecord &rec = slab_[slot];
        now_ = rec.when;
        rec.state = detail::EventState::Running;
        ++executed_;
        rec.fn();
        // Release only after the closure returns: it may schedule new
        // events, and this slot must not be handed out while running.
        releaseSlot(slot);
        return true;
    }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Discard every pending event without running it. Destroying the
     * dropped closures may release resources that try to schedule
     * further events; those are silently discarded too. Use this to
     * break reference cycles before tearing down the objects the
     * closures point at.
     */
    void clear();

    /**
     * Partition-local mode: label this queue with its owning
     * partition's name so scheduling diagnostics identify the shard
     * (the global queue stays unlabelled).
     */
    void setLabel(std::string label) { label_ = std::move(label); }
    const std::string &label() const { return label_; }

    /** Slab capacity in records (diagnostics/tests). */
    std::size_t slabSize() const { return slab_.size(); }

    /** Free records ready for reuse (diagnostics/tests). */
    std::size_t freeSlots() const { return freelist_.size(); }

  private:
    friend class EventHandle;

    /** Heap entry: ordering key plus the slab slot it refers to. */
    struct HeapEntry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /**
     * (when, priority, seq) is a strict total order (seq is unique),
     * so the pop sequence is the same for any correct heap — the heap
     * arity and layout are free to change without affecting replay.
     */
    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    /**
     * The heap is 4-ary: half the levels of a binary heap, and the
     * four children share cache lines, which is what the event loop's
     * pop-push cadence is bound by.
     */
    void
    heapPush(const HeapEntry &e)
    {
        std::size_t i = heap_.size();
        heap_.push_back(e);
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!earlier(heap_[i], heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    /** Remove the minimum (heap_.front()). Hole-based sift-down. */
    void
    heapPop()
    {
        const HeapEntry last = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            const std::size_t child = (i << 2) + 1;
            if (child >= n)
                break;
            std::size_t best = child;
            const std::size_t end = child + 4 < n ? child + 4 : n;
            for (std::size_t c = child + 1; c < end; ++c) {
                if (earlier(heap_[c], heap_[best]))
                    best = c;
            }
            if (!earlier(heap_[best], last))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }

    /** Panics when @p when is in the past (out-of-line: cold path). */
    [[noreturn]] void panicPast(Tick when) const;

    void
    checkSchedulable(Tick when) const
    {
        if (when < now_) [[unlikely]]
            panicPast(when);
    }

    /** Pop a free slot, growing the slab if the freelist is empty. */
    std::uint32_t
    acquireSlot()
    {
        if (!freelist_.empty()) {
            const std::uint32_t slot = freelist_.back();
            freelist_.pop_back();
            return slot;
        }
        slab_.emplace_back();
        return static_cast<std::uint32_t>(slab_.size() - 1);
    }

    /**
     * Return @p slot to the freelist: bump the generation (so stale
     * handles die), destroy the closure, then make it reusable. Only
     * called once the slot's heap entry has been popped.
     */
    void
    releaseSlot(std::uint32_t slot)
    {
        detail::EventRecord &rec = slab_[slot];
        ++rec.gen;
        rec.state = detail::EventState::Free;
        rec.fn.reset(); // may re-enter (see EventFn::reset)
        freelist_.push_back(slot);
    }

    /** Drop cancelled events sitting at the head of the heap. */
    void
    skipCancelled()
    {
        while (!heap_.empty()) {
            const std::uint32_t slot = heap_.front().slot;
            if (slab_[slot].state != detail::EventState::Cancelled)
                break;
            heapPop();
            releaseSlot(slot);
        }
    }

    // Handle plumbing (slot validity checked via generation).
    bool handlePending(std::uint32_t slot, std::uint32_t gen) const;
    void handleCancel(std::uint32_t slot, std::uint32_t gen);
    Tick handleWhen(std::uint32_t slot, std::uint32_t gen) const;

    std::vector<HeapEntry> heap_;
    std::deque<detail::EventRecord> slab_;
    std::vector<std::uint32_t> freelist_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    bool clearing_ = false;
    std::string label_;
};

inline bool
EventHandle::pending() const
{
    return queue_ != nullptr && queue_->handlePending(slot_, gen_);
}

inline void
EventHandle::cancel()
{
    if (queue_ != nullptr)
        queue_->handleCancel(slot_, gen_);
}

inline Tick
EventHandle::when() const
{
    return queue_ != nullptr ? queue_->handleWhen(slot_, gen_)
                             : maxTick;
}

} // namespace qpip::sim
