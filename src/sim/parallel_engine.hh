/**
 * @file
 * A deterministic conservative parallel discrete-event engine.
 *
 * The simulation is sharded into Partitions (see partition.hh), each
 * owning a private event queue and RNG stream. Execution proceeds in
 * barrier epochs:
 *
 *   1. merge every Mailbox batch and inject the messages into the
 *      destination queues in deterministic order, sorted by
 *      (tick, priority, seq, source partition id);
 *   2. compute per-partition horizons from per-edge lookaheads (see
 *      below) — each partition gets its own bound instead of the
 *      whole fabric marching at the pace of its slowest link;
 *   3. run every partition with runnable work up to its horizon
 *      (workers claim partitions from a shared, work-estimate-sorted
 *      index — which thread runs which partition is arbitrary, the
 *      outcome is not);
 *   4. barrier; repeat.
 *
 * Per-edge horizons. Every mailbox edge e = (q -> p) declares a
 * lookahead L_e: a lower bound on the delivery latency of anything
 * posted through it. At each barrier the engine computes, for every
 * partition q, a conservative floor B_q on the earliest tick at which
 * q can execute *any* event this epoch or later:
 *
 *     B_q = min(next_q, min over incoming e=(r->q) of B_r + L_e)
 *
 * — a shortest-path relaxation (all L_e >= 1, so the fixpoint exists
 * and rounds of edge relaxation over the partition graph reach it in
 * at most P-1 passes; fabric graphs are shallow, so two or three
 * suffice in practice). The epoch horizon of
 * p is then H_p = min over incoming e=(q->p) of B_q + L_e. Any
 * message q posts is sent by an event executing at t >= B_q and
 * arrives at t + L_e >= H_p, so injecting it at the next barrier is
 * causally exact, not an approximation; Mailbox::post asserts this
 * against the destination's horizon. Note the floor must be B_q, not
 * next_q: a neighbor stalled behind *its own* slow neighbor can
 * receive an injection below its next event and wake earlier than
 * next_q, which is exactly the multi-hop chain the relaxation
 * accounts for. Progress: the partition holding the global minimum
 * next tick N has B = N and H >= N + min L_e > N, so every epoch
 * executes at least one event.
 *
 * Each partition's horizon is kept monotone across epochs (max with
 * its previous value). The per-epoch bound alone can dip — a
 * neighbor's floor drops when an injection wakes it below its old
 * next-event tick — but a bound once proven covers every future post
 * too (the floors it was computed from remain lower bounds forever),
 * so the running maximum is still causally exact, and it is what the
 * destination's clock has actually reached. Mailbox::post asserts
 * against this monotone frontier; each epoch runs a partition to
 * min(frontier, run deadline).
 *
 * Batched posts. During an epoch each mailbox accumulates posts in a
 * local append buffer (no synchronization: only the source's worker
 * touches it). The worker that ran the source sorts each outgoing
 * batch while still inside the parallel region; the barrier then
 * k-way-merges the sorted runs straight into the destination queues —
 * the same (tick, priority, seq, srcId) total order as a global sort,
 * at merge cost.
 *
 * Determinism: each partition's queue preserves the serial
 * (when, priority, seq) total order; injection order into a queue is
 * fixed by the merge above; horizons are computed from queue state
 * alone; RNG streams are per-partition. None of that depends on the
 * number of worker threads, so an N-thread run is bit-identical to a
 * 1-thread run of the same partitioning. (A partitioned run may
 * differ from the unpartitioned serial schedule — per-partition
 * RNG/seq streams — which is why `threads=1` without an engine
 * remains the default and untouched code path.)
 *
 * This is the one place in the tree allowed to use threading
 * primitives (see qpip-lint rule T1): all protocol code stays
 * single-threaded by construction, executing inside exactly one
 * partition per epoch with mutex/condvar-ordered handoffs between
 * epochs.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/partition.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace qpip::sim {

class ParallelEngine
{
  public:
    /**
     * Install the engine on @p sim (Simulation::run* delegate here
     * until destruction). @p threads is the worker count: 1 executes
     * partitions inline on the calling thread.
     */
    ParallelEngine(Simulation &sim, int threads);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Create a partition. RNG stream derives from sim seed + id. */
    Partition &addPartition(const std::string &name);

    std::size_t numPartitions() const { return parts_.size(); }
    Partition &partition(std::size_t i) { return *parts_.at(i); }
    Partition *findPartition(const std::string &name);

    /** Find-or-create the src->dst mailbox. */
    Mailbox &mailbox(Partition &src, Partition &dst);

    /**
     * Bind every registered SimObject whose name is @p prefix or
     * starts with "@p prefix." to partition @p p (its queue and RNG).
     */
    void assignByPrefix(const std::string &prefix, Partition &p);

    /**
     * Set the global default edge lookahead: the minimum
     * cross-partition delivery latency. Edges with a tighter bound
     * declare their own via Mailbox::setLookahead. @pre l >= 1 tick.
     */
    void setLookahead(Tick l);
    Tick lookahead() const { return lookahead_; }

    /**
     * Register a hook run at the end of every run*() call, after the
     * final barrier — e.g. folding per-direction link shadow counters
     * into the public ones. Hooks must be idempotent across calls
     * (fold-and-reset).
     */
    void addFoldHook(std::function<void()> fold);

    int threads() const { return threads_; }

    /** Conservative global frontier of the latest epoch. */
    Tick now() const { return now_; }

    /** Total events executed across all partitions. */
    std::uint64_t executed() const;

    /** Barrier epochs run so far (diagnostics/tests). */
    std::uint64_t epochs() const { return statEpochs_.value(); }

    /** Run until all partitions drain. @return events executed. */
    std::uint64_t run() { return runUntil(maxTick); }

    /** Run until an absolute tick. @return events executed. */
    std::uint64_t runUntil(Tick until);

    /**
     * Run until @p pred() holds — checked at every epoch barrier, the
     * parallel analogue of "after every event" — or @p deadline.
     */
    bool runUntilCondition(const std::function<bool()> &pred,
                           Tick deadline = maxTick);

    /** Discard pending events in every partition (teardown). */
    void clearAll();

    /**
     * Join the worker pool (idempotent; the destructor calls it).
     * Owners whose model objects hold event handles into partition
     * queues call this first in teardown, so the single-threaded
     * destruction of those objects still sees live queues.
     */
    void park();

  private:
    void checkRunnable();
    void injectMail();
    /** Refresh nextTick_; @return the global minimum. */
    Tick refreshNextTicks();
    /**
     * Compute per-partition horizons for the next epoch (relaxation
     * floors + incoming-edge minima), build the work-estimate-sorted
     * claim order, and count stalls. @return the min horizon (the
     * epoch's conservative global frontier).
     */
    Tick prepareEpoch(Tick until);
    void runEpoch();
    /** Per-epoch bookkeeping: work estimates + imbalance stats. */
    void finishEpoch();
    void claimLoop(std::unique_lock<std::mutex> &lock);
    void workerLoop();
    void foldAll();

    Simulation &sim_;
    int threads_;
    Tick lookahead_ = maxTick;
    Tick now_ = 0;
    std::vector<std::unique_ptr<Partition>> parts_;
    std::vector<std::unique_ptr<Mailbox>> mail_;
    /** Outgoing / incoming mailboxes by partition id. */
    std::vector<std::vector<Mailbox *>> outMail_;
    std::vector<std::vector<Mailbox *>> inMail_;
    std::vector<std::function<void()>> foldHooks_;

    // Barrier scratch (sized to parts_, reused across epochs).
    std::vector<Tick> nextTick_;
    std::vector<Tick> floor_;
    /** Per-partition incoming-edge horizon bound (phase-2 scratch). */
    std::vector<Tick> hbound_;
    /**
     * The partition graph flattened for the per-epoch relaxation
     * passes (rebuilt from mail_ at the start of every run).
     */
    struct FlatEdge
    {
        std::uint32_t src;
        std::uint32_t dst;
        Tick lookahead;
    };
    std::vector<FlatEdge> edges_;
    /** Cursor into one mailbox's sorted batch (barrier merge). */
    struct RunCursor
    {
        Mailbox *mb;
        std::size_t idx;
    };
    std::vector<RunCursor> merge_;
    std::vector<std::uint64_t> prevExecuted_;
    std::vector<std::uint64_t> lastEpochEvents_;
    /** Partition ids to run this epoch, heaviest estimate first. */
    std::vector<std::uint32_t> claimOrder_;

    // Scaling observability (registered as "parallel.*"; all values
    // derive from the deterministic schedule, so they are identical
    // for any thread count).
    StatGroup statGroup_;
    Counter statEpochs_;
    Counter statMailboxPosts_;
    Counter statBatchedPosts_;
    Counter statHorizonStalls_;
    SampleStat statEpochEventsMax_;
    SampleStat statEpochEventsMin_;

    // Worker pool. All shared coordination state lives under m_; the
    // mutex handoffs order every cross-epoch access to partition
    // queues, mailboxes and counters (no atomics needed).
    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t epochGen_ = 0;
    std::size_t nextPart_ = 0;
    std::size_t busy_ = 0;
    bool stop_ = false;
};

} // namespace qpip::sim
