/**
 * @file
 * A deterministic conservative parallel discrete-event engine.
 *
 * The simulation is sharded into Partitions (see partition.hh), each
 * owning a private event queue and RNG stream. Execution proceeds in
 * barrier epochs:
 *
 *   1. drain every Mailbox and inject the messages into the
 *      destination queues in deterministic merge order, sorted by
 *      (tick, priority, seq, source partition id);
 *   2. compute the global next event tick N = min over partitions;
 *   3. run every partition independently up to the epoch horizon
 *      H = N + lookahead (workers claim partitions from a shared
 *      index — which thread runs which partition is arbitrary, the
 *      outcome is not);
 *   4. barrier; repeat.
 *
 * The lookahead L is the minimum latency of any cross-partition link.
 * Because a message posted while executing an event at tick t arrives
 * no earlier than t + L >= (epoch start) + L = H, every cross-
 * partition effect of the running epoch lands at or beyond the
 * horizon — injecting it at the next barrier is causally exact, not
 * an approximation. Mailbox::post asserts this invariant.
 *
 * Determinism: each partition's queue preserves the serial
 * (when, priority, seq) total order; injection order into a queue is
 * fixed by the merge sort above; RNG streams are per-partition. None
 * of that depends on the number of worker threads, so an N-thread run
 * is bit-identical to a 1-thread run of the same partitioning. (A
 * partitioned run may differ from the unpartitioned serial schedule —
 * per-partition RNG/seq streams — which is why `threads=1` without an
 * engine remains the default and untouched code path.)
 *
 * This is the one place in the tree allowed to use threading
 * primitives (see qpip-lint rule T1): all protocol code stays
 * single-threaded by construction, executing inside exactly one
 * partition per epoch with mutex/condvar-ordered handoffs between
 * epochs.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/partition.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace qpip::sim {

class ParallelEngine
{
  public:
    /**
     * Install the engine on @p sim (Simulation::run* delegate here
     * until destruction). @p threads is the worker count: 1 executes
     * partitions inline on the calling thread.
     */
    ParallelEngine(Simulation &sim, int threads);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Create a partition. RNG stream derives from sim seed + id. */
    Partition &addPartition(const std::string &name);

    std::size_t numPartitions() const { return parts_.size(); }
    Partition &partition(std::size_t i) { return *parts_.at(i); }
    Partition *findPartition(const std::string &name);

    /** Find-or-create the src->dst mailbox. */
    Mailbox &mailbox(Partition &src, Partition &dst);

    /**
     * Bind every registered SimObject whose name is @p prefix or
     * starts with "@p prefix." to partition @p p (its queue and RNG).
     */
    void assignByPrefix(const std::string &prefix, Partition &p);

    /**
     * Set the conservative synchronization window: the minimum
     * cross-partition delivery latency. @pre l >= 1 tick.
     */
    void setLookahead(Tick l);
    Tick lookahead() const { return lookahead_; }

    /**
     * Register a hook run at the end of every run*() call, after the
     * final barrier — e.g. folding per-direction link shadow counters
     * into the public ones. Hooks must be idempotent across calls
     * (fold-and-reset).
     */
    void addFoldHook(std::function<void()> fold);

    int threads() const { return threads_; }

    /** Epoch horizon of the latest epoch (the engine's "now"). */
    Tick now() const { return now_; }

    /** Total events executed across all partitions. */
    std::uint64_t executed() const;

    /** Barrier epochs run so far (diagnostics/tests). */
    std::uint64_t epochs() const { return epochs_; }

    /** Run until all partitions drain. @return events executed. */
    std::uint64_t run() { return runUntil(maxTick); }

    /** Run until an absolute tick. @return events executed. */
    std::uint64_t runUntil(Tick until);

    /**
     * Run until @p pred() holds — checked at every epoch barrier, the
     * parallel analogue of "after every event" — or @p deadline.
     */
    bool runUntilCondition(const std::function<bool()> &pred,
                           Tick deadline = maxTick);

    /** Discard pending events in every partition (teardown). */
    void clearAll();

    /**
     * Join the worker pool (idempotent; the destructor calls it).
     * Owners whose model objects hold event handles into partition
     * queues call this first in teardown, so the single-threaded
     * destruction of those objects still sees live queues.
     */
    void park();

  private:
    void checkRunnable();
    void injectMail();
    Tick globalNextTick();
    void runEpoch(Tick horizon);
    void claimLoop(std::unique_lock<std::mutex> &lock);
    void workerLoop();
    void foldAll();

    Simulation &sim_;
    int threads_;
    Tick lookahead_ = maxTick;
    Tick now_ = 0;
    std::uint64_t epochs_ = 0;
    std::vector<std::unique_ptr<Partition>> parts_;
    std::vector<std::unique_ptr<Mailbox>> mail_;
    std::vector<std::function<void()>> foldHooks_;
    /** Scratch for the injection merge sort (kept to reuse capacity). */
    struct Inject
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint32_t srcId;
        Partition *dst;
        std::function<void()> fn;
    };
    std::vector<Inject> inject_;

    // Worker pool. All shared coordination state lives under m_; the
    // mutex handoffs order every cross-epoch access to partition
    // queues, mailboxes and counters (no atomics needed).
    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t epochGen_ = 0;
    Tick epochHorizon_ = 0;
    std::size_t nextPart_ = 0;
    std::size_t busy_ = 0;
    bool stop_ = false;
};

} // namespace qpip::sim
