#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace qpip::sim {

EventHandle
EventQueue::schedule(Tick when, std::function<void()> fn, int priority)
{
    if (clearing_)
        return EventHandle{}; // teardown in progress: drop silently
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    auto rec = std::make_shared<detail::EventRecord>();
    rec->when = when;
    rec->priority = priority;
    rec->seq = nextSeq_++;
    rec->fn = std::move(fn);
    heap_.push(rec);
    return EventHandle(rec);
}

void
EventQueue::skipCancelled()
{
    while (!heap_.empty() && heap_.top()->cancelled)
        heap_.pop();
}

bool
EventQueue::empty() const
{
    // Cancelled events may linger in the heap; scan a copy of the top.
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return heap_.empty();
}

Tick
EventQueue::nextEventTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return heap_.empty() ? maxTick : heap_.top()->when;
}

bool
EventQueue::step(Tick until)
{
    skipCancelled();
    if (heap_.empty() || heap_.top()->when >= until)
        return false;
    RecPtr rec = heap_.top();
    heap_.pop();
    now_ = rec->when;
    rec->done = true;
    ++executed_;
    rec->fn();
    return true;
}

void
EventQueue::clear()
{
    clearing_ = true;
    while (!heap_.empty()) {
        RecPtr rec = heap_.top();
        heap_.pop();
        rec->cancelled = true;
        rec->fn = nullptr; // destroy the closure (may re-enter)
    }
    clearing_ = false;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (step(until))
        ++n;
    if (until != maxTick && until > now_)
        now_ = until;
    return n;
}

} // namespace qpip::sim
