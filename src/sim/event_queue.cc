#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace qpip::sim {

using detail::EventRecord;
using detail::EventState;

void
EventQueue::panicPast(Tick when) const
{
    panic("%s: event scheduled in the past (when=%llu now=%llu)",
          label_.empty() ? "event queue" : label_.c_str(),
          static_cast<unsigned long long>(when),
          static_cast<unsigned long long>(now_));
}

void
EventQueue::advanceTo(Tick t)
{
    if (t == maxTick || t <= now_)
        return;
    const Tick next = nextEventTick();
    if (next < t) {
        panic("%s: advanceTo(%llu) would skip a runnable event at "
              "%llu",
              label_.empty() ? "event queue" : label_.c_str(),
              static_cast<unsigned long long>(t),
              static_cast<unsigned long long>(next));
    }
    now_ = t;
}

bool
EventQueue::handlePending(std::uint32_t slot, std::uint32_t gen) const
{
    const EventRecord &rec = slab_[slot];
    return rec.gen == gen && rec.state == EventState::Pending;
}

void
EventQueue::handleCancel(std::uint32_t slot, std::uint32_t gen)
{
    EventRecord &rec = slab_[slot];
    if (rec.gen == gen && rec.state == EventState::Pending) {
        // The slot stays out of the freelist until its heap entry is
        // popped (lazily, by skipCancelled/step) so a heap entry can
        // never refer to a recycled slot.
        rec.state = EventState::Cancelled;
    }
}

Tick
EventQueue::handleWhen(std::uint32_t slot, std::uint32_t gen) const
{
    const EventRecord &rec = slab_[slot];
    if (rec.gen != gen || rec.state != EventState::Pending)
        return maxTick;
    return rec.when;
}

bool
EventQueue::empty() const
{
    // Cancelled events may linger in the heap; sweep them first.
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return heap_.empty();
}

Tick
EventQueue::nextEventTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return heap_.empty() ? maxTick : heap_.front().when;
}

void
EventQueue::clear()
{
    clearing_ = true;
    while (!heap_.empty()) {
        const std::uint32_t slot = heap_.front().slot;
        heapPop();
        // Destroying the closure may re-enter schedule() (dropped via
        // clearing_) or cancel() other events (handled lazily above).
        releaseSlot(slot);
    }
    clearing_ = false;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (step(until))
        ++n;
    if (until != maxTick && until > now_)
        now_ = until;
    return n;
}

} // namespace qpip::sim
