#include "sim/simulation.hh"

namespace qpip::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

} // namespace qpip::sim
