#include "sim/simulation.hh"

#include <algorithm>

#include "sim/parallel_engine.hh"

namespace qpip::sim {

Simulation::Simulation(std::uint64_t seed)
    : Simulation(SimConfig{seed, 1})
{}

Simulation::Simulation(const SimConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{}

Tick
Simulation::engineNow() const
{
    return engine_->now();
}

std::uint64_t
Simulation::engineRunUntil(Tick until)
{
    return engine_->runUntil(until);
}

bool
Simulation::engineRunUntilCondition(std::function<bool()> pred,
                                    Tick deadline)
{
    return engine_->runUntilCondition(pred, deadline);
}

void
Simulation::registerObject(SimObject *obj)
{
    std::lock_guard<std::mutex> lock(objMutex_);
    objects_.push_back(obj);
}

void
Simulation::unregisterObject(SimObject *obj)
{
    std::lock_guard<std::mutex> lock(objMutex_);
    objects_.erase(std::remove(objects_.begin(), objects_.end(), obj),
                   objects_.end());
}

std::vector<SimObject *>
Simulation::objectsSnapshot() const
{
    std::lock_guard<std::mutex> lock(objMutex_);
    return objects_;
}

} // namespace qpip::sim
