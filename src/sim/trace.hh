/**
 * @file
 * Event tracing to Chrome trace_event JSON (open in chrome://tracing
 * or https://ui.perfetto.dev). Components emit spans (a named duration
 * on a track: firmware stage executions, link serialization) and
 * instants (a point on a track: TCP state transitions). Tracks map to
 * Chrome "threads" named after the emitting SimObject, so the four
 * firmware FSMs, each link and each TCP engine render as parallel
 * swimlanes over simulated time (1 trace us = 1 simulated us).
 *
 * Tracing is off by default and costs one branch per site when off.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace qpip::sim {

/**
 * The trace sink. One per Simulation.
 */
class Tracer
{
  public:
    void enable(bool on = true) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * A named duration on @p track starting at @p start for @p dur
     * ticks. @p args is either empty or a preformatted JSON object.
     */
    void span(const std::string &track, const std::string &name,
              Tick start, Tick dur, std::string args = "");

    /** A point event on @p track at @p ts. */
    void instant(const std::string &track, const std::string &name,
                 Tick ts, std::string args = "");

    std::size_t numEvents() const { return events_.size(); }
    void clear();

    /**
     * Render the full trace as Chrome trace_event JSON. Events are
     * emitted sorted by timestamp (stable), so downstream consumers
     * see monotonically non-decreasing "ts" fields.
     */
    std::string json() const;

    /** Write json() to @p path. @return false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        Tick ts = 0;
        Tick dur = 0;
        bool isSpan = false;
        std::uint32_t track = 0;
        std::string name;
        std::string args;
    };

    std::uint32_t trackId(const std::string &track);

    bool enabled_ = false;
    std::vector<Event> events_;
    std::map<std::string, std::uint32_t> tracks_;
};

} // namespace qpip::sim
