#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace qpip::sim {

namespace {
LogLevel gLogLevel = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

std::string
vstrfmt(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Info)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
debugLog(LogLevel level, const char *tag, const char *fmt, ...)
{
    if (gLogLevel < level)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "[%s] %s\n", tag, s.c_str());
}

} // namespace qpip::sim
