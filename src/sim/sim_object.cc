#include "sim/sim_object.hh"

#include "sim/simulation.hh"

namespace qpip::sim {

SimObject::SimObject(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{
    stats_.init(sim_.stats(), name_);
}

SimObject::~SimObject() = default;

Tick
SimObject::curTick() const
{
    return sim_.now();
}

EventHandle
SimObject::schedule(Tick when, std::function<void()> fn, int priority)
{
    return sim_.eventQueue().schedule(when, std::move(fn), priority);
}

EventHandle
SimObject::scheduleIn(Tick delay, std::function<void()> fn, int priority)
{
    return sim_.eventQueue().scheduleIn(delay, std::move(fn), priority);
}

Random &
SimObject::rng()
{
    return sim_.rng();
}

StatRegistry &
SimObject::statRegistry()
{
    return sim_.stats();
}

Tracer &
SimObject::tracer()
{
    return sim_.tracer();
}

} // namespace qpip::sim
