#include "sim/sim_object.hh"

#include "sim/simulation.hh"

namespace qpip::sim {

SimObject::SimObject(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{
    stats_.init(sim_.stats(), name_);
}

SimObject::~SimObject() = default;

} // namespace qpip::sim
