#include "sim/sim_object.hh"

#include "sim/partition.hh"
#include "sim/simulation.hh"

namespace qpip::sim {

SimObject::SimObject(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{
    if (const ExecContext *ctx = detail::currentExecContext()) {
        eq_ = ctx->eq;
        rng_ = ctx->rng;
    } else {
        eq_ = &sim_.eventQueue();
        rng_ = &sim_.rng();
    }
    stats_.init(sim_.stats(), name_);
    sim_.registerObject(this);
}

SimObject::~SimObject()
{
    sim_.unregisterObject(this);
}

} // namespace qpip::sim
