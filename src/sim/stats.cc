#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace qpip::sim {

void
SampleStat::sample(double v)
{
    ++n_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
SampleStat::reset()
{
    *this = SampleStat();
}

double
SampleStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
SampleStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0)
{
    if (hi <= lo || buckets == 0)
        panic("bad histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    std::uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
    return hi_;
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 1;
    for (auto b : buckets_)
        peak = std::max(peak, b);
    std::string out;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double b_lo = lo_ + static_cast<double>(i) * width_;
        auto bar_len = static_cast<std::size_t>(
            static_cast<double>(buckets_[i]) /
            static_cast<double>(peak) * static_cast<double>(width));
        out += strfmt("%12.3f | %-*s %llu\n", b_lo,
                      static_cast<int>(width),
                      std::string(bar_len, '#').c_str(),
                      static_cast<unsigned long long>(buckets_[i]));
    }
    return out;
}

} // namespace qpip::sim
