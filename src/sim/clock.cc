#include "sim/clock.hh"

#include <cmath>

#include "sim/logging.hh"

namespace qpip::sim {

ClockDomain::ClockDomain(std::uint64_t freq_hz)
    : freqHz_(freq_hz), periodPs_(1e12 / static_cast<double>(freq_hz))
{
    if (freq_hz == 0)
        panic("clock domain with zero frequency");
}

Tick
ClockDomain::cyclesToTicks(Cycles c) const
{
    return static_cast<Tick>(
        std::llround(static_cast<double>(c) * periodPs_));
}

Cycles
ClockDomain::usToCycles(double us) const
{
    return static_cast<Cycles>(
        std::llround(us * 1e-6 * static_cast<double>(freqHz_)));
}

Cycles
ClockDomain::ticksToCycles(Tick t) const
{
    return static_cast<Cycles>(static_cast<double>(t) / periodPs_);
}

} // namespace qpip::sim
