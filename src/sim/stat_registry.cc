#include "sim/stat_registry.hh"

#include "sim/logging.hh"

namespace qpip::sim {

bool
statPatternMatch(const std::string &pattern, const std::string &path)
{
    // Iterative glob with single-star backtracking.
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < path.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == path[s])) {
            ++p;
            ++s;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

void
StatRegistry::insert(const std::string &path, Entry entry)
{
    if (path.empty())
        panic("StatRegistry: empty stat path");
    std::lock_guard<std::mutex> lock(m_);
    auto [it, inserted] = entries_.emplace(path, entry);
    (void)it;
    if (!inserted)
        panic("StatRegistry: duplicate stat path '%s'", path.c_str());
}

void
StatRegistry::add(const std::string &path, const Counter &c)
{
    Entry e;
    e.counter = &c;
    insert(path, e);
}

void
StatRegistry::add(const std::string &path, const SampleStat &s)
{
    Entry e;
    e.sample = &s;
    insert(path, e);
}

void
StatRegistry::add(const std::string &path, const Histogram &h)
{
    Entry e;
    e.histogram = &h;
    insert(path, e);
}

void
StatRegistry::remove(const std::string &path)
{
    std::lock_guard<std::mutex> lock(m_);
    entries_.erase(path);
}

bool
StatRegistry::contains(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(m_);
    return entries_.contains(path);
}

std::size_t
StatRegistry::size() const
{
    std::lock_guard<std::mutex> lock(m_);
    return entries_.size();
}

const Counter *
StatRegistry::counter(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = entries_.find(path);
    return it == entries_.end() ? nullptr : it->second.counter;
}

const SampleStat *
StatRegistry::sample(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = entries_.find(path);
    return it == entries_.end() ? nullptr : it->second.sample;
}

const Histogram *
StatRegistry::histogram(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = entries_.find(path);
    return it == entries_.end() ? nullptr : it->second.histogram;
}

std::uint64_t
StatRegistry::counterValue(const std::string &path) const
{
    const Counter *c = counter(path);
    return c != nullptr ? c->value() : 0;
}

std::vector<std::string>
StatRegistry::match(const std::string &pattern) const
{
    std::vector<std::string> out;
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &[path, entry] : entries_) {
        if (statPatternMatch(pattern, path))
            out.push_back(path);
    }
    return out;
}

namespace {

// %.17g round-trips doubles exactly; JSON forbids bare inf/nan but no
// registered stat produces them (SampleStat min/max report 0 on empty).
std::string
jsonNumber(double v)
{
    return strfmt("%.17g", v);
}

std::string
jsonNumber(std::uint64_t v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

} // namespace

std::string
StatRegistry::jsonDump(const std::string &pattern) const
{
    std::string out = "{";
    bool first = true;
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &[path, e] : entries_) {
        if (!statPatternMatch(pattern, path))
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\n  \"" + path + "\": ";
        if (e.counter != nullptr) {
            out += "{\"kind\": \"counter\", \"value\": " +
                   jsonNumber(e.counter->value()) + "}";
        } else if (e.sample != nullptr) {
            const auto &s = *e.sample;
            out += "{\"kind\": \"sample\", \"count\": " +
                   jsonNumber(s.count()) +
                   ", \"total\": " + jsonNumber(s.total()) +
                   ", \"mean\": " + jsonNumber(s.mean()) +
                   ", \"min\": " + jsonNumber(s.min()) +
                   ", \"max\": " + jsonNumber(s.max()) + "}";
        } else {
            const auto &h = *e.histogram;
            out += "{\"kind\": \"histogram\", \"count\": " +
                   jsonNumber(h.count()) +
                   ", \"underflow\": " + jsonNumber(h.underflow()) +
                   ", \"overflow\": " + jsonNumber(h.overflow()) +
                   ", \"buckets\": [";
            for (std::size_t i = 0; i < h.numBuckets(); ++i) {
                if (i > 0)
                    out += ", ";
                out += jsonNumber(h.bucket(i));
            }
            out += "]}";
        }
    }
    out += first ? "}" : "\n}";
    return out;
}

void
StatGroup::init(StatRegistry &registry, std::string prefix)
{
    if (registry_ != nullptr)
        panic("StatGroup: already bound to '%s'", prefix_.c_str());
    registry_ = &registry;
    prefix_ = std::move(prefix);
}

void
StatGroup::clear()
{
    if (registry_ == nullptr)
        return;
    for (const auto &p : paths_)
        registry_->remove(p);
    paths_.clear();
    registry_ = nullptr;
    prefix_.clear();
}

} // namespace qpip::sim
