#include "sim/trace.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace qpip::sim {

std::uint32_t
Tracer::trackId(const std::string &track)
{
    auto it = tracks_.find(track);
    if (it != tracks_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(tracks_.size() + 1);
    tracks_.emplace(track, id);
    return id;
}

void
Tracer::span(const std::string &track, const std::string &name,
             Tick start, Tick dur, std::string args)
{
    if (!enabled_)
        return;
    Event e;
    e.ts = start;
    e.dur = dur;
    e.isSpan = true;
    e.track = trackId(track);
    e.name = name;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
Tracer::instant(const std::string &track, const std::string &name,
                Tick ts, std::string args)
{
    if (!enabled_)
        return;
    Event e;
    e.ts = ts;
    e.track = trackId(track);
    e.name = name;
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
Tracer::clear()
{
    events_.clear();
    tracks_.clear();
}

namespace {

// Ticks are ps; Chrome's ts/dur unit is us. Six decimals keep full
// picosecond precision in the decimal representation.
std::string
usField(Tick t)
{
    return strfmt("%llu.%06llu",
                  static_cast<unsigned long long>(t / oneUs),
                  static_cast<unsigned long long>(t % oneUs));
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += strfmt("\\u%04x", c);
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

std::string
Tracer::json() const
{
    // Stable sort by start time: emission order breaks ties, and
    // consumers (and the determinism tests) see non-decreasing ts.
    std::vector<const Event *> sorted;
    sorted.reserve(events_.size());
    for (const auto &e : events_)
        sorted.push_back(&e);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event *a, const Event *b) {
                         return a->ts < b->ts;
                     });

    std::string out = "{\"displayTimeUnit\": \"ns\", "
                      "\"traceEvents\": [";
    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            out += ",";
        first = false;
        out += "\n  " + line;
    };
    for (const auto &[track, id] : tracks_) {
        emit(strfmt("{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
                    "\"name\": \"thread_name\", "
                    "\"args\": {\"name\": \"%s\"}}",
                    id, jsonEscape(track).c_str()));
    }
    for (const auto *e : sorted) {
        std::string line =
            strfmt("{\"ph\": \"%s\", \"pid\": 1, \"tid\": %u, "
                   "\"ts\": %s, ",
                   e->isSpan ? "X" : "i", e->track,
                   usField(e->ts).c_str());
        if (e->isSpan)
            line += strfmt("\"dur\": %s, ", usField(e->dur).c_str());
        else
            line += "\"s\": \"t\", ";
        line += "\"name\": \"" + jsonEscape(e->name) + "\"";
        if (!e->args.empty())
            line += ", \"args\": " + e->args;
        line += "}";
        emit(line);
    }
    out += "\n]}";
    return out;
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("Tracer: cannot open '%s'", path.c_str());
        return false;
    }
    const std::string text = json();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

} // namespace qpip::sim
