/**
 * @file
 * Simulation: the top-level container owning the event queue, the
 * global RNG, the stats registry and the event tracer. Experiments
 * construct one Simulation, build a testbed of SimObjects against it,
 * and drive it with run()/runUntil()/runFor().
 */

#pragma once

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stat_registry.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace qpip::sim {

/**
 * Top-level simulation context.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1);

    EventQueue &eventQueue() { return eq_; }
    Random &rng() { return rng_; }
    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }
    Tracer &tracer() { return tracer_; }

    Tick now() const { return eq_.now(); }

    /** Run until the event queue drains. @return events executed. */
    std::uint64_t run() { return eq_.run(); }

    /** Run until an absolute tick. @return events executed. */
    std::uint64_t runUntil(Tick until) { return eq_.runUntil(until); }

    /** Run for a relative duration. @return events executed. */
    std::uint64_t
    runFor(Tick duration)
    {
        return eq_.runUntil(eq_.now() + duration);
    }

    /**
     * Run until @p pred() becomes true (checked after every event) or
     * @p deadline passes.
     * @return true if the predicate was satisfied.
     */
    template <typename Pred>
    bool
    runUntilCondition(Pred pred, Tick deadline = maxTick)
    {
        while (!pred()) {
            if (!eq_.step(deadline))
                return pred();
        }
        return true;
    }

  private:
    EventQueue eq_;
    Random rng_;
    StatRegistry stats_;
    Tracer tracer_;
};

} // namespace qpip::sim
