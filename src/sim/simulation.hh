/**
 * @file
 * Simulation: the top-level container owning the event queue, the
 * global RNG, the stats registry and the event tracer. Experiments
 * construct one Simulation, build a testbed of SimObjects against it,
 * and drive it with run()/runUntil()/runFor().
 *
 * A Simulation normally executes serially on its own event queue.
 * When a ParallelEngine is installed (SimConfig::threads > 1 via the
 * testbeds, or constructed directly), the run*() entry points
 * delegate to the engine's barrier-epoch loop; the serial path stays
 * the default and compiles exactly as before.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stat_registry.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace qpip::sim {

class ParallelEngine;
class SimObject;

/** Top-level knobs every experiment shares. */
struct SimConfig
{
    /** Master seed: the global RNG and partition streams derive here. */
    std::uint64_t seed = 1;
    /**
     * Worker threads for the parallel engine. 1 (the default) means
     * the plain serial event loop; >1 asks the testbed to partition
     * the simulation and install a ParallelEngine.
     */
    int threads = 1;
};

/**
 * Top-level simulation context.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1);
    explicit Simulation(const SimConfig &cfg);

    EventQueue &eventQueue() { return eq_; }
    Random &rng() { return rng_; }
    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }
    Tracer &tracer() { return tracer_; }

    std::uint64_t seed() const { return cfg_.seed; }
    const SimConfig &config() const { return cfg_; }

    /** The installed parallel engine, or nullptr (serial mode). */
    ParallelEngine *parallelEngine() const { return engine_; }

    Tick
    now() const
    {
        return engine_ != nullptr ? engineNow() : eq_.now();
    }

    /** Run until the event queue drains. @return events executed. */
    std::uint64_t
    run()
    {
        return engine_ != nullptr ? engineRunUntil(maxTick) : eq_.run();
    }

    /** Run until an absolute tick. @return events executed. */
    std::uint64_t
    runUntil(Tick until)
    {
        return engine_ != nullptr ? engineRunUntil(until)
                                  : eq_.runUntil(until);
    }

    /** Run for a relative duration. @return events executed. */
    std::uint64_t
    runFor(Tick duration)
    {
        return runUntil(now() + duration);
    }

    /**
     * Run until @p pred() becomes true or @p deadline passes. Serial
     * mode checks after every event; under a parallel engine the
     * check happens at every epoch barrier.
     * @return true if the predicate was satisfied.
     */
    template <typename Pred>
    bool
    runUntilCondition(Pred pred, Tick deadline = maxTick)
    {
        if (engine_ != nullptr) {
            return engineRunUntilCondition(
                std::function<bool()>(std::move(pred)), deadline);
        }
        while (!pred()) {
            if (!eq_.step(deadline))
                return pred();
        }
        return true;
    }

    // --- SimObject registry (used by ParallelEngine::assignByPrefix)
    void registerObject(SimObject *obj);
    void unregisterObject(SimObject *obj);
    std::vector<SimObject *> objectsSnapshot() const;

  private:
    friend class ParallelEngine; // installs/uninstalls engine_

    Tick engineNow() const;
    std::uint64_t engineRunUntil(Tick until);
    bool engineRunUntilCondition(std::function<bool()> pred,
                                 Tick deadline);

    SimConfig cfg_;
    EventQueue eq_;
    Random rng_;
    StatRegistry stats_;
    Tracer tracer_;
    ParallelEngine *engine_ = nullptr;
    mutable std::mutex objMutex_;
    std::vector<SimObject *> objects_;
};

} // namespace qpip::sim
