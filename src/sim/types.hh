/**
 * @file
 * Fundamental simulation types: ticks, cycles and time constants.
 *
 * A Tick is one picosecond of simulated time. Picosecond resolution
 * lets clock domains with non-integral nanosecond periods (e.g. the
 * 133 MHz LANai firmware processor, 7518.8 ps/cycle) stay exact to
 * within rounding of a single tick.
 */

#pragma once

#include <cstdint>

namespace qpip::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

constexpr Tick onePs = 1;
constexpr Tick oneNs = 1000 * onePs;
constexpr Tick oneUs = 1000 * oneNs;
constexpr Tick oneMs = 1000 * oneUs;
constexpr Tick oneSec = 1000 * oneMs;

/** Convert a tick count to (double) microseconds, for reporting. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneUs);
}

/** Convert a tick count to (double) seconds, for reporting. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSec);
}

} // namespace qpip::sim
