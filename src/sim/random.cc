#include "sim/random.hh"

#include <cmath>

namespace qpip::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Random::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Random::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % span);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit && limit != 0);
    return lo + (v % span);
}

double
Random::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Random::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

double
Random::exponential(double mean)
{
    double u = uniformReal();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

} // namespace qpip::sim
