/**
 * @file
 * Status/error reporting in the gem5 tradition: panic() for simulator
 * bugs (aborts), fatal() for user/configuration errors (clean exit),
 * warn()/inform() for non-fatal conditions, plus a leveled debug log.
 */

#pragma once

#include <cstdarg>
#include <string>

namespace qpip::sim {

/** Verbosity levels for the debug log. */
enum class LogLevel { None = 0, Error, Warn, Info, Debug, Trace };

/** Global debug-log verbosity; default Warn. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and abort. Use only for conditions
 * that can never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level trace message, gated on the global log level. */
void debugLog(LogLevel level, const char *tag, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace qpip::sim
