/**
 * @file
 * SimObject: named base class for every simulated component. Provides
 * access to the owning Simulation's event queue and RNG plus schedule
 * helpers, mirroring the gem5 SimObject idiom.
 */

#ifndef QPIP_SIM_SIM_OBJECT_HH
#define QPIP_SIM_SIM_OBJECT_HH

#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace qpip::sim {

class Simulation;
class Random;

/**
 * Base class for simulated components.
 */
class SimObject
{
  public:
    /**
     * @param sim owning simulation (must outlive this object).
     * @param name hierarchical instance name, e.g. "host0.nic".
     */
    SimObject(Simulation &sim, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulation &simulation() { return sim_; }

    /** Current simulated time. */
    Tick curTick() const;

    /** Schedule a closure at an absolute tick. */
    EventHandle schedule(Tick when, std::function<void()> fn,
                         int priority = defaultPriority);

    /** Schedule a closure @p delay ticks from now. */
    EventHandle scheduleIn(Tick delay, std::function<void()> fn,
                           int priority = defaultPriority);

    /** Simulation-wide deterministic RNG. */
    Random &rng();

  private:
    Simulation &sim_;
    std::string name_;
};

} // namespace qpip::sim

#endif // QPIP_SIM_SIM_OBJECT_HH
