/**
 * @file
 * SimObject: named base class for every simulated component. Provides
 * access to the owning Simulation's event queue and RNG plus schedule
 * helpers, mirroring the gem5 SimObject idiom.
 */

#pragma once

#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace qpip::sim {

class Simulation;
class Random;
class Tracer;

/**
 * Base class for simulated components.
 */
class SimObject
{
  public:
    /**
     * @param sim owning simulation (must outlive this object).
     * @param name hierarchical instance name, e.g. "host0.nic".
     */
    SimObject(Simulation &sim, std::string name);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulation &simulation() { return sim_; }

    /** Current simulated time. */
    Tick curTick() const;

    /** Schedule a closure at an absolute tick. */
    EventHandle schedule(Tick when, std::function<void()> fn,
                         int priority = defaultPriority);

    /** Schedule a closure @p delay ticks from now. */
    EventHandle scheduleIn(Tick delay, std::function<void()> fn,
                           int priority = defaultPriority);

    /** Simulation-wide deterministic RNG. */
    Random &rng();

    /** Simulation-wide stats registry. */
    StatRegistry &statRegistry();

    /** Simulation-wide event tracer. */
    Tracer &tracer();

  protected:
    /**
     * Register a stat under "<name()>.<leaf>". All registrations are
     * removed automatically when this object is destroyed.
     */
    template <typename Stat>
    void
    regStat(const std::string &leaf, const Stat &stat)
    {
        stats_.add(leaf, stat);
    }

  private:
    Simulation &sim_;
    std::string name_;
    StatGroup stats_;
};

} // namespace qpip::sim
