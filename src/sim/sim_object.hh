/**
 * @file
 * SimObject: named base class for every simulated component. Provides
 * access to the owning Simulation's event queue and RNG plus schedule
 * helpers, mirroring the gem5 SimObject idiom.
 */

#pragma once

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/simulation.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace qpip::sim {

/**
 * Base class for simulated components.
 */
class SimObject
{
  public:
    /**
     * @param sim owning simulation (must outlive this object).
     * @param name hierarchical instance name, e.g. "host0.nic".
     */
    SimObject(Simulation &sim, std::string name);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulation &simulation() { return sim_; }

    /** Current simulated time. */
    Tick curTick() const { return sim_.now(); }

    /** The owning simulation's event queue. */
    EventQueue &eventQueue() { return sim_.eventQueue(); }

    /**
     * Schedule a closure at an absolute tick. The callable goes
     * straight into the event queue's pooled record storage — no
     * std::function wrapping on the way.
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn, int priority = defaultPriority)
    {
        return eventQueue().schedule(when, std::forward<F>(fn),
                                     priority);
    }

    /** Schedule a closure @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&fn, int priority = defaultPriority)
    {
        return eventQueue().scheduleIn(delay, std::forward<F>(fn),
                                       priority);
    }

    /** Simulation-wide deterministic RNG. */
    Random &rng() { return sim_.rng(); }

    /** Simulation-wide stats registry. */
    StatRegistry &statRegistry() { return sim_.stats(); }

    /** Simulation-wide event tracer. */
    Tracer &tracer() { return sim_.tracer(); }

  protected:
    /**
     * Register a stat under "<name()>.<leaf>". All registrations are
     * removed automatically when this object is destroyed.
     */
    template <typename Stat>
    void
    regStat(const std::string &leaf, const Stat &stat)
    {
        stats_.add(leaf, stat);
    }

  private:
    Simulation &sim_;
    std::string name_;
    StatGroup stats_;
};

} // namespace qpip::sim
