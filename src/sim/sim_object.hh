/**
 * @file
 * SimObject: named base class for every simulated component. Provides
 * access to the owning Simulation's event queue and RNG plus schedule
 * helpers, mirroring the gem5 SimObject idiom.
 *
 * Partitioning: an object schedules into — and draws randomness from
 * — whatever execution context it is bound to. By default that is the
 * simulation's global queue and RNG (the serial path). The parallel
 * engine rebinds objects to their partition's queue/stream via
 * bindExecContext(); objects constructed *while* a partition executes
 * (e.g. components spun up by an accept) inherit the thread-local
 * context automatically.
 */

#pragma once

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/simulation.hh"
#include "sim/stat_registry.hh"
#include "sim/types.hh"

namespace qpip::sim {

/**
 * Base class for simulated components.
 */
class SimObject
{
  public:
    /**
     * @param sim owning simulation (must outlive this object).
     * @param name hierarchical instance name, e.g. "host0.nic".
     */
    SimObject(Simulation &sim, std::string name);
    virtual ~SimObject();

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulation &simulation() { return sim_; }

    /** Current simulated time (of the bound execution context). */
    Tick curTick() const { return eq_->now(); }

    /** The event queue this object schedules into. */
    EventQueue &eventQueue() { return *eq_; }

    /**
     * Rebind to a partition's execution context. Called by
     * ParallelEngine::assignByPrefix during setup — never while the
     * simulation is running.
     */
    void
    bindExecContext(EventQueue &eq, Random &rng)
    {
        eq_ = &eq;
        rng_ = &rng;
    }

    /**
     * Schedule a closure at an absolute tick. The callable goes
     * straight into the event queue's pooled record storage — no
     * std::function wrapping on the way.
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn, int priority = defaultPriority)
    {
        return eventQueue().schedule(when, std::forward<F>(fn),
                                     priority);
    }

    /** Schedule a closure @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&fn, int priority = defaultPriority)
    {
        return eventQueue().scheduleIn(delay, std::forward<F>(fn),
                                       priority);
    }

    /** Deterministic RNG stream of the bound execution context. */
    Random &rng() { return *rng_; }

    /** Simulation-wide stats registry. */
    StatRegistry &statRegistry() { return sim_.stats(); }

    /** Simulation-wide event tracer. */
    Tracer &tracer() { return sim_.tracer(); }

  protected:
    /**
     * Register a stat under "<name()>.<leaf>". All registrations are
     * removed automatically when this object is destroyed.
     */
    template <typename Stat>
    void
    regStat(const std::string &leaf, const Stat &stat)
    {
        stats_.add(leaf, stat);
    }

  private:
    Simulation &sim_;
    std::string name_;
    EventQueue *eq_;
    Random *rng_;
    StatGroup stats_;
};

} // namespace qpip::sim
