#include "sim/parallel_engine.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace qpip::sim {

namespace {

/**
 * Derive a partition's RNG seed from the simulation seed and the
 * partition id: distinct, deterministic streams (Random expands the
 * seed through splitmix64, so nearby values diverge immediately).
 */
std::uint64_t
partitionSeed(std::uint64_t sim_seed, std::uint32_t id)
{
    return sim_seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
}

} // namespace

ParallelEngine::ParallelEngine(Simulation &sim, int threads)
    : sim_(sim), threads_(threads < 1 ? 1 : threads)
{
    if (sim_.parallelEngine() != nullptr)
        panic("ParallelEngine: simulation already has an engine");
    sim_.engine_ = this;
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ParallelEngine::park()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    cvStart_.notify_all();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
    workers_.clear();
}

ParallelEngine::~ParallelEngine()
{
    park();
    sim_.engine_ = nullptr;
}

Partition &
ParallelEngine::addPartition(const std::string &name)
{
    const auto id = static_cast<std::uint32_t>(parts_.size());
    parts_.push_back(std::make_unique<Partition>(
        id, name, partitionSeed(sim_.seed(), id)));
    return *parts_.back();
}

Partition *
ParallelEngine::findPartition(const std::string &name)
{
    for (auto &p : parts_) {
        if (p->name() == name)
            return p.get();
    }
    return nullptr;
}

Mailbox &
ParallelEngine::mailbox(Partition &src, Partition &dst)
{
    for (auto &mb : mail_) {
        if (&mb->src() == &src && &mb->dst() == &dst)
            return *mb;
    }
    mail_.push_back(std::make_unique<Mailbox>(src, dst));
    mail_.back()->horizon_ = &epochHorizon_;
    return *mail_.back();
}

void
ParallelEngine::assignByPrefix(const std::string &prefix, Partition &p)
{
    for (SimObject *obj : sim_.objectsSnapshot()) {
        const std::string &n = obj->name();
        const bool exact = n == prefix;
        const bool child = n.size() > prefix.size() &&
                           n.compare(0, prefix.size(), prefix) == 0 &&
                           n[prefix.size()] == '.';
        if (exact || child)
            obj->bindExecContext(p.eventQueue(), p.rng());
    }
}

void
ParallelEngine::setLookahead(Tick l)
{
    if (l == 0)
        panic("ParallelEngine: lookahead must be at least one tick");
    lookahead_ = l;
}

void
ParallelEngine::addFoldHook(std::function<void()> fold)
{
    foldHooks_.push_back(std::move(fold));
}

std::uint64_t
ParallelEngine::executed() const
{
    std::uint64_t n = 0;
    for (const auto &p : parts_)
        n += p->eventQueue().executed();
    return n;
}

void
ParallelEngine::checkRunnable()
{
    if (sim_.tracer().enabled()) {
        panic("ParallelEngine: event tracing is unsupported (span "
              "append order would depend on thread interleaving)");
    }
    if (!sim_.eventQueue().empty()) {
        panic("ParallelEngine: events pending on the global queue — "
              "a SimObject was not assigned to any partition");
    }
    if (!mail_.empty() && lookahead_ == maxTick) {
        panic("ParallelEngine: cross-partition mailboxes exist but no "
              "lookahead was set");
    }
}

void
ParallelEngine::injectMail()
{
    inject_.clear();
    for (auto &mb : mail_) {
        for (auto &m : mb->msgs_) {
            inject_.push_back(Inject{m.when, m.priority, m.seq,
                                     mb->src().id(), &mb->dst(),
                                     std::move(m.fn)});
        }
        mb->msgs_.clear();
    }
    if (inject_.empty())
        return;
    // The deterministic merge order: (tick, priority, seq, srcId) is
    // a strict total order (seq streams are per-source partition), so
    // destination-queue insertion order — and with it the seq numbers
    // the destination assigns — is independent of thread count.
    std::sort(inject_.begin(), inject_.end(),
              [](const Inject &a, const Inject &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.priority != b.priority)
                      return a.priority < b.priority;
                  if (a.seq != b.seq)
                      return a.seq < b.seq;
                  return a.srcId < b.srcId;
              });
    for (auto &in : inject_) {
        in.dst->eventQueue().schedule(in.when, std::move(in.fn),
                                      in.priority);
    }
    inject_.clear();
}

Tick
ParallelEngine::globalNextTick()
{
    Tick next = maxTick;
    for (auto &p : parts_)
        next = std::min(next, p->eventQueue().nextEventTick());
    return next;
}

void
ParallelEngine::claimLoop(std::unique_lock<std::mutex> &lock)
{
    for (;;) {
        if (nextPart_ >= parts_.size())
            return;
        Partition *p = parts_[nextPart_++].get();
        lock.unlock();
        {
            ExecContextScope scope(&p->execContext());
            p->eventQueue().runUntil(epochHorizon_);
        }
        lock.lock();
    }
}

void
ParallelEngine::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        cvStart_.wait(lock,
                      [&] { return stop_ || epochGen_ != seen; });
        if (stop_)
            return;
        seen = epochGen_;
        claimLoop(lock);
        if (--busy_ == 0)
            cvDone_.notify_one();
    }
}

void
ParallelEngine::runEpoch(Tick horizon)
{
    std::unique_lock<std::mutex> lock(m_);
    epochHorizon_ = horizon;
    nextPart_ = 0;
    busy_ = workers_.size();
    ++epochGen_;
    cvStart_.notify_all();
    claimLoop(lock); // the calling thread pulls its share too
    cvDone_.wait(lock, [&] { return busy_ == 0; });
    ++epochs_;
}

void
ParallelEngine::foldAll()
{
    for (auto &fold : foldHooks_)
        fold();
}

std::uint64_t
ParallelEngine::runUntil(Tick until)
{
    checkRunnable();
    const std::uint64_t before = executed();
    for (;;) {
        injectMail();
        const Tick next = globalNextTick();
        if (next >= until)
            break;
        const Tick horizon =
            until - next <= lookahead_ ? until : next + lookahead_;
        now_ = horizon;
        runEpoch(horizon);
    }
    if (until != maxTick) {
        // Mirror EventQueue::runUntil: idle partitions still advance
        // their clocks to the stop time (no events can remain below
        // it — the loop above only exits once next >= until).
        for (auto &p : parts_) {
            ExecContextScope scope(&p->execContext());
            p->eventQueue().runUntil(until);
        }
        now_ = std::max(now_, until);
    }
    foldAll();
    return executed() - before;
}

bool
ParallelEngine::runUntilCondition(const std::function<bool()> &pred,
                                  Tick deadline)
{
    checkRunnable();
    if (pred()) {
        foldAll();
        return true;
    }
    for (;;) {
        injectMail();
        const Tick next = globalNextTick();
        if (next >= deadline) {
            foldAll();
            return pred();
        }
        const Tick horizon = deadline - next <= lookahead_
                                 ? deadline
                                 : next + lookahead_;
        now_ = horizon;
        runEpoch(horizon);
        if (pred()) {
            foldAll();
            return true;
        }
    }
}

void
ParallelEngine::clearAll()
{
    for (auto &mb : mail_)
        mb->msgs_.clear();
    for (auto &p : parts_) {
        ExecContextScope scope(&p->execContext());
        p->eventQueue().clear();
    }
    sim_.eventQueue().clear();
}

} // namespace qpip::sim
