#include "sim/parallel_engine.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/trace.hh"

namespace qpip::sim {

namespace {

/**
 * Derive a partition's RNG seed from the simulation seed and the
 * partition id: distinct, deterministic streams (Random expands the
 * seed through splitmix64, so nearby values diverge immediately).
 */
std::uint64_t
partitionSeed(std::uint64_t sim_seed, std::uint32_t id)
{
    return sim_seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
}

/** a + l saturating at maxTick (drained queues sit at maxTick). */
Tick
clampAdd(Tick a, Tick l)
{
    return a >= maxTick - l ? maxTick : a + l;
}

} // namespace

ParallelEngine::ParallelEngine(Simulation &sim, int threads)
    : sim_(sim), threads_(threads < 1 ? 1 : threads)
{
    if (sim_.parallelEngine() != nullptr)
        panic("ParallelEngine: simulation already has an engine");
    sim_.engine_ = this;
    statGroup_.init(sim_.stats(), "parallel");
    statGroup_.add("epochs", statEpochs_);
    statGroup_.add("mailboxPosts", statMailboxPosts_);
    statGroup_.add("batchedPosts", statBatchedPosts_);
    statGroup_.add("horizonStalls", statHorizonStalls_);
    statGroup_.add("epochEventsMax", statEpochEventsMax_);
    statGroup_.add("epochEventsMin", statEpochEventsMin_);
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ParallelEngine::park()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    cvStart_.notify_all();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
    workers_.clear();
}

ParallelEngine::~ParallelEngine()
{
    park();
    sim_.engine_ = nullptr;
}

Partition &
ParallelEngine::addPartition(const std::string &name)
{
    const auto id = static_cast<std::uint32_t>(parts_.size());
    parts_.push_back(std::make_unique<Partition>(
        id, name, partitionSeed(sim_.seed(), id)));
    outMail_.emplace_back();
    inMail_.emplace_back();
    nextTick_.push_back(maxTick);
    floor_.push_back(maxTick);
    prevExecuted_.push_back(0);
    lastEpochEvents_.push_back(0);
    return *parts_.back();
}

Partition *
ParallelEngine::findPartition(const std::string &name)
{
    for (auto &p : parts_) {
        if (p->name() == name)
            return p.get();
    }
    return nullptr;
}

Mailbox &
ParallelEngine::mailbox(Partition &src, Partition &dst)
{
    for (auto &mb : mail_) {
        if (&mb->src() == &src && &mb->dst() == &dst)
            return *mb;
    }
    mail_.push_back(std::make_unique<Mailbox>(src, dst));
    Mailbox *mb = mail_.back().get();
    outMail_.at(src.id()).push_back(mb);
    inMail_.at(dst.id()).push_back(mb);
    return *mb;
}

void
ParallelEngine::assignByPrefix(const std::string &prefix, Partition &p)
{
    for (SimObject *obj : sim_.objectsSnapshot()) {
        const std::string &n = obj->name();
        const bool exact = n == prefix;
        const bool child = n.size() > prefix.size() &&
                           n.compare(0, prefix.size(), prefix) == 0 &&
                           n[prefix.size()] == '.';
        if (exact || child)
            obj->bindExecContext(p.eventQueue(), p.rng());
    }
}

void
ParallelEngine::setLookahead(Tick l)
{
    if (l == 0)
        panic("ParallelEngine: lookahead must be at least one tick");
    lookahead_ = l;
}

void
ParallelEngine::addFoldHook(std::function<void()> fold)
{
    foldHooks_.push_back(std::move(fold));
}

std::uint64_t
ParallelEngine::executed() const
{
    std::uint64_t n = 0;
    for (const auto &p : parts_)
        n += p->eventQueue().executed();
    return n;
}

void
ParallelEngine::checkRunnable()
{
    if (sim_.tracer().enabled()) {
        panic("ParallelEngine: event tracing is unsupported (span "
              "append order would depend on thread interleaving)");
    }
    if (!sim_.eventQueue().empty()) {
        panic("ParallelEngine: events pending on the global queue — "
              "a SimObject was not assigned to any partition");
    }
    // Resolve every edge's effective lookahead: edges that declared
    // their own (link propagation delay) keep it, the rest inherit
    // the global default.
    for (auto &mb : mail_) {
        if (mb->lookahead_ != maxTick)
            continue;
        if (lookahead_ == maxTick) {
            panic("ParallelEngine: cross-partition mailboxes exist "
                  "but no lookahead was set");
        }
        mb->lookahead_ = lookahead_;
    }
    // Flatten the partition graph for the per-epoch relaxation:
    // iterating a contiguous {src, dst, lookahead} array beats
    // chasing Mailbox pointers at the epoch rates the engine
    // sustains.
    edges_.clear();
    edges_.reserve(mail_.size());
    for (const auto &mb : mail_) {
        edges_.push_back(
            FlatEdge{mb->src().id(), mb->dst().id(), mb->lookahead_});
    }
}

void
ParallelEngine::injectMail()
{
    merge_.clear();
    std::uint64_t posts = 0;
    std::uint64_t batched = 0;
    // Each partition's dirty list names exactly its out-edges with
    // pending posts (first post marks, the barrier clears), so the
    // barrier visits only posted-to edges instead of every mailbox.
    for (auto &p : parts_) {
        for (Mailbox *mb : p->dirtyOut_) {
            // Normally pre-sorted by the worker that ran the source
            // (an O(n) is_sorted check); sorts here only for batches
            // posted outside an epoch.
            mb->sortBatch();
            posts += mb->msgs_.size();
            if (mb->msgs_.size() > 1)
                batched += mb->msgs_.size();
            merge_.push_back(RunCursor{mb, 0});
        }
        p->dirtyOut_.clear();
    }
    if (merge_.empty())
        return;
    statMailboxPosts_.inc(posts);
    statBatchedPosts_.inc(batched);
    if (merge_.size() == 1) {
        // One non-empty edge (the common case on lightly loaded
        // epochs): its batch is already the merged order.
        Mailbox *mb = merge_.front().mb;
        for (auto &m : mb->msgs_) {
            mb->dst().eventQueue().schedule(m.when, std::move(m.fn),
                                            m.priority);
        }
        mb->msgs_.clear();
        merge_.clear();
        return;
    }
    // K-way merge of the sorted per-edge runs. (tick, priority, seq,
    // srcId) is a strict total order (seq streams are per-source
    // partition), so destination-queue insertion order — and with it
    // the seq numbers the destination assigns — is independent of
    // thread count, and identical to the global sort it replaces.
    const auto later = [](const RunCursor &a, const RunCursor &b) {
        const auto &ma = a.mb->msgs_[a.idx];
        const auto &mb_ = b.mb->msgs_[b.idx];
        if (ma.when != mb_.when)
            return ma.when > mb_.when;
        if (ma.priority != mb_.priority)
            return ma.priority > mb_.priority;
        if (ma.seq != mb_.seq)
            return ma.seq > mb_.seq;
        return a.mb->src().id() > b.mb->src().id();
    };
    std::make_heap(merge_.begin(), merge_.end(), later);
    while (!merge_.empty()) {
        std::pop_heap(merge_.begin(), merge_.end(), later);
        RunCursor &cur = merge_.back();
        auto &m = cur.mb->msgs_[cur.idx];
        cur.mb->dst().eventQueue().schedule(m.when, std::move(m.fn),
                                            m.priority);
        if (++cur.idx < cur.mb->msgs_.size()) {
            std::push_heap(merge_.begin(), merge_.end(), later);
        } else {
            cur.mb->msgs_.clear();
            merge_.pop_back();
        }
    }
}

Tick
ParallelEngine::refreshNextTicks()
{
    Tick next = maxTick;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        nextTick_[i] = parts_[i]->eventQueue().nextEventTick();
        next = std::min(next, nextTick_[i]);
    }
    return next;
}

Tick
ParallelEngine::prepareEpoch(Tick until)
{
    const auto n = static_cast<std::uint32_t>(parts_.size());
    // Phase 1: per-partition floors B_p — a conservative lower bound
    // on the earliest tick p can execute anything from here on,
    // accounting for multi-hop wakeups (see the file comment). All
    // edge lookaheads are >= 1, so the shortest-path fixpoint
    // B_p = min(next_p, min_e B_src+L_e) exists and is unique;
    // rounds of edge relaxation reach it in at most P-1 passes, and
    // on these shallow fabric graphs (diameter <= 4) in two or
    // three — cheaper per epoch than a Dijkstra heap's constant
    // factor at fabric epoch rates.
    floor_ = nextTick_;
    for (bool changed = true; changed;) {
        changed = false;
        for (const FlatEdge &e : edges_) {
            const Tick via = clampAdd(floor_[e.src], e.lookahead);
            if (via < floor_[e.dst]) {
                floor_[e.dst] = via;
                changed = true;
            }
        }
    }
    // Phase 2: per-edge horizons. H_p = min over incoming e=(q->p) of
    // B_q + L_e: nothing can arrive below it, so p may run to it.
    // Partitions with no incoming edges are unthrottled. Each
    // partition's safe frontier is the monotone max of its epoch
    // bounds: the bound can dip when an injection wakes a neighbor
    // below its previous next-event tick, but a bound once proven
    // covers all future posts too, so the frontier never retreats —
    // and the partition's clock (which already reached the old
    // frontier) stays below it.
    hbound_.assign(n, until);
    for (const FlatEdge &e : edges_) {
        hbound_[e.dst] = std::min(
            hbound_[e.dst], clampAdd(floor_[e.src], e.lookahead));
    }
    std::uint64_t stalls = 0;
    claimOrder_.clear();
    Tick frontier = until;
    for (std::uint32_t i = 0; i < n; ++i) {
        Partition &p = *parts_[i];
        p.horizon_ = std::max(p.horizon_, hbound_[i]);
        p.runTo_ = std::min(p.horizon_, until);
        frontier = std::min(frontier, p.runTo_);
        if (nextTick_[i] < p.runTo_) {
            claimOrder_.push_back(i);
        } else {
            if (nextTick_[i] < until)
                ++stalls; // has work, but neighbors are behind
            // Idle partitions still own the time up to their bound:
            // anything scheduled into them from outside a run (test
            // harness posting the next phase's work) must land at or
            // beyond what their neighbors' horizons already assumed.
            p.eq_.advanceTo(p.runTo_);
        }
    }
    statHorizonStalls_.inc(stalls);
    // Phase 3: claim order, heaviest last-epoch partitions first so
    // the long poles start before the stragglers fill in. With one
    // worker the claims run back-to-back, so ordering buys nothing.
    if (threads_ > 1) {
        std::sort(claimOrder_.begin(), claimOrder_.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      if (lastEpochEvents_[a] != lastEpochEvents_[b]) {
                          return lastEpochEvents_[a] >
                                 lastEpochEvents_[b];
                      }
                      return a < b;
                  });
    }
    return frontier;
}

void
ParallelEngine::claimLoop(std::unique_lock<std::mutex> &lock)
{
    for (;;) {
        if (nextPart_ >= claimOrder_.size())
            return;
        Partition *p = parts_[claimOrder_[nextPart_++]].get();
        lock.unlock();
        {
            ExecContextScope scope(&p->execContext());
            p->eventQueue().runUntil(p->runTo_);
        }
        // Sort this partition's outgoing batches while still inside
        // the parallel region: the barrier then only pays for the
        // k-way merge.
        for (Mailbox *mb : p->dirtyOut_)
            mb->sortBatch();
        lock.lock();
    }
}

void
ParallelEngine::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        cvStart_.wait(lock,
                      [&] { return stop_ || epochGen_ != seen; });
        if (stop_)
            return;
        seen = epochGen_;
        claimLoop(lock);
        if (--busy_ == 0)
            cvDone_.notify_one();
    }
}

void
ParallelEngine::runEpoch()
{
    if (workers_.empty()) {
        // Single worker: no other thread touches engine state, so the
        // mutex/condvar handoff would order nothing. Run the claim
        // list inline; injectMail sorts the batches at the barrier
        // (its is_sorted pre-check makes presorting redundant here).
        for (const std::uint32_t i : claimOrder_) {
            Partition &p = *parts_[i];
            ExecContextScope scope(&p.execContext());
            p.eventQueue().runUntil(p.runTo_);
        }
        return;
    }
    std::unique_lock<std::mutex> lock(m_);
    nextPart_ = 0;
    busy_ = workers_.size();
    ++epochGen_;
    cvStart_.notify_all();
    claimLoop(lock); // the calling thread pulls its share too
    cvDone_.wait(lock, [&] { return busy_ == 0; });
}

void
ParallelEngine::finishEpoch()
{
    statEpochs_.inc();
    if (claimOrder_.empty())
        return;
    std::uint64_t mx = 0;
    std::uint64_t mn = ~std::uint64_t(0);
    for (const std::uint32_t i : claimOrder_) {
        const std::uint64_t ex = parts_[i]->eventQueue().executed();
        const std::uint64_t delta = ex - prevExecuted_[i];
        prevExecuted_[i] = ex;
        lastEpochEvents_[i] = delta;
        mx = std::max(mx, delta);
        mn = std::min(mn, delta);
    }
    statEpochEventsMax_.sample(static_cast<double>(mx));
    statEpochEventsMin_.sample(static_cast<double>(mn));
}

void
ParallelEngine::foldAll()
{
    for (auto &fold : foldHooks_)
        fold();
}

std::uint64_t
ParallelEngine::runUntil(Tick until)
{
    checkRunnable();
    const std::uint64_t before = executed();
    for (;;) {
        injectMail();
        const Tick next = refreshNextTicks();
        if (next >= until)
            break;
        now_ = std::max(now_, prepareEpoch(until));
        runEpoch();
        finishEpoch();
    }
    if (until != maxTick) {
        // Mirror EventQueue::runUntil: idle partitions still advance
        // their clocks to the stop time (no events can remain below
        // it — the loop above only exits once next >= until).
        for (auto &p : parts_) {
            ExecContextScope scope(&p->execContext());
            p->eventQueue().runUntil(until);
        }
        now_ = std::max(now_, until);
    }
    foldAll();
    return executed() - before;
}

bool
ParallelEngine::runUntilCondition(const std::function<bool()> &pred,
                                  Tick deadline)
{
    checkRunnable();
    if (pred()) {
        foldAll();
        return true;
    }
    for (;;) {
        injectMail();
        const Tick next = refreshNextTicks();
        if (next >= deadline) {
            foldAll();
            return pred();
        }
        now_ = std::max(now_, prepareEpoch(deadline));
        runEpoch();
        finishEpoch();
        if (pred()) {
            foldAll();
            return true;
        }
    }
}

void
ParallelEngine::clearAll()
{
    for (auto &mb : mail_)
        mb->msgs_.clear();
    for (auto &p : parts_) {
        p->dirtyOut_.clear();
        ExecContextScope scope(&p->execContext());
        p->eventQueue().clear();
    }
    sim_.eventQueue().clear();
}

} // namespace qpip::sim
